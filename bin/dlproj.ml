(* dlproj — command-line front end for the defect-level projection flow.

   Subcommands:
     info       circuit statistics (netlist, mapping, testability)
     atpg       generate a test set and report coverage
     extract    synthesize layout + inductive fault analysis
     project    closed-form DL projections from (Y, T, R, θmax)
     pipeline   the full paper experiment on a benchmark
     ndet       n-detection test generation and per-n coverage profile
     benchmarks list built-in benchmark circuits
     cache      artifact-store maintenance (stats, verify, gc)
     check      differential/metamorphic self-checks + mutation self-test
     bench-io   read/write ISCAS-85 .bench files
     serve      projection daemon on a Unix-domain socket or TCP endpoint
     submit     send one projection job to a running daemon
     ping       liveness / stats / shutdown RPCs against a daemon
     bench-serve  open-loop load generation against a running daemon
     coord      consistent-hash coordinator in front of a worker fleet
*)

open Cmdliner
module Circuit = Dl_netlist.Circuit
module Table = Dl_util.Table

let version = "1.1.0"

let die fmt = Printf.ksprintf (fun s ->
    Printf.eprintf "dlproj: error: %s\n" s;
    exit 1)
    fmt

let load_circuit spec =
  match Dl_netlist.Benchmarks.by_name spec with
  | Some c -> c
  | None ->
      if Sys.file_exists spec then begin
        if Filename.check_suffix spec ".v" then Dl_netlist.Verilog.parse_file spec
        else Dl_netlist.Bench_format.parse_file spec
      end
      else
        die "%S is neither a built-in benchmark nor a netlist file; built-ins:\n%s"
          spec
          (String.concat "\n"
             (List.map (fun (name, _) -> "  " ^ name) Dl_netlist.Benchmarks.all))

(* An output path must be diagnosable before the (possibly expensive) run
   that produces it, not as a backtrace from open_out afterwards. *)
let check_writable_parent = function
  | None -> ()
  | Some path ->
      let dir = Filename.dirname path in
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        die "cannot write %s: directory %s does not exist" path dir

let circuit_arg =
  let doc =
    "Circuit: a built-in benchmark name (c17, c432s, c432s_small, add8, ...) or \
     a path to an ISCAS-85 .bench file."
  in
  Arg.(value & pos 0 string "c432s" & info [] ~docv:"CIRCUIT" ~doc)

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for fault simulation (0 = one per \
                 recommended core). Results are identical at any setting.")

let resolve_jobs jobs =
  if jobs <= 0 then Dl_util.Parallel.default_domains () else jobs

(* ------------------------------------------------------------------ info *)

let info_cmd =
  let run spec =
    let c = load_circuit spec in
    Format.printf "%a@." Circuit.pp_summary c;
    let mapped = Dl_netlist.Transform.decompose_for_cells c in
    if Circuit.node_count mapped <> Circuit.node_count c then
      Format.printf "after cell decomposition: %a@." Circuit.pp_summary mapped;
    let m = Dl_cell.Mapping.flatten mapped in
    Format.printf "%a@." Dl_cell.Mapping.pp_summary m;
    let scoap = Dl_atpg.Scoap.compute mapped in
    print_endline "hardest fault sites (SCOAP detect cost):";
    List.iter
      (fun (id, stuck, cost) ->
        Printf.printf "  %s SA%d cost %d\n" (Circuit.name mapped id)
          (if stuck then 1 else 0)
          cost)
      (Dl_atpg.Scoap.hardest_faults scoap 5);
    let timing = Dl_logic.Timing.analyze mapped in
    Printf.printf "critical path: %.2f delay units over %d stages\n"
      (Dl_logic.Timing.critical_path_delay timing)
      (List.length (Dl_logic.Timing.critical_path timing));
    let cop = Dl_atpg.Cop.compute mapped in
    let resistant = Dl_atpg.Cop.random_pattern_resistant cop mapped ~threshold:0.005 in
    Printf.printf "random-pattern-resistant stem faults (COP p < 0.5%%): %d\n"
      (List.length resistant)
  in
  Cmd.v (Cmd.info "info" ~version ~doc:"Circuit statistics and testability profile.")
    Term.(const run $ circuit_arg)

(* ------------------------------------------------------------------ atpg *)

let atpg_cmd =
  let run spec seed max_random =
    let c = Dl_netlist.Transform.decompose_for_cells (load_circuit spec) in
    let r, faults = Dl_atpg.Atpg.full_flow ~seed ~max_random c in
    Printf.printf
      "%d collapsed faults, coverage %.2f%%\n\
       vectors: %d random + %d deterministic\n\
       random-detected %d, untestable %d, aborted %d\n"
      (Array.length faults) (100.0 *. r.coverage) r.stats.random_vectors
      r.stats.deterministic_vectors r.stats.random_detected r.stats.untestable
      r.stats.aborted;
    Array.iter
      (fun f -> Printf.printf "  redundant: %s\n" (Dl_fault.Stuck_at.to_string c f))
      r.untestable_faults
  in
  let max_random =
    Arg.(value & opt int 4096 & info [ "max-random" ] ~docv:"N"
           ~doc:"Random-phase vector budget.")
  in
  Cmd.v (Cmd.info "atpg" ~version ~doc:"Generate a stuck-at test set (random + PODEM).")
    Term.(const run $ circuit_arg $ seed_arg $ max_random)

(* --------------------------------------------------------------- extract *)

let extract_cmd =
  let run spec histogram =
    let c = Dl_netlist.Transform.decompose_for_cells (load_circuit spec) in
    let m = Dl_cell.Mapping.flatten c in
    let l = Dl_layout.Layout.synthesize m in
    Format.printf "%a@." Dl_layout.Layout.pp_stats l;
    let e = Dl_extract.Ifa.extract l in
    Format.printf "%a" Dl_extract.Ifa.pp_summary e;
    if histogram then begin
      print_endline "fault-weight histogram:";
      print_string (Dl_util.Histogram.render (Dl_extract.Ifa.weight_histogram e))
    end
  in
  let histogram =
    Arg.(value & flag & info [ "histogram" ] ~doc:"Print the fault-weight histogram.")
  in
  Cmd.v
    (Cmd.info "extract" ~version
       ~doc:"Synthesize a standard-cell layout and run inductive fault analysis.")
    Term.(const run $ circuit_arg $ histogram)

(* --------------------------------------------------------------- project *)

let project_cmd =
  let run yield coverage r theta_max target_ppm =
    let params = { Dl_core.Projection.r; theta_max } in
    let t = Table.create [ ("model", Table.Left); ("DL", Table.Right) ] in
    Table.add_row t
      [ "Williams-Brown";
        Table.fmt_ppm (Dl_core.Williams_brown.defect_level ~yield ~coverage) ];
    Table.add_row t
      [ Printf.sprintf "eq.11 (R=%.2f, θmax=%.2f)" r theta_max;
        Table.fmt_ppm (Dl_core.Projection.defect_level ~yield ~params ~coverage) ];
    Table.add_row t
      [ "residual (T=1)";
        Table.fmt_ppm (Dl_core.Projection.residual_defect_level ~yield ~theta_max) ];
    Table.print t;
    match target_ppm with
    | None -> ()
    | Some ppm -> (
        let target_dl = ppm /. 1e6 in
        match Dl_core.Projection.required_coverage ~yield ~params ~target_dl with
        | Some t ->
            Printf.printf "coverage required for %.1f ppm: %s (WB: %s)\n" ppm
              (Table.fmt_pct t)
              (Table.fmt_pct
                 (Dl_core.Williams_brown.required_coverage ~yield ~target_dl))
        | None ->
            Printf.printf
              "%.1f ppm is below the residual defect level: unreachable with this \
               detection technique\n"
              ppm)
  in
  let yield_arg =
    Arg.(value & opt float 0.75 & info [ "yield"; "y" ] ~docv:"Y" ~doc:"Process yield.")
  in
  let coverage_arg =
    Arg.(value & opt float 0.95 & info [ "coverage"; "t" ] ~docv:"T"
           ~doc:"Stuck-at fault coverage.")
  in
  let r_arg =
    Arg.(value & opt float 1.9 & info [ "ratio"; "R" ] ~docv:"R" ~doc:"Susceptibility ratio (eq. 10).")
  in
  let theta_arg =
    Arg.(value & opt float 0.96 & info [ "theta-max" ] ~docv:"θ"
           ~doc:"Maximum realistic coverage of the detection technique.")
  in
  let target_arg =
    Arg.(value & opt (some float) None & info [ "target-ppm" ] ~docv:"PPM"
           ~doc:"Also solve for the coverage that reaches this DL target.")
  in
  Cmd.v (Cmd.info "project" ~version ~doc:"Closed-form defect-level projections (eq. 11).")
    Term.(const run $ yield_arg $ coverage_arg $ r_arg $ theta_arg $ target_arg)

(* -------------------------------------------------------------- pipeline *)

(* JSON fragments for the optional statistical stages, spliced into the
   served-response object (where null means "stage not run" and an
   infinite alpha renders as null = unclustered). *)
let json_float_or_null v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let wafer_mc_json (m : Dl_core.Wafer_mc.t) =
  let bands =
    m.bands
    |> Array.map (fun (b : Dl_core.Wafer_mc.band) ->
           Printf.sprintf
             "{\"k\": %d, \"theta\": %s, \"dl\": %s, \"q05\": %s, \"q50\": \
              %s, \"q95\": %s}"
             b.k
             (json_float_or_null b.coverage)
             (json_float_or_null b.dl_point)
             (json_float_or_null b.dl_q05)
             (json_float_or_null b.dl_q50)
             (json_float_or_null b.dl_q95))
    |> Array.to_list |> String.concat ", "
  in
  Printf.sprintf
    "{\"dies\": %d, \"wafers\": %d, \"lots\": %d, \"alpha_wafer\": %s, \
     \"alpha_lot\": %s, \"observed_yield\": %s, \"bands\": [%s]}"
    m.dies m.wafers m.lots
    (json_float_or_null m.alpha_wafer)
    (json_float_or_null m.alpha_lot)
    (json_float_or_null (Dl_core.Wafer_mc.observed_yield m))
    bands

let bootstrap_json (b : Dl_core.Bootstrap.t) =
  let ci (c : Dl_core.Bootstrap.ci) =
    Printf.sprintf "{\"lo\": %s, \"median\": %s, \"hi\": %s}"
      (json_float_or_null c.lo)
      (json_float_or_null c.median)
      (json_float_or_null c.hi)
  in
  Printf.sprintf
    "{\"replicates\": %d, \"r\": {\"point\": %s, \"ci\": %s}, \"theta_max\": \
     {\"point\": %s, \"ci\": %s}, \"alpha\": {\"point\": %s, \"ci\": %s}}"
    b.replicates
    (json_float_or_null b.point.Dl_core.Projection.params.r)
    (ci b.r)
    (json_float_or_null b.point.Dl_core.Projection.params.theta_max)
    (ci b.theta_max)
    (json_float_or_null b.alpha_point)
    (ci b.alpha)

let ndet_json (nd : Dl_core.Experiment.ndet_result) =
  let rows =
    nd.dl_n.rows
    |> Array.map (fun (r : Dl_core.Dl_n.row) ->
           Printf.sprintf
             "{\"n\": %d, \"final_t\": %s, \"r\": %s, \"theta_max\": %s, \
              \"residual_dl\": %s, \"k_at_target\": %d, \"dl_at_target\": %s}"
             r.n
             (json_float_or_null r.final_t)
             (json_float_or_null r.fit.Dl_core.Projection.params.r)
             (json_float_or_null r.fit.Dl_core.Projection.params.theta_max)
             (json_float_or_null r.residual_dl)
             r.k_at_target
             (json_float_or_null r.dl_at_target))
    |> Array.to_list |> String.concat ", "
  in
  Printf.sprintf
    "{\"n\": %d, \"t_star\": %s, \"rows\": [%s], \"gen_vectors\": %d, \
     \"gen_random\": %d, \"gen_topup\": %d, \"gen_under_quota\": %d}"
    nd.ndet_n
    (json_float_or_null nd.dl_n.t_star)
    rows nd.gen_stats.final_vectors nd.gen_stats.random_vectors
    nd.gen_stats.topup_vectors nd.gen_stats.under_quota

(* The served-response JSON is a single flat object; extend it in place
   rather than wrapping, so consumers of the core schema keep working. *)
let splice_json base extras =
  if extras = [] then base
  else
    String.sub base 0 (String.length base - 1)
    ^ ", " ^ String.concat ", " extras ^ "}"

let pipeline_cmd =
  let run spec seed jobs max_random target_yield points no_collapse engine
      sim_stats mc_dies mc_alpha_wafer mc_alpha_lot bootstrap ndet report
      cache json =
    let c = load_circuit spec in
    check_writable_parent report;
    let sim_engine =
      match Dl_fault.Fault_sim.engine_of_string engine with
      | Some e -> e
      | None ->
          die "unknown engine %S (known: %s)" engine
            (String.concat ", "
               (List.map Dl_fault.Fault_sim.engine_to_string
                  Dl_fault.Fault_sim.engines))
    in
    let mc =
      if mc_dies = 0 then None
      else if mc_dies < 0 then die "--mc-dies must be positive"
      else
        match
          Dl_core.Experiment.mc ~alpha_wafer:mc_alpha_wafer
            ~alpha_lot:mc_alpha_lot ~dies:mc_dies ()
        with
        | m -> Some m
        | exception Invalid_argument msg -> die "%s" msg
    in
    let bootstrap =
      match bootstrap with
      | 0 -> None
      | k when k < 0 -> die "--bootstrap must be positive"
      | k -> Some k
    in
    let ndet =
      match ndet with
      | 0 -> None
      | k when k < 0 -> die "--ndet must be positive"
      | k -> Some k
    in
    let cfg =
      Dl_core.Experiment.config ~seed ~max_random_vectors:max_random ~target_yield
        ~domains:(resolve_jobs jobs) ~collapse_faults:(not no_collapse)
        ~sim_engine ?cache_dir:cache ?mc ?bootstrap ?ndet c
    in
    let t0 = Unix.gettimeofday () in
    let e = Dl_core.Experiment.run cfg in
    if sim_stats then
      (* stderr so --json stdout stays a single machine-readable object *)
      Format.eprintf "fault-sim [%s]: %a@."
        (Dl_fault.Fault_sim.engine_to_string sim_engine)
        Dl_fault.Fault_sim.Stats.pp e.sim_stats;
    if json then begin
      (* Same schema and encoding path as a served answer, so scripts can
         consume local and remote runs identically. *)
      let served =
        {
          Dl_serve.Protocol.payload =
            Dl_serve.Protocol.payload_of_experiment
              ~key:(Dl_core.Experiment.request_key cfg) e;
          coalesced = false;
          service_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
        }
      in
      let extras =
        List.filter_map Fun.id
          [
            Option.map
              (fun m -> "\"wafer_mc\": " ^ wafer_mc_json m)
              e.wafer_mc;
            Option.map
              (fun b -> "\"bootstrap\": " ^ bootstrap_json b)
              e.bootstrap_fit;
            Option.map (fun nd -> "\"ndet\": " ^ ndet_json nd) e.ndet;
          ]
      in
      print_endline (splice_json (Dl_serve.Protocol.served_to_json served) extras);
      Option.iter
        (fun path ->
          Dl_core.Report.write_file path e;
          Printf.eprintf "report written to %s\n" path)
        report
    end
    else begin
    if cache <> None then begin
      print_endline "stage graph (artifact cache):";
      Format.printf "%a@." Dl_store.Stage.pp_reports e.stage_reports
    end;
    Format.printf "%a@.@." Dl_core.Experiment.pp_summary e;
    let ks = Dl_core.Experiment.sample_ks e ~points in
    let t = Table.create
        [ ("k", Table.Right); ("T(k)", Table.Right); ("Θ(k)", Table.Right);
          ("Γ(k)", Table.Right); ("DL(Θ(k))", Table.Right) ]
    in
    Array.iter
      (fun (k, tk, th, g) ->
        Table.add_row t
          [ string_of_int k; Table.fmt_pct tk; Table.fmt_pct th; Table.fmt_pct g;
            Table.fmt_ppm (Dl_core.Experiment.defect_level_at e k) ])
      (Dl_core.Experiment.coverage_rows e ~ks);
    Table.print t;
    let fit = e.fit in
    Printf.printf "\nfitted eq. 11: R = %.2f, θmax = %.3f (rmse %.4f, %s)\n"
      fit.params.r fit.params.theta_max fit.rmse
      (Dl_core.Projection.rmse_unit fit.rmse_scale);
    Option.iter
      (fun (m : Dl_core.Wafer_mc.t) ->
        let alpha_str a =
          if Float.is_finite a then Printf.sprintf "%g" a else "∞"
        in
        Printf.printf
          "\nMonte-Carlo wafer simulation: %d dies (%d wafers × %d, %d \
           lots), α_wafer %s, α_lot %s, observed yield %.4f\n"
          m.dies m.wafers m.dies_per_wafer m.lots (alpha_str m.alpha_wafer)
          (alpha_str m.alpha_lot)
          (Dl_core.Wafer_mc.observed_yield m);
        let t = Table.create
            [ ("k", Table.Right); ("Θ(k)", Table.Right);
              ("DL point", Table.Right); ("DL 5%", Table.Right);
              ("DL 50%", Table.Right); ("DL 95%", Table.Right) ]
        in
        Array.iter
          (fun (b : Dl_core.Wafer_mc.band) ->
            Table.add_row t
              [ string_of_int b.k; Table.fmt_pct b.coverage;
                Table.fmt_ppm b.dl_point; Table.fmt_ppm b.dl_q05;
                Table.fmt_ppm b.dl_q50; Table.fmt_ppm b.dl_q95 ])
          m.bands;
        Table.print t)
      e.wafer_mc;
    Option.iter
      (fun (b : Dl_core.Bootstrap.t) ->
        Printf.printf
          "\nbootstrap (%d replicates, 5–95%% percentile CIs):\n"
          b.replicates;
        Printf.printf "  R    = %.3f  CI [%.3f, %.3f]\n"
          b.point.Dl_core.Projection.params.r b.r.Dl_core.Bootstrap.lo
          b.r.hi;
        Printf.printf "  θmax = %.4f  CI [%.4f, %.4f]\n"
          b.point.Dl_core.Projection.params.theta_max
          b.theta_max.Dl_core.Bootstrap.lo b.theta_max.hi;
        Printf.printf "  α    = %.3g  CI [%.3g, %.3g]\n" b.alpha_point
          b.alpha.Dl_core.Bootstrap.lo b.alpha.hi)
      e.bootstrap_fit;
    Option.iter
      (fun (nd : Dl_core.Experiment.ndet_result) ->
        Printf.printf
          "\nDL(n) table (quota %d, shared coverage target T* = %s):\n"
          nd.ndet_n
          (Table.fmt_pct nd.dl_n.t_star);
        let t = Table.create
            [ ("n", Table.Right); ("final T(n)", Table.Right);
              ("R", Table.Right); ("θmax", Table.Right);
              ("residual DL", Table.Right); ("k@T*", Table.Right);
              ("DL@T*", Table.Right) ]
        in
        Array.iter
          (fun (r : Dl_core.Dl_n.row) ->
            Table.add_row t
              [ string_of_int r.n; Table.fmt_pct r.final_t;
                Printf.sprintf "%.2f" r.fit.Dl_core.Projection.params.r;
                Printf.sprintf "%.4f" r.fit.Dl_core.Projection.params.theta_max;
                Table.fmt_ppm r.residual_dl; string_of_int r.k_at_target;
                Table.fmt_ppm r.dl_at_target ])
          nd.dl_n.rows;
        Table.print t;
        Printf.printf
          "n-detection test set (n = %d): %d vectors (%d random + %d top-up \
           before compaction), %d faults under quota\n"
          nd.ndet_n nd.gen_stats.final_vectors nd.gen_stats.random_vectors
          nd.gen_stats.topup_vectors nd.gen_stats.under_quota)
      e.ndet;
    match report with
    | None -> ()
    | Some path ->
        Dl_core.Report.write_file path e;
        Printf.printf "report written to %s\n" path
    end
  in
  let max_random =
    Arg.(value & opt int 2048 & info [ "max-random" ] ~docv:"N"
           ~doc:"Random-phase vector budget.")
  in
  let target_yield =
    Arg.(value & opt float 0.75 & info [ "yield" ] ~docv:"Y"
           ~doc:"Yield the extracted weights are scaled to.")
  in
  let points =
    Arg.(value & opt int 12 & info [ "points" ] ~docv:"N" ~doc:"Table rows.")
  in
  let report =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
           ~doc:"Also write a markdown report of the run.")
  in
  let no_collapse =
    Arg.(value & flag & info [ "no-collapse" ]
           ~doc:"Simulate the full uncollapsed stuck-at universe \
                 (paper-faithful coverage definition: every line fault \
                 counts individually) instead of one representative per \
                 equivalence class.")
  in
  let cache =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
           ~doc:"Persist per-stage artifacts in a content-addressed store \
                 under $(docv) and reuse any whose inputs and config are \
                 unchanged (a warm re-run recomputes nothing; a yield change \
                 recomputes only the projection stage).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print one machine-readable JSON object (the server's \
                 response schema) instead of the tables.")
  in
  let engine =
    Arg.(value & opt string "wide"
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"PPSFP engine variant for the gate-level fault simulation \
                   (reference, flat, event, pruned, wide).  Detection \
                   results are engine-independent; speed and the \
                   $(b,--sim-stats) counters are not.")
  in
  let sim_stats =
    Arg.(value & flag & info [ "sim-stats" ]
           ~doc:"Print the fault-sim engine counters (gate evaluations, \
                 events, inferred/simulated/dropped faults, stem \
                 simulations) on stderr.")
  in
  let mc_dies =
    Arg.(value & opt int 0 & info [ "mc-dies" ] ~docv:"N"
           ~doc:"Run the Monte-Carlo wafer/lot simulation over $(docv) dies \
                 and print 5/50/95 % DL(T) bands (0 = off).  Draws are \
                 replayable functions of $(b,--seed); results cache as the \
                 wafer-mc stage.")
  in
  let mc_alpha_wafer =
    Arg.(value & opt float infinity & info [ "mc-alpha-wafer" ] ~docv:"A"
           ~doc:"Wafer-level clustering parameter (gamma shape) for \
                 $(b,--mc-dies); $(docv) = inf (default) disables \
                 wafer-level clustering.")
  in
  let mc_alpha_lot =
    Arg.(value & opt float infinity & info [ "mc-alpha-lot" ] ~docv:"A"
           ~doc:"Lot-level clustering parameter for $(b,--mc-dies); \
                 $(docv) = inf (default) disables lot-level clustering.")
  in
  let bootstrap =
    Arg.(value & opt int 0 & info [ "bootstrap" ] ~docv:"K"
           ~doc:"Bootstrap the (R, θmax) and clustering-α fits over $(docv) \
                 case-resampled replicates and print percentile confidence \
                 intervals (0 = off).  Caches as the bootstrap-fit stage.")
  in
  let ndet =
    Arg.(value & opt int 0 & info [ "ndet" ] ~docv:"N"
           ~doc:"Profile n-detection up to quota $(docv) and print the DL(n) \
                 table (each fault required to be detected n times before \
                 it counts), plus generate a registered n-detection test set \
                 (0 = off).  Caches as the ndet-sim / ndet-atpg stages.")
  in
  Cmd.v
    (Cmd.info "pipeline" ~version
       ~doc:"Full experiment: layout, IFA, ATPG, gate+switch fault simulation, \
             DL projection and (R, θmax) fit, with optional Monte-Carlo DL \
             bands, bootstrap confidence intervals and DL(n) n-detection \
             curves.")
    Term.(const run $ circuit_arg $ seed_arg $ jobs_arg $ max_random $ target_yield
          $ points $ no_collapse $ engine $ sim_stats $ mc_dies
          $ mc_alpha_wafer $ mc_alpha_lot $ bootstrap $ ndet $ report $ cache
          $ json)

(* ------------------------------------------------------------------ ndet *)

let ndet_cmd =
  let run spec seed jobs n max_random engine =
    if n < 1 then die "-n must be >= 1";
    let sim_engine =
      match Dl_fault.Fault_sim.engine_of_string engine with
      | Some e -> e
      | None ->
          die "unknown engine %S (known: %s)" engine
            (String.concat ", "
               (List.map Dl_fault.Fault_sim.engine_to_string
                  Dl_fault.Fault_sim.engines))
    in
    let c = Dl_netlist.Transform.decompose_for_cells (load_circuit spec) in
    let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
    let r =
      Dl_ndet.Atpg_n.run ~seed ~max_random ~engine:sim_engine ~n c ~faults
    in
    let s = r.stats in
    Printf.printf
      "%d collapsed faults, quota n = %d\n\
       vectors: %d kept after compaction (%d random + %d top-up generated)\n\
       untestable %d, aborted %d, under quota %d\n"
      s.total_faults s.n s.final_vectors s.random_vectors s.topup_vectors
      s.untestable s.aborted s.under_quota;
    (* Per-n coverage of the kept set, over the testable universe (the
       PODEM-proved-redundant classes can never meet any quota). *)
    let testable =
      Array.of_list
        (Array.to_list faults
         |> List.filter (fun f ->
                not (Array.exists (fun u -> u = f) r.untestable_faults)))
    in
    if Array.length r.vectors = 0 then
      print_endline "empty test set: nothing to profile"
    else begin
      let profile =
        Dl_fault.Fault_sim.run_ndet ~engine:sim_engine
          ~domains:(resolve_jobs jobs) ~drop_after:n c ~faults:testable
          ~vectors:r.vectors
      in
      let t = Table.create
          [ ("n", Table.Right); ("faults detected n+ times", Table.Right);
            ("Tn(final)", Table.Right) ]
      in
      Array.iter
        (fun n' ->
          Table.add_row t
            [ string_of_int n';
              Printf.sprintf "%d / %d"
                (Dl_ndet.Profile.detected_at_least profile ~k:n')
                (Array.length testable);
              Table.fmt_pct (Dl_ndet.Profile.final_coverage profile ~n:n') ])
        (Dl_core.Dl_n.default_ns ~max_n:n);
      Table.print t
    end
  in
  let n_arg =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N"
           ~doc:"Detection quota: every testable fault is targeted until \
                 detected $(docv) times.")
  in
  let max_random =
    Arg.(value & opt int 4096 & info [ "max-random" ] ~docv:"N"
           ~doc:"Random-phase vector budget.")
  in
  let engine =
    Arg.(value & opt string "flat"
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"PPSFP engine variant (reference, flat, event, pruned, \
                   wide).  Results are engine-independent.")
  in
  Cmd.v
    (Cmd.info "ndet" ~version
       ~doc:"Generate an n-detection test set (random quotas + PODEM \
             re-targeting + reverse compaction) and profile its per-n \
             coverage.")
    Term.(const run $ circuit_arg $ seed_arg $ jobs_arg $ n_arg $ max_random
          $ engine)

(* ------------------------------------------------------------ benchmarks *)

let benchmarks_cmd =
  let run () =
    let t = Table.create
        [ ("name", Table.Left); ("PIs", Table.Right); ("POs", Table.Right);
          ("gates", Table.Right); ("nodes", Table.Right) ]
    in
    List.iter
      (fun (name, build) ->
        let c = build () in
        Table.add_row t
          [ name;
            string_of_int (Circuit.input_count c);
            string_of_int (Circuit.output_count c);
            string_of_int (Circuit.gate_count c);
            string_of_int (Circuit.node_count c) ])
      Dl_netlist.Benchmarks.all;
    Table.print t
  in
  Cmd.v
    (Cmd.info "benchmarks" ~version
       ~doc:"List the built-in benchmark circuits with their interface and \
             gate counts.")
    Term.(const run $ const ())

(* ----------------------------------------------------------------- cache *)

let cache_cmd =
  let run action dir max_bytes =
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      die "no artifact store at %s" dir;
    let store = Dl_store.Store.open_ dir in
    match action with
    | `Stats ->
        let s = Dl_store.Store.stats store in
        Printf.printf "%s: %d objects, %d bytes\n" dir s.objects s.total_bytes;
        List.iter
          (fun (kind, count, bytes) ->
            Printf.printf "  %-12s %5d  %10d bytes\n" kind count bytes)
          s.by_kind
    | `Verify ->
        let r = Dl_store.Store.verify store in
        Printf.printf "checked %d artifacts\n" r.checked;
        if r.corrupt = [] then print_endline "all checksums OK"
        else begin
          List.iter
            (fun (key, reason) -> Printf.printf "  corrupt %s: %s\n" key reason)
            r.corrupt;
          exit 1
        end
    | `Gc ->
        let r =
          Dl_store.Store.gc ?max_bytes
            ~current:Dl_store.Artifact.current_versions store
        in
        Printf.printf
          "kept %d; removed %d corrupt, %d stale-format, %d evicted \
           (%d bytes freed)\n"
          r.kept r.removed_corrupt r.removed_stale r.removed_evicted
          r.removed_bytes
  in
  let action =
    let action_conv =
      Arg.enum [ ("stats", `Stats); ("verify", `Verify); ("gc", `Gc) ]
    in
    Arg.(value & pos 0 action_conv `Stats & info [] ~docv:"ACTION"
           ~doc:"$(b,stats) (per-kind object counts and sizes), $(b,verify) \
                 (full checksum pass; nonzero exit on corruption) or $(b,gc) \
                 (drop corrupt and stale-format artifacts, optionally cap \
                 total size).")
  in
  let dir =
    Arg.(value & opt string Dl_store.Store.default_dir
         & info [ "dir" ] ~docv:"DIR" ~doc:"Artifact store root.")
  in
  let max_bytes =
    Arg.(value & opt (some int) None & info [ "max-bytes" ] ~docv:"N"
           ~doc:"With $(b,gc): evict oldest artifacts until the store is at \
                 most $(docv) bytes.")
  in
  Cmd.v
    (Cmd.info "cache" ~version
       ~doc:"Artifact-store maintenance (stats, verify, gc).")
    Term.(const run $ action $ dir $ max_bytes)

(* ------------------------------------------------------------ transition *)

let transition_cmd =
  let run spec seed =
    let c = Dl_netlist.Transform.decompose_for_cells (load_circuit spec) in
    let faults = Dl_fault.Transition.universe c in
    let r = Dl_atpg.Transition_atpg.run ~seed c ~faults in
    Printf.printf
      "%d transition faults: two-pattern coverage %.2f%% with %d pairs \
       (untestable %d, aborted %d)\n"
      (Array.length faults) (100.0 *. r.coverage) (Array.length r.pairs)
      r.untestable r.aborted
  in
  Cmd.v
    (Cmd.info "transition" ~version
       ~doc:"Two-pattern (transition/delay fault) test generation.")
    Term.(const run $ circuit_arg $ seed_arg)

(* --------------------------------------------------------------- compact *)

let compact_cmd =
  let run spec seed count =
    let c = Dl_netlist.Transform.decompose_for_cells (load_circuit spec) in
    let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
    let rng = Dl_util.Rng.create seed in
    let vectors =
      Array.init count (fun _ ->
          Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))
    in
    let _, stats = Dl_atpg.Compaction.compact c ~faults ~vectors in
    Printf.printf "%d random vectors -> %d after compaction (%d passes)\n"
      stats.original stats.compacted stats.passes_run
  in
  let count =
    Arg.(value & opt int 512 & info [ "vectors" ] ~docv:"N"
           ~doc:"Random vectors to generate before compacting.")
  in
  Cmd.v
    (Cmd.info "compact" ~version ~doc:"Static test compaction by re-ordered fault simulation.")
    Term.(const run $ circuit_arg $ seed_arg $ count)

(* ----------------------------------------------------------------- check *)

let check_cmd =
  let run engines seconds seed out self_test list_checks replay =
    if list_checks then begin
      List.iter
        (fun (o : Dl_check.Oracle.t) -> Printf.printf "%-18s %s\n" o.name o.doc)
        Dl_check.Oracle.all;
      List.iter
        (fun (name, _) ->
          Printf.printf "%-18s planted engine mutant (mutation self-test)\n"
            ("mutant:" ^ name))
        Dl_check.Mutant.all
    end
    else
      match replay with
      | Some path -> (
          let repro =
            try Dl_check.Testcase.load_repro path with
            | Invalid_argument m | Sys_error m -> die "%s" m
          in
          match
            try Dl_check.Harness.replay repro with Invalid_argument m ->
              die "%s" m
          with
          | check, Some msg ->
              Printf.printf "%s: reproduced\n  %s\n" check msg
          | check, None ->
              Printf.printf "%s: no longer failing\n" check;
              exit 1)
      | None ->
          if self_test then begin
            let result = Dl_check.Harness.self_test ?out_dir:out ~seed () in
            Format.printf "%a" Dl_check.Harness.pp_self_reports result;
            if not (snd result) then exit 1
          end
          else begin
            let checks = match engines with [] -> None | l -> Some l in
            let cfg =
              Dl_check.Harness.config ~seed ~seconds ?checks ?out_dir:out ()
            in
            let s =
              try Dl_check.Harness.run cfg with Invalid_argument m ->
                die "%s" m
            in
            Format.printf "%a" Dl_check.Harness.pp_summary s;
            if not (Dl_check.Harness.ok s) then exit 1
          end
  in
  let engines =
    Arg.(value & opt (list string) []
         & info [ "engines" ] ~docv:"LIST"
             ~doc:"Comma-separated subset of checks to run (see --list). \
                   Default: the whole registry.")
  in
  let seconds =
    Arg.(value & opt float 5.0
         & info [ "seconds" ] ~docv:"N"
             ~doc:"Wall-clock budget for generated cases.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for failing-case repro files (.bench + .repro).")
  in
  let self_test =
    Arg.(value & flag
         & info [ "self-test" ]
             ~doc:"Run the mutation self-test instead of the registry: plant \
                   known single-line bugs in a copy of the fault-simulation \
                   eval loop and prove the harness catches and shrinks them.")
  in
  let list_checks =
    Arg.(value & flag & info [ "list" ] ~doc:"List registered checks and exit.")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a saved .repro file and re-judge it.")
  in
  Cmd.v
    (Cmd.info "check" ~version
       ~doc:"Differential & metamorphic self-checks with counterexample \
             shrinking.")
    Term.(const run $ engines $ seconds $ seed_arg $ out $ self_test
          $ list_checks $ replay)

(* -------------------------------------------------------------- bench-io *)

let bench_io_cmd =
  let run spec out =
    let c = load_circuit spec in
    let render path_opt =
      match path_opt with
      | Some path when Filename.check_suffix path ".v" ->
          Dl_netlist.Verilog.write_file path c;
          Printf.printf "wrote %s (verilog)\n" path
      | Some path ->
          Dl_netlist.Bench_format.write_file path c;
          Printf.printf "wrote %s\n" path
      | None -> print_string (Dl_netlist.Bench_format.to_string c)
    in
    render out
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to a file instead of stdout (.v selects Verilog, \
                 anything else ISCAS-85 .bench).")
  in
  Cmd.v
    (Cmd.info "bench-io" ~version
       ~doc:"Convert circuits between ISCAS-85 .bench and structural Verilog.")
    Term.(const run $ circuit_arg $ out)

(* ----------------------------------------------------------- serve/submit *)

let socket_arg =
  Arg.(value & opt string "/tmp/dlproj.sock"
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_arg =
  Arg.(value & opt (some string) None
       & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"TCP endpoint instead of the Unix-domain socket \
                 (overrides $(b,--socket)).  Port 0 asks the kernel for \
                 an ephemeral port when listening.")

let endpoint_of socket tcp =
  match tcp with
  | None -> Dl_serve.Transport.Unix_socket socket
  | Some spec -> (
      match Dl_serve.Transport.of_string spec with
      | Dl_serve.Transport.Tcp _ as ep -> ep
      | Dl_serve.Transport.Unix_socket _ ->
          die "bad --tcp %S (expected HOST:PORT)" spec)

let parse_endpoint ~what spec =
  try Dl_serve.Transport.of_string spec
  with Invalid_argument m -> die "bad %s %S: %s" what spec m

let serve_cmd =
  let run socket tcp workers queue_capacity jobs cache peers =
    let listen = endpoint_of socket tcp in
    let banner ep =
      Printf.printf "dlproj serving on %s (%d worker%s, queue %d)%s%s\n%!"
        (Dl_serve.Transport.to_string ep)
        workers
        (if workers = 1 then "" else "s")
        queue_capacity
        (match cache with
        | None -> ""
        | Some d -> Printf.sprintf ", cache %s" d)
        (match peers with
        | [] -> ""
        | ps -> Printf.sprintf ", %d peer%s" (List.length ps)
                  (if List.length ps = 1 then "" else "s"))
    in
    (match peers with
    | [] ->
        let cfg =
          Dl_serve.Server.config ~workers ~queue_capacity
            ~domains_per_worker:(resolve_jobs jobs) ?cache_dir:cache ~listen ()
        in
        Dl_serve.Server.run cfg
          ~on_ready:(fun s -> banner (Dl_serve.Server.bound s))
    | peers ->
        (* A fleet member: same daemon, plus the peer store tier (fetch
           artifacts from the ring before computing, publish afterwards). *)
        let w =
          Dl_cluster.Worker.start ~workers ~queue_capacity
            ~domains_per_worker:(resolve_jobs jobs) ?cache_dir:cache ~listen ()
        in
        let self = Dl_cluster.Worker.bound w in
        Dl_cluster.Worker.set_peers w
          (self :: List.map (parse_endpoint ~what:"--peer") peers);
        let server = Dl_cluster.Worker.server w in
        let handler =
          Sys.Signal_handle (fun _ -> Dl_serve.Server.request_stop server)
        in
        List.iter
          (fun s -> ignore (Sys.signal s handler))
          [ Sys.sigterm; Sys.sigint ];
        banner self;
        Dl_serve.Server.wait server);
    print_endline "dlproj server drained and exited"
  in
  let workers =
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N"
           ~doc:"Scheduler threads (= concurrently running jobs), each \
                 owning its own simulation domain pool.")
  in
  let queue =
    Arg.(value & opt int 16 & info [ "queue" ] ~docv:"N"
           ~doc:"Bound on queued jobs; past it, submissions are rejected \
                 with a retry-after hint instead of blocking.")
  in
  let cache =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
           ~doc:"Content-addressed artifact store shared by all jobs.")
  in
  let peers =
    Arg.(value & opt_all string []
         & info [ "peer" ] ~docv:"ENDPOINT"
             ~doc:"Another worker of the fleet (repeatable; \
                   $(b,HOST:PORT) or a socket path).  With peers, a \
                   local stage miss is fetched from the key's home node \
                   before computing, and computed artifacts are pushed \
                   back to it.")
  in
  Cmd.v
    (Cmd.info "serve" ~version
       ~doc:"Serve projection jobs over a Unix-domain socket or TCP \
             endpoint (drains gracefully on SIGTERM/SIGINT).")
    Term.(const run $ socket_arg $ tcp_arg $ workers $ queue $ jobs_arg
          $ cache $ peers)

let submit_cmd =
  let run socket tcp retries spec seed max_random target_yield no_collapse
      deadline json =
    let circuit =
      match Dl_netlist.Benchmarks.by_name spec with
      | Some _ -> Dl_serve.Protocol.Builtin spec
      | None ->
          if Sys.file_exists spec then
            let text = In_channel.with_open_text spec In_channel.input_all in
            Dl_serve.Protocol.Inline_bench
              { title = Filename.remove_extension (Filename.basename spec);
                text }
          else
            die "%S is neither a built-in benchmark nor a .bench file" spec
    in
    let job =
      Dl_serve.Protocol.job_spec ~seed ~max_random_vectors:max_random
        ~target_yield ~collapse_faults:(not no_collapse) ?deadline_ms:deadline
        circuit
    in
    Dl_serve.Client.with_client (endpoint_of socket tcp) @@ fun client ->
    match Dl_serve.Client.submit_retrying ~attempts:retries client job with
    | Dl_serve.Protocol.Result served ->
        if json then print_endline (Dl_serve.Protocol.served_to_json served)
        else Format.printf "%a" Dl_serve.Protocol.pp_served served
    | Dl_serve.Protocol.Rejected { retry_after_ms; queue_depth } ->
        die "server busy (queue depth %d); retry in %d ms%s" queue_depth
          retry_after_ms
          (if retries = 0 then " (or pass --retries)" else "")
    | Dl_serve.Protocol.Expired -> die "deadline expired before completion"
    | Dl_serve.Protocol.Server_error msg -> die "server error: %s" msg
    | _ -> die "unexpected reply to submit"
  in
  let retries =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
           ~doc:"On a busy-server rejection, sleep the server's \
                 retry-after hint (jittered) and resubmit, up to $(docv) \
                 times, before giving up.")
  in
  let max_random =
    Arg.(value & opt int 2048 & info [ "max-random" ] ~docv:"N"
           ~doc:"Random-phase vector budget.")
  in
  let target_yield =
    Arg.(value & opt float 0.75 & info [ "yield" ] ~docv:"Y"
           ~doc:"Yield the extracted weights are scaled to.")
  in
  let no_collapse =
    Arg.(value & flag & info [ "no-collapse" ]
           ~doc:"Simulate the full uncollapsed stuck-at universe.")
  in
  let deadline =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Give up (server side) if no answer exists after $(docv).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the machine-readable response (same schema as \
                 $(b,dlproj pipeline --json)).")
  in
  Cmd.v
    (Cmd.info "submit" ~version
       ~doc:"Submit one projection job to a running dlproj server.")
    Term.(const run $ socket_arg $ tcp_arg $ retries $ circuit_arg $ seed_arg
          $ max_random $ target_yield $ no_collapse $ deadline $ json)

let ping_cmd =
  let run socket tcp stats shutdown =
    let endpoint = endpoint_of socket tcp in
    Dl_serve.Client.with_client endpoint @@ fun client ->
    if shutdown then begin
      let s = Dl_serve.Client.shutdown client in
      Format.printf "server draining; final stats:@.%a@."
        Dl_serve.Protocol.pp_stats s
    end
    else if stats then
      Format.printf "%a@." Dl_serve.Protocol.pp_stats
        (Dl_serve.Client.get_stats client)
    else begin
      let t0 = Unix.gettimeofday () in
      if Dl_serve.Client.ping client then
        Printf.printf "pong from %s in %.1f ms\n"
          (Dl_serve.Transport.to_string endpoint)
          ((Unix.gettimeofday () -. t0) *. 1000.0)
      else die "unexpected reply to ping"
    end
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print server counters and latency percentiles instead.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Ask the server to drain and exit; prints its final stats.")
  in
  Cmd.v
    (Cmd.info "ping" ~version
       ~doc:"Liveness, stats and shutdown RPCs against a dlproj server.")
    Term.(const run $ socket_arg $ tcp_arg $ stats $ shutdown)

let bench_serve_cmd =
  let run socket tcp rate duration mix seed gates distinct deadline clients
      max_random trace plan_only json =
    let mix =
      try Dl_serve.Load_gen.mix_of_string mix
      with Invalid_argument m -> die "%s" m
    in
    let deadline =
      Option.map
        (fun s ->
          match String.split_on_char ':' s with
          | [ lo; hi ] -> (
              match (int_of_string_opt lo, int_of_string_opt hi) with
              | Some lo, Some hi -> (lo, hi)
              | _ -> die "bad --deadline-ms %S (expected LO:HI)" s)
          | [ one ] -> (
              match int_of_string_opt one with
              | Some d -> (d, d)
              | None -> die "bad --deadline-ms %S" s)
          | _ -> die "bad --deadline-ms %S (expected LO:HI)" s)
        deadline
    in
    let cfg =
      Dl_serve.Load_gen.config ~rate ~duration ~mix ~seed ~gates ~distinct
        ?deadline_ms:deadline ~max_random_vectors:max_random ()
    in
    let planned =
      try Dl_serve.Load_gen.plan cfg
      with Invalid_argument m -> die "%s" m
    in
    let write_trace path =
      let text = Dl_serve.Load_gen.trace_to_string cfg planned in
      if path = "-" then print_string text
      else begin
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc text);
        Printf.eprintf "wrote %d-request trace to %s\n%!"
          (Array.length planned) path
      end
    in
    Option.iter write_trace trace;
    if plan_only then begin
      if trace = None then write_trace "-"
    end
    else begin
      let _records, report =
        Dl_serve.Load_gen.run ~clients ~socket:(endpoint_of socket tcp) cfg
      in
      if json then print_endline (Dl_serve.Load_gen.report_to_json report)
      else Format.printf "%a@." Dl_serve.Load_gen.pp_report report
    end
  in
  let rate =
    Arg.(value & opt float 20.0 & info [ "rate" ] ~docv:"R"
           ~doc:"Mean open-loop arrival rate, requests/second.")
  in
  let duration =
    Arg.(value & opt float 3.0 & info [ "duration" ] ~docv:"S"
           ~doc:"Schedule horizon in seconds.")
  in
  let mix =
    Arg.(value & opt string "c432s_small" & info [ "mix" ] ~docv:"SPEC"
           ~doc:"Weighted workload classes, e.g. \
                 $(b,c432s:3,xor-heavy:1).  A class is a built-in \
                 benchmark or a generator family name.")
  in
  let gates =
    Arg.(value & opt int 120 & info [ "gates" ] ~docv:"N"
           ~doc:"Gate count for generated family circuits.")
  in
  let distinct =
    Arg.(value & opt int 4 & info [ "distinct" ] ~docv:"K"
           ~doc:"Distinct job seeds per class; repeats exercise \
                 coalescing and the result cache.")
  in
  let deadline =
    Arg.(value & opt (some string) None & info [ "deadline-ms" ]
           ~docv:"LO:HI"
           ~doc:"Uniform per-request deadline range in milliseconds.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent client connections replaying the schedule.")
  in
  let max_random =
    Arg.(value & opt int 128 & info [ "max-random" ] ~docv:"N"
           ~doc:"Random-phase vector budget per job.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the planned schedule (byte-identical for equal \
                 seeds) to $(docv); $(b,-) for stdout.")
  in
  let plan_only =
    Arg.(value & flag & info [ "plan-only" ]
           ~doc:"Plan and print the schedule without contacting a server.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the machine-readable load report.")
  in
  Cmd.v
    (Cmd.info "bench-serve" ~version
       ~doc:"Replay a seeded open-loop traffic mix against a running \
             dlproj server and report throughput, tail latency and \
             backpressure.")
    Term.(const run $ socket_arg $ tcp_arg $ rate $ duration $ mix $ seed_arg
          $ gates $ distinct $ deadline $ clients $ max_random $ trace
          $ plan_only $ json)

(* ---------------------------------------------------------------- coord *)

let coord_cmd =
  let run socket tcp worker_specs max_in_flight probe_ms fanout =
    if worker_specs = [] then die "coord needs at least one --worker";
    let listen = endpoint_of socket tcp in
    let workers = List.map (parse_endpoint ~what:"--worker") worker_specs in
    let cfg =
      Dl_cluster.Coord.config ~max_in_flight
        ~probe_period_s:(float_of_int probe_ms /. 1000.0)
        ~fanout_stages:fanout ~listen ~workers ()
    in
    Dl_cluster.Coord.run cfg ~on_ready:(fun t ->
        Printf.printf "dlproj coordinating %d worker%s on %s%s\n%!"
          (List.length workers)
          (if List.length workers = 1 then "" else "s")
          (Dl_serve.Transport.to_string (Dl_cluster.Coord.bound t))
          (if fanout then ", stage fan-out on" else ""));
    print_endline "dlproj coordinator exited"
  in
  let worker_specs =
    Arg.(value & opt_all string []
         & info [ "worker" ] ~docv:"ENDPOINT"
             ~doc:"A worker daemon to dispatch to (repeatable; \
                   $(b,HOST:PORT) or a socket path).")
  in
  let max_in_flight =
    Arg.(value & opt int 4 & info [ "max-in-flight" ] ~docv:"N"
           ~doc:"Outstanding dispatches per worker; past it the relay \
                 waits for capacity.")
  in
  let probe_ms =
    Arg.(value & opt int 1000 & info [ "probe-ms" ] ~docv:"MS"
           ~doc:"Health-probe period: repeated failures eject a worker, \
                 one success readmits it.")
  in
  let fanout =
    Arg.(value & flag & info [ "fanout" ]
           ~doc:"Fan each submission's independent stages out across the \
                 ring before relaying the final submit.")
  in
  Cmd.v
    (Cmd.info "coord" ~version
       ~doc:"Coordinate a fleet of dlproj servers: consistent-hash \
             dispatch with in-flight caps, queue-depth-aware work \
             stealing and health-probe ejection/readmission.")
    Term.(const run $ socket_arg $ tcp_arg $ worker_specs $ max_in_flight
          $ probe_ms $ fanout)

(* ------------------------------------------------------------------ svg *)

let svg_cmd =
  let run spec out scale =
    let c = Dl_netlist.Transform.decompose_for_cells (load_circuit spec) in
    let l = Dl_layout.Layout.synthesize (Dl_cell.Mapping.flatten c) in
    Dl_layout.Svg.write_file ~scale out l;
    Format.printf "%a@." Dl_layout.Layout.pp_stats l;
    Printf.printf "wrote %s\n" out
  in
  let out =
    Arg.(value & opt string "layout.svg" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output SVG path.")
  in
  let scale =
    Arg.(value & opt float 2.0 & info [ "scale" ] ~docv:"PX"
           ~doc:"Pixels per lambda.")
  in
  Cmd.v (Cmd.info "svg" ~version ~doc:"Render the synthesized layout to SVG.")
    Term.(const run $ circuit_arg $ out $ scale)

let () =
  (* A client whose server hung up mid-write must get the one-line
     diagnostic below (the client maps socket EPIPE to Protocol_error),
     not die silently of SIGPIPE; a closed stdout still exits quietly. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let doc = "defect-level projection from layout-extracted realistic faults" in
  let main = Cmd.group (Cmd.info "dlproj" ~version ~doc)
      [ info_cmd; atpg_cmd; extract_cmd; project_cmd; pipeline_cmd; ndet_cmd;
        benchmarks_cmd; cache_cmd; transition_cmd; compact_cmd; check_cmd;
        bench_io_cmd; serve_cmd; submit_cmd; ping_cmd; bench_serve_cmd;
        coord_cmd; svg_cmd ]
  in
  (* Operational failures (missing files, malformed netlists, bad paths,
     missing or dead sockets) get a one-line diagnostic and exit 1 instead
     of a backtrace. *)
  (* A consumer that stopped reading our stdout (e.g. `dlproj info | head`)
     surfaces as Sys_error "Broken pipe" (channel writes) or EPIPE (direct
     Unix writes).  Exit quietly with the conventional SIGPIPE status —
     via [Unix._exit], because [exit] would flush the broken channel and
     die a second time. *)
  let quiet_pipe_exit () =
    (try flush stderr with Sys_error _ -> ());
    Unix._exit 141
  in
  try exit (Cmd.eval ~catch:false main) with
  | Sys_error msg when msg = "Broken pipe" -> quiet_pipe_exit ()
  | Sys_error msg -> die "%s" msg
  | Circuit.Malformed msg -> die "%s" msg
  | Dl_netlist.Bench_format.Parse_error { line; message } ->
      die "parse error at line %d: %s" line message
  | Dl_netlist.Verilog.Parse_error { line; message } ->
      die "parse error at line %d: %s" line message
  | Unix.Unix_error (Unix.EPIPE, _, _) -> quiet_pipe_exit ()
  | Unix.Unix_error (err, _, arg) ->
      die "%s%s" (Unix.error_message err)
        (if arg = "" then "" else Printf.sprintf " (%s)" arg)
  | Dl_serve.Protocol.Protocol_error msg -> die "%s" msg
  | Failure msg -> die "%s" msg
  | Invalid_argument msg -> die "internal error: %s" msg
