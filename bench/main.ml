(* Benchmark and figure-regeneration harness.

   One section per figure/table of the paper (printed as data rows, shape
   comparable with the published plots) plus Bechamel micro-benchmarks of
   the underlying engines.

     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- fig4 fig5  # selected sections

   Sections: fig1 fig2 fig3 fig4 fig5 fig6 examples ablation delay
   quality resistive stability sweep clustered lot par kernel store serve
   micro mc ndet

   The [kernel] section additionally writes BENCH_fault_sim.json
   (machine-readable old-vs-new throughput gate) to the working directory
   or to $BENCH_FAULT_SIM_JSON; [store] likewise writes BENCH_store.json
   (cold-vs-warm artifact-cache gate) or $BENCH_STORE_JSON; [serve] writes
   BENCH_serve.json (concurrent loopback daemon gate) or
   $BENCH_SERVE_JSON; [mc] writes BENCH_mc.json (Monte-Carlo throughput
   and uncertainty-band gate) or $BENCH_MC_JSON; [ndet] writes
   BENCH_ndet.json (multi-detect overhead and DL(n) monotonicity gate) or
   $BENCH_NDET_JSON. *)

open Dl_core
module Coverage = Dl_fault.Coverage
module Table = Dl_util.Table

let section_banner name description =
  Printf.printf "\n================ %s — %s ================\n" name description

(* ---------------------------------------------------------------- fig 1 *)

(* Analytic coverage-growth curves, the paper's exact parameters:
   s_T = e^3, s_Θ = e^(3/2) (hence R = 2), θmax = 0.96. *)
let fig1 () =
  section_banner "Fig.1" "T(k) and Θ(k) growth curves (eqs. 7-8)";
  let s_t = exp 3.0 in
  let s_theta = Susceptibility.s_of_ratio ~s_t ~r:2.0 in
  let theta_max = 0.96 in
  let t = Table.create
      [ ("k", Table.Right); ("T(k)", Table.Right); ("Theta(k)", Table.Right) ]
  in
  Array.iter
    (fun k ->
      let kf = float_of_int k in
      Table.add_row t
        [
          string_of_int k;
          Table.fmt_pct (Susceptibility.coverage_at ~s:s_t kf);
          Table.fmt_pct (Susceptibility.weighted_coverage_at ~s:s_theta ~theta_max kf);
        ])
    (Coverage.log_spaced ~max:1_000_000 ~points:15);
  Table.print t;
  print_endline
    "shape check: Θ(k) approaches 0.96 faster than T(k) approaches 1 (R = 2)."

(* ---------------------------------------------------------------- fig 2 *)

let fig2 () =
  section_banner "Fig.2" "DL(T): Williams-Brown vs eq. 11 (Y=0.75, R=2, θmax=0.96)";
  let params = { Projection.r = 2.0; theta_max = 0.96 } in
  let t = Table.create
      [ ("T", Table.Right); ("Williams-Brown", Table.Right); ("eq. 11", Table.Right) ]
  in
  List.iter
    (fun cov ->
      Table.add_row t
        [
          Table.fmt_pct cov;
          Table.fmt_ppm (Williams_brown.defect_level ~yield:0.75 ~coverage:cov);
          Table.fmt_ppm (Projection.defect_level ~yield:0.75 ~params ~coverage:cov);
        ])
    [ 0.0; 0.2; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99; 1.0 ];
  Table.print t;
  Printf.printf
    "shape check: eq. 11 below WB at mid coverage, floors at the residual %s.\n"
    (Table.fmt_ppm (Projection.residual_defect_level ~yield:0.75 ~theta_max:0.96))

(* ------------------------------------------------- shared c432s experiment *)

let experiment =
  lazy
    (let c = Dl_netlist.Benchmarks.c432s () in
     Printf.printf "\n[running the c432s experiment: layout extraction + ATPG + gate/switch fault simulation...]\n%!";
     let t0 = Sys.time () in
     let e = Experiment.run (Experiment.config ~seed:7 ~max_random_vectors:4096 c) in
     Printf.printf "[experiment done in %.1fs cpu]\n%!" (Sys.time () -. t0);
     e)

(* ---------------------------------------------------------------- fig 3 *)

let fig3 () =
  let e = Lazy.force experiment in
  section_banner "Fig.3" "histogram of extracted fault weights (c432s layout)";
  Format.printf "%a" Dl_extract.Ifa.pp_summary e.extraction;
  print_string
    (Dl_util.Histogram.render ~width:46
       (Dl_extract.Ifa.weight_histogram ~bins:14 e.extraction));
  let ws = Array.map (fun (f : Dl_switch.Realistic.t) -> f.weight) e.extraction.faults in
  let lo, hi = Dl_util.Stats.min_max ws in
  Printf.printf
    "shape check: weights span %.1f decades (paper: ~3 decades, 1e-9..1e-6);\n\
     the equal-probability assumption is untenable.\n"
    (log10 (hi /. lo))

(* ---------------------------------------------------------------- fig 4 *)

let fig4 () =
  let e = Lazy.force experiment in
  section_banner "Fig.4" "fault coverage vs vector count (c432s)";
  Format.printf "%a@\n" Experiment.pp_summary e;
  let ks = Experiment.sample_ks e ~points:16 in
  let t = Table.create
      [ ("k", Table.Right); ("T(k)", Table.Right); ("Theta(k)", Table.Right);
        ("Gamma(k)", Table.Right) ]
  in
  Array.iter
    (fun (k, tk, th, g) ->
      Table.add_row t
        [ string_of_int k; Table.fmt_pct tk; Table.fmt_pct th; Table.fmt_pct g ])
    (Experiment.coverage_rows e ~ks);
  Table.print t;
  let final = Array.length e.vectors in
  Printf.printf
    "shape check: Γ saturates at %s < T(final) = %s (equal-likelihood opens are\n\
     hard to detect); Θ saturates at %s < 1 (voltage testing is incomplete).\n"
    (Table.fmt_pct (Coverage.at e.gamma_curve final))
    (Table.fmt_pct (Coverage.at e.t_curve final))
    (Table.fmt_pct (Coverage.at e.theta_curve final))

(* ---------------------------------------------------------------- fig 5 *)

let fig5 () =
  let e = Lazy.force experiment in
  section_banner "Fig.5" "DL vs stuck-at coverage: simulation, WB, fitted eq. 11";
  let fit = Experiment.fit_params e () in
  let fit_dl =
    let ks = Experiment.sample_ks e ~points:100 in
    Projection.fit_dl ~yield:e.yield (Experiment.dl_vs_t_points e ~ks)
  in
  Printf.printf
    "fit on Θ(T) (eq. 9):  R = %.2f, θmax = %.3f\n\
     fit on DL(T) (eq. 11): R = %.2f, θmax = %.3f   (paper's c432 fit: R = 1.9, θmax = 0.96)\n\n"
    fit.params.r fit.params.theta_max fit_dl.params.r fit_dl.params.theta_max;
  let ks = Experiment.sample_ks e ~points:14 in
  let t = Table.create
      [ ("T(k)", Table.Right); ("DL sim", Table.Right); ("WB", Table.Right);
        ("eq.11 fitted", Table.Right) ]
  in
  Array.iter
    (fun (tk, dl) ->
      Table.add_row t
        [
          Table.fmt_pct tk;
          Table.fmt_ppm dl;
          Table.fmt_ppm (Williams_brown.defect_level ~yield:e.yield ~coverage:tk);
          Table.fmt_ppm
            (Projection.defect_level ~yield:e.yield ~params:fit.params ~coverage:tk);
        ])
    (Experiment.dl_vs_t_points e ~ks);
  Table.print t;
  print_endline
    "shape check: the simulated cloud dips below WB at mid coverage (R > 1:\n\
     likely bridges are easier to detect) and floors above WB near T -> 1\n\
     (θmax < 1: residual defect level); the fitted eq. 11 tracks it."

(* ---------------------------------------------------------------- fig 6 *)

let fig6 () =
  let e = Lazy.force experiment in
  section_banner "Fig.6" "DL vs unweighted realistic coverage Γ";
  let ks = Experiment.sample_ks e ~points:14 in
  let t = Table.create
      [ ("Gamma(k)", Table.Right); ("DL sim", Table.Right);
        ("1-Y^(1-Gamma)", Table.Right) ]
  in
  Array.iter
    (fun (g, dl) ->
      Table.add_row t
        [
          Table.fmt_pct g;
          Table.fmt_ppm dl;
          Table.fmt_ppm (Williams_brown.defect_level ~yield:e.yield ~coverage:g);
        ])
    (Experiment.dl_vs_gamma_points e ~ks);
  Table.print t;
  print_endline
    "shape check: a complete-but-unweighted fault set still cannot predict DL —\n\
     the same deviation appears against 1 - Y^(1-Γ) (weights are essential)."

(* -------------------------------------------------------- worked examples *)

let examples () =
  section_banner "Examples" "the paper's two worked numerical examples";
  let t = Table.create
      [ ("quantity", Table.Left); ("this library", Table.Right); ("paper", Table.Right) ]
  in
  let t1 =
    Option.get
      (Projection.required_coverage ~yield:0.75
         ~params:{ Projection.r = 2.1; theta_max = 1.0 } ~target_dl:1e-4)
  in
  Table.add_row t [ "Ex.1 T for 100 ppm (R=2.1)"; Table.fmt_pct t1; "97.7%" ];
  Table.add_row t
    [ "Ex.1 T for 100 ppm (WB)";
      Table.fmt_pct (Williams_brown.required_coverage ~yield:0.75 ~target_dl:1e-4);
      "99.97%" ];
  let dl2 =
    Projection.defect_level ~yield:0.75
      ~params:{ Projection.r = 1.0; theta_max = 0.99 } ~coverage:1.0
  in
  Table.add_row t
    [ "Ex.2 DL at T=1 (θmax=.99)"; Table.fmt_ppm dl2; "2279 ppm (see EXPERIMENTS.md)" ];
  Table.print t

(* -------------------------------------------------------------- ablation *)

(* Design-choice ablations called out in DESIGN.md: what the detection
   technique and the weighting contribute. *)
let ablation () =
  let e = Lazy.force experiment in
  section_banner "Ablation" "detection technique and weighting (c432s)";
  let final = Array.length e.vectors in
  let dl_of theta = Weighted.defect_level ~yield:e.yield ~theta in
  let t = Table.create
      [ ("configuration", Table.Left); ("coverage", Table.Right);
        ("DL floor", Table.Right) ]
  in
  let theta_v = Coverage.at e.theta_curve final in
  let theta_i = Coverage.at e.theta_iddq_curve final in
  let gamma = Coverage.at e.gamma_curve final in
  Table.add_row t
    [ "voltage-only, weighted (paper)"; Table.fmt_pct theta_v;
      Table.fmt_ppm (dl_of theta_v) ];
  Table.add_row t
    [ "voltage+IDDQ, weighted"; Table.fmt_pct theta_i; Table.fmt_ppm (dl_of theta_i) ];
  Table.add_row t
    [ "voltage-only, unweighted (Huisman)"; Table.fmt_pct gamma;
      Table.fmt_ppm (dl_of gamma) ];
  Table.print t;
  print_endline
    "reading: IDDQ removes most of the residual defect level (bridges fight);\n\
     using the unweighted coverage as Θ misestimates the floor — weights matter."

(* ------------------------------------------------------------- delay test *)

(* The paper's closing argument: delay testing must join voltage testing.
   Transition-fault coverage over the same vector sequence, plus the timing
   profile that delay tests exercise. *)
let delay () =
  let e = Lazy.force experiment in
  section_banner "Delay" "transition faults and timing (extension; paper refs [8], conclusions)";
  let c = e.Experiment.mapped_circuit in
  let faults = Dl_fault.Transition.universe c in
  let r = Dl_fault.Transition.run c ~faults ~vectors:e.Experiment.vectors in
  let curve = Dl_fault.Transition.coverage_curve r in
  let t = Table.create
      [ ("k", Table.Right); ("stuck-at T(k)", Table.Right);
        ("transition TF(k)", Table.Right) ]
  in
  let ks = Experiment.sample_ks e ~points:10 in
  Array.iter
    (fun k ->
      Table.add_row t
        [ string_of_int k;
          Table.fmt_pct (Coverage.at e.Experiment.t_curve k);
          Table.fmt_pct (Coverage.at curve k) ])
    ks;
  Table.print t;
  Printf.printf
    "transition coverage lags stuck-at at every k (two conditions per      detection)
and saturates at %s; a dedicated two-pattern ATPG      (Transition_atpg) covers the rest.
"
    (Table.fmt_pct (Dl_fault.Transition.coverage r));
  let timing = Dl_logic.Timing.analyze c in
  Printf.printf
    "critical path: %.1f delay units through %d stages; worst slack %.2f
"
    (Dl_logic.Timing.critical_path_delay timing)
    (List.length (Dl_logic.Timing.critical_path timing))
    (Dl_logic.Timing.worst_slack timing)

(* ----------------------------------------------------------- test quality *)

let quality () =
  let e = Lazy.force experiment in
  section_banner "Quality" "n-detect profile and fault sampling (extension)";
  let c = e.Experiment.mapped_circuit in
  (* n-detect over a manageable prefix of the vector sequence *)
  let budget = min 256 (Array.length e.Experiment.vectors) in
  let vectors = Array.sub e.Experiment.vectors 0 budget in
  let dict = Dl_fault.Dictionary.build c ~faults:e.Experiment.stuck_faults ~vectors in
  let t = Table.create [ ("n", Table.Right); ("n-detect coverage", Table.Right) ] in
  List.iter
    (fun (n, cov) -> Table.add_row t [ string_of_int n; Table.fmt_pct cov ])
    (Dl_fault.Dictionary.n_detect_profile dict ~max_n:8);
  Table.print t;
  Printf.printf "compacted test set: %d of %d vectors preserve coverage
"
    (List.length (Dl_fault.Dictionary.greedy_compaction dict))
    budget;
  (* sampling accuracy *)
  let full = Dl_fault.Fault_sim.run c ~faults:e.Experiment.stuck_faults ~vectors in
  let actual = Dl_fault.Fault_sim.coverage full in
  let est =
    Dl_fault.Sampling.estimate_coverage ~seed:5
      ~sample_size:(Array.length e.Experiment.stuck_faults / 3)
      c ~faults:e.Experiment.stuck_faults ~vectors
  in
  Printf.printf
    "sampled coverage %.2f%% ± %.2f%% (95%%) vs exact %.2f%% — %s
"
    (100.0 *. est.coverage) (100.0 *. est.half_width) (100.0 *. actual)
    (if Dl_fault.Sampling.interval_ok est ~actual then "interval covers" else "MISS")

(* ---------------------------------------------------------- resistive bridges *)

(* How much of the extracted bridge population stays voltage-detectable as
   bridge resistance grows (Renovell's resistive bridging model): the
   physical knob behind theta_max. *)
let resistive () =
  let e = Lazy.force experiment in
  section_banner "Resistive" "bridge coverage vs short resistance (extension)";
  let m = Dl_cell.Mapping.flatten e.Experiment.mapped_circuit in
  let network = Dl_switch.Network.build m in
  (* The 40 heaviest extracted bridges carry most of the weight. *)
  let bridges =
    Array.to_list e.Experiment.extraction.faults
    |> List.filter_map (fun (f : Dl_switch.Realistic.t) ->
           match f.kind with
           | Dl_switch.Realistic.Bridge { node_a; node_b } ->
               Some (f.weight, (node_a, node_b))
           | _ -> None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.filteri (fun i _ -> i < 40)
    |> List.map snd |> Array.of_list
  in
  let budget = min 128 (Array.length e.Experiment.vectors) in
  let vectors = Array.sub e.Experiment.vectors 0 budget in
  let sweep =
    Dl_switch.Resistive.coverage_vs_resistance network ~bridges ~vectors
      ~resistances:[| 0.0; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 |]
  in
  let t = Table.create
      [ ("R_bridge (nmos units)", Table.Right); ("bridges detected", Table.Right) ]
  in
  Array.iter
    (fun (r, cov) ->
      Table.add_row t [ Printf.sprintf "%.1f" r; Table.fmt_pct cov ])
    sweep;
  Table.print t;
  print_endline
    "higher-resistance shorts stop flipping logic and escape the voltage test:
     the resistive tail is part of the residual defect level that IDDQ recovers."

(* ------------------------------------------------------------ clustered DL *)

let clustered () =
  section_banner "Clustered" "defect level under clustered statistics (extension)";
  let t = Table.create
      [ ("T", Table.Right); ("Poisson (WB)", Table.Right);
        ("alpha = 2", Table.Right); ("alpha = 0.5", Table.Right) ]
  in
  List.iter
    (fun cov ->
      Table.add_row t
        [
          Table.fmt_pct cov;
          Table.fmt_ppm (Williams_brown.defect_level ~yield:0.75 ~coverage:cov);
          Table.fmt_ppm (Clustered.defect_level ~yield:0.75 ~alpha:2.0 ~coverage:cov);
          Table.fmt_ppm (Clustered.defect_level ~yield:0.75 ~alpha:0.5 ~coverage:cov);
        ])
    [ 0.0; 0.5; 0.8; 0.9; 0.95; 0.99 ];
  Table.print t;
  print_endline
    "clustering (small alpha) lowers DL at equal yield/coverage: faulty dies
     carry several faults and partial tests catch them — the statistics-side
     view of Agrawal's multiple-fault argument."

(* ---------------------------------------------------------- seed stability *)

(* The fitted parameters are statements about the circuit and the defect
   statistics, not about one vector sequence: re-running with independent
   ATPG seeds must give consistent (R, theta_max). *)
let stability () =
  section_banner "Stability" "fitted parameters across independent seeds (extension)";
  let circuit = Dl_netlist.Benchmarks.c432s_small () in
  let t = Table.create
      [ ("seed", Table.Right); ("vectors", Table.Right); ("fitted R", Table.Right);
        ("fitted θmax", Table.Right) ]
  in
  let rs = ref [] and thetas = ref [] in
  List.iter
    (fun seed ->
      let e =
        Experiment.run (Experiment.config ~seed ~max_random_vectors:512 circuit)
      in
      let fit = Experiment.fit_params e () in
      rs := fit.params.r :: !rs;
      thetas := fit.params.theta_max :: !thetas;
      Table.add_row t
        [
          string_of_int seed;
          string_of_int (Array.length e.vectors);
          Printf.sprintf "%.3f" fit.params.r;
          Printf.sprintf "%.3f" fit.params.theta_max;
        ])
    [ 3; 7; 13; 29; 71 ];
  Table.print t;
  let arr l = Array.of_list l in
  Printf.printf "R = %.3f ± %.3f, θmax = %.3f ± %.3f over 5 seeds\n"
    (Dl_util.Stats.mean (arr !rs))
    (Dl_util.Stats.stddev (arr !rs))
    (Dl_util.Stats.mean (arr !thetas))
    (Dl_util.Stats.stddev (arr !thetas))

(* -------------------------------------------------------------- stats sweep *)

(* The physical reading of R: it tracks bridging dominance.  Sweep the
   open-defect density and watch the fitted (R, theta_max) respond — more
   opens (hard, equal-likelihood faults) pull R down and theta_max down. *)
let sweep () =
  section_banner "Sweep" "fitted (R, θmax) vs open-defect density (extension)";
  let circuit = Dl_netlist.Benchmarks.c432s_small () in
  let t = Table.create
      [ ("open-density scale", Table.Right); ("fitted R", Table.Right);
        ("fitted θmax", Table.Right); ("Θ final", Table.Right) ]
  in
  List.iter
    (fun scale ->
      let stats =
        List.fold_left
          (fun acc layer ->
            Dl_extract.Defect_stats.scale_class acc
              (Dl_extract.Defect_stats.Open_on layer) scale)
          Dl_extract.Defect_stats.default
          [ Dl_layout.Geom.Metal1; Dl_layout.Geom.Metal2; Dl_layout.Geom.Poly ]
      in
      let e =
        Experiment.run
          (Experiment.config ~seed:7 ~max_random_vectors:512 ~stats circuit)
      in
      let fit = Experiment.fit_params e () in
      Table.add_row t
        [
          Printf.sprintf "%.1fx" scale;
          Printf.sprintf "%.3f" fit.params.r;
          Printf.sprintf "%.3f" fit.params.theta_max;
          Table.fmt_pct (Coverage.at e.theta_curve (Array.length e.vectors));
        ])
    [ 0.2; 1.0; 5.0; 25.0 ];
  Table.print t;
  print_endline
    "clean (metal) opens behave like detectable stuck-ats: they pull R toward\n\
     1 and dilute the voltage-undetectable bridge tail, nudging theta_max up.";
  (* Second knob: floating-gate (poly) opens are voltage-undetectable, the
     direct driver of theta_max. *)
  let t2 = Table.create
      [ ("poly-open scale", Table.Right); ("fitted θmax", Table.Right);
        ("Θ final", Table.Right); ("residual DL", Table.Right) ]
  in
  List.iter
    (fun scale ->
      let stats =
        Dl_extract.Defect_stats.scale_class Dl_extract.Defect_stats.default
          (Dl_extract.Defect_stats.Open_on Dl_layout.Geom.Poly) scale
      in
      let e =
        Experiment.run
          (Experiment.config ~seed:7 ~max_random_vectors:512 ~stats circuit)
      in
      let fit = Experiment.fit_params e () in
      let theta_final = Coverage.at e.theta_curve (Array.length e.vectors) in
      Table.add_row t2
        [
          Printf.sprintf "%.0fx" scale;
          Printf.sprintf "%.3f" fit.params.theta_max;
          Table.fmt_pct theta_final;
          Table.fmt_ppm
            (Projection.residual_defect_level ~yield:e.yield ~theta_max:theta_final);
        ])
    [ 1.0; 10.0; 50.0 ];
  Table.print t2;
  print_endline
    "floating (unknown-level) opens are invisible to voltage testing: their\n\
     density directly sets theta_max and hence the residual defect level --\n\
     the knob the paper's conclusions point current/delay testing at."

(* --------------------------------------------------------------- lot check *)

let lot () =
  let e = Lazy.force experiment in
  section_banner "Lot" "Monte-Carlo production lot vs the analytic model";
  let detected =
    Array.map
      (fun (d : Dl_switch.Swift.detection) -> d.voltage <> None)
      e.Experiment.swift_result.detection
  in
  let lot =
    Production.simulate ~seed:13 ~dies:200_000 ~weights:e.Experiment.scaled_weights
      ~detected ()
  in
  let analytic =
    Weighted.defect_level_of_weights ~weights:e.Experiment.scaled_weights ~detected
  in
  Printf.printf
    "200k simulated dies with the extracted fault population:
    \  observed yield        %.4f   (target 0.75)
    \  empirical defect lvl  %s
    \  eq. 3 prediction      %s
"
    (Production.observed_yield lot)
    (Table.fmt_ppm (Production.defect_level lot))
    (Table.fmt_ppm analytic)

(* ------------------------------------------------------- parallel engine *)

(* Wall-clock speedup of Fault_sim.run_parallel over the serial engine on a
   c432-scale workload (collapsed fault universe, 1024 random vectors, no
   dropping so every block carries the full fault load), plus a bit-for-bit
   identity check of every merged field at each domain count. *)
let par () =
  section_banner "Par" "multicore PPSFP speedup vs domain count (c432s)";
  let c =
    Dl_netlist.Transform.decompose_for_cells (Dl_netlist.Benchmarks.c432s ())
  in
  let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
  let rng = Dl_util.Rng.create 99 in
  let vectors =
    Array.init 1024 (fun _ ->
        Array.init (Dl_netlist.Circuit.input_count c) (fun _ ->
            Dl_util.Rng.bool rng))
  in
  Printf.printf "%d faults x %d vectors, recommended domains: %d\n%!"
    (Array.length faults) (Array.length vectors)
    (Dl_util.Parallel.default_domains ());
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let serial, t_serial =
    time (fun () -> Dl_fault.Fault_sim.run ~drop_detected:false c ~faults ~vectors)
  in
  Printf.printf "serial: %.3f s (%d detected, %d gate evals)\n%!" t_serial
    (Dl_fault.Fault_sim.detected_count serial)
    serial.gate_evaluations;
  (* Old-vs-new: the retained pre-kernel engine on the same workload. *)
  let reference, t_reference =
    time (fun () ->
        Dl_fault.Fault_sim.Reference.run ~drop_detected:false c ~faults ~vectors)
  in
  Printf.printf
    "reference (pre-kernel) serial: %.3f s — kernel speedup %.2fx, identical: %s\n%!"
    t_reference (t_reference /. t_serial)
    (if reference.first_detection = serial.first_detection
        && reference.gate_evaluations = serial.gate_evaluations
     then "yes"
     else "NO");
  let counts =
    List.sort_uniq Stdlib.compare [ 1; 2; 4; Dl_util.Parallel.default_domains () ]
  in
  let t = Table.create
      [ ("domains", Table.Right); ("time", Table.Right); ("speedup", Table.Right);
        ("identical", Table.Right) ]
  in
  List.iter
    (fun domains ->
      Dl_util.Parallel.with_pool ~domains (fun pool ->
          let r, dt =
            time (fun () ->
                Dl_fault.Fault_sim.run_parallel ~drop_detected:false ~pool c
                  ~faults ~vectors)
          in
          let identical =
            r.first_detection = serial.first_detection
            && r.gate_evaluations = serial.gate_evaluations
          in
          Table.add_row t
            [ string_of_int domains;
              Printf.sprintf "%.3f s" dt;
              Printf.sprintf "%.2fx" (t_serial /. dt);
              (if identical then "yes" else "NO") ]))
    counts;
  Table.print t;
  (* The production mode (fault dropping) must agree too. *)
  let a = Dl_fault.Fault_sim.run ~drop_detected:true c ~faults ~vectors in
  let b =
    Dl_fault.Fault_sim.run_parallel ~drop_detected:true ~domains:4 c ~faults
      ~vectors
  in
  Printf.printf "drop_detected mode identical at 4 domains: %s\n"
    (if a.first_detection = b.first_detection
        && a.gate_evaluations = b.gate_evaluations
     then "yes"
     else "NO");
  print_endline
    "determinism: sharding is by fault index and merges preserve it, so the\n\
     table above must read identical = yes at every domain count."

(* ----------------------------------------------------------- flat kernel *)

(* Old-vs-new simulation-kernel gate: measures gate-evaluation throughput
   and steady-state allocation of the flat CSR engine against the retained
   reference engine, checks the results are bit-for-bit identical, and
   writes the machine-readable BENCH_fault_sim.json so the perf trajectory
   is tracked run over run.  Exits non-zero if the hot loop allocates
   (> 0.5 minor words per gate evaluation would mean a box crept back in —
   a genuine per-eval box costs >= 3 words). *)
let kernel_bench () =
  section_banner "Kernel" "flat CSR kernel vs reference engine (c432s)";
  let c =
    Dl_netlist.Transform.decompose_for_cells (Dl_netlist.Benchmarks.c432s ())
  in
  let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
  let rng = Dl_util.Rng.create 99 in
  let vectors =
    Array.init 4096 (fun _ ->
        Array.init (Dl_netlist.Circuit.input_count c) (fun _ ->
            Dl_util.Rng.bool rng))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let measure ~section ~run_new ~run_ref =
    (* Warm-up runs amortize lowering and first-touch costs out of both
       the timing and the Gc delta. *)
    let reference : Dl_fault.Fault_sim.result = run_ref () in
    let warm : Dl_fault.Fault_sim.result = run_new () in
    assert (warm.first_detection = reference.first_detection);
    assert (warm.gate_evaluations = reference.gate_evaluations);
    let m0 = Gc.minor_words () in
    let result, t_new = time run_new in
    let m1 = Gc.minor_words () in
    let _, t_ref = time run_ref in
    let evals = float_of_int result.gate_evaluations in
    let gate_evals_per_sec = evals /. t_new in
    let minor_words_per_eval = (m1 -. m0) /. evals in
    let speedup = t_ref /. t_new in
    Printf.printf
      "%-10s kernel %.3fs (%.1fM evals/s, %.4f minor words/eval)  \
       reference %.3fs  speedup %.2fx\n%!"
      section t_new (gate_evals_per_sec /. 1e6) minor_words_per_eval t_ref
      speedup;
    (section, gate_evals_per_sec, minor_words_per_eval, speedup)
  in
  (* Explicit lets: list literals evaluate right-to-left in OCaml, which
     would scramble the printed order. *)
  let row_micro =
    measure ~section:"micro"
      ~run_new:(fun () ->
        Dl_fault.Fault_sim.run ~drop_detected:false c ~faults ~vectors)
      ~run_ref:(fun () ->
        Dl_fault.Fault_sim.Reference.run ~drop_detected:false c ~faults
          ~vectors)
  in
  let row_drop =
    measure ~section:"drop"
      ~run_new:(fun () ->
        Dl_fault.Fault_sim.run ~drop_detected:true c ~faults ~vectors)
      ~run_ref:(fun () ->
        Dl_fault.Fault_sim.Reference.run ~drop_detected:true c ~faults
          ~vectors)
  in
  let rows = [ row_micro; row_drop ] in
  (* --- PR 7 engine-variant rows on c880s-class and larger circuits ----- *)
  (* One row per engine variant per circuit: wall-clock over the same
     1024-vector no-drop workload (so throughput in fault-vector pairs per
     second is engine-comparable even though the inference engines
     evaluate far fewer gates), speedup vs the PR 2 flat kernel, and
     steady-state allocation per gate evaluation measured as the delta
     between a half- and a full-length run (cancelling per-run lowering
     and buffer setup). *)
  let failed = ref false in
  let variant_rows_for (cname, build) =
    let c = Dl_netlist.Transform.decompose_for_cells (build ()) in
    let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
    let rng = Dl_util.Rng.create 4242 in
    let vectors =
      Array.init 1024 (fun _ ->
          Array.init (Dl_netlist.Circuit.input_count c) (fun _ ->
              Dl_util.Rng.bool rng))
    in
    let half = Array.sub vectors 0 512 in
    let run engine vecs =
      Dl_fault.Fault_sim.run_with ~engine ~drop_detected:false c ~faults
        ~vectors:vecs
    in
    Printf.printf "\n%s: %d gates, %d collapsed faults, %d vectors\n%!" cname
      (Dl_netlist.Circuit.node_count c - Dl_netlist.Circuit.input_count c)
      (Array.length faults) (Array.length vectors);
    let reference = run Dl_fault.Fault_sim.Reference vectors in
    let pairs = float_of_int (Array.length faults * Array.length vectors) in
    let raw =
      List.map
        (fun engine ->
          ignore (run engine half) (* warm: fault-collapse, first touch *);
          let mh0 = Gc.minor_words () in
          let r_half = run engine half in
          let mh1 = Gc.minor_words () in
          let mf0 = Gc.minor_words () in
          let r, t = time (fun () -> run engine vectors) in
          let mf1 = Gc.minor_words () in
          let identical = r.first_detection = reference.first_detection in
          if not identical then begin
            Printf.eprintf "FAIL: %s/%s detection words differ from reference\n"
              cname
              (Dl_fault.Fault_sim.engine_to_string engine);
            failed := true
          end;
          let d_evals =
            r.Dl_fault.Fault_sim.stats.Dl_fault.Fault_sim.Stats.gate_evaluations
            - r_half.Dl_fault.Fault_sim.stats
                .Dl_fault.Fault_sim.Stats.gate_evaluations
          in
          let words_per_eval =
            if d_evals <= 0 then 0.0
            else (mf1 -. mf0 -. (mh1 -. mh0)) /. float_of_int d_evals
          in
          (engine, t, r, words_per_eval, identical))
        Dl_fault.Fault_sim.engines
    in
    let t_flat =
      List.fold_left
        (fun acc (e, t, _, _, _) ->
          if e = Dl_fault.Fault_sim.Flat then t else acc)
        nan raw
    in
    let table = Table.create
        [ ("engine", Table.Left); ("time", Table.Right);
          ("Mfault-vec/s", Table.Right); ("vs flat", Table.Right);
          ("words/eval", Table.Right); ("identical", Table.Right) ]
    in
    let rows =
      List.map
        (fun (engine, t, (r : Dl_fault.Fault_sim.result), wpe, identical) ->
          let speedup = t_flat /. t in
          Table.add_row table
            [ Dl_fault.Fault_sim.engine_to_string engine;
              Printf.sprintf "%.3f s" t;
              Printf.sprintf "%.2f" (pairs /. t /. 1e6);
              Printf.sprintf "%.2fx" speedup;
              Printf.sprintf "%.4f" wpe;
              (if identical then "yes" else "NO") ];
          (cname, engine, t, pairs /. t, speedup, wpe, r.Dl_fault.Fault_sim.stats))
        raw
    in
    Table.print table;
    (* gates: the PR 7 engines must beat the PR 2 flat kernel at least 2x
       on these circuits, and the wide hot loop must stay allocation-free *)
    let best =
      List.fold_left
        (fun acc (_, e, _, _, s, _, _) ->
          if e = Dl_fault.Fault_sim.Reference || e = Dl_fault.Fault_sim.Flat
          then acc
          else max acc s)
        0.0 rows
    in
    if best < 2.0 then begin
      Printf.eprintf
        "FAIL: %s: best engine-variant speedup %.2fx < 2x over the flat \
         kernel\n"
        cname best;
      failed := true
    end;
    List.iter
      (fun (_, e, _, _, _, wpe, _) ->
        if e = Dl_fault.Fault_sim.Wide && wpe > 0.05 then begin
          Printf.eprintf
            "FAIL: %s: wide hot loop allocates %.4f minor words per gate \
             evaluation (gate: 0.05)\n"
            cname wpe;
          failed := true
        end)
      rows;
    rows
  in
  let variant_rows =
    List.concat_map variant_rows_for
      [ ("c880s", Dl_netlist.Benchmarks.c880s);
        ("c1355s", Dl_netlist.Benchmarks.c1355s);
        ("c1908s", Dl_netlist.Benchmarks.c1908s) ]
  in
  let json_path =
    match Sys.getenv_opt "BENCH_FAULT_SIM_JSON" with
    | Some p -> p
    | None -> "BENCH_fault_sim.json"
  in
  let oc = open_out json_path in
  output_string oc "[\n";
  List.iteri
    (fun i (section, geps, words, speedup) ->
      Printf.fprintf oc
        "  {\"section\": %S, \"gate_evals_per_sec\": %.0f, \
         \"minor_words_per_eval\": %.4f, \"speedup_vs_reference\": %.3f}%s\n"
        section geps words speedup
        (if i = List.length rows - 1 && variant_rows = [] then "" else ","))
    rows;
  List.iteri
    (fun i (cname, engine, t, tput, speedup, wpe, stats) ->
      let s = stats in
      Printf.fprintf oc
        "  {\"section\": %S, \"engine\": %S, \"time_s\": %.4f, \
         \"fault_vectors_per_sec\": %.0f, \"speedup_vs_flat\": %.3f, \
         \"minor_words_per_gate_eval\": %.4f, \"stats\": \
         {\"gate_evaluations\": %d, \"events\": %d, \"faults_inferred\": %d, \
         \"faults_simulated\": %d, \"stem_simulations\": %d, \
         \"faults_dropped\": %d}}%s\n"
        cname
        (Dl_fault.Fault_sim.engine_to_string engine)
        t tput speedup wpe s.Dl_fault.Fault_sim.Stats.gate_evaluations
        s.Dl_fault.Fault_sim.Stats.events
        s.Dl_fault.Fault_sim.Stats.faults_inferred
        s.Dl_fault.Fault_sim.Stats.faults_simulated
        s.Dl_fault.Fault_sim.Stats.stem_simulations
        s.Dl_fault.Fault_sim.Stats.faults_dropped
        (if i = List.length variant_rows - 1 then "" else ","))
    variant_rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  let micro_words =
    List.fold_left
      (fun acc (s, _, w, _) -> if s = "micro" then w else acc)
      infinity rows
  in
  if micro_words > 0.5 then begin
    Printf.eprintf
      "FAIL: steady-state hot loop allocates %.4f minor words per gate \
       evaluation (expected ~0)\n"
      micro_words;
    exit 1
  end;
  if !failed then exit 1;
  print_endline
    "gate: identity asserted against the reference engine on every row;\n\
     steady-state allocation ~0 words per gate evaluation; PR 7 engines\n\
     >= 2x over the flat kernel on c880s/c1355s/c1908s."

(* ------------------------------------------------------------ store bench *)

(* Cold-vs-warm gate for the artifact store: the same c432s pipeline twice
   through one fresh cache must (a) produce a bit-identical summary and
   fit, (b) hit every stage on the second run, and (c) be meaningfully
   faster warm.  Writes the machine-readable BENCH_store.json (or
   $BENCH_STORE_JSON) so the caching win is tracked run over run. *)
let store_bench () =
  section_banner "Store" "artifact cache cold vs warm (c432s pipeline)";
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlproj_store_bench_%d" (Unix.getpid ()))
  in
  if Sys.file_exists cache_dir then rm_rf cache_dir;
  let run () =
    let c = Dl_netlist.Benchmarks.c432s () in
    let t0 = Unix.gettimeofday () in
    let e =
      Experiment.run
        (Experiment.config ~seed:7 ~max_random_vectors:256 ~cache_dir c)
    in
    (e, Unix.gettimeofday () -. t0)
  in
  Printf.printf "[cold run...]\n%!";
  let cold, cold_s = run () in
  Printf.printf "[warm run...]\n%!";
  let warm, warm_s = run () in
  let total = List.length warm.Experiment.stage_reports in
  let hits =
    List.length
      (List.filter
         (fun (r : Dl_store.Stage.report) -> r.outcome = Dl_store.Stage.Hit)
         warm.Experiment.stage_reports)
  in
  let hit_rate = float_of_int hits /. float_of_int total in
  let speedup = cold_s /. warm_s in
  Printf.printf "cold %.3f s, warm %.3f s — %.0fx, warm hits %d/%d\n" cold_s
    warm_s speedup hits total;
  Format.printf "%a@." Dl_store.Stage.pp_reports warm.Experiment.stage_reports;
  let identical =
    cold.Experiment.summary = warm.Experiment.summary
    && cold.Experiment.fit = warm.Experiment.fit
  in
  rm_rf cache_dir;
  let json_path =
    match Sys.getenv_opt "BENCH_STORE_JSON" with
    | Some p -> p
    | None -> "BENCH_store.json"
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\"section\": \"store\", \"cold_s\": %.3f, \"warm_s\": %.3f, \
     \"warm_speedup\": %.2f, \"hit_rate\": %.3f}\n"
    cold_s warm_s speedup hit_rate;
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  let failed = ref false in
  if not identical then begin
    Printf.eprintf "FAIL: warm summary/fit differ from cold\n";
    failed := true
  end;
  if hit_rate < 1.0 then begin
    Printf.eprintf "FAIL: warm run hit only %d of %d stages\n" hits total;
    failed := true
  end;
  if speedup < 3.0 then begin
    Printf.eprintf "FAIL: warm speedup %.2fx < 3x\n" speedup;
    failed := true
  end;
  if !failed then exit 1;
  print_endline
    "gate: warm run bit-identical to cold and served entirely from cache."

(* ------------------------------------------------------------ serve bench *)

(* Loopback load test for the Dl_serve daemon: N concurrent clients fire
   submissions drawn from a small set of distinct configs at one warm
   server, so identical requests coalesce in flight or hit the result
   cache and only a handful of underlying experiments ever run.  Measures
   end-to-end throughput and client-observed latency percentiles, then
   gates: every request answered with a Result, answers for the same key
   identical, and the coalescing hit-rate above one half.  Writes the
   machine-readable BENCH_serve.json (or $BENCH_SERVE_JSON). *)
let serve_bench () =
  section_banner "Serve" "concurrent loopback clients vs the projection daemon";
  let module P = Dl_serve.Protocol in
  let socket =
    Dl_serve.Transport.Unix_socket
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "dlproj_bench_%d.sock" (Unix.getpid ())))
  in
  let cfg =
    Dl_serve.Server.config ~workers:2 ~queue_capacity:64 ~domains_per_worker:1
      ~listen:socket ()
  in
  let server = Dl_serve.Server.start cfg in
  let clients = 8 and per_client = 12 and distinct = 4 in
  let total = clients * per_client in
  let spec seed =
    P.job_spec ~seed ~max_random_vectors:64 (P.Builtin "c17")
  in
  let latencies = Array.make total nan in
  let failures = Atomic.make 0 in
  let by_key : (string, P.result_payload) Hashtbl.t = Hashtbl.create 8 in
  let key_mutex = Mutex.create () in
  let mismatches = Atomic.make 0 in
  let client_thread i () =
    Dl_serve.Client.with_client socket (fun c ->
        for r = 0 to per_client - 1 do
          let t0 = Unix.gettimeofday () in
          match Dl_serve.Client.submit c (spec ((i + r) mod distinct)) with
          | P.Result served ->
              latencies.((i * per_client) + r) <-
                (Unix.gettimeofday () -. t0) *. 1000.0;
              let p = served.P.payload in
              Mutex.lock key_mutex;
              (match Hashtbl.find_opt by_key p.P.request_key with
              | None -> Hashtbl.replace by_key p.P.request_key p
              | Some first -> if compare first p <> 0 then Atomic.incr mismatches);
              Mutex.unlock key_mutex
          | _ -> Atomic.incr failures
        done)
  in
  Printf.printf "[%d clients x %d requests, %d distinct configs...]\n%!"
    clients per_client distinct;
  let wall0 = Unix.gettimeofday () in
  let threads = List.init clients (fun i -> Thread.create (client_thread i) ()) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. wall0 in
  let stats = Dl_serve.Server.stats server in
  Dl_serve.Server.stop server;
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let pct q =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
  in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  let req_per_sec = float_of_int total /. wall_s in
  let coalesce_rate =
    float_of_int (stats.P.completed - stats.P.executed)
    /. float_of_int (max 1 stats.P.completed)
  in
  Printf.printf
    "%d requests in %.3f s — %.0f req/s, p50 %.2f ms, p99 %.2f ms\n"
    total wall_s req_per_sec p50 p99;
  Printf.printf "executed %d, completed %d — coalesce/cache hit-rate %.2f\n"
    stats.P.executed stats.P.completed coalesce_rate;
  let json_path =
    match Sys.getenv_opt "BENCH_SERVE_JSON" with
    | Some p -> p
    | None -> "BENCH_serve.json"
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\"section\": \"serve\", \"clients\": %d, \"requests\": %d, \
     \"wall_s\": %.3f, \"req_per_sec\": %.0f, \"p50_ms\": %.3f, \
     \"p99_ms\": %.3f, \"executed\": %d, \"coalesce_rate\": %.3f}\n"
    clients total wall_s req_per_sec p50 p99 stats.P.executed coalesce_rate;
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  let failed = ref false in
  if Atomic.get failures > 0 then begin
    Printf.eprintf "FAIL: %d of %d requests were not answered with a Result\n"
      (Atomic.get failures) total;
    failed := true
  end;
  if Atomic.get mismatches > 0 then begin
    Printf.eprintf "FAIL: %d answers differed from the first for their key\n"
      (Atomic.get mismatches);
    failed := true
  end;
  if coalesce_rate <= 0.5 then begin
    Printf.eprintf "FAIL: coalesce/cache hit-rate %.2f <= 0.5\n" coalesce_rate;
    failed := true
  end;
  if !failed then exit 1;
  print_endline
    "gate: every request answered, per-key answers identical, majority\n\
     of requests served without re-execution."

(* ------------------------------------------------------- serve-load bench *)

(* Open-loop smoke of the Load_gen platform: a seeded Poisson schedule over
   a benchmark + generated-family mix replayed against a warm loopback
   server.  Unlike the closed-loop "serve" section above, arrivals do not
   wait for responses, so rejection/expiry/tail-latency behaviour under a
   fixed offered rate is visible.  Gates: no failed exchanges, a minimum
   sustained throughput, and a bounded p99.  Writes BENCH_serve_load.json
   (or $BENCH_SERVE_LOAD_JSON). *)
let serve_load_bench () =
  section_banner "Serve-load"
    "seeded open-loop traffic vs the projection daemon";
  let module L = Dl_serve.Load_gen in
  let socket =
    Dl_serve.Transport.Unix_socket
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "dlproj_bench_load_%d.sock" (Unix.getpid ())))
  in
  let server =
    Dl_serve.Server.start
      (Dl_serve.Server.config ~workers:2 ~queue_capacity:64
         ~domains_per_worker:1 ~listen:socket ())
  in
  let cfg =
    L.config ~rate:30.0 ~duration:2.0
      ~mix:[ ("c17", 3); ("tree-like", 1) ]
      ~seed:11 ~gates:40 ~distinct:2 ~max_random_vectors:32 ()
  in
  Printf.printf "[%.0f req/s for %.1f s over %s, %d distinct seeds/class...]\n%!"
    cfg.L.rate cfg.L.duration
    (String.concat "," (List.map fst cfg.L.mix))
    cfg.L.distinct;
  let _records, report = L.run ~clients:4 ~socket cfg in
  Dl_serve.Server.stop server;
  Format.printf "%a@." L.pp_report report;
  let json_path =
    match Sys.getenv_opt "BENCH_SERVE_LOAD_JSON" with
    | Some p -> p
    | None -> "BENCH_serve_load.json"
  in
  let oc = open_out json_path in
  Printf.fprintf oc "{\"section\": \"serve-load\", \"report\": %s}\n"
    (L.report_to_json report);
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  (* Smoke gates: generous (cold family experiments dominate the tail on a
     loaded CI box) but fatal for gross regressions — a wedged queue, a
     coalescer that stopped deduplicating, or a p99 runaway. *)
  let min_throughput = 2.0 and max_p99_ms = 30_000.0 in
  let failed = ref false in
  if report.L.failed > 0 then begin
    Printf.eprintf "FAIL: %d of %d exchanges failed outright\n" report.L.failed
      report.L.sent;
    failed := true
  end;
  if report.L.achieved_rate < min_throughput then begin
    Printf.eprintf "FAIL: sustained throughput %.1f served/s < %.1f\n"
      report.L.achieved_rate min_throughput;
    failed := true
  end;
  if report.L.p99_ms > max_p99_ms then begin
    Printf.eprintf "FAIL: p99 %.1f ms > %.0f ms\n" report.L.p99_ms max_p99_ms;
    failed := true
  end;
  if !failed then exit 1;
  Printf.printf
    "gate: no failed exchanges, >= %.0f served/s sustained, p99 <= %.0f ms\n"
    min_throughput max_p99_ms

(* ---------------------------------------------------------- cluster bench *)

(* Loopback fleet gate: the same batch shape run against one worker alone
   and against a 1-coordinator/4-worker TCP fleet.  Gates: every request
   answered, cross-worker resubmissions bit-identical, the distributed
   store serves resubmissions without recomputing (fetch-through hit-rate
   >= 0.9), and aggregate throughput — >= 3x on a >= 4-core host, a
   reduced no-regression bound on smaller hosts (an in-process fleet
   cannot out-run its core count).  Appends a cluster row to
   BENCH_serve.json (or $BENCH_SERVE_JSON). *)
let cluster_bench () =
  section_banner "Cluster" "1-coordinator/4-worker loopback fleet vs a single worker";
  let module P = Dl_serve.Protocol in
  let module W = Dl_cluster.Worker in
  let module Coord = Dl_cluster.Coord in
  let module Ring = Dl_cluster.Hash_ring in
  let module T = Dl_serve.Transport in
  let loopback = T.Tcp ("127.0.0.1", 0) in
  let cores = Dl_util.Parallel.default_domains () in
  let dpw = if cores >= 4 then 2 else 1 in
  let fleet_size = 4 and n_jobs = 12 and clients = 4 in
  let spec seed =
    P.job_spec ~seed ~max_random_vectors:128 (P.Builtin "c432s_small")
  in
  let tmp tag =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dlproj_bench_cluster_%d_%s" (Unix.getpid ()) tag)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let rec remove_tree path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun e -> remove_tree (Filename.concat path e))
          (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let failures = Atomic.make 0 in
  (* [clients] threads drain a shared batch of distinct seeds; returns
     wall seconds and the answers by seed *)
  let run_batch endpoint seeds =
    let seeds = Array.of_list seeds in
    let next = Atomic.make 0 in
    let answers = Array.make (Array.length seeds) None in
    let worker () =
      Dl_serve.Client.with_client endpoint (fun c ->
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < Array.length seeds then begin
              (match Dl_serve.Client.submit c (spec seeds.(i)) with
              | P.Result served -> answers.(i) <- Some served.P.payload
              | _ -> Atomic.incr failures);
              loop ()
            end
          in
          loop ())
    in
    let wall0 = Unix.gettimeofday () in
    let threads = List.init clients (fun _ -> Thread.create worker ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. wall0 in
    (wall, Array.to_list (Array.map2 (fun s a -> (s, a)) seeds answers))
  in
  (* baseline: the same batch shape against one worker alone *)
  let base_dir = tmp "base" in
  let w0 =
    W.start ~workers:1 ~domains_per_worker:dpw ~cache_dir:base_dir
      ~listen:loopback ()
  in
  Printf.printf "[baseline: %d jobs against 1 worker...]\n%!" n_jobs;
  let t_base, _ = run_batch (W.bound w0) (List.init n_jobs Fun.id) in
  W.stop w0;
  remove_tree base_dir;
  (* fleet: 4 workers with the peer store tier, one coordinator; fresh
     seeds so no phase warms the other *)
  let dirs = List.init fleet_size (fun i -> tmp (Printf.sprintf "w%d" i)) in
  let ws =
    List.map
      (fun dir ->
        W.start ~workers:1 ~domains_per_worker:dpw ~cache_dir:dir
          ~listen:loopback ())
      dirs
  in
  let fleet = List.map W.bound ws in
  List.iter (fun w -> W.set_peers w fleet) ws;
  let coord =
    Coord.start
      (Coord.config ~max_in_flight:4 ~probe_period_s:0.5 ~listen:loopback
         ~workers:fleet ())
  in
  Printf.printf "[fleet: %d jobs against %d workers via the coordinator...]\n%!"
    n_jobs fleet_size;
  let t_fleet, fleet_answers =
    run_batch (Coord.bound coord) (List.init n_jobs (fun i -> 100 + i))
  in
  (* fetch-through: resubmit every job directly to a worker that did not
     execute it; the answer must be assembled from the distributed store
     (bit-identical, nothing recomputed) *)
  let ring = Ring.create (List.map T.to_string fleet) in
  let mismatches = ref 0 and hits = ref 0 and misses = ref 0 in
  let strip (p : P.result_payload) =
    { p with P.stage_hits = 0; stage_misses = 0 }
  in
  List.iter
    (fun (seed, answer) ->
      match answer with
      | None -> ()
      | Some (payload : P.result_payload) ->
          (* ring route: home executed it (modulo stealing); the next
             distinct members hold none of its artifacts locally *)
          let route = Ring.route ring payload.P.request_key in
          let rec resubmit = function
            | [] -> ()
            | name :: rest -> (
                match
                  Dl_serve.Client.with_client (T.of_string name) (fun c ->
                      Dl_serve.Client.submit c (spec seed))
                with
                | P.Result served when served.P.coalesced ->
                    (* this worker executed the original (stolen or
                       home); ask the next one *)
                    resubmit rest
                | P.Result served ->
                    if strip served.P.payload <> strip payload then
                      incr mismatches;
                    hits := !hits + served.P.payload.P.stage_hits;
                    misses := !misses + served.P.payload.P.stage_misses
                | _ -> Atomic.incr failures)
          in
          resubmit (match route with [] -> [] | _home :: rest -> rest))
    fleet_answers;
  Coord.stop coord;
  List.iter W.stop ws;
  List.iter remove_tree dirs;
  let speedup = t_base /. t_fleet in
  let hit_rate =
    float_of_int !hits /. float_of_int (max 1 (!hits + !misses))
  in
  Printf.printf
    "1 worker: %.3f s; fleet of %d: %.3f s — %.2fx aggregate throughput \
     (%d cores)\n"
    t_base fleet_size t_fleet speedup cores;
  Printf.printf
    "cross-worker resubmissions: fetch-through hit-rate %.2f, %d mismatches\n"
    hit_rate !mismatches;
  let json_path =
    match Sys.getenv_opt "BENCH_SERVE_JSON" with
    | Some p -> p
    | None -> "BENCH_serve.json"
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 json_path in
  Printf.fprintf oc
    "{\"section\": \"cluster\", \"workers\": %d, \"jobs\": %d, \
     \"cores\": %d, \"t_single_s\": %.3f, \"t_fleet_s\": %.3f, \
     \"speedup\": %.3f, \"fetch_hit_rate\": %.3f}\n"
    fleet_size n_jobs cores t_base t_fleet speedup hit_rate;
  close_out oc;
  Printf.printf "appended cluster row to %s\n" json_path;
  let failed = ref false in
  if Atomic.get failures > 0 then begin
    Printf.eprintf "FAIL: %d requests were not answered with a Result\n"
      (Atomic.get failures);
    failed := true
  end;
  if !mismatches > 0 then begin
    Printf.eprintf
      "FAIL: %d cross-worker answers differed from the fleet's\n" !mismatches;
    failed := true
  end;
  if hit_rate < 0.9 then begin
    Printf.eprintf "FAIL: fetch-through hit-rate %.2f < 0.9\n" hit_rate;
    failed := true
  end;
  let min_speedup = if cores >= 4 then 3.0 else 0.35 in
  if speedup < min_speedup then begin
    Printf.eprintf "FAIL: fleet speedup %.2fx < %.2fx (on %d cores)\n" speedup
      min_speedup cores;
    failed := true
  end;
  if !failed then exit 1;
  if cores >= 4 then
    print_endline
      "gate: all answered, cross-worker answers bit-identical, \
       fetch-through hit-rate >= 0.9, fleet >= 3x one worker."
  else
    Printf.printf
      "gate: all answered, cross-worker answers bit-identical, \
       fetch-through hit-rate >= 0.9; %d-core host, so the 3x fleet gate \
       is reduced to a %.2fx no-regression bound.\n"
      cores min_speedup

(* ---------------------------------------------------------- micro-benches *)

let micro () =
  section_banner "Micro" "Bechamel engine benchmarks (time per run)";
  let open Bechamel in
  let c432 = Dl_netlist.Transform.decompose_for_cells (Dl_netlist.Benchmarks.c432s ()) in
  let small = Dl_netlist.Transform.decompose_for_cells (Dl_netlist.Benchmarks.c432s_small ()) in
  let rng = Dl_util.Rng.create 99 in
  let words = Dl_logic.Sim2.random_words rng c432 in
  let faults = Dl_fault.Stuck_at.collapse c432 (Dl_fault.Stuck_at.universe c432) in
  let vectors64 =
    Array.init 64 (fun _ ->
        Array.init (Dl_netlist.Circuit.input_count c432) (fun _ -> Dl_util.Rng.bool rng))
  in
  let scoap = Dl_atpg.Scoap.compute c432 in
  let hard_fault = faults.(Array.length faults / 2) in
  let mapping = Dl_cell.Mapping.flatten small in
  let network = Dl_switch.Network.build mapping in
  let layout = Dl_layout.Layout.synthesize mapping in
  let bridge_region =
    let a = mapping.Dl_cell.Mapping.signal_node.(small.Dl_netlist.Circuit.outputs.(0)) in
    let b = mapping.Dl_cell.Mapping.signal_node.(small.Dl_netlist.Circuit.outputs.(1)) in
    Dl_switch.Solver.make network
      ~instances:
        (List.filter_map (fun g -> Dl_switch.Network.owner_instance network g) [ a; b ])
      ~modifications:[ Dl_switch.Solver.Bridge_nodes { node_a = a; node_b = b } ]
  in
  let kernel = Dl_netlist.Kernel.of_circuit c432 in
  let kernel_buf = Dl_netlist.Kernel.create_words kernel in
  let tests =
    [
      Test.make ~name:"sim2 reference: c432s, 64 patterns"
        (Staged.stage (fun () -> ignore (Dl_logic.Sim2.run c432 words)));
      Test.make ~name:"sim2 kernel: c432s, 64 patterns"
        (Staged.stage (fun () ->
             Dl_logic.Sim2.load_words kernel kernel_buf words;
             Dl_logic.Sim2.run_flat kernel kernel_buf));
      Test.make ~name:"ppsfp kernel: c432s block, all faults"
        (Staged.stage (fun () ->
             ignore (Dl_fault.Fault_sim.run c432 ~faults ~vectors:vectors64)));
      Test.make ~name:"ppsfp reference: c432s block, all faults"
        (Staged.stage (fun () ->
             ignore
               (Dl_fault.Fault_sim.Reference.run c432 ~faults ~vectors:vectors64)));
      Test.make ~name:"podem: one c432s fault"
        (Staged.stage (fun () -> ignore (Dl_atpg.Podem.generate ~scoap c432 hard_fault)));
      Test.make ~name:"scoap: c432s"
        (Staged.stage (fun () -> ignore (Dl_atpg.Scoap.compute c432)));
      Test.make ~name:"switch solver: bridge region"
        (Staged.stage (fun () ->
             ignore
               (Dl_switch.Solver.solve bridge_region
                  ~external_value:(fun _ -> Dl_logic.Ternary.V1)
                  ~charge:(fun _ -> Dl_logic.Ternary.VX))));
      Test.make ~name:"layout: c432s_small synthesize"
        (Staged.stage (fun () -> ignore (Dl_layout.Layout.synthesize mapping)));
      Test.make ~name:"ifa: c432s_small extract"
        (Staged.stage (fun () -> ignore (Dl_extract.Ifa.extract layout)));
      Test.make ~name:"eq.11 evaluation"
        (Staged.stage (fun () ->
             ignore
               (Projection.defect_level ~yield:0.75
                  ~params:{ Projection.r = 1.9; theta_max = 0.96 }
                  ~coverage:0.9)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"dl" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table = Table.create [ ("benchmark", Table.Left); ("time/run", Table.Right) ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let ns =
        match Analyze.OLS.estimates result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Table.add_row table [ name; pretty ])
    (List.sort compare !rows);
  Table.print table

(* --------------------------------------------------------------- mc bench *)

(* Statistical-layer gate: Monte-Carlo wafer simulation throughput plus
   sanity of the uncertainty summaries on the real c432s pipeline.  Gates:
   (a) Wafer_mc.simulate sustains a minimum dies/sec over the extracted
   weight universe, (b) every MC band contains the paper's closed-form
   point estimate (eq. 3) between its 5% and 95% per-wafer quantiles, and
   (c) the bootstrap CIs contain their own full-data point estimates.
   Writes the machine-readable BENCH_mc.json (or $BENCH_MC_JSON). *)
let mc_bench () =
  section_banner "MC" "wafer Monte-Carlo + bootstrap gates (c432s)";
  let c = Dl_netlist.Benchmarks.c432s () in
  let mc = Experiment.mc ~dies:20_000 () in
  Printf.printf "[pipeline with --mc-dies 20000 --bootstrap 100...]\n%!";
  let t0 = Unix.gettimeofday () in
  let e =
    Experiment.run
      (Experiment.config ~seed:7 ~max_random_vectors:256 ~mc ~bootstrap:100 c)
  in
  let pipeline_s = Unix.gettimeofday () -. t0 in
  let m = Option.get e.Experiment.wafer_mc in
  let b = Option.get e.Experiment.bootstrap_fit in
  (* Throughput: re-run the simulator alone over the same universe. *)
  let firsts =
    Array.map
      (fun (d : Dl_switch.Swift.detection) -> d.voltage)
      e.Experiment.swift_result.detection
  in
  let points =
    Array.map
      (fun (b : Wafer_mc.band) -> (b.k, b.coverage))
      m.Wafer_mc.bands
  in
  let dies = 50_000 in
  let t0 = Unix.gettimeofday () in
  let timed =
    Wafer_mc.simulate
      ~seeds:(Dl_util.Seeds.scope (Dl_util.Seeds.create 7) "bench-mc")
      ~dies ~weights:e.Experiment.scaled_weights ~firsts ~points ()
  in
  let mc_s = Unix.gettimeofday () -. t0 in
  let dies_per_s = float_of_int dies /. mc_s in
  Printf.printf
    "pipeline %.2f s; standalone MC: %d dies x %d points in %.3f s = %.0f \
     dies/s (observed yield %.4f)\n"
    pipeline_s dies (Array.length points) mc_s dies_per_s
    (Wafer_mc.observed_yield timed);
  let final = Wafer_mc.final_band m in
  Printf.printf
    "final band (k=%d, theta=%.4f): DL %.1f ppm in [%.1f, %.1f] ppm; \
     closed form %.1f ppm\n"
    final.Wafer_mc.k final.Wafer_mc.coverage
    (1e6 *. final.Wafer_mc.dl_point)
    (1e6 *. final.Wafer_mc.dl_q05)
    (1e6 *. final.Wafer_mc.dl_q95)
    (1e6
    *. Weighted.defect_level ~yield:e.Experiment.yield
         ~theta:final.Wafer_mc.coverage);
  Printf.printf
    "bootstrap (%d replicates): R %.3f in [%.3f, %.3f], thetamax %.4f in \
     [%.4f, %.4f]\n"
    b.Bootstrap.replicates b.Bootstrap.point.Projection.params.r
    b.Bootstrap.r.Bootstrap.lo b.Bootstrap.r.Bootstrap.hi
    b.Bootstrap.point.Projection.params.theta_max
    b.Bootstrap.theta_max.Bootstrap.lo b.Bootstrap.theta_max.Bootstrap.hi;
  let bad_band =
    Array.find_opt
      (fun (band : Wafer_mc.band) ->
        let closed =
          Weighted.defect_level ~yield:e.Experiment.yield
            ~theta:band.Wafer_mc.coverage
        in
        not
          (band.Wafer_mc.dl_q05 <= closed && closed <= band.Wafer_mc.dl_q95))
      m.Wafer_mc.bands
  in
  let ci_ok =
    Bootstrap.contains b.Bootstrap.r b.Bootstrap.point.Projection.params.r
    && Bootstrap.contains b.Bootstrap.theta_max
         b.Bootstrap.point.Projection.params.theta_max
  in
  let json_path =
    match Sys.getenv_opt "BENCH_MC_JSON" with
    | Some p -> p
    | None -> "BENCH_mc.json"
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\"section\": \"mc\", \"dies\": %d, \"mc_s\": %.3f, \"dies_per_s\": \
     %.0f, \"pipeline_s\": %.2f, \"bands\": %d, \"band_contains_point\": %b, \
     \"bootstrap_ci_contains_point\": %b}\n"
    dies mc_s dies_per_s pipeline_s (Array.length m.Wafer_mc.bands)
    (bad_band = None) ci_ok;
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  let failed = ref false in
  let min_dies_per_s = 20_000.0 in
  if dies_per_s < min_dies_per_s then begin
    Printf.eprintf "FAIL: %.0f dies/s below the %.0f dies/s floor\n" dies_per_s
      min_dies_per_s;
    failed := true
  end;
  (match bad_band with
  | Some band ->
      Printf.eprintf
        "FAIL: band at k=%d does not contain the closed-form point estimate\n"
        band.Wafer_mc.k;
      failed := true
  | None -> ());
  if not ci_ok then begin
    Printf.eprintf
      "FAIL: bootstrap CI does not contain its own point estimate\n";
    failed := true
  end;
  if !failed then exit 1;
  print_endline
    "gate: MC throughput above floor; bands bracket the closed form; \
     bootstrap CIs bracket their point estimates."

(* ------------------------------------------------------------ ndet bench *)

(* n-detection gates on the real c880s pipeline: (a) engine overhead — the
   chunked multi-detect driver at quota 4 must cost at most 2.5x the
   dropping 1-detection engine on the same universe and vector sequence
   (best of 3 runs each), and (b) the full-pipeline DL(n) table must be
   monotone non-increasing in n at the shared coverage target.  Writes the
   machine-readable BENCH_ndet.json (or $BENCH_NDET_JSON). *)
let ndet_bench () =
  section_banner "NDET" "multi-detect overhead + DL(n) monotonicity (c880s)";
  let c = Dl_netlist.Benchmarks.c880s () in
  Printf.printf "[pipeline with --ndet 8...]\n%!";
  let t0 = Unix.gettimeofday () in
  let e =
    Experiment.run
      (Experiment.config ~seed:7 ~max_random_vectors:256 ~ndet:8 c)
  in
  let pipeline_s = Unix.gettimeofday () -. t0 in
  let nd = Option.get e.Experiment.ndet in
  let mapped = e.Experiment.mapped_circuit in
  let faults = e.Experiment.stuck_faults in
  let engine = e.Experiment.cfg.Experiment.sim_engine in
  (* Overhead measurement on a long random sequence: the chunked driver
     has fixed per-block bookkeeping, so a fair amortized comparison needs
     enough vectors that both engines drop most faults well before the
     end.  Repeat each run and take the best of 3 batches to shed timer
     and allocation noise at sub-millisecond per-run cost. *)
  let rng = Dl_util.Rng.create 4242 in
  let n_pi = Dl_netlist.Circuit.input_count mapped in
  let vectors =
    Array.init 1024 (fun _ ->
        Array.init n_pi (fun _ -> Dl_util.Rng.bool rng))
  in
  let repeats = 10 in
  let best_of_3 f =
    let rec go best i =
      if i >= 3 then best
      else begin
        let t0 = Unix.gettimeofday () in
        for _ = 1 to repeats do
          ignore (Sys.opaque_identity (f ()))
        done;
        go
          (Float.min best ((Unix.gettimeofday () -. t0) /. float_of_int repeats))
          (i + 1)
      end
    in
    go infinity 0
  in
  let single =
    Dl_fault.Fault_sim.run_with ~engine ~drop_detected:true mapped ~faults
      ~vectors
  in
  let ndet4 =
    Dl_fault.Fault_sim.run_ndet ~engine ~drop_after:4 mapped ~faults ~vectors
  in
  let t_single =
    best_of_3 (fun () ->
        Dl_fault.Fault_sim.run_with ~engine ~drop_detected:true mapped ~faults
          ~vectors)
  in
  let t_ndet4 =
    best_of_3 (fun () ->
        Dl_fault.Fault_sim.run_ndet ~engine ~drop_after:4 mapped ~faults
          ~vectors)
  in
  (* The gated overhead is the deterministic work ratio (faulty-machine
     gate evaluations), not wall clock: sub-millisecond timings swing with
     machine load, while the evaluation counters are reproducible to the
     bit on every run.  Wall clock stays as an informational column. *)
  let overhead =
    float_of_int ndet4.Dl_fault.Fault_sim.gate_evaluations
    /. float_of_int (max 1 single.Dl_fault.Fault_sim.gate_evaluations)
  in
  let wall_ratio = t_ndet4 /. t_single in
  Printf.printf
    "pipeline %.2f s; %d faults x %d vectors [%s]: 1-detection %.4f s \
     (%d evals), run_ndet(4) %.4f s (%d evals), work overhead %.2fx \
     (wall %.2fx)\n"
    pipeline_s (Array.length faults) (Array.length vectors)
    (Dl_fault.Fault_sim.engine_to_string engine)
    t_single single.Dl_fault.Fault_sim.gate_evaluations t_ndet4
    ndet4.Dl_fault.Fault_sim.gate_evaluations overhead wall_ratio;
  let rows = nd.Experiment.dl_n.Dl_n.rows in
  let table = Table.create
      [ ("n", Table.Right); ("final T(n)", Table.Right);
        ("k@T*", Table.Right); ("DL@T*", Table.Right) ]
  in
  Array.iter
    (fun (r : Dl_n.row) ->
      Table.add_row table
        [ string_of_int r.Dl_n.n; Table.fmt_pct r.Dl_n.final_t;
          string_of_int r.Dl_n.k_at_target; Table.fmt_ppm r.Dl_n.dl_at_target ])
    rows;
  Table.print table;
  let monotone = ref true in
  Array.iteri
    (fun j (r : Dl_n.row) ->
      if j > 0 && r.Dl_n.dl_at_target > rows.(j - 1).Dl_n.dl_at_target +. 1e-12
      then monotone := false)
    rows;
  let json_path =
    match Sys.getenv_opt "BENCH_NDET_JSON" with
    | Some p -> p
    | None -> "BENCH_ndet.json"
  in
  let oc = open_out json_path in
  Printf.fprintf oc
    "{\"section\": \"ndet\", \"pipeline_s\": %.2f, \"t_single_s\": %.4f, \
     \"t_ndet4_s\": %.4f, \"overhead\": %.3f, \"wall_ratio\": %.3f, \
     \"single_evals\": %d, \"ndet4_evals\": %d, \"dl_monotone\": %b, \
     \"rows\": [%s]}\n"
    pipeline_s t_single t_ndet4 overhead wall_ratio
    single.Dl_fault.Fault_sim.gate_evaluations
    ndet4.Dl_fault.Fault_sim.gate_evaluations !monotone
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun (r : Dl_n.row) ->
               Printf.sprintf "{\"n\": %d, \"dl_at_target\": %.17g}" r.Dl_n.n
                 r.Dl_n.dl_at_target)
             rows)));
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  let failed = ref false in
  let max_overhead = 2.5 in
  if overhead > max_overhead then begin
    Printf.eprintf
      "FAIL: run_ndet(4) work overhead %.2fx above the %.1fx ceiling\n"
      overhead max_overhead;
    failed := true
  end;
  if not !monotone then begin
    Printf.eprintf "FAIL: DL(n) at the shared target is not non-increasing\n";
    failed := true
  end;
  if !failed then exit 1;
  print_endline
    "gate: multi-detect overhead under the ceiling; DL(n) monotone \
     non-increasing."

(* ------------------------------------------------------------------ main *)

let sections =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("examples", examples);
    ("ablation", ablation);
    ("delay", delay);
    ("quality", quality);
    ("resistive", resistive);
    ("stability", stability);
    ("sweep", sweep);
    ("clustered", clustered);
    ("lot", lot);
    ("par", par);
    ("kernel", kernel_bench);
    ("store", store_bench);
    ("serve", serve_bench);
    ("serve-load", serve_load_bench);
    ("cluster", cluster_bench);
    ("micro", micro);
    ("mc", mc_bench);
    ("ndet", ndet_bench);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S (have: %s)\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
