(* Artifact store: binary framing, codec envelopes, content-addressed
   store, incremental stage graph, and the cached experiment pipeline.

   The properties that matter operationally: every codec is an exact
   round-trip (floats bit-for-bit, circuits structurally equal), any
   single-byte corruption of an envelope is detected (cache miss, never a
   misread or a crash), a stale format version is a miss, and stage keys
   move exactly when the inputs they fingerprint move. *)

open Dl_netlist
module B = Dl_util.Binary
module Codec = Dl_store.Codec
module Artifact = Dl_store.Artifact
module Store = Dl_store.Store
module Stage = Dl_store.Stage

let small_profile =
  [ (Gate.Nand, 8); (Gate.Nor, 4); (Gate.And, 3); (Gate.Or, 3);
    (Gate.Not, 4); (Gate.Xor, 3) ]

let random_circuit seed =
  Generator.random ~seed ~inputs:6 ~outputs:3 ~profile:small_profile ()

(* A scratch store root per test, cleaned up eagerly. *)
let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlstore_test_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- binary framing ------------------------------------------------------- *)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint round-trips" ~count:500
    QCheck.(int_bound max_int)
    (fun n ->
      let buf = Buffer.create 16 in
      B.write_varint buf n;
      B.read_varint (B.cursor (Buffer.to_bytes buf)) = n)

let prop_int_roundtrip =
  QCheck.Test.make ~name:"zigzag int round-trips" ~count:500 QCheck.int
    (fun n ->
      let buf = Buffer.create 16 in
      B.write_int buf n;
      B.read_int (B.cursor (Buffer.to_bytes buf)) = n)

let prop_float_roundtrip =
  QCheck.Test.make ~name:"float round-trips bit-for-bit" ~count:500 QCheck.float
    (fun x ->
      let buf = Buffer.create 16 in
      B.write_float buf x;
      let y = B.read_float (B.cursor (Buffer.to_bytes buf)) in
      Int64.bits_of_float x = Int64.bits_of_float y)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string round-trips" ~count:300 QCheck.string
    (fun s ->
      let buf = Buffer.create 16 in
      B.write_string buf s;
      B.read_string (B.cursor (Buffer.to_bytes buf)) = s)

let prop_packed_bools_roundtrip =
  QCheck.Test.make ~name:"packed bool arrays round-trip" ~count:300
    QCheck.(array bool)
    (fun a ->
      let buf = Buffer.create 16 in
      B.write_bools_packed buf a;
      B.read_bools_packed (B.cursor (Buffer.to_bytes buf)) = a)

let test_float_special_values () =
  List.iter
    (fun x ->
      let buf = Buffer.create 16 in
      B.write_float buf x;
      let y = B.read_float (B.cursor (Buffer.to_bytes buf)) in
      Alcotest.(check int64) "same bits" (Int64.bits_of_float x)
        (Int64.bits_of_float y))
    [ nan; infinity; neg_infinity; -0.0; 0.0; epsilon_float; max_float ]

let test_crc32_known_vector () =
  (* The standard CRC-32 (IEEE 802.3) check value. *)
  Alcotest.(check int32) "crc32(\"123456789\")" 0xCBF43926l
    (B.crc32_string "123456789")

let test_truncation_is_corrupt () =
  let buf = Buffer.create 16 in
  B.write_string buf "hello";
  let data = Buffer.to_bytes buf in
  for len = 0 to Bytes.length data - 1 do
    let truncated = Bytes.sub data 0 len in
    match B.read_string (B.cursor truncated) with
    | _ -> Alcotest.fail "truncated read succeeded"
    | exception B.Corrupt _ -> ()
  done

(* --- codec envelopes ------------------------------------------------------ *)

let test_envelope_roundtrip () =
  let c = Benchmarks.c17 () in
  let data = Codec.to_bytes Artifact.circuit c in
  (match Codec.inspect data with
  | Ok (kind, version) ->
      Alcotest.(check string) "kind" "circuit" kind;
      Alcotest.(check int) "version" Artifact.circuit.Codec.version version
  | Error e -> Alcotest.fail (Codec.error_to_string e));
  match Codec.of_bytes Artifact.circuit data with
  | Ok c' -> Alcotest.(check bool) "structurally equal" true (c = c')
  | Error e -> Alcotest.fail (Codec.error_to_string e)

let test_every_byte_flip_detected () =
  let c = Benchmarks.c17 () in
  let data = Codec.to_bytes Artifact.circuit c in
  for i = 0 to Bytes.length data - 1 do
    let corrupted = Bytes.copy data in
    Bytes.set corrupted i (Char.chr (Char.code (Bytes.get corrupted i) lxor 0x40));
    match Codec.of_bytes Artifact.circuit corrupted with
    | Ok _ -> Alcotest.failf "byte flip at %d went undetected" i
    | Error _ -> ()
  done

let test_version_bump_is_stale () =
  let c = Benchmarks.c17 () in
  let bumped = { Artifact.circuit with Codec.version = Artifact.circuit.Codec.version + 1 } in
  let data = Codec.to_bytes bumped c in
  match Codec.of_bytes Artifact.circuit data with
  | Error (Codec.Stale_version { expected; found }) ->
      Alcotest.(check int) "expected" Artifact.circuit.Codec.version expected;
      Alcotest.(check int) "found" (expected + 1) found
  | Ok _ -> Alcotest.fail "stale version decoded"
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)

let test_kind_mismatch () =
  let data = Codec.to_bytes Artifact.patterns [| [| true; false |] |] in
  match Codec.of_bytes Artifact.circuit data with
  | Error (Codec.Kind_mismatch { expected = "circuit"; found = "patterns" }) -> ()
  | Ok _ -> Alcotest.fail "wrong kind decoded"
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)

let test_garbage_is_bad_magic () =
  match Codec.of_bytes Artifact.circuit (Bytes.of_string "not an artifact") with
  | Error Codec.Bad_magic -> ()
  | Ok _ -> Alcotest.fail "garbage decoded"
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)

(* --- artifact codecs ------------------------------------------------------ *)

let roundtrip codec v =
  match Codec.of_bytes codec (Codec.to_bytes codec v) with
  | Ok v' -> v' = v
  | Error _ -> false

let prop_circuit_roundtrip =
  QCheck.Test.make ~name:"random circuits round-trip structurally equal"
    ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed -> roundtrip Artifact.circuit (random_circuit seed))

let test_builtin_circuits_roundtrip () =
  List.iter
    (fun (name, build) ->
      Alcotest.(check bool) name true (roundtrip Artifact.circuit (build ())))
    Benchmarks.all

let prop_stuck_faults_roundtrip =
  QCheck.Test.make ~name:"stuck-at universes round-trip" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      roundtrip Artifact.stuck_faults (Dl_fault.Stuck_at.universe c)
      && roundtrip Artifact.stuck_faults
           (Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c)))

let prop_patterns_roundtrip =
  QCheck.Test.make ~name:"pattern sets round-trip" ~count:100
    QCheck.(pair small_nat (int_range 0 24))
    (fun (n, width) ->
      let rng = Dl_util.Rng.create (n + (width * 1000)) in
      let vs =
        Array.init n (fun _ -> Array.init width (fun _ -> Dl_util.Rng.bool rng))
      in
      roundtrip Artifact.patterns vs)

let prop_detections_roundtrip =
  QCheck.Test.make ~name:"detection results round-trip (v2, with stats)"
    ~count:100
    QCheck.(
      pair
        (triple (array (option small_nat)) small_nat small_nat)
        (triple small_nat small_nat small_nat))
    (fun ((first_detection, vectors_applied, gate_evaluations), (a, b, c)) ->
      let sim_stats =
        {
          Dl_fault.Fault_sim.Stats.gate_evaluations = a;
          events = b;
          faults_inferred = c;
          faults_simulated = a + b;
          stem_simulations = b + c;
          faults_dropped = a + c;
        }
      in
      roundtrip Artifact.detections
        { Artifact.first_detection; vectors_applied; gate_evaluations;
          sim_stats })

let test_ifa_swift_roundtrip () =
  (* Real extraction + swift output: every kind/policy/class constructor a
     pipeline produces goes through the wire format. *)
  let c = Transform.decompose_for_cells (Benchmarks.c432s_small ()) in
  let m = Dl_cell.Mapping.flatten c in
  let l = Dl_layout.Layout.synthesize m in
  let e = Dl_extract.Ifa.extract l in
  let ifa =
    { Artifact.faults = e.faults; gross_weight = e.gross_weight;
      summaries = e.summaries }
  in
  Alcotest.(check bool) "ifa" true (roundtrip Artifact.ifa ifa);
  let network = Dl_switch.Network.build m in
  let rng = Dl_util.Rng.create 11 in
  let vectors =
    Array.init 16 (fun _ ->
        Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))
  in
  let r = Dl_switch.Swift.run network ~faults:e.faults ~vectors in
  let swift =
    { Artifact.detection = r.detection; vectors_applied = r.vectors_applied;
      region_solves = r.region_solves }
  in
  Alcotest.(check bool) "swift" true (roundtrip Artifact.swift swift)

let prop_summary_roundtrip =
  QCheck.Test.make ~name:"summaries round-trip" ~count:100
    QCheck.(pair string (pair (pair float float) (pair float bool)))
    (fun (text, ((fit_r, fit_theta_max), (fit_rmse, fit_rmse_log10))) ->
      let v =
        { Artifact.text; fit_r; fit_theta_max; fit_rmse; fit_rmse_log10;
          scale_factor = fit_r *. 2.0 }
      in
      match Codec.of_bytes Artifact.summary (Codec.to_bytes Artifact.summary v) with
      | Error _ -> false
      | Ok v' ->
          (* NaN-safe: compare float fields by bits. *)
          let bits = Int64.bits_of_float in
          v'.Artifact.text = v.Artifact.text
          && bits v'.Artifact.fit_r = bits v.Artifact.fit_r
          && bits v'.Artifact.fit_theta_max = bits v.Artifact.fit_theta_max
          && bits v'.Artifact.fit_rmse = bits v.Artifact.fit_rmse
          && v'.Artifact.fit_rmse_log10 = v.Artifact.fit_rmse_log10
          && bits v'.Artifact.scale_factor = bits v.Artifact.scale_factor)

(* --- statistical-stage artifacts ------------------------------------------ *)

let sample_wafer_mc () =
  let band i =
    { Artifact.k = (i + 1) * 16; coverage = 0.2 *. float_of_int (i + 1);
      dl_point = 0.01 /. float_of_int (i + 1); dl_q05 = 0.001; dl_q50 = 0.005;
      dl_q95 = 0.02; passed = 900 - i; defective_passed = 9 - i;
      wafer_dls = Array.init (3 + i) (fun j -> 0.002 *. float_of_int j) }
  in
  { Artifact.mc_dies = 1000; mc_dies_per_wafer = 256; mc_wafers_per_lot = 4;
    mc_wafers = 4; mc_lots = 1; mc_alpha_wafer = Float.infinity;
    mc_alpha_lot = 2.5; mc_defective = 250;
    mc_bands = Array.init 3 band }

let sample_bootstrap_fit () =
  { Artifact.fit_points = 100; point_r = 1.5; point_theta_max = 0.9;
    point_rmse = 0.01; point_rmse_log10 = false; alpha_point = 12.5;
    r_samples = Array.init 20 (fun i -> 1.4 +. (0.01 *. float_of_int i));
    theta_max_samples = Array.init 20 (fun i -> 0.88 +. (0.001 *. float_of_int i));
    alpha_samples = Array.init 20 (fun i -> 10.0 +. float_of_int i) }

let test_wafer_mc_roundtrip () =
  (* Exact round-trip, including the infinite (no-clustering) alpha. *)
  Alcotest.(check bool) "wafer-mc" true
    (roundtrip Artifact.wafer_mc (sample_wafer_mc ()))

let test_bootstrap_fit_roundtrip () =
  Alcotest.(check bool) "bootstrap-fit" true
    (roundtrip Artifact.bootstrap_fit (sample_bootstrap_fit ()))

let test_wafer_mc_every_byte_flip_detected () =
  let data = Codec.to_bytes Artifact.wafer_mc (sample_wafer_mc ()) in
  for i = 0 to Bytes.length data - 1 do
    let corrupted = Bytes.copy data in
    Bytes.set corrupted i
      (Char.chr (Char.code (Bytes.get corrupted i) lxor 0x40));
    match Codec.of_bytes Artifact.wafer_mc corrupted with
    | Ok _ -> Alcotest.failf "byte flip at %d went undetected" i
    | Error _ -> ()
  done

let test_bootstrap_fit_every_byte_flip_detected () =
  let data = Codec.to_bytes Artifact.bootstrap_fit (sample_bootstrap_fit ()) in
  for i = 0 to Bytes.length data - 1 do
    let corrupted = Bytes.copy data in
    Bytes.set corrupted i
      (Char.chr (Char.code (Bytes.get corrupted i) lxor 0x40));
    match Codec.of_bytes Artifact.bootstrap_fit corrupted with
    | Ok _ -> Alcotest.failf "byte flip at %d went undetected" i
    | Error _ -> ()
  done

let stale_version_rejected (type a) (codec : a Codec.t) (v : a) =
  let bumped = { codec with Codec.version = codec.Codec.version + 1 } in
  match Codec.of_bytes codec (Codec.to_bytes bumped v) with
  | Error (Codec.Stale_version { expected; found }) ->
      expected = codec.Codec.version && found = expected + 1
  | _ -> false

let test_statistical_version_bump_is_stale () =
  Alcotest.(check bool) "wafer-mc stale" true
    (stale_version_rejected Artifact.wafer_mc (sample_wafer_mc ()));
  Alcotest.(check bool) "bootstrap-fit stale" true
    (stale_version_rejected Artifact.bootstrap_fit (sample_bootstrap_fit ()))

let test_bootstrap_fit_length_mismatch_is_malformed () =
  (* The three sample arrays are parallel (one entry per replicate); a
     mismatched encoding must not decode. *)
  let v = sample_bootstrap_fit () in
  let bad = { v with Artifact.theta_max_samples = Array.make 3 0.9 } in
  match Codec.of_bytes Artifact.bootstrap_fit (Codec.to_bytes Artifact.bootstrap_fit bad) with
  | Error (Codec.Malformed _) -> ()
  | Ok _ -> Alcotest.fail "length-mismatched samples decoded"
  | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)

let test_current_versions_cover_statistical_stages () =
  List.iter
    (fun kind ->
      Alcotest.(check bool) (kind ^ " registered") true
        (List.mem_assoc kind Artifact.current_versions))
    [ "wafer-mc"; "bootstrap-fit" ]

(* --- store ---------------------------------------------------------------- *)

let test_store_put_load () =
  with_store_dir (fun dir ->
      let s = Store.open_ dir in
      let c = Benchmarks.c17 () in
      let data = Codec.to_bytes Artifact.circuit c in
      let key = Codec.content_key Artifact.circuit c in
      Alcotest.(check bool) "absent before put" false (Store.mem s key);
      Store.put s ~key ~kind:"circuit" ~version:1 data;
      Alcotest.(check bool) "present after put" true (Store.mem s key);
      (match Store.load s key with
      | Some loaded -> Alcotest.(check bool) "same bytes" true (loaded = data)
      | None -> Alcotest.fail "load failed");
      let stats = Store.stats s in
      Alcotest.(check int) "one object" 1 stats.objects;
      Store.remove s key;
      Alcotest.(check bool) "absent after remove" false (Store.mem s key);
      Store.put s ~key ~kind:"circuit" ~version:1 data;
      Store.clear s;
      Alcotest.(check int) "empty after clear" 0 (Store.stats s).objects)

let test_store_verify_detects_corruption () =
  with_store_dir (fun dir ->
      let s = Store.open_ dir in
      let c = Benchmarks.c17 () in
      let key = Codec.content_key Artifact.circuit c in
      Store.put s ~key ~kind:"circuit" ~version:1
        (Codec.to_bytes Artifact.circuit c);
      Alcotest.(check (list (pair string string))) "clean store" []
        (Store.verify s).corrupt;
      (* Flip one byte in the middle of the object file. *)
      let path = Store.object_path s key in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      close_in ic;
      let data = Bytes.of_string data in
      Bytes.set data (len / 2) (Char.chr (Char.code (Bytes.get data (len / 2)) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc data;
      close_out oc;
      let report = Store.verify s in
      Alcotest.(check int) "one corrupt" 1 (List.length report.corrupt);
      Alcotest.(check string) "the corrupted key" key
        (fst (List.hd report.corrupt)))

let test_store_gc_drops_stale_and_corrupt () =
  with_store_dir (fun dir ->
      let s = Store.open_ dir in
      let c = Benchmarks.c17 () in
      (* One live artifact, one with a stale format version, one corrupt. *)
      Store.put s ~key:(String.make 32 'a') ~kind:"circuit" ~version:1
        (Codec.to_bytes Artifact.circuit c);
      let stale_codec =
        { Artifact.circuit with Codec.version = Artifact.circuit.Codec.version + 1 }
      in
      Store.put s ~key:(String.make 32 'b') ~kind:"circuit"
        ~version:stale_codec.Codec.version
        (Codec.to_bytes stale_codec c);
      Store.put s ~key:(String.make 32 'c') ~kind:"circuit" ~version:1
        (Bytes.of_string "garbage, not an envelope");
      let r = Store.gc ~current:[ ("circuit", 1) ] s in
      Alcotest.(check int) "kept" 1 r.kept;
      Alcotest.(check int) "stale dropped" 1 r.removed_stale;
      Alcotest.(check int) "corrupt dropped" 1 r.removed_corrupt;
      Alcotest.(check bool) "live survives" true (Store.mem s (String.make 32 'a'));
      (* Size-capped eviction: oldest goes first (valid envelopes, so only
         the size cap can remove them). *)
      Store.clear s;
      let vs = Array.init 100 (fun _ -> Array.make 80 true) in
      let payload = Codec.to_bytes Artifact.patterns vs in
      let version = Artifact.patterns.Codec.version in
      Store.put s ~key:(String.make 32 'd') ~kind:"patterns" ~version payload;
      Store.put s ~key:(String.make 32 'e') ~kind:"patterns" ~version payload;
      let cap = Bytes.length payload * 3 / 2 in
      let r = Store.gc ~current:[ ("patterns", version) ] ~max_bytes:cap s in
      Alcotest.(check int) "evicted one" 1 r.removed_evicted;
      Alcotest.(check bool) "oldest evicted" false
        (Store.mem s (String.make 32 'd'));
      Alcotest.(check bool) "newest kept" true (Store.mem s (String.make 32 'e')))

(* --- stage graph ---------------------------------------------------------- *)

let test_stage_hit_miss () =
  with_store_dir (fun dir ->
      let store = Store.open_ dir in
      let computes = ref 0 in
      let f () = incr computes; Benchmarks.c17 () in
      let g = Stage.create ~store () in
      let v1, k1 = Stage.run g ~stage:"s" ~codec:Artifact.circuit ~inputs:[] f in
      let v2, k2 = Stage.run g ~stage:"s" ~codec:Artifact.circuit ~inputs:[] f in
      Alcotest.(check int) "computed once" 1 !computes;
      Alcotest.(check bool) "same key" true (k1 = k2);
      Alcotest.(check bool) "same value" true (v1 = v2);
      (match Stage.reports g with
      | [ a; b ] ->
          Alcotest.(check bool) "miss then hit" true
            (a.Stage.outcome = Stage.Miss && b.Stage.outcome = Stage.Hit)
      | _ -> Alcotest.fail "expected two reports");
      (* Corrupt the stored artifact: next run recomputes and repairs. *)
      let path = Store.object_path store k1 in
      let oc = open_out_bin path in
      output_string oc "junk";
      close_out oc;
      let v3, _ = Stage.run g ~stage:"s" ~codec:Artifact.circuit ~inputs:[] f in
      Alcotest.(check int) "recomputed" 2 !computes;
      Alcotest.(check bool) "same value after repair" true (v3 = v1);
      let v4, _ = Stage.run g ~stage:"s" ~codec:Artifact.circuit ~inputs:[] f in
      Alcotest.(check int) "repaired artifact hits" 2 !computes;
      ignore v4)

let test_stage_version_bump_is_miss () =
  with_store_dir (fun dir ->
      let store = Store.open_ dir in
      let computes = ref 0 in
      let f () = incr computes; Benchmarks.c17 () in
      let g = Stage.create ~store () in
      let _ = Stage.run g ~stage:"s" ~codec:Artifact.circuit ~inputs:[] f in
      let bumped =
        { Artifact.circuit with Codec.version = Artifact.circuit.Codec.version + 1 }
      in
      (* The bumped codec derives a different stage key, so an old-format
         artifact can never even be looked up under the new key... *)
      let k_old = Stage.key ~stage:"s" ~codec:Artifact.circuit ~config:[] ~inputs:[] in
      let k_new = Stage.key ~stage:"s" ~codec:bumped ~config:[] ~inputs:[] in
      Alcotest.(check bool) "version changes the key" false (k_old = k_new);
      let _ = Stage.run g ~stage:"s" ~codec:bumped ~inputs:[] f in
      Alcotest.(check int) "bumped version recomputes" 2 !computes;
      (* ...and even a same-key stale envelope decodes to a miss. *)
      (match Store.load store k_old with
      | Some old_data -> Store.put store ~key:k_new ~kind:"circuit" ~version:1 old_data
      | None -> Alcotest.fail "old artifact missing");
      Store.clear store |> ignore;
      Store.put store ~key:k_new ~kind:"circuit"
        ~version:Artifact.circuit.Codec.version
        (Codec.to_bytes Artifact.circuit (Benchmarks.c17 ()));
      let g2 = Stage.create ~store () in
      let _ = Stage.run g2 ~stage:"s" ~codec:bumped ~inputs:[] f in
      Alcotest.(check int) "stale envelope recomputes" 3 !computes)

let test_stage_key_sensitivity () =
  let base ~stage ~config ~inputs =
    Stage.key ~stage ~codec:Artifact.circuit ~config ~inputs
  in
  let k = base ~stage:"s" ~config:[ ("a", "1") ] ~inputs:[ "i1" ] in
  Alcotest.(check bool) "stage name" false
    (k = base ~stage:"t" ~config:[ ("a", "1") ] ~inputs:[ "i1" ]);
  Alcotest.(check bool) "config value" false
    (k = base ~stage:"s" ~config:[ ("a", "2") ] ~inputs:[ "i1" ]);
  Alcotest.(check bool) "input key" false
    (k = base ~stage:"s" ~config:[ ("a", "1") ] ~inputs:[ "i2" ]);
  Alcotest.(check bool) "deterministic" true
    (k = base ~stage:"s" ~config:[ ("a", "1") ] ~inputs:[ "i1" ])

(* --- cached experiment pipeline ------------------------------------------- *)

module Experiment = Dl_core.Experiment

let outcome (e : Experiment.t) stage =
  (List.find (fun (r : Stage.report) -> r.stage = stage) e.stage_reports).outcome

let stage_key (e : Experiment.t) stage =
  (List.find (fun (r : Stage.report) -> r.stage = stage) e.stage_reports).key

let all_stages =
  [ "mapping"; "atpg"; "fault-universe"; "fault-sim"; "layout-ifa"; "swift";
    "projection" ]

let test_experiment_cold_warm_and_invalidation () =
  with_store_dir (fun dir ->
      let circuit = Benchmarks.c432s_small () in
      let run ?(seed = 7) ?(target_yield = 0.75) ?(collapse_faults = true)
          ?(domains = 1) () =
        Experiment.run
          (Experiment.config ~seed ~max_random_vectors:64 ~target_yield
             ~domains ~collapse_faults ~cache_dir:dir circuit)
      in
      let cold = run () in
      List.iter
        (fun s ->
          Alcotest.(check bool) (s ^ " cold miss") true
            (outcome cold s = Stage.Miss))
        all_stages;
      let warm = run () in
      List.iter
        (fun s ->
          Alcotest.(check bool) (s ^ " warm hit") true
            (outcome warm s = Stage.Hit))
        all_stages;
      Alcotest.(check string) "warm summary byte-identical" cold.summary
        warm.summary;
      Alcotest.(check bool) "warm fit identical" true (cold.fit = warm.fit);
      Alcotest.(check bool) "warm curves identical" true
        (cold.t_curve = warm.t_curve && cold.theta_curve = warm.theta_curve
        && cold.gamma_curve = warm.gamma_curve);
      (* domains is excluded from every key: still a full hit. *)
      let par = run ~domains:2 () in
      List.iter
        (fun s ->
          Alcotest.(check bool) (s ^ " domain-count hit") true
            (outcome par s = Stage.Hit))
        all_stages;
      (* target_yield only re-runs the projection. *)
      let yld = run ~target_yield:0.9 () in
      List.iter
        (fun s ->
          let expected = if s = "projection" then Stage.Miss else Stage.Hit in
          Alcotest.(check bool) (s ^ " yield-change outcome") true
            (outcome yld s = expected))
        all_stages;
      Alcotest.(check bool) "projection key moved" false
        (stage_key yld "projection" = stage_key cold "projection");
      (* A new seed re-runs ATPG and everything fed by its vectors, but not
         the mapping or the layout extraction. *)
      let seeded = run ~seed:8 () in
      List.iter
        (fun (s, expected) ->
          Alcotest.(check bool) (s ^ " seed-change outcome") true
            (outcome seeded s = expected))
        [ ("mapping", Stage.Hit); ("atpg", Stage.Miss);
          ("fault-universe", Stage.Miss); ("fault-sim", Stage.Miss);
          ("layout-ifa", Stage.Hit); ("swift", Stage.Miss);
          ("projection", Stage.Miss) ];
      (* Collapsing is a property of the simulated universe only. *)
      let uncollapsed = run ~collapse_faults:false () in
      List.iter
        (fun (s, expected) ->
          Alcotest.(check bool) (s ^ " collapse-change outcome") true
            (outcome uncollapsed s = expected))
        [ ("mapping", Stage.Hit); ("atpg", Stage.Hit);
          ("fault-universe", Stage.Miss); ("fault-sim", Stage.Miss);
          ("layout-ifa", Stage.Hit); ("swift", Stage.Hit);
          ("projection", Stage.Miss) ])

let test_experiment_uncached_matches_cached () =
  with_store_dir (fun dir ->
      let circuit = Benchmarks.c432s_small () in
      let cached =
        Experiment.run
          (Experiment.config ~seed:7 ~max_random_vectors:64 ~domains:1
             ~cache_dir:dir circuit)
      in
      let warm =
        Experiment.run
          (Experiment.config ~seed:7 ~max_random_vectors:64 ~domains:1
             ~cache_dir:dir circuit)
      in
      let plain =
        Experiment.run
          (Experiment.config ~seed:7 ~max_random_vectors:64 ~domains:1 circuit)
      in
      List.iter
        (fun s ->
          Alcotest.(check bool) (s ^ " uncached outcome") true
            (outcome plain s = Stage.Uncached))
        all_stages;
      Alcotest.(check string) "uncached = cold summary" plain.summary
        cached.summary;
      Alcotest.(check string) "uncached = warm summary" plain.summary
        warm.summary;
      Alcotest.(check bool) "same stage keys with and without a store" true
        (List.for_all
           (fun s -> stage_key plain s = stage_key cached s)
           all_stages))

let test_statistical_stage_key_sensitivity () =
  (* The MC / bootstrap knobs must fingerprint ONLY their own stages: the
     simulation artifacts of a tuned re-run stay warm.  stage_keys derives
     every key without executing anything. *)
  let circuit = Benchmarks.c17 () in
  let keys ?mc ?bootstrap ?(target_yield = 0.75) ?(seed = 7) () =
    Experiment.stage_keys
      (Experiment.config ~seed ~max_random_vectors:64 ~target_yield ?mc
         ?bootstrap circuit)
  in
  let key stage l = List.assoc stage l in
  let base = keys () in
  Alcotest.(check int) "base pipeline has 7 stages" 7 (List.length base);
  let mc1 = keys ~mc:(Experiment.mc ~dies:1000 ()) () in
  let mc2 = keys ~mc:(Experiment.mc ~dies:2000 ()) () in
  let mc3 = keys ~mc:(Experiment.mc ~dies:1000 ~alpha_wafer:2.0 ()) () in
  let boot1 = keys ~bootstrap:100 () in
  let boot2 = keys ~bootstrap:200 () in
  let both = keys ~mc:(Experiment.mc ~dies:1000 ()) ~bootstrap:100 () in
  Alcotest.(check int) "mc adds one stage" 8 (List.length mc1);
  Alcotest.(check int) "mc + bootstrap adds two" 9 (List.length both);
  Alcotest.(check bool) "enabling mc moves no base key" true
    (List.for_all (fun (s, k) -> key s mc1 = k) base);
  Alcotest.(check bool) "enabling bootstrap moves no base key" true
    (List.for_all (fun (s, k) -> key s boot1 = k) base);
  Alcotest.(check bool) "mc-dies moves the wafer-mc key" false
    (key "wafer-mc" mc1 = key "wafer-mc" mc2);
  Alcotest.(check bool) "alpha moves the wafer-mc key" false
    (key "wafer-mc" mc1 = key "wafer-mc" mc3);
  Alcotest.(check bool) "mc-dies moves nothing else" true
    (List.for_all (fun (s, k) -> s = "wafer-mc" || key s mc2 = k) mc1);
  Alcotest.(check bool) "replicate count moves the bootstrap-fit key" false
    (key "bootstrap-fit" boot1 = key "bootstrap-fit" boot2);
  Alcotest.(check bool) "replicate count moves nothing else" true
    (List.for_all (fun (s, k) -> s = "bootstrap-fit" || key s boot2 = k) boot1);
  Alcotest.(check bool) "mc knobs never touch the bootstrap-fit key" true
    (key "bootstrap-fit" both = key "bootstrap-fit" boot1);
  (* Both statistical stages depend on the projection inputs: yield and
     seed changes reach them. *)
  let yld = keys ~mc:(Experiment.mc ~dies:1000 ()) ~bootstrap:100
      ~target_yield:0.9 () in
  Alcotest.(check bool) "target yield moves wafer-mc" false
    (key "wafer-mc" both = key "wafer-mc" yld);
  Alcotest.(check bool) "target yield moves bootstrap-fit" false
    (key "bootstrap-fit" both = key "bootstrap-fit" yld);
  let seeded = keys ~mc:(Experiment.mc ~dies:1000 ()) ~bootstrap:100 ~seed:8 () in
  Alcotest.(check bool) "seed moves wafer-mc (via its inputs)" false
    (key "wafer-mc" both = key "wafer-mc" seeded);
  Alcotest.(check bool) "seed moves bootstrap-fit (via its inputs)" false
    (key "bootstrap-fit" both = key "bootstrap-fit" seeded)

let () =
  Random.self_init ();
  Alcotest.run "store"
    [
      ( "binary",
        List.map QCheck_alcotest.to_alcotest
          [ prop_varint_roundtrip; prop_int_roundtrip; prop_float_roundtrip;
            prop_string_roundtrip; prop_packed_bools_roundtrip ]
        @ [
            Alcotest.test_case "float special values" `Quick
              test_float_special_values;
            Alcotest.test_case "crc32 known vector" `Quick test_crc32_known_vector;
            Alcotest.test_case "truncation raises Corrupt" `Quick
              test_truncation_is_corrupt;
          ] );
      ( "codec",
        [
          Alcotest.test_case "envelope round-trip + inspect" `Quick
            test_envelope_roundtrip;
          Alcotest.test_case "every single-byte flip detected" `Quick
            test_every_byte_flip_detected;
          Alcotest.test_case "version bump is stale" `Quick
            test_version_bump_is_stale;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "garbage is bad magic" `Quick
            test_garbage_is_bad_magic;
        ] );
      ( "artifacts",
        List.map QCheck_alcotest.to_alcotest
          [ prop_circuit_roundtrip; prop_stuck_faults_roundtrip;
            prop_patterns_roundtrip; prop_detections_roundtrip;
            prop_summary_roundtrip ]
        @ [
            Alcotest.test_case "built-in circuits round-trip" `Quick
              test_builtin_circuits_roundtrip;
            Alcotest.test_case "ifa + swift artifacts round-trip" `Quick
              test_ifa_swift_roundtrip;
            Alcotest.test_case "wafer-mc round-trip" `Quick
              test_wafer_mc_roundtrip;
            Alcotest.test_case "bootstrap-fit round-trip" `Quick
              test_bootstrap_fit_roundtrip;
            Alcotest.test_case "wafer-mc every byte flip detected" `Quick
              test_wafer_mc_every_byte_flip_detected;
            Alcotest.test_case "bootstrap-fit every byte flip detected" `Quick
              test_bootstrap_fit_every_byte_flip_detected;
            Alcotest.test_case "statistical version bumps are stale" `Quick
              test_statistical_version_bump_is_stale;
            Alcotest.test_case "bootstrap-fit sample mismatch rejected" `Quick
              test_bootstrap_fit_length_mismatch_is_malformed;
            Alcotest.test_case "current_versions covers new kinds" `Quick
              test_current_versions_cover_statistical_stages;
          ] );
      ( "store",
        [
          Alcotest.test_case "put/load/remove/clear" `Quick test_store_put_load;
          Alcotest.test_case "verify detects corruption" `Quick
            test_store_verify_detects_corruption;
          Alcotest.test_case "gc drops stale and corrupt" `Quick
            test_store_gc_drops_stale_and_corrupt;
        ] );
      ( "stage",
        [
          Alcotest.test_case "hit, miss, corruption repair" `Quick
            test_stage_hit_miss;
          Alcotest.test_case "version bump is a miss" `Quick
            test_stage_version_bump_is_miss;
          Alcotest.test_case "key sensitivity" `Quick test_stage_key_sensitivity;
          Alcotest.test_case "statistical stage-key sensitivity" `Quick
            test_statistical_stage_key_sensitivity;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "cold/warm + key invalidation" `Slow
            test_experiment_cold_warm_and_invalidation;
          Alcotest.test_case "uncached matches cached" `Slow
            test_experiment_uncached_matches_cached;
        ] );
    ]
