open Dl_util

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-9) msg a b =
  Alcotest.(check (float eps)) msg a b

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_in () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_int_rejects () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniformity () =
  let rng = Rng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "bucket near 10%" true (frac > 0.08 && frac < 0.12))
    buckets

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 13 in
  let arr = Array.init 20 Fun.id in
  let s = Rng.sample rng arr 10 in
  Alcotest.(check int) "10 elements" 10 (Array.length s);
  let tbl = Hashtbl.create 10 in
  Array.iter (fun x -> Hashtbl.replace tbl x ()) s;
  Alcotest.(check int) "all distinct" 10 (Hashtbl.length tbl)

let test_rng_split_independence () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_exponential_mean () =
  let rng = Rng.create 21 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng 2.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_gaussian_moments () =
  let rng = Rng.create 23 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.mean xs) < 0.02);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (Stats.stddev xs -. 1.0) < 0.02)

let test_rng_log_uniform () =
  let rng = Rng.create 25 in
  for _ = 1 to 1000 do
    let v = Rng.log_uniform rng 1e-9 1e-6 in
    Alcotest.(check bool) "in range" true (v >= 1e-9 && v <= 1e-6)
  done

(* --- Stats -------------------------------------------------------------- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_variance () =
  check_float "variance" 2.5 (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_stats_single_variance () = check_float "single" 0.0 (Stats.variance [| 42.0 |])

let test_stats_geometric_mean () =
  check_close ~eps:1e-9 "geomean" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |])

let test_stats_total_kahan () =
  (* 1e16 + many small values: naive summation loses them all. *)
  let xs = Array.make 1001 1.0 in
  xs.(0) <- 1e16;
  check_float "kahan" 1e16 (Stats.total xs -. 1000.0)

let test_stats_quantile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median" 3.0 (Stats.median xs);
  check_float "q0" 1.0 (Stats.quantile xs 0.0);
  check_float "q1" 5.0 (Stats.quantile xs 1.0);
  check_float "q25" 2.0 (Stats.quantile xs 0.25)

let test_stats_quantile_float_order () =
  (* Float.compare ordering: infinities and subnormals sort numerically.
     (Polymorphic compare happened to work on plain floats, but the sort
     must be explicit about NaN-free float ordering.) *)
  let xs = [| infinity; -3.0; neg_infinity; 0.5; 1e308 |] in
  check_float "q0 is -inf" neg_infinity (Stats.quantile xs 0.0);
  check_float "q1 is +inf" infinity (Stats.quantile xs 1.0);
  check_float "median" 0.5 (Stats.median xs)

let test_stats_quantile_rejects_nan () =
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Stats.quantile: NaN in data") (fun () ->
      ignore (Stats.quantile [| 1.0; nan; 2.0 |] 0.5));
  Alcotest.check_raises "median of NaN rejected"
    (Invalid_argument "Stats.quantile: NaN in data") (fun () ->
      ignore (Stats.median [| nan |]))

let test_stats_correlation () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  check_float "perfect" 1.0 (Stats.correlation xs (Array.map (fun x -> 2.0 *. x) xs));
  check_float "inverse" (-1.0) (Stats.correlation xs (Array.map (fun x -> -.x) xs))

let test_stats_regression () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) +. 1.0) xs in
  let fit = Stats.linear_regression xs ys in
  check_close "slope" 3.0 fit.slope;
  check_close "intercept" 1.0 fit.intercept;
  check_close "r2" 1.0 fit.r2

let test_stats_empty_rejected () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

(* --- Histogram ---------------------------------------------------------- *)

let test_histogram_linear () =
  let h = Histogram.create (Histogram.Linear { lo = 0.0; hi = 10.0; bins = 5 }) in
  Histogram.add_many h [| 1.0; 3.0; 5.0; 7.0; 9.0; 10.0 |];
  Alcotest.(check (array int)) "counts" [| 1; 1; 1; 1; 2 |] (Histogram.counts h);
  Alcotest.(check int) "total" 6 (Histogram.total h)

let test_histogram_out_of_range () =
  let h = Histogram.create (Histogram.Linear { lo = 0.0; hi = 1.0; bins = 2 }) in
  Histogram.add h (-1.0);
  Histogram.add h 2.0;
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow h)

let test_histogram_log () =
  let h = Histogram.create (Histogram.Log10 { lo = 1e-9; hi = 1e-6; bins = 3 }) in
  Histogram.add_many h [| 5e-9; 5e-8; 5e-7 |];
  Alcotest.(check (array int)) "one per decade" [| 1; 1; 1 |] (Histogram.counts h)

let test_histogram_edges_monotone () =
  let h = Histogram.create (Histogram.Log10 { lo = 1e-9; hi = 1e-5; bins = 16 }) in
  let edges = Histogram.bin_edges h in
  for i = 0 to Array.length edges - 2 do
    Alcotest.(check bool) "monotone" true (edges.(i) < edges.(i + 1))
  done

let test_histogram_mode () =
  let h = Histogram.create (Histogram.Linear { lo = 0.0; hi = 3.0; bins = 3 }) in
  Histogram.add_many h [| 0.5; 1.5; 1.6; 1.7 |];
  Alcotest.(check int) "mode" 1 (Histogram.mode_bin h)

let test_histogram_render () =
  let h = Histogram.create (Histogram.Linear { lo = 0.0; hi = 1.0; bins = 2 }) in
  Histogram.add h 0.2;
  Alcotest.(check bool) "renders" true (String.length (Histogram.render h) > 0)

(* --- Numerics ----------------------------------------------------------- *)

let test_bisect () =
  let root = Numerics.bisect ~f:(fun x -> (x *. x) -. 2.0) 0.0 2.0 in
  check_close ~eps:1e-9 "sqrt2" (sqrt 2.0) root

let test_brent () =
  let root = Numerics.brent ~f:(fun x -> (x *. x *. x) -. x -. 2.0) 1.0 2.0 in
  check_close ~eps:1e-9 "cubic root" 1.5213797068045676 root

let test_brent_endpoint_root () =
  check_float "root at endpoint" 1.0 (Numerics.brent ~f:(fun x -> x -. 1.0) 1.0 5.0)

let test_bisect_no_bracket () =
  Alcotest.check_raises "no sign change"
    (Invalid_argument "Numerics.bisect: no sign change over bracket") (fun () ->
      ignore (Numerics.bisect ~f:(fun x -> (x *. x) +. 1.0) (-1.0) 1.0))

let test_golden_min () =
  let x = Numerics.golden_min ~f:(fun x -> (x -. 1.3) ** 2.0) 0.0 3.0 in
  check_close ~eps:1e-6 "minimum" 1.3 x

let test_integrate () =
  let v = Numerics.integrate ~f:(fun x -> x *. x) 0.0 1.0 in
  check_close ~eps:1e-9 "x^2 integral" (1.0 /. 3.0) v

let test_pow1m () =
  check_float "0^0" 1.0 (Numerics.pow1m 0.0 0.0);
  check_float "0^2" 0.0 (Numerics.pow1m 0.0 2.0);
  check_close "0.75^0.5" (sqrt 0.75) (Numerics.pow1m 0.75 0.5)

let test_ppm () =
  check_float "ppm" 100.0 (Numerics.ppm 1e-4);
  check_float "of_ppm" 1e-4 (Numerics.of_ppm 100.0)

let test_clamp () =
  check_float "clamp low" 0.0 (Numerics.clamp01 (-1.0));
  check_float "clamp high" 1.0 (Numerics.clamp01 2.0);
  check_float "clamp pass" 0.5 (Numerics.clamp01 0.5)

(* --- Simplex / Fit ------------------------------------------------------- *)

let test_simplex_quadratic () =
  let f p = ((p.(0) -. 2.0) ** 2.0) +. ((p.(1) +. 1.0) ** 2.0) in
  let r = Simplex.minimize ~f [| 0.0; 0.0 |] in
  Alcotest.(check bool) "converged" true r.converged;
  check_close ~eps:1e-4 "x0" 2.0 r.xmin.(0);
  check_close ~eps:1e-4 "x1" (-1.0) r.xmin.(1)

let test_simplex_rosenbrock () =
  let f p =
    let a = 1.0 -. p.(0) and b = p.(1) -. (p.(0) *. p.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let r = Simplex.minimize ~max_iter:20_000 ~tol:1e-12 ~f [| -1.2; 1.0 |] in
  check_close ~eps:1e-3 "rosenbrock x" 1.0 r.xmin.(0);
  check_close ~eps:1e-3 "rosenbrock y" 1.0 r.xmin.(1)

let test_simplex_bounded () =
  let f p = (p.(0) -. 5.0) ** 2.0 in
  let r = Simplex.minimize_bounded ~f ~lo:[| 0.0 |] ~hi:[| 2.0 |] [| 1.0 |] in
  check_close ~eps:1e-4 "clamped to bound" 2.0 r.xmin.(0)

let test_curve_fit_exponential () =
  let xs = Array.init 30 (fun i -> float_of_int i /. 5.0) in
  let pts =
    Array.to_list (Array.map (fun x -> (x, 3.0 *. exp (-0.7 *. x))) xs)
  in
  let model p x = p.(0) *. exp (-.p.(1) *. x) in
  let r =
    Fit.curve_fit ~model ~lo:[| 0.1; 0.01 |] ~hi:[| 10.0; 5.0 |] ~init:[| 1.0; 1.0 |]
      (Fit.make_data pts)
  in
  check_close ~eps:1e-4 "amplitude" 3.0 r.params.(0);
  check_close ~eps:1e-4 "rate" 0.7 r.params.(1);
  Alcotest.(check bool) "small rmse" true (r.rmse < 1e-5)

let test_curve_fit_weighted () =
  let pts = [ (0.0, 0.0); (1.0, 1.0); (2.0, 10.0) ] in
  (* Heavy weight on the first two points ignores the outlier. *)
  let model p x = p.(0) *. x in
  let r =
    Fit.curve_fit_weighted ~model ~weights:[| 1e6; 1e6; 1e-6 |] ~lo:[| -100.0 |]
      ~hi:[| 100.0 |] ~init:[| 0.0 |] (Fit.make_data pts)
  in
  check_close ~eps:1e-3 "slope follows heavy points" 1.0 r.params.(0)

(* --- Parallel ------------------------------------------------------------- *)

exception Task_failed of int

let test_parallel_map () =
  List.iter
    (fun domains ->
      Parallel.with_pool ~domains (fun pool ->
          Alcotest.(check int) "pool size" domains (Parallel.size pool);
          let out = Parallel.map pool ~tasks:100 (fun i -> i * i) in
          Alcotest.(check (array int)) "squares in index order"
            (Array.init 100 (fun i -> i * i))
            out))
    [ 1; 2; 4 ]

let test_parallel_run_exactly_once () =
  Parallel.with_pool ~domains:4 (fun pool ->
      let hits = Array.make 257 (Atomic.make 0) in
      Array.iteri (fun i _ -> hits.(i) <- Atomic.make 0) hits;
      Parallel.run pool ~tasks:257 (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i h -> Alcotest.(check int) (Printf.sprintf "task %d once" i) 1
            (Atomic.get h))
        hits;
      (* empty batches are fine, and the pool is reusable afterwards *)
      Parallel.run pool ~tasks:0 (fun _ -> assert false);
      Alcotest.(check (array int)) "reused" [| 0; 2; 4 |]
        (Parallel.map pool ~tasks:3 (fun i -> 2 * i)))

let test_parallel_exception_propagates () =
  Parallel.with_pool ~domains:3 (fun pool ->
      let raised =
        try
          Parallel.run pool ~tasks:20 (fun i -> if i = 13 then raise (Task_failed i));
          false
        with Task_failed 13 -> true
      in
      Alcotest.(check bool) "task exception reaches caller" true raised;
      (* the pool survives a failed batch *)
      Alcotest.(check (array int)) "alive after failure" [| 0; 1; 2; 3 |]
        (Parallel.map pool ~tasks:4 Fun.id))

let test_parallel_rejects_bad_size () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Parallel.create: need at least one domain") (fun () ->
      ignore (Parallel.create ~domains:0 ()))

(* --- Prob ---------------------------------------------------------------- *)

let test_poisson_pmf_sums () =
  let lambda = 3.0 in
  let acc = ref 0.0 in
  for k = 0 to 60 do
    acc := !acc +. Prob.poisson_pmf ~lambda k
  done;
  check_close ~eps:1e-9 "pmf sums to 1" 1.0 !acc

let test_poisson_pmf_mean () =
  let lambda = 4.2 in
  let acc = ref 0.0 in
  for k = 0 to 100 do
    acc := !acc +. (float_of_int k *. Prob.poisson_pmf ~lambda k)
  done;
  check_close ~eps:1e-6 "mean" lambda !acc

let test_poisson_sample_mean () =
  let rng = Rng.create 31 in
  let n = 20_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Prob.poisson_sample rng ~lambda:2.5
  done;
  let mean = float_of_int !acc /. float_of_int n in
  Alcotest.(check bool) "sample mean near 2.5" true (Float.abs (mean -. 2.5) < 0.05)

let test_negative_binomial_limits () =
  (* Large alpha converges to Poisson. *)
  let lambda = 2.0 in
  for k = 0 to 10 do
    let nb = Prob.negative_binomial_pmf ~mean:lambda ~alpha:1e7 k in
    let po = Prob.poisson_pmf ~lambda k in
    Alcotest.(check bool) "nb -> poisson" true (Float.abs (nb -. po) < 1e-4)
  done

let test_negative_binomial_sums () =
  let acc = ref 0.0 in
  for k = 0 to 500 do
    acc := !acc +. Prob.negative_binomial_pmf ~mean:3.0 ~alpha:0.5 k
  done;
  check_close ~eps:1e-6 "nb sums to 1" 1.0 !acc

let test_binomial_pmf () =
  check_close ~eps:1e-12 "B(4,0.5) at 2" 0.375 (Prob.binomial_pmf ~n:4 ~p:0.5 2);
  check_close ~eps:1e-12 "p=0" 1.0 (Prob.binomial_pmf ~n:4 ~p:0.0 0)

let test_truncated_poisson () =
  (* Small lambda: conditional mean -> 1. *)
  Alcotest.(check bool) "small lambda" true
    (Prob.truncated_poisson_mean ~lambda:1e-6 < 1.001);
  check_close ~eps:1e-9 "lambda 2"
    (2.0 /. (1.0 -. exp (-2.0)))
    (Prob.truncated_poisson_mean ~lambda:2.0)

let test_log_factorial () =
  check_close ~eps:1e-9 "5!" (log 120.0) (Prob.log_factorial 5);
  (* Stirling branch vs exact recurrence at the cache boundary. *)
  let exact n =
    let acc = ref 0.0 in
    for i = 2 to n do
      acc := !acc +. log (float_of_int i)
    done;
    !acc
  in
  Alcotest.(check bool) "large n accurate" true
    (Float.abs (Prob.log_factorial 300 -. exact 300) < 1e-6)

let sample_moments f n =
  let xs = Array.init n (fun _ -> f ()) in
  let m = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let v =
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
    /. float_of_int (n - 1)
  in
  (m, v)

let test_gamma_sample_moments () =
  (* Gamma(shape, 1): mean = variance = shape; covers both the
     Marsaglia-Tsang core (shape >= 1) and the boosting branch. *)
  List.iter
    (fun shape ->
      let rng = Rng.create 123 in
      let n = 20_000 in
      let m, v = sample_moments (fun () -> Prob.gamma_sample rng ~shape) n in
      let fn = float_of_int n in
      let mean_tol = 6.0 *. sqrt (shape /. fn) in
      let var_tol =
        (6.0 *. sqrt (((2.0 *. shape *. shape) +. (6.0 *. shape)) /. fn))
        +. 0.02
      in
      Alcotest.(check bool)
        (Printf.sprintf "gamma(%g) mean" shape)
        true
        (Float.abs (m -. shape) < mean_tol);
      Alcotest.(check bool)
        (Printf.sprintf "gamma(%g) variance" shape)
        true
        (Float.abs (v -. shape) < var_tol))
    [ 0.4; 1.0; 2.0; 7.5 ]

let test_gamma_sample_rejects () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero shape"
    (Invalid_argument "Prob.gamma_sample: shape must be positive") (fun () ->
      ignore (Prob.gamma_sample rng ~shape:0.0));
  Alcotest.check_raises "nan shape"
    (Invalid_argument "Prob.gamma_sample: shape must be positive") (fun () ->
      ignore (Prob.gamma_sample rng ~shape:Float.nan));
  Alcotest.check_raises "mixing zero alpha"
    (Invalid_argument "Prob.gamma_mixing_sample: alpha must be positive")
    (fun () -> ignore (Prob.gamma_mixing_sample rng ~alpha:0.0))

let test_gamma_mixing_sample () =
  let rng = Rng.create 5 in
  check_close ~eps:0.0 "infinite alpha degenerates to 1"
    1.0
    (Prob.gamma_mixing_sample rng ~alpha:Float.infinity);
  (* mean-1 severity: mean ~ 1, variance ~ 1/alpha *)
  let alpha = 2.0 in
  let m, v =
    sample_moments (fun () -> Prob.gamma_mixing_sample rng ~alpha) 20_000
  in
  Alcotest.(check bool) "mixing mean 1" true (Float.abs (m -. 1.0) < 0.03);
  Alcotest.(check bool)
    "mixing variance 1/alpha" true
    (Float.abs (v -. (1.0 /. alpha)) < 0.05)

let test_negative_binomial_sample_moments () =
  (* Gamma-mixed Poisson: mean m, variance m + m^2/alpha. *)
  List.iter
    (fun (mean, alpha) ->
      let rng = Rng.create 77 in
      let n = 20_000 in
      let target_var = mean +. (mean *. mean /. alpha) in
      let m, v =
        sample_moments
          (fun () ->
            float_of_int (Prob.negative_binomial_sample rng ~mean ~alpha))
          n
      in
      Alcotest.(check bool)
        (Printf.sprintf "nb(%g,%g) mean" mean alpha)
        true
        (Float.abs (m -. mean) < 6.0 *. sqrt (target_var /. float_of_int n));
      Alcotest.(check bool)
        (Printf.sprintf "nb(%g,%g) variance" mean alpha)
        true
        (Float.abs (v -. target_var) < (0.2 *. target_var) +. 0.1))
    [ (3.0, 0.5); (3.0, 5.0); (0.7, 2.0); (2.0, Float.infinity) ]

let test_negative_binomial_sample_rejects () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "negative mean"
    (Invalid_argument "Prob.negative_binomial_sample: negative mean")
    (fun () -> ignore (Prob.negative_binomial_sample rng ~mean:(-1.0) ~alpha:2.0));
  Alcotest.check_raises "zero alpha"
    (Invalid_argument "Prob.negative_binomial_sample: alpha must be positive")
    (fun () -> ignore (Prob.negative_binomial_sample rng ~mean:1.0 ~alpha:0.0));
  Alcotest.(check int)
    "zero mean samples zero" 0
    (Prob.negative_binomial_sample rng ~mean:0.0 ~alpha:2.0)

let test_poisson_sample_chisq () =
  (* Chi-square goodness of fit against the pmf: bins 0..8 plus the >= 9
     tail, 20k draws at a fixed seed.  chi2_{0.999, df=9} = 27.88. *)
  let lambda = 2.5 in
  let n = 20_000 in
  let rng = Rng.create 2024 in
  let bins = 9 in
  let counts = Array.make (bins + 1) 0 in
  for _ = 1 to n do
    let k = Prob.poisson_sample rng ~lambda in
    let b = if k >= bins then bins else k in
    counts.(b) <- counts.(b) + 1
  done;
  let chi2 = ref 0.0 in
  let tail_p = ref 1.0 in
  for k = 0 to bins - 1 do
    let p = Prob.poisson_pmf ~lambda k in
    tail_p := !tail_p -. p;
    let expected = float_of_int n *. p in
    let d = float_of_int counts.(k) -. expected in
    chi2 := !chi2 +. (d *. d /. expected)
  done;
  let expected_tail = float_of_int n *. !tail_p in
  let d = float_of_int counts.(bins) -. expected_tail in
  chi2 := !chi2 +. (d *. d /. expected_tail);
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.2f < 27.88" !chi2)
    true (!chi2 < 27.88)

(* --- Table ---------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* Right-aligned numbers line up on the right edge. *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines)

let test_table_arity_check () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_formats () =
  Alcotest.(check string) "pct" "97.70%" (Table.fmt_pct 0.977);
  Alcotest.(check string) "ppm" "100.0 ppm" (Table.fmt_ppm 1e-4)

(* --- Seeds ----------------------------------------------------------------- *)

let test_seeds_replayable () =
  let s = Seeds.create 42 in
  let a = Seeds.stream s "bench-serve/client-3/req-17" in
  let b = Seeds.stream s "bench-serve/client-3/req-17" in
  for _ = 1 to 64 do
    Alcotest.(check int64) "same stream twice" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_path_sensitivity () =
  let s = Seeds.create 42 in
  let fp = Seeds.fingerprint s in
  Alcotest.(check bool) "sibling paths differ" false
    (fp "client-3/req-17" = fp "client-3/req-18");
  Alcotest.(check bool) "segment split matters" false
    (fp "ab/c" = fp "a/bc");
  Alcotest.(check bool) "master seed matters" false
    (Seeds.fingerprint (Seeds.create 43) "client-3/req-17"
    = fp "client-3/req-17")

let test_seeds_scope_composes () =
  let root = Seeds.create 9 in
  let direct = Seeds.fingerprint root "a/b/c" in
  let via_one = Seeds.fingerprint (Seeds.scope root "a") "b/c" in
  let via_two = Seeds.fingerprint (Seeds.scope (Seeds.scope root "a") "b") "c" in
  Alcotest.(check int64) "scope = path prefix (1 level)" direct via_one;
  Alcotest.(check int64) "scope = path prefix (2 levels)" direct via_two

let test_seeds_order_independent () =
  (* Deriving streams is pure: consuming one stream never perturbs another,
     regardless of derivation or consumption order. *)
  let s = Seeds.create 5 in
  let a1 = Seeds.stream s "a" in
  let burn = Seeds.stream s "b" in
  for _ = 1 to 100 do ignore (Rng.bits64 burn) done;
  let a2 = Seeds.stream s "a" in
  for _ = 1 to 16 do
    Alcotest.(check int64) "derivation is pure" (Rng.bits64 a1) (Rng.bits64 a2)
  done

(* --- Latency ---------------------------------------------------------------- *)

let test_latency_empty () =
  let h = Latency.create () in
  check_float "empty p50 is 0, not nan" 0.0 (Latency.percentile h 0.5);
  check_float "empty p999 is 0" 0.0 (Latency.percentile h 0.999);
  check_float "empty mean" 0.0 (Latency.mean_ms h);
  Alcotest.(check int) "empty count" 0 (Latency.count h)

let test_latency_single () =
  let h = Latency.create () in
  Latency.add h 12.5;
  (* One sample: every percentile is that sample (within bucket error,
     capped by the exact max). *)
  check_float "p50 = the sample" 12.5 (Latency.percentile h 0.5);
  check_float "p999 = the sample" 12.5 (Latency.percentile h 0.999);
  check_float "max exact" 12.5 (Latency.max_ms h)

let test_latency_relative_error () =
  let h = Latency.create () in
  let rng = Rng.create 3 in
  let samples = Array.init 2000 (fun _ -> Rng.log_uniform rng 0.01 1e4) in
  Array.iter (Latency.add h) samples;
  Array.sort Float.compare samples;
  List.iter
    (fun q ->
      let exact =
        samples.(min 1999 (int_of_float (ceil (q *. 2000.)) - 1))
      in
      let approx = Latency.percentile h q in
      (* Upper bucket edge: >= exact, and within the ~2.3% grid ratio. *)
      Alcotest.(check bool)
        (Printf.sprintf "p%g in [exact, exact*1.03]" (q *. 100.))
        true
        (approx >= exact -. 1e-9 && approx <= (exact *. 1.03) +. 1e-9))
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_latency_merge () =
  let a = Latency.create () and b = Latency.create () and all = Latency.create () in
  let rng = Rng.create 8 in
  for i = 1 to 500 do
    let v = Rng.log_uniform rng 0.1 100.0 in
    Latency.add (if i mod 2 = 0 then a else b) v;
    Latency.add all v
  done;
  Latency.merge a b;
  Alcotest.(check int) "merged count" (Latency.count all) (Latency.count a);
  check_float "merged max" (Latency.max_ms all) (Latency.max_ms a);
  check_close ~eps:1e-6 "merged sum" (Latency.sum_ms all) (Latency.sum_ms a);
  List.iter
    (fun q ->
      check_float
        (Printf.sprintf "merged p%g" (q *. 100.))
        (Latency.percentile all q) (Latency.percentile a q))
    [ 0.5; 0.99; 0.999 ]

let test_latency_outliers () =
  let h = Latency.create () in
  Latency.add h Float.nan;
  Latency.add h (-5.0);
  Latency.add h 1e12;
  Alcotest.(check int) "all three counted" 3 (Latency.count h);
  Alcotest.(check bool) "percentiles stay finite" true
    (Float.is_finite (Latency.percentile h 0.999))

(* --- qcheck properties ----------------------------------------------------- *)

let prop_quantile_bounds =
  QCheck.Test.make ~name:"quantile within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3)) (float_range 0.0 1.0))
    (fun (l, q) ->
      let xs = Array.of_list l in
      let v = Stats.quantile xs q in
      let lo, hi = Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_histogram_conserves =
  QCheck.Test.make ~name:"histogram conserves observations" ~count:200
    QCheck.(list (float_range (-10.0) 10.0))
    (fun l ->
      let h = Histogram.create (Histogram.Linear { lo = -5.0; hi = 5.0; bins = 7 }) in
      List.iter (Histogram.add h) l;
      Histogram.total h = List.length l)

let prop_weight_probability_inverse =
  QCheck.Test.make ~name:"expm1/log1p inverses" ~count:500
    QCheck.(float_range 0.0 0.999)
    (fun p ->
      let w = -.Numerics.log1p (-.p) in
      let p' = -.Numerics.expm1 (-.w) in
      Float.abs (p -. p') < 1e-12)

let segments_gen =
  QCheck.Gen.(
    list_size (int_range 0 5)
      (map
         (fun l -> String.concat "" (List.map (String.make 1) l))
         (list_size (int_range 0 6) (oneofl [ 'a'; 'b'; 'x'; '7'; '-' ]))))

let prop_seeds_distinct_paths =
  QCheck.Test.make ~name:"distinct paths get distinct streams" ~count:500
    (QCheck.make
       ~print:(fun (a, b) ->
         Printf.sprintf "%S vs %S" (String.concat "/" a) (String.concat "/" b))
       QCheck.Gen.(pair segments_gen segments_gen))
    (fun (a, b) ->
      let pa = String.concat "/" a and pb = String.concat "/" b in
      let s = Seeds.create 0 in
      pa = pb || Seeds.fingerprint s pa <> Seeds.fingerprint s pb)

let prop_seeds_scope_is_path_prefix =
  QCheck.Test.make ~name:"scope chain = joined path" ~count:500
    (QCheck.make
       ~print:(fun (segs, leaf) ->
         Printf.sprintf "%s leaf %S" (String.concat "/" segs) leaf)
       QCheck.Gen.(
         pair
           (map (List.filter (fun s -> s <> "")) segments_gen)
           (oneofl [ "leaf"; "x" ])))
    (fun (segs, leaf) ->
      let s = Seeds.create 1 in
      let scoped = List.fold_left Seeds.scope s segs in
      let direct = String.concat "/" (segs @ [ leaf ]) in
      Seeds.fingerprint scoped leaf = Seeds.fingerprint s direct)

(* Distribution properties over randomly-drawn parameters.  The sampler rng
   is derived deterministically from the parameters, so each parameter
   point is a reproducible 6-sigma moment check — the QCheck layer only
   varies which points get probed. *)
let prop_gamma_sample_mean =
  QCheck.Test.make ~name:"gamma_sample mean tracks shape" ~count:40
    QCheck.(float_range 0.3 12.0)
    (fun shape ->
      let rng = Rng.create (Hashtbl.hash (Printf.sprintf "g/%.9f" shape)) in
      let n = 4_000 in
      let acc = ref 0.0 in
      for _ = 1 to n do
        acc := !acc +. Prob.gamma_sample rng ~shape
      done;
      let m = !acc /. float_of_int n in
      Float.abs (m -. shape) < (6.0 *. sqrt (shape /. float_of_int n)) +. 0.01)

let prop_negative_binomial_sample_mean =
  QCheck.Test.make ~name:"negative_binomial_sample mean and overdispersion"
    ~count:40
    QCheck.(pair (float_range 0.5 5.0) (float_range 1.0 20.0))
    (fun (mean, alpha) ->
      let rng =
        Rng.create (Hashtbl.hash (Printf.sprintf "nb/%.9f/%.9f" mean alpha))
      in
      let n = 4_000 in
      let acc = ref 0.0 and acc2 = ref 0.0 in
      for _ = 1 to n do
        let x = float_of_int (Prob.negative_binomial_sample rng ~mean ~alpha) in
        acc := !acc +. x;
        acc2 := !acc2 +. (x *. x)
      done;
      let fn = float_of_int n in
      let m = !acc /. fn in
      let v = (!acc2 /. fn) -. (m *. m) in
      let target_var = mean +. (mean *. mean /. alpha) in
      Float.abs (m -. mean) < (6.0 *. sqrt (target_var /. fn)) +. 0.02
      && Float.abs (v -. target_var) < (0.35 *. target_var) +. 0.4)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_quantile_bounds; prop_histogram_conserves;
      prop_weight_probability_inverse; prop_seeds_distinct_paths;
      prop_seeds_scope_is_path_prefix; prop_gamma_sample_mean;
      prop_negative_binomial_sample_mean ]

let () =
  Alcotest.run "dl_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "int rejects 0" `Quick test_rng_int_rejects;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "log uniform range" `Quick test_rng_log_uniform;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "variance singleton" `Quick test_stats_single_variance;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
          Alcotest.test_case "kahan total" `Quick test_stats_total_kahan;
          Alcotest.test_case "quantiles" `Quick test_stats_quantile;
          Alcotest.test_case "quantile float order" `Quick
            test_stats_quantile_float_order;
          Alcotest.test_case "quantile rejects NaN" `Quick
            test_stats_quantile_rejects_nan;
          Alcotest.test_case "correlation" `Quick test_stats_correlation;
          Alcotest.test_case "regression" `Quick test_stats_regression;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty_rejected;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "linear bins" `Quick test_histogram_linear;
          Alcotest.test_case "under/overflow" `Quick test_histogram_out_of_range;
          Alcotest.test_case "log bins" `Quick test_histogram_log;
          Alcotest.test_case "edges monotone" `Quick test_histogram_edges_monotone;
          Alcotest.test_case "mode" `Quick test_histogram_mode;
          Alcotest.test_case "render" `Quick test_histogram_render;
        ] );
      ( "numerics",
        [
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "brent" `Quick test_brent;
          Alcotest.test_case "brent endpoint" `Quick test_brent_endpoint_root;
          Alcotest.test_case "bisect bad bracket" `Quick test_bisect_no_bracket;
          Alcotest.test_case "golden minimum" `Quick test_golden_min;
          Alcotest.test_case "simpson" `Quick test_integrate;
          Alcotest.test_case "pow1m" `Quick test_pow1m;
          Alcotest.test_case "ppm" `Quick test_ppm;
          Alcotest.test_case "clamp" `Quick test_clamp;
        ] );
      ( "fit",
        [
          Alcotest.test_case "simplex quadratic" `Quick test_simplex_quadratic;
          Alcotest.test_case "simplex rosenbrock" `Quick test_simplex_rosenbrock;
          Alcotest.test_case "simplex bounded" `Quick test_simplex_bounded;
          Alcotest.test_case "exponential fit" `Quick test_curve_fit_exponential;
          Alcotest.test_case "weighted fit" `Quick test_curve_fit_weighted;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map ordered" `Quick test_parallel_map;
          Alcotest.test_case "each task once" `Quick test_parallel_run_exactly_once;
          Alcotest.test_case "exceptions propagate" `Quick
            test_parallel_exception_propagates;
          Alcotest.test_case "size validation" `Quick test_parallel_rejects_bad_size;
        ] );
      ( "prob",
        [
          Alcotest.test_case "poisson sums to 1" `Quick test_poisson_pmf_sums;
          Alcotest.test_case "poisson mean" `Quick test_poisson_pmf_mean;
          Alcotest.test_case "poisson sampling" `Quick test_poisson_sample_mean;
          Alcotest.test_case "nb -> poisson limit" `Quick test_negative_binomial_limits;
          Alcotest.test_case "nb sums to 1" `Quick test_negative_binomial_sums;
          Alcotest.test_case "binomial pmf" `Quick test_binomial_pmf;
          Alcotest.test_case "truncated poisson" `Quick test_truncated_poisson;
          Alcotest.test_case "log factorial" `Quick test_log_factorial;
          Alcotest.test_case "gamma sampling moments" `Quick
            test_gamma_sample_moments;
          Alcotest.test_case "gamma sampling validation" `Quick
            test_gamma_sample_rejects;
          Alcotest.test_case "gamma mixing severity" `Quick
            test_gamma_mixing_sample;
          Alcotest.test_case "nb sampling moments" `Quick
            test_negative_binomial_sample_moments;
          Alcotest.test_case "nb sampling validation" `Quick
            test_negative_binomial_sample_rejects;
          Alcotest.test_case "poisson sampling chi-square" `Quick
            test_poisson_sample_chisq;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
          Alcotest.test_case "formatters" `Quick test_table_formats;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "replayable" `Quick test_seeds_replayable;
          Alcotest.test_case "path sensitivity" `Quick
            test_seeds_path_sensitivity;
          Alcotest.test_case "scope composes" `Quick test_seeds_scope_composes;
          Alcotest.test_case "order independent" `Quick
            test_seeds_order_independent;
        ] );
      ( "latency",
        [
          Alcotest.test_case "empty window is 0.0" `Quick test_latency_empty;
          Alcotest.test_case "single sample" `Quick test_latency_single;
          Alcotest.test_case "relative error" `Quick
            test_latency_relative_error;
          Alcotest.test_case "merge" `Quick test_latency_merge;
          Alcotest.test_case "outliers clamped" `Quick test_latency_outliers;
        ] );
      ("properties", qcheck_cases);
    ]
