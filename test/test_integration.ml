(* End-to-end pipeline tests: netlist -> ATPG -> layout -> IFA -> switch-level
   fault simulation -> defect-level projection, on a small circuit.  These
   assert the *shape* properties DESIGN.md §3 promises, on a budget that
   keeps `dune runtest` fast. *)

open Dl_core
module Coverage = Dl_fault.Coverage

(* One experiment shared by all cases (the expensive part). *)
let experiment =
  lazy
    (let c = Dl_netlist.Benchmarks.c432s_small () in
     Experiment.run (Experiment.config ~seed:7 ~max_random_vectors:768 c))

let final_k e = Array.length e.Experiment.vectors

let test_pipeline_runs () =
  let e = Lazy.force experiment in
  Alcotest.(check bool) "vectors applied" true (Array.length e.vectors > 0);
  Alcotest.(check bool) "realistic faults extracted" true
    (Array.length e.extraction.faults > 100)

let test_yield_scaled () =
  let e = Lazy.force experiment in
  let scaled_total = Dl_util.Stats.total e.scaled_weights in
  Alcotest.(check (float 1e-9)) "scaled to 0.75" 0.75 (exp (-.scaled_total))

let test_stuck_at_coverage_saturates () =
  let e = Lazy.force experiment in
  Alcotest.(check bool) "T -> 1 (redundant faults excluded)" true
    (Coverage.at e.t_curve (final_k e) > 0.98)

let test_curves_monotone () =
  let e = Lazy.force experiment in
  let check_curve name curve =
    let prev = ref 0.0 in
    Array.iter
      (fun k ->
        let v = Coverage.at curve k in
        if v < !prev -. 1e-12 then Alcotest.failf "%s not monotone at k=%d" name k;
        prev := v)
      (Experiment.sample_ks e ~points:40)
  in
  check_curve "T" e.t_curve;
  check_curve "Theta" e.theta_curve;
  check_curve "Gamma" e.gamma_curve

let test_theta_saturates_below_one () =
  (* the residual defect level of voltage-only testing (theta_max < 1) *)
  let e = Lazy.force experiment in
  let final = Coverage.at e.theta_curve (final_k e) in
  Alcotest.(check bool) "theta_max < 1" true (final < 1.0);
  Alcotest.(check bool) "but substantial" true (final > 0.7)

let test_gamma_saturates_below_t () =
  (* paper fig 4: the unweighted realistic coverage saturates below the
     stuck-at coverage because equal-likelihood opens are hard to detect *)
  let e = Lazy.force experiment in
  let k = final_k e in
  Alcotest.(check bool) "Gamma(final) < T(final)" true
    (Coverage.at e.gamma_curve k < Coverage.at e.t_curve k)

let test_iddq_improves_theta () =
  (* current testing catches bridges voltage testing misses *)
  let e = Lazy.force experiment in
  let k = final_k e in
  Alcotest.(check bool) "IDDQ strictly helps" true
    (Coverage.at e.theta_iddq_curve k > Coverage.at e.theta_curve k)

let test_dl_floor_is_residual () =
  let e = Lazy.force experiment in
  let k = final_k e in
  let theta_final = Coverage.at e.theta_curve k in
  let expected =
    Projection.residual_defect_level ~yield:e.yield ~theta_max:theta_final
  in
  Alcotest.(check (float 1e-9)) "DL floor" expected (Experiment.defect_level_at e k)

let test_fit_parameters_in_plausible_range () =
  let e = Lazy.force experiment in
  let fit = Experiment.fit_params e () in
  Alcotest.(check bool) "R plausible" true (fit.params.r > 0.5 && fit.params.r < 5.0);
  Alcotest.(check bool) "theta_max plausible" true
    (fit.params.theta_max > 0.7 && fit.params.theta_max <= 1.0);
  Alcotest.(check bool) "fit is tight" true (fit.rmse < 0.05)

let test_fitted_model_tracks_simulation () =
  (* eq 11 with the fitted parameters reproduces the simulated DL(T) cloud
     (paper fig 5's "the theoretical curve matches very well") *)
  let e = Lazy.force experiment in
  let fit = Experiment.fit_params e () in
  let ks = Experiment.sample_ks e ~points:25 in
  Array.iter
    (fun k ->
      let t = Coverage.at e.t_curve k in
      let dl_sim = Experiment.defect_level_at e k in
      let dl_model =
        Projection.defect_level ~yield:e.yield ~params:fit.params ~coverage:t
      in
      Alcotest.(check bool)
        (Printf.sprintf "model near simulation at k=%d" k)
        true
        (Float.abs (dl_model -. dl_sim) < 0.03))
    ks

let test_dl_points_decrease () =
  let e = Lazy.force experiment in
  let ks = Experiment.sample_ks e ~points:20 in
  let pts = Experiment.dl_vs_t_points e ~ks in
  let prev = ref 1.0 in
  Array.iter
    (fun (_, dl) ->
      Alcotest.(check bool) "DL non-increasing along k" true (dl <= !prev +. 1e-12);
      prev := dl)
    pts

let test_weight_histogram_disperses () =
  (* fig 3's qualitative content *)
  let e = Lazy.force experiment in
  let h = Dl_extract.Ifa.weight_histogram e.extraction in
  let nonzero = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0
      (Dl_util.Histogram.counts h)
  in
  Alcotest.(check bool) "spread across many bins" true (nonzero >= 6)

let test_experiment_deterministic () =
  let c = Dl_netlist.Benchmarks.c17 () in
  let run () =
    let e = Experiment.run (Experiment.config ~seed:3 ~max_random_vectors:128 c) in
    ( Array.length e.vectors,
      Coverage.at e.theta_curve (Array.length e.vectors),
      Experiment.defect_level_at e (Array.length e.vectors) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bitwise repeatable" true (a = b)

let test_c17_full_pipeline () =
  (* tiny end-to-end sanity including the DL at full coverage *)
  let c = Dl_netlist.Benchmarks.c17 () in
  let e = Experiment.run (Experiment.config ~seed:3 ~max_random_vectors:256 c) in
  let k = Array.length e.vectors in
  Alcotest.(check (float 1e-9)) "c17 fully stuck-at covered" 1.0
    (Coverage.at e.t_curve k);
  let dl = Experiment.defect_level_at e k in
  Alcotest.(check bool) "residual DL below DL(0)" true (dl < 0.25)

let test_uncollapsed_universe () =
  (* collapse_faults = false simulates the full line-fault universe: more
     faults in the denominator (c17: 34 vs 22 collapsed), yet both coverage
     definitions reach 1 on a complete test set. *)
  let c = Dl_netlist.Benchmarks.c17 () in
  let collapsed =
    Experiment.run (Experiment.config ~seed:3 ~max_random_vectors:256 c)
  in
  let uncollapsed =
    Experiment.run
      (Experiment.config ~seed:3 ~max_random_vectors:256 ~collapse_faults:false c)
  in
  Alcotest.(check int) "collapsed universe" 22
    (Array.length collapsed.stuck_faults);
  Alcotest.(check int) "uncollapsed universe" 34
    (Array.length uncollapsed.stuck_faults);
  let k = Array.length uncollapsed.vectors in
  Alcotest.(check (float 1e-9)) "uncollapsed T reaches 1" 1.0
    (Coverage.at uncollapsed.t_curve k);
  (* the switch-level side is untouched by the flag *)
  Alcotest.(check int) "same realistic faults"
    (Array.length collapsed.extraction.faults)
    (Array.length uncollapsed.extraction.faults)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "runs" `Quick test_pipeline_runs;
          Alcotest.test_case "yield scaled" `Quick test_yield_scaled;
          Alcotest.test_case "T saturates" `Quick test_stuck_at_coverage_saturates;
          Alcotest.test_case "curves monotone" `Quick test_curves_monotone;
          Alcotest.test_case "theta_max < 1" `Quick test_theta_saturates_below_one;
          Alcotest.test_case "Gamma < T at saturation" `Quick test_gamma_saturates_below_t;
          Alcotest.test_case "IDDQ improves theta" `Quick test_iddq_improves_theta;
          Alcotest.test_case "DL floor = residual" `Quick test_dl_floor_is_residual;
          Alcotest.test_case "fit plausible" `Quick test_fit_parameters_in_plausible_range;
          Alcotest.test_case "model tracks simulation" `Quick
            test_fitted_model_tracks_simulation;
          Alcotest.test_case "DL decreases" `Quick test_dl_points_decrease;
          Alcotest.test_case "weights disperse" `Quick test_weight_histogram_disperses;
          Alcotest.test_case "deterministic" `Quick test_experiment_deterministic;
          Alcotest.test_case "c17 pipeline" `Quick test_c17_full_pipeline;
          Alcotest.test_case "uncollapsed universe" `Quick test_uncollapsed_universe;
        ] );
    ]
