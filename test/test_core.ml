open Dl_core

let checkf = Alcotest.(check (float 1e-9))
let checkf_eps eps = Alcotest.(check (float eps))

(* --- Williams-Brown (eq. 1) ------------------------------------------------------ *)

let test_wb_endpoints () =
  checkf "DL(0) = 1 - Y" 0.25 (Williams_brown.defect_level ~yield:0.75 ~coverage:0.0);
  checkf "DL(1) = 0" 0.0 (Williams_brown.defect_level ~yield:0.75 ~coverage:1.0);
  checkf "Y=1 means DL=0" 0.0 (Williams_brown.defect_level ~yield:1.0 ~coverage:0.5)

let test_wb_known_value () =
  (* the classic 1981 example: Y=0.5, T=0.9 -> DL ~ 6.7% *)
  checkf_eps 1e-4 "Y=.5 T=.9" 0.0670
    (Williams_brown.defect_level ~yield:0.5 ~coverage:0.9)

let test_wb_required_coverage_inverse () =
  let yield_ = 0.6 in
  List.iter
    (fun t ->
      let dl = Williams_brown.defect_level ~yield:yield_ ~coverage:t in
      if dl > 0.0 then
        checkf_eps 1e-9 "roundtrip" t
          (Williams_brown.required_coverage ~yield:yield_ ~target_dl:dl))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_wb_paper_example_1 () =
  (* Example 1's WB side: Y=0.75, DL=100ppm -> T = 99.97% *)
  checkf_eps 1e-4 "T = 99.97%" 0.99965
    (Williams_brown.required_coverage ~yield:0.75 ~target_dl:1e-4)

let test_wb_yield_from () =
  let y = Williams_brown.yield_from ~coverage:0.9 ~defect_level:0.0670 in
  checkf_eps 1e-3 "yield recovery" 0.5 y

let test_wb_domain_checks () =
  Alcotest.(check bool) "yield 0 rejected" true
    (try
       ignore (Williams_brown.defect_level ~yield:0.0 ~coverage:0.5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "coverage 2 rejected" true
    (try
       ignore (Williams_brown.defect_level ~yield:0.5 ~coverage:2.0);
       false
     with Invalid_argument _ -> true)

(* --- Agrawal (eq. 2) --------------------------------------------------------------- *)

let test_agrawal_endpoints () =
  checkf "DL(0) = 1-Y" 0.25 (Agrawal.defect_level ~yield:0.75 ~coverage:0.0 ~n:3.0);
  checkf "DL(1) = 0" 0.0 (Agrawal.defect_level ~yield:0.75 ~coverage:1.0 ~n:3.0)

let test_agrawal_n1_close_to_wb_small_dl () =
  (* with n = 1 the model is DL = (1-T)(1-Y)/(Y + (1-T)(1-Y)); for small
     (1-T) this tracks WB to first order *)
  let t = 0.99 in
  let wb = Williams_brown.defect_level ~yield:0.9 ~coverage:t in
  let ag = Agrawal.defect_level ~yield:0.9 ~coverage:t ~n:1.0 in
  Alcotest.(check bool) "same order of magnitude" true (ag /. wb > 0.5 && ag /. wb < 2.0)

let test_agrawal_larger_n_lower_dl () =
  (* more faults per faulty chip means faulty chips are easier to catch *)
  let dl n = Agrawal.defect_level ~yield:0.75 ~coverage:0.8 ~n in
  Alcotest.(check bool) "monotone in n" true (dl 5.0 < dl 2.0 && dl 2.0 < dl 1.0)

let test_agrawal_fit_recovers_n () =
  let yield_ = 0.7 and n_true = 4.0 in
  let points =
    List.map
      (fun t -> (t, Agrawal.defect_level ~yield:yield_ ~coverage:t ~n:n_true))
      [ 0.1; 0.3; 0.5; 0.7; 0.9; 0.95; 0.99 ]
  in
  let n_fit, rmse = Agrawal.fit_n ~yield:yield_ points in
  checkf_eps 1e-3 "n recovered" n_true n_fit;
  Alcotest.(check bool) "tiny rmse" true (rmse < 1e-6)

let test_agrawal_n_of_mean_defects () =
  checkf_eps 1e-9 "lambda 2"
    (2.0 /. (1.0 -. exp (-2.0)))
    (Agrawal.n_of_mean_defects ~lambda:2.0)

(* --- Weighted model (eqs. 3-6) -------------------------------------------------------- *)

let test_weighted_yield () =
  checkf "eq 5" (exp (-0.6)) (Weighted.yield_of_weights [| 0.1; 0.2; 0.3 |])

let test_weighted_coverage () =
  checkf "eq 6" 0.5
    (Weighted.coverage ~weights:[| 1.0; 2.0; 3.0 |] ~detected:[| true; true; false |])

let test_weighted_scale_to_yield () =
  let weights = [| 0.01; 0.02; 0.005 |] in
  let scaled, factor = Weighted.scale_to_yield ~weights ~target_yield:0.75 in
  checkf "target reached" 0.75 (Weighted.yield_of_weights scaled);
  Alcotest.(check bool) "factor positive" true (factor > 0.0);
  (* scaling is uniform, so relative coverage is invariant *)
  let detected = [| true; false; true |] in
  checkf "theta invariant"
    (Weighted.coverage ~weights ~detected)
    (Weighted.coverage ~weights:scaled ~detected)

let test_weighted_probability_inverses () =
  List.iter
    (fun p ->
      checkf_eps 1e-12 "inverse" p
        (Weighted.probability_of_weight (Weighted.weight_of_probability p)))
    [ 0.0; 1e-9; 1e-4; 0.5; 0.99 ]

let test_weighted_dl_equals_wb_uniform () =
  (* with all-equal weights and a fraction f detected, theta = f, so eq 3
     equals eq 1 at T = f *)
  let weights = Array.make 10 0.0287682072451781 in
  (* total = 0.2876..., Y = 0.75 *)
  let detected = Array.init 10 (fun i -> i < 7) in
  let dl_weighted = Weighted.defect_level_of_weights ~weights ~detected in
  let y = Weighted.yield_of_weights weights in
  checkf_eps 1e-12 "matches WB" (Williams_brown.defect_level ~yield:y ~coverage:0.7)
    dl_weighted

(* --- Susceptibility (eqs. 7-8, 10) ------------------------------------------------------ *)

let test_susceptibility_k1_zero () =
  checkf "T(1) = 0" 0.0 (Susceptibility.coverage_at ~s:(exp 3.0) 1.0)

let test_susceptibility_limit () =
  Alcotest.(check bool) "T(inf) -> 1" true
    (Susceptibility.coverage_at ~s:(exp 3.0) 1e15 > 0.9999)

let test_susceptibility_fig1_values () =
  (* fig 1 parameters: s_T = e^3 -> T(k) = 1 - k^{-1/3} *)
  let s = exp 3.0 in
  checkf_eps 1e-12 "k=8" (1.0 -. 0.5) (Susceptibility.coverage_at ~s 8.0);
  checkf_eps 1e-12 "k=1000" 0.9 (Susceptibility.coverage_at ~s 1000.0)

let test_susceptibility_slower_for_larger_s () =
  let k = 100.0 in
  Alcotest.(check bool) "larger s is slower" true
    (Susceptibility.coverage_at ~s:(exp 4.0) k < Susceptibility.coverage_at ~s:(exp 2.0) k)

let test_test_length_inverse () =
  let s = exp 2.5 in
  List.iter
    (fun target ->
      let k = Susceptibility.test_length ~s ~target in
      checkf_eps 1e-9 "roundtrip" target (Susceptibility.coverage_at ~s k))
    [ 0.5; 0.9; 0.99 ]

let test_ratio_eq10 () =
  checkf "R = 2" 2.0 (Susceptibility.ratio ~s_t:(exp 3.0) ~s_theta:(exp 1.5));
  checkf "s from ratio" (exp 1.5) (Susceptibility.s_of_ratio ~s_t:(exp 3.0) ~r:2.0)

let test_susceptibility_fit () =
  let s_true = exp 2.0 and theta_max = 0.96 in
  let samples =
    Array.init 40 (fun i ->
        let k = exp (float_of_int i /. 4.0) in
        (k, Susceptibility.weighted_coverage_at ~s:s_true ~theta_max k))
  in
  let fit = Susceptibility.fit_curve samples in
  checkf_eps 1e-3 "s recovered" s_true fit.s;
  checkf_eps 1e-4 "theta_max recovered" theta_max fit.theta_max

(* --- Projection (eqs. 9, 11) -------------------------------------------------------------- *)

let test_projection_reduces_to_wb () =
  let params = { Projection.r = 1.0; theta_max = 1.0 } in
  List.iter
    (fun t ->
      checkf "equals WB"
        (Williams_brown.defect_level ~yield:0.75 ~coverage:t)
        (Projection.defect_level ~yield:0.75 ~params ~coverage:t))
    [ 0.0; 0.3; 0.7; 0.95; 1.0 ]

let test_projection_eq9_consistent_with_k_elimination () =
  (* eq 9 must equal the parametric composition of eqs 7-8 *)
  let s_t = exp 3.0 and r = 2.0 and theta_max = 0.96 in
  let s_theta = Susceptibility.s_of_ratio ~s_t ~r in
  let params = { Projection.r; theta_max } in
  List.iter
    (fun k ->
      let t = Susceptibility.coverage_at ~s:s_t k in
      let theta = Susceptibility.weighted_coverage_at ~s:s_theta ~theta_max k in
      checkf_eps 1e-12 "theta(T) = theta(k)" theta (Projection.theta_of_coverage params t))
    [ 1.0; 2.0; 10.0; 100.0; 1e4; 1e6 ]

let test_projection_paper_example_1 () =
  (* Y=0.75, theta_max=1, R=2.1, DL target 100 ppm -> T = 97.7% *)
  let params = { Projection.r = 2.1; theta_max = 1.0 } in
  match Projection.required_coverage ~yield:0.75 ~params ~target_dl:1e-4 with
  | Some t -> checkf_eps 5e-4 "example 1" 0.977 t
  | None -> Alcotest.fail "target should be reachable"

let test_projection_paper_example_2 () =
  (* Y=0.75, theta_max=0.99, R=1, T=1: the residual defect level
     1 - 0.75^0.01 = 2873 ppm (the paper prints 2279 ppm; see
     EXPERIMENTS.md) *)
  let params = { Projection.r = 1.0; theta_max = 0.99 } in
  let dl = Projection.defect_level ~yield:0.75 ~params ~coverage:1.0 in
  checkf_eps 1e-7 "example 2" 2.8727e-3 dl;
  checkf_eps 1e-12 "equals residual" dl
    (Projection.residual_defect_level ~yield:0.75 ~theta_max:0.99)

let test_projection_residual_unreachable () =
  let params = { Projection.r = 1.5; theta_max = 0.96 } in
  let residual = Projection.residual_defect_level ~yield:0.75 ~theta_max:0.96 in
  Alcotest.(check bool) "below residual unreachable" true
    (Projection.required_coverage ~yield:0.75 ~params ~target_dl:(residual /. 2.0) = None);
  (match Projection.required_coverage ~yield:0.75 ~params ~target_dl:(2.0 *. residual) with
  | Some t -> Alcotest.(check bool) "above residual reachable" true (t > 0.0 && t <= 1.0)
  | None -> Alcotest.fail "should be reachable")

let test_projection_required_coverage_inverse () =
  let params = { Projection.r = 1.9; theta_max = 0.96 } in
  List.iter
    (fun t ->
      let dl = Projection.defect_level ~yield:0.75 ~params ~coverage:t in
      match Projection.required_coverage ~yield:0.75 ~params ~target_dl:dl with
      | Some t' -> checkf_eps 1e-9 "roundtrip" t t'
      | None -> Alcotest.fail "reachable by construction")
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_projection_r_greater_one_needs_less_coverage () =
  (* the paper's point: with R > 1 the same DL needs less stuck-at coverage *)
  let t_wb = Williams_brown.required_coverage ~yield:0.75 ~target_dl:1e-4 in
  let params = { Projection.r = 2.1; theta_max = 1.0 } in
  match Projection.required_coverage ~yield:0.75 ~params ~target_dl:1e-4 with
  | Some t -> Alcotest.(check bool) "less stringent" true (t < t_wb)
  | None -> Alcotest.fail "reachable"

let test_projection_monotonicity () =
  let params = { Projection.r = 1.9; theta_max = 0.96 } in
  let prev = ref 1.0 in
  for i = 0 to 100 do
    let t = float_of_int i /. 100.0 in
    let dl = Projection.defect_level ~yield:0.75 ~params ~coverage:t in
    Alcotest.(check bool) "DL decreases in T" true (dl <= !prev +. 1e-12);
    prev := dl
  done

let test_projection_fit_theta_recovers () =
  let truth = { Projection.r = 1.9; theta_max = 0.96 } in
  let points =
    Array.init 50 (fun i ->
        let t = float_of_int i /. 50.0 in
        (t, Projection.theta_of_coverage truth t))
  in
  let fit = Projection.fit_theta points in
  checkf_eps 1e-3 "R" truth.r fit.params.r;
  checkf_eps 1e-4 "theta_max" truth.theta_max fit.params.theta_max

let test_projection_fit_dl_recovers () =
  let truth = { Projection.r = 2.0; theta_max = 0.96 } in
  let points =
    Array.init 60 (fun i ->
        let t = 0.3 +. (0.7 *. float_of_int i /. 60.0) in
        (t, Projection.defect_level ~yield:0.75 ~params:truth ~coverage:t))
  in
  let fit = Projection.fit_dl ~yield:0.75 points in
  checkf_eps 0.05 "R" truth.r fit.params.r;
  checkf_eps 1e-3 "theta_max" truth.theta_max fit.params.theta_max

let test_projection_fit_rmse_scales () =
  (* fit_dl minimizes on log10 DL, fit_theta on Θ itself; each fit records
     the units its rmse is in so the two are never compared naively. *)
  let truth = { Projection.r = 1.9; theta_max = 0.96 } in
  let theta_points =
    Array.init 40 (fun i ->
        let t = float_of_int i /. 40.0 in
        (t, Projection.theta_of_coverage truth t))
  in
  let dl_points =
    Array.init 40 (fun i ->
        let t = 0.3 +. (0.7 *. float_of_int i /. 40.0) in
        (t, Projection.defect_level ~yield:0.75 ~params:truth ~coverage:t))
  in
  let ft = Projection.fit_theta theta_points in
  let fd = Projection.fit_dl ~yield:0.75 dl_points in
  Alcotest.(check bool) "fit_theta is linear-scale" true
    (ft.rmse_scale = Projection.Linear);
  Alcotest.(check bool) "fit_dl is log10-scale" true
    (fd.rmse_scale = Projection.Log10);
  Alcotest.(check string) "unit labels differ" "linear units"
    (Projection.rmse_unit ft.rmse_scale);
  Alcotest.(check string) "log label" "log10 units"
    (Projection.rmse_unit fd.rmse_scale)

(* --- degenerate fit inputs -------------------------------------------------------------------- *)

let expect_invalid name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let test_fit_degenerate_rejects () =
  expect_invalid "fit_theta empty" (fun () -> Projection.fit_theta [||]);
  expect_invalid "fit_dl empty" (fun () -> Projection.fit_dl ~yield:0.75 [||]);
  expect_invalid "fit_theta NaN y" (fun () ->
      Projection.fit_theta [| (0.5, Float.nan) |]);
  expect_invalid "fit_theta NaN x" (fun () ->
      Projection.fit_theta [| (Float.nan, 0.5) |]);
  expect_invalid "fit_theta coverage > 1" (fun () ->
      Projection.fit_theta [| (1.5, 0.5) |]);
  expect_invalid "fit_dl coverage < 0" (fun () ->
      Projection.fit_dl ~yield:0.75 [| (-0.1, 0.01) |]);
  expect_invalid "fit_alpha empty" (fun () ->
      Clustered.fit_alpha ~yield:0.75 []);
  expect_invalid "fit_alpha NaN" (fun () ->
      Clustered.fit_alpha ~yield:0.75 [ (0.5, Float.nan) ]);
  expect_invalid "fit_alpha coverage > 1" (fun () ->
      Clustered.fit_alpha ~yield:0.75 [ (1.2, 0.01) ]);
  expect_invalid "fit_alpha bad init" (fun () ->
      Clustered.fit_alpha ~init:0.0 ~yield:0.75 [ (0.5, 0.1) ]);
  expect_invalid "fit_alpha bad yield" (fun () ->
      Clustered.fit_alpha ~yield:0.0 [ (0.5, 0.1) ])

let finite_rmse name rmse =
  Alcotest.(check bool) (name ^ " rmse finite") true (Float.is_finite rmse)

let test_fit_degenerate_finite () =
  (* Degenerate but well-typed inputs must converge to something finite
     rather than exploding inside the simplex. *)
  let single = Projection.fit_theta [| (0.5, 0.4) |] in
  finite_rmse "single point" single.rmse;
  let flat =
    Projection.fit_theta (Array.make 8 (0.5, 0.4))
  in
  finite_rmse "zero variance" flat.rmse;
  let saturated =
    Projection.fit_theta [| (0.5, 1.0); (0.9, 1.0); (1.0, 1.0) |]
  in
  finite_rmse "coverage 1" saturated.rmse;
  let dl_flat =
    Projection.fit_dl ~yield:0.75 (Array.make 6 (0.9, 1e-3))
  in
  finite_rmse "fit_dl zero variance" dl_flat.rmse;
  let a1, r1 = Clustered.fit_alpha ~yield:0.75 [ (0.5, 0.1) ] in
  finite_rmse "fit_alpha single" r1;
  Alcotest.(check bool) "alpha positive" true (a1 > 0.0);
  let a2, r2 =
    Clustered.fit_alpha ~yield:0.75 [ (0.5, 0.1); (0.5, 0.1); (0.5, 0.1) ]
  in
  finite_rmse "fit_alpha zero variance" r2;
  Alcotest.(check bool) "alpha positive" true (a2 > 0.0);
  let _, r3 = Clustered.fit_alpha ~yield:0.75 [ (1.0, 0.0) ] in
  finite_rmse "fit_alpha full coverage" r3

let test_fit_theta_from_matches_multistart () =
  (* On clean data, the cheap single-start refit from the optimum must not
     move it. *)
  let truth = { Projection.r = 1.9; theta_max = 0.96 } in
  let points =
    Array.init 50 (fun i ->
        let t = float_of_int i /. 50.0 in
        (t, Projection.theta_of_coverage truth t))
  in
  let full = Projection.fit_theta points in
  let from = Projection.fit_theta_from ~init:full.params points in
  checkf_eps 1e-6 "R stable" full.params.r from.params.r;
  checkf_eps 1e-6 "theta_max stable" full.params.theta_max
    from.params.theta_max

(* --- Wafer_mc / Bootstrap --------------------------------------------------------------------- *)

let mc_universe () =
  let rng = Dl_util.Rng.create 42 in
  let n = 120 in
  let raw = Array.init n (fun _ -> Dl_util.Rng.float_in rng 0.2 1.0) in
  let weights, _ = Weighted.scale_to_yield ~weights:raw ~target_yield:0.8 in
  let firsts =
    Array.init n (fun _ ->
        if Dl_util.Rng.bernoulli rng 0.2 then None
        else Some (Dl_util.Rng.int rng 256))
  in
  (weights, firsts)

let test_wafer_mc_replay () =
  let weights, firsts = mc_universe () in
  let points = [| (16, 0.3); (64, 0.6); (256, 0.9) |] in
  let run seed =
    Wafer_mc.simulate
      ~seeds:(Dl_util.Seeds.scope (Dl_util.Seeds.create seed) "mc")
      ~dies:2_000 ~weights ~firsts ~points ()
  in
  let a = run 7 and b = run 7 in
  Alcotest.(check bool) "same master seed replays bit-for-bit" true (a = b);
  let c = run 8 in
  Alcotest.(check bool) "different master seed differs" true
    (a.defective <> c.defective || a.bands <> c.bands);
  Alcotest.(check int) "one band per point" 3 (Array.length a.bands);
  Alcotest.(check bool) "observed yield sane" true
    (let y = Wafer_mc.observed_yield a in
     y > 0.5 && y < 1.0);
  Alcotest.(check int) "final band is last point" 256 (Wafer_mc.final_band a).k;
  let h = Wafer_mc.histogram (Wafer_mc.final_band a) in
  Alcotest.(check int) "histogram holds every wafer sample"
    (Array.length (Wafer_mc.final_band a).wafer_dls)
    (Dl_util.Histogram.total h)

let test_wafer_mc_validation () =
  let weights, firsts = mc_universe () in
  let seeds = Dl_util.Seeds.create 1 in
  let points = [| (16, 0.5) |] in
  expect_invalid "zero dies" (fun () ->
      Wafer_mc.simulate ~seeds ~dies:0 ~weights ~firsts ~points ());
  expect_invalid "negative alpha" (fun () ->
      Wafer_mc.simulate ~alpha_wafer:(-1.0) ~seeds ~dies:10 ~weights ~firsts
        ~points ());
  expect_invalid "length mismatch" (fun () ->
      Wafer_mc.simulate ~seeds ~dies:10 ~weights ~firsts:[| None |] ~points ());
  expect_invalid "negative weight" (fun () ->
      Wafer_mc.simulate ~seeds ~dies:10 ~weights:[| -1.0 |]
        ~firsts:[| None |] ~points ());
  expect_invalid "empty grid" (fun () ->
      Wafer_mc.simulate ~seeds ~dies:10 ~weights ~firsts ~points:[||] ())

let test_bootstrap_replay () =
  let weights, firsts = mc_universe () in
  let t_firsts =
    Array.init 100 (fun i -> if i mod 5 = 0 then None else Some (i * 2))
  in
  let run seed =
    Bootstrap.run ~fit_points:20
      ~seeds:(Dl_util.Seeds.scope (Dl_util.Seeds.create seed) "boot")
      ~replicates:25 ~yield:0.8 ~t_firsts ~theta_firsts:firsts
      ~theta_weights:weights ~n_vectors:256 ()
  in
  let a = run 7 and b = run 7 in
  Alcotest.(check bool) "same master seed replays bit-for-bit" true (a = b);
  Alcotest.(check int) "replicate count" 25 (Array.length a.r_samples);
  Alcotest.(check bool) "CI ordered" true
    (a.r.lo <= a.r.median && a.r.median <= a.r.hi);
  Alcotest.(check bool) "median inside own CI" true
    (Bootstrap.contains a.r a.r.median);
  (* of_samples rebuilds the same summary from the persisted parts *)
  let rebuilt =
    Bootstrap.of_samples ~fit_points:a.fit_points ~point:a.point
      ~alpha_point:a.alpha_point ~r_samples:a.r_samples
      ~theta_max_samples:a.theta_max_samples ~alpha_samples:a.alpha_samples
  in
  Alcotest.(check bool) "of_samples round-trips" true (rebuilt = a)

let test_bootstrap_validation () =
  let weights, firsts = mc_universe () in
  let seeds = Dl_util.Seeds.create 1 in
  let t_firsts = [| Some 1; Some 2 |] in
  expect_invalid "zero replicates" (fun () ->
      Bootstrap.run ~seeds ~replicates:0 ~yield:0.8 ~t_firsts
        ~theta_firsts:firsts ~theta_weights:weights ~n_vectors:256 ());
  expect_invalid "bad yield" (fun () ->
      Bootstrap.run ~seeds ~replicates:5 ~yield:1.5 ~t_firsts
        ~theta_firsts:firsts ~theta_weights:weights ~n_vectors:256 ());
  expect_invalid "empty t sample" (fun () ->
      Bootstrap.run ~seeds ~replicates:5 ~yield:0.8 ~t_firsts:[||]
        ~theta_firsts:firsts ~theta_weights:weights ~n_vectors:256 ());
  expect_invalid "weights/firsts mismatch" (fun () ->
      Bootstrap.run ~seeds ~replicates:5 ~yield:0.8 ~t_firsts
        ~theta_firsts:firsts ~theta_weights:[| 1.0 |] ~n_vectors:256 ())

(* --- Yield models ----------------------------------------------------------------------------- *)

let test_yield_poisson () = checkf "poisson" (exp (-2.0)) (Yield_model.poisson ~area:4.0 ~density:0.5)

let test_yield_nb_limit () =
  let ad = 1.5 in
  let nb = Yield_model.negative_binomial ~area:ad ~density:1.0 ~alpha:1e7 in
  checkf_eps 1e-6 "nb -> poisson" (exp (-.ad)) nb

let test_yield_nb_clustering_raises_yield () =
  (* clustering concentrates defects on fewer chips: higher yield *)
  let y_po = Yield_model.poisson ~area:2.0 ~density:1.0 in
  let y_nb = Yield_model.negative_binomial ~area:2.0 ~density:1.0 ~alpha:0.5 in
  Alcotest.(check bool) "clustered > poisson" true (y_nb > y_po)

let test_yield_murphy_between () =
  let ad = 1.0 in
  let po = Yield_model.poisson ~area:ad ~density:1.0 in
  let murphy = Yield_model.murphy ~area:ad ~density:1.0 in
  let seeds = Yield_model.seeds ~area:ad ~density:1.0 in
  Alcotest.(check bool) "poisson < murphy < seeds" true (po < murphy && murphy < seeds)

let test_yield_inversions () =
  checkf "defects per chip" 2.0 (Yield_model.defects_per_chip ~yield:(exp (-2.0)));
  let dist = Yield_model.faulty_chip_fault_distribution ~yield:0.75 ~max_faults:60 in
  let total = Array.fold_left ( +. ) 0.0 dist in
  checkf_eps 1e-9 "distribution sums to 1" 1.0 total;
  let mean =
    Array.fold_left ( +. ) 0.0 (Array.mapi (fun i p -> float_of_int (i + 1) *. p) dist)
  in
  checkf_eps 1e-6 "distribution mean = n" (Yield_model.mean_faults_on_faulty_chip ~yield:0.75) mean

(* --- qcheck properties -------------------------------------------------------------------------- *)

let yield_gen = QCheck.Gen.float_range 0.05 0.99
let cov_gen = QCheck.Gen.float_range 0.0 1.0

let prop_wb_in_range =
  QCheck.Test.make ~name:"WB defect level in [0, 1-Y]" ~count:500
    QCheck.(make Gen.(pair yield_gen cov_gen))
    (fun (y, t) ->
      let dl = Williams_brown.defect_level ~yield:y ~coverage:t in
      dl >= 0.0 && dl <= 1.0 -. y +. 1e-12)

let prop_eq11_between_floor_and_ceiling =
  QCheck.Test.make ~name:"eq 11 bounded by residual and 1-Y" ~count:500
    QCheck.(
      make
        Gen.(
          let* y = yield_gen in
          let* t = cov_gen in
          let* r = float_range 0.2 5.0 in
          let* tm = float_range 0.05 1.0 in
          return (y, t, r, tm)))
    (fun (y, t, r, tm) ->
      let params = { Projection.r; theta_max = tm } in
      let dl = Projection.defect_level ~yield:y ~params ~coverage:t in
      let residual = Projection.residual_defect_level ~yield:y ~theta_max:tm in
      dl >= residual -. 1e-12 && dl <= (1.0 -. y) +. 1e-12)

let prop_eq11_above_wb_iff_theta_below_t =
  QCheck.Test.make ~name:"eq 11 vs WB ordered by theta vs T" ~count:500
    QCheck.(
      make
        Gen.(
          let* y = yield_gen in
          let* t = float_range 0.01 0.99 in
          let* r = float_range 0.2 5.0 in
          let* tm = float_range 0.05 1.0 in
          return (y, t, r, tm)))
    (fun (y, t, r, tm) ->
      let params = { Projection.r; theta_max = tm } in
      let theta = Projection.theta_of_coverage params t in
      let dl = Projection.defect_level ~yield:y ~params ~coverage:t in
      let wb = Williams_brown.defect_level ~yield:y ~coverage:t in
      if theta > t then dl <= wb +. 1e-12 else dl >= wb -. 1e-12)

let prop_weighted_coverage_bounds =
  QCheck.Test.make ~name:"weighted coverage in [0,1]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (float_range 0.0 10.0) bool))
    (fun l ->
      let weights = Array.of_list (List.map fst l) in
      let detected = Array.of_list (List.map snd l) in
      let theta = Weighted.coverage ~weights ~detected in
      theta >= 0.0 && theta <= 1.0)

let prop_required_coverage_sound =
  QCheck.Test.make ~name:"required coverage achieves the target" ~count:300
    QCheck.(
      make
        Gen.(
          let* y = yield_gen in
          let* r = float_range 0.5 4.0 in
          let* tm = float_range 0.5 1.0 in
          let* dl = float_range 1e-6 0.2 in
          return (y, r, tm, dl)))
    (fun (y, r, tm, dl_target) ->
      let params = { Projection.r; theta_max = tm } in
      match Projection.required_coverage ~yield:y ~params ~target_dl:dl_target with
      | None -> Projection.residual_defect_level ~yield:y ~theta_max:tm >= dl_target
      | Some t ->
          Projection.defect_level ~yield:y ~params ~coverage:t <= dl_target +. 1e-9)

let () =
  Alcotest.run "dl_core"
    [
      ( "williams-brown",
        [
          Alcotest.test_case "endpoints" `Quick test_wb_endpoints;
          Alcotest.test_case "known value" `Quick test_wb_known_value;
          Alcotest.test_case "required coverage inverse" `Quick
            test_wb_required_coverage_inverse;
          Alcotest.test_case "paper example 1 (WB)" `Quick test_wb_paper_example_1;
          Alcotest.test_case "yield from fallout" `Quick test_wb_yield_from;
          Alcotest.test_case "domain checks" `Quick test_wb_domain_checks;
        ] );
      ( "agrawal",
        [
          Alcotest.test_case "endpoints" `Quick test_agrawal_endpoints;
          Alcotest.test_case "n=1 near WB" `Quick test_agrawal_n1_close_to_wb_small_dl;
          Alcotest.test_case "monotone in n" `Quick test_agrawal_larger_n_lower_dl;
          Alcotest.test_case "fit recovers n" `Quick test_agrawal_fit_recovers_n;
          Alcotest.test_case "n of mean defects" `Quick test_agrawal_n_of_mean_defects;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "yield eq 5" `Quick test_weighted_yield;
          Alcotest.test_case "coverage eq 6" `Quick test_weighted_coverage;
          Alcotest.test_case "scale to yield" `Quick test_weighted_scale_to_yield;
          Alcotest.test_case "probability inverses" `Quick test_weighted_probability_inverses;
          Alcotest.test_case "uniform weights = WB" `Quick test_weighted_dl_equals_wb_uniform;
        ] );
      ( "susceptibility",
        [
          Alcotest.test_case "T(1) = 0" `Quick test_susceptibility_k1_zero;
          Alcotest.test_case "limit" `Quick test_susceptibility_limit;
          Alcotest.test_case "fig 1 values" `Quick test_susceptibility_fig1_values;
          Alcotest.test_case "larger s slower" `Quick test_susceptibility_slower_for_larger_s;
          Alcotest.test_case "test length inverse" `Quick test_test_length_inverse;
          Alcotest.test_case "ratio eq 10" `Quick test_ratio_eq10;
          Alcotest.test_case "fit recovers" `Quick test_susceptibility_fit;
        ] );
      ( "projection",
        [
          Alcotest.test_case "reduces to WB" `Quick test_projection_reduces_to_wb;
          Alcotest.test_case "eq 9 = k elimination" `Quick
            test_projection_eq9_consistent_with_k_elimination;
          Alcotest.test_case "paper example 1" `Quick test_projection_paper_example_1;
          Alcotest.test_case "paper example 2" `Quick test_projection_paper_example_2;
          Alcotest.test_case "residual unreachable" `Quick test_projection_residual_unreachable;
          Alcotest.test_case "required coverage inverse" `Quick
            test_projection_required_coverage_inverse;
          Alcotest.test_case "R>1 relaxes coverage" `Quick
            test_projection_r_greater_one_needs_less_coverage;
          Alcotest.test_case "monotone" `Quick test_projection_monotonicity;
          Alcotest.test_case "fit theta recovers" `Quick test_projection_fit_theta_recovers;
          Alcotest.test_case "fit dl recovers" `Quick test_projection_fit_dl_recovers;
          Alcotest.test_case "fit rmse scales" `Quick test_projection_fit_rmse_scales;
        ] );
      ( "degenerate-fits",
        [
          Alcotest.test_case "invalid inputs rejected" `Quick
            test_fit_degenerate_rejects;
          Alcotest.test_case "degenerate inputs stay finite" `Quick
            test_fit_degenerate_finite;
          Alcotest.test_case "single-start refit stable" `Quick
            test_fit_theta_from_matches_multistart;
        ] );
      ( "wafer-mc",
        [
          Alcotest.test_case "seeded replay" `Quick test_wafer_mc_replay;
          Alcotest.test_case "validation" `Quick test_wafer_mc_validation;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "seeded replay" `Quick test_bootstrap_replay;
          Alcotest.test_case "validation" `Quick test_bootstrap_validation;
        ] );
      ( "yield-models",
        [
          Alcotest.test_case "poisson" `Quick test_yield_poisson;
          Alcotest.test_case "nb limit" `Quick test_yield_nb_limit;
          Alcotest.test_case "clustering raises yield" `Quick
            test_yield_nb_clustering_raises_yield;
          Alcotest.test_case "murphy between" `Quick test_yield_murphy_between;
          Alcotest.test_case "inversions" `Quick test_yield_inversions;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_wb_in_range;
            prop_eq11_between_floor_and_ceiling;
            prop_eq11_above_wb_iff_theta_below_t;
            prop_weighted_coverage_bounds;
            prop_required_coverage_sound;
          ] );
    ]
