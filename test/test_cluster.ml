(* Cluster layer: transport endpoint parsing, consistent-hash ring
   invariants, TCP framing under adversity (frames split at every byte
   boundary, oversize rejection, slow-loris read deadlines), the peer
   store RPCs, fetch-through between two live workers, and the
   coordinator's failure handling — a worker dying mid-job gets its job
   re-dispatched, an ejected worker is readmitted by the health prober. *)

module P = Dl_serve.Protocol
module Transport = Dl_serve.Transport
module Client = Dl_serve.Client
module Codec = Dl_store.Codec
module Ring = Dl_cluster.Hash_ring
module Worker = Dl_cluster.Worker
module Coord = Dl_cluster.Coord

let loopback = Transport.Tcp ("127.0.0.1", 0)

let tmp_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dlcluster-test-%d-%d-%s" (Unix.getpid ()) !counter tag)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> remove_tree (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let quick_spec seed = P.job_spec ~seed ~max_random_vectors:32 (P.Builtin "c17")

(* --- transport endpoints -------------------------------------------------- *)

let test_endpoint_parsing () =
  let check_ep what expect got =
    Alcotest.(check bool) what true (expect = got)
  in
  check_ep "host:port is TCP"
    (Transport.Tcp ("127.0.0.1", 8080))
    (Transport.of_string "127.0.0.1:8080");
  check_ep "hostname:port is TCP"
    (Transport.Tcp ("localhost", 0))
    (Transport.of_string "localhost:0");
  check_ep "plain path is a Unix socket"
    (Transport.Unix_socket "/tmp/dlproj.sock")
    (Transport.of_string "/tmp/dlproj.sock");
  check_ep "path with colon but non-numeric port is a Unix socket"
    (Transport.Unix_socket "/tmp/odd:name")
    (Transport.of_string "/tmp/odd:name");
  (* to_string round-trips through of_string *)
  List.iter
    (fun ep ->
      check_ep
        (Printf.sprintf "round-trip %s" (Transport.to_string ep))
        ep
        (Transport.of_string (Transport.to_string ep)))
    [
      Transport.Tcp ("127.0.0.1", 9999);
      Transport.Tcp ("localhost", 1);
      Transport.Unix_socket "/tmp/a.sock";
    ]

(* --- consistent-hash ring ------------------------------------------------- *)

let keys n = List.init n (fun i -> Printf.sprintf "stage-key-%d" i)

let test_ring_determinism () =
  let a = Ring.create [ "w1"; "w2"; "w3" ] in
  let b = Ring.create [ "w3"; "w1"; "w2" ] in
  List.iter
    (fun k ->
      Alcotest.(check string)
        (Printf.sprintf "home(%s) independent of member order" k)
        (Ring.home a k) (Ring.home b k))
    (keys 200);
  Alcotest.(check (list string))
    "members sorted + deduped" [ "w1"; "w2"; "w3" ]
    (Ring.members (Ring.create [ "w2"; "w3"; "w1"; "w2" ]))

let test_ring_balance () =
  let members = [ "w1"; "w2"; "w3"; "w4" ] in
  let ring = Ring.create members in
  let counts = Hashtbl.create 4 in
  let n = 2000 in
  List.iter
    (fun k ->
      let m = Ring.home ring k in
      Hashtbl.replace counts m (1 + Option.value ~default:0 (Hashtbl.find_opt counts m)))
    (keys n);
  List.iter
    (fun m ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts m) in
      (* perfect balance would be n/4; 64 vnodes keeps every member
         within a loose factor of it *)
      if c < n / 16 then
        Alcotest.failf "member %s owns only %d/%d keys" m c n)
    members

let test_ring_minimal_movement () =
  let before = Ring.create [ "w1"; "w2"; "w3" ] in
  let after = Ring.add before "w4" in
  let moved = ref 0 in
  List.iter
    (fun k ->
      let h0 = Ring.home before k and h1 = Ring.home after k in
      if h0 <> h1 then begin
        incr moved;
        (* the defining property: a key only ever moves TO the new node *)
        Alcotest.(check string)
          (Printf.sprintf "%s moved to the new member" k)
          "w4" h1
      end)
    (keys 1000);
  if !moved = 0 then Alcotest.fail "adding a member moved no keys at all";
  if !moved > 600 then
    Alcotest.failf "adding one of four members moved %d/1000 keys" !moved;
  (* removal is the exact inverse *)
  let removed = Ring.remove after "w4" in
  List.iter
    (fun k ->
      Alcotest.(check string) "remove undoes add" (Ring.home before k)
        (Ring.home removed k))
    (keys 200)

let test_ring_route () =
  let ring = Ring.create [ "w1"; "w2"; "w3" ] in
  List.iter
    (fun k ->
      let r = Ring.route ring k in
      Alcotest.(check int) "route covers every member" 3 (List.length r);
      Alcotest.(check string) "route starts at home" (Ring.home ring k)
        (List.hd r);
      Alcotest.(check int) "route members distinct" 3
        (List.length (List.sort_uniq compare r));
      Alcotest.(check int) "route ?n truncates" 2
        (List.length (Ring.route ~n:2 ring k)))
    (keys 50);
  Alcotest.(check (list string)) "empty ring routes nowhere" []
    (Ring.route (Ring.create []) "k")

(* --- framing adversity over a socketpair ---------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

(* The exact wire frame for a request: 4-byte LE length + codec envelope. *)
let frame_bytes req =
  let payload = Codec.to_bytes P.request_codec req in
  let n = Bytes.length payload in
  let frame = Bytes.create (4 + n) in
  Bytes.set_int32_le frame 0 (Int32.of_int n);
  Bytes.blit payload 0 frame 4 n;
  frame

let test_split_at_every_boundary () =
  let req = P.Submit (quick_spec 3) in
  let frame = frame_bytes req in
  let len = Bytes.length frame in
  for split = 1 to len - 1 do
    with_socketpair (fun a b ->
        let writer =
          Thread.create
            (fun () ->
              ignore (Unix.write a frame 0 split);
              Thread.delay 0.005;
              ignore (Unix.write a frame split (len - split)))
            ()
        in
        (match P.recv ~deadline_s:5.0 P.request_codec b with
        | Some got ->
            if got <> req then
              Alcotest.failf "split at byte %d decoded a different request"
                split
        | None -> Alcotest.failf "split at byte %d read as EOF" split);
        Thread.join writer)
  done

let test_oversize_frame_rejected () =
  with_socketpair (fun a b ->
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 (Int32.of_int (P.default_max_frame + 1));
      ignore (Unix.write a header 0 4);
      match P.recv P.request_codec b with
      | exception P.Protocol_error _ -> ()
      | Some _ | None -> Alcotest.fail "oversized frame was not rejected")

let test_slow_loris_deadline () =
  with_socketpair (fun a b ->
      let frame = frame_bytes (P.Submit (quick_spec 1)) in
      (* trickle a prefix, then stall past the deadline *)
      ignore (Unix.write a frame 0 3);
      let t0 = Unix.gettimeofday () in
      (match P.recv ~deadline_s:0.2 P.request_codec b with
      | exception P.Protocol_error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "deadline error names itself: %s" msg)
            true
            (String.length msg > 0)
      | Some _ | None -> Alcotest.fail "stalled frame was not cut off");
      let waited = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "cut off near the deadline (%.2f s)" waited)
        true
        (waited < 2.0))

let test_deadline_starts_at_first_byte () =
  with_socketpair (fun a b ->
      let frame = frame_bytes P.Ping in
      let writer =
        Thread.create
          (fun () ->
            (* idle longer than the deadline, then deliver promptly: the
               deadline clock only starts at the frame's first byte, so
               an idle connection must never expire *)
            Thread.delay 0.35;
            ignore (Unix.write a frame 0 (Bytes.length frame)))
          ()
      in
      (match P.recv ~deadline_s:0.2 P.request_codec b with
      | Some P.Ping -> ()
      | Some _ -> Alcotest.fail "decoded a different request"
      | None -> Alcotest.fail "read as EOF"
      | exception P.Protocol_error m ->
          Alcotest.failf "idle connection expired: %s" m);
      Thread.join writer)

(* --- peer store RPCs ------------------------------------------------------ *)

let with_worker ?cache_dir ?(listen = loopback) f =
  let w =
    Worker.start ~workers:1 ~domains_per_worker:1 ?cache_dir ~listen ()
  in
  Fun.protect ~finally:(fun () -> Worker.stop w) (fun () -> f w)

let with_worker_on_port port f =
  with_worker ~listen:(Transport.Tcp ("127.0.0.1", port)) f

let test_store_rpcs () =
  let dir = tmp_dir "store" in
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () ->
      with_worker ~cache_dir:dir (fun w ->
          Client.with_client (Worker.bound w) (fun c ->
              let key = String.make 64 'a' in
              Alcotest.(check (option bytes)) "get before put" None
                (Client.store_get c key);
              (* any valid codec envelope is accepted *)
              let artifact = Codec.to_bytes P.request_codec P.Ping in
              Alcotest.(check bool) "valid put acked" true
                (Client.store_put c ~key artifact);
              Alcotest.(check (option bytes)) "get returns the artifact"
                (Some artifact) (Client.store_get c key);
              (* a corrupted envelope is rejected before persisting *)
              let corrupt = Bytes.copy artifact in
              Bytes.set corrupt
                (Bytes.length corrupt - 1)
                (Char.chr
                   (Char.code (Bytes.get corrupt (Bytes.length corrupt - 1))
                    lxor 0xff));
              let key2 = String.make 64 'b' in
              Alcotest.(check bool) "corrupt put refused" false
                (Client.store_put c ~key:key2 corrupt);
              Alcotest.(check (option bytes)) "corrupt artifact not stored"
                None (Client.store_get c key2))))

let test_fetch_through () =
  let dir1 = tmp_dir "ft1" and dir2 = tmp_dir "ft2" in
  Fun.protect
    ~finally:(fun () ->
      remove_tree dir1;
      remove_tree dir2)
    (fun () ->
      with_worker ~cache_dir:dir1 (fun w1 ->
          with_worker ~cache_dir:dir2 (fun w2 ->
              let fleet = [ Worker.bound w1; Worker.bound w2 ] in
              List.iter (fun w -> Worker.set_peers w fleet) [ w1; w2 ];
              let spec = quick_spec 5 in
              let run_stage w =
                Client.with_client (Worker.bound w) (fun c ->
                    match Client.run_stage c spec ~stage:"mapping" with
                    | P.Stage_done { key; outcome; _ } -> (key, outcome)
                    | P.Server_error m ->
                        Alcotest.failf "serve-stage: server error: %s" m
                    | _ -> Alcotest.fail "serve-stage: unexpected reply")
              in
              let first_key, first_outcome = run_stage w1 in
              Alcotest.(check bool) "first run computes" true
                (match first_outcome with
                | P.Stage_computed -> true
                | P.Stage_hit | P.Stage_fetched -> false);
              let second_key, second_outcome = run_stage w2 in
              (* w2 has nothing locally; the artifact must arrive via the
                 peer tier, either fetched on demand or already pushed to
                 w2 as the key's home node *)
              Alcotest.(check bool) "second worker does not recompute" true
                (match second_outcome with
                | P.Stage_fetched | P.Stage_hit -> true
                | P.Stage_computed -> false);
              Alcotest.(check string) "same stage key on both workers"
                first_key second_key)))

(* --- coordinator failure handling ----------------------------------------- *)

(* A worker that accepts one connection, reads one request frame, then
   drops the connection without replying — a worker dying mid-job. *)
let start_dying_worker () =
  let fd = Transport.listen loopback in
  let bound = Transport.bound_endpoint fd loopback in
  let thread =
    Thread.create
      (fun () ->
        match Unix.accept ~cloexec:true fd with
        | conn, _ ->
            (try ignore (P.recv P.request_codec conn)
             with P.Protocol_error _ | Unix.Unix_error _ -> ());
            (try Unix.close conn with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ())
      ()
  in
  (bound, thread)

let test_redispatch_on_worker_death () =
  let dying, dying_thread = start_dying_worker () in
  with_worker (fun live ->
      let coord =
        Coord.start
          (Coord.config ~probe_period_s:10.0 ~listen:loopback
             ~workers:[ dying; Worker.bound live ]
             ())
      in
      Fun.protect
        ~finally:(fun () -> Coord.stop coord)
        (fun () ->
          (* pick a spec whose request key homes on the dying worker, so
             the first dispatch is guaranteed to hit it *)
          let ring =
            Ring.create
              [ Transport.to_string dying;
                Transport.to_string (Worker.bound live) ]
          in
          let target = Transport.to_string dying in
          let rec find_seed s =
            if s > 200 then Alcotest.fail "no seed hashed to the dying worker"
            else
              let circuit = Dl_netlist.Benchmarks.c17 () in
              let cfg =
                Dl_core.Experiment.config ~seed:s ~max_random_vectors:32
                  circuit
              in
              if Ring.home ring (Dl_core.Experiment.request_key cfg) = target
              then s
              else find_seed (s + 1)
          in
          let seed = find_seed 0 in
          let reply =
            Client.with_client (Coord.bound coord) (fun c ->
                Client.submit c (quick_spec seed))
          in
          (match reply with
          | P.Result served ->
              Alcotest.(check bool) "re-dispatched job produced an answer"
                true
                (served.P.payload.P.vectors > 0)
          | P.Server_error m -> Alcotest.failf "coordinator error: %s" m
          | _ -> Alcotest.fail "unexpected reply kind");
          (* the dead worker was ejected along the way *)
          Alcotest.(check (list string))
            "only the live worker remains"
            [ Transport.to_string (Worker.bound live) ]
            (Coord.workers_alive coord)));
  Thread.join dying_thread

let test_probe_readmission () =
  with_worker (fun live ->
      (* reserve a port, then leave it dead: the coordinator starts with
         an unreachable worker *)
      let dead_fd = Transport.listen loopback in
      let dead = Transport.bound_endpoint dead_fd loopback in
      Transport.close_quietly dead_fd;
      let coord =
        Coord.start
          (Coord.config ~probe_period_s:0.1 ~connect_timeout_s:0.5
             ~listen:loopback
             ~workers:[ dead; Worker.bound live ]
             ())
      in
      Fun.protect
        ~finally:(fun () -> Coord.stop coord)
        (fun () ->
          (* two failed probe rounds eject the dead endpoint *)
          let deadline = Unix.gettimeofday () +. 10.0 in
          while
            List.length (Coord.workers_alive coord) > 1
            && Unix.gettimeofday () < deadline
          do
            Thread.delay 0.02
          done;
          Alcotest.(check (list string))
            "dead endpoint ejected"
            [ Transport.to_string (Worker.bound live) ]
            (Coord.workers_alive coord);
          (* bring a real worker up on the reserved port: the prober must
             readmit it *)
          match dead with
          | Transport.Unix_socket _ -> Alcotest.fail "expected a TCP endpoint"
          | Transport.Tcp (_, port) ->
              with_worker_on_port port (fun _revived ->
                  let deadline = Unix.gettimeofday () +. 10.0 in
                  while
                    List.length (Coord.workers_alive coord) < 2
                    && Unix.gettimeofday () < deadline
                  do
                    Thread.delay 0.02
                  done;
                  Alcotest.(check int) "revived worker readmitted" 2
                    (List.length (Coord.workers_alive coord)))))

let () =
  Alcotest.run "dl_cluster"
    [
      ( "transport",
        [ Alcotest.test_case "endpoint parsing" `Quick test_endpoint_parsing ] );
      ( "hash-ring",
        [
          Alcotest.test_case "deterministic across member order" `Quick
            test_ring_determinism;
          Alcotest.test_case "balanced ownership" `Quick test_ring_balance;
          Alcotest.test_case "minimal movement on add/remove" `Quick
            test_ring_minimal_movement;
          Alcotest.test_case "route order and truncation" `Quick
            test_ring_route;
        ] );
      ( "framing",
        [
          Alcotest.test_case "frame split at every byte boundary" `Quick
            test_split_at_every_boundary;
          Alcotest.test_case "oversize frame rejected" `Quick
            test_oversize_frame_rejected;
          Alcotest.test_case "slow-loris read deadline" `Quick
            test_slow_loris_deadline;
          Alcotest.test_case "deadline starts at first byte" `Quick
            test_deadline_starts_at_first_byte;
        ] );
      ( "store-tier",
        [
          Alcotest.test_case "store get/put RPCs + corruption" `Quick
            test_store_rpcs;
          Alcotest.test_case "fetch-through between workers" `Quick
            test_fetch_through;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "re-dispatch on worker death" `Quick
            test_redispatch_on_worker_death;
          Alcotest.test_case "probe ejection and readmission" `Quick
            test_probe_readmission;
        ] );
    ]
