(* Serving layer: wire protocol round-trips and corruption rejection, the
   coalescing job queue's admission/deadline/drain semantics, and the live
   server over a Unix-socket loopback — including the acceptance
   properties: a served answer is bit-identical to a direct
   Experiment.run, two identical concurrent requests execute once, a full
   queue rejects rather than blocks, and SIGTERM drains in-flight jobs
   before exit. *)

module P = Dl_serve.Protocol
module Job_queue = Dl_serve.Job_queue
module Server = Dl_serve.Server
module Client = Dl_serve.Client
module Transport = Dl_serve.Transport

let ep path = Transport.Unix_socket path
module Codec = Dl_store.Codec
module Experiment = Dl_core.Experiment

(* Polymorphic compare instead of (=): payloads carry floats and the
   generators may produce nan, which compare equal structurally. *)
let eq a b = compare a b = 0

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let tmp_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlserve_test_%d_%d.sock" (Unix.getpid ()) !counter)

(* --- generators ---------------------------------------------------------- *)

let circuit_spec_gen =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun s -> P.Builtin s) (string_size (int_bound 12)));
        ( 1,
          map2
            (fun title text -> P.Inline_bench { title; text })
            (string_size (int_bound 8))
            (string_size (int_bound 200)) );
      ])

let job_spec_gen =
  QCheck.Gen.(
    circuit_spec_gen >>= fun circuit ->
    map2
      (fun (seed, max_random_vectors, deadline_ms)
           (target_yield, collapse_faults, min_weight_ratio) ->
        {
          P.circuit;
          seed;
          max_random_vectors;
          target_yield;
          collapse_faults;
          min_weight_ratio;
          deadline_ms;
        })
      (triple int (int_bound 100_000) (opt (int_bound 1_000_000)))
      (triple float bool float))

let request_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return P.Ping);
        (1, return P.Get_stats);
        (1, return P.Shutdown);
        (4, map (fun s -> P.Submit s) job_spec_gen);
      ])

let summary_gen =
  QCheck.Gen.(
    map2
      (fun text ((fit_r, fit_theta_max), (fit_rmse, fit_rmse_log10), sf) ->
        {
          Dl_store.Artifact.text;
          fit_r;
          fit_theta_max;
          fit_rmse;
          fit_rmse_log10;
          scale_factor = sf;
        })
      (string_size (int_bound 100))
      (triple (pair float float) (pair float bool) float))

let payload_gen =
  QCheck.Gen.(
    map3
      (fun (circuit_title, request_key)
           (vectors, stuck_fault_count, realistic_fault_count)
           ((t_final, theta_final), (gamma_final, theta_iddq_final),
            target_yield) ->
        fun summary (stage_hits, stage_misses) ->
         {
           P.circuit_title;
           vectors;
           stuck_fault_count;
           realistic_fault_count;
           t_final;
           theta_final;
           gamma_final;
           theta_iddq_final;
           target_yield;
           summary;
           request_key;
           stage_hits;
           stage_misses;
         })
      (pair (string_size (int_bound 20)) (string_size (int_bound 40)))
      (triple small_nat small_nat small_nat)
      (triple (pair float float) (pair float float) float)
    <*> summary_gen
    <*> pair small_nat small_nat)

let stats_gen =
  QCheck.Gen.(
    map3
      (fun (accepted, rejected, coalesced)
           (executed, completed, expired)
           ((failed, queue_depth, in_flight), (p50_ms, p99_ms),
            (p999_ms, uptime_s)) ->
        {
          P.accepted;
          rejected;
          coalesced;
          executed;
          completed;
          expired;
          failed;
          queue_depth;
          in_flight;
          p50_ms;
          p99_ms;
          p999_ms;
          uptime_s;
        })
      (triple small_nat small_nat small_nat)
      (triple small_nat small_nat small_nat)
      (triple (triple small_nat small_nat small_nat) (pair float float)
         (pair float float)))

let response_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return P.Pong);
        (1, return P.Expired);
        (1, map (fun s -> P.Server_error s) (string_size (int_bound 60)));
        ( 1,
          map2
            (fun retry_after_ms queue_depth ->
              P.Rejected { retry_after_ms; queue_depth })
            small_nat small_nat );
        (2, map (fun s -> P.Stats_reply s) stats_gen);
        ( 3,
          map3
            (fun payload coalesced service_ms ->
              P.Result { payload; coalesced; service_ms })
            payload_gen bool float );
      ])

let request_arb = QCheck.make ~print:(fun _ -> "<request>") request_gen
let response_arb = QCheck.make ~print:(fun _ -> "<response>") response_gen

(* --- protocol round-trips ------------------------------------------------ *)

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"requests round-trip through the codec" ~count:300
    request_arb (fun req ->
      match Codec.of_bytes P.request_codec (Codec.to_bytes P.request_codec req) with
      | Ok decoded -> eq decoded req
      | Error _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"responses round-trip through the codec" ~count:300
    response_arb (fun resp ->
      match
        Codec.of_bytes P.response_codec (Codec.to_bytes P.response_codec resp)
      with
      | Ok decoded -> eq decoded resp
      | Error _ -> false)

let sample_request =
  P.Submit
    (P.job_spec ~seed:11 ~max_random_vectors:512 ~target_yield:0.8
       ~deadline_ms:2500
       (P.Inline_bench { title = "t"; text = "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n" }))

let test_every_byte_flip_rejected () =
  let data = Codec.to_bytes P.request_codec sample_request in
  for i = 0 to Bytes.length data - 1 do
    let corrupt = Bytes.copy data in
    Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0x40));
    match Codec.of_bytes P.request_codec corrupt with
    | Ok decoded ->
        if not (eq decoded sample_request) then
          Alcotest.failf "byte flip at %d decoded to a different value" i
        else Alcotest.failf "byte flip at %d went undetected" i
    | Error _ -> ()
  done

let test_truncation_rejected () =
  let data = Codec.to_bytes P.request_codec sample_request in
  for len = 0 to Bytes.length data - 1 do
    match Codec.of_bytes P.request_codec (Bytes.sub data 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes went undetected" len
    | Error _ -> ()
  done

(* --- framing over a real socketpair -------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () -> f a b)

let test_frame_io () =
  with_socketpair (fun a b ->
      P.send P.request_codec a P.Ping;
      P.send P.request_codec a sample_request;
      (match P.recv P.request_codec b with
      | Some P.Ping -> ()
      | _ -> Alcotest.fail "first frame was not Ping");
      (match P.recv P.request_codec b with
      | Some req when eq req sample_request -> ()
      | _ -> Alcotest.fail "second frame did not round-trip");
      Unix.close a;
      match P.recv P.request_codec b with
      | None -> ()
      | Some _ -> Alcotest.fail "EOF at frame boundary should be None")

let test_frame_truncated_stream () =
  with_socketpair (fun a b ->
      let frame = Codec.to_bytes P.request_codec sample_request in
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 (Int32.of_int (Bytes.length frame));
      (* header plus half the body, then EOF: an error, not a clean close *)
      let partial = Bytes.length frame / 2 in
      assert (Unix.write a header 0 4 = 4);
      assert (Unix.write a frame 0 partial = partial);
      Unix.close a;
      match P.recv P.request_codec b with
      | exception P.Protocol_error _ -> ()
      | None -> Alcotest.fail "mid-frame EOF must not look like a clean close"
      | Some _ -> Alcotest.fail "truncated frame decoded")

let test_frame_oversized_rejected () =
  with_socketpair (fun a b ->
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 0x7f000000l;
      assert (Unix.write a header 0 4 = 4);
      match P.recv ~max_frame:(1 lsl 20) P.request_codec b with
      | exception P.Protocol_error _ -> ()
      | _ -> Alcotest.fail "oversized frame length accepted")

(* --- job queue ----------------------------------------------------------- *)

let with_queue ?cache_capacity ~capacity f =
  let q = Job_queue.create ?cache_capacity ~capacity () in
  Fun.protect ~finally:(fun () -> Job_queue.shutdown q) (fun () -> f q)

let run_one q =
  match Job_queue.next q with
  | `Drained -> Alcotest.fail "queue drained unexpectedly"
  | `Job job ->
      Job_queue.finish q job (Ok (String.uppercase_ascii (Job_queue.payload job)))

let test_queue_basic () =
  with_queue ~capacity:4 (fun q ->
      match Job_queue.submit q ~key:"k1" "payload" with
      | Job_queue.Enqueued ticket ->
          Alcotest.(check int) "depth" 1 (Job_queue.depth q);
          run_one q;
          (match Job_queue.await q ticket with
          | `Ok "PAYLOAD" -> ()
          | _ -> Alcotest.fail "await did not return the finished result");
          (* completed results are served from the cache *)
          (match Job_queue.submit q ~key:"k1" "payload" with
          | Job_queue.Cached "PAYLOAD" -> ()
          | _ -> Alcotest.fail "repeat submission missed the result cache")
      | _ -> Alcotest.fail "first submission was not Enqueued")

(* [next] blocks forever on an empty queue, so the coalescing assertion is
   phrased as: only one job is ever handed out, proved by draining. *)
let test_queue_coalesce_single_execution () =
  with_queue ~capacity:4 (fun q ->
      let t1 =
        match Job_queue.submit q ~key:"k" "a" with
        | Job_queue.Enqueued t -> t
        | _ -> Alcotest.fail "expected Enqueued"
      in
      let t2 =
        match Job_queue.submit q ~key:"k" "b" with
        | Job_queue.Coalesced t -> t
        | _ -> Alcotest.fail "expected Coalesced"
      in
      run_one q;
      (* the payload of the *first* submission is the one that ran *)
      (match (Job_queue.await q t1, Job_queue.await q t2) with
      | `Ok "A", `Ok "A" -> ()
      | _ -> Alcotest.fail "both waiters must see the single execution");
      Job_queue.drain q;
      match Job_queue.next q with
      | `Drained -> ()
      | `Job _ -> Alcotest.fail "a second job leaked out of the queue")

let test_queue_rejects_when_full () =
  with_queue ~capacity:1 (fun q ->
      (match Job_queue.submit q ~key:"k1" "a" with
      | Job_queue.Enqueued _ -> ()
      | _ -> Alcotest.fail "expected Enqueued");
      match Job_queue.submit q ~key:"k2" "b" with
      | Job_queue.Rejected { queue_depth } ->
          Alcotest.(check int) "reported depth" 1 queue_depth
      | _ -> Alcotest.fail "full queue accepted a new key")

let test_queue_deadline_expiry () =
  with_queue ~capacity:4 (fun q ->
      let deadline = Unix.gettimeofday () +. 0.04 in
      let ticket =
        match Job_queue.submit q ~key:"k" ~deadline "a" with
        | Job_queue.Enqueued t -> t
        | _ -> Alcotest.fail "expected Enqueued"
      in
      (* no worker is running: the waiter must time out, not hang *)
      (match Job_queue.await q ticket with
      | `Expired -> ()
      | _ -> Alcotest.fail "expected deadline expiry");
      (* the queued job has no live waiters: cancelled at dispatch *)
      Job_queue.drain q;
      (match Job_queue.next q with
      | `Drained -> ()
      | `Job _ -> Alcotest.fail "expired job must not be dispatched");
      Alcotest.(check int) "cancelled count" 1 (Job_queue.cancelled q))

let test_queue_drain_rejects () =
  with_queue ~capacity:4 (fun q ->
      Job_queue.drain q;
      (match Job_queue.submit q ~key:"k" "a" with
      | Job_queue.Rejected _ -> ()
      | _ -> Alcotest.fail "draining queue accepted a submission");
      match Job_queue.next q with
      | `Drained -> ()
      | `Job _ -> Alcotest.fail "drained queue produced a job")

(* --- live server over loopback ------------------------------------------- *)

let quick_spec = P.job_spec ~seed:7 ~max_random_vectors:32 (P.Builtin "c17")

let with_server ?(workers = 1) ?(queue_capacity = 16) ?on_job_start f =
  let socket = tmp_socket () in
  let cfg =
    Server.config ~workers ~queue_capacity ~domains_per_worker:1 ?on_job_start
      ~listen:(ep socket) ()
  in
  let server = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server socket)

let submit_result client spec =
  match Client.submit client spec with
  | P.Result served -> served
  | P.Rejected _ -> Alcotest.fail "submission rejected"
  | P.Expired -> Alcotest.fail "submission expired"
  | P.Server_error m -> Alcotest.failf "server error: %s" m
  | _ -> Alcotest.fail "wrong reply kind"

let test_server_ping_and_unknown () =
  with_server (fun _server socket ->
      Client.with_client (ep socket) (fun c ->
          Alcotest.(check bool) "pong" true (Client.ping c);
          match Client.submit c (P.job_spec (P.Builtin "nonesuch")) with
          | P.Server_error msg ->
              Alcotest.(check bool)
                "diagnostic names the benchmark" true
                (contains_sub ~sub:"nonesuch" msg)
          | _ -> Alcotest.fail "unknown benchmark must be a Server_error"))

let test_server_bit_identical_and_inline () =
  with_server (fun _server socket ->
      Client.with_client (ep socket) (fun c ->
          let served = submit_result c quick_spec in
          let direct =
            Experiment.run
              (Experiment.config ~seed:7 ~max_random_vectors:32 ~domains:1
                 (Dl_netlist.Benchmarks.c17 ()))
          in
          let expect =
            P.payload_of_experiment ~key:(Experiment.request_key direct.cfg)
              direct
          in
          if not (eq served.P.payload expect) then
            Alcotest.fail "served answer differs from direct Experiment.run";
          (* inline .bench text is parsed and served the same way *)
          let inline_spec =
            P.job_spec ~seed:7 ~max_random_vectors:32
              (P.Inline_bench
                 { title = "inline17";
                   text =
                     Dl_netlist.Bench_format.to_string
                       (Dl_netlist.Benchmarks.c17 ()) })
          in
          let inline_served = submit_result c inline_spec in
          Alcotest.(check int)
            "inline run sees the same fault universe"
            served.P.payload.P.stuck_fault_count
            inline_served.P.payload.P.stuck_fault_count;
          (* malformed inline text is a diagnostic, not a hang or crash *)
          match
            Client.submit c
              (P.job_spec (P.Inline_bench { title = "bad"; text = "b = NOT(a)" }))
          with
          | P.Server_error _ -> ()
          | _ -> Alcotest.fail "malformed inline bench must be a Server_error"))

(* Poll [pred] until it holds or ~5 s elapse; fail the test on timeout. *)
let wait_for what pred =
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  if not (pred ()) then Alcotest.failf "timed out waiting for %s" what

let test_server_concurrent_coalescing () =
  let release = Atomic.make false in
  let started = Atomic.make 0 in
  let on_job_start _key =
    Atomic.incr started;
    while not (Atomic.get release) do
      Thread.delay 0.002
    done
  in
  with_server ~on_job_start (fun server socket ->
      (* if an assertion fires before the hook is released, [stop] would
         wait forever on the spinning worker — always release on exit *)
      Fun.protect ~finally:(fun () -> Atomic.set release true) @@ fun () ->
      let results = Array.make 2 None in
      let submitter i () =
        Client.with_client (ep socket) (fun c ->
            results.(i) <- Some (submit_result c quick_spec))
      in
      let threads = Array.init 2 (fun i -> Thread.create (submitter i) ()) in
      (* hold the job until both identical requests are admitted *)
      wait_for "both submissions admitted" (fun () ->
          (Server.stats server).P.accepted >= 2);
      Atomic.set release true;
      Array.iter Thread.join threads;
      let a, b =
        match (results.(0), results.(1)) with
        | Some a, Some b -> (a, b)
        | _ -> Alcotest.fail "a submitter did not complete"
      in
      if not (eq a.P.payload b.P.payload) then
        Alcotest.fail "coalesced answers differ";
      let s = Server.stats server in
      Alcotest.(check int) "exactly one execution" 1 s.P.executed;
      Alcotest.(check int) "one coalesced admission" 1 s.P.coalesced;
      Alcotest.(check int)
        "exactly one primary (non-coalesced) response" 1
        (Array.fold_left
           (fun acc (r : P.served option) ->
             match r with
             | Some s when not s.P.coalesced -> acc + 1
             | _ -> acc)
           0 results);
      Alcotest.(check int) "single job start" 1 (Atomic.get started))

let test_server_queue_full_rejects () =
  let release = Atomic.make false in
  let on_job_start _ =
    while not (Atomic.get release) do
      Thread.delay 0.002
    done
  in
  with_server ~queue_capacity:1 ~on_job_start (fun server socket ->
      Fun.protect ~finally:(fun () -> Atomic.set release true) @@ fun () ->
      let specs =
        Array.init 3 (fun i ->
            P.job_spec ~seed:(100 + i) ~max_random_vectors:32 (P.Builtin "c17"))
      in
      let results = Array.make 2 None in
      let submitter i =
        Thread.create
          (fun () ->
            Client.with_client (ep socket) (fun c ->
                results.(i) <- Some (Client.submit c specs.(i))))
          ()
      in
      (* sequence the admissions: A must be dispatched (and blocked in the
         hook) before B arrives, so B fills the queue instead of being
         bounced by it *)
      let t_a = submitter 0 in
      wait_for "job A dispatched" (fun () ->
          (Server.stats server).P.in_flight = 1);
      let t_b = submitter 1 in
      wait_for "job B queued" (fun () ->
          (Server.stats server).P.queue_depth = 1);
      (* the queue is full: the third distinct request must be rejected
         immediately, not block *)
      let t0 = Unix.gettimeofday () in
      (Client.with_client (ep socket) @@ fun c ->
       match Client.submit c specs.(2) with
       | P.Rejected { retry_after_ms; queue_depth } ->
           Alcotest.(check int) "reported queue depth" 1 queue_depth;
           Alcotest.(check bool) "retry hint present" true (retry_after_ms >= 50)
       | _ -> Alcotest.fail "full queue did not reject");
      Alcotest.(check bool)
        "rejection was immediate" true
        (Unix.gettimeofday () -. t0 < 2.0);
      Atomic.set release true;
      List.iter Thread.join [ t_a; t_b ];
      Array.iter
        (fun r ->
          match r with
          | Some (P.Result _) -> ()
          | _ -> Alcotest.fail "admitted job did not complete after release")
        results;
      let s = Server.stats server in
      Alcotest.(check int) "one rejection counted" 1 s.P.rejected)

let test_server_deadline_expires_queued_job () =
  let release = Atomic.make false in
  let on_job_start _ =
    while not (Atomic.get release) do
      Thread.delay 0.002
    done
  in
  with_server ~on_job_start (fun server socket ->
      Fun.protect ~finally:(fun () -> Atomic.set release true) @@ fun () ->
      let blocker = Thread.create (fun () ->
          Client.with_client (ep socket) (fun c ->
              ignore (Client.submit c quick_spec))) ()
      in
      wait_for "blocker dispatched" (fun () ->
          (Server.stats server).P.in_flight = 1);
      (* behind the blocked worker, a 50 ms deadline cannot be met *)
      (Client.with_client (ep socket) @@ fun c ->
       match
         Client.submit c
           (P.job_spec ~seed:999 ~max_random_vectors:32 ~deadline_ms:50
              (P.Builtin "c17"))
       with
       | P.Expired -> ()
       | _ -> Alcotest.fail "expected deadline expiry");
      Atomic.set release true;
      Thread.join blocker;
      let s = Server.stats server in
      Alcotest.(check int) "expiry counted" 1 s.P.expired;
      (* the expired job was cancelled at dispatch, never executed *)
      Alcotest.(check int) "only the blocker executed" 1 s.P.executed)

let test_server_sigterm_drains () =
  let socket = tmp_socket () in
  let served_ref = ref None in
  let on_job_start _ =
    (* SIGTERM arrives while the job is mid-flight; the drain must still
       deliver its response before the process side exits *)
    Unix.kill (Unix.getpid ()) Sys.sigterm
  in
  let cfg =
    Server.config ~workers:1 ~domains_per_worker:1 ~on_job_start ~listen:(ep socket) ()
  in
  let runner = Thread.create (fun () -> Server.run cfg) () in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while not (Sys.file_exists socket) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  Client.with_client (ep socket) (fun c ->
      served_ref := Some (submit_result c quick_spec));
  Thread.join runner;
  (match !served_ref with
  | Some served ->
      Alcotest.(check bool)
        "drained job produced a real answer" true
        (served.P.payload.P.vectors > 0)
  | None -> Alcotest.fail "no response before exit");
  Alcotest.(check bool) "socket unlinked on exit" false (Sys.file_exists socket)

let test_server_stale_socket_recovery () =
  let socket = tmp_socket () in
  (* fake a crashed server: a bound-but-dead socket file *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX socket);
  Unix.close dead;
  let cfg = Server.config ~domains_per_worker:1 ~listen:(ep socket) () in
  let server = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      Client.with_client (ep socket) (fun c ->
          Alcotest.(check bool) "recovered and serving" true (Client.ping c));
      (* a live server must not be stolen from *)
      match Server.start cfg with
      | exception Failure _ -> ()
      | t2 ->
          Server.stop t2;
          Alcotest.fail "second server bound over a live one")

(* --- key plan vs actual run ---------------------------------------------- *)

let test_stage_keys_match_run_reports () =
  let cfg =
    Experiment.config ~seed:13 ~max_random_vectors:32 ~domains:1
      (Dl_netlist.Benchmarks.c432s_small ())
  in
  let planned = Experiment.stage_keys cfg in
  let e = Experiment.run cfg in
  let actual =
    List.map (fun (r : Dl_store.Stage.report) -> (r.stage, r.key)) e.stage_reports
  in
  Alcotest.(check (list (pair string string)))
    "planned keys equal executed keys" actual planned;
  Alcotest.(check string)
    "request_key is the projection key"
    (List.assoc "projection" actual)
    (Experiment.request_key cfg)

let test_stage_keys_engine_sensitivity () =
  (* The fault-sim stage key must depend on the engine variant (the cached
     artifact carries per-engine stats counters), and every upstream stage
     key must not.  Downstream of fault-sim, only projection digests it. *)
  let c = Dl_netlist.Benchmarks.c432s_small () in
  let keys engine =
    Experiment.stage_keys
      (Experiment.config ~seed:13 ~max_random_vectors:32 ~domains:1
         ~sim_engine:engine c)
  in
  let base = keys Dl_fault.Fault_sim.Wide in
  List.iter
    (fun engine ->
      let other = keys engine in
      List.iter
        (fun stage ->
          Alcotest.(check string)
            (Printf.sprintf "%s key is engine-independent" stage)
            (List.assoc stage base) (List.assoc stage other))
        [ "mapping"; "atpg"; "fault-universe"; "layout-ifa"; "swift" ];
      List.iter
        (fun stage ->
          if List.assoc stage base = List.assoc stage other then
            Alcotest.failf "%s key did not change across engine variants"
              stage)
        [ "fault-sim"; "projection" ])
    Dl_fault.Fault_sim.[ Reference; Flat; Event; Pruned ]

let test_serve_loopback_oracle_registered () =
  match Dl_check.Oracle.find "serve-loopback" with
  | None -> Alcotest.fail "serve-loopback oracle is not registered"
  | Some { kind = Dl_check.Oracle.Sweep f; _ } -> (
      match f ~seed:3 with
      | None -> ()
      | Some msg -> Alcotest.failf "oracle failed: %s" msg)
  | Some _ -> Alcotest.fail "serve-loopback should be a sweep check"

(* --- served_to_json validity ---------------------------------------------- *)

(* A strict-enough RFC 8259 parser to referee the hand-rolled emitter:
   objects, arrays, strings (with escape decoding), numbers, true/false/
   null.  Raises Failure on anything else, including trailing garbage. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let json_parse s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then failwith "json: eof";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    let g = next () in
    if g <> c then failwith (Printf.sprintf "json: expected %c, got %c" c g)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let hex = String.init 4 (fun _ -> next ()) in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> failwith "json: bad \\u escape"
              in
              (* The emitter only uses \u for C0 controls; decoding those
                 as a raw byte is exact. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else failwith "json: unexpected non-ASCII \\u escape"
          | c -> failwith (Printf.sprintf "json: bad escape \\%c" c));
          go ())
      | c when Char.code c < 0x20 ->
          failwith "json: raw control char in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        expect '{';
        skip_ws ();
        if peek () = Some '}' then (expect '}'; Jobj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> List.rev ((k, v) :: acc)
            | c -> failwith (Printf.sprintf "json: bad object sep %c" c)
          in
          Jobj (members [])
        end
    | Some '[' ->
        expect '[';
        skip_ws ();
        if peek () = Some ']' then (expect ']'; Jarr [])
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> List.rev (v :: acc)
            | c -> failwith (Printf.sprintf "json: bad array sep %c" c)
          in
          Jarr (elems [])
        end
    | Some 't' ->
        String.iter expect "true";
        Jbool true
    | Some 'f' ->
        String.iter expect "false";
        Jbool false
    | Some 'n' ->
        String.iter expect "null";
        Jnull
    | Some _ ->
        let start = !pos in
        while
          !pos < len
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr pos
        done;
        if !pos = start then failwith "json: unexpected character";
        let tok = String.sub s start (!pos - start) in
        Jnum
          (match float_of_string_opt tok with
          | Some f -> f
          | None -> failwith (Printf.sprintf "json: bad number %S" tok))
    | None -> failwith "json: eof"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then failwith "json: trailing garbage";
  v

let served_with ~title ~summary_text =
  {
    P.payload =
      {
        P.circuit_title = title;
        vectors = 12;
        stuck_fault_count = 34;
        realistic_fault_count = 56;
        t_final = 0.97;
        theta_final = 0.91;
        gamma_final = 0.88;
        theta_iddq_final = 0.93;
        target_yield = 0.75;
        summary =
          {
            Dl_store.Artifact.text = summary_text;
            fit_r = 1.9;
            fit_theta_max = 0.97;
            fit_rmse = 0.01;
            fit_rmse_log10 = true;
            scale_factor = 1.25;
          };
        request_key = "abc123";
        stage_hits = 3;
        stage_misses = 2;
      };
    coalesced = false;
    service_ms = 7.5;
  }

let adversarial_titles =
  [
    "plain";
    "";
    "double\"quote";
    "back\\slash";
    "new\nline and tab\t";
    "control\x01\x1fchars";
    "utf8 caf\xc3\xa9 \xcf\x84";
    "raw latin-1 \xa5 byte";
    "\\u0000 literal, not an escape";
  ]

(* Regression for the double-escaping bug: [%S] applied to an already
   json-escaped title turned bytes >= 0x80 into invalid "\165"-style
   escapes and re-escaped every backslash. *)
let test_served_json_adversarial_titles () =
  List.iter
    (fun title ->
      let s = served_with ~title ~summary_text:("summary of " ^ title) in
      let text = P.served_to_json s in
      match json_parse text with
      | Jobj fields -> (
          match List.assoc_opt "circuit" fields with
          | Some (Jstr decoded) ->
              Alcotest.(check string)
                (Printf.sprintf "title %S round-trips" title)
                title decoded
          | _ -> Alcotest.failf "no circuit string in %s" text)
      | _ -> Alcotest.failf "top level is not an object: %s" text
      | exception Failure m ->
          Alcotest.failf "invalid JSON for title %S: %s\n%s" title m text)
    adversarial_titles

let qcheck_served_json_parses =
  QCheck.Test.make ~name:"served_to_json always parses" ~count:300
    QCheck.(
      pair
        (string_of_size (Gen.int_bound 30))
        (string_of_size (Gen.int_bound 60)))
    (fun (title, summary_text) ->
      let s = served_with ~title ~summary_text in
      match json_parse (P.served_to_json s) with
      | Jobj fields -> (
          match (List.assoc_opt "circuit" fields, List.assoc_opt "summary" fields) with
          | Some (Jstr t), Some (Jstr sm) -> t = title && sm = summary_text
          | _ -> false)
      | _ -> false)

let test_stats_empty_percentiles_are_zero () =
  let m = Dl_serve.Metrics.create () in
  let s = Dl_serve.Metrics.snapshot m ~queue_depth:0 ~in_flight:0 in
  Alcotest.(check (float 0.0)) "p50 = 0 before first request" 0.0 s.P.p50_ms;
  Alcotest.(check (float 0.0)) "p99 = 0" 0.0 s.P.p99_ms;
  Alcotest.(check (float 0.0)) "p999 = 0" 0.0 s.P.p999_ms;
  (* And the JSON-adjacent rendering path stays finite. *)
  Alcotest.(check bool) "pp_stats renders" true
    (String.length (Format.asprintf "%a" P.pp_stats s) > 0)

(* --- load generator -------------------------------------------------------- *)

module L = Dl_serve.Load_gen

let load_cfg ?(seed = 5) () =
  L.config ~rate:40.0 ~duration:2.0
    ~mix:[ ("c432s_small", 2); ("xor-heavy", 1) ]
    ~seed ~gates:60 ~distinct:3 ~deadline_ms:(100, 400) ()

let test_load_plan_deterministic () =
  let cfg = load_cfg () in
  let a = L.plan cfg and b = L.plan cfg in
  Alcotest.(check bool) "same plan" true (eq a b);
  Alcotest.(check string) "byte-identical trace" (L.trace_to_string cfg a)
    (L.trace_to_string cfg b);
  let c = L.plan (load_cfg ~seed:6 ()) in
  Alcotest.(check bool) "different seed, different trace" false
    (L.trace_to_string cfg a = L.trace_to_string (load_cfg ~seed:6 ()) c)

let test_load_plan_shape () =
  let cfg = load_cfg () in
  let plan = L.plan cfg in
  Alcotest.(check bool) "non-empty" true (Array.length plan > 0);
  Array.iteri
    (fun i (p : L.planned) ->
      Alcotest.(check int) "indexed in order" i p.L.index;
      Alcotest.(check bool) "arrival inside horizon" true
        (p.L.at_s >= 0.0 && p.L.at_s < cfg.L.duration);
      if i > 0 then
        Alcotest.(check bool) "arrivals non-decreasing" true
          (p.L.at_s >= plan.(i - 1).L.at_s);
      Alcotest.(check bool) "class from the mix" true
        (List.mem_assoc p.L.class_name cfg.L.mix);
      match p.L.deadline with
      | Some d -> Alcotest.(check bool) "deadline in range" true (d >= 100 && d <= 400)
      | None -> Alcotest.fail "deadline expected")
    plan;
  (* The distinct-seed pool bounds per-class variety, so coalescing has
     repeats to work with. *)
  let seeds_of cls =
    Array.to_list plan
    |> List.filter_map (fun (p : L.planned) ->
           if p.L.class_name = cls then Some p.L.job_seed else None)
    |> List.sort_uniq compare
  in
  List.iter
    (fun (cls, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s seed pool bounded" cls)
        true
        (List.length (seeds_of cls) <= cfg.L.distinct))
    cfg.L.mix

let test_load_plan_rate_scales () =
  let at rate =
    Array.length
      (L.plan (L.config ~rate ~duration:4.0 ~mix:[ ("c17", 1) ] ~seed:2 ()))
  in
  Alcotest.(check bool) "10x rate, more arrivals" true (at 50.0 > at 5.0)

let test_load_plan_rejects () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "unknown class" (fun () ->
      L.plan (L.config ~mix:[ ("no-such-class", 1) ] ()));
  expect_invalid "zero rate" (fun () -> L.plan (L.config ~rate:0.0 ()));
  expect_invalid "negative weight" (fun () ->
      L.plan (L.config ~mix:[ ("c17", -1) ] ()));
  expect_invalid "empty mix" (fun () -> L.plan (L.config ~mix:[] ()));
  expect_invalid "bad mix string" (fun () -> ignore (L.mix_of_string "c17:0"))

let test_load_mix_of_string () =
  Alcotest.(check (list (pair string int)))
    "weights parsed"
    [ ("c432s", 3); ("xor-heavy", 1); ("c17", 1) ]
    (L.mix_of_string "c432s:3, xor-heavy:1, c17")

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_request_roundtrip; qcheck_response_roundtrip ]
        @ [
            Alcotest.test_case "every byte flip rejected" `Quick
              test_every_byte_flip_rejected;
            Alcotest.test_case "every truncation rejected" `Quick
              test_truncation_rejected;
            Alcotest.test_case "frame io over socketpair" `Quick test_frame_io;
            Alcotest.test_case "mid-frame EOF is an error" `Quick
              test_frame_truncated_stream;
            Alcotest.test_case "oversized frame rejected" `Quick
              test_frame_oversized_rejected;
          ] );
      ( "job-queue",
        [
          Alcotest.test_case "enqueue, run, await, cache" `Quick
            test_queue_basic;
          Alcotest.test_case "coalesced submissions run once" `Quick
            test_queue_coalesce_single_execution;
          Alcotest.test_case "full queue rejects" `Quick
            test_queue_rejects_when_full;
          Alcotest.test_case "deadline expiry cancels queued job" `Quick
            test_queue_deadline_expiry;
          Alcotest.test_case "drain rejects and signals workers" `Quick
            test_queue_drain_rejects;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping + unknown benchmark" `Quick
            test_server_ping_and_unknown;
          Alcotest.test_case "served = direct run; inline bench" `Quick
            test_server_bit_identical_and_inline;
          Alcotest.test_case "concurrent identical requests coalesce" `Quick
            test_server_concurrent_coalescing;
          Alcotest.test_case "full queue rejects, not blocks" `Quick
            test_server_queue_full_rejects;
          Alcotest.test_case "deadline expires queued job" `Quick
            test_server_deadline_expires_queued_job;
          Alcotest.test_case "SIGTERM drains in-flight job" `Quick
            test_server_sigterm_drains;
          Alcotest.test_case "stale socket recovery, live socket refused"
            `Quick test_server_stale_socket_recovery;
        ] );
      ( "keys",
        [
          Alcotest.test_case "stage-key plan matches run" `Quick
            test_stage_keys_match_run_reports;
          Alcotest.test_case "fault-sim key digests the engine variant"
            `Quick test_stage_keys_engine_sensitivity;
          Alcotest.test_case "loopback oracle registered and passing" `Slow
            test_serve_loopback_oracle_registered;
        ] );
      ( "json",
        [
          Alcotest.test_case "adversarial titles stay valid JSON" `Quick
            test_served_json_adversarial_titles;
          QCheck_alcotest.to_alcotest qcheck_served_json_parses;
          Alcotest.test_case "empty-window percentiles are 0.0" `Quick
            test_stats_empty_percentiles_are_zero;
        ] );
      ( "load-gen",
        [
          Alcotest.test_case "plan and trace deterministic" `Quick
            test_load_plan_deterministic;
          Alcotest.test_case "plan shape" `Quick test_load_plan_shape;
          Alcotest.test_case "rate scales arrivals" `Quick
            test_load_plan_rate_scales;
          Alcotest.test_case "invalid configs rejected" `Quick
            test_load_plan_rejects;
          Alcotest.test_case "mix parsing" `Quick test_load_mix_of_string;
        ] );
    ]
