open Dl_netlist
open Dl_fault

let rng = Dl_util.Rng.create 202

let random_vectors c n =
  Array.init n (fun _ ->
      Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))

(* --- Stuck_at universe and collapsing --------------------------------------- *)

let test_universe_size_c17 () =
  let c = Benchmarks.c17 () in
  (* c17: 11 stems; fanout > 1 nets: n3, n11, n16 -> 2 branches each.
     Lines = 11 + 6 = 17; faults = 34. *)
  let u = Stuck_at.universe c in
  Alcotest.(check int) "universe" 34 (Array.length u)

let test_universe_sorted_unique () =
  let c = Benchmarks.c432s () in
  let u = Stuck_at.universe c in
  for i = 0 to Array.length u - 2 do
    Alcotest.(check bool) "strictly sorted" true (Stuck_at.compare u.(i) u.(i + 1) < 0)
  done

let test_collapse_c17 () =
  let c = Benchmarks.c17 () in
  let u = Stuck_at.universe c in
  let collapsed = Stuck_at.collapse c u in
  (* Known result for c17 under equivalence collapsing: 22 faults. *)
  Alcotest.(check int) "collapsed" 22 (Array.length collapsed);
  (* classes partition the universe *)
  let classes = Stuck_at.equivalence_classes c u in
  let total = Array.fold_left (fun acc cls -> acc + Array.length cls) 0 classes in
  Alcotest.(check int) "partition" (Array.length u) total;
  Alcotest.(check int) "one representative each" (Array.length collapsed)
    (Array.length classes)

let test_collapse_detection_equivalent () =
  (* every fault in a class is detected by exactly the same vectors *)
  let c = Benchmarks.c17 () in
  let u = Stuck_at.universe c in
  let classes = Stuck_at.equivalence_classes c u in
  let vectors = random_vectors c 16 in
  Array.iter
    (fun cls ->
      if Array.length cls > 1 then
        Array.iter
          (fun v ->
            let d0 = Fault_sim.detects_fault c cls.(0) v in
            Array.iter
              (fun f ->
                Alcotest.(check bool) "class detection agrees" d0
                  (Fault_sim.detects_fault c f v))
              cls)
          vectors)
    classes

let test_checkpoints_subset () =
  let c = Benchmarks.c17 () in
  let cps = Stuck_at.checkpoints c in
  (* c17 checkpoints: 5 PIs + 6 fanout branches = 11 lines, 22 faults *)
  Alcotest.(check int) "checkpoint faults" 22 (Array.length cps)

let test_to_string () =
  let c = Benchmarks.c17 () in
  let f = { Stuck_at.site = Stuck_at.Stem (Circuit.find c "n10"); polarity = Stuck_at.Sa0 } in
  Alcotest.(check string) "stem" "n10 SA0" (Stuck_at.to_string c f)

(* --- Fault simulation -------------------------------------------------------- *)

let test_ppsfp_matches_oracle () =
  List.iter
    (fun name ->
      let c = Option.get (Benchmarks.by_name name) in
      let faults = Stuck_at.universe c in
      let vectors = random_vectors c 48 in
      let r = Fault_sim.run ~drop_detected:false c ~faults ~vectors in
      Array.iteri
        (fun i first ->
          (* oracle: scan vectors with the dual ternary simulator *)
          let oracle = ref None in
          Array.iteri
            (fun k v ->
              if !oracle = None && Fault_sim.detects_fault c faults.(i) v then
                oracle := Some k)
            vectors;
          if first <> !oracle then
            Alcotest.failf "%s: fault %s first detection mismatch (%s vs %s)" name
              (Stuck_at.to_string c faults.(i))
              (match first with Some k -> string_of_int k | None -> "-")
              (match !oracle with Some k -> string_of_int k | None -> "-"))
        r.first_detection)
    [ "c17"; "mux3"; "par16"; "c432s_small" ]

let test_ppsfp_drop_consistency () =
  (* dropping must not change first detections *)
  let c = Option.get (Benchmarks.by_name "add8") in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let vectors = random_vectors c 100 in
  let a = Fault_sim.run ~drop_detected:true c ~faults ~vectors in
  let b = Fault_sim.run ~drop_detected:false c ~faults ~vectors in
  Alcotest.(check bool) "same firsts" true (a.first_detection = b.first_detection)

let test_ppsfp_partial_block () =
  (* vector counts not divisible by 64 are handled exactly *)
  let c = Benchmarks.c17 () in
  let faults = Stuck_at.universe c in
  let vectors = random_vectors c 70 in
  let full = Fault_sim.run ~drop_detected:false c ~faults ~vectors in
  let head = Fault_sim.run ~drop_detected:false c ~faults ~vectors:(Array.sub vectors 0 65) in
  Array.iteri
    (fun i d ->
      match (d, full.first_detection.(i)) with
      | Some a, Some b when a < 65 -> Alcotest.(check int) "prefix stable" b a
      | _ -> ())
    head.first_detection

let test_detection_callback () =
  let c = Benchmarks.c17 () in
  let faults = Stuck_at.universe c in
  let vectors = random_vectors c 32 in
  let events = ref 0 in
  let r =
    Fault_sim.run ~drop_detected:false
      ~on_detect:(fun ~fault_index:_ ~vector_index:_ -> incr events)
      c ~faults ~vectors
  in
  Alcotest.(check bool) "events >= detected faults" true
    (!events >= Fault_sim.detected_count r)

let test_coverage_value () =
  let c = Benchmarks.c17 () in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let vectors = random_vectors c 128 in
  let r = Fault_sim.run c ~faults ~vectors in
  Alcotest.(check bool) "c17 fully covered by 128 random" true
    (Fault_sim.coverage r = 1.0)

(* --- Parallel fault simulation ----------------------------------------------- *)

type event = { fault : int; vector : int }

let run_collecting runner =
  let events = ref [] in
  let r =
    runner ~on_detect:(fun ~fault_index ~vector_index ->
        events := { fault = fault_index; vector = vector_index } :: !events)
  in
  (r, List.rev !events)

let check_parallel_matches_serial ~what c ~faults ~vectors ~domains ~drop_detected =
  let serial, serial_events =
    run_collecting (fun ~on_detect ->
        Fault_sim.run ~drop_detected ~on_detect c ~faults ~vectors)
  in
  let par, par_events =
    run_collecting (fun ~on_detect ->
        Fault_sim.run_parallel ~drop_detected ~on_detect ~domains c ~faults
          ~vectors)
  in
  if serial.Fault_sim.first_detection <> par.Fault_sim.first_detection then
    Alcotest.failf "%s: first_detection differs (domains=%d drop=%b)" what domains
      drop_detected;
  if serial.Fault_sim.gate_evaluations <> par.Fault_sim.gate_evaluations then
    Alcotest.failf "%s: gate_evaluations %d vs %d (domains=%d drop=%b)" what
      serial.Fault_sim.gate_evaluations par.Fault_sim.gate_evaluations domains
      drop_detected;
  if Fault_sim.coverage serial <> Fault_sim.coverage par then
    Alcotest.failf "%s: coverage differs (domains=%d drop=%b)" what domains
      drop_detected;
  if serial_events <> par_events then
    Alcotest.failf "%s: on_detect event sequence differs (domains=%d drop=%b)" what
      domains drop_detected

let test_parallel_matches_serial () =
  List.iter
    (fun name ->
      let c = Option.get (Benchmarks.by_name name) in
      let faults = Stuck_at.universe c in
      let vectors = random_vectors c 100 in
      List.iter
        (fun domains ->
          List.iter
            (fun drop_detected ->
              check_parallel_matches_serial ~what:name c ~faults ~vectors ~domains
                ~drop_detected)
            [ true; false ])
        [ 1; 2; 3; 4 ])
    [ "c17"; "mux3"; "add8"; "c432s_small" ]

let test_parallel_pool_reuse () =
  (* One pool across several calls and circuits must behave like fresh runs. *)
  Dl_util.Parallel.with_pool ~domains:3 (fun pool ->
      List.iter
        (fun name ->
          let c = Option.get (Benchmarks.by_name name) in
          let faults = Stuck_at.collapse c (Stuck_at.universe c) in
          let vectors = random_vectors c 70 in
          let serial = Fault_sim.run c ~faults ~vectors in
          let par = Fault_sim.run_parallel ~pool c ~faults ~vectors in
          Alcotest.(check bool)
            (name ^ ": pooled run identical") true
            (serial.Fault_sim.first_detection = par.Fault_sim.first_detection
            && serial.Fault_sim.gate_evaluations = par.Fault_sim.gate_evaluations))
        [ "c17"; "par16"; "mux3" ])

let test_parallel_empty_inputs () =
  let c = Benchmarks.c17 () in
  let r =
    Fault_sim.run_parallel ~domains:4 c ~faults:[||] ~vectors:(random_vectors c 10)
  in
  Alcotest.(check int) "no faults" 0 (Array.length r.Fault_sim.first_detection);
  let faults = Stuck_at.universe c in
  let r = Fault_sim.run_parallel ~domains:4 c ~faults ~vectors:[||] in
  Alcotest.(check bool) "no vectors, no detections" true
    (Array.for_all (fun d -> d = None) r.Fault_sim.first_detection)

let test_parallel_degenerate_shapes () =
  let c = Benchmarks.c17 () in
  let universe = Stuck_at.universe c in
  let faults = Array.sub universe 0 3 in
  let vectors = random_vectors c 70 in
  (* A domain request far wider than the fault universe is clamped before
     any domain is spawned — even absurd widths must work. *)
  List.iter
    (fun domains ->
      let serial = Fault_sim.run ~drop_detected:false c ~faults ~vectors in
      let par =
        Fault_sim.run_parallel ~drop_detected:false ~domains c ~faults ~vectors
      in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d identical" domains)
        true
        (serial.Fault_sim.first_detection = par.Fault_sim.first_detection
        && serial.Fault_sim.gate_evaluations = par.Fault_sim.gate_evaluations))
    [ 4; 64; 500 ];
  (* A caller-supplied pool wider than the universe: surplus workers idle. *)
  Dl_util.Parallel.with_pool ~domains:6 (fun pool ->
      let serial = Fault_sim.run c ~faults ~vectors in
      let par = Fault_sim.run_parallel ~pool c ~faults ~vectors in
      Alcotest.(check bool) "wide pool identical" true
        (serial.Fault_sim.first_detection = par.Fault_sim.first_detection);
      let r = Fault_sim.run_parallel ~pool c ~faults:[||] ~vectors in
      Alcotest.(check int) "empty universe" 0
        (Array.length r.Fault_sim.first_detection);
      Alcotest.(check int) "empty universe costs nothing" 0
        r.Fault_sim.gate_evaluations;
      Alcotest.(check int) "empty universe vectors_applied" 70
        r.Fault_sim.vectors_applied);
  (* Single-pattern and 1..63-vector tail blocks, full universe. *)
  List.iter
    (fun n ->
      let vectors = random_vectors c n in
      List.iter
        (fun drop_detected ->
          check_parallel_matches_serial
            ~what:(Printf.sprintf "%d-vector block" n)
            c ~faults:universe ~vectors ~domains:3 ~drop_detected)
        [ true; false ])
    [ 1; 63; 65 ]

let test_parallel_sharding_deterministic () =
  (* Sharding is contiguous by fault index: repeated runs are identical in
     every observable, including the replayed event order. *)
  let c = Option.get (Benchmarks.by_name "add8") in
  let faults = Stuck_at.universe c in
  let vectors = random_vectors c 90 in
  let go () =
    run_collecting (fun ~on_detect ->
        Fault_sim.run_parallel ~drop_detected:false ~on_detect ~domains:3 c
          ~faults ~vectors)
  in
  let r1, ev1 = go () in
  let r2, ev2 = go () in
  Alcotest.(check bool) "detections reproducible" true
    (r1.Fault_sim.first_detection = r2.Fault_sim.first_detection);
  Alcotest.(check bool) "event stream reproducible" true (ev1 = ev2);
  Alcotest.(check bool) "events in serial order" true
    (let serial, serial_ev =
       run_collecting (fun ~on_detect ->
           Fault_sim.run ~drop_detected:false ~on_detect c ~faults ~vectors)
     in
     serial.Fault_sim.first_detection = r1.Fault_sim.first_detection
     && serial_ev = ev1)

let prop_parallel_equals_serial =
  (* Random circuits, fault subsets, vector counts, domain counts and both
     dropping modes: the parallel engine must be indistinguishable from the
     serial one in every observable field. *)
  QCheck.Test.make ~name:"run_parallel = run on random circuits" ~count:30
    QCheck.(
      quad (int_range 0 1_000_000) (int_range 1 130) (int_range 1 5) bool)
    (fun (seed, n_vectors, domains, drop_detected) ->
      let c =
        Dl_netlist.Generator.random ~seed ~inputs:(4 + (seed mod 5)) ~outputs:3
          ~profile:
            [ (Dl_netlist.Gate.Nand, 12); (Dl_netlist.Gate.Nor, 6);
              (Dl_netlist.Gate.Xor, 4); (Dl_netlist.Gate.Not, 4) ]
          ()
      in
      let universe = Stuck_at.universe c in
      (* a deterministic subset keeps shard sizes irregular *)
      let faults =
        Array.of_list
          (List.filteri (fun i _ -> (i + seed) mod 4 <> 1) (Array.to_list universe))
      in
      let vectors = random_vectors c n_vectors in
      check_parallel_matches_serial ~what:"random" c ~faults ~vectors ~domains
        ~drop_detected;
      true)

(* --- Kernel engine vs reference engine ---------------------------------------- *)

let check_kernel_matches_reference ~what c ~faults ~vectors ~drop_detected =
  let new_r, new_events =
    run_collecting (fun ~on_detect ->
        Fault_sim.run ~drop_detected ~on_detect c ~faults ~vectors)
  in
  let ref_r, ref_events =
    run_collecting (fun ~on_detect ->
        Fault_sim.Reference.run ~drop_detected ~on_detect c ~faults ~vectors)
  in
  if new_r.Fault_sim.first_detection <> ref_r.Fault_sim.first_detection then
    Alcotest.failf "%s: first_detection differs from reference (drop=%b)" what
      drop_detected;
  if new_r.Fault_sim.gate_evaluations <> ref_r.Fault_sim.gate_evaluations then
    Alcotest.failf "%s: gate_evaluations %d vs reference %d (drop=%b)" what
      new_r.Fault_sim.gate_evaluations ref_r.Fault_sim.gate_evaluations
      drop_detected;
  if new_events <> ref_events then
    Alcotest.failf "%s: on_detect event sequence differs from reference (drop=%b)"
      what drop_detected

let test_kernel_matches_reference () =
  List.iter
    (fun name ->
      let c = Option.get (Benchmarks.by_name name) in
      let faults = Stuck_at.universe c in
      let vectors = random_vectors c 100 in
      List.iter
        (fun drop_detected ->
          check_kernel_matches_reference ~what:name c ~faults ~vectors
            ~drop_detected)
        [ true; false ])
    [ "c17"; "mux3"; "add8"; "c432s_small" ]

let test_kernel_matches_reference_tail_blocks () =
  (* valid_mask handling: every tail length 1..63 plus exact multiples *)
  let c = Benchmarks.c17 () in
  let faults = Stuck_at.universe c in
  let all = random_vectors c 130 in
  List.iter
    (fun n ->
      let vectors = Array.sub all 0 n in
      check_kernel_matches_reference ~what:(Printf.sprintf "c17/%d vectors" n) c
        ~faults ~vectors ~drop_detected:false)
    [ 1; 2; 31; 63; 64; 65; 127; 128; 129 ]

let prop_kernel_equals_reference =
  (* Random circuits, irregular fault subsets, random vector counts and both
     dropping modes: the flat-kernel engine must be indistinguishable from
     the retained pre-kernel engine in every observable field. *)
  QCheck.Test.make ~name:"kernel engine = reference on random circuits" ~count:30
    QCheck.(triple (int_range 0 1_000_000) (int_range 1 130) bool)
    (fun (seed, n_vectors, drop_detected) ->
      let c =
        Dl_netlist.Generator.random ~seed ~inputs:(4 + (seed mod 5)) ~outputs:3
          ~profile:
            [ (Dl_netlist.Gate.Nand, 12); (Dl_netlist.Gate.Nor, 6);
              (Dl_netlist.Gate.Xor, 4); (Dl_netlist.Gate.Not, 4) ]
          ()
      in
      let universe = Stuck_at.universe c in
      let faults =
        Array.of_list
          (List.filteri (fun i _ -> (i + seed) mod 4 <> 1) (Array.to_list universe))
      in
      let vectors = random_vectors c n_vectors in
      check_kernel_matches_reference ~what:"random" c ~faults ~vectors
        ~drop_detected;
      true)

(* --- Engine variants (Event / Pruned / Wide) vs reference --------------------- *)

let nonref_engines =
  List.filter (fun e -> e <> Fault_sim.Reference) Fault_sim.engines

let check_engine_matches_reference ~what ~engine c ~faults ~vectors
    ~drop_detected =
  let new_r, new_events =
    run_collecting (fun ~on_detect ->
        Fault_sim.run_with ~engine ~drop_detected ~on_detect c ~faults ~vectors)
  in
  let ref_r, ref_events =
    run_collecting (fun ~on_detect ->
        Fault_sim.Reference.run ~drop_detected ~on_detect c ~faults ~vectors)
  in
  let ename = Fault_sim.engine_to_string engine in
  if new_r.Fault_sim.first_detection <> ref_r.Fault_sim.first_detection then
    Alcotest.failf "%s[%s]: first_detection differs from reference (drop=%b)"
      what ename drop_detected;
  if new_events <> ref_events then
    Alcotest.failf "%s[%s]: on_detect event sequence differs (drop=%b)" what
      ename drop_detected;
  (* the flat-compatible engines must preserve the evaluation count too *)
  if
    (engine = Fault_sim.Flat || engine = Fault_sim.Event)
    && new_r.Fault_sim.gate_evaluations <> ref_r.Fault_sim.gate_evaluations
  then
    Alcotest.failf "%s[%s]: gate_evaluations %d vs reference %d (drop=%b)" what
      ename new_r.Fault_sim.gate_evaluations ref_r.Fault_sim.gate_evaluations
      drop_detected

let test_engines_match_reference () =
  List.iter
    (fun name ->
      let c = Option.get (Benchmarks.by_name name) in
      let faults = Stuck_at.universe c in
      let vectors = random_vectors c 100 in
      List.iter
        (fun engine ->
          List.iter
            (fun drop_detected ->
              check_engine_matches_reference ~what:name ~engine c ~faults
                ~vectors ~drop_detected)
            [ true; false ])
        nonref_engines)
    [ "c17"; "mux3"; "add8"; "c432s_small" ]

let test_engines_tail_blocks () =
  (* per-sub-word valid masks: every interesting length around the 64- and
     256-pattern block boundaries, all engines, both drop modes *)
  let c = Benchmarks.c17 () in
  let faults = Stuck_at.universe c in
  let all = random_vectors c 257 in
  List.iter
    (fun n ->
      let vectors = Array.sub all 0 n in
      List.iter
        (fun engine ->
          List.iter
            (fun drop_detected ->
              check_engine_matches_reference
                ~what:(Printf.sprintf "c17/%d vectors" n)
                ~engine c ~faults ~vectors ~drop_detected)
            [ true; false ])
        nonref_engines)
    [ 1; 2; 31; 63; 64; 65; 127; 128; 129; 192; 255; 256; 257 ]

let test_engines_on_families () =
  (* every structural class, notably fanout-free-heavy (deep FFR chains) and
     reconvergent (stems everywhere) *)
  List.iteri
    (fun i (fam : Generator.Family.t) ->
      let c = Generator.Family.build fam ~seed:(400 + i) ~gates:40 in
      let faults = Stuck_at.universe c in
      let vectors = random_vectors c 96 in
      List.iter
        (fun engine ->
          check_engine_matches_reference ~what:fam.Generator.Family.name ~engine
            c ~faults ~vectors ~drop_detected:true)
        nonref_engines)
    Generator.Family.all

let test_parallel_with_matches_serial () =
  let c = Option.get (Benchmarks.by_name "add8") in
  let faults = Stuck_at.universe c in
  let vectors = random_vectors c 300 in
  List.iter
    (fun engine ->
      let serial, serial_events =
        run_collecting (fun ~on_detect ->
            Fault_sim.run_with ~engine ~drop_detected:false ~on_detect c ~faults
              ~vectors)
      in
      List.iter
        (fun domains ->
          List.iter
            (fun drop_detected ->
              let par, par_events =
                run_collecting (fun ~on_detect ->
                    Fault_sim.run_parallel_with ~engine ~drop_detected
                      ~on_detect ~domains c ~faults ~vectors)
              in
              let serial_r =
                if drop_detected then
                  Fault_sim.run_with ~engine ~drop_detected c ~faults ~vectors
                else serial
              in
              let ename = Fault_sim.engine_to_string engine in
              if
                par.Fault_sim.first_detection
                <> serial_r.Fault_sim.first_detection
              then
                Alcotest.failf "%s: parallel first_detection differs (d=%d)"
                  ename domains;
              (* stats totals are sharding-invariant by design *)
              if par.Fault_sim.stats <> serial_r.Fault_sim.stats then
                Alcotest.failf "%s: parallel stats differ (d=%d drop=%b)" ename
                  domains drop_detected;
              if (not drop_detected) && par_events <> serial_events then
                Alcotest.failf "%s: parallel event stream differs (d=%d)" ename
                  domains)
            [ true; false ])
        [ 1; 2; 3 ])
    nonref_engines

let prop_engines_equal_reference =
  QCheck.Test.make ~name:"every engine = reference on random circuits" ~count:25
    QCheck.(
      quad (int_range 0 1_000_000) (int_range 1 300) (int_range 0 4) bool)
    (fun (seed, n_vectors, engine_idx, drop_detected) ->
      let c =
        Dl_netlist.Generator.random ~seed ~inputs:(4 + (seed mod 5)) ~outputs:3
          ~profile:
            [ (Dl_netlist.Gate.Nand, 12); (Dl_netlist.Gate.Nor, 6);
              (Dl_netlist.Gate.Xor, 4); (Dl_netlist.Gate.Not, 4) ]
          ()
      in
      let universe = Stuck_at.universe c in
      let faults =
        Array.of_list
          (List.filteri (fun i _ -> (i + seed) mod 4 <> 1) (Array.to_list universe))
      in
      let vectors = random_vectors c n_vectors in
      let engine = List.nth Fault_sim.engines engine_idx in
      check_engine_matches_reference ~what:"random" ~engine c ~faults ~vectors
        ~drop_detected;
      true)

let test_engine_stats () =
  let c = Benchmarks.c432s () in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let n_faults = Array.length faults in
  let vectors = random_vectors c 256 in
  let flat = Fault_sim.run_with ~engine:Fault_sim.Flat c ~faults ~vectors in
  let event = Fault_sim.run_with ~engine:Fault_sim.Event c ~faults ~vectors in
  let pruned = Fault_sim.run_with ~engine:Fault_sim.Pruned c ~faults ~vectors in
  let wide = Fault_sim.run_with ~engine:Fault_sim.Wide c ~faults ~vectors in
  (* result field and stats field agree *)
  List.iter
    (fun (r : Fault_sim.result) ->
      Alcotest.(check int) "stats.gate_evaluations = result field"
        r.Fault_sim.gate_evaluations
        r.Fault_sim.stats.Fault_sim.Stats.gate_evaluations)
    [ flat; event; pruned; wide ];
  (* event engine makes the same scheduling decisions as flat *)
  Alcotest.(check int) "event evals = flat evals" flat.Fault_sim.gate_evaluations
    event.Fault_sim.gate_evaluations;
  Alcotest.(check int) "event events = flat events"
    flat.Fault_sim.stats.Fault_sim.Stats.events
    event.Fault_sim.stats.Fault_sim.Stats.events;
  (* inference engines never simulate individual faults *)
  List.iter
    (fun (r : Fault_sim.result) ->
      let s = r.Fault_sim.stats in
      Alcotest.(check int) "no per-fault propagation" 0
        s.Fault_sim.Stats.faults_simulated;
      Alcotest.(check bool) "stems toggled" true
        (s.Fault_sim.Stats.stem_simulations > 0);
      Alcotest.(check bool) "every fault decided by tracing" true
        (s.Fault_sim.Stats.faults_inferred >= Fault_sim.detected_count r))
    [ pruned; wide ];
  Alcotest.(check bool) "flat simulates faults" true
    (flat.Fault_sim.stats.Fault_sim.Stats.faults_simulated > 0);
  (* with dropping on, dropped = detected *)
  Alcotest.(check int) "dropped = detected" (Fault_sim.detected_count flat)
    flat.Fault_sim.stats.Fault_sim.Stats.faults_dropped;
  let keep =
    Fault_sim.run_with ~engine:Fault_sim.Flat ~drop_detected:false c ~faults
      ~vectors
  in
  Alcotest.(check int) "no dropping, none dropped" 0
    keep.Fault_sim.stats.Fault_sim.Stats.faults_dropped;
  (* pruning pays off: fewer evaluations than the flat engine on a circuit
     of this size, with identical detections *)
  Alcotest.(check bool) "pruned evals < flat evals" true
    (pruned.Fault_sim.gate_evaluations < flat.Fault_sim.gate_evaluations);
  Alcotest.(check bool) "identical detections" true
    (pruned.Fault_sim.first_detection = flat.Fault_sim.first_detection);
  ignore n_faults;
  (* Stats.pp renders every counter *)
  let s = Format.asprintf "%a" Fault_sim.Stats.pp wide.Fault_sim.stats in
  Alcotest.(check bool) "pp non-empty" true (String.length s > 0)

let test_engine_names () =
  List.iter
    (fun e ->
      Alcotest.(check bool) "round-trip" true
        (Fault_sim.engine_of_string (Fault_sim.engine_to_string e) = Some e))
    Fault_sim.engines;
  Alcotest.(check bool) "unknown rejected" true
    (Fault_sim.engine_of_string "warp" = None)

let test_wide_hot_path_allocation_free () =
  (* The wide PPSFP hot loop must be allocation-free in steady state:
     <= 0.05 minor words per (64-pattern-unit) gate evaluation.  Measured as
     the delta between a short and a long run so the per-run setup
     (kernel lowering, scratch buffers, result arrays — identical in both)
     cancels out and only the per-block/per-fault path is gated. *)
  let c = Benchmarks.c432s () in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let all = random_vectors c 2048 in
  let short = Array.sub all 0 512 in
  let measure vectors =
    ignore
      (Fault_sim.run_with ~engine:Fault_sim.Wide ~drop_detected:false c ~faults
         ~vectors);
    let m0 = Gc.minor_words () in
    let r =
      Fault_sim.run_with ~engine:Fault_sim.Wide ~drop_detected:false c ~faults
        ~vectors
    in
    let m1 = Gc.minor_words () in
    (m1 -. m0, float_of_int r.Fault_sim.gate_evaluations)
  in
  let w_short, e_short = measure short in
  let w_long, e_long = measure all in
  let per_eval = (w_long -. w_short) /. (e_long -. e_short) in
  if per_eval > 0.05 then
    Alcotest.failf "wide path allocates %.4f minor words per gate eval" per_eval

let test_kernel_hot_path_allocation_free () =
  (* The PPSFP hot path must not allocate: after a warm-up run (lowering,
     scratch and result-array allocation are unavoidable), a steady-state
     run must stay under 0.5 minor words per gate evaluation — a single
     boxed int64 on the per-gate path would already cost 3. *)
  let c = Benchmarks.c432s () in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let vectors = random_vectors c 512 in
  ignore (Fault_sim.run ~drop_detected:false c ~faults ~vectors);
  let m0 = Gc.minor_words () in
  let r = Fault_sim.run ~drop_detected:false c ~faults ~vectors in
  let m1 = Gc.minor_words () in
  let per_eval = (m1 -. m0) /. float_of_int r.Fault_sim.gate_evaluations in
  if per_eval > 0.5 then
    Alcotest.failf "hot path allocates %.4f minor words per gate eval" per_eval

let test_lowest_set_bit () =
  Alcotest.(check (option int)) "zero" None (Fault_sim.lowest_set_bit 0L);
  Alcotest.(check (option int)) "one" (Some 0) (Fault_sim.lowest_set_bit 1L);
  Alcotest.(check (option int)) "min_int" (Some 63)
    (Fault_sim.lowest_set_bit Int64.min_int);
  Alcotest.(check (option int)) "all ones" (Some 0)
    (Fault_sim.lowest_set_bit (-1L));
  for bit = 0 to 63 do
    Alcotest.(check (option int)) (Printf.sprintf "bit %d" bit) (Some bit)
      (Fault_sim.lowest_set_bit (Int64.shift_left 1L bit));
    (* higher garbage bits must not disturb the scan *)
    if bit < 62 then
      Alcotest.(check (option int)) (Printf.sprintf "bit %d+" bit) (Some bit)
        (Fault_sim.lowest_set_bit
           (Int64.logor (Int64.shift_left 1L bit) (Int64.shift_left 3L (bit + 1))))
  done

(* --- Coverage curves ------------------------------------------------------------ *)

let test_coverage_monotone () =
  let firsts = [| Some 3; None; Some 10; Some 3; Some 0 |] in
  let cov = Coverage.make firsts in
  let prev = ref (-1.0) in
  for k = 0 to 12 do
    let v = Coverage.at cov k in
    Alcotest.(check bool) "monotone" true (v >= !prev);
    prev := v
  done;
  Alcotest.(check (float 1e-12)) "final" 0.8 (Coverage.final cov)

let test_coverage_weighted () =
  let firsts = [| Some 0; None |] in
  let cov = Coverage.make ~weights:[| 3.0; 1.0 |] firsts in
  Alcotest.(check (float 1e-12)) "weighted" 0.75 (Coverage.at cov 1)

let test_coverage_boundaries () =
  let cov = Coverage.make [| Some 5 |] in
  Alcotest.(check (float 1e-12)) "before" 0.0 (Coverage.at cov 5);
  Alcotest.(check (float 1e-12)) "after" 1.0 (Coverage.at cov 6)

let test_log_spaced () =
  let ks = Coverage.log_spaced ~max:1000 ~points:20 in
  Alcotest.(check int) "starts at 1" 1 ks.(0);
  Alcotest.(check int) "ends at max" 1000 ks.(Array.length ks - 1);
  for i = 0 to Array.length ks - 2 do
    Alcotest.(check bool) "strictly increasing" true (ks.(i) < ks.(i + 1))
  done

(* The old O(n)-per-query implementation of Coverage.at, kept as a
   reference oracle for the binary-search version. *)
let coverage_at_by_scan firsts ?weights k =
  let n = Array.length firsts in
  let weights = match weights with None -> Array.make n 1.0 | Some w -> w in
  let events = ref [] in
  Array.iteri
    (fun i d ->
      match d with Some v -> events := (v, weights.(i)) :: !events | None -> ())
    firsts;
  let events = Array.of_list !events in
  Array.sort (fun (a, _) (b, _) -> Stdlib.compare a b) events;
  let total = Dl_util.Stats.total weights in
  if total = 0.0 then 1.0
  else begin
    let acc = ref 0.0 in
    (try
       Array.iter
         (fun (idx, w) -> if idx < k then acc := !acc +. w else raise Exit)
         events
     with Exit -> ());
    !acc /. total
  end

let test_coverage_at_matches_scan () =
  let rng = Dl_util.Rng.create 77 in
  for _ = 1 to 50 do
    let n = 1 + Dl_util.Rng.int rng 40 in
    let firsts =
      Array.init n (fun _ ->
          if Dl_util.Rng.bool rng then Some (Dl_util.Rng.int rng 60) else None)
    in
    let weights =
      if Dl_util.Rng.bool rng then None
      else Some (Array.init n (fun _ -> Dl_util.Rng.float rng 3.0))
    in
    let cov = Coverage.make ?weights firsts in
    for k = 0 to 64 do
      let got = Coverage.at cov k in
      let want = coverage_at_by_scan firsts ?weights k in
      if got <> want then
        Alcotest.failf "at %d: binary search %.17g vs scan %.17g" k got want
    done
  done

let prop_coverage_at_matches_scan =
  QCheck.Test.make ~name:"Coverage.at = linear-scan oracle" ~count:300
    QCheck.(pair (list (option (int_range 0 100))) (int_range 0 120))
    (fun (firsts, k) ->
      let firsts = Array.of_list firsts in
      Coverage.at (Coverage.make firsts) k = coverage_at_by_scan firsts k)

let test_detections_in_order () =
  let cov = Coverage.make [| Some 4; Some 1; Some 9 |] in
  let evs = Coverage.detections_in_order cov in
  Alcotest.(check int) "3 events" 3 (Array.length evs);
  Alcotest.(check bool) "sorted by vector" true
    (let ks = Array.map fst evs in
     ks = [| 1; 4; 9 |])

(* --- Dictionary ------------------------------------------------------------------- *)

let test_dictionary_consistency () =
  let c = Benchmarks.c17 () in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let vectors = random_vectors c 24 in
  let dict = Dictionary.build c ~faults ~vectors in
  (* agrees with the single-vector oracle *)
  Array.iteri
    (fun fi f ->
      Array.iteri
        (fun vi v ->
          Alcotest.(check bool) "dict matches oracle"
            (Fault_sim.detects_fault c f v)
            (Dictionary.detects dict ~fault:fi ~vector:vi))
        vectors)
    faults

let test_dictionary_diagnosis () =
  let c = Benchmarks.c17 () in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let vectors = random_vectors c 24 in
  let dict = Dictionary.build c ~faults ~vectors in
  (* a fault's own signature must include it as a candidate *)
  for fi = 0 to Array.length faults - 1 do
    let failing = Dictionary.detecting_vectors dict fi in
    if failing <> [] then begin
      let passing =
        List.filter (fun v -> not (List.mem v failing)) (List.init 24 Fun.id)
      in
      let cands = Dictionary.candidates dict ~failing ~passing in
      Alcotest.(check bool) "self-candidate" true (List.mem fi cands)
    end
  done

let test_dictionary_compaction_preserves_coverage () =
  let c = Option.get (Benchmarks.by_name "mux3") in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let vectors = random_vectors c 64 in
  let dict = Dictionary.build c ~faults ~vectors in
  let subset = Dictionary.greedy_compaction dict in
  (* every fault detected by the full set is detected by the subset *)
  for fi = 0 to Array.length faults - 1 do
    let all = Dictionary.detecting_vectors dict fi in
    if all <> [] then
      Alcotest.(check bool) "covered by subset" true
        (List.exists (fun v -> List.mem v subset) all)
  done;
  Alcotest.(check bool) "subset smaller" true (List.length subset <= 64)

let test_dictionary_essential () =
  let c = Benchmarks.c17 () in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let vectors = random_vectors c 8 in
  let dict = Dictionary.build c ~faults ~vectors in
  List.iter
    (fun v ->
      Alcotest.(check bool) "essential vector detects something" true
        (Dictionary.detected_faults dict v <> []))
    (Dictionary.essential_vectors dict)

(* --- Detectability ---------------------------------------------------------- *)

let test_detectability_estimate () =
  let c = Benchmarks.c17 () in
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let d = Detectability.estimate ~seed:5 ~samples:256 c ~faults in
  let ps = Detectability.probabilities d in
  Alcotest.(check int) "one probability per fault" (Array.length faults)
    (Array.length ps);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "p in [0,1]" true (p >= 0.0 && p <= 1.0))
    ps;
  Alcotest.(check bool) "c17 faults are random-testable" true
    (Detectability.mean_detectability d > 0.0);
  (* The induced curve starts at zero, grows monotonically, and mirrors
     the escape probability exactly. *)
  Alcotest.(check (float 0.0)) "T(0) = 0" 0.0
    (Detectability.expected_coverage d 0);
  let prev = ref 0.0 in
  List.iter
    (fun k ->
      let v = Detectability.expected_coverage d k in
      Alcotest.(check bool)
        (Printf.sprintf "monotone at k=%d" k)
        true
        (v >= !prev -. 1e-12 && v <= 1.0);
      prev := v)
    [ 1; 2; 4; 8; 16; 32; 64; 128 ];
  Alcotest.(check (float 1e-12)) "escape = 1 - coverage"
    (1.0 -. Detectability.expected_coverage d 16)
    (Detectability.escape_probability d 16)

let test_detectability_hardest_and_length () =
  let d = Detectability.of_probabilities [| 0.9; 0.5; 0.01; 0.2 |] in
  let hardest = Detectability.hardest d 2 in
  Alcotest.(check (list int)) "two hardest faults" [ 2; 3 ]
    (List.sort compare (List.map fst hardest));
  (match Detectability.test_length_for d ~target:0.9 with
  | Some k ->
      Alcotest.(check bool) "reaches target" true
        (Detectability.expected_coverage d k >= 0.9);
      Alcotest.(check bool) "minimal" true
        (k = 0 || Detectability.expected_coverage d (k - 1) < 0.9)
  | None -> Alcotest.fail "0.9 must be reachable with all p > 0");
  let d0 = Detectability.of_probabilities [| 1.0; 0.0 |] in
  Alcotest.(check bool) "target above the testable fraction" true
    (Detectability.test_length_for d0 ~target:0.9 = None)

(* --- Transition faults ------------------------------------------------------- *)

let test_transition_run_matches_pair_oracle () =
  let c = Benchmarks.c17 () in
  let u = Transition.universe c in
  Alcotest.(check int) "both edges at every node" (2 * Circuit.node_count c)
    (Array.length u);
  let vectors = random_vectors c 40 in
  let r = Transition.run c ~faults:u ~vectors in
  Array.iteri
    (fun i f ->
      match r.Transition.first_detection.(i) with
      | Some k ->
          Alcotest.(check bool) "capture index in range" true
            (k >= 1 && k < Array.length vectors);
          Alcotest.(check bool) "reported pair detects" true
            (Transition.detects_pair c f ~v1:vectors.(k - 1) ~v2:vectors.(k));
          for j = 1 to k - 1 do
            if Transition.detects_pair c f ~v1:vectors.(j - 1) ~v2:vectors.(j)
            then
              Alcotest.failf "%s: pair %d detects before reported first %d"
                (Transition.to_string c f) j k
          done
      | None ->
          for j = 1 to Array.length vectors - 1 do
            if Transition.detects_pair c f ~v1:vectors.(j - 1) ~v2:vectors.(j)
            then
              Alcotest.failf "%s undetected but pair %d detects"
                (Transition.to_string c f) j
          done)
    u

let test_transition_launch_capture_reduction () =
  (* A slow-to-rise fault at [n] is detected by (v1, v2) iff v1 launches
     n = 0 and v2 detects n stuck-at-0 (dually for slow-to-fall) — checked
     against the ternary single-vector oracle, which is independent of the
     two-pattern machinery. *)
  let c = Benchmarks.c17 () in
  let vectors = random_vectors c 12 in
  Array.iter
    (fun (f : Transition.t) ->
      for j = 1 to Array.length vectors - 1 do
        let v1 = vectors.(j - 1) and v2 = vectors.(j) in
        let launch = (Dl_logic.Sim2.run_single c v1).(f.node) in
        let stuck =
          {
            Stuck_at.site = Stuck_at.Stem f.node;
            polarity =
              (match f.edge with
              | Transition.Rise -> Stuck_at.Sa0
              | Transition.Fall -> Stuck_at.Sa1);
          }
        in
        let expected =
          (match f.edge with
          | Transition.Rise -> not launch
          | Transition.Fall -> launch)
          && Fault_sim.detects_fault c stuck v2
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s pair %d" (Transition.to_string c f) j)
          expected
          (Transition.detects_pair c f ~v1 ~v2)
      done)
    (Transition.universe c)

(* --- qcheck ----------------------------------------------------------------------- *)

let prop_coverage_in_unit_range =
  QCheck.Test.make ~name:"coverage stays in [0,1]" ~count:200
    QCheck.(pair (list (option (int_range 0 100))) small_nat)
    (fun (firsts, k) ->
      let cov = Coverage.make (Array.of_list firsts) in
      let v = Coverage.at cov k in
      v >= 0.0 && v <= 1.0)

let () =
  Alcotest.run "dl_fault"
    [
      ( "stuck-at",
        [
          Alcotest.test_case "universe size" `Quick test_universe_size_c17;
          Alcotest.test_case "universe sorted" `Quick test_universe_sorted_unique;
          Alcotest.test_case "collapse c17" `Quick test_collapse_c17;
          Alcotest.test_case "class detection equivalence" `Quick
            test_collapse_detection_equivalent;
          Alcotest.test_case "checkpoints" `Quick test_checkpoints_subset;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "fault-sim",
        [
          Alcotest.test_case "ppsfp = oracle" `Slow test_ppsfp_matches_oracle;
          Alcotest.test_case "dropping consistent" `Quick test_ppsfp_drop_consistency;
          Alcotest.test_case "partial block" `Quick test_ppsfp_partial_block;
          Alcotest.test_case "detect callback" `Quick test_detection_callback;
          Alcotest.test_case "coverage" `Quick test_coverage_value;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "parallel = serial" `Slow test_parallel_matches_serial;
          Alcotest.test_case "pool reuse" `Quick test_parallel_pool_reuse;
          Alcotest.test_case "empty inputs" `Quick test_parallel_empty_inputs;
          Alcotest.test_case "degenerate shapes" `Quick
            test_parallel_degenerate_shapes;
          Alcotest.test_case "deterministic sharding" `Quick
            test_parallel_sharding_deterministic;
        ] );
      ( "detectability",
        [
          Alcotest.test_case "estimate bounds and curve" `Quick
            test_detectability_estimate;
          Alcotest.test_case "hardest and test length" `Quick
            test_detectability_hardest_and_length;
        ] );
      ( "transition",
        [
          Alcotest.test_case "run = pair oracle" `Quick
            test_transition_run_matches_pair_oracle;
          Alcotest.test_case "launch/capture reduction" `Quick
            test_transition_launch_capture_reduction;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "kernel = reference" `Slow test_kernel_matches_reference;
          Alcotest.test_case "tail blocks" `Quick
            test_kernel_matches_reference_tail_blocks;
          Alcotest.test_case "hot path allocation-free" `Quick
            test_kernel_hot_path_allocation_free;
          Alcotest.test_case "lowest_set_bit" `Quick test_lowest_set_bit;
        ] );
      ( "engines",
        [
          Alcotest.test_case "engines = reference" `Slow
            test_engines_match_reference;
          Alcotest.test_case "tail blocks (64/256 boundaries)" `Quick
            test_engines_tail_blocks;
          Alcotest.test_case "structural families" `Quick
            test_engines_on_families;
          Alcotest.test_case "parallel_with = run_with" `Slow
            test_parallel_with_matches_serial;
          Alcotest.test_case "stats counters" `Quick test_engine_stats;
          Alcotest.test_case "engine names" `Quick test_engine_names;
          Alcotest.test_case "wide path allocation-free" `Quick
            test_wide_hot_path_allocation_free;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "monotone" `Quick test_coverage_monotone;
          Alcotest.test_case "weighted" `Quick test_coverage_weighted;
          Alcotest.test_case "boundaries" `Quick test_coverage_boundaries;
          Alcotest.test_case "log spacing" `Quick test_log_spaced;
          Alcotest.test_case "at = old scan" `Quick test_coverage_at_matches_scan;
          Alcotest.test_case "detection staircase" `Quick test_detections_in_order;
        ] );
      ( "dictionary",
        [
          Alcotest.test_case "oracle consistency" `Quick test_dictionary_consistency;
          Alcotest.test_case "diagnosis" `Quick test_dictionary_diagnosis;
          Alcotest.test_case "compaction preserves coverage" `Quick
            test_dictionary_compaction_preserves_coverage;
          Alcotest.test_case "essential vectors" `Quick test_dictionary_essential;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_coverage_in_unit_range;
            prop_coverage_at_matches_scan;
            prop_parallel_equals_serial;
            prop_kernel_equals_reference;
            prop_engines_equal_reference;
          ] );
    ]
