open Dl_netlist
open Dl_logic

let rng = Dl_util.Rng.create 101

(* --- Ternary algebra ------------------------------------------------------- *)

let tern = Alcotest.testable (fun ppf v -> Format.pp_print_char ppf (Ternary.to_char v)) Ternary.equal

let test_ternary_inv () =
  Alcotest.check tern "inv 0" Ternary.V1 (Ternary.inv Ternary.V0);
  Alcotest.check tern "inv X" Ternary.VX (Ternary.inv Ternary.VX)

let test_ternary_dominance () =
  (* controlling values decide even against X *)
  Alcotest.check tern "0 and X" Ternary.V0 (Ternary.band Ternary.V0 Ternary.VX);
  Alcotest.check tern "1 or X" Ternary.V1 (Ternary.bor Ternary.V1 Ternary.VX);
  Alcotest.check tern "X and 1" Ternary.VX (Ternary.band Ternary.VX Ternary.V1);
  Alcotest.check tern "x xor 1" Ternary.VX (Ternary.bxor Ternary.VX Ternary.V1)

let test_ternary_consistency_with_bool () =
  (* on definite values, ternary ops agree with Gate.eval *)
  List.iter
    (fun kind ->
      for code = 0 to 3 do
        let a = code land 1 = 1 and b = code land 2 = 2 in
        let expected = Gate.eval kind [| a; b |] in
        let got = Ternary.eval kind [| Ternary.of_bool a; Ternary.of_bool b |] in
        Alcotest.check tern (Gate.to_string kind) (Ternary.of_bool expected) got
      done)
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

let test_ternary_chars () =
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun v -> Ternary.of_char (Ternary.to_char v) = Some v)
       [ Ternary.V0; Ternary.V1; Ternary.VX ])

(* --- Sim2 ------------------------------------------------------------------ *)

let test_sim2_c17_known_vector () =
  let c = Benchmarks.c17 () in
  (* all inputs 0: n10 = n11 = 1, n16 = NAND(0,1)=1, n19 = NAND(1,0)=1,
     n22 = NAND(1,1)=0, n23 = NAND(1,1)=0 *)
  let out = Sim2.output_bits c (Array.make 5 false) in
  Alcotest.(check (array bool)) "all-zero response" [| false; false |] out

let test_sim2_parallel_matches_single () =
  let c = Benchmarks.c432s_small () in
  let words = Sim2.random_words rng c in
  let values = Sim2.run c words in
  for bit = 0 to 63 do
    let v = Sim2.pattern_of_words c words bit in
    let single = Sim2.run_single c v in
    Array.iteri
      (fun id w ->
        let expect = Int64.logand (Int64.shift_right_logical w bit) 1L = 1L in
        if single.(id) <> expect then Alcotest.failf "node %d bit %d mismatch" id bit)
      values
  done

let test_sim2_pack_unpack () =
  let c = Benchmarks.c17 () in
  let patterns =
    Array.init 20 (fun _ -> Array.init 5 (fun _ -> Dl_util.Rng.bool rng))
  in
  let words = Sim2.words_of_patterns c patterns in
  Array.iteri
    (fun i p ->
      Alcotest.(check (array bool)) "roundtrip" p (Sim2.pattern_of_words c words i))
    patterns

(* --- Flat-kernel path ------------------------------------------------------- *)

let test_run_flat_matches_run () =
  List.iter
    (fun (name, make) ->
      let c = make () in
      let k = Kernel.of_circuit c in
      let buf = Kernel.create_words k in
      for _ = 1 to 10 do
        let words = Sim2.random_words rng c in
        let expect = Sim2.run c words in
        Sim2.load_words k buf words;
        Sim2.run_flat k buf;
        Array.iteri
          (fun id w ->
            if Bigarray.Array1.get buf id <> w then
              Alcotest.failf "%s: node %d differs from Sim2.run" name id)
          expect
      done)
    Benchmarks.all

let test_load_patterns_matches_pack () =
  let c = Benchmarks.c432s_small () in
  let k = Kernel.of_circuit c in
  let buf = Kernel.create_words k in
  let vectors =
    Array.init 150 (fun _ ->
        Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))
  in
  List.iter
    (fun (base, count) ->
      let expect =
        Sim2.words_of_patterns c (Array.sub vectors base count)
      in
      Sim2.load_patterns k buf vectors ~base ~count;
      Array.iteri
        (fun i pi ->
          if Bigarray.Array1.get buf pi <> expect.(i) then
            Alcotest.failf "base=%d count=%d: PI %d transpose mismatch" base count
              i)
        k.Kernel.inputs)
    [ (0, 64); (64, 64); (128, 22); (0, 1); (149, 1); (10, 63) ]

let test_load_patterns_clears_stale_bits () =
  (* a short block after a full one must not leak the previous block's
     high bits *)
  let c = Benchmarks.c17 () in
  let k = Kernel.of_circuit c in
  let buf = Kernel.create_words k in
  let ones = Array.init 64 (fun _ -> Array.make 5 true) in
  Sim2.load_patterns k buf ones ~base:0 ~count:64;
  let zeros = [| Array.make 5 false |] in
  Sim2.load_patterns k buf zeros ~base:0 ~count:1;
  Array.iter
    (fun pi ->
      Alcotest.(check bool) "stale bits cleared" true
        (Bigarray.Array1.get buf pi = 0L))
    k.Kernel.inputs

let test_run_flat_matches_sim3_definite () =
  let c = Generator.ripple_adder 8 in
  let k = Kernel.of_circuit c in
  let buf = Kernel.create_words k in
  for _ = 1 to 20 do
    let v = Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng) in
    Sim2.load_patterns k buf [| v |] ~base:0 ~count:1;
    Sim2.run_flat k buf;
    let r3 = Sim3.run c (Array.map Ternary.of_bool v) in
    Array.iteri
      (fun id t ->
        let flat = Int64.logand (Bigarray.Array1.get buf id) 1L = 1L in
        Alcotest.check tern "kernel agrees with sim3" t
          (Ternary.of_bool flat))
      r3
  done

(* Wide path: sub-word [w] of every node after run_flat4 is bit-identical
   to a run_flat pass over patterns 64w..64w+63 of the same block. *)
let test_run_flat4_matches_run_flat () =
  List.iter
    (fun (name, make) ->
      let c = make () in
      let k = Kernel.of_circuit c in
      let buf = Kernel.create_words k in
      let buf4 = Kernel.create_words4 k in
      let vectors =
        Array.init 256 (fun _ ->
            Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))
      in
      Sim2.load_patterns4 k buf4 vectors ~base:0 ~count:256;
      Sim2.run_flat4 k buf4;
      for w = 0 to 3 do
        Sim2.load_patterns k buf vectors ~base:(64 * w) ~count:64;
        Sim2.run_flat k buf;
        for id = 0 to k.Kernel.n - 1 do
          if
            Bigarray.Array1.get buf4 ((4 * id) + w)
            <> Bigarray.Array1.get buf id
          then Alcotest.failf "%s: node %d sub-word %d mismatch" name id w
        done
      done)
    Benchmarks.all

(* A ragged wide block (count not a multiple of 64) zero-fills the tail:
   covered sub-words match the narrow path, uncovered PI sub-words are 0. *)
let test_load_patterns4_ragged_tail () =
  let c = Benchmarks.c432s_small () in
  let k = Kernel.of_circuit c in
  let buf = Kernel.create_words k in
  let buf4 = Kernel.create_words4 k in
  let vectors =
    Array.init 150 (fun _ ->
        Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))
  in
  (* dirty the wide buffer first so stale bits would be caught *)
  Sim2.load_patterns4 k buf4
    (Array.map (fun v -> Array.map (fun _ -> true) v) vectors)
    ~base:0 ~count:150;
  Sim2.load_patterns4 k buf4 vectors ~base:0 ~count:100;
  Array.iteri
    (fun i pi ->
      (* sub-word 0: patterns 0..63; sub-word 1: the 36-pattern tail *)
      Sim2.load_patterns k buf vectors ~base:0 ~count:64;
      let w0 = Bigarray.Array1.get buf pi in
      Sim2.load_patterns k buf vectors ~base:64 ~count:36;
      let w1 = Bigarray.Array1.get buf pi in
      if Bigarray.Array1.get buf4 (4 * pi) <> w0 then
        Alcotest.failf "PI %d sub-word 0 mismatch" i;
      if Bigarray.Array1.get buf4 ((4 * pi) + 1) <> w1 then
        Alcotest.failf "PI %d sub-word 1 mismatch" i;
      for w = 2 to 3 do
        if Bigarray.Array1.get buf4 ((4 * pi) + w) <> 0L then
          Alcotest.failf "PI %d sub-word %d not zero-filled" i w
      done)
    k.Kernel.inputs

let test_load_patterns_rejects_bad_ranges () =
  let c = Benchmarks.c17 () in
  let k = Kernel.of_circuit c in
  let buf = Kernel.create_words k in
  let vectors = [| Array.make 5 false |] in
  let expect_invalid what f =
    Alcotest.(check bool) what true
      (try
         f ();
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid "count > 64" (fun () ->
      Sim2.load_patterns k buf vectors ~base:0 ~count:65);
  expect_invalid "slice out of range" (fun () ->
      Sim2.load_patterns k buf vectors ~base:0 ~count:2);
  expect_invalid "negative base" (fun () ->
      Sim2.load_patterns k buf vectors ~base:(-1) ~count:1);
  expect_invalid "wrong pattern width" (fun () ->
      Sim2.load_patterns k buf [| Array.make 4 false |] ~base:0 ~count:1)

(* --- Sim3 ------------------------------------------------------------------ *)

let test_sim3_definite_matches_sim2 () =
  let c = Generator.ripple_adder 8 in
  for _ = 1 to 50 do
    let v = Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng) in
    let v3 = Array.map Ternary.of_bool v in
    let r2 = Sim2.run_single c v in
    let r3 = Sim3.run c v3 in
    Array.iteri
      (fun id b ->
        Alcotest.check tern "agree" (Ternary.of_bool b) r3.(id))
      r2
  done

let test_sim3_x_propagation () =
  let c = Benchmarks.c17 () in
  (* all X in: all X out *)
  let r = Sim3.run c (Array.make 5 Ternary.VX) in
  Array.iter (fun o -> Alcotest.check tern "output X" Ternary.VX r.(o)) c.outputs

let test_sim3_partial_x () =
  (* AND with one 0 input stays 0 even with X elsewhere *)
  let b = Circuit.Builder.create ~title:"t" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b "o" Gate.And [ "a"; "b" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let r = Sim3.run c [| Ternary.V0; Ternary.VX |] in
  Alcotest.check tern "0 dominates" Ternary.V0 r.(Circuit.find c "o")

let test_sim3_fault_injection_stem () =
  let c = Benchmarks.c17 () in
  let n10 = Circuit.find c "n10" in
  let v = Array.make 5 Ternary.V0 in
  (* fault-free n10 = 1 with all-0 inputs; force stuck-0 *)
  let faulty = Sim3.run_with_fault c ~site:(Sim3.Stem n10) ~stuck:false v in
  Alcotest.check tern "forced stem" Ternary.V0 faulty.(n10)

let test_sim3_fault_injection_branch () =
  let c = Benchmarks.c17 () in
  let n22 = Circuit.find c "n22" in
  let v = Array.make 5 Ternary.V0 in
  (* inputs of n22 are both 1 under all-0; forcing pin 0 to 0 flips output *)
  let good = Sim3.run c v in
  let faulty =
    Sim3.run_with_fault c ~site:(Sim3.Branch { gate = n22; pin = 0 }) ~stuck:false v
  in
  Alcotest.check tern "good 0" Ternary.V0 good.(n22);
  Alcotest.check tern "faulty 1" Ternary.V1 faulty.(n22)

(* --- Event sim --------------------------------------------------------------- *)

let test_event_sim_matches_sim2 () =
  let c = Benchmarks.c432s_small () in
  let es = Event_sim.create c in
  for _ = 1 to 200 do
    let v = Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng) in
    let _ = Event_sim.set_inputs es v in
    let expected = Sim2.run_single c v in
    Array.iteri
      (fun id b ->
        if Event_sim.value es id <> b then Alcotest.failf "node %d mismatch" id)
      expected
  done

let test_event_sim_single_input () =
  let c = Benchmarks.c17 () in
  let es = Event_sim.create c in
  let _ = Event_sim.set_inputs es [| true; true; true; true; true |] in
  let evals_before = Event_sim.evaluations es in
  (* re-assert the same value: no events *)
  let n = Event_sim.set_input es 0 true in
  Alcotest.(check int) "no work for no change" 0 n;
  Alcotest.(check int) "eval count unchanged" evals_before (Event_sim.evaluations es)

let test_event_sim_activity_bounded () =
  let c = Generator.ripple_adder 16 in
  let es = Event_sim.create c in
  let v = Array.make (Circuit.input_count c) false in
  let _ = Event_sim.set_inputs es v in
  (* flipping one low-order input evaluates at most the whole circuit once *)
  let n = Event_sim.set_input es 0 true in
  Alcotest.(check bool) "bounded" true (n <= Circuit.node_count c)

(* --- qcheck: Sim3 X-propagation ------------------------------------------- *)

let random_case seed =
  let inputs = 4 + (seed mod 4) in
  let c =
    Generator.random ~seed ~inputs ~outputs:2
      ~profile:
        [ (Gate.Nand, 10); (Gate.Nor, 5); (Gate.Xor, 3); (Gate.Not, 3);
          (Gate.Buf, 1) ]
      ()
  in
  let rng = Dl_util.Rng.create (seed lxor 0x5DEECE66) in
  let pi =
    Array.init inputs (fun _ ->
        match Dl_util.Rng.int rng 3 with
        | 0 -> Ternary.V0
        | 1 -> Ternary.V1
        | _ -> Ternary.VX)
  in
  (c, rng, pi)

(* Refining one X input to a definite value never flips an already-
   determined node — X-propagation is monotone in the information order. *)
let prop_sim3_x_monotone =
  QCheck.Test.make ~name:"sim3 refinement never flips determined nodes"
    ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let c, _, pi = random_case seed in
      let before = Sim3.run c pi in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          if v = Ternary.VX then
            List.iter
              (fun bit ->
                let refined = Array.copy pi in
                refined.(i) <- bit;
                let after = Sim3.run c refined in
                Array.iteri
                  (fun id b ->
                    if b <> Ternary.VX && after.(id) <> b then ok := false)
                  before)
              [ Ternary.V0; Ternary.V1 ])
        pi;
      !ok)

(* A node Sim3 calls determined has that value under *every* completion of
   the X inputs (checked on sampled completions against Sim2). *)
let prop_sim3_determined_sound =
  QCheck.Test.make ~name:"sim3 determined nodes hold for all completions"
    ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let c, rng, pi = random_case seed in
      let tern = Sim3.run c pi in
      let ok = ref true in
      for _ = 1 to 8 do
        let completion =
          Array.map
            (fun v ->
              match Ternary.to_bool v with
              | Some b -> b
              | None -> Dl_util.Rng.bool rng)
            pi
        in
        let bin = Sim2.run_single c completion in
        Array.iteri
          (fun id v ->
            match Ternary.to_bool v with
            | Some b -> if b <> bin.(id) then ok := false
            | None -> ())
          tern
      done;
      !ok)

let () =
  Alcotest.run "dl_logic"
    [
      ( "ternary",
        [
          Alcotest.test_case "inversion" `Quick test_ternary_inv;
          Alcotest.test_case "dominance" `Quick test_ternary_dominance;
          Alcotest.test_case "agrees with bool" `Quick test_ternary_consistency_with_bool;
          Alcotest.test_case "char roundtrip" `Quick test_ternary_chars;
        ] );
      ( "sim2",
        [
          Alcotest.test_case "c17 known vector" `Quick test_sim2_c17_known_vector;
          Alcotest.test_case "parallel = single" `Quick test_sim2_parallel_matches_single;
          Alcotest.test_case "pack/unpack" `Quick test_sim2_pack_unpack;
        ] );
      ( "flat-kernel",
        [
          Alcotest.test_case "run_flat = run" `Quick test_run_flat_matches_run;
          Alcotest.test_case "load_patterns = pack" `Quick
            test_load_patterns_matches_pack;
          Alcotest.test_case "stale bits cleared" `Quick
            test_load_patterns_clears_stale_bits;
          Alcotest.test_case "matches sim3 on definite" `Quick
            test_run_flat_matches_sim3_definite;
          Alcotest.test_case "bad ranges rejected" `Quick
            test_load_patterns_rejects_bad_ranges;
          Alcotest.test_case "run_flat4 = run_flat per sub-word" `Quick
            test_run_flat4_matches_run_flat;
          Alcotest.test_case "load_patterns4 ragged tail" `Quick
            test_load_patterns4_ragged_tail;
        ] );
      ( "sim3",
        [
          Alcotest.test_case "definite matches sim2" `Quick test_sim3_definite_matches_sim2;
          Alcotest.test_case "X propagation" `Quick test_sim3_x_propagation;
          Alcotest.test_case "partial X dominance" `Quick test_sim3_partial_x;
          Alcotest.test_case "stem fault injection" `Quick test_sim3_fault_injection_stem;
          Alcotest.test_case "branch fault injection" `Quick test_sim3_fault_injection_branch;
        ] );
      ( "event-sim",
        [
          Alcotest.test_case "matches sim2" `Quick test_event_sim_matches_sim2;
          Alcotest.test_case "idempotent input" `Quick test_event_sim_single_input;
          Alcotest.test_case "activity bounded" `Quick test_event_sim_activity_bounded;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sim3_x_monotone; prop_sim3_determined_sound ] );
    ]
