(* VLSI-scale stress: a ~100k-gate "vlsi-flat" generator circuit pushed
   through levelization, the wide PPSFP kernel and a store roundtrip.

   Deliberately NOT part of `dune runtest` (it costs tens of seconds);
   `dune build @verify` runs it via the rule in test/dune.  Everything is
   asserted, so a hang or a blowup fails the alias, not just slows it. *)

module Circuit = Dl_netlist.Circuit
module Generator = Dl_netlist.Generator
module Stuck_at = Dl_fault.Stuck_at
module Fault_sim = Dl_fault.Fault_sim
module Rng = Dl_util.Rng

let gates = 100_000

let timed label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "%-28s %6.2f s\n%!" label (Unix.gettimeofday () -. t0);
  r

let () =
  let c =
    timed "generate vlsi-flat 100k" (fun () ->
        Generator.Family.build_by_name "vlsi-flat" ~seed:7 ~gates)
  in
  Circuit.validate c;
  Printf.printf "  %d nodes, %d gates, %d PIs, %d POs\n%!"
    (Circuit.node_count c) (Circuit.gate_count c) (Circuit.input_count c)
    (Circuit.output_count c);
  assert (Circuit.gate_count c >= gates);

  (* Kernel fault simulation over a sampled slice of the collapsed
     universe: full-universe PPSFP at this size is a benchmark, not a
     smoke test, but the kernel layout, scheduling and detection paths
     are exercised identically on a sample. *)
  let universe =
    timed "collapse stuck-at universe" (fun () ->
        Stuck_at.collapse c (Stuck_at.universe c))
  in
  Printf.printf "  %d collapsed faults\n%!" (Array.length universe);
  let rng = Rng.create 11 in
  let faults =
    Array.init 2_000 (fun _ -> universe.(Rng.int rng (Array.length universe)))
  in
  let n_pi = Circuit.input_count c in
  let vectors =
    Array.init 256 (fun _ -> Array.init n_pi (fun _ -> Rng.bool rng))
  in
  let r =
    timed "wide PPSFP, 2k faults x 256" (fun () ->
        Fault_sim.run_with ~engine:Fault_sim.Wide ~drop_detected:true c
          ~faults ~vectors)
  in
  let detected =
    Array.fold_left
      (fun acc d -> if d = None then acc else acc + 1)
      0 r.Fault_sim.first_detection
  in
  Printf.printf "  %d/%d sampled faults detected\n%!" detected
    (Array.length faults);
  assert (detected > 0);

  (* Multi-detect driver at the same scale: quota-1 bit-identity is the
     oracle's job on small cases; here we only prove it survives the size
     and agrees on the detected count. *)
  let nd =
    timed "run_ndet quota 4" (fun () ->
        Fault_sim.run_ndet ~engine:Fault_sim.Wide ~drop_after:4 c ~faults
          ~vectors)
  in
  let nd_detected =
    Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0
      nd.Fault_sim.counts
  in
  assert (nd_detected = detected);

  (* Store roundtrip of the circuit artifact at 100k-gate size: encode,
     persist, reload, decode, and check structural identity via the
     canonical .bench text. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dlproj-stress-%d" (Unix.getpid ()))
  in
  let store = Dl_store.Store.open_ dir in
  let codec = Dl_store.Artifact.circuit in
  let key =
    timed "store put 100k circuit" (fun () ->
        let bytes = Dl_store.Codec.to_bytes codec c in
        let key = Dl_store.Codec.content_key codec c in
        Dl_store.Store.put store ~key ~kind:"circuit" ~version:1 bytes;
        key)
  in
  let c' =
    timed "store load + decode" (fun () ->
        match Dl_store.Store.load store key with
        | None -> failwith "stress: artifact vanished"
        | Some bytes -> (
            match Dl_store.Codec.of_bytes codec bytes with
            | Ok c' -> c'
            | Error e ->
                failwith ("stress: " ^ Dl_store.Codec.error_to_string e)))
  in
  assert
    (Dl_netlist.Bench_format.to_string c = Dl_netlist.Bench_format.to_string c');
  (* Best-effort cleanup; the store is tiny (one object) but tidy up. *)
  Dl_store.Store.clear store;
  (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ());
  print_endline "stress: all assertions passed"
