(* Tests for the Dl_check subsystem itself: the harness, the shrinker, the
   repro format, and the mutation self-test that anchors the whole PR. *)

open Dl_check
module Circuit = Dl_netlist.Circuit

let tmp_dir suffix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dlcheck-test-%d-%s" (Unix.getpid ()) suffix)

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun e -> remove_tree (Filename.concat path e))
      (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_tmp_dir suffix f =
  let dir = tmp_dir suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then remove_tree dir)
    (fun () -> f dir)

(* --- harness ---------------------------------------------------------------- *)

(* Case checks only, tiny budget: at least one full case must run and pass. *)
let test_harness_case_smoke () =
  let cfg =
    Harness.config ~seed:3 ~seconds:0.3
      ~checks:[ "sim2-flat"; "sim3-binary"; "coverage-monotone" ] ()
  in
  let s = Harness.run cfg in
  Alcotest.(check bool) "passes" true (Harness.ok s);
  Alcotest.(check int) "no sweeps selected" 0 s.Harness.sweeps_run;
  Alcotest.(check bool) "at least one case" true (s.Harness.cases_run >= 1);
  Alcotest.(check int) "three checks per case"
    (3 * s.Harness.cases_run)
    s.Harness.case_checks_run

(* The equation sweeps are cheap and deterministic: all five run and pass. *)
let test_harness_sweep_smoke () =
  let cfg =
    Harness.config ~seed:11 ~seconds:0.1
      ~checks:
        [ "eq11-wb"; "eq9-theta"; "eq11-dl"; "yield-weights";
          "required-coverage" ]
      ()
  in
  let s = Harness.run cfg in
  Alcotest.(check bool) "passes" true (Harness.ok s);
  Alcotest.(check int) "all sweeps run" 5 s.Harness.sweeps_run;
  Alcotest.(check int) "no cases" 0 s.Harness.cases_run

let test_harness_unknown_check () =
  Alcotest.check_raises "unknown name rejected"
    (Invalid_argument
       (Printf.sprintf "unknown check %S (known: %s)" "no-such-check"
          (String.concat ", " (Oracle.names ()))))
    (fun () ->
      ignore (Harness.run (Harness.config ~checks:[ "no-such-check" ] ())))

let test_registry_is_consistent () =
  let names = Oracle.names () in
  Alcotest.(check int) "twenty-three checks" 23 (List.length names);
  List.iter
    (fun n ->
      match Oracle.find n with
      | Some o -> Alcotest.(check string) "find returns it" n o.Oracle.name
      | None -> Alcotest.failf "registered name %S not found" n)
    names;
  Alcotest.(check bool) "unknown is None" true (Oracle.find "nope" = None)

(* --- shrinker --------------------------------------------------------------- *)

(* An always-failing predicate must shrink to the smallest representable
   case: no vectors, no faults, and a circuit reduced to (near) its PIs. *)
let test_shrink_always_failing () =
  let case = Testcase.generate ~seed:21 ~gates:40 ~n_vectors:96 () in
  let fails _ = Some "always" in
  let shrunk, stats = Shrink.minimize ~fails case in
  Alcotest.(check bool) "still fails" true (fails shrunk <> None);
  Alcotest.(check int) "no vector left" 0
    (Array.length shrunk.Testcase.vectors);
  Alcotest.(check int) "no fault left" 0
    (Array.length shrunk.Testcase.faults);
  Alcotest.(check bool) "gates reduced" true
    (Circuit.gate_count shrunk.Testcase.circuit
    < Circuit.gate_count case.Testcase.circuit);
  Alcotest.(check int) "stats: before sizes" 96 stats.Shrink.vectors_before;
  Alcotest.(check int) "stats: after sizes" 0 stats.Shrink.vectors_after;
  Alcotest.(check bool) "stats: spent checks" true (stats.Shrink.checks > 0)

(* A predicate keyed to a property of the case ("at least k faults survive
   and some vector has an odd popcount") keeps the witness through every
   accepted reduction — the shrunk case must still satisfy it. *)
let test_shrink_preserves_predicate () =
  let case = Testcase.generate ~seed:8 ~gates:35 ~n_vectors:70 () in
  let odd v = Array.fold_left (fun n b -> if b then n + 1 else n) 0 v mod 2 = 1 in
  let fails (c : Testcase.t) =
    if Array.length c.faults >= 3 && Array.exists odd c.vectors then
      Some "witness"
    else None
  in
  Alcotest.(check bool) "original fails" true (fails case <> None);
  let shrunk, stats = Shrink.minimize ~fails case in
  Alcotest.(check bool) "shrunk still fails" true (fails shrunk <> None);
  Alcotest.(check int) "faults at the floor" 3
    (Array.length shrunk.Testcase.faults);
  Alcotest.(check int) "vectors at the floor" 1
    (Array.length shrunk.Testcase.vectors);
  Alcotest.(check bool) "monotone gate count" true
    (stats.Shrink.gates_after <= stats.Shrink.gates_before)

let test_shrink_respects_budget () =
  let case = Testcase.generate ~seed:5 ~gates:60 ~n_vectors:130 () in
  let calls = ref 0 in
  let fails _ =
    incr calls;
    Some "always"
  in
  let _, stats = Shrink.minimize ~max_checks:50 ~fails case in
  Alcotest.(check int) "stats agree with predicate calls" !calls
    stats.Shrink.checks;
  (* one in-flight candidate may finish after the budget trips *)
  Alcotest.(check bool) "budget respected" true (stats.Shrink.checks <= 51)

(* --- repro roundtrip -------------------------------------------------------- *)

let test_repro_roundtrip () =
  with_tmp_dir "roundtrip" (fun dir ->
      let case = Testcase.generate ~seed:42 ~gates:25 ~n_vectors:65 () in
      let path =
        Testcase.save_repro ~dir ~name:"rt" ~check:"sim2-flat"
          ~message:"synthetic message, with: punctuation" case
      in
      let r = Testcase.load_repro path in
      Alcotest.(check string) "check name" "sim2-flat" r.Testcase.check;
      Alcotest.(check string) "message" "synthetic message, with: punctuation"
        r.Testcase.message;
      let c = r.Testcase.case in
      Alcotest.(check int) "seed" case.Testcase.seed c.Testcase.seed;
      Alcotest.(check int) "gate count"
        (Circuit.gate_count case.Testcase.circuit)
        (Circuit.gate_count c.Testcase.circuit);
      Alcotest.(check bool) "vectors identical" true
        (case.Testcase.vectors = c.Testcase.vectors);
      Alcotest.(check int) "fault count"
        (Array.length case.Testcase.faults)
        (Array.length c.Testcase.faults);
      (* a healthy engine passes its own saved case: replay says so *)
      let name, verdict = Harness.replay r in
      Alcotest.(check string) "replayed check" "sim2-flat" name;
      Alcotest.(check bool) "no longer failing" true (verdict = None))

(* --- mutation self-test ----------------------------------------------------- *)

let test_mutation_self_test () =
  with_tmp_dir "selftest" (fun dir ->
      let reports, ok = Harness.self_test ~out_dir:dir ~seed:0 () in
      Alcotest.(check bool) "self-test verdict" true ok;
      Alcotest.(check int) "pristine + both mutants"
        (1 + List.length Mutant.all)
        (List.length reports);
      List.iter
        (fun (r : Harness.self_report) ->
          if r.Harness.mutant = "pristine" then
            Alcotest.(check bool) "pristine clean" false r.Harness.caught
          else begin
            Alcotest.(check bool)
              (r.Harness.mutant ^ " caught")
              true r.Harness.caught;
            Alcotest.(check bool)
              (r.Harness.mutant ^ " shrunk to <= 20 gates")
              true
              (r.Harness.shrunk_gates <= 20);
            (* the persisted repro replays to a still-failing verdict *)
            match r.Harness.repro_path with
            | None -> Alcotest.failf "%s: no repro written" r.Harness.mutant
            | Some p ->
                let _, verdict = Harness.replay (Testcase.load_repro p) in
                Alcotest.(check bool)
                  (r.Harness.mutant ^ " repro reproduces")
                  true (verdict <> None)
          end)
        reports)

(* --- qcheck: the oracles hold over random seeds ----------------------------- *)

let case_checks =
  List.filter_map
    (fun (o : Oracle.t) ->
      match o.Oracle.kind with
      | Oracle.Case f -> Some (o.Oracle.name, f)
      | Oracle.Sweep _ -> None)
    Oracle.all

let prop_case_oracles_pass =
  QCheck.Test.make ~name:"every case oracle passes on generated cases"
    ~count:20
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let case =
        Testcase.generate ~seed ~gates:(12 + (seed mod 30))
          ~n_vectors:(1 + (seed mod 70))
          ()
      in
      List.for_all
        (fun (name, f) ->
          match f case with
          | None -> true
          | Some m -> QCheck.Test.fail_reportf "%s: %s" name m)
        case_checks)

let () =
  Alcotest.run "dl_check"
    [
      ( "harness",
        [
          Alcotest.test_case "case-check smoke" `Quick test_harness_case_smoke;
          Alcotest.test_case "sweep smoke" `Quick test_harness_sweep_smoke;
          Alcotest.test_case "unknown check rejected" `Quick
            test_harness_unknown_check;
          Alcotest.test_case "registry consistent" `Quick
            test_registry_is_consistent;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "always-failing floor" `Quick
            test_shrink_always_failing;
          Alcotest.test_case "predicate preserved" `Quick
            test_shrink_preserves_predicate;
          Alcotest.test_case "check budget" `Quick test_shrink_respects_budget;
        ] );
      ( "repro",
        [ Alcotest.test_case "save/load/replay" `Quick test_repro_roundtrip ] );
      ( "self-test",
        [
          Alcotest.test_case "mutants caught and shrunk" `Quick
            test_mutation_self_test;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_case_oracles_pass ] );
    ]
