open Dl_netlist
open Dl_fault
open Dl_ndet

let rng = Dl_util.Rng.create 4242

let random_vectors c n =
  Array.init n (fun _ ->
      Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))

let universe c = Stuck_at.collapse c (Stuck_at.universe c)

(* --- run_ndet: n=1 equivalence with the dropping engines -------------------- *)

let test_n1_bit_identical () =
  List.iter
    (fun (name, c) ->
      let faults = universe c in
      let vectors = random_vectors c 300 in
      let baseline = Fault_sim.run ~drop_detected:true c ~faults ~vectors in
      List.iter
        (fun engine ->
          let events = ref [] in
          let nd =
            Fault_sim.run_ndet ~engine ~drop_after:1
              ~on_detect:(fun ~fault_index ~vector_index ->
                events := (fault_index, vector_index) :: !events)
              c ~faults ~vectors
          in
          let firsts = Fault_sim.ndet_first_detection nd in
          Array.iteri
            (fun i d ->
              Alcotest.(check (option int))
                (Printf.sprintf "%s/%s first_detection %d" name
                   (Fault_sim.engine_to_string engine)
                   i)
                baseline.first_detection.(i) d)
            firsts;
          (* counted events are exactly one per detected fault, at its
             first detection *)
          List.iter
            (fun (fi, vi) ->
              Alcotest.(check (option int)) "event = first" (Some vi)
                baseline.first_detection.(fi))
            !events;
          let detected =
            Array.fold_left
              (fun acc d -> if d <> None then acc + 1 else acc)
              0 baseline.first_detection
          in
          Alcotest.(check int) "one event per detected fault" detected
            (List.length !events))
        Fault_sim.engines)
    [ ("c17", Benchmarks.c17 ()); ("c432s", Benchmarks.c432s ()) ]

let test_ndet_counts_vs_nodrop_events () =
  (* counts at drop_after:n = min n (total detections), and the k-th
     detection indices match the full no-drop event stream *)
  let c = Benchmarks.c432s () in
  let faults = universe c in
  let vectors = random_vectors c 200 in
  let per_fault = Array.make (Array.length faults) [] in
  ignore
    (Fault_sim.run ~drop_detected:false
       ~on_detect:(fun ~fault_index ~vector_index ->
         per_fault.(fault_index) <- vector_index :: per_fault.(fault_index))
       c ~faults ~vectors);
  let per_fault = Array.map List.rev per_fault in
  List.iter
    (fun n ->
      let nd = Fault_sim.run_ndet ~drop_after:n c ~faults ~vectors in
      Array.iteri
        (fun i events ->
          let total = List.length events in
          Alcotest.(check int)
            (Printf.sprintf "count fault %d n %d" i n)
            (min n total) nd.Fault_sim.counts.(i);
          List.iteri
            (fun k v ->
              if k < n then
                Alcotest.(check int)
                  (Printf.sprintf "kth index fault %d k %d" i k)
                  v
                  nd.Fault_sim.detections.((i * n) + k))
            events)
        per_fault)
    [ 1; 2; 4; 8 ]

let test_ndet_engines_agree () =
  let c = Benchmarks.c880s () in
  let faults = universe c in
  let vectors = random_vectors c 300 in
  let reference = Fault_sim.run_ndet ~drop_after:4 c ~faults ~vectors in
  List.iter
    (fun engine ->
      let nd = Fault_sim.run_ndet ~engine ~drop_after:4 c ~faults ~vectors in
      Alcotest.(check (array int))
        (Fault_sim.engine_to_string engine ^ " counts")
        reference.Fault_sim.counts nd.Fault_sim.counts;
      Alcotest.(check (array int))
        (Fault_sim.engine_to_string engine ^ " detections")
        reference.Fault_sim.detections nd.Fault_sim.detections)
    Fault_sim.engines

let test_ndet_parallel_identical () =
  let c = Benchmarks.c432s () in
  let faults = universe c in
  let vectors = random_vectors c 256 in
  let serial = Fault_sim.run_ndet ~drop_after:4 c ~faults ~vectors in
  let par = Fault_sim.run_ndet ~domains:3 ~drop_after:4 c ~faults ~vectors in
  Alcotest.(check (array int)) "counts" serial.Fault_sim.counts
    par.Fault_sim.counts;
  Alcotest.(check (array int))
    "detections" serial.Fault_sim.detections par.Fault_sim.detections

let test_ndet_monotone_in_n () =
  (* the same vector set: counts at larger n dominate counts at smaller n,
     and the k-th detection indices for k <= n agree across n *)
  let c = Benchmarks.c880s () in
  let faults = universe c in
  let vectors = random_vectors c 200 in
  let profiles =
    List.map
      (fun n -> (n, Fault_sim.run_ndet ~drop_after:n c ~faults ~vectors))
      [ 1; 2; 4; 8 ]
  in
  let rec pairs = function
    | (n1, p1) :: ((n2, p2) :: _ as rest) ->
        ((n1, p1), (n2, p2)) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun ((n1, p1), (_n2, p2)) ->
      Array.iteri
        (fun i k1 ->
          Alcotest.(check bool)
            (Printf.sprintf "count dominance fault %d" i)
            true
            (p2.Fault_sim.counts.(i) >= k1);
          for k = 1 to k1 do
            Alcotest.(check int)
              (Printf.sprintf "kth agrees fault %d k %d" i k)
              p1.Fault_sim.detections.((i * n1) + k - 1)
              p2.Fault_sim.detections.((i * p2.Fault_sim.drop_after) + k - 1)
          done)
        p1.Fault_sim.counts)
    (pairs profiles)

let test_ndet_invalid_args () =
  let c = Benchmarks.c17 () in
  let faults = universe c in
  let vectors = random_vectors c 8 in
  Alcotest.check_raises "drop_after 0"
    (Invalid_argument "Fault_sim.run_ndet: drop_after must be >= 1") (fun () ->
      ignore (Fault_sim.run_ndet ~drop_after:0 c ~faults ~vectors));
  let nd = Fault_sim.run_ndet ~drop_after:2 c ~faults ~vectors in
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Fault_sim.ndet_kth_detection: k out of range")
    (fun () -> ignore (Fault_sim.ndet_kth_detection nd ~k:3))

(* --- Profile / Coverage with capped counts ---------------------------------- *)

let test_profile_coverage_n1_matches_single () =
  let c = Benchmarks.c432s () in
  let faults = universe c in
  let vectors = random_vectors c 256 in
  let nd = Fault_sim.run_ndet ~drop_after:8 c ~faults ~vectors in
  let single = Fault_sim.run ~drop_detected:true c ~faults ~vectors in
  let weights =
    Array.init (Array.length faults) (fun i -> 0.25 +. float_of_int (i mod 7))
  in
  List.iter
    (fun w ->
      let cov_n = Profile.coverage ?weights:w nd ~n:1 in
      let cov_1 = Coverage.make ?weights:w single.first_detection in
      Array.iter
        (fun k ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "T1(%d)" k)
            (Coverage.at cov_1 k) (Coverage.at cov_n k))
        (Coverage.log_spaced ~max:(Array.length vectors) ~points:40))
    [ None; Some weights ]

let test_profile_curves_monotone_in_n () =
  (* T_n(k) is pointwise non-increasing in n *)
  let c = Benchmarks.c880s () in
  let faults = universe c in
  let vectors = random_vectors c 300 in
  let nd = Fault_sim.run_ndet ~drop_after:8 c ~faults ~vectors in
  let ks = Coverage.log_spaced ~max:(Array.length vectors) ~points:30 in
  List.iter
    (fun (n_lo, n_hi) ->
      let lo = Profile.coverage nd ~n:n_lo in
      let hi = Profile.coverage nd ~n:n_hi in
      Array.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "T%d(%d) >= T%d(%d)" n_lo k n_hi k)
            true
            (Coverage.at lo k >= Coverage.at hi k))
        ks)
    [ (1, 2); (2, 4); (4, 8) ]

let test_profile_ties_at_same_vector () =
  (* several faults whose n-th detection lands on the same vector all step
     the curve at that vector *)
  let firsts = [| Some 3; Some 3; Some 3; None; Some 7 |] in
  let cov = Coverage.make firsts in
  Alcotest.(check (float 1e-12)) "before tie" 0.0 (Coverage.at cov 3);
  Alcotest.(check (float 1e-12)) "after tie" 0.6 (Coverage.at cov 4);
  Alcotest.(check (float 1e-12)) "final" 0.8 (Coverage.final cov)

let test_profile_n_exceeds_budget () =
  (* n larger than the vector budget: nobody reaches quota, coverage 0 *)
  let c = Benchmarks.c17 () in
  let faults = universe c in
  let vectors = random_vectors c 4 in
  let nd = Fault_sim.run_ndet ~drop_after:8 c ~faults ~vectors in
  Array.iter
    (fun k -> Alcotest.(check bool) "count <= budget" true (k <= 4))
    (Profile.counts nd);
  let cov = Profile.coverage nd ~n:8 in
  Alcotest.(check (float 1e-12)) "T8 final" 0.0 (Coverage.final cov);
  Alcotest.(check int) "none at 8" 0 (Profile.detected_at_least nd ~k:8)

(* --- Atpg_n ----------------------------------------------------------------- *)

let test_compact_preserves_quota () =
  let c = Benchmarks.c432s () in
  let faults = universe c in
  let vectors = random_vectors c 200 in
  List.iter
    (fun n ->
      let full = Fault_sim.run_ndet ~drop_after:n c ~faults ~vectors in
      let kept, counts = Atpg_n.compact_ndet c ~faults ~vectors ~n in
      Alcotest.(check bool) "shrinks or equal" true
        (Array.length kept <= Array.length vectors);
      let again = Fault_sim.run_ndet ~drop_after:n c ~faults ~vectors:kept in
      Array.iteri
        (fun i k ->
          Alcotest.(check int) (Printf.sprintf "reported count %d" i) k
            again.Fault_sim.counts.(i);
          Alcotest.(check bool)
            (Printf.sprintf "quota preserved fault %d" i)
            true
            (k >= full.Fault_sim.counts.(i)))
        counts)
    [ 1; 4 ]

let test_atpg_n_quotas () =
  let c = Benchmarks.c432s () in
  let faults = universe c in
  List.iter
    (fun n ->
      let r = Atpg_n.run ~seed:11 ~max_random:1024 ~n c ~faults in
      (* replay: the registered set really achieves the reported counts *)
      let nd =
        Fault_sim.run_ndet ~drop_after:n c ~faults ~vectors:r.Atpg_n.vectors
      in
      Alcotest.(check (array int)) "counts replay" nd.Fault_sim.counts
        r.Atpg_n.counts;
      Alcotest.(check int) "n recorded" n r.Atpg_n.stats.Atpg_n.n;
      (* every fault not proved untestable/aborted reaches its quota or is
         counted under_quota *)
      let short = ref 0 in
      Array.iter (fun k -> if k > 0 && k < n then incr short) r.Atpg_n.counts;
      Alcotest.(check int) "under_quota stat" !short
        r.Atpg_n.stats.Atpg_n.under_quota;
      let zero =
        Array.fold_left
          (fun acc k -> if k = 0 then acc + 1 else acc)
          0 r.Atpg_n.counts
      in
      Alcotest.(check bool) "zeros are untestable or aborted" true
        (zero
        <= Array.length r.Atpg_n.untestable_faults
           + Array.length r.Atpg_n.aborted_faults))
    [ 1; 2; 4 ]

let test_atpg_n_vectors_distinct_topup () =
  let c = Benchmarks.c880s () in
  let faults = universe c in
  let r = Atpg_n.run ~seed:3 ~max_random:512 ~n:4 c ~faults in
  Alcotest.(check int) "final = kept" r.Atpg_n.stats.Atpg_n.final_vectors
    (Array.length r.Atpg_n.vectors);
  Alcotest.(check bool) "some coverage" true
    (Array.exists (fun k -> k >= 4) r.Atpg_n.counts)

let () =
  Alcotest.run "ndet"
    [
      ( "run_ndet",
        [
          Alcotest.test_case "n1-bit-identical" `Quick test_n1_bit_identical;
          Alcotest.test_case "counts-vs-nodrop" `Quick
            test_ndet_counts_vs_nodrop_events;
          Alcotest.test_case "engines-agree" `Quick test_ndet_engines_agree;
          Alcotest.test_case "parallel-identical" `Quick
            test_ndet_parallel_identical;
          Alcotest.test_case "monotone-in-n" `Quick test_ndet_monotone_in_n;
          Alcotest.test_case "invalid-args" `Quick test_ndet_invalid_args;
        ] );
      ( "profile",
        [
          Alcotest.test_case "coverage-n1-matches-single" `Quick
            test_profile_coverage_n1_matches_single;
          Alcotest.test_case "curves-monotone-in-n" `Quick
            test_profile_curves_monotone_in_n;
          Alcotest.test_case "ties-at-same-vector" `Quick
            test_profile_ties_at_same_vector;
          Alcotest.test_case "n-exceeds-budget" `Quick
            test_profile_n_exceeds_budget;
        ] );
      ( "atpg_n",
        [
          Alcotest.test_case "compact-preserves-quota" `Quick
            test_compact_preserves_quota;
          Alcotest.test_case "atpg-n-quotas" `Quick test_atpg_n_quotas;
          Alcotest.test_case "distinct-topup" `Quick
            test_atpg_n_vectors_distinct_topup;
        ] );
    ]
