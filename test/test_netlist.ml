open Dl_netlist

(* --- Gate ----------------------------------------------------------------- *)

let test_gate_eval_truth_tables () =
  let check kind inputs expected =
    Alcotest.(check bool)
      (Gate.to_string kind)
      expected
      (Gate.eval kind (Array.of_list inputs))
  in
  check Gate.And [ true; true ] true;
  check Gate.And [ true; false ] false;
  check Gate.Nand [ true; true ] false;
  check Gate.Or [ false; false ] false;
  check Gate.Nor [ false; false ] true;
  check Gate.Xor [ true; false ] true;
  check Gate.Xor [ true; true ] false;
  check Gate.Xnor [ true; true ] true;
  check Gate.Not [ true ] false;
  check Gate.Buf [ true ] true

let test_gate_eval_word_matches_eval () =
  let rng = Dl_util.Rng.create 5 in
  List.iter
    (fun kind ->
      for arity = if kind = Gate.Buf || kind = Gate.Not then 1 else 1 to
          (if kind = Gate.Buf || kind = Gate.Not then 1 else 4) do
        let words = Array.init arity (fun _ -> Dl_util.Rng.word rng) in
        let wres = Gate.eval_word kind words in
        for bit = 0 to 63 do
          let bits =
            Array.map
              (fun w -> Int64.logand (Int64.shift_right_logical w bit) 1L = 1L)
              words
          in
          let expect = Gate.eval kind bits in
          let got = Int64.logand (Int64.shift_right_logical wres bit) 1L = 1L in
          if got <> expect then
            Alcotest.failf "%s arity %d bit %d mismatch" (Gate.to_string kind) arity bit
        done
      done)
    Gate.all_logic

let test_gate_of_string () =
  Alcotest.(check bool) "nand" true (Gate.of_string "nand" = Some Gate.Nand);
  Alcotest.(check bool) "BUFF alias" true (Gate.of_string "BUFF" = Some Gate.Buf);
  Alcotest.(check bool) "INV alias" true (Gate.of_string "inv" = Some Gate.Not);
  Alcotest.(check bool) "unknown" true (Gate.of_string "FOO" = None)

let test_gate_controlling () =
  Alcotest.(check bool) "and ctrl" true (Gate.controlling_value Gate.And = Some false);
  Alcotest.(check bool) "nor ctrl" true (Gate.controlling_value Gate.Nor = Some true);
  Alcotest.(check bool) "xor none" true (Gate.controlling_value Gate.Xor = None);
  Alcotest.(check bool) "nand resp" true (Gate.controlled_response Gate.Nand = true)

let test_gate_arity_violations () =
  Alcotest.check_raises "not with 2 inputs"
    (Invalid_argument "Gate.eval: NOT cannot take 2 inputs") (fun () ->
      ignore (Gate.eval_checked Gate.Not [| true; false |]));
  Alcotest.check_raises "word not with 2 inputs"
    (Invalid_argument "Gate.eval: NOT cannot take 2 inputs") (fun () ->
      ignore (Gate.eval_word_checked Gate.Not [| 0L; 1L |]))

let test_gate_opcodes () =
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Gate.to_string kind ^ " opcode roundtrip")
        true
        (Gate.kind_of_opcode (Gate.opcode kind) = kind);
      Alcotest.(check bool)
        (Gate.to_string kind ^ " op_inverts")
        (Gate.inversion kind)
        (Gate.op_inverts (Gate.opcode kind)))
    (Gate.Input :: Gate.all_logic);
  Alcotest.check_raises "bad opcode" (Invalid_argument "Gate.kind_of_opcode")
    (fun () -> ignore (Gate.kind_of_opcode 99))

(* --- Kernel lowering -------------------------------------------------------- *)

let check_kernel_structure c =
  let k = Kernel.of_circuit c in
  let n = Circuit.node_count c in
  Alcotest.(check int) "node count" n k.Kernel.n;
  Alcotest.(check int) "fanin_off length" (n + 1) (Array.length k.Kernel.fanin_off);
  Alcotest.(check int) "fanout_off length" (n + 1)
    (Array.length k.Kernel.fanout_off);
  Alcotest.(check int) "fanin_off start" 0 k.Kernel.fanin_off.(0);
  Alcotest.(check int) "fanin total" (Array.length k.Kernel.fanin)
    k.Kernel.fanin_off.(n);
  Array.iter
    (fun (nd : Circuit.node) ->
      let i = nd.id in
      (* CSR slice i reproduces the node's fanin in pin order *)
      let lo = k.Kernel.fanin_off.(i) and hi = k.Kernel.fanin_off.(i + 1) in
      Alcotest.(check (array int))
        (Printf.sprintf "fanin of node %d" i)
        nd.fanin
        (Array.sub k.Kernel.fanin lo (hi - lo));
      let flo = k.Kernel.fanout_off.(i) and fhi = k.Kernel.fanout_off.(i + 1) in
      Alcotest.(check (array int))
        (Printf.sprintf "fanout of node %d" i)
        c.Circuit.fanouts.(i)
        (Array.sub k.Kernel.fanout flo (fhi - flo));
      Alcotest.(check int)
        (Printf.sprintf "opcode of node %d" i)
        (Gate.opcode nd.kind) k.Kernel.opcode.(i);
      Alcotest.(check int)
        (Printf.sprintf "level of node %d" i)
        c.Circuit.levels.(i) k.Kernel.level.(i))
    c.Circuit.nodes;
  (* gate_order: every non-input exactly once, fanins before readers *)
  Alcotest.(check int) "gate_order size"
    (n - Circuit.input_count c)
    (Array.length k.Kernel.gate_order);
  let seen = Array.make n false in
  Array.iter (fun i -> seen.(i) <- true) k.Kernel.inputs;
  Array.iter
    (fun i ->
      Alcotest.(check bool) "not an input / not repeated" false seen.(i);
      Array.iter
        (fun src -> Alcotest.(check bool) "fanin already evaluated" true seen.(src))
        c.Circuit.nodes.(i).Circuit.fanin;
      seen.(i) <- true)
    k.Kernel.gate_order;
  (* level histogram CSR covers every node *)
  Alcotest.(check int) "n_levels" (Circuit.depth c + 1) k.Kernel.n_levels;
  Alcotest.(check int) "level_off total" n k.Kernel.level_off.(k.Kernel.n_levels);
  let hist = Array.make k.Kernel.n_levels 0 in
  Array.iter (fun l -> hist.(l) <- hist.(l) + 1) k.Kernel.level;
  for l = 0 to k.Kernel.n_levels - 1 do
    Alcotest.(check int)
      (Printf.sprintf "level %d population" l)
      hist.(l)
      (k.Kernel.level_off.(l + 1) - k.Kernel.level_off.(l))
  done

let test_kernel_structure () =
  List.iter
    (fun (_, make) -> check_kernel_structure (make ()))
    Benchmarks.all

(* FFR partition invariants, on every benchmark circuit: stems are exactly
   the nodes with fanout count <> 1 or a PO flag, stems root themselves,
   interior nodes inherit their unique reader's stem, and the dense index
   is consistent with the ascending stem list. *)
let test_kernel_ffr_invariants () =
  List.iter
    (fun (name, make) ->
      let c = make () in
      let k = Kernel.of_circuit c in
      let n = k.Kernel.n in
      Alcotest.(check int)
        (name ^ ": stem list length")
        k.Kernel.n_ffrs
        (Array.length k.Kernel.ffr_stems);
      Array.iteri
        (fun si s ->
          if si > 0 && s <= k.Kernel.ffr_stems.(si - 1) then
            Alcotest.failf "%s: ffr_stems not strictly ascending at %d" name si;
          Alcotest.(check int)
            (Printf.sprintf "%s: stem %d roots itself" name s)
            s k.Kernel.ffr_stem.(s))
        k.Kernel.ffr_stems;
      let is_output = Array.make n false in
      Array.iter (fun o -> is_output.(o) <- true) k.Kernel.outputs;
      for i = 0 to n - 1 do
        let fan = k.Kernel.fanout_off.(i + 1) - k.Kernel.fanout_off.(i) in
        let should_be_stem = fan <> 1 || is_output.(i) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: node %d stem-ness" name i)
          should_be_stem
          (k.Kernel.ffr_stem.(i) = i);
        if not should_be_stem then
          (* interior node: the single reader is in the same region *)
          Alcotest.(check int)
            (Printf.sprintf "%s: node %d inherits reader's stem" name i)
            k.Kernel.ffr_stem.(k.Kernel.fanout.(k.Kernel.fanout_off.(i)))
            k.Kernel.ffr_stem.(i);
        (* dense index maps back to the node's stem *)
        let si = k.Kernel.ffr_index.(i) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: node %d index in range" name i)
          true
          (si >= 0 && si < k.Kernel.n_ffrs);
        Alcotest.(check int)
          (Printf.sprintf "%s: node %d index consistent" name i)
          k.Kernel.ffr_stem.(i)
          k.Kernel.ffr_stems.(si)
      done)
    Benchmarks.all

let test_kernel_rejects_malformed_arity () =
  (* of_circuit re-validates arity so the unchecked eval paths stay safe
     even if a Circuit.t was forged around Builder.finalize. *)
  let c = Benchmarks.c17 () in
  let k = Kernel.of_circuit c in
  Alcotest.(check bool) "c17 lowers" true (k.Kernel.n = Circuit.node_count c);
  Alcotest.check_raises "eval_node on a PI"
    (Invalid_argument "Kernel.eval_node: node has no fanin") (fun () ->
      Kernel.eval_node k (Kernel.create_words k) c.Circuit.inputs.(0));
  Alcotest.check_raises "eval_node out of range"
    (Invalid_argument "Kernel.eval_node: id out of range") (fun () ->
      Kernel.eval_node k (Kernel.create_words k) k.Kernel.n);
  Alcotest.check_raises "short buffer"
    (Invalid_argument "Kernel.run_into: values buffer shorter than node count")
    (fun () -> Kernel.run_into k (Kernel.alloc 1))

let test_kernel_eval_node_matches_gate () =
  let c = Benchmarks.c432s () in
  let k = Kernel.of_circuit c in
  let buf = Kernel.create_words k in
  let rng = Dl_util.Rng.create 31 in
  for i = 0 to k.Kernel.n - 1 do
    Bigarray.Array1.set buf i (Dl_util.Rng.word rng)
  done;
  Array.iter
    (fun id ->
      let nd = c.Circuit.nodes.(id) in
      let expect =
        Gate.eval_word nd.kind
          (Array.map (fun src -> Bigarray.Array1.get buf src) nd.fanin)
      in
      Kernel.eval_node k buf id;
      if Bigarray.Array1.get buf id <> expect then
        Alcotest.failf "node %d (%s): kernel eval differs from Gate.eval_word" id
          (Gate.to_string nd.kind))
    k.Kernel.gate_order

(* --- Circuit -------------------------------------------------------------- *)

let build_c17 () = Benchmarks.c17 ()

let test_circuit_counts () =
  let c = build_c17 () in
  Alcotest.(check int) "nodes" 11 (Circuit.node_count c);
  Alcotest.(check int) "inputs" 5 (Circuit.input_count c);
  Alcotest.(check int) "outputs" 2 (Circuit.output_count c);
  Alcotest.(check int) "gates" 6 (Circuit.gate_count c);
  Alcotest.(check int) "depth" 3 (Circuit.depth c)

let test_circuit_find () =
  let c = build_c17 () in
  let id = Circuit.find c "n10" in
  Alcotest.(check string) "roundtrip" "n10" (Circuit.name c id);
  Alcotest.(check bool) "missing" true (Circuit.find_opt c "nope" = None)

let test_circuit_fanout_consistency () =
  let c = build_c17 () in
  (* every fanin edge appears exactly once in the fanout lists *)
  Array.iter
    (fun (nd : Circuit.node) ->
      Array.iter
        (fun src ->
          let count =
            Array.fold_left
              (fun acc dst -> if dst = nd.id then acc + 1 else acc)
              0 c.fanouts.(src)
          in
          Alcotest.(check bool) "fanout edge present" true (count >= 1))
        nd.fanin)
    c.nodes

let test_circuit_levels_monotone () =
  let c = Benchmarks.c432s () in
  Array.iter
    (fun (nd : Circuit.node) ->
      Array.iter
        (fun src ->
          Alcotest.(check bool) "level strictly increases" true
            (c.levels.(src) < c.levels.(nd.id)))
        nd.fanin)
    c.nodes

let test_builder_duplicate_rejected () =
  let b = Circuit.Builder.create ~title:"dup" in
  Circuit.Builder.add_input b "a";
  Alcotest.(check bool) "raises" true
    (try
       Circuit.Builder.add_input b "a";
       false
     with Circuit.Malformed _ -> true)

let test_builder_cycle_rejected () =
  let b = Circuit.Builder.create ~title:"cyc" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b "x" Gate.And [ "a"; "y" ];
  Circuit.Builder.add_gate b "y" Gate.And [ "a"; "x" ];
  Circuit.Builder.add_output b "y";
  Alcotest.(check bool) "cycle detected" true
    (try
       ignore (Circuit.Builder.finalize b);
       false
     with Circuit.Malformed _ -> true)

let test_builder_dangling_rejected () =
  let b = Circuit.Builder.create ~title:"dangle" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b "x" Gate.Not [ "ghost" ];
  Circuit.Builder.add_output b "x";
  Alcotest.(check bool) "dangling detected" true
    (try
       ignore (Circuit.Builder.finalize b);
       false
     with Circuit.Malformed _ -> true)

let test_line_count () =
  let c = build_c17 () in
  (* 11 stems + 12 gate pins *)
  Alcotest.(check int) "lines" 23 (Circuit.line_count c)

(* --- Bench format ---------------------------------------------------------- *)

let test_bench_roundtrip () =
  List.iter
    (fun (name, make) ->
      let c = make () in
      let c' = Bench_format.parse_string ~title:c.Circuit.title (Bench_format.to_string c) in
      Alcotest.(check int) (name ^ " nodes") (Circuit.node_count c) (Circuit.node_count c');
      Alcotest.(check int) (name ^ " inputs") (Circuit.input_count c) (Circuit.input_count c');
      Alcotest.(check int) (name ^ " outputs") (Circuit.output_count c) (Circuit.output_count c');
      Alcotest.(check int) (name ^ " depth") (Circuit.depth c) (Circuit.depth c');
      (* behavioural equivalence on random vectors *)
      let rng = Dl_util.Rng.create 3 in
      for _ = 1 to 20 do
        let v = Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng) in
        Alcotest.(check (array bool))
          (name ^ " response")
          (Dl_logic.Sim2.output_bits c v)
          (Dl_logic.Sim2.output_bits c' v)
      done)
    Benchmarks.all

let test_bench_parse_errors () =
  let expect_error text =
    Alcotest.(check bool) "parse error" true
      (try
         ignore (Bench_format.parse_string text);
         false
       with Bench_format.Parse_error _ -> true)
  in
  expect_error "INPUT(a\n";
  expect_error "x = FROB(a)\n";
  expect_error "x = NAND()\n";
  expect_error "WIBBLE(a)\n"

let test_bench_comments_and_case () =
  let c =
    Bench_format.parse_string
      "# a comment\ninput(a)\nINPUT(b)\noutput(o)\no = nand(a, b) # trailing\n"
  in
  Alcotest.(check int) "nodes" 3 (Circuit.node_count c)

(* --- Generators ------------------------------------------------------------- *)

let test_ripple_adder_function () =
  let c = Generator.ripple_adder 4 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      List.iter
        (fun cin ->
          let v =
            Array.init (Circuit.input_count c) (fun i ->
                let nm = Circuit.name c c.Circuit.inputs.(i) in
                if nm = "cin" then cin
                else
                  let which = nm.[0] and bit = int_of_string (String.sub nm 1 1) in
                  let value = if which = 'a' then a else b in
                  value lsr bit land 1 = 1)
          in
          let out = Dl_logic.Sim2.output_bits c v in
          (* outputs: s0..s3, cout in declaration order *)
          let total = a + b + if cin then 1 else 0 in
          Array.iteri
            (fun i o ->
              let nm = Circuit.name c c.Circuit.outputs.(i) in
              let expected =
                if nm = "cout" then total lsr 4 land 1 = 1
                else total lsr int_of_string (String.sub nm 1 1) land 1 = 1
              in
              Alcotest.(check bool) (Printf.sprintf "a=%d b=%d %s" a b nm) expected o)
            out)
        [ false; true ]
    done
  done

let test_parity_tree_function () =
  let c = Generator.parity_tree 8 in
  let rng = Dl_util.Rng.create 9 in
  for _ = 1 to 100 do
    let v = Array.init 8 (fun _ -> Dl_util.Rng.bool rng) in
    let expected = Array.fold_left (fun acc b -> if b then not acc else acc) false v in
    Alcotest.(check bool) "parity" expected (Dl_logic.Sim2.output_bits c v).(0)
  done

let test_comparator_function () =
  let c = Generator.equality_comparator 4 in
  let rng = Dl_util.Rng.create 17 in
  for _ = 1 to 100 do
    let xs = Array.init 4 (fun _ -> Dl_util.Rng.bool rng) in
    let ys = Array.init 4 (fun _ -> Dl_util.Rng.bool rng) in
    let v =
      Array.init (Circuit.input_count c) (fun i ->
          let nm = Circuit.name c c.Circuit.inputs.(i) in
          let bit = int_of_string (String.sub nm 1 1) in
          if nm.[0] = 'x' then xs.(bit) else ys.(bit))
    in
    Alcotest.(check bool) "equality" (xs = ys) (Dl_logic.Sim2.output_bits c v).(0)
  done

let test_mux_function () =
  let c = Generator.multiplexer 2 in
  for code = 0 to 3 do
    for data = 0 to 15 do
      let v =
        Array.init (Circuit.input_count c) (fun i ->
            let nm = Circuit.name c c.Circuit.inputs.(i) in
            if String.length nm >= 3 && String.sub nm 0 3 = "sel" then
              code lsr int_of_string (String.sub nm 3 1) land 1 = 1
            else data lsr int_of_string (String.sub nm 1 1) land 1 = 1)
      in
      Alcotest.(check bool)
        (Printf.sprintf "mux sel=%d" code)
        (data lsr code land 1 = 1)
        (Dl_logic.Sim2.output_bits c v).(0)
    done
  done

let test_decoder_function () =
  let c = Generator.decoder 3 in
  for code = 0 to 7 do
    let v = Array.init 3 (fun i -> code lsr i land 1 = 1) in
    let out = Dl_logic.Sim2.output_bits c v in
    Array.iteri
      (fun i o ->
        let nm = Circuit.name c c.Circuit.outputs.(i) in
        let line = int_of_string (String.sub nm 1 (String.length nm - 1)) in
        Alcotest.(check bool) "one-hot" (line = code) o)
      out
  done

let test_random_generator_valid () =
  for seed = 1 to 5 do
    let c =
      Generator.random ~seed ~inputs:8 ~outputs:3
        ~profile:[ (Gate.Nand, 20); (Gate.Not, 5); (Gate.Xor, 4) ]
        ()
    in
    Circuit.validate c;
    Alcotest.(check int) "outputs" 3 (Circuit.output_count c)
  done

let test_priority_controller_interface () =
  let c = Generator.priority_controller ~slices:9 () in
  Circuit.validate c;
  Alcotest.(check int) "36 inputs" 36 (Circuit.input_count c);
  Alcotest.(check int) "7 outputs" 7 (Circuit.output_count c);
  Alcotest.(check bool) "c432-scale" true (Circuit.gate_count c > 100)

(* --- Transform ---------------------------------------------------------------- *)

let test_decompose_wide_gates () =
  let b = Circuit.Builder.create ~title:"wide" in
  for i = 0 to 8 do
    Circuit.Builder.add_input b (Printf.sprintf "i%d" i)
  done;
  let names = List.init 9 (Printf.sprintf "i%d") in
  Circuit.Builder.add_gate b "w_nand" Gate.Nand names;
  Circuit.Builder.add_gate b "w_xor" Gate.Xor names;
  Circuit.Builder.add_gate b "w_nor" Gate.Nor names;
  Circuit.Builder.add_output b "w_nand";
  Circuit.Builder.add_output b "w_xor";
  Circuit.Builder.add_output b "w_nor";
  let c = Circuit.Builder.finalize b in
  Alcotest.(check bool) "not mappable" false (Transform.is_cell_mappable c);
  let c' = Transform.decompose_for_cells c in
  Alcotest.(check bool) "mappable after" true (Transform.is_cell_mappable c');
  (* behaviour preserved *)
  let rng = Dl_util.Rng.create 23 in
  for _ = 1 to 200 do
    let v = Array.init 9 (fun _ -> Dl_util.Rng.bool rng) in
    Alcotest.(check (array bool)) "equivalent" (Dl_logic.Sim2.output_bits c v)
      (Dl_logic.Sim2.output_bits c' v)
  done

let test_decompose_identity_when_mappable () =
  let c = Benchmarks.c17 () in
  let c' = Transform.decompose_for_cells c in
  Alcotest.(check int) "same size" (Circuit.node_count c) (Circuit.node_count c')

(* --- generator error paths ------------------------------------------------ *)

let test_generator_input_in_profile_rejected () =
  Alcotest.check_raises "Input kind in profile"
    (Invalid_argument
       "Generator.random: Input is not a gate kind; remove it from the \
        profile") (fun () ->
      ignore
        (Generator.random ~seed:1 ~inputs:3 ~outputs:1
           ~profile:[ (Gate.Input, 2); (Gate.Nand, 4) ]
           ()));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Generator.random: negative count") (fun () ->
      ignore
        (Generator.random ~seed:1 ~inputs:3 ~outputs:1
           ~profile:[ (Gate.Nand, -1) ]
           ()))

let test_reduction_degenerate_widths () =
  (* Zero-width trees are diagnosed with the tree's own name... *)
  Alcotest.check_raises "parity_tree 0"
    (Invalid_argument "Generator.par: cannot reduce zero inputs") (fun () ->
      ignore (Generator.parity_tree 0));
  Alcotest.check_raises "parity_tree negative"
    (Invalid_argument "Generator.par: negative width -3") (fun () ->
      ignore (Generator.parity_tree (-3)));
  (* ...while a 1-wide tree degenerates to a pass-through. *)
  let c = Generator.parity_tree 1 in
  Circuit.validate c;
  Alcotest.(check bool) "parity of one bit" true
    ((Dl_logic.Sim2.output_bits c [| true |]).(0));
  let cmp = Generator.equality_comparator 1 in
  Circuit.validate cmp;
  Alcotest.(check bool) "x = y" true
    ((Dl_logic.Sim2.output_bits cmp [| true; true |]).(0));
  Alcotest.(check bool) "x <> y" false
    ((Dl_logic.Sim2.output_bits cmp [| true; false |]).(0))

let test_array_multiplier_width_guard () =
  Alcotest.check_raises "array_multiplier 1"
    (Invalid_argument "Generator.array_multiplier: need 1 < n <= 8") (fun () ->
      ignore (Generator.array_multiplier 1));
  Alcotest.check_raises "array_multiplier 9"
    (Invalid_argument "Generator.array_multiplier: need 1 < n <= 8") (fun () ->
      ignore (Generator.array_multiplier 9))

(* --- shrinker hooks -------------------------------------------------------- *)

(* i0 -> inv -> buf -> out, plus a side NAND kept alive by its own output. *)
let surgery_circuit () =
  let b = Circuit.Builder.create ~title:"surgery" in
  Circuit.Builder.add_input b "i0";
  Circuit.Builder.add_input b "i1";
  Circuit.Builder.add_gate b "inv" Gate.Not [ "i0" ];
  Circuit.Builder.add_gate b "buf" Gate.Buf [ "inv" ];
  Circuit.Builder.add_gate b "side" Gate.Nand [ "i0"; "i1" ];
  Circuit.Builder.add_output b "buf";
  Circuit.Builder.add_output b "side";
  Circuit.Builder.finalize b

let test_eliminate_node () =
  let c = surgery_circuit () in
  let id = Circuit.find c "inv" in
  let c', map = Transform.eliminate_node c id in
  Circuit.validate c';
  Alcotest.(check int) "one gate fewer" (Circuit.gate_count c - 1)
    (Circuit.gate_count c');
  Alcotest.(check bool) "eliminated node unmapped" true (map.(id) = None);
  (* Survivors map by name; inputs survive by construction. *)
  Array.iter
    (fun old_id ->
      if old_id <> id then
        match map.(old_id) with
        | Some new_id ->
            Alcotest.(check string) "name preserved" (Circuit.name c old_id)
              (Circuit.name c' new_id)
        | None -> Alcotest.failf "node %s lost" (Circuit.name c old_id))
    (Array.init (Circuit.node_count c) Fun.id);
  (* The victim's readers now read its first fanin: buf computes i0. *)
  Alcotest.(check bool) "buf now follows i0" true
    ((Dl_logic.Sim2.output_bits c' [| true; false |]).(0));
  Alcotest.check_raises "eliminating a PI"
    (Invalid_argument "Transform.eliminate_node: \"i0\" is a primary input")
    (fun () -> ignore (Transform.eliminate_node c (Circuit.find c "i0")));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Transform.eliminate_node: node id 99 out of range")
    (fun () -> ignore (Transform.eliminate_node c 99))

let test_eliminate_output_node () =
  (* Eliminating a node that drives a PO redirects the output to the
     node's first fanin rather than leaving a dangling output. *)
  let c = surgery_circuit () in
  let c', map = Transform.eliminate_node c (Circuit.find c "buf") in
  Circuit.validate c';
  Alcotest.(check int) "still two outputs" 2 (Circuit.output_count c');
  Alcotest.(check bool) "buf gone" true (map.(Circuit.find c "buf") = None);
  (* "inv" now drives the first output directly. *)
  Alcotest.(check bool) "output follows inv" false
    ((Dl_logic.Sim2.output_bits c' [| true; true |]).(0))

let test_prune_dead () =
  let b = Circuit.Builder.create ~title:"deadwood" in
  Circuit.Builder.add_input b "i0";
  Circuit.Builder.add_input b "i1";
  Circuit.Builder.add_gate b "live" Gate.And [ "i0"; "i1" ];
  Circuit.Builder.add_gate b "dead1" Gate.Nor [ "i0"; "i1" ];
  Circuit.Builder.add_gate b "dead2" Gate.Not [ "dead1" ];
  Circuit.Builder.add_output b "live";
  let c = Circuit.Builder.finalize b in
  let c', map = Transform.prune_dead c in
  Circuit.validate c';
  Alcotest.(check int) "dead cone removed" 1 (Circuit.gate_count c');
  Alcotest.(check bool) "dead1 unmapped" true
    (map.(Circuit.find c "dead1") = None);
  Alcotest.(check bool) "dead2 unmapped" true
    (map.(Circuit.find c "dead2") = None);
  Alcotest.(check bool) "inputs kept" true
    (Circuit.input_count c' = 2 && map.(Circuit.find c "i0") <> None);
  (* Function on the surviving outputs is untouched. *)
  let rng = Dl_util.Rng.create 3 in
  for _ = 1 to 50 do
    let v = Array.init 2 (fun _ -> Dl_util.Rng.bool rng) in
    Alcotest.(check (array bool)) "function preserved"
      (Dl_logic.Sim2.output_bits c v)
      (Dl_logic.Sim2.output_bits c' v)
  done;
  (* Idempotent on an already-live circuit. *)
  let c'', _ = Transform.prune_dead c' in
  Alcotest.(check int) "fixpoint" (Circuit.node_count c')
    (Circuit.node_count c'')

(* --- qcheck ---------------------------------------------------------------------- *)

let prop_generator_deterministic =
  QCheck.Test.make ~name:"random generator deterministic per seed" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let make () =
        Generator.random ~seed ~inputs:6 ~outputs:2
          ~profile:[ (Gate.Nand, 10); (Gate.Xor, 3) ]
          ()
      in
      let a = make () and b = make () in
      Bench_format.to_string a = Bench_format.to_string b)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"bench roundtrip on random circuits" ~count:25
    QCheck.(int_range 1 500)
    (fun seed ->
      let c =
        Generator.random ~seed ~inputs:5 ~outputs:2
          ~profile:[ (Gate.Nor, 8); (Gate.Not, 3); (Gate.And, 4) ]
          ()
      in
      let c' = Bench_format.parse_string (Bench_format.to_string c) in
      let rng = Dl_util.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 10 do
        let v = Array.init 5 (fun _ -> Dl_util.Rng.bool rng) in
        if Dl_logic.Sim2.output_bits c v <> Dl_logic.Sim2.output_bits c' v then
          ok := false
      done;
      !ok)

(* --- Generator.Family ------------------------------------------------------ *)

let test_family_registry () =
  let names = Generator.Family.names () in
  Alcotest.(check bool) "at least 6 classes" true (List.length names >= 6);
  List.iter
    (fun n ->
      match Generator.Family.by_name n with
      | Some f ->
          Alcotest.(check string) "registered under its own name" n
            f.Generator.Family.name
      | None -> Alcotest.failf "class %s not resolvable" n)
    names;
  Alcotest.(check bool) "unknown class is None" true
    (Generator.Family.by_name "no-such-family" = None);
  (match Generator.Family.build_by_name "no-such-family" ~seed:1 ~gates:20 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown class should raise Invalid_argument");
  match Generator.Family.build_by_name "mixed" ~seed:1 ~gates:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gates < 2 should raise Invalid_argument"

let test_family_builds_valid_and_deterministic () =
  List.iter
    (fun (f : Generator.Family.t) ->
      List.iter
        (fun gates ->
          let a = Generator.Family.build f ~seed:3 ~gates in
          Circuit.validate a;
          Alcotest.(check bool)
            (f.Generator.Family.name ^ " has outputs")
            true
            (Circuit.output_count a >= 1);
          Alcotest.(check bool)
            (f.Generator.Family.name ^ " at least requested gates")
            true
            (Circuit.gate_count a >= gates);
          let b = Generator.Family.build f ~seed:3 ~gates in
          Alcotest.(check string)
            (f.Generator.Family.name ^ " deterministic per seed")
            (Bench_format.to_string a) (Bench_format.to_string b);
          let c = Generator.Family.build f ~seed:4 ~gates in
          Alcotest.(check bool)
            (f.Generator.Family.name ^ " seed matters")
            false
            (Bench_format.to_string a = Bench_format.to_string c))
        [ 12; 60 ])
    Generator.Family.all

let test_family_xor_heavy_is_xor_rich () =
  let c = Generator.Family.build_by_name "xor-heavy" ~seed:9 ~gates:120 in
  let mix = Circuit.gate_mix c in
  let count k = Option.value ~default:0 (List.assoc_opt k mix) in
  let xorish = count Gate.Xor + count Gate.Xnor in
  Alcotest.(check bool) "at least 30% XOR/XNOR" true
    (float_of_int xorish >= 0.3 *. float_of_int (Circuit.gate_count c))

let test_family_simulates () =
  (* Each family's output is a live circuit, not just a well-formed one:
     two-valued simulation runs, and the outputs are not constant over a
     random vector sample (single-bit sensitization would be too strict
     for the deep NAND chains of "deep-narrow"). *)
  let rng = Dl_util.Rng.create 17 in
  List.iter
    (fun (f : Generator.Family.t) ->
      let c = Generator.Family.build f ~seed:5 ~gates:40 in
      let n = Circuit.input_count c in
      let sample () =
        Dl_logic.Sim2.output_bits c
          (Array.init n (fun _ -> Dl_util.Rng.bool rng))
      in
      let base = sample () in
      let differs = ref false in
      for _ = 1 to 256 do
        if sample () <> base then differs := true
      done;
      Alcotest.(check bool)
        (f.Generator.Family.name ^ " outputs vary across vectors")
        true !differs)
    Generator.Family.all

(* --- ISCAS-85 style reconstructions (c499s, c880s) ------------------------ *)

(* Evaluate a circuit with the named inputs set to true and every other
   input false; returns the output bit for a named output. *)
let outputs_for c high =
  let v =
    Array.init (Circuit.input_count c) (fun i ->
        List.mem (Circuit.name c c.Circuit.inputs.(i)) high)
  in
  Dl_logic.Sim2.output_bits c v

let out_bit c out name =
  let rec find i =
    if i = Array.length c.Circuit.outputs then
      Alcotest.failf "no output named %s" name
    else if Circuit.name c c.Circuit.outputs.(i) = name then out.(i)
    else find (i + 1)
  in
  find 0

let test_c499s_interface () =
  let c = Benchmarks.c499s () in
  Alcotest.(check int) "c499s inputs" 41 (Circuit.input_count c);
  Alcotest.(check int) "c499s outputs" 32 (Array.length c.Circuit.outputs);
  Alcotest.(check int) "c499s nodes" 121 (Array.length c.Circuit.nodes)

let test_c880s_interface () =
  let c = Benchmarks.c880s () in
  Alcotest.(check int) "c880s inputs" 60 (Circuit.input_count c);
  Alcotest.(check int) "c880s outputs" 26 (Array.length c.Circuit.outputs);
  Alcotest.(check int) "c880s nodes" 271 (Array.length c.Circuit.nodes)

(* Single-error correction: on the all-zero codeword, flipping any one
   input (data bit, check bit, or the shared [r] line) must decode back to
   all-zero data.  A double data error is beyond SEC and must surface. *)
let test_c499s_correction () =
  let c = Benchmarks.c499s () in
  let all_zero out = not (Array.exists Fun.id out) in
  Alcotest.(check bool) "clean zero word" true (all_zero (outputs_for c []));
  for i = 0 to Circuit.input_count c - 1 do
    let nm = Circuit.name c c.Circuit.inputs.(i) in
    if not (all_zero (outputs_for c [ nm ])) then
      Alcotest.failf "single error on %s was not corrected" nm
  done;
  Alcotest.(check bool)
    "double error detected (not silently corrected)" false
    (all_zero (outputs_for c [ "id1"; "id5" ]))

let test_c880s_alu_add () =
  let c = Benchmarks.c880s () in
  let bits prefix value =
    List.filter_map
      (fun i ->
        if value lsr i land 1 = 1 then Some (Printf.sprintf "%s%d" prefix i)
        else None)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let mask_all = bits "mask" 255 in
  List.iter
    (fun (a, b, cin) ->
      let high =
        bits "a" a @ bits "b" b @ mask_all @ if cin then [ "cin" ] else []
      in
      let out = outputs_for c high in
      let total = a + b + if cin then 1 else 0 in
      let y =
        List.fold_left
          (fun acc i ->
            acc lor ((if out_bit c out (Printf.sprintf "y%d" i) then 1 else 0)
                     lsl i))
          0
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]
      in
      Alcotest.(check int) (Printf.sprintf "sum %d+%d" a b) (total land 255) y;
      Alcotest.(check bool)
        (Printf.sprintf "cout %d+%d" a b)
        (total > 255) (out_bit c out "cout");
      Alcotest.(check bool)
        (Printf.sprintf "zero flag %d+%d" a b)
        (total land 255 = 0)
        (out_bit c out "zero"))
    [ (0, 0, false); (1, 2, false); (255, 1, false); (170, 85, true);
      (200, 100, true); (255, 255, true) ]

let test_c880s_alu_logic_and_priority () =
  let c = Benchmarks.c880s () in
  let bits prefix value =
    List.filter_map
      (fun i ->
        if value lsr i land 1 = 1 then Some (Printf.sprintf "%s%d" prefix i)
        else None)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  (* op1,op0 = 0,1: bitwise AND of the selected operands *)
  let out =
    outputs_for c (bits "a" 0b11001100 @ bits "b" 0b10101010
                   @ bits "mask" 255 @ [ "op0" ])
  in
  let y =
    List.fold_left
      (fun acc i ->
        acc lor ((if out_bit c out (Printf.sprintf "y%d" i) then 1 else 0)
                 lsl i))
      0
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check int) "AND mode" (0b11001100 land 0b10101010) y;
  (* priority encoder: highest set request line wins *)
  let prio out =
    (if out_bit c out "prio2" then 4 else 0)
    + (if out_bit c out "prio1" then 2 else 0)
    + if out_bit c out "prio0" then 1 else 0
  in
  let out3 = outputs_for c [ "pr3" ] in
  Alcotest.(check bool) "valid" true (out_bit c out3 "valid");
  Alcotest.(check int) "pr3 alone" 3 (prio out3);
  let out63 = outputs_for c [ "pr6"; "pr3" ] in
  Alcotest.(check int) "pr6 beats pr3" 6 (prio out63);
  let out_none = outputs_for c [] in
  Alcotest.(check bool) "no request: invalid" false (out_bit c out_none "valid")

let test_c1355s_interface () =
  let c = Benchmarks.c1355s () in
  Alcotest.(check int) "c1355s inputs" 41 (Circuit.input_count c);
  Alcotest.(check int) "c1355s outputs" 32 (Array.length c.Circuit.outputs);
  Alcotest.(check int) "c1355s nodes" 577 (Array.length c.Circuit.nodes);
  (* the XOR expansion must leave a NAND-dominated netlist (the point of
     c1355 vs c499 in the ISCAS-85 suite) *)
  let nands =
    Array.fold_left
      (fun acc (nd : Circuit.node) ->
        if nd.kind = Gate.Nand then acc + 1 else acc)
      0 c.Circuit.nodes
  in
  Alcotest.(check bool)
    (Printf.sprintf "NAND-dominated (%d NANDs)" nands)
    true
    (nands * 2 > Array.length c.Circuit.nodes)

let test_c1355s_equals_c499s () =
  (* ISCAS-85 c1355 is functionally equivalent to c499; the
     reconstructions must be too.  Same input names in the same order, so
     vectors carry over by index. *)
  let a = Benchmarks.c499s () in
  let b = Benchmarks.c1355s () in
  let name_of c id = Circuit.name c id in
  Alcotest.(check (array string))
    "same input interface"
    (Array.map (name_of a) a.Circuit.inputs)
    (Array.map (name_of b) b.Circuit.inputs);
  Alcotest.(check (array string))
    "same output interface"
    (Array.map (name_of a) a.Circuit.outputs)
    (Array.map (name_of b) b.Circuit.outputs);
  let rng = Dl_util.Rng.create 1355 in
  for _ = 1 to 64 do
    let v =
      Array.init (Circuit.input_count a) (fun _ -> Dl_util.Rng.bool rng)
    in
    Alcotest.(check (array bool))
      "c1355s = c499s" (Dl_logic.Sim2.output_bits a v)
      (Dl_logic.Sim2.output_bits b v)
  done

let test_c1908s_interface () =
  let c = Benchmarks.c1908s () in
  Alcotest.(check int) "c1908s inputs" 33 (Circuit.input_count c);
  Alcotest.(check int) "c1908s outputs" 25 (Array.length c.Circuit.outputs);
  Alcotest.(check int) "c1908s nodes" 420 (Array.length c.Circuit.nodes)

let test_c1908s_secded () =
  let c = Benchmarks.c1908s () in
  let data_zero out =
    not
      (List.exists
         (fun i -> out_bit c out (Printf.sprintf "od%d" i))
         (List.init 16 Fun.id))
  in
  (* clean zero word: no error, quiet *)
  let out = outputs_for c [ "en" ] in
  Alcotest.(check bool) "clean data" true (data_zero out);
  Alcotest.(check bool) "clean quiet" true (out_bit c out "quiet");
  Alcotest.(check bool) "clean err" false (out_bit c out "err");
  (* any single data-bit error is corrected and flagged *)
  for k = 0 to 15 do
    let out = outputs_for c [ Printf.sprintf "id%d" k; "en" ] in
    if not (data_zero out) then
      Alcotest.failf "single error on id%d not corrected" k;
    Alcotest.(check bool) "single err flag" true (out_bit c out "err");
    Alcotest.(check bool) "single derr flag" false (out_bit c out "derr")
  done;
  (* correction is gated: with en low the flip passes through *)
  let out = outputs_for c [ "id3" ] in
  Alcotest.(check bool) "uncorrected without en" true (out_bit c out "od3");
  (* the inject bus (under sel0) exercises the same correction path *)
  let out = outputs_for c [ "inj5"; "sel0"; "en" ] in
  Alcotest.(check bool) "injected error corrected" true (data_zero out);
  Alcotest.(check bool) "injected err flag" true (out_bit c out "err");
  (* double data error: detected as uncorrectable, not silently fixed *)
  let out = outputs_for c [ "id2"; "id9"; "en" ] in
  Alcotest.(check bool) "double derr flag" true (out_bit c out "derr");
  Alcotest.(check bool) "double err flag" false (out_bit c out "err");
  (* a check-bit flip gives a power-of-two syndrome, which matches no
     codeword: the data bus must come through untouched *)
  for j = 0 to 4 do
    let out = outputs_for c [ Printf.sprintf "ic%d" j; "en" ] in
    if not (data_zero out) then
      Alcotest.failf "check-bit flip ic%d miscorrected data" j
  done

let test_c2670s_interface () =
  let c = Benchmarks.c2670s () in
  Alcotest.(check int) "c2670s inputs" 233 (Circuit.input_count c);
  Alcotest.(check int) "c2670s outputs" 140 (Array.length c.Circuit.outputs);
  Alcotest.(check int) "c2670s nodes" 1106 (Array.length c.Circuit.nodes);
  (* the XOR expansion must leave a NAND-dominated netlist, like the
     NAND-level ISCAS original *)
  let nands =
    Array.fold_left
      (fun acc (nd : Circuit.node) ->
        if nd.kind = Gate.Nand then acc + 1 else acc)
      0 c.Circuit.nodes
  in
  Alcotest.(check bool)
    (Printf.sprintf "NAND-dominated (%d NANDs)" nands)
    true
    (nands * 2 > Array.length c.Circuit.nodes)

let test_c2670s_alu () =
  let c = Benchmarks.c2670s () in
  let bits prefix width value =
    List.filter_map
      (fun i ->
        if value lsr i land 1 = 1 then Some (Printf.sprintf "%s%d" prefix i)
        else None)
      (List.init width Fun.id)
  in
  let word out prefix width =
    List.fold_left
      (fun acc i ->
        acc
        lor ((if out_bit c out (Printf.sprintf "%s%d" prefix i) then 1 else 0)
             lsl i))
      0 (List.init width Fun.id)
  in
  (* adder: s = a + b + cin over 12 bits, with carry-out and zero flag *)
  List.iter
    (fun (a, b, cin) ->
      let high = bits "a" 12 a @ bits "b" 12 b @ if cin then [ "cin" ] else [] in
      let out = outputs_for c high in
      let total = a + b + if cin then 1 else 0 in
      Alcotest.(check int)
        (Printf.sprintf "sum %d+%d" a b)
        (total land 0xfff) (word out "s" 12);
      Alcotest.(check bool)
        (Printf.sprintf "cout %d+%d" a b)
        (total > 0xfff) (out_bit c out "cout");
      Alcotest.(check bool)
        (Printf.sprintf "zero %d+%d" a b)
        (total land 0xfff = 0)
        (out_bit c out "zero"))
    [ (0, 0, false); (1, 2, false); (4095, 1, false); (2730, 1365, true);
      (4095, 4095, true) ]
  ;
  (* comparator of the sum against e, gated by cmp_en *)
  let cmp a e =
    let out = outputs_for c (bits "a" 12 a @ bits "e" 12 e @ [ "cmp_en" ]) in
    ( out_bit c out "eq", out_bit c out "gt", out_bit c out "lt" )
  in
  Alcotest.(check (triple bool bool bool)) "100 = 100" (true, false, false)
    (cmp 100 100);
  Alcotest.(check (triple bool bool bool)) "200 > 100" (false, true, false)
    (cmp 200 100);
  Alcotest.(check (triple bool bool bool)) "100 < 200" (false, false, true)
    (cmp 100 200);
  let ungated = outputs_for c (bits "a" 12 7 @ bits "e" 12 7) in
  Alcotest.(check bool) "eq gated off without cmp_en" false
    (out_bit c ungated "eq")

let test_c2670s_masks_and_control () =
  let c = Benchmarks.c2670s () in
  let bits prefix width value =
    List.filter_map
      (fun i ->
        if value lsr i land 1 = 1 then Some (Printf.sprintf "%s%d" prefix i)
        else None)
      (List.init width Fun.id)
  in
  (* mask arrays: g = m xor k bitwise; h rides on the even g bits *)
  let out = outputs_for c [ "m3"; "k3"; "m7"; "k9"; "p0"; "p3"; "m6" ] in
  Alcotest.(check bool) "g3 = m3 xor k3 (both high)" false
    (out_bit c out "g3");
  Alcotest.(check bool) "g7 = m7" true (out_bit c out "g7");
  Alcotest.(check bool) "g9 = k9" true (out_bit c out "g9");
  Alcotest.(check bool) "h0 = p0 (g0 low)" true (out_bit c out "h0");
  Alcotest.(check bool) "h3 = p3 xor g6" false (out_bit c out "h3");
  (* control decoder keyed into the slice parities: with the g bus all
     zero, par_t mirrors the decoded ctl value and nothing else *)
  List.iter
    (fun t ->
      let out = outputs_for c (bits "ctl" 3 t) in
      List.iter
        (fun j ->
          Alcotest.(check bool)
            (Printf.sprintf "par%d under ctl=%d" j t)
            (j = t)
            (out_bit c out (Printf.sprintf "par%d" j)))
        (List.init 8 Fun.id);
      Alcotest.(check bool)
        (Printf.sprintf "parall under ctl=%d" t)
        true
        (out_bit c out "parall"))
    [ 0; 3; 5; 7 ];
  (* equality bank *)
  let out = outputs_for c (bits "q" 16 0xbeef @ bits "r" 16 0xbeef) in
  Alcotest.(check bool) "qeq_all on equal buses" true
    (out_bit c out "qeq_all");
  let out = outputs_for c (bits "q" 16 0xbeef @ bits "r" 16 0xbee7) in
  Alcotest.(check bool) "qeq3 sees the differing bit" false
    (out_bit c out "qeq3");
  Alcotest.(check bool) "qeq_all off on differing buses" false
    (out_bit c out "qeq_all");
  (* flags *)
  Alcotest.(check bool) "valid under ctl1" true
    (out_bit c (outputs_for c [ "ctl1" ]) "valid");
  Alcotest.(check bool) "idle: not valid" false
    (out_bit c (outputs_for c []) "valid")

let c3540s_bits prefix value =
  List.filter_map
    (fun i ->
      if value lsr i land 1 = 1 then Some (Printf.sprintf "%s%d" prefix i)
      else None)
    (List.init 8 Fun.id)

let c3540s_word c out prefix =
  List.fold_left
    (fun acc i ->
      acc
      lor ((if out_bit c out (Printf.sprintf "%s%d" prefix i) then 1 else 0)
           lsl i))
    0
    (List.init 8 Fun.id)

let test_c3540s_interface () =
  let c = Benchmarks.c3540s () in
  Alcotest.(check int) "c3540s inputs" 50 (Circuit.input_count c);
  Alcotest.(check int) "c3540s outputs" 22 (Array.length c.Circuit.outputs);
  Alcotest.(check int) "c3540s nodes" 348 (Array.length c.Circuit.nodes)

(* Binary add (op = 000, bcd = 0), the three logic modes, and the
   operand-select muxes.  All op/sel/mode pins default low, so the add
   path needs only the operand, mask and cin pins. *)
let test_c3540s_alu () =
  let c = Benchmarks.c3540s () in
  let bits = c3540s_bits in
  let mask_all = bits "mask" 255 in
  List.iter
    (fun (a, b, cin) ->
      let high =
        bits "a" a @ bits "b" b @ mask_all @ if cin then [ "cin" ] else []
      in
      let out = outputs_for c high in
      let total = a + b + if cin then 1 else 0 in
      Alcotest.(check int)
        (Printf.sprintf "sum %d+%d" a b)
        (total land 255)
        (c3540s_word c out "y");
      Alcotest.(check bool)
        (Printf.sprintf "cout %d+%d" a b)
        (total > 255) (out_bit c out "cout");
      Alcotest.(check bool)
        (Printf.sprintf "zero %d+%d" a b)
        (total land 255 = 0)
        (out_bit c out "zero");
      Alcotest.(check bool)
        (Printf.sprintf "sign %d+%d" a b)
        (total land 128 <> 0)
        (out_bit c out "sign"))
    [ (0, 0, false); (3, 4, false); (255, 1, false); (170, 85, true);
      (200, 100, true); (255, 255, true) ];
  (* masking confines the result bus *)
  let out = outputs_for c (bits "a" 0xff @ bits "mask" 0x0f) in
  Alcotest.(check int) "mask 0x0f" 0x0f (c3540s_word c out "y");
  (* signed overflow: 0x7f + 1 flips the sign without a carry out *)
  let out = outputs_for c (bits "a" 0x7f @ bits "b" 0x01 @ mask_all) in
  Alcotest.(check bool) "ovf on 0x7f+1" true (out_bit c out "ovf");
  Alcotest.(check bool) "no cout on 0x7f+1" false (out_bit c out "cout");
  (* logic modes: 01 AND, 10 OR, 11 XOR *)
  let logic op_pins f =
    let out =
      outputs_for c
        (bits "a" 0b11001100 @ bits "b" 0b10101010 @ mask_all @ op_pins)
    in
    Alcotest.(check int)
      (String.concat "," op_pins)
      (f 0b11001100 0b10101010) (c3540s_word c out "y")
  in
  logic [ "op0" ] ( land );
  logic [ "op1" ] ( lor );
  logic [ "op0"; "op1" ] ( lxor );
  (* operand selection: sel0 routes b into x, sel1 routes c into w *)
  let out =
    outputs_for c
      (bits "b" 33 @ bits "c" 66 @ mask_all @ [ "sel0"; "sel1" ])
  in
  Alcotest.(check int) "sel: b+c" 99 (c3540s_word c out "y")

(* The BCD decimal-adjust stage and the shifter lane (op2 = 1). *)
let test_c3540s_bcd_and_shift () =
  let c = Benchmarks.c3540s () in
  let bits = c3540s_bits in
  let mask_all = bits "mask" 255 in
  (* one-digit BCD sums: a + b in [0, 19] must read back as packed BCD *)
  List.iter
    (fun (a, b) ->
      let total = a + b in
      let expect = (total / 10 * 16) + (total mod 10) in
      let out = outputs_for c (bits "a" a @ bits "b" b @ mask_all @ [ "bcd" ]) in
      Alcotest.(check int)
        (Printf.sprintf "bcd %d+%d" a b)
        expect
        (c3540s_word c out "y"))
    [ (0, 0); (5, 4); (9, 0); (11, 0); (9, 9); (7, 6); (8, 8) ];
  (* bcd low leaves the binary sum alone *)
  let out = outputs_for c (bits "a" 11 @ mask_all) in
  Alcotest.(check int) "binary 11+0" 11 (c3540s_word c out "y");
  (* shifter: dir = 0 shifts left, dir = 1 shifts right, cin is the fill;
     shen = 0 passes x through untouched *)
  let shift pins a expect label =
    let out = outputs_for c (bits "a" a @ mask_all @ ("op2" :: pins)) in
    Alcotest.(check int) label expect (c3540s_word c out "y")
  in
  shift [ "shen" ] 0b01011010 0b10110100 "shift left";
  shift [ "shen"; "cin" ] 0b01011010 0b10110101 "shift left, fill";
  shift [ "shen"; "dir" ] 0b01011010 0b00101101 "shift right";
  shift [ "shen"; "dir"; "cin" ] 0b01011010 0b10101101 "shift right, fill";
  shift [] 0b01011010 0b01011010 "shift disabled"

(* Comparator against the c bus, the 5-line priority encoder, and the
   enable-gated condition outputs. *)
let test_c3540s_compare_and_priority () =
  let c = Benchmarks.c3540s () in
  let bits = c3540s_bits in
  let compare_at a cv =
    let out = outputs_for c (bits "a" a @ bits "c" cv) in
    (out_bit c out "eq", out_bit c out "gt")
  in
  Alcotest.(check (pair bool bool)) "5 vs 5" (true, false) (compare_at 5 5);
  Alcotest.(check (pair bool bool)) "9 vs 3" (false, true) (compare_at 9 3);
  Alcotest.(check (pair bool bool)) "3 vs 9" (false, false) (compare_at 3 9);
  Alcotest.(check (pair bool bool)) "200 vs 199" (false, true)
    (compare_at 200 199);
  (* priority encoder: highest of pr3..pr0 encodes on pri1/pri0; pr4
     preempts with code 0; no request drops valid *)
  let prio pins =
    let out = outputs_for c pins in
    ( out_bit c out "valid",
      (if out_bit c out "pri1" then 2 else 0)
      + if out_bit c out "pri0" then 1 else 0 )
  in
  Alcotest.(check (pair bool int)) "pr3" (true, 3) (prio [ "pr3" ]);
  Alcotest.(check (pair bool int)) "pr2|pr0" (true, 2) (prio [ "pr2"; "pr0" ]);
  Alcotest.(check (pair bool int)) "pr1" (true, 1) (prio [ "pr1" ]);
  Alcotest.(check (pair bool int)) "pr4 preempts pr3" (true, 0)
    (prio [ "pr4"; "pr3" ]);
  Alcotest.(check (pair bool int)) "idle" (false, 0) (prio []);
  (* condition outputs fire only with their enable *)
  let out = outputs_for c (bits "a" 5 @ bits "c" 5 @ [ "en0" ]) in
  Alcotest.(check bool) "q0 = en0 & eq" true (out_bit c out "q0");
  let out = outputs_for c (bits "a" 5 @ bits "c" 5) in
  Alcotest.(check bool) "q0 quiet without en0" false (out_bit c out "q0");
  let out = outputs_for c (bits "a" 9 @ bits "c" 3 @ [ "en1"; "en0" ]) in
  Alcotest.(check bool) "q1 = en1 & gt" true (out_bit c out "q1");
  Alcotest.(check bool) "q0 stays low on gt" false (out_bit c out "q0");
  let out =
    outputs_for c (bits "a" 0x7f @ bits "b" 1 @ bits "mask" 255 @ [ "en3" ])
  in
  Alcotest.(check bool) "q3 = en3 & ovf" true (out_bit c out "q3")

let () =
  Alcotest.run "dl_netlist"
    [
      ( "gate",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_eval_truth_tables;
          Alcotest.test_case "word eval matches" `Quick test_gate_eval_word_matches_eval;
          Alcotest.test_case "of_string" `Quick test_gate_of_string;
          Alcotest.test_case "controlling values" `Quick test_gate_controlling;
          Alcotest.test_case "arity violations" `Quick test_gate_arity_violations;
          Alcotest.test_case "opcodes" `Quick test_gate_opcodes;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "lowered structure" `Quick test_kernel_structure;
          Alcotest.test_case "ffr partition invariants" `Quick
            test_kernel_ffr_invariants;
          Alcotest.test_case "bounds and validation" `Quick
            test_kernel_rejects_malformed_arity;
          Alcotest.test_case "eval_node = Gate.eval_word" `Quick
            test_kernel_eval_node_matches_gate;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "counts" `Quick test_circuit_counts;
          Alcotest.test_case "find" `Quick test_circuit_find;
          Alcotest.test_case "fanout consistency" `Quick test_circuit_fanout_consistency;
          Alcotest.test_case "levels monotone" `Quick test_circuit_levels_monotone;
          Alcotest.test_case "duplicate rejected" `Quick test_builder_duplicate_rejected;
          Alcotest.test_case "cycle rejected" `Quick test_builder_cycle_rejected;
          Alcotest.test_case "dangling rejected" `Quick test_builder_dangling_rejected;
          Alcotest.test_case "line count" `Quick test_line_count;
        ] );
      ( "bench-format",
        [
          Alcotest.test_case "roundtrip all benchmarks" `Quick test_bench_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_bench_parse_errors;
          Alcotest.test_case "comments and case" `Quick test_bench_comments_and_case;
        ] );
      ( "generators",
        [
          Alcotest.test_case "ripple adder adds" `Quick test_ripple_adder_function;
          Alcotest.test_case "parity tree" `Quick test_parity_tree_function;
          Alcotest.test_case "comparator" `Quick test_comparator_function;
          Alcotest.test_case "multiplexer" `Quick test_mux_function;
          Alcotest.test_case "decoder" `Quick test_decoder_function;
          Alcotest.test_case "random generator valid" `Quick test_random_generator_valid;
          Alcotest.test_case "priority controller" `Quick test_priority_controller_interface;
        ] );
      ( "families",
        [
          Alcotest.test_case "registry" `Quick test_family_registry;
          Alcotest.test_case "valid + deterministic" `Quick
            test_family_builds_valid_and_deterministic;
          Alcotest.test_case "xor-heavy mix" `Quick
            test_family_xor_heavy_is_xor_rich;
          Alcotest.test_case "families simulate" `Quick test_family_simulates;
        ] );
      ( "transform",
        [
          Alcotest.test_case "decompose wide gates" `Quick test_decompose_wide_gates;
          Alcotest.test_case "identity when mappable" `Quick test_decompose_identity_when_mappable;
          Alcotest.test_case "eliminate_node" `Quick test_eliminate_node;
          Alcotest.test_case "eliminate output node" `Quick test_eliminate_output_node;
          Alcotest.test_case "prune_dead" `Quick test_prune_dead;
        ] );
      ( "generator-errors",
        [
          Alcotest.test_case "Input in profile rejected" `Quick
            test_generator_input_in_profile_rejected;
          Alcotest.test_case "degenerate reduction widths" `Quick
            test_reduction_degenerate_widths;
          Alcotest.test_case "array multiplier width guard" `Quick
            test_array_multiplier_width_guard;
        ] );
      ( "iscas-like",
        [
          Alcotest.test_case "c499s interface" `Quick test_c499s_interface;
          Alcotest.test_case "c880s interface" `Quick test_c880s_interface;
          Alcotest.test_case "c499s single-error correction" `Quick
            test_c499s_correction;
          Alcotest.test_case "c880s ALU add/cout/zero" `Quick
            test_c880s_alu_add;
          Alcotest.test_case "c880s logic mode + priority encoder" `Quick
            test_c880s_alu_logic_and_priority;
          Alcotest.test_case "c1355s interface + NAND mix" `Quick
            test_c1355s_interface;
          Alcotest.test_case "c1355s = c499s functionally" `Quick
            test_c1355s_equals_c499s;
          Alcotest.test_case "c1908s interface" `Quick test_c1908s_interface;
          Alcotest.test_case "c1908s SEC/DED behavior" `Quick
            test_c1908s_secded;
          Alcotest.test_case "c2670s interface + NAND mix" `Quick
            test_c2670s_interface;
          Alcotest.test_case "c2670s adder + comparator" `Quick
            test_c2670s_alu;
          Alcotest.test_case "c2670s masks, decoder, equality bank" `Quick
            test_c2670s_masks_and_control;
          Alcotest.test_case "c3540s interface" `Quick test_c3540s_interface;
          Alcotest.test_case "c3540s adder, logic, operand select" `Quick
            test_c3540s_alu;
          Alcotest.test_case "c3540s BCD adjust + shifter" `Quick
            test_c3540s_bcd_and_shift;
          Alcotest.test_case "c3540s compare, priority, conditions" `Quick
            test_c3540s_compare_and_priority;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generator_deterministic; prop_roundtrip_random ] );
    ]
