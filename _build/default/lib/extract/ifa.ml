module Geom = Dl_layout.Geom
module Layout = Dl_layout.Layout
module Mapping = Dl_cell.Mapping
module Realistic = Dl_switch.Realistic

type class_summary = {
  cls : Defect_stats.defect_class;
  count : int;
  total_weight : float;
}

type extraction = {
  layout : Layout.t;
  faults : Realistic.t array;
  gross_weight : float;
  summaries : class_summary list;
}

(* Accumulator merging faults that share an electrical site. *)
type acc = {
  table : (Realistic.kind, float * string * Defect_stats.defect_class) Hashtbl.t;
  mutable gross : float;
  class_totals : (Defect_stats.defect_class, int * float) Hashtbl.t;
}

let add_class acc cls w =
  let count, total =
    Option.value ~default:(0, 0.0) (Hashtbl.find_opt acc.class_totals cls)
  in
  Hashtbl.replace acc.class_totals cls (count + 1, total +. w)

let add_fault acc cls kind label w =
  if w > 0.0 then begin
    add_class acc cls w;
    match Hashtbl.find_opt acc.table kind with
    | Some (w0, label0, cls0) -> Hashtbl.replace acc.table kind (w0 +. w, label0, cls0)
    | None -> Hashtbl.replace acc.table kind (w, label, cls)
  end

let bridge_layers =
  [ Geom.Metal1; Geom.Metal2; Geom.Poly; Geom.Diffusion_n; Geom.Diffusion_p ]

let extract ?(stats = Defect_stats.default) ?(min_weight_ratio = 0.0) (l : Layout.t) =
  let m = l.Layout.network in
  let acc =
    { table = Hashtbl.create 256; gross = 0.0; class_totals = Hashtbl.create 16 }
  in
  let is_rail n = n = m.Mapping.gnd || n = m.Mapping.vdd in
  let node_name n =
    if n >= 0 && n < Array.length m.Mapping.node_names then m.Mapping.node_names.(n)
    else "?"
  in
  (* --- Bridges: facing same-layer wire pairs --------------------------- *)
  List.iter
    (fun layer ->
      let cls = Defect_stats.Short_on layer in
      let density = Defect_stats.density stats cls in
      if density > 0.0 then begin
        let x0 = Defect_stats.x0 stats cls in
        let limit = Critical_area.interaction_distance ~x0 in
        let rects = Layout.rects_on l layer in
        let n = Array.length rects in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let a = rects.(i) and b = rects.(j) in
            if a.Geom.net <> b.Geom.net then
              match Geom.facing a b with
              | Some { spacing; common_run }
                when float_of_int spacing <= limit && common_run > 0 ->
                  let area =
                    Critical_area.short_parallel ~run:(float_of_int common_run)
                      ~spacing:(float_of_int spacing) ~x0
                  in
                  let w = area *. density in
                  if is_rail a.Geom.net && is_rail b.Geom.net then
                    acc.gross <- acc.gross +. w
                  else begin
                    let lo = min a.Geom.net b.Geom.net
                    and hi = max a.Geom.net b.Geom.net in
                    add_fault acc cls
                      (Realistic.Bridge { node_a = lo; node_b = hi })
                      (Printf.sprintf "%s %s/%s" (Geom.layer_name layer)
                         (node_name lo) (node_name hi))
                      w
                  end
              | _ -> ()
          done
        done
      end)
    bridge_layers;
  (* --- helpers for open mapping ----------------------------------------- *)
  let c = m.Mapping.circuit in
  let signal_of g =
    let n_signals = Dl_netlist.Circuit.node_count c in
    if g >= 2 && g < 2 + n_signals then Some (g - 2) else None
  in
  let pin_of_input ii node =
    let inst = m.Mapping.instances.(ii) in
    let nd = c.nodes.(inst.gate_id) in
    let rec scan p =
      if p >= Array.length nd.fanin then None
      else if m.Mapping.signal_node.(nd.fanin.(p)) = node then Some (inst.gate_id, p)
      else scan (p + 1)
    in
    scan 0
  in
  let transistor_with_terminal ii node =
    let inst = m.Mapping.instances.(ii) in
    let n_ts = List.length inst.cell.Dl_cell.Cell.transistors in
    let rec scan k =
      if k >= n_ts then None
      else begin
        let ti = inst.first_transistor + k in
        let tr = m.Mapping.transistors.(ti) in
        if tr.source = node || tr.drain = node then Some ti else scan (k + 1)
      end
    in
    scan 0
  in
  let transistor_with_gate ii node =
    let inst = m.Mapping.instances.(ii) in
    let n_ts = List.length inst.cell.Dl_cell.Cell.transistors in
    let rec scan k =
      if k >= n_ts then None
      else begin
        let ti = inst.first_transistor + k in
        if m.Mapping.transistors.(ti).gate = node then Some ti else scan (k + 1)
      end
    in
    scan 0
  in
  (* --- Opens on conducting wires ---------------------------------------- *)
  let open_layers =
    [ Geom.Metal1; Geom.Metal2; Geom.Poly; Geom.Diffusion_n; Geom.Diffusion_p ]
  in
  Array.iteri
    (fun ri (r : Geom.rect) ->
      if List.mem r.Geom.layer open_layers then begin
        let cls = Defect_stats.Open_on r.Geom.layer in
        let density = Defect_stats.density stats cls in
        if density > 0.0 then begin
          let x0 = Defect_stats.x0 stats cls in
          let length = float_of_int (max (Geom.width r) (Geom.height r)) in
          let wire_w = float_of_int (min (Geom.width r) (Geom.height r)) in
          let w = Critical_area.open_wire ~length ~width:wire_w ~x0 *. density in
          let tag = l.Layout.tags.(ri) in
          let label site = Printf.sprintf "%s %s" (Geom.layer_name r.Geom.layer) site in
          match tag with
          | Layout.Pad_rect _ -> acc.gross <- acc.gross +. w
          | Layout.Trunk cnode | Layout.Driver_drop cnode ->
              add_fault acc cls
                (Realistic.Stem_open { node = cnode; policy = Realistic.Floats_low })
                (label (Dl_netlist.Circuit.name c cnode))
                w
          | Layout.Pin_drop { gate; pin } ->
              add_fault acc cls
                (Realistic.Input_open { gate; pin; policy = Realistic.Floats_low })
                (label (Printf.sprintf "%s.in%d" (Dl_netlist.Circuit.name c gate) pin))
                w
          | Layout.Cell_rect ii -> (
              if is_rail r.Geom.net then acc.gross <- acc.gross +. w
              else begin
                let inst = m.Mapping.instances.(ii) in
                match signal_of r.Geom.net with
                | Some cnode when cnode = inst.gate_id ->
                    (* Output spine / strap: the cell loses its drive. *)
                    add_fault acc cls
                      (Realistic.Stem_open
                         { node = cnode; policy = Realistic.Floats_low })
                      (label (Dl_netlist.Circuit.name c cnode))
                      w
                | Some cnode -> (
                    (* Input-side geometry: poly gates float to an
                       intermediate level, metal pads break cleanly. *)
                    match pin_of_input ii r.Geom.net with
                    | Some (gate, pin) ->
                        let policy =
                          if r.Geom.layer = Geom.Poly then Realistic.Floats_unknown
                          else Realistic.Floats_low
                        in
                        add_fault acc cls
                          (Realistic.Input_open { gate; pin; policy })
                          (label
                             (Printf.sprintf "%s.in%d"
                                (Dl_netlist.Circuit.name c gate) pin))
                          w
                    | None ->
                        ignore cnode;
                        acc.gross <- acc.gross +. w)
                | None -> (
                    (* Cell-internal node: a broken island or internal poly
                       isolates one device. *)
                    let target =
                      if r.Geom.layer = Geom.Poly then transistor_with_gate ii r.Geom.net
                      else transistor_with_terminal ii r.Geom.net
                    in
                    match target with
                    | Some ti ->
                        add_fault acc cls
                          (Realistic.Transistor_stuck_open ti)
                          (label (Printf.sprintf "%s#t%d" (node_name r.Geom.net) ti))
                          w
                    | None -> acc.gross <- acc.gross +. w)
              end)
        end
      end)
    l.Layout.rects;
  (* --- Contact and via opens --------------------------------------------- *)
  let contact_density = Defect_stats.density stats Defect_stats.Contact_open in
  if contact_density > 0.0 then
    Array.iteri
      (fun ri (r : Geom.rect) ->
        if r.Geom.layer = Geom.Contact || r.Geom.layer = Geom.Via then begin
          let w = float_of_int (Geom.area r) *. contact_density in
          let cls = Defect_stats.Contact_open in
          match l.Layout.tags.(ri) with
          | Layout.Pad_rect _ -> acc.gross <- acc.gross +. w
          | Layout.Trunk cnode | Layout.Driver_drop cnode ->
              add_fault acc cls
                (Realistic.Stem_open { node = cnode; policy = Realistic.Floats_low })
                (Printf.sprintf "via %s" (Dl_netlist.Circuit.name c cnode))
                w
          | Layout.Pin_drop { gate; pin } ->
              add_fault acc cls
                (Realistic.Input_open { gate; pin; policy = Realistic.Floats_low })
                (Printf.sprintf "via %s.in%d" (Dl_netlist.Circuit.name c gate) pin)
                w
          | Layout.Cell_rect ii -> (
              if is_rail r.Geom.net then acc.gross <- acc.gross +. w
              else begin
                let inst = m.Mapping.instances.(ii) in
                match signal_of r.Geom.net with
                | Some cnode when cnode = inst.gate_id -> (
                    (* Output contact: one device's drive is lost. *)
                    match transistor_with_terminal ii r.Geom.net with
                    | Some ti ->
                        add_fault acc cls (Realistic.Transistor_stuck_open ti)
                          (Printf.sprintf "contact %s#t%d" (node_name r.Geom.net) ti)
                          w
                    | None -> acc.gross <- acc.gross +. w)
                | Some _ -> (
                    (* Input-pad contact: the poly gate floats. *)
                    match pin_of_input ii r.Geom.net with
                    | Some (gate, pin) ->
                        add_fault acc cls
                          (Realistic.Input_open
                             { gate; pin; policy = Realistic.Floats_unknown })
                          (Printf.sprintf "contact %s.in%d"
                             (Dl_netlist.Circuit.name c gate) pin)
                          w
                    | None -> acc.gross <- acc.gross +. w)
                | None -> (
                    match transistor_with_terminal ii r.Geom.net with
                    | Some ti ->
                        add_fault acc cls (Realistic.Transistor_stuck_open ti)
                          (Printf.sprintf "contact %s#t%d" (node_name r.Geom.net) ti)
                          w
                    | None -> acc.gross <- acc.gross +. w)
              end)
        end)
      l.Layout.rects;
  (* --- Gate-oxide pinholes: one stuck-on fault per device --------------- *)
  let oxide_density = Defect_stats.density stats Defect_stats.Oxide_pinhole in
  if oxide_density > 0.0 then begin
    let gate_area = 2.0 *. 6.0 in
    Array.iteri
      (fun ti (_ : Mapping.transistor) ->
        add_fault acc Defect_stats.Oxide_pinhole
          (Realistic.Transistor_stuck_on ti)
          (Printf.sprintf "oxide t%d" ti)
          (gate_area *. oxide_density))
      m.Mapping.transistors
  end;
  (* --- Assemble ----------------------------------------------------------- *)
  let all =
    Hashtbl.fold
      (fun kind (w, label, _) lst -> { Realistic.kind; weight = w; label } :: lst)
      acc.table []
  in
  (* Optional pruning of negligible faults: their weight is preserved in
     [gross_weight] so yield stays exact. *)
  let w_max = List.fold_left (fun m (f : Realistic.t) -> Float.max m f.weight) 0.0 all in
  let threshold = min_weight_ratio *. w_max in
  let kept, dropped =
    List.partition (fun (f : Realistic.t) -> f.weight >= threshold) all
  in
  List.iter (fun (f : Realistic.t) -> acc.gross <- acc.gross +. f.weight) dropped;
  let faults =
    kept
    |> List.sort (fun (a : Realistic.t) b -> compare (a.label, a.kind) (b.label, b.kind))
    |> Array.of_list
  in
  let summaries =
    Hashtbl.fold
      (fun cls (count, total_weight) lst -> { cls; count; total_weight } :: lst)
      acc.class_totals []
    |> List.sort (fun a b -> compare b.total_weight a.total_weight)
  in
  { layout = l; faults; gross_weight = acc.gross; summaries }

let total_weight e =
  Dl_util.Stats.total (Array.map (fun (f : Realistic.t) -> f.weight) e.faults)

let yield_of e = exp (-.total_weight e)

let weight_histogram ?(bins = 24) e =
  let ws = Array.map (fun (f : Realistic.t) -> f.weight) e.faults in
  let lo, hi = Dl_util.Stats.min_max ws in
  let lo = if lo <= 0.0 then 1e-12 else lo in
  let hi = Float.max hi (lo *. 10.0) in
  let h = Dl_util.Histogram.create (Dl_util.Histogram.Log10 { lo; hi; bins }) in
  Dl_util.Histogram.add_many h ws;
  h

let pp_summary ppf e =
  Format.fprintf ppf "IFA %s: %d weighted faults, total weight %.4e (Y=%.4f), gross %.3e@."
    e.layout.Layout.network.Mapping.circuit.title (Array.length e.faults)
    (total_weight e) (yield_of e) e.gross_weight;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-16s %5d faults, weight %.4e@."
        (Defect_stats.class_name s.cls) s.count s.total_weight)
    e.summaries
