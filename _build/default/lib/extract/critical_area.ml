let check name v = if v < 0.0 then invalid_arg ("Critical_area." ^ name ^ ": negative argument")

let band ~run ~gap ~x0 =
  check "band" run;
  check "band" gap;
  if x0 <= 0.0 then invalid_arg "Critical_area: x0 must be positive";
  if gap >= x0 then run *. x0 *. x0 /. gap else run *. ((2.0 *. x0) -. gap)

let short_parallel ~run ~spacing ~x0 = band ~run ~gap:spacing ~x0

let open_wire ~length ~width ~x0 = band ~run:length ~gap:width ~x0

let short_parallel_numeric ?(x_max = 1e6) ~run ~spacing ~x0 () =
  (* A(x) = run * (x - s) for x > s; integrate against 2 x0^2 / x^3 from
     max(s, x0).  Integrand decays as 1/x^2, so log-spaced Simpson panels
     keep the tail accurate. *)
  let lo = Float.max spacing x0 in
  let f u =
    (* substitute x = e^u: dx = x du *)
    let x = exp u in
    run *. (x -. spacing) *. Defect_stats.size_pdf ~x0 x *. x
  in
  Dl_util.Numerics.integrate ~steps:4096 ~f (log lo) (log x_max)

let interaction_distance ~x0 = 25.0 *. x0
