(** Spot-defect statistics: per-class defect densities and the defect size
    distribution.

    The size distribution is the industry-standard inverse-cube law
    [f(x) = 2 x0^2 / x^3] for [x >= x0] (Stapper), with [x0] the resolution
    / minimum defect diameter per class.  Densities follow the relative
    magnitudes Maly reported for CMOS process lines: conducting-layer
    *shorts* (extra material) dominate — which is what makes bridging
    faults the most likely realistic faults and drives the paper's [R > 1]
    — with *opens* (missing material) several times rarer, plus gate-oxide
    pinholes and contact/via opens. *)

type defect_class =
  | Short_on of Dl_layout.Geom.layer  (** Extra material bridging wires. *)
  | Open_on of Dl_layout.Geom.layer   (** Missing material breaking a wire. *)
  | Oxide_pinhole                      (** Gate-oxide short: device stuck-on. *)
  | Contact_open                       (** Missing contact or via. *)

type entry = {
  density : float;  (** Average defects per lambda^2 of critical area. *)
  x0 : float;       (** Minimum defect diameter (lambda). *)
}

type t

val default : t
(** Maly-style CMOS defaults (see DESIGN.md §4 for the substitution note). *)

val make : (defect_class * entry) list -> t
(** Unlisted classes get zero density. *)

val entry : t -> defect_class -> entry

val density : t -> defect_class -> float
val x0 : t -> defect_class -> float

val scale : t -> float -> t
(** Multiply every density by a factor (process maturity knob). *)

val scale_class : t -> defect_class -> float -> t
(** Multiply one class's density (the "tune assumed defect statistics"
    use-case from the paper's conclusions). *)

val classes : t -> defect_class list
(** Classes with non-zero density, deterministic order. *)

val class_name : defect_class -> string

val size_pdf : x0:float -> float -> float
(** [size_pdf ~x0 x]: the 2 x0²/x³ density (0 below [x0]). *)
