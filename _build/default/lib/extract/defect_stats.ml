module Geom = Dl_layout.Geom

type defect_class =
  | Short_on of Geom.layer
  | Open_on of Geom.layer
  | Oxide_pinhole
  | Contact_open

type entry = { density : float; x0 : float }

type t = (defect_class * entry) list

let zero = { density = 0.0; x0 = 2.0 }

(* Relative densities follow Maly's CMOS characterization: metal shorts
   dominate, poly next, opens a factor of ~5 rarer.  The absolute scale is
   arbitrary (experiments rescale total weight to a target yield, exactly as
   the paper scales c432's yield to 0.75). *)
let default : t =
  [
    (Short_on Geom.Metal1, { density = 2.0e-9; x0 = 4.0 });
    (Short_on Geom.Metal2, { density = 1.5e-9; x0 = 4.0 });
    (Short_on Geom.Poly, { density = 1.0e-9; x0 = 3.0 });
    (Short_on Geom.Diffusion_n, { density = 4.0e-10; x0 = 3.0 });
    (Short_on Geom.Diffusion_p, { density = 4.0e-10; x0 = 3.0 });
    (Open_on Geom.Metal1, { density = 4.0e-10; x0 = 4.0 });
    (Open_on Geom.Metal2, { density = 3.0e-10; x0 = 4.0 });
    (Open_on Geom.Poly, { density = 2.5e-10; x0 = 3.0 });
    (Open_on Geom.Diffusion_n, { density = 1.5e-10; x0 = 3.0 });
    (Open_on Geom.Diffusion_p, { density = 1.5e-10; x0 = 3.0 });
    (Oxide_pinhole, { density = 8.0e-10; x0 = 2.0 });
    (Contact_open, { density = 2.0e-9; x0 = 2.0 });
  ]

let make entries =
  List.iter
    (fun (_, e) ->
      if e.density < 0.0 then invalid_arg "Defect_stats.make: negative density";
      if e.x0 <= 0.0 then invalid_arg "Defect_stats.make: non-positive x0")
    entries;
  entries

let entry t cls = Option.value ~default:zero (List.assoc_opt cls t)
let density t cls = (entry t cls).density
let x0 t cls = (entry t cls).x0

let scale t factor =
  if factor < 0.0 then invalid_arg "Defect_stats.scale: negative factor";
  List.map (fun (cls, e) -> (cls, { e with density = e.density *. factor })) t

let scale_class t cls factor =
  if factor < 0.0 then invalid_arg "Defect_stats.scale_class: negative factor";
  List.map
    (fun (c, e) -> if c = cls then (c, { e with density = e.density *. factor }) else (c, e))
    t

let classes t = List.filter_map (fun (c, e) -> if e.density > 0.0 then Some c else None) t

let class_name = function
  | Short_on layer -> "short-" ^ Geom.layer_name layer
  | Open_on layer -> "open-" ^ Geom.layer_name layer
  | Oxide_pinhole -> "oxide-pinhole"
  | Contact_open -> "contact-open"

let size_pdf ~x0 x = if x < x0 then 0.0 else 2.0 *. x0 *. x0 /. (x ** 3.0)
