lib/extract/ifa.mli: Defect_stats Dl_layout Dl_switch Dl_util Format
