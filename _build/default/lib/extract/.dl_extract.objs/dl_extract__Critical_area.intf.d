lib/extract/critical_area.mli:
