lib/extract/critical_area.ml: Defect_stats Dl_util Float
