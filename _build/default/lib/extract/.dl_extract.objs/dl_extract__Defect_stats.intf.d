lib/extract/defect_stats.mli: Dl_layout
