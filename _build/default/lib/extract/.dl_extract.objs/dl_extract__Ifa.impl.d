lib/extract/ifa.ml: Array Critical_area Defect_stats Dl_cell Dl_layout Dl_netlist Dl_switch Dl_util Float Format Hashtbl List Option Printf
