lib/extract/dot_throw.ml: Array Dl_layout Dl_util Float Hashtbl List Option
