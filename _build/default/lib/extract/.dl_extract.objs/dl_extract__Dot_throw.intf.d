lib/extract/dot_throw.mli: Dl_layout
