lib/extract/defect_stats.ml: Dl_layout List Option
