(** Critical-area computation for spot defects under the inverse-cube size
    distribution.

    For two parallel wires with facing run [l] and spacing [s], a defect of
    diameter [x > s] centered in a band of width [x - s] along the run
    shorts them; averaging the band over [f(x) = 2 x0²/x³] gives the classic
    closed forms used here.  The fault weight is then
    [w = A_c * D] (eq. 4 of the paper, with [w = A_j D_j]). *)

val short_parallel : run:float -> spacing:float -> x0:float -> float
(** Average critical area for a short between facing wires.
    [= run * x0² / s] when [s >= x0], [run * (2 x0 - s)] when [0 <= s < x0]
    (no defect is smaller than [x0]). *)

val open_wire : length:float -> width:float -> x0:float -> float
(** Average critical area for an open of a wire segment; same form with the
    wire width in place of the spacing. *)

val short_parallel_numeric :
  ?x_max:float -> run:float -> spacing:float -> x0:float -> unit -> float
(** Numerical integration of the same quantity (for validation; agrees with
    {!short_parallel} as [x_max -> infinity]). *)

val interaction_distance : x0:float -> float
(** Spacing beyond which the short critical area is negligible (< 4% of the
    touching-wires value); pairs farther apart are not enumerated. *)
