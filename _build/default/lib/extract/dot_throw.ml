module Geom = Dl_layout.Geom
module Layout = Dl_layout.Layout
module Rng = Dl_util.Rng

type short_hit = { net_a : int; net_b : int }

type result = {
  thrown : int;
  shorts : (short_hit * int) list;
  opens : (int * int) list;
  chip_area : float;
}

(* Inverse CDF of the 2 x0^2 / x^3 size law: F(d) = 1 - (x0/d)^2. *)
let sample_diameter rng ~x0 =
  let u = Rng.float rng 1.0 in
  x0 /. sqrt (1.0 -. u)

let circle_overlaps_rect ~cx ~cy ~radius (r : Geom.rect) =
  let nx = Float.max (float_of_int r.x0) (Float.min cx (float_of_int r.x1)) in
  let ny = Float.max (float_of_int r.y0) (Float.min cy (float_of_int r.y1)) in
  let dx = cx -. nx and dy = cy -. ny in
  (dx *. dx) +. (dy *. dy) < radius *. radius

let throw_shorts ?(seed = 1) ~samples ~layer ~x0 (l : Layout.t) =
  if samples <= 0 then invalid_arg "Dot_throw.throw_shorts: samples must be positive";
  if x0 <= 0.0 then invalid_arg "Dot_throw.throw_shorts: x0 must be positive";
  let rng = Rng.create seed in
  let rects = Layout.rects_on l layer in
  let w = float_of_int l.Layout.width and h = float_of_int l.Layout.height in
  let short_counts : (short_hit, int) Hashtbl.t = Hashtbl.create 64 in
  let open_counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  for _ = 1 to samples do
    let cx = Rng.float rng w and cy = Rng.float rng h in
    let d = sample_diameter rng ~x0 in
    let radius = d /. 2.0 in
    (* Nets the defect touches on this layer. *)
    let touched = ref [] in
    Array.iter
      (fun (r : Geom.rect) ->
        if
          circle_overlaps_rect ~cx ~cy ~radius r
          && not (List.mem r.Geom.net !touched)
        then touched := r.Geom.net :: !touched)
      rects;
    (* Shorts: every distinct pair of touched nets. *)
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              if a <> b then begin
                let hit = { net_a = min a b; net_b = max a b } in
                Hashtbl.replace short_counts hit
                  (1 + Option.value ~default:0 (Hashtbl.find_opt short_counts hit))
              end)
            rest;
          pairs rest
    in
    pairs !touched;
    (* Opens: the defect severs a wire it spans entirely across the narrow
       dimension (center inside, diameter >= width). *)
    Array.iter
      (fun (r : Geom.rect) ->
        let inside =
          cx >= float_of_int r.x0 && cx < float_of_int r.x1
          && cy >= float_of_int r.y0
          && cy < float_of_int r.y1
        in
        let wire_w = float_of_int (min (Geom.width r) (Geom.height r)) in
        if inside && d >= wire_w then
          Hashtbl.replace open_counts r.Geom.net
            (1 + Option.value ~default:0 (Hashtbl.find_opt open_counts r.Geom.net)))
      rects
  done;
  {
    thrown = samples;
    shorts =
      Hashtbl.fold (fun hit count acc -> (hit, count) :: acc) short_counts []
      |> List.sort compare;
    opens =
      Hashtbl.fold (fun net count acc -> (net, count) :: acc) open_counts []
      |> List.sort compare;
    chip_area = w *. h;
  }

let empirical_weight r ~density ~hits =
  float_of_int hits /. float_of_int r.thrown *. r.chip_area *. density

let total_short_weight r ~density =
  let hits = List.fold_left (fun acc (_, c) -> acc + c) 0 r.shorts in
  empirical_weight r ~density ~hits
