(** Inductive fault analysis (the paper's *lift* tool): scan the layout
    geometry against the defect statistics and emit the weighted realistic
    fault list.

    Every fault is "originated by a likely physical defect": bridges come
    from facing wire pairs (weighted by short critical area x density),
    opens from wire segments, contact/via opens from contact geometry,
    stuck-on devices from gate-oxide pinholes.  Faults mapping to the same
    electrical site are merged by summing weights. *)

type class_summary = {
  cls : Defect_stats.defect_class;
  count : int;          (** Geometric defect sites contributing. *)
  total_weight : float;
}

type extraction = {
  layout : Dl_layout.Layout.t;
  faults : Dl_switch.Realistic.t array;
  gross_weight : float;
      (** Chip-killing defects excluded from the fault list (supply-rail
          shorts/opens, pad defects): screened by continuity testing before
          any functional vector, hence outside the DL(T) model. *)
  summaries : class_summary list;
}

val extract :
  ?stats:Defect_stats.t ->
  ?min_weight_ratio:float ->
  Dl_layout.Layout.t ->
  extraction
(** [min_weight_ratio] (default 0) prunes faults lighter than that fraction
    of the heaviest fault; pruned weight moves to [gross_weight] so the
    yield of eq. 5 is unchanged. *)

val total_weight : extraction -> float
(** Sum of all fault weights (the exponent of eq. 5). *)

val yield_of : extraction -> float
(** [Y = exp (- Σ w_j)] (eq. 5), excluding gross weight. *)

val weight_histogram : ?bins:int -> extraction -> Dl_util.Histogram.t
(** Log-binned histogram of fault weights: the paper's Fig. 3. *)

val pp_summary : Format.formatter -> extraction -> unit
