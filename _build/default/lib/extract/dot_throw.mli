(** Monte-Carlo critical-area estimation by defect sampling ("dot
    throwing") — the reference method the closed-form critical areas of
    {!Critical_area} approximate.

    Circular defects are thrown uniformly over the chip with diameters
    drawn from the inverse-cube size distribution; each defect is checked
    against the geometry: a *short* defect bridges two different-net shapes
    of its layer if it overlaps both; an *open* defect breaks a wire if it
    spans the wire's width.  The fraction of hitting defects times chip
    area times density is the empirical fault weight. *)

type short_hit = { net_a : int; net_b : int }

type result = {
  thrown : int;
  shorts : (short_hit * int) list;  (** Hit counts per net pair. *)
  opens : (int * int) list;         (** Hit counts per net (by net id). *)
  chip_area : float;
}

val throw_shorts :
  ?seed:int ->
  samples:int ->
  layer:Dl_layout.Geom.layer ->
  x0:float ->
  Dl_layout.Layout.t ->
  result
(** Sample short defects on one layer. *)

val empirical_weight : result -> density:float -> hits:int -> float
(** Convert a hit count to a fault weight: [hits/thrown * chip_area *
    density] (the density is per unit area, as in {!Defect_stats}). *)

val total_short_weight : result -> density:float -> float
(** Empirical total bridge weight on the sampled layer. *)
