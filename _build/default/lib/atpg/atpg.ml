open Dl_netlist
module Stuck_at = Dl_fault.Stuck_at
module Fault_sim = Dl_fault.Fault_sim

type stats = {
  total_faults : int;
  random_detected : int;
  deterministic_detected : int;
  untestable : int;
  aborted : int;
  random_vectors : int;
  deterministic_vectors : int;
}

type result = {
  vectors : bool array array;
  stats : stats;
  coverage : float;
  untestable_faults : Stuck_at.t array;
  aborted_faults : Stuck_at.t array;
}

let run ?(seed = 7) ?(max_random = 4096) ?(stale_limit = 512)
    ?(backtrack_limit = 10_000) (c : Circuit.t) ~faults =
  let random = Random_gen.run ~seed ~max_vectors:max_random ~stale_limit c ~faults in
  let scoap = Scoap.compute c in
  let deterministic = ref [] in
  let det_count = ref 0 in
  let untestable = ref 0 in
  let aborted = ref 0 in
  let det_detected = ref 0 in
  let untestable_list = ref [] in
  let aborted_list = ref [] in
  let pending = ref (Array.to_list random.remaining) in
  while !pending <> [] do
    match !pending with
    | [] -> ()
    | target :: rest -> (
        match Podem.generate ~backtrack_limit ~scoap c target with
        | Podem.Untestable ->
            incr untestable;
            untestable_list := target :: !untestable_list;
            pending := rest
        | Podem.Aborted ->
            incr aborted;
            aborted_list := target :: !aborted_list;
            pending := rest
        | Podem.Test vector ->
            deterministic := vector :: !deterministic;
            incr det_count;
            (* Drop every remaining fault this vector also detects. *)
            let remaining = Array.of_list rest in
            let r =
              Fault_sim.run c ~faults:(Array.append [| target |] remaining)
                ~vectors:[| vector |]
            in
            let kept = ref [] in
            Array.iteri
              (fun i d ->
                match d with
                | Some _ -> incr det_detected
                | None -> if i > 0 then kept := remaining.(i - 1) :: !kept)
              r.first_detection;
            (* The targeted fault is detected by construction; if the oracle
               ever disagreed we would still drop it to guarantee progress. *)
            if r.first_detection.(0) = None then incr aborted;
            pending := List.rev !kept)
  done;
  let det_vectors = Array.of_list (List.rev !deterministic) in
  let vectors = Array.append random.vectors det_vectors in
  let total_faults = Array.length faults in
  let undetected = !untestable + !aborted in
  let detected = total_faults - undetected in
  let coverage =
    if total_faults = 0 then 1.0
    else float_of_int detected /. float_of_int total_faults
  in
  {
    vectors;
    stats =
      {
        total_faults;
        random_detected = random.detected;
        deterministic_detected = !det_detected;
        untestable = !untestable;
        aborted = !aborted;
        random_vectors = Array.length random.vectors;
        deterministic_vectors = Array.length det_vectors;
      };
    coverage;
    untestable_faults = Array.of_list (List.rev !untestable_list);
    aborted_faults = Array.of_list (List.rev !aborted_list);
  }

let full_flow ?seed ?max_random c =
  let faults = Stuck_at.collapse c (Stuck_at.universe c) in
  let r = run ?seed ?max_random c ~faults in
  (r, faults)
