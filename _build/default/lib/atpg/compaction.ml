open Dl_netlist
module Fault_sim = Dl_fault.Fault_sim

type stats = { original : int; compacted : int; passes_run : int }

let useful_mask (c : Circuit.t) ~faults ~vectors ~order =
  let n = Array.length vectors in
  if Array.length order <> n then
    invalid_arg "Compaction.useful_mask: order length mismatch";
  let reordered = Array.map (fun i -> vectors.(i)) order in
  let r = Fault_sim.run c ~faults ~vectors:reordered in
  let useful = Array.make n false in
  Array.iter
    (function
      | Some pos -> useful.(order.(pos)) <- true
      | None -> ())
    r.first_detection;
  useful

let apply_mask vectors mask =
  let kept = ref [] in
  Array.iteri (fun i v -> if mask.(i) then kept := v :: !kept) vectors;
  Array.of_list (List.rev !kept)

let compact ?(seed = 1) ?(max_passes = 4) (c : Circuit.t) ~faults ~vectors =
  if max_passes < 1 then invalid_arg "Compaction.compact: max_passes must be >= 1";
  let rng = Dl_util.Rng.create seed in
  let original = Array.length vectors in
  let current = ref vectors in
  let passes_run = ref 0 in
  let continue_ = ref true in
  while !continue_ && !passes_run < max_passes do
    incr passes_run;
    let n = Array.length !current in
    let order =
      if !passes_run = 1 then Array.init n (fun i -> n - 1 - i)
      else begin
        let o = Array.init n Fun.id in
        Dl_util.Rng.shuffle rng o;
        o
      end
    in
    let mask = useful_mask c ~faults ~vectors:!current ~order in
    let next = apply_mask !current mask in
    if Array.length next = n then continue_ := false;
    current := next
  done;
  (!current, { original; compacted = Array.length !current; passes_run = !passes_run })
