open Dl_netlist

type t = {
  cc0 : int array;
  cc1 : int array;
  obs : int array;
  circuit : Circuit.t;
}

let big = 1_000_000 (* effectively-infinite cost cap to avoid overflow *)

let cap x = min x big

(* Fold XOR controllabilities pairwise: cost of an even/odd parity over a
   growing prefix of inputs. *)
let xor_cc c0s c1s =
  let combine (e, o) (c0, c1) =
    (* even parity: both even or both odd; odd: mixed. *)
    (cap (min (e + c0) (o + c1)), cap (min (e + c1) (o + c0)))
  in
  let rec fold acc = function
    | [] -> acc
    | (c0, c1) :: rest -> fold (combine acc (c0, c1)) rest
  in
  match List.combine c0s c1s with
  | [] -> invalid_arg "Scoap.xor_cc: no inputs"
  | (c0, c1) :: rest -> fold (c0, c1) rest

let compute (c : Circuit.t) =
  let n = Circuit.node_count c in
  let cc0 = Array.make n big and cc1 = Array.make n big in
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      let in0 = Array.to_list (Array.map (fun s -> cc0.(s)) nd.fanin) in
      let in1 = Array.to_list (Array.map (fun s -> cc1.(s)) nd.fanin) in
      let sum xs = cap (List.fold_left ( + ) 0 xs) in
      let mn xs = List.fold_left min big xs in
      let v0, v1 =
        match nd.kind with
        | Gate.Input -> (1, 1)
        | Gate.Buf -> (List.hd in0 + 1, List.hd in1 + 1)
        | Gate.Not -> (List.hd in1 + 1, List.hd in0 + 1)
        | Gate.And -> (mn in0 + 1, sum in1 + 1)
        | Gate.Nand -> (sum in1 + 1, mn in0 + 1)
        | Gate.Or -> (sum in0 + 1, mn in1 + 1)
        | Gate.Nor -> (mn in1 + 1, sum in0 + 1)
        | Gate.Xor ->
            let e, o = xor_cc in0 in1 in
            (e + 1, o + 1)
        | Gate.Xnor ->
            let e, o = xor_cc in0 in1 in
            (o + 1, e + 1)
      in
      cc0.(id) <- cap v0;
      cc1.(id) <- cap v1)
    c.topo_order;
  let obs = Array.make n big in
  Array.iter (fun o -> obs.(o) <- 0) c.outputs;
  (* Reverse topological order: gate observabilities flow to their inputs;
     a multi-fanout stem takes the best branch. *)
  let order = Array.copy c.topo_order in
  let len = Array.length order in
  for i = len - 1 downto 0 do
    let id = order.(i) in
    let nd = c.nodes.(id) in
    if nd.kind <> Gate.Input && obs.(id) < big then begin
      let fanin = nd.fanin in
      Array.iteri
        (fun pin src ->
          let side_cost =
            (* Cost of making every *other* input transparent. *)
            let acc = ref 0 in
            Array.iteri
              (fun p other ->
                if p <> pin then
                  let cost =
                    match Gate.controlling_value nd.kind with
                    | Some ctrl ->
                        (* Others must sit at the non-controlling value. *)
                        if ctrl then cc0.(other) else cc1.(other)
                    | None ->
                        (* XOR-like or single-input: any definite value. *)
                        min cc0.(other) cc1.(other)
                  in
                  acc := cap (!acc + cost))
              fanin;
            !acc
          in
          let through = cap (obs.(id) + side_cost + 1) in
          if through < obs.(src) then obs.(src) <- through)
        fanin
    end
  done;
  { cc0; cc1; obs; circuit = c }

let cc0 t id = t.cc0.(id)
let cc1 t id = t.cc1.(id)
let cc t id v = if v then t.cc1.(id) else t.cc0.(id)
let observability t id = t.obs.(id)

let hardest_faults t n =
  let sites = ref [] in
  Array.iteri
    (fun id _ ->
      (* Stuck-at-0 is excited by driving 1 and vice versa. *)
      sites :=
        (id, false, cap (t.cc1.(id) + t.obs.(id)))
        :: (id, true, cap (t.cc0.(id) + t.obs.(id)))
        :: !sites)
    t.cc0;
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) !sites
  |> List.filteri (fun i _ -> i < n)
