(** Random-pattern test generation phase.

    The paper's vector sequence starts with random vectors ("more than 80%
    fault coverage is in general achieved with random vectors") before the
    deterministic generator tops up.  This module produces that prefix and
    reports which faults remain. *)

open Dl_netlist

type result = {
  vectors : bool array array;      (** The generated sequence, in order. *)
  detected : int;                  (** Faults detected by the sequence. *)
  remaining : Dl_fault.Stuck_at.t array;  (** Faults still undetected. *)
  first_detection : int option array;     (** Indexed like the input faults. *)
}

val run :
  ?seed:int ->
  ?max_vectors:int ->
  ?stale_limit:int ->
  Circuit.t ->
  faults:Dl_fault.Stuck_at.t array ->
  result
(** [run c ~faults] generates uniform random vectors in blocks of 64 until
    either [max_vectors] (default 4096) are applied or [stale_limit]
    (default 512) consecutive vectors detect nothing new. *)
