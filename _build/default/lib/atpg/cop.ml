open Dl_netlist
module Stuck_at = Dl_fault.Stuck_at

type t = {
  circuit : Circuit.t;
  p1 : float array;   (* P[node = 1] *)
  obs : float array;  (* P[change propagates to an output] *)
}

let xor2 a b = (a *. (1.0 -. b)) +. (b *. (1.0 -. a))

let compute ?input_bias (c : Circuit.t) =
  let n = Circuit.node_count c in
  let p1 = Array.make n 0.5 in
  (match input_bias with
  | None -> ()
  | Some bias ->
      if Array.length bias <> Array.length c.inputs then
        invalid_arg "Cop.compute: one bias per primary input required";
      Array.iteri
        (fun i pi ->
          if not (bias.(i) >= 0.0 && bias.(i) <= 1.0) then
            invalid_arg "Cop.compute: bias outside [0,1]";
          p1.(pi) <- bias.(i))
        c.inputs);
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      let ps = Array.map (fun s -> p1.(s)) nd.fanin in
      let prod f = Array.fold_left (fun acc p -> acc *. f p) 1.0 ps in
      let v =
        match nd.kind with
        | Gate.Input -> p1.(id)
        | Gate.Buf -> ps.(0)
        | Gate.Not -> 1.0 -. ps.(0)
        | Gate.And -> prod Fun.id
        | Gate.Nand -> 1.0 -. prod Fun.id
        | Gate.Or -> 1.0 -. prod (fun p -> 1.0 -. p)
        | Gate.Nor -> prod (fun p -> 1.0 -. p)
        | Gate.Xor -> Array.fold_left xor2 0.0 ps
        | Gate.Xnor -> 1.0 -. Array.fold_left xor2 0.0 ps
      in
      p1.(id) <- v)
    c.topo_order;
  (* Sensitization of one input through its gate: probability the other
     inputs sit at non-controlling values. *)
  let sensitization (nd : Circuit.node) pin =
    match nd.kind with
    | Gate.Input -> 0.0
    | Gate.Buf | Gate.Not | Gate.Xor | Gate.Xnor -> 1.0
    | Gate.And | Gate.Nand ->
        let acc = ref 1.0 in
        Array.iteri (fun p src -> if p <> pin then acc := !acc *. p1.(src)) nd.fanin;
        !acc
    | Gate.Or | Gate.Nor ->
        let acc = ref 1.0 in
        Array.iteri
          (fun p src -> if p <> pin then acc := !acc *. (1.0 -. p1.(src)))
          nd.fanin;
        !acc
  in
  let obs = Array.make n 0.0 in
  Array.iter (fun o -> obs.(o) <- 1.0) c.outputs;
  let order = c.topo_order in
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    (* Independent-OR over fanout branches (plus direct observation when the
       node is itself an output, already seeded with 1). *)
    let miss = ref (1.0 -. obs.(id)) in
    Array.iter
      (fun succ ->
        let nd = c.nodes.(succ) in
        Array.iteri
          (fun pin src ->
            if src = id then begin
              let through = obs.(succ) *. sensitization nd pin in
              miss := !miss *. (1.0 -. through)
            end)
          nd.fanin)
      c.fanouts.(id);
    obs.(id) <- 1.0 -. !miss
  done;
  { circuit = c; p1; obs }

let probability_one t id = t.p1.(id)
let observability t id = t.obs.(id)

let detection_probability t (f : Stuck_at.t) =
  let c = t.circuit in
  match f.site with
  | Stuck_at.Stem id ->
      let excite =
        match f.polarity with Stuck_at.Sa0 -> t.p1.(id) | Stuck_at.Sa1 -> 1.0 -. t.p1.(id)
      in
      excite *. t.obs.(id)
  | Stuck_at.Branch { gate; pin } ->
      let src = c.nodes.(gate).fanin.(pin) in
      let excite =
        match f.polarity with
        | Stuck_at.Sa0 -> t.p1.(src)
        | Stuck_at.Sa1 -> 1.0 -. t.p1.(src)
      in
      let nd = c.nodes.(gate) in
      let sens =
        match nd.kind with
        | Gate.Input -> 0.0
        | Gate.Buf | Gate.Not | Gate.Xor | Gate.Xnor -> 1.0
        | Gate.And | Gate.Nand ->
            let acc = ref 1.0 in
            Array.iteri (fun p s -> if p <> pin then acc := !acc *. t.p1.(s)) nd.fanin;
            !acc
        | Gate.Or | Gate.Nor ->
            let acc = ref 1.0 in
            Array.iteri
              (fun p s -> if p <> pin then acc := !acc *. (1.0 -. t.p1.(s)))
              nd.fanin;
            !acc
      in
      excite *. sens *. t.obs.(gate)

let detectabilities t faults =
  Dl_fault.Detectability.of_probabilities
    (Array.map (fun f -> detection_probability t f) faults)

let random_pattern_resistant t (c : Circuit.t) ~threshold =
  let out = ref [] in
  Array.iter
    (fun (nd : Circuit.node) ->
      List.iter
        (fun polarity ->
          let f = { Stuck_at.site = Stuck_at.Stem nd.id; polarity } in
          if detection_probability t f < threshold then out := f :: !out)
        [ Stuck_at.Sa0; Stuck_at.Sa1 ])
    c.nodes;
  List.rev !out
