(** Static test-set compaction by re-ordered fault simulation.

    A vector is kept only if it is the first detector of some fault under
    the simulation order; simulating in *reverse* order (and then in random
    orders) discards vectors whose detections are all covered elsewhere —
    the classical cheap compaction that typically shrinks a
    random-plus-deterministic set severalfold without losing coverage. *)

open Dl_netlist

type stats = {
  original : int;
  compacted : int;
  passes_run : int;
}

val useful_mask :
  Circuit.t ->
  faults:Dl_fault.Stuck_at.t array ->
  vectors:bool array array ->
  order:int array ->
  bool array
(** [useful_mask c ~faults ~vectors ~order]: for the given simulation order
    (a permutation of vector indices), which vectors first-detect at least
    one fault. *)

val compact :
  ?seed:int ->
  ?max_passes:int ->
  Circuit.t ->
  faults:Dl_fault.Stuck_at.t array ->
  vectors:bool array array ->
  bool array array * stats
(** Iterate reverse-order then random-order passes (up to [max_passes],
    default 4) until no vector is dropped.  Coverage on [faults] is
    preserved exactly. *)
