(** PODEM (Goel 1981): complete branch-and-bound deterministic test
    generation for single stuck-at faults, with SCOAP-guided backtrace.

    Stands in for the FAN generator the paper used; both are complete
    stuck-at ATPG algorithms and the defect-level experiment only consumes
    the resulting vector sequence (see DESIGN.md §4). *)

open Dl_netlist

type outcome =
  | Test of bool array
      (** A vector (one bool per PI, [c.inputs] order) detecting the fault;
          don't-care positions are filled deterministically with 0. *)
  | Untestable  (** Search space exhausted: the fault is redundant. *)
  | Aborted  (** Backtrack limit hit before a verdict. *)

val generate :
  ?backtrack_limit:int ->
  ?restarts:int ->
  ?scoap:Scoap.t ->
  Circuit.t ->
  Dl_fault.Stuck_at.t ->
  outcome
(** [generate c fault] runs PODEM for one fault.  [backtrack_limit] defaults
    to 10_000 per attempt; after an abort the search restarts with
    randomized tie-breaking, up to [restarts] (default 4) extra attempts.
    Pass a precomputed [scoap] to amortize testability analysis across
    faults.  Every returned [Test] vector is verified by dual simulation
    before being reported. *)
