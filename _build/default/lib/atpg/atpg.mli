(** Complete test-generation flow as used in the paper's experimental setup:
    "the first vectors are random vectors, being the last vectors
    deterministically generated" (with a complete branch-and-bound
    generator), against the single stuck-at fault model. *)

open Dl_netlist

type stats = {
  total_faults : int;
  random_detected : int;       (** Faults caught by the random prefix. *)
  deterministic_detected : int;(** Additional faults caught by ATPG vectors. *)
  untestable : int;            (** Proved redundant by PODEM. *)
  aborted : int;               (** Backtrack limit reached. *)
  random_vectors : int;
  deterministic_vectors : int;
}

type result = {
  vectors : bool array array;
      (** Full ordered sequence: random prefix then deterministic suffix. *)
  stats : stats;
  coverage : float;            (** Final stuck-at coverage on the fault list. *)
  untestable_faults : Dl_fault.Stuck_at.t array;
      (** Faults PODEM proved redundant. *)
  aborted_faults : Dl_fault.Stuck_at.t array;
      (** Faults abandoned at the backtrack limit (counted as undetected). *)
}

val run :
  ?seed:int ->
  ?max_random:int ->
  ?stale_limit:int ->
  ?backtrack_limit:int ->
  Circuit.t ->
  faults:Dl_fault.Stuck_at.t array ->
  result
(** Generate a test set for the given fault list (typically
    [Stuck_at.collapse c (Stuck_at.universe c)]).  Each deterministic vector
    is fault-simulated against the remaining faults so incidental detections
    drop them too. *)

val full_flow :
  ?seed:int -> ?max_random:int -> Circuit.t -> result * Dl_fault.Stuck_at.t array
(** Convenience: build the collapsed fault universe, run the flow, and
    return the collapsed fault list alongside. *)
