lib/atpg/atpg.mli: Circuit Dl_fault Dl_netlist
