lib/atpg/transition_atpg.ml: Array Circuit Dl_fault Dl_logic Dl_netlist Dl_util List Podem Scoap
