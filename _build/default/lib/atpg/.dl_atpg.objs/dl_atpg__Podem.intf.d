lib/atpg/podem.mli: Circuit Dl_fault Dl_netlist Scoap
