lib/atpg/random_gen.mli: Circuit Dl_fault Dl_netlist
