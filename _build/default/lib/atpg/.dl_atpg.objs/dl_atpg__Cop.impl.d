lib/atpg/cop.ml: Array Circuit Dl_fault Dl_netlist Fun Gate List
