lib/atpg/weighted_random.mli: Circuit Dl_fault Dl_netlist
