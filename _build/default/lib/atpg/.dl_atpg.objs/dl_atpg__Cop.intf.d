lib/atpg/cop.mli: Circuit Dl_fault Dl_netlist
