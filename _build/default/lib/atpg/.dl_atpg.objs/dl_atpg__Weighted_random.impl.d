lib/atpg/weighted_random.ml: Array Circuit Cop Dl_fault Dl_netlist Dl_util
