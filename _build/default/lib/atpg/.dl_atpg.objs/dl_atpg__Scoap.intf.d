lib/atpg/scoap.mli: Circuit Dl_netlist
