lib/atpg/atpg.ml: Array Circuit Dl_fault Dl_netlist List Podem Random_gen Scoap
