lib/atpg/compaction.ml: Array Circuit Dl_fault Dl_netlist Dl_util Fun List
