lib/atpg/podem.ml: Array Circuit Dl_fault Dl_logic Dl_netlist Dl_util Gate Hashtbl List Option Scoap
