lib/atpg/scoap.ml: Array Circuit Dl_netlist Gate List
