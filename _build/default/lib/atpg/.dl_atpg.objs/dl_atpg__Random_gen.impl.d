lib/atpg/random_gen.ml: Array Circuit Dl_fault Dl_netlist Dl_util Fun List Seq
