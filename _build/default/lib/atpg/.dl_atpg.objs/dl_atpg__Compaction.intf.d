lib/atpg/compaction.mli: Circuit Dl_fault Dl_netlist
