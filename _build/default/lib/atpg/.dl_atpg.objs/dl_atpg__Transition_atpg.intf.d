lib/atpg/transition_atpg.mli: Circuit Dl_fault Dl_netlist Scoap
