(** SCOAP testability measures (Goldstein 1979): combinational 0/1
    controllability and observability.  Used to guide PODEM's backtrace and
    reported as a circuit testability profile. *)

open Dl_netlist

type t

val compute : Circuit.t -> t

val cc0 : t -> int -> int
(** Cost of setting node [id] to 0 (>= 1; PIs cost 1). *)

val cc1 : t -> int -> int
(** Cost of setting node [id] to 1. *)

val cc : t -> int -> bool -> int
(** [cc t id v]: {!cc0} or {!cc1} selected by [v]. *)

val observability : t -> int -> int
(** Cost of observing node [id] at a primary output (POs cost 0). *)

val hardest_faults : t -> int -> (int * bool * int) list
(** The [n] costliest (node, stuck-value, detect-cost) sites, where
    detect-cost = controllability of the fault-exciting value plus
    observability — a quick testability hot-spot report. *)
