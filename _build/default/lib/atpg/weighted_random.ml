open Dl_netlist

let expected_coverage (c : Circuit.t) ~faults ~bias ~k =
  let cop = Cop.compute ~input_bias:bias c in
  let d = Cop.detectabilities cop faults in
  Dl_fault.Detectability.expected_coverage d k

let default_levels = [| 0.1; 0.25; 0.5; 0.75; 0.9 |]

let optimize_bias ?(iterations = 2) ?(levels = default_levels) ?(budget = 1024)
    (c : Circuit.t) ~faults =
  if Array.length levels = 0 then invalid_arg "Weighted_random: empty level set";
  Array.iter
    (fun l ->
      if not (l > 0.0 && l < 1.0) then
        invalid_arg "Weighted_random: bias levels must be in (0, 1)")
    levels;
  let npi = Circuit.input_count c in
  let bias = Array.make npi 0.5 in
  let score () = expected_coverage c ~faults ~bias ~k:budget in
  let best = ref (score ()) in
  for _ = 1 to iterations do
    for pi = 0 to npi - 1 do
      let keep = bias.(pi) in
      let best_level = ref keep in
      Array.iter
        (fun level ->
          bias.(pi) <- level;
          let s = score () in
          if s > !best +. 1e-12 then begin
            best := s;
            best_level := level
          end)
        levels;
      bias.(pi) <- !best_level
    done
  done;
  bias

let generate ?(seed = 1) (c : Circuit.t) ~bias ~count =
  if Array.length bias <> Circuit.input_count c then
    invalid_arg "Weighted_random.generate: one bias per primary input required";
  if count < 0 then invalid_arg "Weighted_random.generate: negative count";
  let rng = Dl_util.Rng.create seed in
  Array.init count (fun _ ->
      Array.map (fun p -> Dl_util.Rng.bernoulli rng p) bias)
