(** Weighted-random test generation: bias each primary input's
    1-probability to maximize the detection probability of the hard
    (random-pattern-resistant) faults, instead of sampling uniformly —
    the classical remedy when eq. 7's susceptibility is poor.

    The optimizer is a coordinate ascent over input biases scored by the
    COP-estimated coverage of the target faults after a fixed budget of
    vectors. *)

open Dl_netlist

val optimize_bias :
  ?iterations:int ->
  ?levels:float array ->
  ?budget:int ->
  Circuit.t ->
  faults:Dl_fault.Stuck_at.t array ->
  float array
(** [optimize_bias c ~faults] returns one 1-probability per primary input.
    [levels] is the candidate bias alphabet (default
    [|0.1; 0.25; 0.5; 0.75; 0.9|]); [budget] the vector count the score
    targets (default 1024); [iterations] full coordinate sweeps
    (default 2). *)

val generate :
  ?seed:int -> Circuit.t -> bias:float array -> count:int -> bool array array
(** Sample [count] vectors with the given per-input biases. *)

val expected_coverage :
  Circuit.t -> faults:Dl_fault.Stuck_at.t array -> bias:float array -> k:int -> float
(** COP-predicted coverage of [faults] after [k] biased vectors (the
    optimizer's objective, exposed for inspection). *)
