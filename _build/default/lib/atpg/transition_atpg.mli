(** Two-pattern test generation for transition faults: the capture vector
    comes from PODEM on the reduced stuck-at fault, the launch vector from
    justifying the opposite value at the fault node (a PODEM run with the
    node's complementary stuck-at, which forces the line to the launch
    value; a random-fill fallback covers the trivial cases). *)

open Dl_netlist

type outcome =
  | Pair of bool array * bool array  (** (launch, capture), verified. *)
  | Untestable
      (** The reduced stuck-at is redundant or the launch value is
          unjustifiable. *)
  | Aborted

val generate :
  ?seed:int ->
  ?backtrack_limit:int ->
  ?scoap:Scoap.t ->
  Circuit.t ->
  Dl_fault.Transition.t ->
  outcome

type result = {
  pairs : (bool array * bool array) array;
  coverage : float;
  untestable : int;
  aborted : int;
}

val run :
  ?seed:int -> Circuit.t -> faults:Dl_fault.Transition.t array -> result
(** Generate pairs for every fault, fault-simulating each accepted pair
    against the remaining faults (two-pattern dropping). *)
