open Dl_netlist
module Ternary = Dl_logic.Ternary
module Sim3 = Dl_logic.Sim3
module Stuck_at = Dl_fault.Stuck_at

type outcome = Test of bool array | Untestable | Aborted

type state = {
  circuit : Circuit.t;
  scoap : Scoap.t;
  fault : Stuck_at.t;
  fault_line : int; (* node whose good value must be the fault complement *)
  stuck : bool;
  pi_values : Ternary.t array;
  pi_position : (int, int) Hashtbl.t; (* node id -> PI position *)
  rng : Dl_util.Rng.t option;
      (* randomized tie-breaking for restart diversification *)
  mutable good : Ternary.t array;
  mutable bad : Ternary.t array;
}

(* With a restart rng, occasionally take a non-greedy choice so successive
   attempts explore different regions of the decision tree. *)
let diversify st best alternatives =
  match st.rng with
  | None -> best
  | Some rng ->
      if alternatives <> [] && Dl_util.Rng.bernoulli rng 0.3 then
        Dl_util.Rng.choose rng (Array.of_list alternatives)
      else best

let is_x = function Ternary.VX -> true | Ternary.V0 | Ternary.V1 -> false

let has_d st id =
  match (st.good.(id), st.bad.(id)) with
  | Ternary.V0, Ternary.V1 | Ternary.V1, Ternary.V0 -> true
  | _ -> false

let simulate st =
  st.good <- Sim3.run st.circuit st.pi_values;
  st.bad <-
    Sim3.run_with_fault st.circuit
      ~site:(Stuck_at.to_sim3_site st.fault.site)
      ~stuck:st.stuck st.pi_values

let po_has_d st = Array.exists (fun o -> has_d st o) st.circuit.outputs

(* For a branch fault the difference is born inside the host gate: once the
   source line carries the fault complement, the host gate belongs to the
   frontier even though no fanin shows a D. *)
let host_gate_activated st =
  match st.fault.site with
  | Stuck_at.Branch { gate; _ } ->
      if Ternary.to_bool st.good.(st.fault_line) = Some (not st.stuck) then Some gate
      else None
  | Stuck_at.Stem _ -> None

let d_frontier st =
  let c = st.circuit in
  let frontier = ref [] in
  Array.iter
    (fun (nd : Circuit.node) ->
      if
        nd.kind <> Gate.Input
        && (not (has_d st nd.id))
        && (is_x st.good.(nd.id) || is_x st.bad.(nd.id))
        && (Array.exists (fun src -> has_d st src) nd.fanin
           || host_gate_activated st = Some nd.id)
      then frontier := nd.id :: !frontier)
    c.nodes;
  (* Prefer gates closest to an output. *)
  List.sort
    (fun a b -> compare (Scoap.observability st.scoap a) (Scoap.observability st.scoap b))
    !frontier

(* Can a difference still reach a primary output?  Forward search from D
   nodes through X-valued nodes. *)
let x_path_exists st =
  let c = st.circuit in
  let n = Circuit.node_count c in
  let visited = Array.make n false in
  (* Every node along the path must still be undetermined in at least one
     machine, or the difference cannot travel through it. *)
  let x_ish id = is_x st.good.(id) || is_x st.bad.(id) in
  let rec forward id =
    if visited.(id) || not (x_ish id) then false
    else begin
      visited.(id) <- true;
      if Circuit.is_output c id then true
      else Array.exists forward c.fanouts.(id)
    end
  in
  let from_node id = Array.exists forward c.fanouts.(id) in
  let any = ref false in
  Array.iteri
    (fun id _ ->
      if (not !any) && has_d st id then
        if Circuit.is_output c id || from_node id then any := true)
    c.nodes;
  (* A still-unobserved branch fault can reach out through its host gate. *)
  (match host_gate_activated st with
  | Some gate when not !any ->
      if
        (is_x st.good.(gate) || is_x st.bad.(gate))
        && (Circuit.is_output c gate || forward gate)
      then any := true
  | _ -> ());
  !any

(* Backtrace an objective (node, value) to an unassigned primary input,
   guided by SCOAP controllabilities. *)
let backtrace st node value =
  let c = st.circuit in
  let rec walk id v depth =
    if depth > Circuit.node_count c then None
    else begin
      let nd = c.nodes.(id) in
      match nd.kind with
      | Gate.Input -> (
          match Hashtbl.find_opt st.pi_position id with
          | Some pos when is_x st.pi_values.(pos) -> Some (pos, v)
          | _ -> None)
      | Gate.Buf -> walk nd.fanin.(0) v (depth + 1)
      | Gate.Not -> walk nd.fanin.(0) (not v) (depth + 1)
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
          let inverts = Gate.inversion nd.kind in
          let core_target = if inverts then not v else v in
          let ctrl =
            match Gate.controlling_value nd.kind with
            | Some b -> b
            | None -> assert false
          in
          let x_pins =
            Array.to_list nd.fanin |> List.filter (fun src -> is_x st.good.(src))
          in
          (match x_pins with
          | [] -> None
          | _ ->
              (* AND core: target 1 needs all inputs non-controlling (pick the
                 hardest X input first); target 0 needs any input controlling
                 (pick the easiest). Same logic covers OR by duality. *)
              let all_needed = core_target <> Gate.controlled_response nd.kind in
              let needed_value = if all_needed then not ctrl else ctrl in
              let cost src = Scoap.cc st.scoap src needed_value in
              let pick =
                List.fold_left
                  (fun best src ->
                    match best with
                    | None -> Some src
                    | Some cur ->
                        let better =
                          if all_needed then cost src > cost cur
                          else cost src < cost cur
                        in
                        if better then Some src else best)
                  None x_pins
              in
              (match pick with
              | Some src -> walk (diversify st src x_pins) needed_value (depth + 1)
              | None -> None))
      | Gate.Xor | Gate.Xnor ->
          let parity_target = if nd.kind = Gate.Xnor then not v else v in
          let definite_parity =
            Array.fold_left
              (fun acc src ->
                match st.good.(src) with
                | Ternary.V1 -> not acc
                | Ternary.V0 | Ternary.VX -> acc)
              false nd.fanin
          in
          let x_pins =
            Array.to_list nd.fanin |> List.filter (fun src -> is_x st.good.(src))
          in
          (match x_pins with
          | [] -> None
          | src :: _ ->
              (* Aim the chosen input so that parity closes if the remaining
                 X inputs settle at 0. *)
              let v' = parity_target <> definite_parity in
              walk src v' (depth + 1))
    end
  in
  walk node value 0

let fill_vector st =
  Array.map
    (fun v -> match v with Ternary.V1 -> true | Ternary.V0 | Ternary.VX -> false)
    st.pi_values

let generate_once ?(backtrack_limit = 10_000) ~scoap ?rng (c : Circuit.t)
    (fault : Stuck_at.t) =
  let fault_line =
    match fault.site with
    | Stuck_at.Stem id -> id
    | Stuck_at.Branch { gate; pin } -> c.nodes.(gate).fanin.(pin)
  in
  let pi_position = Hashtbl.create 16 in
  Array.iteri (fun pos id -> Hashtbl.replace pi_position id pos) c.inputs;
  let st =
    {
      circuit = c;
      scoap;
      fault;
      fault_line;
      stuck = Stuck_at.polarity_bool fault.polarity;
      pi_values = Array.make (Array.length c.inputs) Ternary.VX;
      pi_position;
      rng;
      good = [||];
      bad = [||];
    }
  in
  (* Decision stack: (pi position, current value, already flipped). *)
  let stack = ref [] in
  let backtracks = ref 0 in
  let result = ref None in
  let conflict () =
    let rec unwind () =
      match !stack with
      | [] -> result := Some Untestable
      | (pos, v, flipped) :: rest ->
          if flipped then begin
            st.pi_values.(pos) <- Ternary.VX;
            stack := rest;
            unwind ()
          end
          else begin
            incr backtracks;
            if !backtracks > backtrack_limit then result := Some Aborted
            else begin
              let v' = not v in
              st.pi_values.(pos) <- Ternary.of_bool v';
              stack := (pos, v', true) :: rest
            end
          end
    in
    unwind ()
  in
  while !result = None do
    simulate st;
    if po_has_d st then result := Some (Test (fill_vector st))
    else begin
      let line_good = st.good.(st.fault_line) in
      let excitation_lost =
        match Ternary.to_bool line_good with
        | Some v -> v = st.stuck
        | None -> false
      in
      if excitation_lost then conflict ()
      else if is_x line_good then begin
        (* Activation objective: drive the fault line to the complement. *)
        match backtrace st st.fault_line (not st.stuck) with
        | Some (pos, v) ->
            st.pi_values.(pos) <- Ternary.of_bool v;
            stack := (pos, v, false) :: !stack
        | None -> conflict ()
      end
      else begin
        (* Activated but not yet observed: extend an X-path via the
           D-frontier. *)
        match d_frontier st with
        | [] -> conflict ()
        | frontier ->
            if not (x_path_exists st) then conflict ()
            else begin
              (* Pick the first frontier gate that yields a feasible
                 objective. *)
              let rec try_gates = function
                | [] -> conflict ()
                | gate :: rest -> (
                    let nd = c.nodes.(gate) in
                    let objective =
                      match Gate.controlling_value nd.kind with
                      | Some ctrl ->
                          Array.to_list nd.fanin
                          |> List.find_opt (fun src -> is_x st.good.(src))
                          |> Option.map (fun src -> (src, not ctrl))
                      | None ->
                          Array.to_list nd.fanin
                          |> List.find_opt (fun src -> is_x st.good.(src))
                          |> Option.map (fun src -> (src, false))
                    in
                    match objective with
                    | None -> try_gates rest
                    | Some (node, v) -> (
                        match backtrace st node v with
                        | Some (pos, pv) ->
                            st.pi_values.(pos) <- Ternary.of_bool pv;
                            stack := (pos, pv, false) :: !stack
                        | None -> try_gates rest))
              in
              try_gates frontier
            end
      end
    end
  done;
  match !result with
  | Some (Test vector) ->
      (* Defensive verification through an independent oracle. *)
      if Dl_fault.Fault_sim.detects_fault c fault vector then Test vector
      else Aborted
  | Some other -> other
  | None -> Aborted


(* Chronological backtracking thrashes on heavily reconvergent cones;
   randomized restarts recover most aborts cheaply (the deterministic pass
   runs first, so easy faults are unaffected). *)
let generate ?(backtrack_limit = 10_000) ?(restarts = 4) ?scoap (c : Circuit.t)
    (fault : Stuck_at.t) =
  let scoap = match scoap with Some s -> s | None -> Scoap.compute c in
  let rec attempt i =
    let rng = if i = 0 then None else Some (Dl_util.Rng.create (i * 7919)) in
    match generate_once ~backtrack_limit ~scoap ?rng c fault with
    | Aborted when i < restarts -> attempt (i + 1)
    | outcome -> outcome
  in
  attempt 0
