open Dl_netlist
module Transition = Dl_fault.Transition
module Stuck_at = Dl_fault.Stuck_at

type outcome = Pair of bool array * bool array | Untestable | Aborted

let launch_value (f : Transition.t) =
  match f.edge with Transition.Rise -> false | Transition.Fall -> true

let reduced_stuck (f : Transition.t) =
  match f.edge with
  | Transition.Rise -> { Stuck_at.site = Stuck_at.Stem f.node; polarity = Stuck_at.Sa0 }
  | Transition.Fall -> { Stuck_at.site = Stuck_at.Stem f.node; polarity = Stuck_at.Sa1 }

(* Find a vector setting [node] to [value]: cheap random probing first, then
   a PODEM run on the complementary stuck-at (whose activation forces the
   node to [value]). *)
let justify ?(seed = 1) ?backtrack_limit ?scoap (c : Circuit.t) ~node ~value =
  let rng = Dl_util.Rng.create seed in
  let npi = Circuit.input_count c in
  let rec probe tries =
    if tries = 0 then None
    else begin
      let v = Array.init npi (fun _ -> Dl_util.Rng.bool rng) in
      if (Dl_logic.Sim2.run_single c v).(node) = value then Some v else probe (tries - 1)
    end
  in
  match probe 128 with
  | Some v -> Some v
  | None -> (
      let complement =
        {
          Stuck_at.site = Stuck_at.Stem node;
          polarity = (if value then Stuck_at.Sa0 else Stuck_at.Sa1);
        }
      in
      match Podem.generate ?backtrack_limit ?scoap c complement with
      | Podem.Test v -> Some v
      | Podem.Untestable | Podem.Aborted -> None)

let generate ?(seed = 1) ?backtrack_limit ?scoap (c : Circuit.t)
    (f : Transition.t) =
  match Podem.generate ?backtrack_limit ?scoap c (reduced_stuck f) with
  | Podem.Untestable -> Untestable
  | Podem.Aborted -> Aborted
  | Podem.Test capture -> (
      match justify ~seed ?backtrack_limit ?scoap c ~node:f.node ~value:(launch_value f) with
      | None -> Untestable
      | Some launch ->
          if Transition.detects_pair c f ~v1:launch ~v2:capture then
            Pair (launch, capture)
          else Aborted)

type result = {
  pairs : (bool array * bool array) array;
  coverage : float;
  untestable : int;
  aborted : int;
}

let run ?(seed = 1) (c : Circuit.t) ~faults =
  let scoap = Scoap.compute c in
  let n = Array.length faults in
  let live = Array.make n true in
  let pairs = ref [] in
  let untestable = ref 0 and aborted = ref 0 and detected = ref 0 in
  for i = 0 to n - 1 do
    if live.(i) then begin
      match generate ~seed:(seed + i) ~scoap c faults.(i) with
      | Untestable ->
          incr untestable;
          live.(i) <- false
      | Aborted ->
          incr aborted;
          live.(i) <- false
      | Pair (v1, v2) ->
          pairs := (v1, v2) :: !pairs;
          (* Two-pattern dropping: the pair may detect other live faults. *)
          for j = 0 to n - 1 do
            if live.(j) && Transition.detects_pair c faults.(j) ~v1 ~v2 then begin
              live.(j) <- false;
              incr detected
            end
          done
    end
  done;
  let coverage =
    if n = 0 then 1.0 else float_of_int !detected /. float_of_int n
  in
  { pairs = Array.of_list (List.rev !pairs); coverage; untestable = !untestable;
    aborted = !aborted }
