(** COP probabilistic testability (Brglez's Controllability/Observability
    Program): signal 1-probabilities and observabilities computed in one
    topological pass under an input-independence assumption, and the
    per-fault detection probabilities they induce (STAFAN-style).

    These are the analytic counterparts of the Monte-Carlo estimates in
    {!Dl_fault.Detectability}; on fanout-reconvergent circuits they are
    approximations (correlation is ignored), which is exactly why the
    empirical route exists.  Together they ground the paper's
    susceptibility parameter [s] (eq. 7) in circuit structure. *)

open Dl_netlist

type t

val compute : ?input_bias:float array -> Circuit.t -> t
(** [input_bias] gives each primary input's 1-probability (default 0.5
    everywhere, i.e. uniform random patterns). *)

val probability_one : t -> int -> float
(** P[node = 1] under random inputs. *)

val observability : t -> int -> float
(** P[a value change at the node propagates to some output] (COP
    approximation; 1.0 at primary outputs). *)

val detection_probability : t -> Dl_fault.Stuck_at.t -> float
(** STAFAN estimate: excitation probability times observability of the
    fault site. *)

val detectabilities : t -> Dl_fault.Stuck_at.t array -> Dl_fault.Detectability.t
(** Package per-fault estimates for the coverage-curve machinery. *)

val random_pattern_resistant : t -> Circuit.t -> threshold:float -> Dl_fault.Stuck_at.t list
(** Stuck-at stem faults whose estimated detection probability falls below
    [threshold] — the deterministic-ATPG workload predictor. *)
