type binning =
  | Linear of { lo : float; hi : float; bins : int }
  | Log10 of { lo : float; hi : float; bins : int }

type t = {
  binning : binning;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
}

let bins_of = function Linear { bins; _ } | Log10 { bins; _ } -> bins

let create binning =
  (match binning with
  | Linear { lo; hi; bins } ->
      if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
      if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi"
  | Log10 { lo; hi; bins } ->
      if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
      if not (lo > 0.0 && lo < hi) then
        invalid_arg "Histogram.create: need 0 < lo < hi");
  { binning; counts = Array.make (bins_of binning) 0; underflow = 0; overflow = 0 }

(* Map a value to a fractional bin position in [0, bins). *)
let position t x =
  match t.binning with
  | Linear { lo; hi; bins } ->
      (x -. lo) /. (hi -. lo) *. float_of_int bins
  | Log10 { lo; hi; bins } ->
      if x <= 0.0 then -1.0
      else (log10 x -. log10 lo) /. (log10 hi -. log10 lo) *. float_of_int bins

let add t x =
  let bins = Array.length t.counts in
  let p = position t x in
  if p < 0.0 then t.underflow <- t.underflow + 1
  else begin
    let i = int_of_float p in
    if i >= bins then
      (* The right edge itself belongs to the last bin. *)
      if p = float_of_int bins then t.counts.(bins - 1) <- t.counts.(bins - 1) + 1
      else t.overflow <- t.overflow + 1
    else t.counts.(i) <- t.counts.(i) + 1
  end

let add_many t xs = Array.iter (add t) xs

let counts t = Array.copy t.counts
let underflow t = t.underflow
let overflow t = t.overflow

let total t = t.underflow + t.overflow + Array.fold_left ( + ) 0 t.counts

let bin_edges t =
  let bins = Array.length t.counts in
  match t.binning with
  | Linear { lo; hi; _ } ->
      Array.init (bins + 1) (fun i ->
          lo +. ((hi -. lo) *. float_of_int i /. float_of_int bins))
  | Log10 { lo; hi; _ } ->
      let llo = log10 lo and lhi = log10 hi in
      Array.init (bins + 1) (fun i ->
          10.0 ** (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int bins)))

let bin_center t i =
  let edges = bin_edges t in
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bin_center: index out of range";
  match t.binning with
  | Linear _ -> (edges.(i) +. edges.(i + 1)) /. 2.0
  | Log10 _ -> sqrt (edges.(i) *. edges.(i + 1))

let mode_bin t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best

let to_rows t =
  let edges = bin_edges t in
  Array.to_list (Array.mapi (fun i c -> (edges.(i), edges.(i + 1), c)) t.counts)

let render ?(width = 50) t =
  let peak = Array.fold_left max 1 t.counts in
  let buf = Buffer.create 256 in
  List.iter
    (fun (lo, hi, c) ->
      let bar = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%10.3e, %10.3e) %6d %s\n" lo hi c (String.make bar '#')))
    (to_rows t);
  if t.underflow > 0 then
    Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.underflow);
  if t.overflow > 0 then
    Buffer.add_string buf (Printf.sprintf "overflow %d\n" t.overflow);
  Buffer.contents buf
