type data = { xs : float array; ys : float array }

let make_data pts =
  if pts = [] then invalid_arg "Fit.make_data: empty data";
  let xs = Array.of_list (List.map fst pts) in
  let ys = Array.of_list (List.map snd pts) in
  { xs; ys }

type fit = {
  params : float array;
  rss : float;
  rmse : float;
  converged : bool;
}

let residual_sum ~model ~weights data p =
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let r = model p x -. data.ys.(i) in
      let w = match weights with None -> 1.0 | Some w -> w.(i) in
      let term = w *. r *. r in
      if Float.is_nan term then acc := infinity else acc := !acc +. term)
    data.xs;
  !acc

let run ?tol ?max_iter ~model ~weights ~lo ~hi ~init data =
  if Array.length data.xs <> Array.length data.ys then
    invalid_arg "Fit.curve_fit: xs and ys differ in length";
  if Array.length data.xs = 0 then invalid_arg "Fit.curve_fit: empty data";
  (match weights with
  | Some w when Array.length w <> Array.length data.xs ->
      invalid_arg "Fit.curve_fit_weighted: weights length mismatch"
  | _ -> ());
  let objective p = residual_sum ~model ~weights data p in
  let r = Simplex.minimize_bounded ?tol ?max_iter ~f:objective ~lo ~hi init in
  let n = float_of_int (Array.length data.xs) in
  { params = r.xmin; rss = r.fmin; rmse = sqrt (r.fmin /. n); converged = r.converged }

let curve_fit ?tol ?max_iter ~model ~lo ~hi ~init data =
  run ?tol ?max_iter ~model ~weights:None ~lo ~hi ~init data

let curve_fit_weighted ?tol ?max_iter ~model ~weights ~lo ~hi ~init data =
  run ?tol ?max_iter ~model ~weights:(Some weights) ~lo ~hi ~init data
