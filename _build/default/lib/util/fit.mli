(** Least-squares curve fitting of parametric models to sampled data,
    built on {!Simplex}.  This is how the paper determines [R] and [θmax]
    ("the parameters R and θmax can be determined by experimental curve
    fitting") and how Agrawal's [n] is obtained. *)

type data = { xs : float array; ys : float array }

val make_data : (float * float) list -> data
(** Build a data set from point pairs.  Raises on empty input. *)

type fit = {
  params : float array;  (** Fitted parameter vector. *)
  rss : float;           (** Residual sum of squares at the optimum. *)
  rmse : float;          (** Root mean squared residual. *)
  converged : bool;
}

val curve_fit :
  ?tol:float ->
  ?max_iter:int ->
  model:(float array -> float -> float) ->
  lo:float array ->
  hi:float array ->
  init:float array ->
  data ->
  fit
(** [curve_fit ~model ~lo ~hi ~init data] minimizes
    [Σ_i (model p xs.(i) - ys.(i))²] over the box [\[lo, hi\]]. *)

val curve_fit_weighted :
  ?tol:float ->
  ?max_iter:int ->
  model:(float array -> float -> float) ->
  weights:float array ->
  lo:float array ->
  hi:float array ->
  init:float array ->
  data ->
  fit
(** Weighted variant: residual [i] is scaled by [sqrt weights.(i)]. Useful
    when fitting defect levels spanning several decades (weight ∝ 1/y²
    approximates a relative-error fit). *)
