lib/util/stats.mli:
