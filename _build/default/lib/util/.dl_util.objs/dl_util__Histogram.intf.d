lib/util/histogram.mli:
