lib/util/table.mli:
