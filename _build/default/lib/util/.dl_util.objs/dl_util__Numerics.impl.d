lib/util/numerics.ml: Float
