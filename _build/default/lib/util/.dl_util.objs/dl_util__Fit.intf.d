lib/util/fit.mli:
