lib/util/simplex.mli:
