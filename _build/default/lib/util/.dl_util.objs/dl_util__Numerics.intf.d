lib/util/numerics.mli:
