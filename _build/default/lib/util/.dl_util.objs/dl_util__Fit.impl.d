lib/util/fit.ml: Array Float List Simplex
