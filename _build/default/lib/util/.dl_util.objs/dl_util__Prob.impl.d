lib/util/prob.ml: Array Float Rng
