lib/util/rng.mli:
