lib/util/prob.mli: Rng
