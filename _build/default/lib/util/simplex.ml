type result = {
  xmin : float array;
  fmin : float;
  iterations : int;
  converged : bool;
}

let alpha = 1.0 (* reflection *)
let gamma = 2.0 (* expansion *)
let rho = 0.5 (* contraction *)
let sigma = 0.5 (* shrink *)

let minimize ?(tol = 1e-10) ?(max_iter = 2000) ?(step = 0.1) ~f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Simplex.minimize: empty start point";
  (* n+1 vertices: x0 plus one perturbation per coordinate. *)
  let vertex i =
    if i = 0 then Array.copy x0
    else begin
      let v = Array.copy x0 in
      let j = i - 1 in
      let delta =
        let rel = step *. Float.abs v.(j) in
        if rel > 0.0 then rel else step
      in
      v.(j) <- v.(j) +. delta;
      v
    end
  in
  let xs = Array.init (n + 1) vertex in
  let fs = Array.map f xs in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> compare fs.(a) fs.(b)) idx;
    let xs' = Array.map (fun i -> xs.(i)) idx in
    let fs' = Array.map (fun i -> fs.(i)) idx in
    Array.blit xs' 0 xs 0 (n + 1);
    Array.blit fs' 0 fs 0 (n + 1)
  in
  let centroid () =
    (* Centroid of all vertices except the worst (last after ordering). *)
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (xs.(i).(j) /. float_of_int n)
      done
    done;
    c
  in
  let combine c x coef =
    Array.init n (fun j -> c.(j) +. (coef *. (c.(j) -. x.(j))))
  in
  let diameter () =
    let d = ref 0.0 in
    for i = 1 to n do
      for j = 0 to n - 1 do
        d := Float.max !d (Float.abs (xs.(i).(j) -. xs.(0).(j)))
      done
    done;
    !d
  in
  let iterations = ref 0 in
  order ();
  let converged = ref (diameter () <= tol) in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let c = centroid () in
    let xr = combine c xs.(n) alpha in
    let fr = f xr in
    if fr < fs.(0) then begin
      let xe = combine c xs.(n) gamma in
      let fe = f xe in
      if fe < fr then begin
        xs.(n) <- xe;
        fs.(n) <- fe
      end
      else begin
        xs.(n) <- xr;
        fs.(n) <- fr
      end
    end
    else if fr < fs.(n - 1) then begin
      xs.(n) <- xr;
      fs.(n) <- fr
    end
    else begin
      (* Contract toward the centroid; on failure shrink toward the best. *)
      let xc =
        if fr < fs.(n) then combine c xs.(n) (rho *. alpha)
        else Array.init n (fun j -> c.(j) -. (rho *. (c.(j) -. xs.(n).(j))))
      in
      let fc = f xc in
      if fc < Float.min fr fs.(n) then begin
        xs.(n) <- xc;
        fs.(n) <- fc
      end
      else
        for i = 1 to n do
          xs.(i) <-
            Array.init n (fun j -> xs.(0).(j) +. (sigma *. (xs.(i).(j) -. xs.(0).(j))));
          fs.(i) <- f xs.(i)
        done
    end;
    order ();
    if diameter () <= tol then converged := true
  done;
  { xmin = Array.copy xs.(0); fmin = fs.(0); iterations = !iterations; converged = !converged }

let minimize_bounded ?tol ?max_iter ~f ~lo ~hi x0 =
  let n = Array.length x0 in
  if Array.length lo <> n || Array.length hi <> n then
    invalid_arg "Simplex.minimize_bounded: bound arrays must match x0";
  Array.iteri
    (fun i l -> if l > hi.(i) then invalid_arg "Simplex.minimize_bounded: lo > hi")
    lo;
  let project x = Array.mapi (fun i v -> Numerics.clamp ~lo:lo.(i) ~hi:hi.(i) v) x in
  let f_clamped x = f (project x) in
  let x0 = project x0 in
  let r = minimize ?tol ?max_iter ~f:f_clamped x0 in
  { r with xmin = project r.xmin; fmin = f (project r.xmin) }
