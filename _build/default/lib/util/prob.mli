(** Discrete probability distributions used by the yield and defect-count
    models (Poisson defect statistics, Stapper's negative-binomial clustered
    yield, Agrawal's faults-per-faulty-chip distribution). *)

val log_factorial : int -> float
(** [ln n!] via lgamma-style accumulation; exact for small [n]. *)

val poisson_pmf : lambda:float -> int -> float
(** P[N = k] for N ~ Poisson(lambda). *)

val poisson_cdf : lambda:float -> int -> float

val poisson_sample : Rng.t -> lambda:float -> int
(** Inversion for small lambda, normal approximation above 500. *)

val negative_binomial_pmf : mean:float -> alpha:float -> int -> float
(** Stapper's clustered defect count: gamma-mixed Poisson with clustering
    parameter [alpha] ([alpha -> infinity] recovers Poisson). *)

val binomial_pmf : n:int -> p:float -> int -> float

val truncated_poisson_mean : lambda:float -> float
(** E[N | N >= 1] for N ~ Poisson(lambda): the average number of faults on a
    *faulty* chip, the [n] parameter of Agrawal's model (eq. 2). *)
