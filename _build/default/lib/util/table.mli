(** Aligned ASCII tables for benchmark and example output. *)

type align = Left | Right

type t

val create : (string * align) list -> t
(** [create columns] starts a table with the given headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have exactly as many cells as there are columns. *)

val add_float_row : t -> ?fmt:(float -> string) -> float list -> unit
(** Convenience: formats every cell with [fmt] (default [%.6g]). *)

val render : t -> string
(** Render with a header rule, columns padded to the widest cell. *)

val print : t -> unit
(** [render] to stdout. *)

val fmt_pct : float -> string
(** Fraction as percent with two decimals, e.g. [0.977 -> "97.70%"]. *)

val fmt_ppm : float -> string
(** Fraction as ppm with one decimal, e.g. [1e-4 -> "100.0 ppm"]. *)

val fmt_sci : float -> string
(** Scientific notation with three significant digits. *)
