type align = Left | Right

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : string list list; (* reversed *)
}

let create columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  {
    headers = Array.of_list (List.map fst columns);
    aligns = Array.of_list (List.map snd columns);
    rows = [];
  }

let add_row t cells =
  if List.length cells <> Array.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let default_float_fmt x = Printf.sprintf "%.6g" x

let add_float_row t ?(fmt = default_float_fmt) values =
  add_row t (List.map fmt values)

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let pad i cell =
    let w = widths.(i) in
    let fill = String.make (w - String.length cell) ' ' in
    match t.aligns.(i) with Left -> cell ^ fill | Right -> fill ^ cell
  in
  let line cells =
    String.concat "  " (List.mapi pad cells)
  in
  let rule =
    String.concat "  "
      (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line (Array.to_list t.headers));
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_pct x = Printf.sprintf "%.2f%%" (100.0 *. x)
let fmt_ppm x = Printf.sprintf "%.1f ppm" (1e6 *. x)
let fmt_sci x = Printf.sprintf "%.3e" x
