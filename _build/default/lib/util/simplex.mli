(** Nelder–Mead downhill simplex minimization for low-dimensional parameter
    fitting (the paper fits [(R, θmax)] and the Agrawal [n] by curve
    fitting; we do the same numerically). *)

type result = {
  xmin : float array;  (** Minimizing point. *)
  fmin : float;        (** Objective value at [xmin]. *)
  iterations : int;
  converged : bool;    (** Simplex diameter reached [tol] before [max_iter]. *)
}

val minimize :
  ?tol:float ->
  ?max_iter:int ->
  ?step:float ->
  f:(float array -> float) ->
  float array ->
  result
(** [minimize ~f x0] minimizes [f] starting from [x0].  [step] scales the
    initial simplex (default 0.1 relative, with an absolute floor). The
    objective may return [infinity] to reject out-of-domain points. *)

val minimize_bounded :
  ?tol:float ->
  ?max_iter:int ->
  f:(float array -> float) ->
  lo:float array ->
  hi:float array ->
  float array ->
  result
(** Box-constrained variant: points outside [\[lo, hi\]] are clamped before
    evaluation and the returned minimizer lies inside the box. *)
