(** Scalar numerical routines: robust special functions and root finding.

    The defect-level formulas mix exponentials over huge dynamic ranges
    (weights down to 1e-9, ppm-level defect levels), so the helpers here
    avoid catastrophic cancellation where the naive formula would lose all
    precision. *)

val log1p : float -> float
(** Accurate [log (1 + x)] near zero. *)

val expm1 : float -> float
(** Accurate [exp x - 1] near zero. *)

val clamp : lo:float -> hi:float -> float -> float

val clamp01 : float -> float

val pow1m : float -> float -> float
(** [pow1m y e] computes [y ** e] as [exp (e * log y)] with the conventions
    [pow1m 0. 0. = 1.] and exact endpoints; requires [y >= 0]. *)

val close : ?rtol:float -> ?atol:float -> float -> float -> bool
(** Approximate float comparison: [|a-b| <= atol + rtol * max |a| |b|].
    Defaults: [rtol = 1e-9], [atol = 1e-12]. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds a root of [f] in [\[lo, hi\]].  Requires a sign
    change over the bracket. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** Brent's method: superlinear bracketed root finding.  Same contract as
    {!bisect}, substantially fewer evaluations on smooth functions. *)

val golden_min :
  ?tol:float -> f:(float -> float) -> float -> float -> float
(** Golden-section minimization of a unimodal function on [\[lo, hi\]];
    returns the abscissa of the minimum. *)

val integrate :
  ?steps:int -> f:(float -> float) -> float -> float -> float
(** Composite Simpson integration of [f] on [\[lo, hi\]]. [steps] is rounded
    up to an even count (default 1024). *)

val ppm : float -> float
(** Convert a fraction to parts-per-million. *)

val of_ppm : float -> float
(** Convert parts-per-million to a fraction. *)
