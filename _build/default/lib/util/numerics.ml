let log1p = Float.log1p
let expm1 = Float.expm1

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)
let clamp01 x = clamp ~lo:0.0 ~hi:1.0 x

let pow1m y e =
  if y < 0.0 then invalid_arg "Numerics.pow1m: negative base";
  if y = 0.0 then (if e = 0.0 then 1.0 else 0.0)
  else if e = 0.0 then 1.0
  else if e = 1.0 then y
  else exp (e *. log y)

let close ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let check_bracket name f lo hi =
  if not (lo <= hi) then invalid_arg (name ^ ": need lo <= hi");
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then `Root lo
  else if fhi = 0.0 then `Root hi
  else if flo *. fhi > 0.0 then invalid_arg (name ^ ": no sign change over bracket")
  else `Bracket (flo, fhi)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  match check_bracket "Numerics.bisect" f lo hi with
  | `Root r -> r
  | `Bracket (flo, _) ->
      let rec loop lo hi flo iter =
        let mid = 0.5 *. (lo +. hi) in
        if hi -. lo <= tol || iter >= max_iter then mid
        else begin
          let fm = f mid in
          if fm = 0.0 then mid
          else if flo *. fm < 0.0 then loop lo mid flo (iter + 1)
          else loop mid hi fm (iter + 1)
        end
      in
      loop lo hi flo 0

let brent ?(tol = 1e-13) ?(max_iter = 100) ~f lo hi =
  match check_bracket "Numerics.brent" f lo hi with
  | `Root r -> r
  | `Bracket (flo, fhi) ->
      (* Standard Brent: inverse quadratic interpolation guarded by secant
         and bisection fallbacks (Numerical Recipes formulation). *)
      let a = ref lo and b = ref hi and fa = ref flo and fb = ref fhi in
      let c = ref !a and fc = ref !fa in
      let d = ref (!b -. !a) and e = ref (!b -. !a) in
      let result = ref None in
      let iter = ref 0 in
      while !result = None && !iter < max_iter do
        incr iter;
        if Float.abs !fc < Float.abs !fb then begin
          a := !b; b := !c; c := !a;
          fa := !fb; fb := !fc; fc := !fa
        end;
        let tol1 = (2.0 *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
        let xm = 0.5 *. (!c -. !b) in
        if Float.abs xm <= tol1 || !fb = 0.0 then result := Some !b
        else begin
          if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
            let s = !fb /. !fa in
            let p, q =
              if !a = !c then
                let p = 2.0 *. xm *. s in
                (p, 1.0 -. s)
              else begin
                let q = !fa /. !fc and r = !fb /. !fc in
                let p = s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0))) in
                (p, (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0))
              end
            in
            let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
            let min1 = (3.0 *. xm *. q) -. Float.abs (tol1 *. q) in
            let min2 = Float.abs (!e *. q) in
            if 2.0 *. p < Float.min min1 min2 then begin
              e := !d;
              d := p /. q
            end
            else begin
              d := xm;
              e := xm
            end
          end
          else begin
            d := xm;
            e := xm
          end;
          a := !b;
          fa := !fb;
          if Float.abs !d > tol1 then b := !b +. !d
          else b := !b +. (if xm >= 0.0 then tol1 else -.tol1);
          fb := f !b;
          if (!fb > 0.0 && !fc > 0.0) || (!fb < 0.0 && !fc < 0.0) then begin
            c := !a;
            fc := !fa;
            d := !b -. !a;
            e := !d
          end
        end
      done;
      (match !result with Some r -> r | None -> !b)

let golden_min ?(tol = 1e-10) ~f lo hi =
  if not (lo <= hi) then invalid_arg "Numerics.golden_min: need lo <= hi";
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let rec loop a b x1 x2 f1 f2 =
    if b -. a <= tol then 0.5 *. (a +. b)
    else if f1 < f2 then begin
      let b = x2 and x2 = x1 and f2 = f1 in
      let x1 = b -. (phi *. (b -. a)) in
      loop a b x1 x2 (f x1) f2
    end
    else begin
      let a = x1 and x1 = x2 and f1 = f2 in
      let x2 = a +. (phi *. (b -. a)) in
      loop a b x1 x2 f1 (f x2)
    end
  in
  let x1 = hi -. (phi *. (hi -. lo)) and x2 = lo +. (phi *. (hi -. lo)) in
  loop lo hi x1 x2 (f x1) (f x2)

let integrate ?(steps = 1024) ~f lo hi =
  if steps <= 0 then invalid_arg "Numerics.integrate: steps must be positive";
  let n = if steps mod 2 = 0 then steps else steps + 1 in
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (f lo +. f hi) in
  for i = 1 to n - 1 do
    let x = lo +. (h *. float_of_int i) in
    acc := !acc +. (if i mod 2 = 1 then 4.0 else 2.0) *. f x
  done;
  !acc *. h /. 3.0

let ppm x = x *. 1e6
let of_ppm x = x /. 1e6
