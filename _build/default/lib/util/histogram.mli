(** Fixed-bin histograms, including logarithmic bins for fault-weight
    distributions (paper Fig. 3 spans roughly 1e-9..1e-6). *)

type t

type binning =
  | Linear of { lo : float; hi : float; bins : int }
      (** Equal-width bins on [\[lo, hi\]]. *)
  | Log10 of { lo : float; hi : float; bins : int }
      (** Equal-width bins in log10 space; requires [0 < lo < hi]. *)

val create : binning -> t

val add : t -> float -> unit
(** Insert one observation.  Values outside the range are recorded in
    underflow/overflow counters, not dropped silently. *)

val add_many : t -> float array -> unit

val counts : t -> int array
(** In-range bin counts, left to right. *)

val underflow : t -> int
val overflow : t -> int
val total : t -> int
(** All observations, including out-of-range ones. *)

val bin_edges : t -> float array
(** [bins + 1] edges in data space (for log bins, the exponentiated edges). *)

val bin_center : t -> int -> float
(** Center of bin [i] in data space (geometric center for log bins). *)

val mode_bin : t -> int
(** Index of the fullest bin (ties: leftmost). *)

val to_rows : t -> (float * float * int) list
(** [(lo, hi, count)] per bin, in order. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per bin. *)
