open Dl_netlist

type site = Stem of int | Branch of { gate : int; pin : int }

let run_internal (c : Circuit.t) ~fault pi_values =
  if Array.length pi_values <> Array.length c.inputs then
    invalid_arg "Sim3.run: one value per primary input required";
  let values = Array.make (Circuit.node_count c) Ternary.VX in
  Array.iteri (fun i id -> values.(id) <- pi_values.(i)) c.inputs;
  let forced_stem, forced_branch =
    match fault with
    | None -> (None, None)
    | Some (Stem id, v) -> (Some (id, v), None)
    | Some (Branch { gate; pin }, v) -> (None, Some (gate, pin, v))
  in
  (match forced_stem with
  | Some (id, v) when c.nodes.(id).kind = Gate.Input ->
      values.(id) <- Ternary.of_bool v
  | _ -> ());
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      if nd.kind <> Gate.Input then begin
        let ins = Array.map (fun src -> values.(src)) nd.fanin in
        (match forced_branch with
        | Some (gate, pin, v) when gate = id -> ins.(pin) <- Ternary.of_bool v
        | _ -> ());
        let out = Ternary.eval nd.kind ins in
        values.(id) <-
          (match forced_stem with
          | Some (fid, v) when fid = id -> Ternary.of_bool v
          | _ -> out)
      end)
    c.topo_order;
  values

let run c pi_values = run_internal c ~fault:None pi_values

let run_with_fault c ~site ~stuck pi_values =
  (match site with
  | Stem id ->
      if id < 0 || id >= Circuit.node_count c then
        invalid_arg "Sim3.run_with_fault: stem id out of range"
  | Branch { gate; pin } ->
      if gate < 0 || gate >= Circuit.node_count c then
        invalid_arg "Sim3.run_with_fault: gate id out of range";
      if pin < 0 || pin >= Array.length c.nodes.(gate).fanin then
        invalid_arg "Sim3.run_with_fault: pin out of range");
  run_internal c ~fault:(Some (site, stuck)) pi_values

let outputs_of (c : Circuit.t) values =
  Array.map (fun id -> values.(id)) c.outputs
