(** Static timing analysis over the gate-level netlist: arrival times,
    required times, slack and critical paths under a per-gate delay model.
    Substrate for delay-fault reasoning (Park/Mercer/Williams' statistical
    delay-fault testing is the paper's reference [8]). *)

open Dl_netlist

type delay_model = Unit_delay | Per_gate of (Gate.kind -> float)

val default_delays : Gate.kind -> float
(** A simple load-independent cell-delay table: inverting primitives are
    fast, wide gates slower, XOR slowest. *)

type t

val analyze : ?model:delay_model -> ?clock_period:float -> Circuit.t -> t
(** [clock_period] defaults to the critical-path delay (zero worst slack). *)

val arrival : t -> int -> float
(** Latest-arrival time at node [id] (0 at primary inputs). *)

val required : t -> int -> float
(** Latest time the node may switch and still meet the clock at every
    reachable output. *)

val slack : t -> int -> float
(** [required - arrival]; negative on violating paths. *)

val critical_path_delay : t -> float

val critical_path : t -> int list
(** Node ids of one maximal-delay path, input to output. *)

val worst_slack : t -> float

val path_delay : t -> int list -> float
(** Total delay accumulated along a connected node path.
    @raise Invalid_argument if consecutive nodes are not connected. *)

val slack_histogram : t -> bins:int -> Dl_util.Histogram.t
(** Distribution of node slacks — the input to statistical delay-fault
    coverage arguments (small-slack nodes are the delay-test targets). *)
