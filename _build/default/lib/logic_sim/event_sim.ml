open Dl_netlist

module Level_queue = struct
  (* Nodes pending evaluation, bucketed by level so each node is evaluated
     at most once per propagation wave. *)
  type t = {
    buckets : int list array;
    pending : bool array;
    mutable lowest : int;
    mutable count : int;
  }

  let create depth nodes =
    {
      buckets = Array.make (depth + 1) [];
      pending = Array.make nodes false;
      lowest = depth + 1;
      count = 0;
    }

  let push q ~level id =
    if not q.pending.(id) then begin
      q.pending.(id) <- true;
      q.buckets.(level) <- id :: q.buckets.(level);
      if level < q.lowest then q.lowest <- level;
      q.count <- q.count + 1
    end

  let pop q =
    if q.count = 0 then None
    else begin
      let rec find level =
        match q.buckets.(level) with
        | [] -> find (level + 1)
        | id :: rest ->
            q.buckets.(level) <- rest;
            q.lowest <- level;
            (level, id)
      in
      let _, id = find q.lowest in
      q.pending.(id) <- false;
      q.count <- q.count - 1;
      Some id
    end
end

type t = {
  circuit : Circuit.t;
  values : bool array;
  queue : Level_queue.t;
  mutable eval_count : int;
}

let eval_node t id =
  let nd = t.circuit.nodes.(id) in
  let ins = Array.map (fun src -> t.values.(src)) nd.fanin in
  t.eval_count <- t.eval_count + 1;
  Gate.eval nd.kind ins

let propagate t =
  let performed = ref 0 in
  let rec drain () =
    match Level_queue.pop t.queue with
    | None -> ()
    | Some id ->
        let v = eval_node t id in
        incr performed;
        if v <> t.values.(id) then begin
          t.values.(id) <- v;
          Array.iter
            (fun succ ->
              Level_queue.push t.queue ~level:t.circuit.levels.(succ) succ)
            t.circuit.fanouts.(id)
        end;
        drain ()
  in
  drain ();
  !performed

let create c =
  let t =
    {
      circuit = c;
      values = Array.make (Circuit.node_count c) false;
      queue = Level_queue.create (Circuit.depth c) (Circuit.node_count c);
      eval_count = 0;
    }
  in
  (* Settle the all-zero input state. *)
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      if nd.kind <> Gate.Input then t.values.(id) <- eval_node t id)
    c.topo_order;
  t

let schedule_fanout t id =
  Array.iter
    (fun succ -> Level_queue.push t.queue ~level:t.circuit.levels.(succ) succ)
    t.circuit.fanouts.(id)

let set_input t pos v =
  let c = t.circuit in
  if pos < 0 || pos >= Array.length c.inputs then
    invalid_arg "Event_sim.set_input: position out of range";
  let id = c.inputs.(pos) in
  if t.values.(id) = v then 0
  else begin
    t.values.(id) <- v;
    schedule_fanout t id;
    propagate t
  end

let set_inputs t bits =
  let c = t.circuit in
  if Array.length bits <> Array.length c.inputs then
    invalid_arg "Event_sim.set_inputs: width mismatch";
  Array.iteri
    (fun pos v ->
      let id = c.inputs.(pos) in
      if t.values.(id) <> v then begin
        t.values.(id) <- v;
        schedule_fanout t id
      end)
    bits;
  propagate t

let value t id = t.values.(id)

let output_values t = Array.map (fun id -> t.values.(id)) t.circuit.outputs

let node_values t = Array.copy t.values

let evaluations t = t.eval_count
