(** Two-valued compiled simulation, 64 patterns per machine word.

    This is the workhorse behind parallel-pattern fault simulation: bit [i]
    of every word carries pattern [i] through the whole circuit. *)

open Dl_netlist

val run : Circuit.t -> int64 array -> int64 array
(** [run c pi_words] evaluates the circuit; [pi_words] has one word per
    primary input in [c.inputs] order.  Returns one word per node, indexed
    by node id. *)

val outputs_of : Circuit.t -> int64 array -> int64 array
(** Project node values to primary outputs, in [c.outputs] order. *)

val run_single : Circuit.t -> bool array -> bool array
(** Single-pattern convenience wrapper (one bool per PI, returns one bool
    per node). *)

val output_bits : Circuit.t -> bool array -> bool array
(** Single-pattern primary-output response. *)

val random_words : Dl_util.Rng.t -> Circuit.t -> int64 array
(** Fresh fully-random PI words (64 random patterns). *)

val pattern_of_words : Circuit.t -> int64 array -> int -> bool array
(** Extract pattern [bit] (0..63) from PI words as a bool vector. *)

val words_of_patterns : Circuit.t -> bool array array -> int64 array
(** Pack up to 64 patterns (each one bool per PI) into words; missing high
    patterns are zero-filled. *)
