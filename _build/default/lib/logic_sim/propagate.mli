(** Three-valued downstream propagation of fault effects: evaluate only the
    fanout cone of a set of overridden nodes against known fault-free
    values.  Shared by the switch-level simulators and the gate-level
    bridging-fault model. *)

open Dl_netlist

val run :
  Circuit.t -> bool array -> (int * Ternary.t) list ->
  (int, Ternary.t) Hashtbl.t
(** [run c good seeds] evaluates the fanout cone of the seed overrides
    against the fault-free values [good] (one bool per node) and returns
    the sparse map of nodes whose faulty value differs (or is X). *)

val po_detects :
  Circuit.t -> bool array -> (int, Ternary.t) Hashtbl.t -> bool
(** Whether some primary output settles to a definite wrong value. *)
