open Dl_netlist

type delay_model = Unit_delay | Per_gate of (Gate.kind -> float)

let default_delays = function
  | Gate.Input -> 0.0
  | Gate.Buf -> 0.6
  | Gate.Not -> 0.4
  | Gate.Nand | Gate.Nor -> 0.7
  | Gate.And | Gate.Or -> 1.1 (* inverting stage plus output inverter *)
  | Gate.Xor | Gate.Xnor -> 1.6

type t = {
  circuit : Circuit.t;
  delays : float array;   (* per node *)
  arrival : float array;
  required : float array;
  clock_period : float;
}

let analyze ?(model = Per_gate default_delays) ?clock_period (c : Circuit.t) =
  let delay_of kind =
    match model with
    | Unit_delay -> if kind = Gate.Input then 0.0 else 1.0
    | Per_gate f -> if kind = Gate.Input then 0.0 else f kind
  in
  let n = Circuit.node_count c in
  let delays = Array.map (fun (nd : Circuit.node) -> delay_of nd.kind) c.nodes in
  let arrival = Array.make n 0.0 in
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      if nd.kind <> Gate.Input then
        arrival.(id) <-
          delays.(id)
          +. Array.fold_left (fun acc src -> Float.max acc arrival.(src)) 0.0 nd.fanin)
    c.topo_order;
  let critical = Array.fold_left Float.max 0.0 arrival in
  let clock_period = Option.value clock_period ~default:critical in
  let required = Array.make n infinity in
  Array.iter (fun o -> required.(o) <- clock_period) c.outputs;
  let order = c.topo_order in
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    let nd = c.nodes.(id) in
    Array.iter
      (fun succ ->
        let through = required.(succ) -. delays.(succ) in
        if through < required.(id) then required.(id) <- through)
      c.fanouts.(id);
    ignore nd
  done;
  { circuit = c; delays; arrival; required; clock_period }

let arrival t id = t.arrival.(id)
let required t id = t.required.(id)

let slack t id = t.required.(id) -. t.arrival.(id)

let critical_path_delay t = Array.fold_left Float.max 0.0 t.arrival

let critical_path t =
  let c = t.circuit in
  (* Walk back from the latest-arriving output through the latest fanins. *)
  let start =
    Array.fold_left
      (fun best o ->
        match best with
        | Some b when t.arrival.(b) >= t.arrival.(o) -> best
        | _ -> Some o)
      None c.outputs
  in
  match start with
  | None -> []
  | Some start ->
      let rec walk id acc =
        let nd = c.nodes.(id) in
        if nd.kind = Gate.Input then id :: acc
        else begin
          let pred =
            Array.fold_left
              (fun best src ->
                match best with
                | Some b when t.arrival.(b) >= t.arrival.(src) -> best
                | _ -> Some src)
              None nd.fanin
          in
          match pred with None -> id :: acc | Some p -> walk p (id :: acc)
        end
      in
      walk start []

let worst_slack t =
  let c = t.circuit in
  let worst = ref infinity in
  Array.iteri
    (fun id _ -> if slack t id < !worst then worst := slack t id)
    c.nodes;
  !worst

let path_delay t path =
  let c = t.circuit in
  let rec walk acc = function
    | [] -> acc
    | [ last ] -> acc +. t.delays.(last)
    | a :: (b :: _ as rest) ->
        let connected = Array.exists (fun s -> s = a) c.nodes.(b).fanin in
        if not connected then invalid_arg "Timing.path_delay: nodes not connected";
        walk (acc +. t.delays.(a)) rest
  in
  walk 0.0 path

let slack_histogram t ~bins =
  let c = t.circuit in
  let slacks =
    Array.to_seq c.nodes
    |> Seq.filter_map (fun (nd : Circuit.node) ->
           if nd.kind = Gate.Input then None else Some (slack t nd.id))
    |> Array.of_seq
  in
  let lo, hi = Dl_util.Stats.min_max slacks in
  let hi = if hi <= lo then lo +. 1.0 else hi in
  let h = Dl_util.Histogram.create (Dl_util.Histogram.Linear { lo; hi; bins }) in
  Dl_util.Histogram.add_many h slacks;
  h
