(** Ternary full-circuit simulation (one {!Ternary.t} per node). *)

open Dl_netlist

type site =
  | Stem of int  (** Node output, by node id. *)
  | Branch of { gate : int; pin : int }
      (** Input [pin] of node [gate] (a fanout branch). *)

val run : Circuit.t -> Ternary.t array -> Ternary.t array
(** [run c pi_values] evaluates the circuit on a (possibly partial, i.e.
    X-containing) primary-input assignment; one value per PI in [c.inputs]
    order, result indexed by node id. *)

val run_with_fault :
  Circuit.t -> site:site -> stuck:bool -> Ternary.t array -> Ternary.t array
(** Same, but with a stuck-at fault injected at [site]: a [Stem] forces the
    node's output, a [Branch] forces the value seen by one gate input.
    Used by PODEM via dual (good/faulty) simulation. *)

val outputs_of : Circuit.t -> Ternary.t array -> Ternary.t array
