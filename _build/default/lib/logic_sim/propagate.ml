open Dl_netlist


(* Evaluate the fanout cone of the seed overrides against the good machine;
   returns the sparse faulty-value map. *)
let run (c : Circuit.t) good seeds =
  let map : (int, Ternary.t) Hashtbl.t = Hashtbl.create 32 in
  let depth = Circuit.depth c in
  let buckets = Array.make (depth + 1) [] in
  let queued = Array.make (Circuit.node_count c) false in
  let push id =
    if not queued.(id) then begin
      queued.(id) <- true;
      let l = c.levels.(id) in
      buckets.(l) <- id :: buckets.(l)
    end
  in
  let good3 id = Ternary.of_bool good.(id) in
  List.iter
    (fun (id, v) ->
      if not (Ternary.equal v (good3 id)) then begin
        Hashtbl.replace map id v;
        Array.iter push c.fanouts.(id)
      end)
    seeds;
  let value id = match Hashtbl.find_opt map id with Some v -> v | None -> good3 id in
  for level = 0 to depth do
    List.iter
      (fun id ->
        queued.(id) <- false;
        let nd = c.nodes.(id) in
        if nd.kind <> Gate.Input && not (Hashtbl.mem map id) then begin
          let v = Ternary.eval nd.kind (Array.map value nd.fanin) in
          if not (Ternary.equal v (good3 id)) then begin
            Hashtbl.replace map id v;
            Array.iter push c.fanouts.(id)
          end
        end)
      (List.rev buckets.(level));
    buckets.(level) <- []
  done;
  map

let po_detects (c : Circuit.t) good map =
  Array.exists
    (fun o ->
      match Hashtbl.find_opt map o with
      | Some Ternary.V0 -> good.(o)
      | Some Ternary.V1 -> not good.(o)
      | Some Ternary.VX | None -> false)
    c.outputs
