(** Event-driven single-pattern simulator.

    Maintains a persistent value state and propagates only the cone affected
    by changed inputs — the classical selective-trace technique.  Used as an
    independent reference implementation against {!Sim2} and for workloads
    with low input activity. *)

open Dl_netlist

type t

val create : Circuit.t -> t
(** Initial state: all inputs 0, circuit settled. *)

val set_inputs : t -> bool array -> int
(** Assign all primary inputs (in [c.inputs] order) and propagate events.
    Returns the number of gate evaluations performed. *)

val set_input : t -> int -> bool -> int
(** Assign a single primary input by PI position and propagate. *)

val value : t -> int -> bool
(** Current value of node [id]. *)

val output_values : t -> bool array

val node_values : t -> bool array
(** Snapshot of all node values. *)

val evaluations : t -> int
(** Total gate evaluations since creation (activity metric). *)
