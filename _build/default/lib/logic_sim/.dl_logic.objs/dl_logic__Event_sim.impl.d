lib/logic_sim/event_sim.ml: Array Circuit Dl_netlist Gate
