lib/logic_sim/propagate.mli: Circuit Dl_netlist Hashtbl Ternary
