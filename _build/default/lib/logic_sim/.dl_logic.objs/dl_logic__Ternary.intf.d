lib/logic_sim/ternary.mli: Dl_netlist
