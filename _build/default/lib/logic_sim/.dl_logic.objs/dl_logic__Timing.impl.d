lib/logic_sim/timing.ml: Array Circuit Dl_netlist Dl_util Float Gate Option Seq
