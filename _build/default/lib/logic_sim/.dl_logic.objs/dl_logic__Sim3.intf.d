lib/logic_sim/sim3.mli: Circuit Dl_netlist Ternary
