lib/logic_sim/propagate.ml: Array Circuit Dl_netlist Gate Hashtbl List Ternary
