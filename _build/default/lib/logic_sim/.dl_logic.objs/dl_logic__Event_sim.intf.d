lib/logic_sim/event_sim.mli: Circuit Dl_netlist
