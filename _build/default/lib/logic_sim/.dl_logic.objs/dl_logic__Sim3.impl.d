lib/logic_sim/sim3.ml: Array Circuit Dl_netlist Gate Ternary
