lib/logic_sim/timing.mli: Circuit Dl_netlist Dl_util Gate
