lib/logic_sim/ternary.ml: Array Dl_netlist Gate
