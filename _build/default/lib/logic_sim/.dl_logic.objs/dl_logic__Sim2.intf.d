lib/logic_sim/sim2.mli: Circuit Dl_netlist Dl_util
