lib/logic_sim/sim2.ml: Array Circuit Dl_netlist Dl_util Gate Int64
