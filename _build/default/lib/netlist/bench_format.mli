(** Reader and writer for the ISCAS-85 ".bench" netlist format used by the
    benchmark suite the paper evaluates on (Brglez & Fujiwara, ISCAS'85).

    Grammar accepted (case-insensitive keywords, [#] comments):
    {v
      INPUT(name)
      OUTPUT(name)
      name = GATE(a, b, ...)
    v}
    Output declarations may name a gate defined later.  A signal that is
    declared [OUTPUT] but never defined as a gate or input is an error. *)

exception Parse_error of { line : int; message : string }

val parse_string : ?title:string -> string -> Circuit.t
(** @raise Parse_error on syntax errors
    @raise Circuit.Malformed on structural errors *)

val parse_file : string -> Circuit.t
(** Title defaults to the basename without extension. *)

val to_string : Circuit.t -> string
(** Render a circuit back to bench syntax; [parse_string (to_string c)] is
    structurally identical to [c]. *)

val write_file : string -> Circuit.t -> unit
