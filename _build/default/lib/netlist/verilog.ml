exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ lexer *)

type token = Ident of string | Punct of char

type lexer = { mutable tokens : (token * int) list }

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | '\\' -> true
  | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' | '.' | '[' | ']' -> true
  | _ -> false

let tokenize text =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    let ch = text.[!i] in
    if ch = '\n' then begin
      incr line;
      incr i
    end
    else if ch = ' ' || ch = '\t' || ch = '\r' then incr i
    else if ch = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if ch = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i + 1 < n && not !closed do
        if text.[!i] = '\n' then incr line;
        if text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail !line "unterminated block comment"
    end
    else if is_ident_start ch then begin
      (* Verilog escaped identifiers start with '\' and end at whitespace. *)
      let start = !i in
      if ch = '\\' then begin
        incr i;
        while !i < n && text.[!i] <> ' ' && text.[!i] <> '\t' && text.[!i] <> '\n' do
          incr i
        done;
        tokens := (Ident (String.sub text (start + 1) (!i - start - 1)), !line) :: !tokens
      end
      else begin
        while !i < n && is_ident_char text.[!i] do
          incr i
        done;
        tokens := (Ident (String.sub text start (!i - start)), !line) :: !tokens
      end
    end
    else
      match ch with
      | '(' | ')' | ',' | ';' ->
          tokens := (Punct ch, !line) :: !tokens;
          incr i
      | _ -> fail !line "unexpected character %C" ch
  done;
  { tokens = List.rev !tokens }

let peek lx = match lx.tokens with [] -> None | (t, l) :: _ -> Some (t, l)

let next lx =
  match lx.tokens with
  | [] -> fail 0 "unexpected end of input"
  | (t, l) :: rest ->
      lx.tokens <- rest;
      (t, l)

let expect_punct lx ch =
  match next lx with
  | Punct c, _ when c = ch -> ()
  | _, l -> fail l "expected %C" ch

let expect_ident lx =
  match next lx with
  | Ident s, l -> (s, l)
  | Punct c, l -> fail l "expected identifier, found %C" c

let expect_keyword lx kw =
  let s, l = expect_ident lx in
  if String.lowercase_ascii s <> kw then fail l "expected %S" kw

(* Comma-separated identifier list terminated by ';'. *)
let ident_list lx =
  let rec loop acc =
    let name, _ = expect_ident lx in
    match next lx with
    | Punct ',', _ -> loop (name :: acc)
    | Punct ';', _ -> List.rev (name :: acc)
    | _, l -> fail l "expected ',' or ';'"
  in
  loop []

(* ----------------------------------------------------------------- parser *)

let primitive_of_string = function
  | "and" -> Some Gate.And
  | "nand" -> Some Gate.Nand
  | "or" -> Some Gate.Or
  | "nor" -> Some Gate.Nor
  | "xor" -> Some Gate.Xor
  | "xnor" -> Some Gate.Xnor
  | "not" -> Some Gate.Not
  | "buf" -> Some Gate.Buf
  | _ -> None

let parse_string ?title text =
  let lx = tokenize text in
  expect_keyword lx "module";
  let module_name, _ = expect_ident lx in
  let title = Option.value title ~default:module_name in
  (* Port list (names are re-declared as input/output below). *)
  (match peek lx with
  | Some (Punct '(', _) ->
      expect_punct lx '(';
      let rec skip_ports () =
        match next lx with
        | Punct ')', _ -> ()
        | Ident _, _ | Punct ',', _ -> skip_ports ()
        | Punct c, l -> fail l "unexpected %C in port list" c
      in
      skip_ports ();
      expect_punct lx ';'
  | _ -> fail 0 "expected port list");
  let builder = Circuit.Builder.create ~title in
  let outputs = ref [] in
  let finished = ref false in
  while not !finished do
    let word, l = expect_ident lx in
    match String.lowercase_ascii word with
    | "endmodule" -> finished := true
    | "input" ->
        List.iter
          (fun nm ->
            try Circuit.Builder.add_input builder nm
            with Circuit.Malformed m -> fail l "%s" m)
          (ident_list lx)
    | "output" -> outputs := !outputs @ ident_list lx
    | "wire" ->
        (* declarations only; connectivity comes from the instances *)
        ignore (ident_list lx)
    | kw -> (
        match primitive_of_string kw with
        | None -> fail l "unsupported construct %S" word
        | Some kind ->
            (* optional instance name *)
            (match peek lx with
            | Some (Ident _, _) -> ignore (expect_ident lx)
            | _ -> ());
            expect_punct lx '(';
            let rec terminals acc =
              let name, _ = expect_ident lx in
              match next lx with
              | Punct ',', _ -> terminals (name :: acc)
              | Punct ')', _ -> List.rev (name :: acc)
              | _, l -> fail l "expected ',' or ')'"
            in
            let ts = terminals [] in
            expect_punct lx ';';
            (match ts with
            | out :: (_ :: _ as ins) -> (
                try Circuit.Builder.add_gate builder out kind ins
                with Circuit.Malformed m -> fail l "%s" m)
            | _ -> fail l "primitive needs an output and at least one input"))
  done;
  List.iter (Circuit.Builder.add_output builder) !outputs;
  Circuit.Builder.finalize builder

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string text

(* ----------------------------------------------------------------- writer *)

let primitive_name = function
  | Gate.And -> "and"
  | Gate.Nand -> "nand"
  | Gate.Or -> "or"
  | Gate.Nor -> "nor"
  | Gate.Xor -> "xor"
  | Gate.Xnor -> "xnor"
  | Gate.Not -> "not"
  | Gate.Buf -> "buf"
  | Gate.Input -> invalid_arg "Verilog: Input is not a primitive"

(* Names must be valid simple identifiers; escape the rest. *)
let mangle name =
  let simple =
    String.length name > 0
    && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
         name
  in
  if simple then name else "\\" ^ name ^ " "

let to_string (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  let names l = String.concat ", " (List.map mangle l) in
  let input_names = Array.to_list (Array.map (Circuit.name c) c.inputs) in
  let output_names = Array.to_list (Array.map (Circuit.name c) c.outputs) in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" (mangle c.title)
       (names (input_names @ output_names)));
  Buffer.add_string buf (Printf.sprintf "  input %s;\n" (names input_names));
  Buffer.add_string buf (Printf.sprintf "  output %s;\n" (names output_names));
  let wires =
    Array.to_seq c.nodes
    |> Seq.filter_map (fun (nd : Circuit.node) ->
           if nd.kind <> Gate.Input && not (Circuit.is_output c nd.id) then
             Some nd.name
           else None)
    |> List.of_seq
  in
  if wires <> [] then Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (names wires));
  Array.iteri
    (fun idx id ->
      let nd = c.nodes.(id) in
      if nd.kind <> Gate.Input then begin
        let ins = Array.to_list (Array.map (Circuit.name c) nd.fanin) in
        Buffer.add_string buf
          (Printf.sprintf "  %s g%d (%s);\n"
             (primitive_name nd.kind)
             idx
             (names (nd.name :: ins)))
      end)
    c.topo_order;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string c))
