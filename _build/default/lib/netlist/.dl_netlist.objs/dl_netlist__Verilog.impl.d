lib/netlist/verilog.ml: Array Buffer Circuit Fun Gate List Option Printf Seq String
