lib/netlist/generator.mli: Circuit Gate
