lib/netlist/gate.ml: Array Fun Int64 Printf String
