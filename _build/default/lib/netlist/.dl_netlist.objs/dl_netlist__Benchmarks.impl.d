lib/netlist/benchmarks.ml: Bench_format Generator List Option
