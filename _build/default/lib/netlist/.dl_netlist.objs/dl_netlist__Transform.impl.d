lib/netlist/transform.ml: Array Circuit Gate List Printf
