lib/netlist/generator.ml: Array Circuit Dl_util Gate Hashtbl List Option Printf
