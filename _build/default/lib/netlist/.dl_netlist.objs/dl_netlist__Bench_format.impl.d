lib/netlist/bench_format.ml: Array Buffer Circuit Filename Fun Gate List Printf String
