lib/netlist/circuit.ml: Array Format Gate Hashtbl List Option Printf Queue Seq String
