lib/netlist/gate.mli:
