(** Structural netlist transformations. *)

val decompose_for_cells : ?max_stack:int -> Circuit.t -> Circuit.t
(** Rewrite a circuit so every gate fits a standard-cell library:
    XOR/XNOR become trees of 2-input gates, and AND/OR/NAND/NOR wider than
    [max_stack] (default 4, the longest practical CMOS series stack) are
    split into trees.  Signal names of original nodes are preserved, so
    fault sites and coverage results remain comparable; helper nodes get a
    ["_dx"] suffix. *)

val is_cell_mappable : ?max_stack:int -> Circuit.t -> bool
(** Whether every gate already fits the cell library. *)

val stats_delta : Circuit.t -> Circuit.t -> string
(** Human-readable summary of what a transformation changed. *)
