(** Combinational gate primitives of the ISCAS-85 benchmark suite.

    [Input] marks primary-input nodes; all other kinds are logic gates.
    Gates are n-ary where the function allows it ([Not]/[Buf] are unary). *)

type kind =
  | Input
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor

val all_logic : kind list
(** Every kind except [Input]. *)

val to_string : kind -> string
(** Upper-case ISCAS name, e.g. [Nand -> "NAND"]. *)

val of_string : string -> kind option
(** Case-insensitive parse of the ISCAS name ([Input] is not parseable this
    way; the bench format declares inputs separately). *)

val arity_ok : kind -> int -> bool
(** Whether a gate of this kind may have the given number of inputs. *)

val eval : kind -> bool array -> bool
(** Evaluate on concrete inputs.  Raises [Invalid_argument] on arity
    violations or when applied to [Input]. *)

val eval_word : kind -> int64 array -> int64
(** Bitwise 64-way parallel evaluation: bit [i] of the result is the gate
    evaluated on bit [i] of each input word. *)

val controlling_value : kind -> bool option
(** The input value that forces the output regardless of other inputs
    (e.g. [Some false] for AND/NAND); [None] for XOR/XNOR/BUF/NOT. *)

val controlled_response : kind -> bool
(** Output when some input is at the controlling value.  Meaningful only
    when {!controlling_value} is [Some _]. *)

val inversion : kind -> bool
(** Whether the gate inverts ([Not], [Nand], [Nor], [Xnor]). *)
