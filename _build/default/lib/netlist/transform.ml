let fits ~max_stack (nd : Circuit.node) =
  let arity = Array.length nd.fanin in
  match nd.kind with
  | Gate.Input | Gate.Buf | Gate.Not -> true
  | Gate.Xor | Gate.Xnor -> arity <= 2
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> arity <= max_stack

let is_cell_mappable ?(max_stack = 4) (c : Circuit.t) =
  Array.for_all (fits ~max_stack) c.nodes

let decompose_for_cells ?(max_stack = 4) (c : Circuit.t) =
  if max_stack < 2 then invalid_arg "Transform.decompose_for_cells: max_stack < 2";
  let b = Circuit.Builder.create ~title:c.title in
  let counter = ref 0 in
  let helper base =
    incr counter;
    Printf.sprintf "%s_dx%d" base !counter
  in
  (* Reduce [names] to at most [width] signals by folding groups of [width]
     through [inner] gates; used for wide AND/OR/XOR trees. *)
  let rec reduce_tree base inner width names =
    if List.length names <= width then names
    else begin
      let rec group acc current = function
        | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
        | x :: rest ->
            if List.length current = width then
              group (List.rev current :: acc) [ x ] rest
            else group acc (x :: current) rest
      in
      let folded =
        List.map
          (fun grp ->
            match grp with
            | [ single ] -> single
            | _ ->
                let nm = helper base in
                Circuit.Builder.add_gate b nm inner grp;
                nm)
          (group [] [] names)
      in
      reduce_tree base inner width folded
    end
  in
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      let name = nd.name in
      let fanin_names = Array.to_list (Array.map (Circuit.name c) nd.fanin) in
      if nd.kind = Gate.Input then Circuit.Builder.add_input b name
      else if fits ~max_stack nd then Circuit.Builder.add_gate b name nd.kind fanin_names
      else begin
        match nd.kind with
        | Gate.And | Gate.Nand ->
            (* Fold with AND trees, keep the final (possibly inverting)
               stage at the original name. *)
            let reduced = reduce_tree name Gate.And max_stack fanin_names in
            Circuit.Builder.add_gate b name nd.kind reduced
        | Gate.Or | Gate.Nor ->
            let reduced = reduce_tree name Gate.Or max_stack fanin_names in
            Circuit.Builder.add_gate b name nd.kind reduced
        | Gate.Xor | Gate.Xnor ->
            let reduced = reduce_tree name Gate.Xor 2 fanin_names in
            Circuit.Builder.add_gate b name nd.kind reduced
        | Gate.Input | Gate.Buf | Gate.Not -> assert false
      end)
    c.topo_order;
  Array.iter (fun o -> Circuit.Builder.add_output b (Circuit.name c o)) c.outputs;
  Circuit.Builder.finalize b

let stats_delta before after =
  Printf.sprintf "%s: %d -> %d nodes (depth %d -> %d)" before.Circuit.title
    (Circuit.node_count before) (Circuit.node_count after) (Circuit.depth before)
    (Circuit.depth after)
