type node = {
  id : int;
  name : string;
  kind : Gate.kind;
  fanin : int array;
}

type t = {
  title : string;
  nodes : node array;
  inputs : int array;
  outputs : int array;
  fanouts : int array array;
  levels : int array;
  topo_order : int array;
}

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

module Builder = struct
  type decl = { d_name : string; d_kind : Gate.kind; d_fanin : string list }

  type nonrec t = {
    b_title : string;
    mutable decls : decl list; (* reversed *)
    mutable out_names : string list; (* reversed *)
    seen : (string, unit) Hashtbl.t;
  }

  let create ~title =
    { b_title = title; decls = []; out_names = []; seen = Hashtbl.create 64 }

  let declare b name kind fanin =
    if Hashtbl.mem b.seen name then malformed "duplicate signal %S" name;
    Hashtbl.add b.seen name ();
    b.decls <- { d_name = name; d_kind = kind; d_fanin = fanin } :: b.decls

  let add_input b name = declare b name Gate.Input []

  let add_gate b name kind fanin =
    if kind = Gate.Input then malformed "use add_input for primary inputs";
    if not (Gate.arity_ok kind (List.length fanin)) then
      malformed "gate %S: %s cannot take %d inputs" name (Gate.to_string kind)
        (List.length fanin);
    declare b name kind fanin

  let add_output b name = b.out_names <- name :: b.out_names

  let finalize b =
    let decls = Array.of_list (List.rev b.decls) in
    let n = Array.length decls in
    if n = 0 then malformed "empty circuit";
    let index = Hashtbl.create n in
    Array.iteri (fun i d -> Hashtbl.replace index d.d_name i) decls;
    let resolve ctx name =
      match Hashtbl.find_opt index name with
      | Some i -> i
      | None -> malformed "%s references undeclared signal %S" ctx name
    in
    let nodes =
      Array.mapi
        (fun i d ->
          let fanin =
            Array.of_list
              (List.map (resolve (Printf.sprintf "gate %S" d.d_name)) d.d_fanin)
          in
          { id = i; name = d.d_name; kind = d.d_kind; fanin })
        decls
    in
    let outputs =
      Array.of_list
        (List.rev_map (fun nm -> resolve "OUTPUT declaration" nm) b.out_names)
    in
    if Array.length outputs = 0 then malformed "circuit has no outputs";
    let inputs =
      Array.of_seq
        (Seq.filter_map
           (fun nd -> if nd.kind = Gate.Input then Some nd.id else None)
           (Array.to_seq nodes))
    in
    if Array.length inputs = 0 then malformed "circuit has no inputs";
    (* Fanout lists. *)
    let fanout_lists = Array.make n [] in
    Array.iter
      (fun nd ->
        Array.iter (fun src -> fanout_lists.(src) <- nd.id :: fanout_lists.(src)) nd.fanin)
      nodes;
    let fanouts = Array.map (fun l -> Array.of_list (List.rev l)) fanout_lists in
    (* Kahn topological sort doubles as the cycle check. *)
    let indeg = Array.map (fun nd -> Array.length nd.fanin) nodes in
    let queue = Queue.create () in
    Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
    let topo = Array.make n (-1) in
    let filled = ref 0 in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      topo.(!filled) <- i;
      incr filled;
      Array.iter
        (fun succ ->
          indeg.(succ) <- indeg.(succ) - 1;
          if indeg.(succ) = 0 then Queue.add succ queue)
        fanouts.(i)
    done;
    if !filled <> n then malformed "circuit contains a combinational cycle";
    let levels = Array.make n 0 in
    Array.iter
      (fun i ->
        let nd = nodes.(i) in
        if nd.kind <> Gate.Input then
          levels.(i) <-
            1 + Array.fold_left (fun acc src -> max acc levels.(src)) 0 nd.fanin)
      topo;
    {
      title = b.b_title;
      nodes;
      inputs;
      outputs;
      fanouts;
      levels;
      topo_order = topo;
    }
end

let node_count c = Array.length c.nodes
let input_count c = Array.length c.inputs
let output_count c = Array.length c.outputs
let gate_count c = node_count c - input_count c

let depth c = Array.fold_left max 0 c.levels

let find_opt c name =
  let n = node_count c in
  let rec scan i =
    if i >= n then None
    else if String.equal c.nodes.(i).name name then Some i
    else scan (i + 1)
  in
  scan 0

let find c name =
  match find_opt c name with Some i -> i | None -> raise Not_found

let name c id = c.nodes.(id).name

let is_output c id = Array.exists (fun o -> o = id) c.outputs

let gate_mix c =
  let tally = Hashtbl.create 8 in
  Array.iter
    (fun nd ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tally nd.kind) in
      Hashtbl.replace tally nd.kind (cur + 1))
    c.nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let line_count c =
  Array.fold_left (fun acc nd -> acc + 1 + Array.length nd.fanin) 0 c.nodes

let validate c =
  let n = node_count c in
  let seen = Hashtbl.create n in
  Array.iteri
    (fun i nd ->
      if nd.id <> i then malformed "node %d has inconsistent id %d" i nd.id;
      if Hashtbl.mem seen nd.name then malformed "duplicate signal %S" nd.name;
      Hashtbl.add seen nd.name ();
      if not (Gate.arity_ok nd.kind (Array.length nd.fanin)) then
        malformed "gate %S has bad arity" nd.name;
      Array.iter
        (fun src ->
          if src < 0 || src >= n then malformed "gate %S has dangling fanin" nd.name;
          if nd.kind <> Gate.Input && c.levels.(src) >= c.levels.(i) then
            malformed "levels not monotone at %S" nd.name)
        nd.fanin)
    c.nodes;
  if Array.length c.topo_order <> n then malformed "topo order incomplete";
  Array.iter
    (fun o -> if o < 0 || o >= n then malformed "dangling output id %d" o)
    c.outputs

let pp_summary ppf c =
  let mix =
    gate_mix c
    |> List.map (fun (k, v) -> Printf.sprintf "%s:%d" (Gate.to_string k) v)
    |> String.concat " "
  in
  Format.fprintf ppf
    "%s: %d nodes (%d PI, %d gates, %d PO), depth %d, %d fault lines [%s]"
    c.title (node_count c) (input_count c) (gate_count c) (output_count c)
    (depth c) (line_count c) mix
