(** Built-in benchmark circuits.

    [c17] is the exact ISCAS-85 c17 netlist.  [c432s] is the deterministic
    c432-scale synthetic circuit standing in for the paper's c432 layout
    (same 36-PI/7-PO interface and ISCAS-85 gate-mix profile; see DESIGN.md
    §4 for the substitution rationale). *)

val c17 : unit -> Circuit.t
(** 5 inputs, 2 outputs, 6 NAND gates — the smallest ISCAS-85 circuit. *)

val c432s : unit -> Circuit.t
(** 36 inputs, 7 outputs, ~160 gates with the published c432 gate mix
    (NAND-dominated with NOT, NOR, XOR, AND).  Deterministic. *)

val c432s_small : unit -> Circuit.t
(** A ~40-gate circuit with the same mix, for fast integration tests. *)

val by_name : string -> Circuit.t option
(** Lookup by benchmark name. *)

val all : (string * (unit -> Circuit.t)) list
(** Name/constructor pairs for every built-in benchmark. *)
