let c17_text =
  "# c17 (ISCAS-85)\n\
   INPUT(n1)\n\
   INPUT(n2)\n\
   INPUT(n3)\n\
   INPUT(n6)\n\
   INPUT(n7)\n\
   OUTPUT(n22)\n\
   OUTPUT(n23)\n\
   n10 = NAND(n1, n3)\n\
   n11 = NAND(n3, n6)\n\
   n16 = NAND(n2, n11)\n\
   n19 = NAND(n11, n7)\n\
   n22 = NAND(n10, n16)\n\
   n23 = NAND(n16, n19)\n"

let c17 () = Bench_format.parse_string ~title:"c17" c17_text

(* c432 is a bus interrupt controller built from 9-bit priority logic
   (36 PI, 7 PO, 160 gates dominated by NAND with a significant XOR
   population); the structured generator mirrors that composition. *)
let c432s () = Generator.priority_controller ~title:"c432s" ~slices:9 ()

let c432s_small () =
  Generator.priority_controller ~title:"c432s_small" ~slices:3 ()

let all =
  [
    ("c17", c17);
    ("c432s", c432s);
    ("c432s_small", c432s_small);
    ("add8", fun () -> Generator.ripple_adder 8);
    ("add16", fun () -> Generator.ripple_adder 16);
    ("cmp8", fun () -> Generator.equality_comparator 8);
    ("par16", fun () -> Generator.parity_tree 16);
    ("mux3", fun () -> Generator.multiplexer 3);
    ("dec4", fun () -> Generator.decoder 4);
    ("cla8", fun () -> Generator.carry_lookahead_adder 8);
    ("mul4", fun () -> Generator.array_multiplier 4);
  ]

let by_name name =
  List.assoc_opt name all |> Option.map (fun make -> make ())
