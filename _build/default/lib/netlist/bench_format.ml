exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '[' | ']' | '-' | '$' -> true
  | _ -> false

let check_ident lineno s =
  if s = "" then fail lineno "empty signal name";
  String.iter
    (fun ch ->
      if not (is_ident_char ch) then
        fail lineno "invalid character %C in signal name %S" ch s)
    s;
  s

(* "INPUT(g1)" -> Some ("INPUT", "g1") for declaration lines. *)
let parse_decl lineno line =
  match String.index_opt line '(' with
  | None -> fail lineno "expected '(' in declaration"
  | Some lp ->
      let keyword = String.trim (String.sub line 0 lp) in
      (match String.rindex_opt line ')' with
      | None -> fail lineno "missing ')'"
      | Some rp when rp < lp -> fail lineno "mismatched parentheses"
      | Some rp ->
          let arg = String.trim (String.sub line (lp + 1) (rp - lp - 1)) in
          (String.uppercase_ascii keyword, check_ident lineno arg))

let parse_gate lineno builder line eq_pos =
  let lhs = check_ident lineno (String.trim (String.sub line 0 eq_pos)) in
  let rhs = String.trim (String.sub line (eq_pos + 1) (String.length line - eq_pos - 1)) in
  match String.index_opt rhs '(' with
  | None -> fail lineno "expected GATE(...) on right-hand side"
  | Some lp ->
      let kind_name = String.trim (String.sub rhs 0 lp) in
      let kind =
        match Gate.of_string kind_name with
        | Some k -> k
        | None -> fail lineno "unknown gate type %S" kind_name
      in
      (match String.rindex_opt rhs ')' with
      | None -> fail lineno "missing ')'"
      | Some rp when rp < lp -> fail lineno "mismatched parentheses"
      | Some rp ->
          let args = String.sub rhs (lp + 1) (rp - lp - 1) in
          let fanin =
            String.split_on_char ',' args
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
            |> List.map (check_ident lineno)
          in
          if fanin = [] then fail lineno "gate %S has no inputs" lhs;
          (try Circuit.Builder.add_gate builder lhs kind fanin
           with Circuit.Malformed m -> fail lineno "%s" m))

let parse_string ?(title = "bench") text =
  let builder = Circuit.Builder.create ~title in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        match String.index_opt line '=' with
        | Some eq -> parse_gate lineno builder line eq
        | None -> (
            match parse_decl lineno line with
            | "INPUT", name -> (
                try Circuit.Builder.add_input builder name
                with Circuit.Malformed m -> fail lineno "%s" m)
            | "OUTPUT", name -> Circuit.Builder.add_output builder name
            | kw, _ -> fail lineno "unknown declaration %S" kw))
    lines;
  Circuit.Builder.finalize builder

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let title = Filename.remove_extension (Filename.basename path) in
  parse_string ~title text

let to_string (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" c.title);
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.name c i)))
    c.inputs;
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Circuit.name c i)))
    c.outputs;
  Array.iter
    (fun i ->
      let nd = c.nodes.(i) in
      if nd.kind <> Gate.Input then begin
        let args =
          Array.to_list nd.fanin |> List.map (Circuit.name c) |> String.concat ", "
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" nd.name (Gate.to_string nd.kind) args)
      end)
    c.topo_order;
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string c))
