(** Combinational gate-level circuits.

    A circuit is a DAG of named nodes; primary inputs are nodes of kind
    {!Gate.Input}, primary outputs are a designated subset of nodes.  The
    representation is immutable after construction; use {!Builder} to
    assemble one, or {!Bench_format} to parse ISCAS-85 files. *)

type node = {
  id : int;              (** Dense index into {!nodes}. *)
  name : string;         (** Unique signal name. *)
  kind : Gate.kind;
  fanin : int array;     (** Ids of driving nodes, in pin order. *)
}

type t = private {
  title : string;
  nodes : node array;        (** Indexed by [id]. *)
  inputs : int array;        (** Primary-input node ids, declaration order. *)
  outputs : int array;       (** Primary-output node ids, declaration order. *)
  fanouts : int array array; (** [fanouts.(i)]: ids of nodes reading node [i]. *)
  levels : int array;        (** [levels.(i)]: longest path from any PI. *)
  topo_order : int array;    (** All node ids in topological order. *)
}

exception Malformed of string
(** Raised by {!Builder.finalize} on cycles, dangling references, arity
    violations or duplicate names. *)

module Builder : sig
  type circuit := t
  type t

  val create : title:string -> t

  val add_input : t -> string -> unit
  (** Declare a primary input. *)

  val add_gate : t -> string -> Gate.kind -> string list -> unit
  (** [add_gate b name kind fanin_names] declares a gate driven by the named
      signals (which may be declared later). *)

  val add_output : t -> string -> unit
  (** Mark a declared-or-future signal as a primary output. *)

  val finalize : t -> circuit
  (** Resolve names, check well-formedness, levelize. @raise Malformed *)
end

val node_count : t -> int
val gate_count : t -> int
(** Number of non-input nodes. *)

val input_count : t -> int
val output_count : t -> int

val depth : t -> int
(** Maximum level over all nodes (0 for an input-only circuit). *)

val find : t -> string -> int
(** Node id by name. @raise Not_found *)

val find_opt : t -> string -> int option

val name : t -> int -> string
(** Name of node [id]. *)

val is_output : t -> int -> bool

val gate_mix : t -> (Gate.kind * int) list
(** Count of nodes per kind, descending by count. *)

val line_count : t -> int
(** Number of fault-site lines: one stem per node plus one branch per
    gate-input pin (the classical stuck-at line universe). *)

val validate : t -> unit
(** Re-check all invariants; raises [Malformed] on violation.  Useful in
    tests after structural surgery. *)

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph human summary (counts, depth, gate mix). *)
