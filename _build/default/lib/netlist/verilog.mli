(** Structural Verilog reader and writer for the gate-primitive subset that
    combinational benchmark netlists use:

    {v
      module name (ports...);
        input a, b;
        output y;
        wire w1;
        nand g1 (w1, a, b);   // output first, then inputs
        not  g2 (y, w1);
      endmodule
    v}

    Supported primitives: [and or nand nor xor xnor not buf].  Instance
    names are optional (as Verilog allows); line ([//]) and block comments
    are skipped. *)

exception Parse_error of { line : int; message : string }

val parse_string : ?title:string -> string -> Circuit.t
(** Title defaults to the module name.
    @raise Parse_error on syntax errors
    @raise Circuit.Malformed on structural errors *)

val parse_file : string -> Circuit.t

val to_string : Circuit.t -> string
(** Render a circuit as a structural Verilog module;
    [parse_string (to_string c)] is behaviourally identical to [c]. *)

val write_file : string -> Circuit.t -> unit
