open Dl_netlist

type t = { probs : float array }

let estimate ?(seed = 1) ~samples (c : Circuit.t) ~faults =
  if samples <= 0 then invalid_arg "Detectability.estimate: samples must be positive";
  let rng = Dl_util.Rng.create seed in
  let n = Array.length faults in
  let hits = Array.make n 0 in
  let vectors =
    Array.init samples (fun _ ->
        Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))
  in
  let on_detect ~fault_index ~vector_index:_ =
    hits.(fault_index) <- hits.(fault_index) + 1
  in
  let (_ : Fault_sim.result) =
    Fault_sim.run ~drop_detected:false ~on_detect c ~faults ~vectors
  in
  { probs = Array.map (fun h -> float_of_int h /. float_of_int samples) hits }

let of_probabilities probs =
  Array.iter
    (fun p ->
      if not (p >= 0.0 && p <= 1.0) then
        invalid_arg "Detectability.of_probabilities: probability outside [0,1]")
    probs;
  { probs = Array.copy probs }

let probabilities t = Array.copy t.probs

let expected_coverage t k =
  if k < 0 then invalid_arg "Detectability.expected_coverage: negative k";
  let n = Array.length t.probs in
  if n = 0 then 1.0
  else begin
    let escaping =
      Dl_util.Stats.total
        (Array.map (fun p -> Dl_util.Numerics.pow1m (1.0 -. p) (float_of_int k)) t.probs)
    in
    1.0 -. (escaping /. float_of_int n)
  end

let expected_curve t ~ks = Array.map (fun k -> (k, expected_coverage t k)) ks

let escape_probability t k = 1.0 -. expected_coverage t k

let mean_detectability t = Dl_util.Stats.mean t.probs

let hardest t n =
  let indexed = Array.mapi (fun i p -> (i, p)) t.probs in
  Array.sort (fun (_, a) (_, b) -> compare a b) indexed;
  Array.to_list (Array.sub indexed 0 (min n (Array.length indexed)))

let test_length_for t ~target =
  if not (target >= 0.0 && target <= 1.0) then
    invalid_arg "Detectability.test_length_for: target outside [0,1]";
  let detectable =
    Array.fold_left (fun acc p -> if p > 0.0 then acc + 1 else acc) 0 t.probs
  in
  let ceiling = float_of_int detectable /. float_of_int (max 1 (Array.length t.probs)) in
  if target > ceiling then None
  else begin
    (* Exponential search then bisection on the monotone expected curve. *)
    let rec upper k = if expected_coverage t k >= target then k else upper (2 * k) in
    let hi = upper 1 in
    let rec bisect lo hi =
      if hi - lo <= 1 then hi
      else begin
        let mid = (lo + hi) / 2 in
        if expected_coverage t mid >= target then bisect lo mid else bisect mid hi
      end
    in
    Some (if expected_coverage t 0 >= target then 0 else bisect 0 hi)
  end
