open Dl_netlist
module Sim2 = Dl_logic.Sim2

type result = {
  faults : Stuck_at.t array;
  first_detection : int option array;
  vectors_applied : int;
  gate_evaluations : int;
}

(* Pending-node schedule bucketed by level, so faulty values propagate in
   topological order and each node is evaluated once per fault/block. *)
module Schedule = struct
  type t = {
    buckets : int list array;
    queued : bool array;
    mutable level : int;
    mutable remaining : int;
  }

  let create depth nodes =
    {
      buckets = Array.make (depth + 1) [];
      queued = Array.make nodes false;
      level = 0;
      remaining = 0;
    }

  let push t ~level id =
    if not t.queued.(id) then begin
      t.queued.(id) <- true;
      t.buckets.(level) <- id :: t.buckets.(level);
      if level < t.level then t.level <- level;
      t.remaining <- t.remaining + 1
    end

  let reset t = t.level <- 0

  let pop t =
    if t.remaining = 0 then None
    else begin
      while t.buckets.(t.level) = [] do
        t.level <- t.level + 1
      done;
      match t.buckets.(t.level) with
      | [] -> assert false
      | id :: rest ->
          t.buckets.(t.level) <- rest;
          t.queued.(id) <- false;
          t.remaining <- t.remaining - 1;
          Some id
    end
end

let lowest_set_bit w =
  if w = 0L then None
  else begin
    let rec scan i =
      if Int64.logand (Int64.shift_right_logical w i) 1L = 1L then i else scan (i + 1)
    in
    Some (scan 0)
  end

let run ?(drop_detected = true) ?on_detect (c : Circuit.t) ~faults ~vectors =
  let n_nodes = Circuit.node_count c in
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  let live = Array.make n_faults true in
  let gate_evaluations = ref 0 in
  let schedule = Schedule.create (Circuit.depth c) n_nodes in
  let faulty = Array.make n_nodes 0L in
  let touched = Array.make n_nodes false in
  let touched_list = ref [] in
  let is_output = Array.make n_nodes false in
  Array.iter (fun o -> is_output.(o) <- true) c.outputs;
  let touch id v =
    if not touched.(id) then begin
      touched.(id) <- true;
      touched_list := id :: !touched_list
    end;
    faulty.(id) <- v
  in
  let clear_touched () =
    List.iter (fun id -> touched.(id) <- false) !touched_list;
    touched_list := [];
    Schedule.reset schedule
  in
  let value_of good id = if touched.(id) then faulty.(id) else good.(id) in
  let n_vectors = Array.length vectors in
  let n_blocks = (n_vectors + 63) / 64 in
  let block = ref 0 in
  while !block < n_blocks do
    let base = !block * 64 in
    let count = min 64 (n_vectors - base) in
    let patterns = Array.sub vectors base count in
    let words = Sim2.words_of_patterns c patterns in
    let good = Sim2.run c words in
    let valid_mask =
      if count = 64 then -1L else Int64.sub (Int64.shift_left 1L count) 1L
    in
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        let f : Stuck_at.t = faults.(fi) in
        let stuck_word = if Stuck_at.polarity_bool f.polarity then -1L else 0L in
        (* Seed the faulty machine at the fault site. *)
        let detect_word = ref 0L in
        let seeded =
          match f.site with
          | Stuck_at.Stem id ->
              let diff = Int64.logand (Int64.logxor good.(id) stuck_word) valid_mask in
              if diff = 0L then false
              else begin
                touch id stuck_word;
                if is_output.(id) then detect_word := diff;
                Array.iter
                  (fun succ -> Schedule.push schedule ~level:c.levels.(succ) succ)
                  c.fanouts.(id);
                true
              end
          | Stuck_at.Branch { gate; pin } ->
              let nd = c.nodes.(gate) in
              let ins = Array.map (fun src -> good.(src)) nd.fanin in
              ins.(pin) <- stuck_word;
              incr gate_evaluations;
              let v = Gate.eval_word nd.kind ins in
              let diff = Int64.logand (Int64.logxor good.(gate) v) valid_mask in
              if diff = 0L then false
              else begin
                touch gate v;
                if is_output.(gate) then detect_word := diff;
                Array.iter
                  (fun succ -> Schedule.push schedule ~level:c.levels.(succ) succ)
                  c.fanouts.(gate);
                true
              end
        in
        if seeded then begin
          let rec drain () =
            match Schedule.pop schedule with
            | None -> ()
            | Some id ->
                let nd = c.nodes.(id) in
                let ins = Array.map (value_of good) nd.fanin in
                (* A branch fault keeps forcing its pin on every evaluation
                   of its host gate. *)
                (match f.site with
                | Stuck_at.Branch { gate; pin } when gate = id ->
                    ins.(pin) <- stuck_word
                | _ -> ());
                incr gate_evaluations;
                let v = Gate.eval_word nd.kind ins in
                let forced =
                  match f.site with
                  | Stuck_at.Stem sid when sid = id -> stuck_word
                  | _ -> v
                in
                let diff = Int64.logand (Int64.logxor good.(id) forced) valid_mask in
                if diff <> 0L || touched.(id) then begin
                  touch id forced;
                  if diff <> 0L then begin
                    if is_output.(id) then detect_word := Int64.logor !detect_word diff;
                    Array.iter
                      (fun succ -> Schedule.push schedule ~level:c.levels.(succ) succ)
                      c.fanouts.(id)
                  end
                end;
                drain ()
          in
          drain ();
          if !detect_word <> 0L then begin
            (match lowest_set_bit !detect_word with
            | Some bit ->
                let vec = base + bit in
                if first_detection.(fi) = None then first_detection.(fi) <- Some vec
            | None -> ());
            (match on_detect with
            | Some callback ->
                for bit = 0 to count - 1 do
                  if Int64.logand (Int64.shift_right_logical !detect_word bit) 1L = 1L
                  then callback ~fault_index:fi ~vector_index:(base + bit)
                done
            | None -> ());
            if drop_detected then live.(fi) <- false
          end;
          clear_touched ()
        end
      end
    done;
    incr block
  done;
  {
    faults;
    first_detection;
    vectors_applied = n_vectors;
    gate_evaluations = !gate_evaluations;
  }

let detected_count r =
  Array.fold_left
    (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
    0 r.first_detection

let coverage r =
  if Array.length r.faults = 0 then 1.0
  else float_of_int (detected_count r) /. float_of_int (Array.length r.faults)

let detects_fault (c : Circuit.t) (f : Stuck_at.t) vector =
  let module Sim3 = Dl_logic.Sim3 in
  let module Ternary = Dl_logic.Ternary in
  let pi = Array.map Ternary.of_bool vector in
  let good = Sim3.outputs_of c (Sim3.run c pi) in
  let bad =
    Sim3.outputs_of c
      (Sim3.run_with_fault c
         ~site:(Stuck_at.to_sim3_site f.site)
         ~stuck:(Stuck_at.polarity_bool f.polarity)
         pi)
  in
  let differs = ref false in
  Array.iteri
    (fun i g ->
      match (g, bad.(i)) with
      | Ternary.V0, Ternary.V1 | Ternary.V1, Ternary.V0 -> differs := true
      | _ -> ())
    good;
  !differs
