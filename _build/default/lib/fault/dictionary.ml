type t = {
  n_faults : int;
  n_vectors : int;
  (* Row-major bitset: bit (f * n_vectors + v). *)
  bits : Bytes.t;
}

let bit_index t ~fault ~vector = (fault * t.n_vectors) + vector

let get_bit t i =
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit t i =
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i land 7))))

let build c ~faults ~vectors =
  let n_faults = Array.length faults in
  let n_vectors = Array.length vectors in
  let t =
    {
      n_faults;
      n_vectors;
      bits = Bytes.make (((n_faults * n_vectors) + 7) / 8) '\000';
    }
  in
  let on_detect ~fault_index ~vector_index =
    set_bit t (bit_index t ~fault:fault_index ~vector:vector_index)
  in
  let _ = Fault_sim.run ~drop_detected:false ~on_detect c ~faults ~vectors in
  t

let fault_count t = t.n_faults
let vector_count t = t.n_vectors

let check t ~fault ~vector =
  if fault < 0 || fault >= t.n_faults then invalid_arg "Dictionary: fault out of range";
  if vector < 0 || vector >= t.n_vectors then
    invalid_arg "Dictionary: vector out of range"

let detects t ~fault ~vector =
  check t ~fault ~vector;
  get_bit t (bit_index t ~fault ~vector)

let detecting_vectors t fault =
  check t ~fault ~vector:0;
  List.filter
    (fun v -> get_bit t (bit_index t ~fault ~vector:v))
    (List.init t.n_vectors Fun.id)

let detected_faults t vector =
  check t ~fault:0 ~vector;
  List.filter
    (fun f -> get_bit t (bit_index t ~fault:f ~vector))
    (List.init t.n_faults Fun.id)

let detection_counts t =
  Array.init t.n_vectors (fun v -> List.length (detected_faults t v))

let candidates t ~failing ~passing =
  List.filter
    (fun f ->
      List.for_all (fun v -> detects t ~fault:f ~vector:v) failing
      && List.for_all (fun v -> not (detects t ~fault:f ~vector:v)) passing)
    (List.init t.n_faults Fun.id)

let essential_vectors t =
  let essential = Hashtbl.create 16 in
  for f = 0 to t.n_faults - 1 do
    match detecting_vectors t f with
    | [ only ] -> Hashtbl.replace essential only ()
    | _ -> ()
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) essential [] |> List.sort Stdlib.compare

let greedy_compaction t =
  let covered = Array.make t.n_faults false in
  (* Faults never detected by any vector cannot constrain the cover. *)
  for f = 0 to t.n_faults - 1 do
    if detecting_vectors t f = [] then covered.(f) <- true
  done;
  let chosen = ref [] in
  let remaining () = Array.exists not covered in
  while remaining () do
    let best = ref (-1) and best_gain = ref 0 in
    for v = 0 to t.n_vectors - 1 do
      let gain =
        List.length (List.filter (fun f -> not covered.(f)) (detected_faults t v))
      in
      if gain > !best_gain then begin
        best := v;
        best_gain := gain
      end
    done;
    if !best < 0 then
      (* Unreachable given the pre-pass above, but keep the loop total. *)
      Array.iteri (fun f _ -> covered.(f) <- true) covered
    else begin
      chosen := !best :: !chosen;
      List.iter (fun f -> covered.(f) <- true) (detected_faults t !best)
    end
  done;
  List.rev !chosen

let detection_counts_per_fault t =
  Array.init t.n_faults (fun f -> List.length (detecting_vectors t f))

let n_detect_coverage t ~n =
  if n <= 0 then invalid_arg "Dictionary.n_detect_coverage: n must be positive";
  if t.n_faults = 0 then 1.0
  else begin
    let counts = detection_counts_per_fault t in
    let hit = Array.fold_left (fun acc c -> if c >= n then acc + 1 else acc) 0 counts in
    float_of_int hit /. float_of_int t.n_faults
  end

let n_detect_profile t ~max_n =
  List.init max_n (fun i -> (i + 1, n_detect_coverage t ~n:(i + 1)))

let closest_candidates t ~failing ~passing ~limit =
  if limit <= 0 then invalid_arg "Dictionary.closest_candidates: limit must be positive";
  let score f =
    let miss =
      List.fold_left
        (fun acc v -> if detects t ~fault:f ~vector:v then acc else acc + 1)
        0 failing
    in
    let extra =
      List.fold_left
        (fun acc v -> if detects t ~fault:f ~vector:v then acc + 1 else acc)
        0 passing
    in
    miss + extra
  in
  List.init t.n_faults (fun f -> (f, score f))
  |> List.sort (fun (_, a) (_, b) -> compare a b)
  |> List.filteri (fun i _ -> i < limit)
