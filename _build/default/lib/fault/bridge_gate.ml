open Dl_netlist
module Ternary = Dl_logic.Ternary

type behaviour = Wired_and | Wired_or | A_dominates | B_dominates

type t = { net_a : int; net_b : int; behaviour : behaviour }

let resolved_values behaviour ~a ~b =
  match behaviour with
  | Wired_and -> (a && b, a && b)
  | Wired_or -> (a || b, a || b)
  | A_dominates -> (a, a)
  | B_dominates -> (b, b)

(* Single-pass evaluation: the shorted values are injected and propagated
   once; a feedback bridge (one net in the other's cone) is treated
   combinationally, the standard gate-level approximation. *)
let faulty_map (c : Circuit.t) f good =
  let a = good.(f.net_a) and b = good.(f.net_b) in
  let a', b' = resolved_values f.behaviour ~a ~b in
  Dl_logic.Propagate.run c good
    [ (f.net_a, Ternary.of_bool a'); (f.net_b, Ternary.of_bool b') ]

let detects (c : Circuit.t) f vector =
  let good = Dl_logic.Sim2.run_single c vector in
  Dl_logic.Propagate.po_detects c good (faulty_map c f good)

type result = {
  faults : t array;
  first_detection : int option array;
  vectors_applied : int;
}

let run (c : Circuit.t) ~faults ~vectors =
  let n = Array.length faults in
  Array.iter
    (fun f ->
      let bound = Circuit.node_count c in
      if f.net_a < 0 || f.net_a >= bound || f.net_b < 0 || f.net_b >= bound then
        invalid_arg "Bridge_gate.run: net id out of range";
      if f.net_a = f.net_b then invalid_arg "Bridge_gate.run: self-bridge")
    faults;
  let first_detection = Array.make n None in
  Array.iteri
    (fun k vector ->
      let good = Dl_logic.Sim2.run_single c vector in
      for i = 0 to n - 1 do
        if first_detection.(i) = None then
          if Dl_logic.Propagate.po_detects c good (faulty_map c faults.(i) good)
          then first_detection.(i) <- Some k
      done)
    vectors;
  { faults; first_detection; vectors_applied = Array.length vectors }

let coverage r =
  if Array.length r.faults = 0 then 1.0
  else begin
    let hit =
      Array.fold_left
        (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
        0 r.first_detection
    in
    float_of_int hit /. float_of_int (Array.length r.faults)
  end

let candidate_pairs ?(seed = 1) ?(count = 100) (c : Circuit.t) =
  let rng = Dl_util.Rng.create seed in
  let gates =
    Array.of_seq
      (Seq.filter_map
         (fun (nd : Circuit.node) ->
           if nd.kind = Gate.Input then None else Some nd.id)
         (Array.to_seq c.nodes))
  in
  if Array.length gates < 2 then [||]
  else begin
    let seen = Hashtbl.create count in
    let out = ref [] in
    let tries = ref 0 in
    while Hashtbl.length seen < count && !tries < count * 50 do
      incr tries;
      let a = Dl_util.Rng.choose rng gates and b = Dl_util.Rng.choose rng gates in
      if a <> b then begin
        let key = (min a b, max a b) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          out := key :: !out
        end
      end
    done;
    Array.of_list (List.rev !out)
  end
