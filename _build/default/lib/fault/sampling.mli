(** Statistical fault sampling (Agrawal 1981): estimate fault coverage from
    a random sample of the fault universe instead of simulating every
    fault — the standard production shortcut for multi-million-fault
    designs, with a confidence interval for the estimate. *)

open Dl_netlist

type estimate = {
  coverage : float;      (** Point estimate from the sample. *)
  half_width : float;    (** Confidence half-interval. *)
  confidence : float;    (** The confidence level used. *)
  sample_size : int;
  detected_in_sample : int;
}

val estimate_coverage :
  ?seed:int ->
  ?confidence:float ->
  sample_size:int ->
  Circuit.t ->
  faults:Stuck_at.t array ->
  vectors:bool array array ->
  estimate
(** Simulate only a uniform random sample of [faults] against [vectors].
    [confidence] defaults to 0.95 (normal-approximation interval, finite-
    population corrected).  @raise Invalid_argument if [sample_size]
    exceeds the fault count or is not positive. *)

val required_sample_size : ?confidence:float -> half_width:float -> unit -> int
(** Sample size so the interval half-width is at most [half_width] in the
    worst case (p = 1/2): the classic [z²/(4 e²)] bound. *)

val interval_ok : estimate -> actual:float -> bool
(** Whether the true coverage lies inside the interval (for validation). *)
