(** Per-fault random-pattern detection probabilities and the coverage
    curves they induce.

    The susceptibility law of eq. 7 is an aggregate description; underneath
    it, each fault [i] has a detection probability [p_i] per random vector
    (Wagner/Chin/McCluskey pseudo-random testing; the paper's refs [18-20]),
    and the expected coverage after [k] independent vectors is

    {v T(k) = 1 - (1/n) Σ_i (1 - p_i)^k v}

    This module estimates the [p_i] empirically by no-drop fault simulation
    over a Monte-Carlo vector sample and evaluates the induced curve — the
    first-principles counterpart that {!Dl_core.Susceptibility.fit_curve}
    can then summarize into a single [s]. *)

open Dl_netlist

type t

val estimate :
  ?seed:int -> samples:int -> Circuit.t -> faults:Stuck_at.t array -> t
(** Estimate detection probabilities from [samples] uniform random vectors
    (no fault dropping; cost grows with [samples] x faults). *)

val of_probabilities : float array -> t
(** Wrap known probabilities (e.g. analytic ones, for tests). *)

val probabilities : t -> float array

val expected_coverage : t -> int -> float
(** Expected coverage after [k] random vectors. *)

val expected_curve : t -> ks:int array -> (int * float) array

val escape_probability : t -> int -> float
(** Expected fraction of faults escaping a [k]-vector random test:
    [1 - expected_coverage]. *)

val mean_detectability : t -> float

val hardest : t -> int -> (int * float) list
(** The [n] lowest-probability fault indices (random-pattern-resistant
    faults, the candidates for deterministic top-up). *)

val test_length_for : t -> target:float -> int option
(** Smallest [k] whose expected coverage reaches [target]; [None] if the
    target exceeds the fraction of faults with nonzero estimated
    probability. *)
