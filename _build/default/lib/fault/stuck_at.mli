(** Single line stuck-at faults: the abstract fault model whose coverage is
    the [T] of the paper's equations.

    Fault sites follow the classical line model: one *stem* per node output
    plus one *branch* per gate-input pin fed from a multi-fanout net (on
    fanout-free nets the branch is equivalent to the stem and is not
    enumerated). *)

open Dl_netlist

type polarity = Sa0 | Sa1

type site =
  | Stem of int  (** Output of node [id]. *)
  | Branch of { gate : int; pin : int }  (** Input [pin] of node [gate]. *)

type t = { site : site; polarity : polarity }

val compare : t -> t -> int
val equal : t -> t -> bool
val polarity_bool : polarity -> bool
val to_string : Circuit.t -> t -> string
(** E.g. ["n11 SA0"] or ["n16.in1 SA1"]. *)

val to_sim3_site : site -> Dl_logic.Sim3.site

val universe : Circuit.t -> t array
(** The full uncollapsed fault list (both polarities at every site), in a
    deterministic order. *)

val collapse : Circuit.t -> t array -> t array
(** Equivalence collapsing: within each gate, an input stuck at the
    controlling value is equivalent to the output stuck at the controlled
    response; BUF/NOT input faults are equivalent to (possibly inverted)
    output faults.  Returns one representative per equivalence class,
    preserving the input order of representatives. *)

val equivalence_classes : Circuit.t -> t array -> t array array
(** The partition underlying {!collapse}. *)

val checkpoints : Circuit.t -> t array
(** Checkpoint faults (primary inputs and fanout branches, both
    polarities): a test set detecting all checkpoints detects all
    single stuck-at faults in a fanout-free-reconvergent sense
    (checkpoint theorem). *)
