(** Gross-delay transition faults (slow-to-rise / slow-to-fall).

    The paper's conclusion calls for delay testing alongside voltage and
    current testing; the transition fault is its standard abstract model.
    Under the gross-delay assumption, a slow-to-rise fault at node [n] is
    detected by the consecutive vector pair [(v1, v2)] iff [v1] sets [n]
    to 0 (the launch) and [v2] detects [n] stuck-at-0 (the capture) —
    which reduces two-pattern simulation to the stuck-at machinery. *)

open Dl_netlist

type edge = Rise | Fall

type t = { node : int; edge : edge }

val universe : Circuit.t -> t array
(** Both transitions at every node (2 x node count). *)

val to_string : Circuit.t -> t -> string

type result = {
  faults : t array;
  first_detection : int option array;
      (** Index of the capture vector of the first detecting pair; pairs
          are consecutive positions in the applied sequence, so index k
          means the pair (k-1, k). *)
  vectors_applied : int;
}

val run : Circuit.t -> faults:t array -> vectors:bool array array -> result
(** Two-pattern simulation of the whole (ordered) vector sequence. *)

val coverage : result -> float

val coverage_curve : result -> Coverage.t

val detects_pair : Circuit.t -> t -> v1:bool array -> v2:bool array -> bool
(** Single-pair oracle via the launch/capture reduction (for tests). *)
