(** Gate-level bridging-fault models.

    Before switch-level simulation became routine, bridges were modeled at
    gate level with a behavioural rule for the shorted value: wired-AND
    (the CMOS-typical outcome with strong pull-downs), wired-OR, or
    one-net-dominates.  This module provides that family — both as a cheap
    simulator in its own right and as the cross-check for the switch-level
    strength model (a hard short whose pull-downs win everywhere behaves
    exactly wired-AND). *)

open Dl_netlist

type behaviour =
  | Wired_and
  | Wired_or
  | A_dominates  (** Net [a] drives both. *)
  | B_dominates

type t = {
  net_a : int;  (** Circuit node id. *)
  net_b : int;
  behaviour : behaviour;
}

val resolved_values : behaviour -> a:bool -> b:bool -> bool * bool
(** Faulty values [(a', b')] of the two nets when the good values are
    [(a, b)]. *)

val detects : Circuit.t -> t -> bool array -> bool
(** Single-vector detection by static voltage. *)

type result = {
  faults : t array;
  first_detection : int option array;
  vectors_applied : int;
}

val run : Circuit.t -> faults:t array -> vectors:bool array array -> result

val coverage : result -> float

val candidate_pairs :
  ?seed:int -> ?count:int -> Circuit.t -> (int * int) array
(** Deterministic sample of distinct gate-output net pairs for bridge
    studies when no layout is available (default 100 pairs). *)
