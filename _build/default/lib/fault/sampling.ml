type estimate = {
  coverage : float;
  half_width : float;
  confidence : float;
  sample_size : int;
  detected_in_sample : int;
}

(* Two-sided standard-normal quantile by bisection on the error function. *)
let z_of_confidence confidence =
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Sampling: confidence must be in (0, 1)";
  let phi z = 0.5 *. (1.0 +. Float.erf (z /. sqrt 2.0)) in
  let target = 0.5 +. (confidence /. 2.0) in
  Dl_util.Numerics.brent ~f:(fun z -> phi z -. target) 0.0 10.0

let estimate_coverage ?(seed = 1) ?(confidence = 0.95) ~sample_size c ~faults
    ~vectors =
  let n = Array.length faults in
  if sample_size <= 0 || sample_size > n then
    invalid_arg "Sampling.estimate_coverage: sample size out of range";
  let rng = Dl_util.Rng.create seed in
  let sample = Dl_util.Rng.sample rng faults sample_size in
  let r = Fault_sim.run c ~faults:sample ~vectors in
  let detected = Fault_sim.detected_count r in
  let p = float_of_int detected /. float_of_int sample_size in
  let z = z_of_confidence confidence in
  (* Normal approximation with finite-population correction. *)
  let fpc =
    if n <= 1 then 0.0
    else sqrt (float_of_int (n - sample_size) /. float_of_int (n - 1))
  in
  let stderr = sqrt (p *. (1.0 -. p) /. float_of_int sample_size) *. fpc in
  {
    coverage = p;
    half_width = z *. stderr;
    confidence;
    sample_size;
    detected_in_sample = detected;
  }

let required_sample_size ?(confidence = 0.95) ~half_width () =
  if half_width <= 0.0 then
    invalid_arg "Sampling.required_sample_size: half_width must be positive";
  let z = z_of_confidence confidence in
  int_of_float (Float.ceil (z *. z /. (4.0 *. half_width *. half_width)))

let interval_ok e ~actual =
  actual >= e.coverage -. e.half_width && actual <= e.coverage +. e.half_width
