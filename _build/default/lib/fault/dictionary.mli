(** Full-response fault dictionaries: which vectors detect which faults.

    Built by a no-drop PPSFP pass; supports the classic diagnosis queries
    (candidate faults for an observed failing-vector signature) and test
    compaction analysis. *)

open Dl_netlist

type t

val build : Circuit.t -> faults:Stuck_at.t array -> vectors:bool array array -> t

val fault_count : t -> int
val vector_count : t -> int

val detects : t -> fault:int -> vector:int -> bool

val detecting_vectors : t -> int -> int list
(** Vectors (ascending) that detect the given fault index. *)

val detected_faults : t -> int -> int list
(** Fault indices (ascending) detected by the given vector. *)

val detection_counts : t -> int array
(** Per-vector number of detected faults (the "value" of each vector). *)

val candidates : t -> failing:int list -> passing:int list -> int list
(** Diagnosis: fault indices whose signature detects every [failing] vector
    and no [passing] vector. *)

val essential_vectors : t -> int list
(** Vectors that are the unique detector of at least one detected fault. *)

val greedy_compaction : t -> int list
(** A small vector subset preserving total fault coverage (greedy
    set-cover order). *)

val detection_counts_per_fault : t -> int array
(** Number of vectors detecting each fault. *)

val n_detect_coverage : t -> n:int -> float
(** Fraction of faults detected by at least [n] distinct vectors.  N-detect
    coverage is the classical surrogate for non-target defect coverage
    (Kapur/Park/Mercer: "all tests for a fault are not equally valuable"):
    faults observed through several distinct paths give collateral coverage
    of the unmodeled defects around them. *)

val n_detect_profile : t -> max_n:int -> (int * float) list
(** [(n, n_detect_coverage n)] for n = 1..max_n. *)

val closest_candidates :
  t -> failing:int list -> passing:int list -> limit:int -> (int * int) list
(** Diagnosis under imperfect signature match: fault indices ranked by the
    number of disagreements with the observed signature (failing vectors the
    fault does not explain plus passing vectors it would fail), best first.
    The realistic-defect diagnosis workflow: exact stuck-at matches rarely
    exist for bridges, but the nearest candidates localize the defect. *)
