open Dl_netlist

type polarity = Sa0 | Sa1

type site = Stem of int | Branch of { gate : int; pin : int }

type t = { site : site; polarity : polarity }

let site_key = function
  | Stem id -> (0, id, 0)
  | Branch { gate; pin } -> (1, gate, pin)

let compare a b =
  let c = Stdlib.compare (site_key a.site) (site_key b.site) in
  if c <> 0 then c else Stdlib.compare a.polarity b.polarity

let equal a b = compare a b = 0

let polarity_bool = function Sa0 -> false | Sa1 -> true

let to_string (c : Circuit.t) f =
  let pol = match f.polarity with Sa0 -> "SA0" | Sa1 -> "SA1" in
  match f.site with
  | Stem id -> Printf.sprintf "%s %s" (Circuit.name c id) pol
  | Branch { gate; pin } ->
      Printf.sprintf "%s.in%d %s" (Circuit.name c gate) pin pol

let to_sim3_site = function
  | Stem id -> Dl_logic.Sim3.Stem id
  | Branch { gate; pin } -> Dl_logic.Sim3.Branch { gate; pin }

let universe (c : Circuit.t) =
  let faults = ref [] in
  let add site =
    faults := { site; polarity = Sa1 } :: { site; polarity = Sa0 } :: !faults
  in
  Array.iter
    (fun (nd : Circuit.node) ->
      add (Stem nd.id);
      Array.iteri
        (fun pin src ->
          if Array.length c.fanouts.(src) > 1 then add (Branch { gate = nd.id; pin }))
        nd.fanin)
    c.nodes;
  let arr = Array.of_list !faults in
  Array.sort compare arr;
  arr

(* Union-find over fault indices for equivalence collapsing. *)
module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find t i = if t.(i) = i then i else begin
    t.(i) <- find t t.(i);
    t.(i)
  end

  let union t a b =
    let ra = find t a and rb = find t b in
    (* Keep the smaller index as representative for determinism. *)
    if ra < rb then t.(rb) <- ra else if rb < ra then t.(ra) <- rb
end

let build_index faults =
  let tbl = Hashtbl.create (Array.length faults) in
  Array.iteri (fun i f -> Hashtbl.replace tbl (site_key f.site, f.polarity) i) faults;
  fun site polarity -> Hashtbl.find_opt tbl (site_key site, polarity)

let unify (c : Circuit.t) faults =
  let uf = Uf.create (Array.length faults) in
  let lookup = build_index faults in
  let join s1 p1 s2 p2 =
    match (lookup s1 p1, lookup s2 p2) with
    | Some a, Some b -> Uf.union uf a b
    | _ -> ()
  in
  (* The fault "as seen at gate input pin": the branch fault if the net has
     fanout, otherwise the driver's stem fault. *)
  let pin_site (nd : Circuit.node) pin =
    let src = nd.fanin.(pin) in
    if Array.length c.fanouts.(src) > 1 then Branch { gate = nd.id; pin }
    else Stem src
  in
  Array.iter
    (fun (nd : Circuit.node) ->
      match nd.kind with
      | Gate.Input -> ()
      | Gate.Buf | Gate.Not ->
          let inv = Gate.inversion nd.kind in
          let flip p = if inv then (match p with Sa0 -> Sa1 | Sa1 -> Sa0) else p in
          let s_in = pin_site nd 0 in
          join s_in Sa0 (Stem nd.id) (flip Sa0);
          join s_in Sa1 (Stem nd.id) (flip Sa1)
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
          let ctrl =
            match Gate.controlling_value nd.kind with
            | Some b -> b
            | None -> assert false
          in
          let ctrl_pol = if ctrl then Sa1 else Sa0 in
          let resp = Gate.controlled_response nd.kind in
          let resp_pol = if resp then Sa1 else Sa0 in
          Array.iteri
            (fun pin _ -> join (pin_site nd pin) ctrl_pol (Stem nd.id) resp_pol)
            nd.fanin
      | Gate.Xor | Gate.Xnor -> ())
    c.nodes;
  uf

let equivalence_classes c faults =
  let uf = unify c faults in
  let groups = Hashtbl.create 64 in
  Array.iteri
    (fun i f ->
      let root = Uf.find uf i in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups root) in
      Hashtbl.replace groups root (f :: cur))
    faults;
  let roots = Hashtbl.fold (fun root _ acc -> root :: acc) groups [] in
  List.sort Stdlib.compare roots
  |> List.map (fun root -> Array.of_list (List.rev (Hashtbl.find groups root)))
  |> Array.of_list

let collapse c faults =
  let uf = unify c faults in
  let kept = ref [] in
  Array.iteri (fun i f -> if Uf.find uf i = i then kept := f :: !kept) faults;
  Array.of_list (List.rev !kept)

let checkpoints (c : Circuit.t) =
  let faults = ref [] in
  let add site =
    faults := { site; polarity = Sa1 } :: { site; polarity = Sa0 } :: !faults
  in
  Array.iter (fun id -> add (Stem id)) c.inputs;
  Array.iter
    (fun (nd : Circuit.node) ->
      Array.iteri
        (fun pin src ->
          if Array.length c.fanouts.(src) > 1 then add (Branch { gate = nd.id; pin }))
        nd.fanin)
    c.nodes;
  let arr = Array.of_list !faults in
  Array.sort compare arr;
  arr
