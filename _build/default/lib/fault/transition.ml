open Dl_netlist

type edge = Rise | Fall

type t = { node : int; edge : edge }

let universe (c : Circuit.t) =
  Array.concat
    (List.map
       (fun edge -> Array.init (Circuit.node_count c) (fun node -> { node; edge }))
       [ Rise; Fall ])

let to_string c f =
  Printf.sprintf "%s %s" (Circuit.name c f.node)
    (match f.edge with Rise -> "STR" | Fall -> "STF")

type result = {
  faults : t array;
  first_detection : int option array;
  vectors_applied : int;
}

(* The slow transition behaves as a stuck-at of the *previous* value during
   the capture vector: STR = SA0 captured after a 0 launch, STF = SA1 after
   a 1 launch. *)
let stuck_of f =
  match f.edge with
  | Rise -> { Stuck_at.site = Stuck_at.Stem f.node; polarity = Stuck_at.Sa0 }
  | Fall -> { Stuck_at.site = Stuck_at.Stem f.node; polarity = Stuck_at.Sa1 }

let run (c : Circuit.t) ~faults ~vectors =
  let n_vectors = Array.length vectors in
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  if n_vectors >= 2 then begin
    (* Fault-free value of every node on every vector, bit-packed. *)
    let words = (n_vectors + 63) / 64 in
    let good = Array.make_matrix (Circuit.node_count c) words 0L in
    Array.iteri
      (fun k v ->
        let values = Dl_logic.Sim2.run_single c v in
        Array.iteri
          (fun node b ->
            if b then
              good.(node).(k / 64) <-
                Int64.logor good.(node).(k / 64) (Int64.shift_left 1L (k mod 64)))
          values)
      vectors;
    let good_at node k =
      Int64.logand (Int64.shift_right_logical good.(node).(k / 64) (k mod 64)) 1L = 1L
    in
    let stuck_faults = Array.map stuck_of faults in
    let on_detect ~fault_index ~vector_index =
      if vector_index >= 1 && first_detection.(fault_index) = None then begin
        let f = faults.(fault_index) in
        let launch_value = good_at f.node (vector_index - 1) in
        let launched =
          match f.edge with Rise -> not launch_value | Fall -> launch_value
        in
        if launched then first_detection.(fault_index) <- Some vector_index
      end
    in
    let (_ : Fault_sim.result) =
      Fault_sim.run ~drop_detected:false ~on_detect c ~faults:stuck_faults ~vectors
    in
    ()
  end;
  { faults; first_detection; vectors_applied = n_vectors }

let coverage r =
  if Array.length r.faults = 0 then 1.0
  else begin
    let hit =
      Array.fold_left
        (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
        0 r.first_detection
    in
    float_of_int hit /. float_of_int (Array.length r.faults)
  end

let coverage_curve r = Coverage.make r.first_detection

let detects_pair c f ~v1 ~v2 =
  let good1 = Dl_logic.Sim2.run_single c v1 in
  let launched =
    match f.edge with Rise -> not good1.(f.node) | Fall -> good1.(f.node)
  in
  launched && Fault_sim.detects_fault c (stuck_of f) v2
