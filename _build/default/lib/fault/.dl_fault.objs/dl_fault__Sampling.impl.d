lib/fault/sampling.ml: Array Dl_util Fault_sim Float
