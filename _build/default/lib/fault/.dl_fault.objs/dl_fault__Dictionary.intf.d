lib/fault/dictionary.mli: Circuit Dl_netlist Stuck_at
