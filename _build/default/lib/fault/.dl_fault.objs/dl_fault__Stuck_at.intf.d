lib/fault/stuck_at.mli: Circuit Dl_logic Dl_netlist
