lib/fault/bridge_gate.mli: Circuit Dl_netlist
