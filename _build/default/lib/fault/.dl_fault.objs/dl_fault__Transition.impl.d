lib/fault/transition.ml: Array Circuit Coverage Dl_logic Dl_netlist Fault_sim Int64 List Printf Stuck_at
