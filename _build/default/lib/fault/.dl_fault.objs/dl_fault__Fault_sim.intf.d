lib/fault/fault_sim.mli: Circuit Dl_netlist Stuck_at
