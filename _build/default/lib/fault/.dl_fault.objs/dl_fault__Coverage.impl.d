lib/fault/coverage.ml: Array Dl_util Float Hashtbl Stdlib
