lib/fault/sampling.mli: Circuit Dl_netlist Stuck_at
