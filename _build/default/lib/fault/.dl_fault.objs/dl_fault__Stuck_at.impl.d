lib/fault/stuck_at.ml: Array Circuit Dl_logic Dl_netlist Gate Hashtbl List Option Printf Stdlib
