lib/fault/detectability.mli: Circuit Dl_netlist Stuck_at
