lib/fault/detectability.ml: Array Circuit Dl_netlist Dl_util Fault_sim
