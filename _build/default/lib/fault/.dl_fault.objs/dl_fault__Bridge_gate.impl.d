lib/fault/bridge_gate.ml: Array Circuit Dl_logic Dl_netlist Dl_util Gate Hashtbl List Seq
