lib/fault/dictionary.ml: Array Bytes Char Fault_sim Fun Hashtbl List Stdlib
