lib/fault/transition.mli: Circuit Coverage Dl_netlist
