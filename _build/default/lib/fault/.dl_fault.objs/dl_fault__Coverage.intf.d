lib/fault/coverage.mli:
