lib/fault/fault_sim.ml: Array Circuit Dl_logic Dl_netlist Gate Int64 List Stuck_at
