module Rng = Dl_util.Rng

type lot = {
  dies : int;
  passed : int;
  defective_passed : int;
  defective_total : int;
}

let defect_level lot =
  if lot.passed = 0 then 0.0
  else float_of_int lot.defective_passed /. float_of_int lot.passed

let observed_yield lot =
  if lot.dies = 0 then 1.0
  else float_of_int (lot.dies - lot.defective_total) /. float_of_int lot.dies

(* Marsaglia-Tsang Gamma(shape, scale 1) generator; the shape < 1 case uses
   the boosting identity Gamma(a) = Gamma(a+1) * U^(1/a). *)
let rec gamma_shape rng alpha =
  if alpha < 1.0 then begin
    let u = 1.0 -. Rng.float rng 1.0 in
    gamma_shape rng (alpha +. 1.0) *. (u ** (1.0 /. alpha))
  end
  else begin
    let d = alpha -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = Rng.gaussian rng in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then draw ()
      else begin
        let v3 = v *. v *. v in
        let u = 1.0 -. Rng.float rng 1.0 in
        if log u < (0.5 *. x *. x) +. d -. (d *. v3) +. (d *. log v3) then d *. v3
        else draw ()
      end
    in
    draw ()
  end

let gamma_sample rng ~alpha =
  if alpha <= 0.0 then invalid_arg "Production.gamma_sample: alpha must be positive";
  (* Divide by the mean (= shape) for a mean-1 severity factor. *)
  gamma_shape rng alpha /. alpha

let check_inputs ~dies ~weights ~detected =
  if dies <= 0 then invalid_arg "Production.simulate: dies must be positive";
  if Array.length weights <> Array.length detected then
    invalid_arg "Production.simulate: weights and detected differ in length";
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Production.simulate: negative weight")
    weights

let run_lot rng ~dies ~weights ~detected ~severity =
  let n = Array.length weights in
  let passed = ref 0 and defective_passed = ref 0 and defective_total = ref 0 in
  for _ = 1 to dies do
    let g = severity rng in
    let any_fault = ref false and any_detected = ref false in
    for j = 0 to n - 1 do
      let p = -.Float.expm1 (-.(g *. weights.(j))) in
      if p > 0.0 && Rng.bernoulli rng p then begin
        any_fault := true;
        if detected.(j) then any_detected := true
      end
    done;
    if !any_fault then incr defective_total;
    if not !any_detected then begin
      incr passed;
      if !any_fault then incr defective_passed
    end
  done;
  {
    dies;
    passed = !passed;
    defective_passed = !defective_passed;
    defective_total = !defective_total;
  }

let simulate ?(seed = 1) ~dies ~weights ~detected () =
  check_inputs ~dies ~weights ~detected;
  let rng = Rng.create seed in
  run_lot rng ~dies ~weights ~detected ~severity:(fun _ -> 1.0)

let simulate_clustered ?(seed = 1) ~dies ~alpha ~weights ~detected () =
  check_inputs ~dies ~weights ~detected;
  if alpha <= 0.0 then invalid_arg "Production.simulate_clustered: alpha must be positive";
  let rng = Rng.create seed in
  run_lot rng ~dies ~weights ~detected ~severity:(fun rng -> gamma_sample rng ~alpha)
