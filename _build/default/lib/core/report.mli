(** Markdown report generation: turn one {!Experiment} run into the
    paper-vs-measured record a user would paste into a lab notebook —
    extraction summary, coverage table, fitted parameters, residual defect
    level and the detection-technique ablation. *)

val of_experiment : ?points:int -> Experiment.t -> string
(** Render the full report ([points] table rows, default 12). *)

val write_file : ?points:int -> string -> Experiment.t -> unit
