(** The Williams–Brown defect-level model (eq. 1 of the paper; Williams &
    Brown, IEEE ToC 1981):

    {v DL = 1 - Y^(1-T) v}

    assuming equally probable single stuck-at faults.  All quantities are
    fractions in [0,1]; DL is often quoted in ppm (use
    {!Dl_util.Numerics.ppm}). *)

val defect_level : yield:float -> coverage:float -> float
(** [defect_level ~yield ~coverage] = [1 - yield**(1-coverage)].
    @raise Invalid_argument outside [0 < yield <= 1] or [0 <= coverage <= 1]. *)

val required_coverage : yield:float -> target_dl:float -> float
(** Coverage needed to reach a defect-level target:
    [T = 1 - ln(1-DL)/ln Y].  @raise Invalid_argument if the target is not
    reachable ([target_dl >= 1 - yield] is always reachable since DL(0) =
    1 - Y; targets above that need no testing and return 0). *)

val yield_from : coverage:float -> defect_level:float -> float
(** Invert eq. 1 for yield: [Y = (1-DL)^(1/(1-T))].  Useful for estimating
    process yield from observed fallout at known coverage. *)

val defect_level_curve : yield:float -> coverages:float array -> (float * float) array
(** Sampled (T, DL) pairs. *)
