let check_yield yield =
  if not (yield > 0.0 && yield <= 1.0) then
    invalid_arg "Williams_brown: yield must be in (0, 1]"

let check_coverage coverage =
  if not (coverage >= 0.0 && coverage <= 1.0) then
    invalid_arg "Williams_brown: coverage must be in [0, 1]"

let defect_level ~yield ~coverage =
  check_yield yield;
  check_coverage coverage;
  1.0 -. Dl_util.Numerics.pow1m yield (1.0 -. coverage)

let required_coverage ~yield ~target_dl =
  check_yield yield;
  if not (target_dl >= 0.0 && target_dl < 1.0) then
    invalid_arg "Williams_brown.required_coverage: target must be in [0, 1)";
  if yield = 1.0 then 0.0
  else begin
    let t = 1.0 -. (Float.log1p (-.target_dl) /. log yield) in
    Dl_util.Numerics.clamp01 t
  end

let yield_from ~coverage ~defect_level =
  check_coverage coverage;
  if not (defect_level >= 0.0 && defect_level < 1.0) then
    invalid_arg "Williams_brown.yield_from: defect level must be in [0, 1)";
  if coverage >= 1.0 then
    invalid_arg "Williams_brown.yield_from: coverage 1 carries no yield information";
  (1.0 -. defect_level) ** (1.0 /. (1.0 -. coverage))

let defect_level_curve ~yield ~coverages =
  Array.map (fun t -> (t, defect_level ~yield ~coverage:t)) coverages
