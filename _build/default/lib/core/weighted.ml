let weight_of_probability p =
  if not (p >= 0.0 && p < 1.0) then
    invalid_arg "Weighted.weight_of_probability: need 0 <= p < 1";
  -.Float.log1p (-.p)

let probability_of_weight w =
  if w < 0.0 then invalid_arg "Weighted.probability_of_weight: negative weight";
  -.Float.expm1 (-.w)

let check_weights weights =
  Array.iter
    (fun w -> if w < 0.0 || Float.is_nan w then invalid_arg "Weighted: bad weight")
    weights

let yield_of_weights weights =
  check_weights weights;
  exp (-.Dl_util.Stats.total weights)

let total_weight_for_yield y =
  if not (y > 0.0 && y <= 1.0) then
    invalid_arg "Weighted.total_weight_for_yield: yield must be in (0, 1]";
  -.log y

let scale_to_yield ~weights ~target_yield =
  check_weights weights;
  let current = Dl_util.Stats.total weights in
  if current <= 0.0 then
    invalid_arg "Weighted.scale_to_yield: zero total weight cannot be scaled";
  let factor = total_weight_for_yield target_yield /. current in
  (Array.map (fun w -> w *. factor) weights, factor)

let coverage ~weights ~detected =
  check_weights weights;
  if Array.length weights <> Array.length detected then
    invalid_arg "Weighted.coverage: arrays differ in length";
  let total = Dl_util.Stats.total weights in
  if total = 0.0 then 1.0
  else begin
    let caught =
      Dl_util.Stats.total
        (Array.mapi (fun i w -> if detected.(i) then w else 0.0) weights)
    in
    caught /. total
  end

let defect_level ~yield ~theta =
  if not (yield > 0.0 && yield <= 1.0) then
    invalid_arg "Weighted.defect_level: yield must be in (0, 1]";
  if not (theta >= 0.0 && theta <= 1.0) then
    invalid_arg "Weighted.defect_level: theta must be in [0, 1]";
  1.0 -. Dl_util.Numerics.pow1m yield (1.0 -. theta)

let defect_level_of_weights ~weights ~detected =
  defect_level ~yield:(yield_of_weights weights) ~theta:(coverage ~weights ~detected)
