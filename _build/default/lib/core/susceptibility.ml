let check_s s =
  if not (s > 1.0) then invalid_arg "Susceptibility: s must be > 1"

let coverage_at ~s k =
  check_s s;
  if k < 1.0 then invalid_arg "Susceptibility.coverage_at: k must be >= 1";
  1.0 -. exp (-.log k /. log s)

let weighted_coverage_at ~s ~theta_max k =
  if not (theta_max > 0.0 && theta_max <= 1.0) then
    invalid_arg "Susceptibility: theta_max must be in (0, 1]";
  theta_max *. coverage_at ~s k

let test_length ~s ~target =
  check_s s;
  if not (target >= 0.0 && target < 1.0) then
    invalid_arg "Susceptibility.test_length: target must be in [0, 1)";
  exp (-.Float.log1p (-.target) *. log s)

let ratio ~s_t ~s_theta =
  check_s s_t;
  check_s s_theta;
  log s_t /. log s_theta

let s_of_ratio ~s_t ~r =
  check_s s_t;
  if r <= 0.0 then invalid_arg "Susceptibility.s_of_ratio: r must be positive";
  exp (log s_t /. r)

type fit = { s : float; theta_max : float; rmse : float }

let fit_curve ?fixed_theta_max samples =
  if Array.length samples = 0 then invalid_arg "Susceptibility.fit_curve: no samples";
  Array.iter
    (fun (k, _) ->
      if k < 1.0 then invalid_arg "Susceptibility.fit_curve: k must be >= 1")
    samples;
  let data = Dl_util.Fit.make_data (Array.to_list samples) in
  match fixed_theta_max with
  | Some theta_max ->
      if not (theta_max > 0.0 && theta_max <= 1.0) then
        invalid_arg "Susceptibility.fit_curve: theta_max must be in (0, 1]";
      let model p k = weighted_coverage_at ~s:p.(0) ~theta_max k in
      let r =
        Dl_util.Fit.curve_fit ~model ~lo:[| 1.000001 |] ~hi:[| 1e9 |]
          ~init:[| 20.0 |] data
      in
      { s = r.params.(0); theta_max; rmse = r.rmse }
  | None ->
      (* The (s, theta_max) landscape has a local optimum pinned at the
         theta_max = 1 boundary; multi-start avoids it. *)
      let model p k = weighted_coverage_at ~s:p.(0) ~theta_max:p.(1) k in
      let starts =
        List.concat_map
          (fun s0 -> List.map (fun t0 -> [| s0; t0 |]) [ 0.5; 0.9; 0.99 ])
          [ 2.0; 7.0; 20.0; 100.0; 1e4 ]
      in
      let best =
        List.fold_left
          (fun acc init ->
            let r =
              Dl_util.Fit.curve_fit ~model ~lo:[| 1.000001; 0.01 |]
                ~hi:[| 1e9; 1.0 |] ~init data
            in
            match acc with
            | Some (b : Dl_util.Fit.fit) when b.rss <= r.rss -> acc
            | _ -> Some r)
          None starts
      in
      let r = Option.get best in
      { s = r.params.(0); theta_max = r.params.(1); rmse = r.rmse }
