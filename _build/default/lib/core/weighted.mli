(** The weighted realistic-fault defect-level model (eqs. 3-6): each layout-
    extracted fault [j] carries [w_j = A_j D_j = -ln (1 - p_j)], yield is
    [Y = exp (-Σ w_j)] and the weighted realistic coverage of a test is
    [Θ = Σ_detected w_j / Σ w_j], giving [DL = 1 - Y^(1-Θ)]. *)

val weight_of_probability : float -> float
(** eq. 4: [w = -ln (1 - p)]. *)

val probability_of_weight : float -> float
(** [p = 1 - e^-w]. *)

val yield_of_weights : float array -> float
(** eq. 5. *)

val total_weight_for_yield : float -> float
(** [Σw] needed for a target yield: [-ln Y]. *)

val scale_to_yield : weights:float array -> target_yield:float -> float array * float
(** Multiply all weights by a common factor so that eq. 5 gives the target
    yield (the paper scales c432's yield to 0.75 this way: "scaling the
    yield value can be interpreted as if the circuit has a different size
    but maintains the same testability features").  Returns the scaled
    weights and the factor. *)

val coverage : weights:float array -> detected:bool array -> float
(** eq. 6: weighted fraction of detected faults. *)

val defect_level : yield:float -> theta:float -> float
(** eq. 3. *)

val defect_level_of_weights :
  weights:float array -> detected:bool array -> float
(** Compose eqs. 3, 5, 6 directly from a fault population. *)
