let check_ad name area density =
  if area < 0.0 || density < 0.0 then
    invalid_arg ("Yield_model." ^ name ^ ": negative area or density")

let poisson ~area ~density =
  check_ad "poisson" area density;
  exp (-.(area *. density))

let negative_binomial ~area ~density ~alpha =
  check_ad "negative_binomial" area density;
  if alpha <= 0.0 then invalid_arg "Yield_model.negative_binomial: alpha must be > 0";
  (1.0 +. (area *. density /. alpha)) ** -.alpha

let murphy ~area ~density =
  check_ad "murphy" area density;
  let ad = area *. density in
  if ad = 0.0 then 1.0
  else begin
    let r = -.Float.expm1 (-.ad) /. ad in
    r *. r
  end

let seeds ~area ~density =
  check_ad "seeds" area density;
  1.0 /. (1.0 +. (area *. density))

let check_yield yield =
  if not (yield > 0.0 && yield <= 1.0) then
    invalid_arg "Yield_model: yield must be in (0, 1]"

let defects_per_chip ~yield =
  check_yield yield;
  -.log yield

let mean_faults_on_faulty_chip ~yield =
  check_yield yield;
  if yield = 1.0 then 1.0
  else Dl_util.Prob.truncated_poisson_mean ~lambda:(-.log yield)

let faulty_chip_fault_distribution ~yield ~max_faults =
  check_yield yield;
  if max_faults < 1 then
    invalid_arg "Yield_model.faulty_chip_fault_distribution: need max_faults >= 1";
  let lambda = -.log yield in
  let p_faulty = 1.0 -. yield in
  Array.init max_faults (fun i ->
      let k = i + 1 in
      if p_faulty = 0.0 then 0.0
      else Dl_util.Prob.poisson_pmf ~lambda k /. p_faulty)
