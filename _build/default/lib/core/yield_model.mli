(** Integrated-circuit yield statistics (Stapper et al., Proc. IEEE 1983 —
    the paper's reference [2] for predicting Y and computing fault
    weights). *)

val poisson : area:float -> density:float -> float
(** [Y = exp (-A D)]: Poisson (random-defect) yield. *)

val negative_binomial : area:float -> density:float -> alpha:float -> float
(** Stapper's clustered yield [Y = (1 + A D / α)^-α]; converges to
    {!poisson} as [α → ∞]. *)

val murphy : area:float -> density:float -> float
(** Murphy's yield integral with a triangular density distribution:
    [Y = ((1 - e^{-AD}) / AD)²]. *)

val seeds : area:float -> density:float -> float
(** Seeds' exponential-distribution model: [Y = 1 / (1 + A D)]. *)

val defects_per_chip : yield:float -> float
(** Invert the Poisson model: [λ = -ln Y], the mean defect count per chip
    (equals the total fault weight of eq. 5). *)

val mean_faults_on_faulty_chip : yield:float -> float
(** [λ / (1 - e^{-λ})] with [λ = -ln Y]: the physically grounded value of
    Agrawal's [n] parameter. *)

val faulty_chip_fault_distribution : yield:float -> max_faults:int -> float array
(** P[N = k | N >= 1] for k = 1..max under Poisson defect counts. *)
