(** Monte-Carlo production-lot simulation: the ground-truth check of the
    defect-level algebra.

    Eq. 3 (and hence eq. 11) is a probabilistic statement about a
    population of dies: each fault [j] occurs independently on a die with
    probability [p_j = 1 - e^{-w_j}]; a die is *faulty* if any fault is
    present and *escapes* if none of its present faults is detected by the
    test.  Sampling that population directly and counting
    [DL = P(faulty | passed)] must reproduce eq. 3 — this module does the
    sampling, for both Poisson (independent) and gamma-clustered defect
    statistics. *)

type lot = {
  dies : int;
  passed : int;            (** Dies with no detected fault. *)
  defective_passed : int;  (** Escapes: passed but some fault present. *)
  defective_total : int;   (** All faulty dies (yield check). *)
}

val defect_level : lot -> float
(** Empirical [defective_passed / passed]; 0 for an empty lot. *)

val observed_yield : lot -> float
(** Empirical fraction of fault-free dies. *)

val simulate :
  ?seed:int ->
  dies:int ->
  weights:float array ->
  detected:bool array ->
  unit ->
  lot
(** Independent (Poisson) fault occurrence per die.  [detected.(j)] says
    whether the applied test catches fault [j] when present (single-fault
    detection is assumed to survive in multi-fault dies — the same
    assumption the analytic model makes). *)

val simulate_clustered :
  ?seed:int ->
  dies:int ->
  alpha:float ->
  weights:float array ->
  detected:bool array ->
  unit ->
  lot
(** Gamma-mixed occurrence: each die draws a severity factor
    [g ~ Gamma(alpha, 1/alpha)] and fault [j] occurs with rate [g * w_j] —
    Stapper's clustered statistics at die granularity. *)

val gamma_sample : Dl_util.Rng.t -> alpha:float -> float
(** Mean-1 gamma variate (Marsaglia–Tsang; boosted for alpha < 1).
    Exposed for tests. *)
