(** Random-test coverage-growth model (eqs. 7-8; Williams, IEEE D&T 1985):

    {v
      T(k) = 1 - exp (- ln k / ln s_T)
      Θ(k) = θmax (1 - exp (- ln k / ln s_Θ))
    v}

    where [k] is the number of random vectors applied and [s > 1] is the
    *fault susceptibility* of the fault population (larger susceptibility =
    slower coverage growth).  The ratio [R = ln s_T / ln s_Θ] (eq. 10)
    links stuck-at and realistic coverage in the paper's model. *)

val coverage_at : s:float -> float -> float
(** [coverage_at ~s k] = eq. 7 evaluated at [k >= 1] vectors.
    @raise Invalid_argument unless [s > 1] and [k >= 1]. *)

val weighted_coverage_at : s:float -> theta_max:float -> float -> float
(** eq. 8. *)

val test_length : s:float -> target:float -> float
(** Vectors needed to reach a target coverage (inverse of eq. 7):
    [k = exp (-ln(1-T) ln s)]. The self-test-length result of Williams'85. *)

val ratio : s_t:float -> s_theta:float -> float
(** eq. 10: [R = ln s_T / ln s_Θ]. *)

val s_of_ratio : s_t:float -> r:float -> float
(** The realistic susceptibility implied by a ratio: [s_Θ = s_T^(1/R)]. *)

type fit = { s : float; theta_max : float; rmse : float }

val fit_curve : ?fixed_theta_max:float -> (float * float) array -> fit
(** Least-squares fit of eq. 8 to observed [(k, coverage)] samples; with
    [fixed_theta_max] only [s] is free (use 1.0 to fit eq. 7). *)
