(** The Agrawal–Seth–Agrawal defect-level model (eq. 2 of the paper; JSSC
    1982): a Poisson number of faults per faulty chip with mean [n],

    {v
      DL = (1-T)(1-Y) e^{-(n-1)T} / (Y + (1-T)(1-Y) e^{-(n-1)T})
    v}

    The paper uses this as the prior-work baseline whose [n] must be
    obtained by a-posteriori curve fitting. *)

val defect_level : yield:float -> coverage:float -> n:float -> float
(** @raise Invalid_argument for [yield] outside (0,1], [coverage] outside
    [0,1] or [n < 1]. *)

val defect_level_curve :
  yield:float -> n:float -> coverages:float array -> (float * float) array

val fit_n :
  yield:float -> (float * float) list -> float * float
(** [fit_n ~yield points] least-squares fits [n] to observed
    [(coverage, defect-level)] points; returns [(n, rmse)]. *)

val n_of_mean_defects : lambda:float -> float
(** The physical reading of [n]: with defects Poisson(lambda) per chip, the
    average number on a *faulty* chip is [lambda / (1 - e^-lambda)]. *)
