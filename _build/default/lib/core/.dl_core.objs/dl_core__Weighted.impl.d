lib/core/weighted.ml: Array Dl_util Float
