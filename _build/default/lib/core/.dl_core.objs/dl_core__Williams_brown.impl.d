lib/core/williams_brown.ml: Array Dl_util Float
