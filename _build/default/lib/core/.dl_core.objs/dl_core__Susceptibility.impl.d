lib/core/susceptibility.ml: Array Dl_util Float List Option
