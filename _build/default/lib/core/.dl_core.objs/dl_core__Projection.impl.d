lib/core/projection.ml: Array Dl_util Float List Option
