lib/core/production.ml: Array Dl_util Float
