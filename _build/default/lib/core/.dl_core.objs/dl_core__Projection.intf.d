lib/core/projection.mli:
