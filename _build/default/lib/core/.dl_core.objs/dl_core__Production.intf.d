lib/core/production.mli: Dl_util
