lib/core/experiment.mli: Circuit Dl_atpg Dl_extract Dl_fault Dl_netlist Dl_switch Format Projection
