lib/core/yield_model.mli:
