lib/core/clustered.mli: Projection
