lib/core/agrawal.mli:
