lib/core/clustered.ml: Array Dl_util Projection
