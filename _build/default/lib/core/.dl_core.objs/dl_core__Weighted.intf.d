lib/core/weighted.mli:
