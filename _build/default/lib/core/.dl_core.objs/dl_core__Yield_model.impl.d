lib/core/yield_model.ml: Array Dl_util Float
