lib/core/agrawal.ml: Array Dl_util
