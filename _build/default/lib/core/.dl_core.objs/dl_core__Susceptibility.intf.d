lib/core/susceptibility.mli:
