lib/core/report.ml: Array Buffer Dl_extract Dl_fault Dl_netlist Experiment Fun List Printf Projection Weighted Williams_brown
