lib/core/experiment.ml: Array Circuit Dl_atpg Dl_cell Dl_extract Dl_fault Dl_layout Dl_netlist Dl_switch Format Projection Seq Transform Weighted
