lib/core/williams_brown.mli:
