let defect_level ~yield ~coverage ~n =
  if not (yield > 0.0 && yield <= 1.0) then
    invalid_arg "Agrawal.defect_level: yield must be in (0, 1]";
  if not (coverage >= 0.0 && coverage <= 1.0) then
    invalid_arg "Agrawal.defect_level: coverage must be in [0, 1]";
  if n < 1.0 then invalid_arg "Agrawal.defect_level: n must be >= 1";
  let escaped = (1.0 -. coverage) *. (1.0 -. yield) *. exp (-.(n -. 1.0) *. coverage) in
  escaped /. (yield +. escaped)

let defect_level_curve ~yield ~n ~coverages =
  Array.map (fun t -> (t, defect_level ~yield ~coverage:t ~n)) coverages

let fit_n ~yield points =
  let data = Dl_util.Fit.make_data points in
  let model p t = defect_level ~yield ~coverage:t ~n:p.(0) in
  let r =
    Dl_util.Fit.curve_fit ~model ~lo:[| 1.0 |] ~hi:[| 100.0 |] ~init:[| 2.0 |] data
  in
  (r.params.(0), r.rmse)

let n_of_mean_defects ~lambda = Dl_util.Prob.truncated_poisson_mean ~lambda
