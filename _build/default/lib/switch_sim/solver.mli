(** Steady-state switch-level solver for a faulted region of the chip.

    The region is a small transistor sub-network (the faulted cell, or the
    two cells joined by a bridge).  Nodes are resolved by drive-strength
    path analysis: conductance is the reciprocal of the series resistance
    of the best on-path to a rail (NMOS channels are stronger than PMOS,
    external pad drivers stronger still), opposing definite paths make a
    *fight* (static IDDQ current) whose winner is the stronger side,
    undriven nodes retain their charge from the previous vector — which is
    exactly the memory effect that makes transistor stuck-opens require
    two-pattern tests. *)

open Dl_logic

type modification =
  | Remove_transistor of int
      (** Global transistor index: models a stuck-open device. *)
  | Short_transistor of int
      (** Channel permanently conducting: a stuck-on device /
          gate-oxide short. *)
  | Bridge_nodes of { node_a : int; node_b : int }
      (** Hard (zero-resistance) short between two network nodes. *)
  | Resistive_bridge of { node_a : int; node_b : int; resistance : float }
      (** Short with a finite resistance in units of the NMOS channel
          resistance: large values weaken the coupling until the bridge
          stops flipping logic (its critical resistance). *)

type t

val make :
  Network.t -> instances:int list -> modifications:modification list -> t
(** Build a region over the given cell instances.  Bridged nodes that are
    primary-input signals get an implicit strong external driver. *)

val nodes : t -> int list
(** Global ids of all nodes resolved by this region (charge state should be
    kept for these). *)

val observable_nodes : t -> int list
(** {!nodes} plus bridged pad-driven primary-input nodes: every node whose
    resolved value should be propagated downstream. *)

type outcome = {
  values : (int * Ternary.t) list;
      (** Resolved value per region node (global ids), including cell
          outputs to propagate downstream. *)
  fight : bool;
      (** A definite rail-to-rail (or driver-to-rail) conducting path
          exists: elevated quiescent current, observable by IDDQ testing. *)
}

val solve :
  t ->
  external_value:(int -> Ternary.t) ->
  charge:(int -> Ternary.t) ->
  outcome
(** [external_value] supplies values of nodes outside the region (gate
    terminals, bridged PI drivers); [charge] supplies the previous-vector
    value of region nodes for floating-node retention ([Ternary.VX] for an
    unknown initial state).

    Diagnostics: set the [DL_SOLVER_DEBUG] environment variable to trace
    every relaxation round (per-node rail distances, edge conduction) on
    stderr. *)
