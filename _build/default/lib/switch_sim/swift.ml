open Dl_netlist
module Ternary = Dl_logic.Ternary
module Sim2 = Dl_logic.Sim2
module Mapping = Dl_cell.Mapping

type detection = { voltage : int option; iddq : int option }

type result = {
  faults : Realistic.t array;
  detection : detection array;
  vectors_applied : int;
  region_solves : int;
}

(* --- fault preparation -------------------------------------------------- *)

type prepared =
  | Region of {
      region : Solver.t;
      charge : (int, Ternary.t) Hashtbl.t;  (* network node -> last value *)
      output_signals : (int * int) list;    (* (network node, circuit node) *)
      input_signals : int list;             (* circuit nodes read by the region *)
      iddq_candidate : bool;
    }
  | Net_open of {
      seeds : [ `Stem of int | `Pin of int * int ] list;
      policy : Realistic.float_policy;
    }

let signal_of_network_node (m : Mapping.network) g =
  let n_signals = Circuit.node_count m.circuit in
  if g >= 2 && g < 2 + n_signals then Some (g - 2) else None

let owners net nodes =
  List.sort_uniq compare
    (List.filter_map (fun g -> Network.owner_instance net g) nodes)

let prepare net (f : Realistic.t) =
  let m = Network.mapping net in
  let region_of instances mods ~iddq_candidate =
    let region = Solver.make net ~instances ~modifications:mods in
    let output_signals =
      List.filter_map
        (fun g ->
          match signal_of_network_node m g with
          | Some c -> Some (g, c)
          | None -> None)
        (Solver.observable_nodes region)
    in
    let input_signals =
      List.concat_map
        (fun ii ->
          let inst = m.Mapping.instances.(ii) in
          Array.to_list m.circuit.nodes.(inst.gate_id).fanin)
        instances
      |> List.sort_uniq compare
    in
    let charge = Hashtbl.create 16 in
    Region { region; charge; output_signals; input_signals; iddq_candidate }
  in
  match f.kind with
  | Realistic.Bridge { node_a; node_b } ->
      region_of (owners net [ node_a; node_b ])
        [ Solver.Bridge_nodes { node_a; node_b } ]
        ~iddq_candidate:true
  | Realistic.Transistor_stuck_open ti ->
      let inst = m.Mapping.transistors.(ti).instance in
      region_of [ inst ] [ Solver.Remove_transistor ti ] ~iddq_candidate:false
  | Realistic.Transistor_stuck_on ti ->
      let inst = m.Mapping.transistors.(ti).instance in
      region_of [ inst ] [ Solver.Short_transistor ti ] ~iddq_candidate:true
  | Realistic.Input_open { gate; pin; policy } ->
      Net_open { seeds = [ `Pin (gate, pin) ]; policy }
  | Realistic.Stem_open { node; policy } ->
      Net_open { seeds = [ `Stem node ]; policy }

(* --- downstream three-valued propagation -------------------------------- *)

let propagate = Dl_logic.Propagate.run
let po_detects = Dl_logic.Propagate.po_detects

(* --- main loop ----------------------------------------------------------- *)

let good_values net vectors =
  let m = Network.mapping net in
  let c = m.Mapping.circuit in
  let n_vectors = Array.length vectors in
  let out = Array.make n_vectors [||] in
  let blocks = (n_vectors + 63) / 64 in
  for blk = 0 to blocks - 1 do
    let base = blk * 64 in
    let count = min 64 (n_vectors - base) in
    let words = Sim2.words_of_patterns c (Array.sub vectors base count) in
    let values = Sim2.run c words in
    for bit = 0 to count - 1 do
      out.(base + bit) <-
        Array.map
          (fun w -> Int64.logand (Int64.shift_right_logical w bit) 1L = 1L)
          values
    done
  done;
  out

let policy_value = function
  | Realistic.Floats_low -> Ternary.V0
  | Realistic.Floats_high -> Ternary.V1
  | Realistic.Floats_unknown -> Ternary.VX

let run ?(drop_when = `Both) ?on_voltage_detect net ~faults ~vectors =
  let m = Network.mapping net in
  let c = m.Mapping.circuit in
  let n_faults = Array.length faults in
  let detection = Array.make n_faults { voltage = None; iddq = None } in
  let prepared = Array.map (prepare net) faults in
  let region_solves = ref 0 in
  let good_per_vector = good_values net vectors in
  let n_vectors = Array.length vectors in
  let live = Array.make n_faults true in
  let update_live fi =
    let d = detection.(fi) in
    let done_ =
      match drop_when with
      | `Voltage -> d.voltage <> None
      | `Both -> d.voltage <> None && d.iddq <> None
      | `Never -> false
    in
    if done_ then live.(fi) <- false
  in
  for k = 0 to n_vectors - 1 do
    let good = good_per_vector.(k) in
    for fi = 0 to n_faults - 1 do
      if live.(fi) then begin
        let voltage_hit = ref false and iddq_hit = ref false in
        (match prepared.(fi) with
        | Net_open { seeds; policy } ->
            let pv = policy_value policy in
            let overrides =
              List.map
                (function
                  | `Stem node -> (node, pv)
                  | `Pin (gate, pin) ->
                      (* Re-evaluate the reading gate with the floating pin. *)
                      let nd = c.nodes.(gate) in
                      let ins =
                        Array.map (fun s -> Ternary.of_bool good.(s)) nd.fanin
                      in
                      ins.(pin) <- pv;
                      (gate, Ternary.eval nd.kind ins))
                seeds
            in
            let map = propagate c good overrides in
            if po_detects c good map then voltage_hit := true;
            if policy = Realistic.Floats_unknown then iddq_hit := true
        | Region { region; charge; output_signals; input_signals; iddq_candidate } ->
            let override_map = ref (Hashtbl.create 0) in
            let stable = ref false in
            let iters = ref 0 in
            let last_fight = ref false in
            let final_values = ref [] in
            while (not !stable) && !iters < 8 do
              incr iters;
              let ext g =
                match signal_of_network_node m g with
                | Some cnode -> (
                    match Hashtbl.find_opt !override_map cnode with
                    | Some v -> v
                    | None -> Ternary.of_bool good.(cnode))
                | None -> Ternary.VX
              in
              let charge_of g =
                match Hashtbl.find_opt charge g with Some v -> v | None -> Ternary.VX
              in
              incr region_solves;
              let outcome = Solver.solve region ~external_value:ext ~charge:charge_of in
              last_fight := outcome.fight;
              final_values := outcome.values;
              let seeds =
                List.filter_map
                  (fun (g, cnode) ->
                    match List.assoc_opt g outcome.values with
                    | Some v -> Some (cnode, v)
                    | None -> None)
                  output_signals
              in
              let map = propagate c good seeds in
              (* Feedback: iterate only if a region input changed. *)
              let input_sig tbl =
                List.map (fun s -> Hashtbl.find_opt tbl s) input_signals
              in
              if input_sig map = input_sig !override_map then stable := true;
              override_map := map
            done;
            if po_detects c good !override_map then voltage_hit := true;
            if iddq_candidate && !last_fight then iddq_hit := true;
            (* Persist settled charges for the next vector. *)
            List.iter (fun (g, v) -> Hashtbl.replace charge g v) !final_values);
        (match on_voltage_detect with
        | Some callback when !voltage_hit -> callback ~fault_index:fi ~vector_index:k
        | _ -> ());
        let d = detection.(fi) in
        let d =
          if !voltage_hit && d.voltage = None then { d with voltage = Some k } else d
        in
        let d = if !iddq_hit && d.iddq = None then { d with iddq = Some k } else d in
        detection.(fi) <- d;
        update_live fi
      end
    done
  done;
  { faults; detection; vectors_applied = n_vectors; region_solves = !region_solves }

(* --- coverage projections ------------------------------------------------ *)

let weights_of r = Array.map (fun (f : Realistic.t) -> f.weight) r.faults

let weighted_coverage r =
  Dl_fault.Coverage.make ~weights:(weights_of r)
    (Array.map (fun d -> d.voltage) r.detection)

let unweighted_coverage r =
  Dl_fault.Coverage.make (Array.map (fun d -> d.voltage) r.detection)

let earliest a b =
  match (a, b) with
  | Some x, Some y -> Some (min x y)
  | Some x, None | None, Some x -> Some x
  | None, None -> None

let iddq_weighted_coverage r =
  Dl_fault.Coverage.make ~weights:(weights_of r)
    (Array.map (fun d -> earliest d.voltage d.iddq) r.detection)


let signature net ~fault ~vectors =
  let fails = Array.make (Array.length vectors) false in
  let on_voltage_detect ~fault_index:_ ~vector_index = fails.(vector_index) <- true in
  let (_ : result) =
    run ~drop_when:`Never ~on_voltage_detect net ~faults:[| fault |] ~vectors
  in
  fails
