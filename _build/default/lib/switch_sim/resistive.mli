(** Resistive bridging-fault analysis.

    A physical short has a finite resistance; above a fault-specific
    *critical resistance* the coupling is too weak to flip any logic value
    and the defect escapes static voltage testing (Renovell's resistive
    bridging model).  This module evaluates detection of a bridge at a
    given resistance and locates the critical resistance for a vector set
    — quantifying how much of the extracted bridge population a voltage
    test really covers once resistance is taken into account. *)

type detection = { voltage : int option; iddq : int option }

val detect :
  ?resistance:float ->
  Network.t ->
  node_a:int ->
  node_b:int ->
  vectors:bool array array ->
  detection
(** First detecting vector of the (possibly resistive) bridge, by static
    voltage and by IDDQ.  [resistance] is in NMOS-channel units
    (default 0 = hard short). *)

val critical_resistance :
  ?r_max:float ->
  ?tolerance:float ->
  Network.t ->
  node_a:int ->
  node_b:int ->
  vectors:bool array array ->
  float option
(** Largest resistance (up to [r_max], default 64) at which the vector set
    still voltage-detects the bridge, found by bisection to [tolerance]
    (default 0.05); [None] if even the hard short escapes. *)

val coverage_vs_resistance :
  Network.t ->
  bridges:(int * int) array ->
  vectors:bool array array ->
  resistances:float array ->
  (float * float) array
(** [(resistance, fraction of bridges voltage-detected)] across a
    resistance sweep — the ablation data for the resistive-bridge model. *)
