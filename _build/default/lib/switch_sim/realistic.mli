(** Realistic (defect-induced) fault models at transistor/interconnect
    level: the fault population the paper extracts from layout and weights
    by occurrence probability (shorts and opens "with different topologies
    and weights"). *)

type float_policy =
  | Floats_low      (** Disconnected input leaks to GND: behaves stuck-0. *)
  | Floats_high     (** Leaks to VDD: behaves stuck-1. *)
  | Floats_unknown  (** Intermediate voltage: logically X, but both
                        transistor networks of the reading cell conduct, so
                        the defect is IDDQ-observable. *)

type kind =
  | Bridge of { node_a : int; node_b : int }
      (** Short between two network nodes (routing-to-routing,
          intra-cell, or to a supply rail). *)
  | Transistor_stuck_open of int
      (** Network transistor index: channel never conducts (charge
          retention makes these two-pattern faults). *)
  | Transistor_stuck_on of int
      (** Channel always conducts (gate-oxide short): creates rail fights
          for some inputs. *)
  | Input_open of { gate : int; pin : int; policy : float_policy }
      (** Interconnect break at one fanout branch: circuit node [gate]'s
          input [pin] floats. *)
  | Stem_open of { node : int; policy : float_policy }
      (** Break near the driver: the whole net floats for all readers. *)

type t = {
  kind : kind;
  weight : float;
      (** w_j = A_j * D_j (eq. 4): average number of defects inducing this
          fault; occurrence probability is p_j = 1 - exp (-w_j). *)
  label : string;  (** Human-readable site description. *)
}

val probability : t -> float
(** p_j = 1 - exp (-w_j). *)

val weight_of_probability : float -> float
(** Inverse of {!probability}: w = -ln (1 - p) (eq. 4). *)

val is_short : t -> bool
(** Bridges and stuck-ons (the defect classes CMOS defect statistics make
    dominant). *)

val is_open : t -> bool

val describe : t -> string
