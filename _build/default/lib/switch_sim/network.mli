(** Indexed view of a flattened transistor network: channel adjacency per
    node, driver instances per node, and node classification.  Shared by the
    region solver and the fault extractor. *)

open Dl_cell

type t

val build : Mapping.network -> t

val mapping : t -> Mapping.network

val channel_edges : t -> int -> int list
(** Transistor indices with a source or drain terminal on this node. *)

val gated_by : t -> int -> int list
(** Transistor indices whose gate terminal is this node. *)

val owner_instance : t -> int -> int option
(** The cell instance that drives (owns) this node: the instance whose
    output or internal node it is.  [None] for rails and primary-input
    signal nodes. *)

val is_rail : t -> int -> bool
val is_primary_input : t -> int -> bool

val other_end : t -> transistor_index:int -> node:int -> int
(** The opposite channel terminal of a transistor. *)

val instances_touching : t -> int -> int list
(** All instances with any terminal (gate or channel) on this node. *)
