type float_policy = Floats_low | Floats_high | Floats_unknown

type kind =
  | Bridge of { node_a : int; node_b : int }
  | Transistor_stuck_open of int
  | Transistor_stuck_on of int
  | Input_open of { gate : int; pin : int; policy : float_policy }
  | Stem_open of { node : int; policy : float_policy }

type t = { kind : kind; weight : float; label : string }

let probability f = -.Float.expm1 (-.f.weight)

let weight_of_probability p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg "Realistic.weight_of_probability: need 0 <= p < 1";
  -.Float.log1p (-.p)

let is_short f =
  match f.kind with
  | Bridge _ | Transistor_stuck_on _ -> true
  | Transistor_stuck_open _ | Input_open _ | Stem_open _ -> false

let is_open f = not (is_short f)

let kind_name = function
  | Bridge _ -> "bridge"
  | Transistor_stuck_open _ -> "ts-open"
  | Transistor_stuck_on _ -> "ts-on"
  | Input_open _ -> "input-open"
  | Stem_open _ -> "stem-open"

let describe f = Printf.sprintf "%s %s (w=%.3e)" (kind_name f.kind) f.label f.weight
