(** Switch-level fault simulation of realistic faults (the paper's *swift*
    tool): mixed-mode evaluation with the faulted region solved at switch
    level ({!Solver}) and the fault effect propagated downstream through
    three-valued gate-level simulation.

    Two detection mechanisms are recorded independently per fault:
    - *static voltage*: a primary output settles to a definite wrong value
      (the paper's baseline technique, responsible for [θmax < 1]);
    - *IDDQ*: the defect causes a quiescent rail-to-rail current
      (bridges/stuck-ons under opposing drive, floating-gate opens). *)

type detection = {
  voltage : int option;  (** First vector index detecting by voltage. *)
  iddq : int option;     (** First vector index detecting by current. *)
}

type result = {
  faults : Realistic.t array;
  detection : detection array;
  vectors_applied : int;
  region_solves : int;  (** Work metric: switch-level region evaluations. *)
}

val run :
  ?drop_when:[ `Voltage | `Both | `Never ] ->
  ?on_voltage_detect:(fault_index:int -> vector_index:int -> unit) ->
  Network.t ->
  faults:Realistic.t array ->
  vectors:bool array array ->
  result
(** Simulate every fault against the ordered vector sequence.  [drop_when]
    controls fault dropping: [`Voltage] stops simulating a fault once
    voltage-detected (fastest), [`Both] once both mechanisms have fired
    (default; exact first-detection data for both curves), [`Never] runs
    everything (dictionary-grade data). *)

val weighted_coverage : result -> Dl_fault.Coverage.t
(** Θ(k): voltage-detection coverage weighted by fault weights (eq. 6). *)

val unweighted_coverage : result -> Dl_fault.Coverage.t
(** Γ(k): same detections with every fault weighted equally. *)

val iddq_weighted_coverage : result -> Dl_fault.Coverage.t
(** Θ(k) when an IDDQ measurement accompanies every vector (detection =
    earlier of voltage/current). *)

val signature : Network.t -> fault:Realistic.t -> vectors:bool array array -> bool array
(** Per-vector tester signature of one fault under the full ordered
    sequence ([true] = the vector fails), with charge continuity preserved
    for sequential (stuck-open) behaviour.  Input to diagnosis. *)

val good_values : Network.t -> bool array array -> bool array array
(** [good_values net vectors]: fault-free circuit response, one bool per
    circuit node per vector (gate-level; exposed for tests and examples). *)
