module Ternary = Dl_logic.Ternary
module Mapping = Dl_cell.Mapping

type detection = { voltage : int option; iddq : int option }

let signal_of (m : Mapping.network) g =
  let n = Dl_netlist.Circuit.node_count m.circuit in
  if g >= 2 && g < 2 + n then Some (g - 2) else None

let detect ?(resistance = 0.0) net ~node_a ~node_b ~vectors =
  let m = Network.mapping net in
  let c = m.Mapping.circuit in
  let instances =
    List.sort_uniq compare
      (List.filter_map (fun g -> Network.owner_instance net g) [ node_a; node_b ])
  in
  let region =
    Solver.make net ~instances
      ~modifications:[ Solver.Resistive_bridge { node_a; node_b; resistance } ]
  in
  let output_signals =
    List.filter_map
      (fun g -> match signal_of m g with Some cn -> Some (g, cn) | None -> None)
      (Solver.observable_nodes region)
  in
  let goods = Swift.good_values net vectors in
  let voltage = ref None and iddq = ref None in
  (try
     Array.iteri
       (fun k good ->
         let ext g =
           match signal_of m g with
           | Some cn -> Ternary.of_bool good.(cn)
           | None -> Ternary.VX
         in
         let outcome =
           Solver.solve region ~external_value:ext ~charge:(fun _ -> Ternary.VX)
         in
         if !iddq = None && outcome.fight then iddq := Some k;
         let seeds =
           List.filter_map
             (fun (g, cn) ->
               match List.assoc_opt g outcome.values with
               | Some v -> Some (cn, v)
               | None -> None)
             output_signals
         in
         let map = Dl_logic.Propagate.run c good seeds in
         if !voltage = None && Dl_logic.Propagate.po_detects c good map then voltage := Some k;
         if !voltage <> None && !iddq <> None then raise Exit)
       goods
   with Exit -> ());
  { voltage = !voltage; iddq = !iddq }

let critical_resistance ?(r_max = 64.0) ?(tolerance = 0.05) net ~node_a ~node_b
    ~vectors =
  let detected r = (detect ~resistance:r net ~node_a ~node_b ~vectors).voltage <> None in
  if not (detected 0.0) then None
  else if detected r_max then Some r_max
  else begin
    (* Detection is monotone in resistance under the strength model:
       bisection finds the threshold. *)
    let rec bisect lo hi =
      if hi -. lo <= tolerance then lo
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if detected mid then bisect mid hi else bisect lo mid
      end
    in
    Some (bisect 0.0 r_max)
  end

let coverage_vs_resistance net ~bridges ~vectors ~resistances =
  Array.map
    (fun r ->
      let hit =
        Array.fold_left
          (fun acc (a, b) ->
            if (detect ~resistance:r net ~node_a:a ~node_b:b ~vectors).voltage <> None
            then acc + 1
            else acc)
          0 bridges
      in
      (r, float_of_int hit /. float_of_int (max 1 (Array.length bridges))))
    resistances
