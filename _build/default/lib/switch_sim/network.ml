open Dl_cell

type t = {
  mapping : Mapping.network;
  channel_edges : int list array;  (* node -> transistor indices *)
  gated_by : int list array;       (* node -> transistor indices *)
  owner : int array;               (* node -> instance index or -1 *)
  primary_input : bool array;      (* node -> is a PI signal node *)
}

let build (m : Mapping.network) =
  let n = m.node_count in
  let channel_edges = Array.make n [] in
  let gated_by = Array.make n [] in
  Array.iteri
    (fun ti (tr : Mapping.transistor) ->
      channel_edges.(tr.source) <- ti :: channel_edges.(tr.source);
      channel_edges.(tr.drain) <- ti :: channel_edges.(tr.drain);
      gated_by.(tr.gate) <- ti :: gated_by.(tr.gate))
    m.transistors;
  let owner = Array.make n (-1) in
  Array.iteri
    (fun ii (inst : Mapping.instance) ->
      owner.(inst.output_node) <- ii;
      Array.iter (fun nd -> owner.(nd) <- ii) inst.internal_nodes)
    m.instances;
  let primary_input = Array.make n false in
  Array.iter
    (fun pi -> primary_input.(m.signal_node.(pi)) <- true)
    m.circuit.inputs;
  (* Reverse adjacency lists so they run in ascending transistor order. *)
  Array.iteri (fun i l -> channel_edges.(i) <- List.rev l) channel_edges;
  Array.iteri (fun i l -> gated_by.(i) <- List.rev l) gated_by;
  { mapping = m; channel_edges; gated_by; owner; primary_input }

let mapping t = t.mapping
let channel_edges t node = t.channel_edges.(node)
let gated_by t node = t.gated_by.(node)

let owner_instance t node = if t.owner.(node) < 0 then None else Some t.owner.(node)

let is_rail t node = node = t.mapping.gnd || node = t.mapping.vdd
let is_primary_input t node = t.primary_input.(node)

let other_end t ~transistor_index ~node =
  let tr = t.mapping.transistors.(transistor_index) in
  if tr.source = node then tr.drain
  else if tr.drain = node then tr.source
  else invalid_arg "Network.other_end: node is not a channel terminal"

let instances_touching t node =
  let acc = ref [] in
  let add ti =
    let inst = t.mapping.transistors.(ti).instance in
    if inst >= 0 && not (List.mem inst !acc) then acc := inst :: !acc
  in
  List.iter add t.channel_edges.(node);
  List.iter add t.gated_by.(node);
  List.sort compare !acc
