open Dl_logic
module Mapping = Dl_cell.Mapping
module Cell = Dl_cell.Cell

type modification =
  | Remove_transistor of int
  | Short_transistor of int
  | Bridge_nodes of { node_a : int; node_b : int }
  | Resistive_bridge of { node_a : int; node_b : int; resistance : float }

(* Relative series resistances of the strength model.  The NMOS/PMOS ratio
   reflects electron/hole mobility, and deliberately breaks ties so that a
   hard bridge between opposing drivers resolves like the classical
   wired-AND CMOS bridging model (pull-down usually wins); a bridge is a
   hard short (zero resistance). *)
let r_nmos = 1.0
let r_pmos = 2.5
let r_bridge = 0.0

(* External pad drivers are much stronger than cell pulls but not perfectly
   matched to each other: when two bridged inputs fight, the (arbitrarily,
   deterministically) stronger pad wins, as on silicon.  Both strengths stay
   far below every cell-path resistance. *)
let r_driver node = 0.2 +. (0.001 *. float_of_int (node mod 97))
let infinite = infinity

type gating = Always_on | Gated of int * Cell.channel

type edge = { endpoint_a : int; endpoint_b : int; resistance : float; gating : gating }

type t = {
  network : Network.t;
  globals : int array;          (* local -> global node id (floats < 0 are synthetic) *)
  local_of : (int, int) Hashtbl.t;
  edges : edge array;
  gnd : int;                    (* local ids *)
  vdd : int;
  pi_nodes : (int * int) list;  (* (local, global) nodes with external pad drivers *)
  resolved : int list;          (* local ids whose values the region determines *)
}

let nodes t = List.map (fun l -> t.globals.(l)) t.resolved

let observable_nodes t =
  List.map (fun l -> t.globals.(l)) t.resolved
  @ List.map (fun (_, g) -> g) t.pi_nodes

let make (net : Network.t) ~instances ~modifications =
  let m = Network.mapping net in
  let removed = Hashtbl.create 4 in
  let shorted = Hashtbl.create 4 in
  List.iter
    (function
      | Remove_transistor ti -> Hashtbl.replace removed ti ()
      | Short_transistor ti -> Hashtbl.replace shorted ti ()
      | Bridge_nodes _ | Resistive_bridge _ -> ())
    modifications;
  let local_of = Hashtbl.create 32 in
  let globals = ref [] in
  let count = ref 0 in
  let intern global =
    match Hashtbl.find_opt local_of global with
    | Some l -> l
    | None ->
        let l = !count in
        incr count;
        Hashtbl.replace local_of global l;
        globals := global :: !globals;
        l
  in
  let gnd = intern m.Mapping.gnd in
  let vdd = intern m.Mapping.vdd in
  let resolved = ref [] in
  List.iter
    (fun ii ->
      let inst = m.Mapping.instances.(ii) in
      resolved := intern inst.output_node :: !resolved;
      Array.iter (fun nd -> resolved := intern nd :: !resolved) inst.internal_nodes)
    instances;
  (* Channel edges from the instances' transistors. *)
  let edges = ref [] in
  List.iter
    (fun ii ->
      let inst = m.Mapping.instances.(ii) in
      let n_ts = List.length inst.cell.Cell.transistors in
      for k = 0 to n_ts - 1 do
        let ti = inst.first_transistor + k in
        if not (Hashtbl.mem removed ti) then begin
          let tr = m.Mapping.transistors.(ti) in
          let a = intern tr.source and b = intern tr.drain in
          let gating, resistance =
            if Hashtbl.mem shorted ti then (Always_on, r_nmos)
            else
              ( Gated (tr.gate, tr.channel),
                match tr.channel with Cell.Nmos -> r_nmos | Cell.Pmos -> r_pmos )
          in
          edges := { endpoint_a = a; endpoint_b = b; resistance; gating } :: !edges
        end
      done)
    instances;
  let pi_nodes = ref [] in
  let add_bridge node_a node_b resistance =
    let a = intern node_a and b = intern node_b in
    edges :=
      { endpoint_a = a; endpoint_b = b; resistance; gating = Always_on } :: !edges;
    List.iter
      (fun (g, l) ->
        if Network.is_primary_input net g then pi_nodes := (l, g) :: !pi_nodes
        else resolved := l :: !resolved)
      [ (node_a, a); (node_b, b) ]
  in
  List.iter
    (function
      | Bridge_nodes { node_a; node_b } -> add_bridge node_a node_b r_bridge
      | Resistive_bridge { node_a; node_b; resistance } ->
          if resistance < 0.0 then
            invalid_arg "Solver: bridge resistance must be non-negative";
          add_bridge node_a node_b resistance
      | Remove_transistor _ | Short_transistor _ -> ())
    modifications;
  (* De-duplicate resolved list, drop rails. *)
  let seen = Hashtbl.create 16 in
  let resolved =
    List.filter
      (fun l ->
        if l = gnd || l = vdd || Hashtbl.mem seen l then false
        else begin
          Hashtbl.replace seen l ();
          true
        end)
      (List.rev !resolved)
  in
  let globals_arr = Array.make !count (-1) in
  List.iteri
    (fun i g ->
      (* globals list is reversed relative to allocation order. *)
      globals_arr.(!count - 1 - i) <- g)
    !globals;
  {
    network = net;
    globals = globals_arr;
    local_of;
    edges = Array.of_list (List.rev !edges);
    gnd;
    vdd;
    pi_nodes = !pi_nodes;
    resolved;
  }

type outcome = { values : (int * Ternary.t) list; fight : bool }

type conduction = On | Off | Maybe

let solve t ~external_value ~charge =
  let n = Array.length t.globals in
  let values = Array.make n Ternary.VX in
  values.(t.gnd) <- Ternary.V0;
  values.(t.vdd) <- Ternary.V1;
  let pi_value = List.map (fun (l, g) -> (l, external_value g)) t.pi_nodes in
  List.iter (fun (l, v) -> values.(l) <- v) pi_value;
  let solved_locals = t.resolved @ List.map fst t.pi_nodes in
  let gate_value gnode =
    match Hashtbl.find_opt t.local_of gnode with
    | Some l when List.mem l solved_locals -> values.(l)
    | Some l when l = t.gnd -> Ternary.V0
    | Some l when l = t.vdd -> Ternary.V1
    | _ -> external_value gnode
  in
  let conduction e =
    match e.gating with
    | Always_on -> On
    | Gated (gnode, channel) -> (
        match (gate_value gnode, channel) with
        | Ternary.V1, Cell.Nmos | Ternary.V0, Cell.Pmos -> On
        | Ternary.V0, Cell.Nmos | Ternary.V1, Cell.Pmos -> Off
        | Ternary.VX, _ -> Maybe)
  in
  (* Single-source shortest path from a rail through edges whose conduction
     is in [accept]; O(V^2) Dijkstra is ample for these tiny graphs. *)
  let distances source accept =
    let dist = Array.make n infinite in
    dist.(source) <- 0.0;
    (* Pad drivers: a PI node with a matching value extends the rail. *)
    List.iter
      (fun (l, v) ->
        let matches =
          match (v, source = t.vdd) with
          | Ternary.V1, true | Ternary.V0, false -> true
          | Ternary.VX, _ -> accept Maybe
          | _ -> false
        in
        let r = r_driver t.globals.(l) in
        if matches && r < dist.(l) then dist.(l) <- r)
      pi_value;
    let visited = Array.make n false in
    let rec loop () =
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if (not visited.(i)) && dist.(i) < infinite then
          if !best < 0 || dist.(i) < dist.(!best) then best := i
      done;
      if !best >= 0 then begin
        let u = !best in
        visited.(u) <- true;
        (* Rails are sources, never conduits: a path entering the opposite
           rail must not continue out of it. *)
        let blocked = (u = t.gnd || u = t.vdd) && u <> source in
        if not blocked then
        Array.iter
          (fun e ->
            if accept (conduction e) then begin
              let relax a b =
                if a = u && dist.(u) +. e.resistance < dist.(b) then
                  dist.(b) <- dist.(u) +. e.resistance
              in
              relax e.endpoint_a e.endpoint_b;
              relax e.endpoint_b e.endpoint_a
            end)
          t.edges;
        loop ()
      end
    in
    loop ();
    dist
  in
  let debug = Sys.getenv_opt "DL_SOLVER_DEBUG" <> None in
  let fight = ref false in
  let stable = ref false in
  let rounds = ref 0 in
  let max_rounds = 4 * (n + 2) in
  while (not !stable) && !rounds < max_rounds do
    incr rounds;
    let def_dn = distances t.gnd (fun c -> c = On) in
    let def_up = distances t.vdd (fun c -> c = On) in
    let pos_dn = distances t.gnd (fun c -> c <> Off) in
    let pos_up = distances t.vdd (fun c -> c <> Off) in
    if debug then begin
      Printf.eprintf "round %d:\n" !rounds;
      List.iter (fun l ->
        Printf.eprintf "  node g%d l%d du=%.2f dd=%.2f pu=%.2f pd=%.2f val=%c\n"
          t.globals.(l) l def_up.(l) def_dn.(l) pos_up.(l) pos_dn.(l)
          (Ternary.to_char values.(l))) t.resolved;
      Array.iteri (fun ei e ->
        Printf.eprintf "  edge %d l%d-l%d r=%.2f cond=%s\n" ei e.endpoint_a e.endpoint_b e.resistance
          (match conduction e with On -> "on" | Off -> "off" | Maybe -> "maybe")) t.edges
    end;
    stable := true;
    List.iter
      (fun l ->
        let du = def_up.(l) and dd = def_dn.(l) in
        let pu = pos_up.(l) and pd = pos_dn.(l) in
        let v =
          if du < infinite && dd < infinite then begin
            fight := true;
            (* Stronger (lower-resistance) side wins the fight. *)
            if du < dd then Ternary.V1
            else if dd < du then Ternary.V0
            else Ternary.VX
          end
          else if du < infinite then (if pd < infinite then Ternary.VX else Ternary.V1)
          else if dd < infinite then (if pu < infinite then Ternary.VX else Ternary.V0)
          else if pu < infinite || pd < infinite then Ternary.VX
          else charge t.globals.(l)
        in
        if v <> values.(l) then begin
          values.(l) <- v;
          stable := false
        end)
      solved_locals;
    (* A pad driver opposed by a definite rail path is also a fight. *)
    List.iter
      (fun (l, v) ->
        match v with
        | Ternary.V1 -> if def_dn.(l) < infinite then fight := true
        | Ternary.V0 -> if def_up.(l) < infinite then fight := true
        | Ternary.VX -> ())
      pi_value
  done;
  let report =
    List.map (fun l -> (t.globals.(l), values.(l))) t.resolved
    @ List.map (fun (l, _) -> (t.globals.(l), values.(l))) t.pi_nodes
  in
  { values = report; fight = !fight }
