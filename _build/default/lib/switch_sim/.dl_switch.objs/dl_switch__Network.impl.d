lib/switch_sim/network.ml: Array Dl_cell List Mapping
