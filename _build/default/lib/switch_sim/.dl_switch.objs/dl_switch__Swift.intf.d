lib/switch_sim/swift.mli: Dl_fault Network Realistic
