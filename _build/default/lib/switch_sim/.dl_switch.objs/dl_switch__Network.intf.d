lib/switch_sim/network.mli: Dl_cell Mapping
