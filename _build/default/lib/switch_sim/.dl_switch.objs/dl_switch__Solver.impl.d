lib/switch_sim/solver.ml: Array Dl_cell Dl_logic Hashtbl List Network Printf Sys Ternary
