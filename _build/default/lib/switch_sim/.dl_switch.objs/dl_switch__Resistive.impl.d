lib/switch_sim/resistive.ml: Array Dl_cell Dl_logic Dl_netlist List Network Solver Swift
