lib/switch_sim/swift.ml: Array Circuit Dl_cell Dl_fault Dl_logic Dl_netlist Hashtbl Int64 List Network Realistic Solver
