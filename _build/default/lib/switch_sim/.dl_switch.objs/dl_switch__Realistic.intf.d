lib/switch_sim/realistic.mli:
