lib/switch_sim/solver.mli: Dl_logic Network Ternary
