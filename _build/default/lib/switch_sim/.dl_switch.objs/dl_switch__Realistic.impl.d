lib/switch_sim/realistic.ml: Float Printf
