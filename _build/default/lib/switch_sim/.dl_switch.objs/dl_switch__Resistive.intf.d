lib/switch_sim/resistive.mli: Network
