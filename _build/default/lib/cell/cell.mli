(** Static CMOS standard cells described at transistor level.

    Every cell is a complementary network: a PMOS pull-up between VDD and
    the output and a dual NMOS pull-down between GND and the output
    (possibly through internal nodes for series stacks, and through
    sub-stages for compound cells like AND = NAND + INV).  This is the
    netlist the switch-level simulator and the layout generator consume. *)

type channel = Nmos | Pmos

type term =
  | Vdd
  | Gnd
  | Port of string  (** An input port or the output port. *)
  | Net of string   (** Cell-internal node (series stack midpoints, buffered
                        sub-stage outputs). *)

type transistor = {
  channel : channel;
  gate : term;    (** Controlling terminal. *)
  source : term;
  drain : term;
}

type t = private {
  name : string;            (** E.g. ["NAND3"]. *)
  inputs : string list;     (** Ordered input port names, e.g. ["a"; "b"]. *)
  output : string;          (** Output port name (always ["o"]). *)
  internal : string list;   (** Internal net names. *)
  transistors : transistor list;
}

val for_gate : Dl_netlist.Gate.kind -> arity:int -> t
(** The cell implementing a logic gate of the given kind and fan-in.
    Raises [Invalid_argument] for unsupported combinations ([Input], or
    XOR/XNOR with arity <> 2 — wide XORs must be decomposed first). *)

val transistor_count : t -> int

val input_count : t -> int

val validate : t -> unit
(** Structural checks: every transistor terminal is declared, the output is
    reachable from both rails through channel terminals, gates of
    transistors are inputs or internal nets.  Raises [Invalid_argument] on
    violation. *)

val eval : t -> (string -> bool) -> bool
(** [eval cell lookup] computes the cell's Boolean function by path
    analysis on the transistor graph (conducting pull-up => 1, conducting
    pull-down => 0).  Raises [Invalid_argument] if neither or both networks
    conduct — a malformed complementary cell.  Used for library
    verification against {!Dl_netlist.Gate.eval}. *)

val all_kinds : (Dl_netlist.Gate.kind * int) list
(** Every (kind, arity) combination the library provides. *)
