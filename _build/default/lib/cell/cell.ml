module Gate = Dl_netlist.Gate

type channel = Nmos | Pmos

type term = Vdd | Gnd | Port of string | Net of string

type transistor = {
  channel : channel;
  gate : term;
  source : term;
  drain : term;
}

type t = {
  name : string;
  inputs : string list;
  output : string;
  internal : string list;
  transistors : transistor list;
}

let out = "o"

let port_names n = List.init n (fun i -> Printf.sprintf "%c" (Char.chr (Char.code 'a' + i)))

let nmos gate source drain = { channel = Nmos; gate; source; drain }
let pmos gate source drain = { channel = Pmos; gate; source; drain }

(* An inverter stage driving [target] from [input]. *)
let inverter_stage input target =
  [ nmos input Gnd target; pmos input Vdd target ]

(* Series stack of [channel] transistors from [rail] to [target], gated by
   [gates]; returns the transistors plus the internal midpoint nets. *)
let series channel ~rail ~target ~gates ~net_prefix =
  let n = List.length gates in
  let mids = List.init (n - 1) (fun i -> Printf.sprintf "%s%d" net_prefix (i + 1)) in
  let points = (rail :: List.map (fun m -> Net m) mids) @ [ target ] in
  let make i g =
    let src = List.nth points i and dst = List.nth points (i + 1) in
    { channel; gate = g; source = src; drain = dst }
  in
  (List.mapi make gates, mids)

let parallel channel ~rail ~target ~gates =
  List.map (fun g -> { channel; gate = g; source = rail; drain = target }) gates

let nand_stage ~inputs ~target ~net_prefix =
  let gates = List.map (fun p -> Port p) inputs in
  let pdn, mids = series Nmos ~rail:Gnd ~target ~gates ~net_prefix in
  let pun = parallel Pmos ~rail:Vdd ~target ~gates in
  (pdn @ pun, mids)

let nor_stage ~inputs ~target ~net_prefix =
  let gates = List.map (fun p -> Port p) inputs in
  let pun, mids = series Pmos ~rail:Vdd ~target ~gates ~net_prefix in
  let pdn = parallel Nmos ~rail:Gnd ~target ~gates in
  (pdn @ pun, mids)

let max_stack = 4

let check_arity kind arity =
  let ok =
    Gate.arity_ok kind arity
    &&
    match kind with
    | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> arity <= max_stack
    | Gate.Input | Gate.Buf | Gate.Not | Gate.Xor | Gate.Xnor -> true
  in
  if not ok then
    invalid_arg
      (Printf.sprintf "Cell.for_gate: %s with %d inputs" (Gate.to_string kind) arity)

let for_gate kind ~arity =
  check_arity kind arity;
  let inputs = port_names arity in
  let name k = Printf.sprintf "%s%d" k arity in
  match kind with
  | Gate.Input -> invalid_arg "Cell.for_gate: Input is not a cell"
  | Gate.Not ->
      {
        name = "INV";
        inputs;
        output = out;
        internal = [];
        transistors = inverter_stage (Port "a") (Port out);
      }
  | Gate.Buf ->
      {
        name = "BUF";
        inputs;
        output = out;
        internal = [ "m" ];
        transistors =
          inverter_stage (Port "a") (Net "m") @ inverter_stage (Net "m") (Port out);
      }
  | Gate.Nand ->
      let ts, mids = nand_stage ~inputs ~target:(Port out) ~net_prefix:"n" in
      { name = name "NAND"; inputs; output = out; internal = mids; transistors = ts }
  | Gate.Nor ->
      let ts, mids = nor_stage ~inputs ~target:(Port out) ~net_prefix:"n" in
      { name = name "NOR"; inputs; output = out; internal = mids; transistors = ts }
  | Gate.And ->
      let ts, mids = nand_stage ~inputs ~target:(Net "m") ~net_prefix:"n" in
      {
        name = name "AND";
        inputs;
        output = out;
        internal = "m" :: mids;
        transistors = ts @ inverter_stage (Net "m") (Port out);
      }
  | Gate.Or ->
      let ts, mids = nor_stage ~inputs ~target:(Net "m") ~net_prefix:"n" in
      {
        name = name "OR";
        inputs;
        output = out;
        internal = "m" :: mids;
        transistors = ts @ inverter_stage (Net "m") (Port out);
      }
  | Gate.Xor ->
      if arity <> 2 then
        invalid_arg "Cell.for_gate: XOR cells are 2-input; decompose wider XORs";
      (* o = not (a b + not a not b); complementary 12-transistor form with
         internal input complements na, nb. *)
      {
        name = "XOR2";
        inputs;
        output = out;
        internal = [ "na"; "nb"; "x1"; "x2"; "y1"; "y2" ];
        transistors =
          inverter_stage (Port "a") (Net "na")
          @ inverter_stage (Port "b") (Net "nb")
          @ [
              (* pull-down: (a,b) and (na,nb) series pairs *)
              nmos (Port "a") Gnd (Net "x1");
              nmos (Port "b") (Net "x1") (Port out);
              nmos (Net "na") Gnd (Net "x2");
              nmos (Net "nb") (Net "x2") (Port out);
              (* pull-up: (a,nb) and (na,b) series pairs *)
              pmos (Port "a") Vdd (Net "y1");
              pmos (Net "nb") (Net "y1") (Port out);
              pmos (Net "na") Vdd (Net "y2");
              pmos (Port "b") (Net "y2") (Port out);
            ];
      }
  | Gate.Xnor ->
      if arity <> 2 then
        invalid_arg "Cell.for_gate: XNOR cells are 2-input; decompose wider XNORs";
      {
        name = "XNOR2";
        inputs;
        output = out;
        internal = [ "na"; "nb"; "x1"; "x2"; "y1"; "y2" ];
        transistors =
          inverter_stage (Port "a") (Net "na")
          @ inverter_stage (Port "b") (Net "nb")
          @ [
              (* pull-down: (a,nb) and (na,b) *)
              nmos (Port "a") Gnd (Net "x1");
              nmos (Net "nb") (Net "x1") (Port out);
              nmos (Net "na") Gnd (Net "x2");
              nmos (Port "b") (Net "x2") (Port out);
              (* pull-up: (na,nb) and (a,b) *)
              pmos (Net "na") Vdd (Net "y1");
              pmos (Net "nb") (Net "y1") (Port out);
              pmos (Port "a") Vdd (Net "y2");
              pmos (Port "b") (Net "y2") (Port out);
            ];
      }

let transistor_count c = List.length c.transistors
let input_count c = List.length c.inputs

let term_declared c = function
  | Vdd | Gnd -> true
  | Port p -> p = c.output || List.mem p c.inputs
  | Net n -> List.mem n c.internal

let validate c =
  List.iter
    (fun tr ->
      List.iter
        (fun term ->
          if not (term_declared c term) then
            invalid_arg (Printf.sprintf "Cell.validate(%s): undeclared terminal" c.name))
        [ tr.gate; tr.source; tr.drain ];
      (match tr.gate with
      | Vdd | Gnd -> invalid_arg "Cell.validate: rail used as transistor gate"
      | Port p when p = c.output ->
          invalid_arg "Cell.validate: output used as transistor gate"
      | Port _ | Net _ -> ()))
    c.transistors;
  (* The output must touch at least one channel terminal. *)
  let touches term =
    List.exists (fun tr -> tr.source = term || tr.drain = term) c.transistors
  in
  if not (touches (Port c.output)) then
    invalid_arg (Printf.sprintf "Cell.validate(%s): output not driven" c.name)

(* Fixpoint evaluation by path analysis: resolves internal sub-stage nets
   (inverter outputs) round by round. *)
let eval c lookup =
  let known : (term, bool) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace known Vdd true;
  Hashtbl.replace known Gnd false;
  List.iter (fun p -> Hashtbl.replace known (Port p) (lookup p)) c.inputs;
  let value term = Hashtbl.find_opt known term in
  let conducting tr =
    match value tr.gate with
    | Some g -> (match tr.channel with Nmos -> g | Pmos -> not g)
    | None -> false
  in
  (* Does [target] connect to [rail] through conducting channels? *)
  let reaches target rail =
    let visited = Hashtbl.create 8 in
    let rec dfs node =
      if node = rail then true
      else if Hashtbl.mem visited node then false
      else begin
        Hashtbl.replace visited node ();
        List.exists
          (fun tr ->
            conducting tr
            && ((tr.source = node && dfs tr.drain)
               || (tr.drain = node && dfs tr.source)))
          c.transistors
      end
    in
    dfs target
  in
  let targets =
    Port c.output :: List.map (fun n -> Net n) c.internal
  in
  let rounds = List.length targets + 2 in
  for _ = 1 to rounds do
    List.iter
      (fun target ->
        if value target = None then begin
          let up = reaches target Vdd and down = reaches target Gnd in
          match (up, down) with
          | true, false -> Hashtbl.replace known target true
          | false, true -> Hashtbl.replace known target false
          | true, true ->
              invalid_arg
                (Printf.sprintf "Cell.eval(%s): rail fight at internal node" c.name)
          | false, false -> ()
        end)
      targets
  done;
  match value (Port c.output) with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Cell.eval(%s): floating output" c.name)

let all_kinds =
  [
    (Gate.Not, 1);
    (Gate.Buf, 1);
    (Gate.Nand, 2);
    (Gate.Nand, 3);
    (Gate.Nand, 4);
    (Gate.Nor, 2);
    (Gate.Nor, 3);
    (Gate.Nor, 4);
    (Gate.And, 2);
    (Gate.And, 3);
    (Gate.And, 4);
    (Gate.Or, 2);
    (Gate.Or, 3);
    (Gate.Or, 4);
    (Gate.Xor, 2);
    (Gate.Xnor, 2);
  ]
