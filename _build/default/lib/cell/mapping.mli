(** Technology mapping and flattening: from a gate-level circuit to a single
    whole-chip transistor network with global node numbering.

    Node id conventions: node 0 is GND, node 1 is VDD; every circuit signal
    (including primary inputs) gets one network node; every cell instance
    contributes its internal nodes.  The switch-level simulator and the
    layout generator both consume this structure. *)

open Dl_netlist

type transistor = {
  channel : Cell.channel;
  gate : int;    (** Network node controlling the channel. *)
  source : int;
  drain : int;
  instance : int;  (** Index into {!network.instances}, or -1 (unused). *)
}

type instance = {
  gate_id : int;            (** Circuit node this cell implements. *)
  cell : Cell.t;
  input_nodes : int array;  (** Network nodes, in cell input-port order. *)
  output_node : int;
  internal_nodes : int array;  (** Parallel to [cell.internal]. *)
  first_transistor : int;   (** Offset of this instance's transistors. *)
}

type network = {
  circuit : Circuit.t;
  gnd : int;
  vdd : int;
  node_count : int;
  node_names : string array;   (** Indexed by network node id. *)
  signal_node : int array;     (** Circuit node id -> network node id. *)
  transistors : transistor array;
  instances : instance array;  (** One per logic gate, topological order. *)
}

exception Unmappable of string
(** Raised when a gate has no cell (decompose first with
    {!Dl_netlist.Transform.decompose_for_cells}). *)

val flatten : Circuit.t -> network
(** @raise Unmappable on gates outside the cell library. *)

val transistor_count : network -> int

val instance_of_gate : network -> int -> instance option
(** The cell instance implementing the given circuit node (None for PIs). *)

val node_of_signal : network -> int -> int
(** Network node of a circuit signal. *)

val pp_summary : Format.formatter -> network -> unit
