lib/cell/mapping.mli: Cell Circuit Dl_netlist Format
