lib/cell/cell.mli: Dl_netlist
