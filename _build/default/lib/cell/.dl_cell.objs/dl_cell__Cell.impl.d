lib/cell/cell.ml: Char Dl_netlist Hashtbl List Printf
