lib/cell/mapping.ml: Array Cell Circuit Dl_netlist Format Gate List Printf
