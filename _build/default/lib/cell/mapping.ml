open Dl_netlist

type transistor = {
  channel : Cell.channel;
  gate : int;
  source : int;
  drain : int;
  instance : int;
}

type instance = {
  gate_id : int;
  cell : Cell.t;
  input_nodes : int array;
  output_node : int;
  internal_nodes : int array;
  first_transistor : int;
}

type network = {
  circuit : Circuit.t;
  gnd : int;
  vdd : int;
  node_count : int;
  node_names : string array;
  signal_node : int array;
  transistors : transistor array;
  instances : instance array;
}

exception Unmappable of string

let flatten (c : Circuit.t) =
  let n_signals = Circuit.node_count c in
  let names = ref [ "VDD"; "GND" ] (* reversed *) in
  let next_node = ref 2 in
  let fresh name =
    let id = !next_node in
    incr next_node;
    names := name :: !names;
    id
  in
  let signal_node = Array.init n_signals (fun id -> 2 + id) in
  Array.iter (fun (nd : Circuit.node) -> ignore (fresh nd.name)) c.nodes;
  let transistors = ref [] (* reversed *) in
  let n_transistors = ref 0 in
  let instances = ref [] (* reversed *) in
  let n_instances = ref 0 in
  Array.iter
    (fun id ->
      let nd = c.nodes.(id) in
      if nd.kind <> Gate.Input then begin
        let arity = Array.length nd.fanin in
        let cell =
          try Cell.for_gate nd.kind ~arity
          with Invalid_argument msg ->
            raise
              (Unmappable
                 (Printf.sprintf "gate %S (%s/%d): %s" nd.name
                    (Gate.to_string nd.kind) arity msg))
        in
        let input_nodes = Array.map (fun src -> signal_node.(src)) nd.fanin in
        let output_node = signal_node.(id) in
        let internal_nodes =
          Array.of_list
            (List.map
               (fun net -> fresh (Printf.sprintf "%s/%s" nd.name net))
               cell.internal)
        in
        let resolve term =
          match term with
          | Cell.Gnd -> 0
          | Cell.Vdd -> 1
          | Cell.Port p ->
              if p = cell.output then output_node
              else begin
                let rec find i = function
                  | [] -> raise (Unmappable ("unknown port " ^ p))
                  | q :: _ when q = p -> input_nodes.(i)
                  | _ :: rest -> find (i + 1) rest
                in
                find 0 cell.inputs
              end
          | Cell.Net net ->
              let rec find i = function
                | [] -> raise (Unmappable ("unknown net " ^ net))
                | q :: _ when q = net -> internal_nodes.(i)
                | _ :: rest -> find (i + 1) rest
              in
              find 0 cell.internal
        in
        let first_transistor = !n_transistors in
        List.iter
          (fun (tr : Cell.transistor) ->
            transistors :=
              {
                channel = tr.channel;
                gate = resolve tr.gate;
                source = resolve tr.source;
                drain = resolve tr.drain;
                instance = !n_instances;
              }
              :: !transistors;
            incr n_transistors)
          cell.transistors;
        instances :=
          { gate_id = id; cell; input_nodes; output_node; internal_nodes; first_transistor }
          :: !instances;
        incr n_instances
      end)
    c.topo_order;
  {
    circuit = c;
    gnd = 0;
    vdd = 1;
    node_count = !next_node;
    node_names = Array.of_list (List.rev !names);
    signal_node;
    transistors = Array.of_list (List.rev !transistors);
    instances = Array.of_list (List.rev !instances);
  }

let transistor_count net = Array.length net.transistors

let instance_of_gate net gate_id =
  Array.find_opt (fun inst -> inst.gate_id = gate_id) net.instances

let node_of_signal net signal = net.signal_node.(signal)

let pp_summary ppf net =
  Format.fprintf ppf "%s: %d network nodes, %d transistors, %d cell instances"
    net.circuit.title net.node_count (transistor_count net)
    (Array.length net.instances)
