(** Full-chip layout synthesis: row-based placement of cell templates plus
    two-layer channel routing (metal1 trunks in channels assigned by the
    left-edge algorithm, metal2 verticals over the cells, vias at bends).

    The result is the geometric database the inductive fault analysis
    ({!Dl_extract}) scans for critical areas — the reproduction of the
    paper's "layout obtained with a commercial standard cell design
    system". *)

type placement = {
  instance : int;       (** Instance index in the network. *)
  row : int;            (** 0 = bottom row. *)
  x : int;              (** Absolute left edge. *)
  y : int;              (** Absolute bottom edge. *)
  template : Cell_template.t;
}

type pad = {
  signal : int;  (** Circuit node (a PI or PO). *)
  pad_x : int;
  pad_y : int;
}

type tag =
  | Cell_rect of int  (** Geometry inside cell instance [i]. *)
  | Trunk of int      (** Channel trunk wire of circuit net [n]. *)
  | Pin_drop of { gate : int; pin : int }
      (** Vertical drop / via serving input [pin] of circuit gate. *)
  | Driver_drop of int  (** Vertical drop / via at the driver of net [n]. *)
  | Pad_rect of int     (** I/O pad of circuit net [n]. *)

type t = {
  network : Dl_cell.Mapping.network;
  rects : Geom.rect array;     (** Entire geometric database. *)
  tags : tag array;            (** Provenance, parallel to [rects]. *)
  width : int;
  height : int;
  placements : placement array;
  input_pads : pad array;
  rows : int;
  channel_tracks : int array;  (** Tracks used per channel (diagnostics). *)
}

val synthesize : ?rows:int -> Dl_cell.Mapping.network -> t
(** [rows] defaults to a near-square aspect heuristic. *)

val rects_on : t -> Geom.layer -> Geom.rect array

val wire_length : t -> Geom.layer -> int
(** Total length (long dimension) of wires on a routing layer. *)

val net_rects : t -> int -> Geom.rect list
(** All geometry labeled with the given network node. *)

val pp_stats : Format.formatter -> t -> unit
