module Mapping = Dl_cell.Mapping
module Cell = Dl_cell.Cell

type pin = { node : int; x : int; y : int }

type t = {
  width : int;
  height : int;
  rects : Geom.rect list;
  input_pins : pin list;
  output_pin : pin;
}

let cell_height = 40

(* Vertical bands of the cell image. *)
let gnd_rail_y = (0, 4)
let ndiff_y = (10, 16)
let npoly_y = (6, 20)
let mid_y = (18, 22)
let ppoly_y = (22, 34)
let pdiff_y = (24, 30)
let vdd_rail_y = (36, 40)
let pin_pad_y = (31, 35)

let island_w = 3 (* diffusion island width *)
let gate_w = 2 (* poly gate width *)
let diff_gap = 3 (* gap between unrelated diffusion chains *)

(* Lay one channel row out as diffusion chains with shared islands: walking
   the transistors in order, a device whose source (or drain, flipping the
   device) matches the previous island extends the chain; otherwise a new
   chain starts after a gap.  Returns the row width, the geometry, and the
   poly gate x-center per transistor. *)
let layout_row transistors ~poly_band ~diff_band ~diff_layer ~add =
  let poly_lo, poly_hi = poly_band and diff_lo, diff_hi = diff_band in
  let island x net =
    add diff_layer ~x0:x ~y0:diff_lo ~x1:(x + island_w) ~y1:diff_hi ~net
  in
  let poly x net = add Geom.Poly ~x0:x ~y0:poly_lo ~x1:(x + gate_w) ~y1:poly_hi ~net in
  let cursor = ref 0 in
  let prev_net = ref None in
  let centers =
    Array.map
      (fun (tr : Mapping.transistor) ->
        let near, far =
          match !prev_net with
          | Some p when p = tr.drain -> (tr.drain, tr.source)
          | _ -> (tr.source, tr.drain)
        in
        (match !prev_net with
        | Some p when p = near -> () (* share the previous island *)
        | _ ->
            if !prev_net <> None then cursor := !cursor + diff_gap;
            island !cursor near;
            cursor := !cursor + island_w);
        let gx = !cursor in
        poly gx tr.gate;
        cursor := !cursor + gate_w;
        island !cursor far;
        cursor := !cursor + island_w;
        prev_net := Some far;
        (gx + (gate_w / 2), tr))
      transistors
  in
  (!cursor, centers)

let build (m : Mapping.network) ~instance_index =
  let inst = m.Mapping.instances.(instance_index) in
  let ts =
    let n = List.length inst.cell.Cell.transistors in
    Array.init n (fun k -> m.Mapping.transistors.(inst.first_transistor + k))
  in
  let by_channel ch =
    Array.of_seq
      (Seq.filter (fun (tr : Mapping.transistor) -> tr.channel = ch) (Array.to_seq ts))
  in
  let nmos = by_channel Cell.Nmos and pmos = by_channel Cell.Pmos in
  let rects = ref [] in
  let add layer ~x0 ~y0 ~x1 ~y1 ~net =
    rects := Geom.make_rect layer ~x0 ~y0 ~x1 ~y1 ~net :: !rects
  in
  let nw, ncenters = layout_row nmos ~poly_band:npoly_y ~diff_band:ndiff_y
      ~diff_layer:Geom.Diffusion_n ~add
  in
  let pw, pcenters = layout_row pmos ~poly_band:ppoly_y ~diff_band:pdiff_y
      ~diff_layer:Geom.Diffusion_p ~add
  in
  let width = max nw pw + 8 in
  (* Power rails. *)
  let y0, y1 = gnd_rail_y in
  add Geom.Metal1 ~x0:0 ~y0 ~x1:width ~y1 ~net:m.Mapping.gnd;
  let y0, y1 = vdd_rail_y in
  add Geom.Metal1 ~x0:0 ~y0 ~x1:width ~y1 ~net:m.Mapping.vdd;
  (* Output spine and mid strap in metal1, with contacts at output islands. *)
  add Geom.Metal1 ~x0:(width - 4) ~y0:4 ~x1:(width - 2) ~y1:36 ~net:inst.output_node;
  let y0, y1 = mid_y in
  add Geom.Metal1 ~x0:2 ~y0 ~x1:(width - 2) ~y1 ~net:inst.output_node;
  let contact_output (gx, (tr : Mapping.transistor)) =
    if tr.source = inst.output_node || tr.drain = inst.output_node then begin
      let y = match tr.channel with Cell.Nmos -> 17 | Cell.Pmos -> 23 in
      add Geom.Contact ~x0:(gx + 3) ~y0:(y - 1) ~x1:(gx + 5) ~y1:(y + 1)
        ~net:inst.output_node
    end
  in
  Array.iter contact_output ncenters;
  Array.iter contact_output pcenters;
  (* Input pins: metal1 landing pad plus contact over the first poly gate of
     the port (preferring the PMOS row, which sits under the pad band). *)
  let gate_x node =
    let find centers =
      Array.fold_left
        (fun acc (gx, (tr : Mapping.transistor)) ->
          match acc with Some _ -> acc | None -> if tr.gate = node then Some gx else None)
        None centers
    in
    match find pcenters with Some gx -> gx | None -> (
      match find ncenters with Some gx -> gx | None -> 1)
  in
  let pin_of_input node =
    let gx = gate_x node in
    let y0, y1 = pin_pad_y in
    let x0 = max 0 (gx - 2) in
    add Geom.Metal1 ~x0 ~y0 ~x1:(x0 + 4) ~y1 ~net:node;
    add Geom.Contact ~x0:(x0 + 1) ~y0:(y0 + 1) ~x1:(x0 + 3) ~y1:(y1 - 1) ~net:node;
    { node; x = x0 + 2; y = (y0 + y1) / 2 }
  in
  let input_pins = Array.to_list (Array.map pin_of_input inst.input_nodes) in
  let output_pin = { node = inst.output_node; x = width - 3; y = 20 } in
  {
    width;
    height = cell_height;
    rects = List.rev !rects;
    input_pins;
    output_pin;
  }
