(** Per-instance cell layout templates on the lambda grid.

    Every cell follows the classic two-row standard-cell image: GND rail at
    the bottom, VDD rail at the top, an NMOS diffusion row and a PMOS
    diffusion row, one poly column per transistor, a metal1 output spine,
    and metal1 landing pads for the input pins.  Geometry is emitted in
    cell-local coordinates; {!Layout} translates instances into place. *)

type pin = {
  node : int;  (** Network node this pin connects. *)
  x : int;     (** Cell-local pin position (center). *)
  y : int;
}

type t = {
  width : int;
  height : int;
  rects : Geom.rect list;  (** Cell-local geometry, nets = network nodes. *)
  input_pins : pin list;   (** In cell input-port order. *)
  output_pin : pin;
}

val cell_height : int
(** Uniform standard-cell height (lambda). *)

val build : Dl_cell.Mapping.network -> instance_index:int -> t
