(** SVG rendering of a synthesized layout — the visual check on placement,
    routing and the geometry the fault extractor scans. *)

val render : ?scale:float -> Layout.t -> string
(** A self-contained SVG document: one semi-transparent rectangle per shape,
    colored by layer (diffusion green/amber, poly red, metal1 blue, metal2
    magenta, contacts/vias dark), with a tooltip carrying layer and net
    name.  [scale] is pixels per lambda (default 2). *)

val write_file : ?scale:float -> string -> Layout.t -> unit
