let layer_style = function
  | Geom.Diffusion_n -> ("#1b7f3a", 0.8)
  | Geom.Diffusion_p -> ("#b8860b", 0.8)
  | Geom.Poly -> ("#cc2222", 0.8)
  | Geom.Metal1 -> ("#2255cc", 0.55)
  | Geom.Metal2 -> ("#aa22aa", 0.45)
  | Geom.Contact -> ("#111111", 0.9)
  | Geom.Via -> ("#333366", 0.9)

(* Draw in a fixed layer order so routing sits on top of cell geometry. *)
let draw_order =
  [
    Geom.Diffusion_n;
    Geom.Diffusion_p;
    Geom.Poly;
    Geom.Metal1;
    Geom.Metal2;
    Geom.Contact;
    Geom.Via;
  ]

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(scale = 2.0) (l : Layout.t) =
  if scale <= 0.0 then invalid_arg "Svg.render: scale must be positive";
  let m = l.Layout.network in
  let net_name n =
    if n >= 0 && n < Array.length m.Dl_cell.Mapping.node_names then
      m.Dl_cell.Mapping.node_names.(n)
    else "?"
  in
  let buf = Buffer.create 65536 in
  let w = float_of_int l.Layout.width *. scale in
  let h = float_of_int l.Layout.height *. scale in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
        viewBox=\"0 0 %.0f %.0f\">\n<rect width=\"100%%\" height=\"100%%\" \
        fill=\"#f8f8f4\"/>\n"
       w h w h);
  List.iter
    (fun layer ->
      let color, opacity = layer_style layer in
      Buffer.add_string buf (Printf.sprintf "<g fill=\"%s\" fill-opacity=\"%.2f\">\n" color opacity);
      Array.iter
        (fun (r : Geom.rect) ->
          if r.layer = layer then begin
            (* SVG y grows downward; flip so row 0 sits at the bottom. *)
            let x = float_of_int r.x0 *. scale in
            let y = float_of_int (l.Layout.height - r.y1) *. scale in
            let rw = float_of_int (Geom.width r) *. scale in
            let rh = float_of_int (Geom.height r) *. scale in
            Buffer.add_string buf
              (Printf.sprintf
                 "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\">\
                  <title>%s %s</title></rect>\n"
                 x y rw rh
                 (Geom.layer_name r.layer)
                 (escape (net_name r.net)))
          end)
        l.Layout.rects;
      Buffer.add_string buf "</g>\n")
    draw_order;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file ?scale path l =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?scale l))
