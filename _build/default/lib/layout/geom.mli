(** Lambda-grid layout geometry: net-labeled rectangles on process layers.

    All coordinates are integers in lambda units.  A rectangle spans
    [\[x0, x1) × \[y0, y1)].  The [net] is a network node id from
    {!Dl_cell.Mapping} (or [-1] for unconnected shapes). *)

type layer =
  | Diffusion_n
  | Diffusion_p
  | Poly
  | Metal1
  | Metal2
  | Contact  (** Metal1-to-poly/diffusion contacts. *)
  | Via      (** Metal1-to-metal2 vias. *)

val layer_name : layer -> string
val all_layers : layer list

type rect = {
  layer : layer;
  x0 : int;
  y0 : int;
  x1 : int;
  y1 : int;
  net : int;
}

val make_rect : layer -> x0:int -> y0:int -> x1:int -> y1:int -> net:int -> rect
(** @raise Invalid_argument on an empty or inverted rectangle. *)

val width : rect -> int
val height : rect -> int
val area : rect -> int

val translate : rect -> dx:int -> dy:int -> rect

val overlaps : rect -> rect -> bool
(** Same-layer area intersection. *)

type adjacency = {
  spacing : int;       (** Edge-to-edge gap (>= 0; 0 means touching). *)
  common_run : int;    (** Length of the facing parallel run. *)
}

val facing : rect -> rect -> adjacency option
(** [facing a b]: if [a] and [b] are on the same layer, disjoint, and have
    horizontally or vertically facing edges with positive common run, the
    gap geometry between them — the input to bridge critical-area
    computation. *)

val bounding_box : rect list -> (int * int * int * int) option
(** [(x0, y0, x1, y1)] covering all rectangles. *)
