lib/layout/svg.mli: Layout
