lib/layout/layout.ml: Array Cell_template Dl_cell Dl_netlist Float Format Geom Hashtbl List Option Seq String
