lib/layout/cell_template.ml: Array Dl_cell Geom List Seq
