lib/layout/cell_template.mli: Dl_cell Geom
