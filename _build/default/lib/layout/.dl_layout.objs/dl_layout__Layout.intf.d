lib/layout/layout.mli: Cell_template Dl_cell Format Geom
