lib/layout/geom.ml: List Printf
