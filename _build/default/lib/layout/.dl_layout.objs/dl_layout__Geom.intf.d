lib/layout/geom.mli:
