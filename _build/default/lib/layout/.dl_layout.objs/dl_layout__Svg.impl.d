lib/layout/svg.ml: Array Buffer Dl_cell Fun Geom Layout List Printf String
