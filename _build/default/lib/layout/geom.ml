type layer = Diffusion_n | Diffusion_p | Poly | Metal1 | Metal2 | Contact | Via

let layer_name = function
  | Diffusion_n -> "ndiff"
  | Diffusion_p -> "pdiff"
  | Poly -> "poly"
  | Metal1 -> "metal1"
  | Metal2 -> "metal2"
  | Contact -> "contact"
  | Via -> "via"

let all_layers = [ Diffusion_n; Diffusion_p; Poly; Metal1; Metal2; Contact; Via ]

type rect = { layer : layer; x0 : int; y0 : int; x1 : int; y1 : int; net : int }

let make_rect layer ~x0 ~y0 ~x1 ~y1 ~net =
  if x1 <= x0 || y1 <= y0 then
    invalid_arg
      (Printf.sprintf "Geom.make_rect: empty rectangle (%d,%d)-(%d,%d)" x0 y0 x1 y1);
  { layer; x0; y0; x1; y1; net }

let width r = r.x1 - r.x0
let height r = r.y1 - r.y0
let area r = width r * height r

let translate r ~dx ~dy =
  { r with x0 = r.x0 + dx; x1 = r.x1 + dx; y0 = r.y0 + dy; y1 = r.y1 + dy }

let overlaps a b =
  a.layer = b.layer && a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1

type adjacency = { spacing : int; common_run : int }

let facing a b =
  if a.layer <> b.layer || overlaps a b then None
  else begin
    let x_overlap = min a.x1 b.x1 - max a.x0 b.x0 in
    let y_overlap = min a.y1 b.y1 - max a.y0 b.y0 in
    if y_overlap > 0 && x_overlap <= 0 then begin
      (* Horizontally separated, vertically overlapping: vertical run. *)
      let spacing = max a.x0 b.x0 - min a.x1 b.x1 in
      Some { spacing = max 0 spacing; common_run = y_overlap }
    end
    else if x_overlap > 0 && y_overlap <= 0 then begin
      let spacing = max a.y0 b.y0 - min a.y1 b.y1 in
      Some { spacing = max 0 spacing; common_run = x_overlap }
    end
    else None
  end

let bounding_box = function
  | [] -> None
  | r :: rest ->
      let f (x0, y0, x1, y1) r =
        (min x0 r.x0, min y0 r.y0, max x1 r.x1, max y1 r.y1)
      in
      Some (List.fold_left f (r.x0, r.y0, r.x1, r.y1) rest)
