module Mapping = Dl_cell.Mapping
module Circuit = Dl_netlist.Circuit
module Gate = Dl_netlist.Gate

type placement = {
  instance : int;
  row : int;
  x : int;
  y : int;
  template : Cell_template.t;
}

type pad = { signal : int; pad_x : int; pad_y : int }

type tag =
  | Cell_rect of int
  | Trunk of int
  | Pin_drop of { gate : int; pin : int }
  | Driver_drop of int
  | Pad_rect of int

type t = {
  network : Mapping.network;
  rects : Geom.rect array;
  tags : tag array;
  width : int;
  height : int;
  placements : placement array;
  input_pads : pad array;
  rows : int;
  channel_tracks : int array;
}

let cell_gap = 4
let track_pitch = 4
let wire_width = 2
let channel_margin = 4

(* A routing terminal: a pin or pad position with its preferred channel. *)
type terminal_kind = Term_in of int * int | Term_out of int | Term_pad of int

type terminal = {
  t_net : int;        (* network node *)
  t_x : int;          (* absolute x of the wire center-left *)
  mutable t_y : int;  (* absolute y (pads: set once channel ys are known) *)
  t_pref : int;       (* preferred channel index *)
  t_kind : terminal_kind;
}

let synthesize ?rows (m : Mapping.network) =
  let n_inst = Array.length m.Mapping.instances in
  let templates =
    Array.init n_inst (fun i -> Cell_template.build m ~instance_index:i)
  in
  let total_width =
    Array.fold_left (fun acc (tpl : Cell_template.t) -> acc + tpl.width + cell_gap)
      0 templates
  in
  let n_rows =
    match rows with
    | Some r when r >= 1 -> r
    | Some _ -> invalid_arg "Layout.synthesize: rows must be >= 1"
    | None ->
        max 1
          (int_of_float
             (Float.round (sqrt (float_of_int total_width /. (3.0 *. 40.0)))))
  in
  let target = (total_width / n_rows) + 1 in
  (* Row assignment in instance (topological) order. *)
  let row_of = Array.make n_inst 0 in
  let x_of = Array.make n_inst 0 in
  let row_widths = Array.make n_rows 0 in
  let row = ref 0 and cursor = ref 0 in
  Array.iteri
    (fun i (tpl : Cell_template.t) ->
      if !cursor > 0 && !cursor + tpl.width > target && !row < n_rows - 1 then begin
        row_widths.(!row) <- !cursor;
        incr row;
        cursor := 0
      end;
      row_of.(i) <- !row;
      x_of.(i) <- !cursor;
      cursor := !cursor + tpl.width + cell_gap)
    templates;
  row_widths.(!row) <- !cursor;
  let chip_core_width = Array.fold_left max 1 row_widths in
  let width = chip_core_width + (2 * channel_margin) in
  let c = m.Mapping.circuit in
  (* Terminals per routed net (keyed by circuit node id). *)
  let inst_of_gate = Array.make (Circuit.node_count c) (-1) in
  Array.iteri
    (fun ii (inst : Mapping.instance) -> inst_of_gate.(inst.gate_id) <- ii)
    m.Mapping.instances;
  let terminals : (int, terminal list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_terminal cnode t =
    match Hashtbl.find_opt terminals cnode with
    | Some l -> l := t :: !l
    | None -> Hashtbl.replace terminals cnode (ref [ t ])
  in
  let pin_terminal ii (pin : Cell_template.pin) cnode kind =
    {
      t_net = m.Mapping.signal_node.(cnode);
      t_x = channel_margin + x_of.(ii) + pin.x - 1;
      t_y = 0 (* filled after stacking *);
      t_pref = row_of.(ii) + 1;
      t_kind = kind;
    }
  in
  (* Cell pins. *)
  Array.iteri
    (fun ii (inst : Mapping.instance) ->
      let tpl = templates.(ii) in
      add_terminal inst.gate_id
        (pin_terminal ii tpl.output_pin inst.gate_id (Term_out inst.gate_id));
      let nd = c.nodes.(inst.gate_id) in
      List.iteri
        (fun pin_idx (pin : Cell_template.pin) ->
          let src = nd.fanin.(pin_idx) in
          add_terminal src
            (pin_terminal ii pin src (Term_in (inst.gate_id, pin_idx))))
        tpl.input_pins)
    m.Mapping.instances;
  (* Pads: PIs in the top channel, POs in the bottom channel. *)
  let spread count k =
    channel_margin + ((k + 1) * chip_core_width / (count + 1))
  in
  let input_pads = ref [] in
  Array.iteri
    (fun k pi ->
      let x = spread (Array.length c.inputs) k in
      add_terminal pi
        {
          t_net = m.Mapping.signal_node.(pi);
          t_x = x;
          t_y = 0;
          t_pref = n_rows;
          t_kind = Term_pad pi;
        };
      input_pads := { signal = pi; pad_x = x; pad_y = 0 } :: !input_pads)
    c.inputs;
  Array.iteri
    (fun k po ->
      let x = spread (Array.length c.outputs) k in
      add_terminal po
        {
          t_net = m.Mapping.signal_node.(po);
          t_x = x;
          t_y = 0;
          t_pref = 0;
          t_kind = Term_pad po;
        })
    c.outputs;
  (* Trunk channel per net: median of terminal preferences. *)
  let nets =
    Hashtbl.fold (fun cnode terms acc -> (cnode, List.rev !terms) :: acc) terminals []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let trunk_channel terms =
    let prefs = List.map (fun t -> t.t_pref) terms |> List.sort compare in
    List.nth prefs (List.length prefs / 2)
  in
  let net_channel = List.map (fun (cnode, terms) -> (cnode, trunk_channel terms)) nets in
  (* Left-edge track assignment per channel. *)
  let n_channels = n_rows + 1 in
  let channel_nets = Array.make n_channels [] in
  List.iter
    (fun (cnode, terms) ->
      let ch = List.assoc cnode net_channel in
      let xs = List.map (fun t -> t.t_x) terms in
      let x0 = List.fold_left min max_int xs - 1 in
      let x1 = List.fold_left max min_int xs + wire_width + 1 in
      channel_nets.(ch) <- (cnode, x0, x1, terms) :: channel_nets.(ch))
    nets;
  let channel_tracks = Array.make n_channels 0 in
  let track_of_net : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun ch lst ->
      let sorted = List.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b) lst in
      let track_last = ref [||] in
      List.iter
        (fun (cnode, x0, x1, _) ->
          let placed = ref false in
          Array.iteri
            (fun ti last ->
              if (not !placed) && last + 2 <= x0 then begin
                !track_last.(ti) <- x1;
                Hashtbl.replace track_of_net cnode ti;
                placed := true
              end)
            !track_last;
          if not !placed then begin
            track_last := Array.append !track_last [| x1 |];
            Hashtbl.replace track_of_net cnode (Array.length !track_last - 1)
          end)
        sorted;
      channel_tracks.(ch) <- Array.length !track_last)
    channel_nets;
  (* Vertical stacking: channel 0, row 0, channel 1, row 1, ..., channel R. *)
  let channel_height ch = (2 * channel_margin) + (channel_tracks.(ch) * track_pitch) in
  let channel_y = Array.make n_channels 0 in
  let row_y = Array.make n_rows 0 in
  let y = ref 0 in
  for ch = 0 to n_channels - 1 do
    channel_y.(ch) <- !y;
    y := !y + channel_height ch;
    if ch < n_rows then begin
      row_y.(ch) <- !y;
      y := !y + Cell_template.cell_height
    end
  done;
  let height = !y in
  let trunk_y cnode =
    let ch = List.assoc cnode net_channel in
    let track = Option.value ~default:0 (Hashtbl.find_opt track_of_net cnode) in
    channel_y.(ch) + channel_margin + (track * track_pitch)
  in
  (* Fill in terminal and pad y positions. *)
  List.iter
    (fun (cnode, terms) ->
      List.iter
        (fun t ->
          if (match t.t_kind with Term_pad _ -> true | _ -> false) then
            t.t_y <- trunk_y cnode
          else begin
            (* Cell pin: recover its row from the preference. *)
            let r = t.t_pref - 1 in
            t.t_y <- row_y.(r)
          end)
        terms)
    nets;
  let rects = ref [] in
  let add tag r = rects := (r, tag) :: !rects in
  (* Cell geometry, translated into place. *)
  let placements =
    Array.init n_inst (fun ii ->
        let tpl = templates.(ii) in
        let px = channel_margin + x_of.(ii) and py = row_y.(row_of.(ii)) in
        List.iter (fun r -> add (Cell_rect ii) (Geom.translate r ~dx:px ~dy:py)) tpl.rects;
        { instance = ii; row = row_of.(ii); x = px; y = py; template = tpl })
  in
  (* Routing geometry: metal1 trunks, metal2 verticals, vias. *)
  let vertical_occupancy : (int * int * int * int) list ref = ref [] in
  let place_vertical ~tag ~net ~x ~y0 ~y1 =
    (* Pad the checked extent so via stubs at either end cannot collide. *)
    let py0 = y0 - 2 and py1 = y1 + 2 in
    let rec fit x tries =
      let clash =
        List.exists
          (fun (ox, oy0, oy1, onet) ->
            onet <> net && abs (ox - x) < wire_width + 1 && oy0 < py1 && py0 < oy1)
          !vertical_occupancy
      in
      if clash && tries < 40 then fit (x + wire_width + 1) (tries + 1) else x
    in
    let x = fit x 0 in
    vertical_occupancy := (x, py0, py1, net) :: !vertical_occupancy;
    add tag (Geom.make_rect Geom.Metal2 ~x0:x ~y0 ~x1:(x + wire_width) ~y1 ~net);
    x
  in
  List.iter
    (fun (cnode, terms) ->
      let net = m.Mapping.signal_node.(cnode) in
      let ty = trunk_y cnode in
      let xs = List.map (fun t -> t.t_x) terms in
      let x0 = List.fold_left min max_int xs in
      let x1 = List.fold_left max min_int xs + wire_width in
      (* Trunk in metal1 along its channel track. *)
      add (Trunk cnode)
        (Geom.make_rect Geom.Metal1 ~x0 ~y0:ty ~x1:(max x1 (x0 + wire_width)) ~y1:(ty + wire_width) ~net);
      List.iter
        (fun t ->
          let pin_y = t.t_y in
          match t.t_kind with
          | Term_pad signal ->
            (* Pad: a metal1 square on the trunk. *)
            add (Pad_rect signal)
              (Geom.make_rect Geom.Metal1 ~x0:(t.t_x - 1) ~y0:(ty - 1)
                 ~x1:(t.t_x + wire_width + 1) ~y1:(ty + wire_width + 1) ~net)
          | Term_in _ | Term_out _ -> begin
            (* Vertical metal2 from the pin row up/down to the trunk. *)
            let pin_abs_y =
              (* input pins sit near the cell top, output pins mid-cell; we
                 approximate both with the cell band they live in. *)
              pin_y + 20
            in
            let y0 = min pin_abs_y ty and y1 = max pin_abs_y (ty + wire_width) in
            let tag =
              match t.t_kind with
              | Term_in (gate, pin) -> Pin_drop { gate; pin }
              | Term_out g -> Driver_drop g
              | Term_pad s -> Pad_rect s
            in
            if y1 > y0 then begin
              let x = place_vertical ~tag ~net ~x:t.t_x ~y0 ~y1 in
              (* Vias at both ends. *)
              add tag (Geom.make_rect Geom.Via ~x0:x ~y0:(pin_abs_y - 1) ~x1:(x + wire_width) ~y1:(pin_abs_y + 1) ~net);
              add tag (Geom.make_rect Geom.Via ~x0:x ~y0:ty ~x1:(x + wire_width) ~y1:(ty + wire_width) ~net)
            end
          end)
        terms)
    nets;
  let input_pads =
    Array.of_list
      (List.rev_map
         (fun p -> { p with pad_y = trunk_y p.signal })
         !input_pads)
  in
  let pairs = Array.of_list (List.rev !rects) in
  {
    network = m;
    rects = Array.map fst pairs;
    tags = Array.map snd pairs;
    width;
    height;
    placements;
    input_pads;
    rows = n_rows;
    channel_tracks;
  }

let rects_on t layer =
  Array.of_seq (Seq.filter (fun (r : Geom.rect) -> r.layer = layer) (Array.to_seq t.rects))

let wire_length t layer =
  Array.fold_left
    (fun acc (r : Geom.rect) ->
      if r.layer = layer then acc + max (Geom.width r) (Geom.height r) else acc)
    0 t.rects

let net_rects t net =
  Array.to_list t.rects |> List.filter (fun (r : Geom.rect) -> r.net = net)

let pp_stats ppf t =
  Format.fprintf ppf
    "%s layout: %dx%d lambda, %d rows, %d rects, m1 wire %d, m2 wire %d, tracks %s"
    t.network.Mapping.circuit.title t.width t.height t.rows (Array.length t.rects)
    (wire_length t Geom.Metal1) (wire_length t Geom.Metal2)
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.channel_tracks)))
