(* Cross-engine fuzzing over randomly generated circuits: every property
   here pits two independent implementations against each other (parallel
   vs serial simulation, PPSFP vs the ternary oracle, PODEM vs exhaustive
   search, gate-level vs switch-level evaluation, parser vs printer). *)

open Dl_netlist

let small_profile =
  [
    (Gate.Nand, 8);
    (Gate.Nor, 4);
    (Gate.And, 3);
    (Gate.Or, 3);
    (Gate.Not, 4);
    (Gate.Xor, 3);
  ]

let random_circuit seed =
  Generator.random ~seed ~inputs:6 ~outputs:3 ~profile:small_profile ()

let vectors_of rng c n =
  Array.init n (fun _ ->
      Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))

let exhaustive c =
  let npi = Circuit.input_count c in
  Array.init (1 lsl npi) (fun k -> Array.init npi (fun pi -> k lsr pi land 1 = 1))

(* --- simulators agree ------------------------------------------------------ *)

let prop_simulators_agree =
  QCheck.Test.make ~name:"sim2 = sim3 = event sim on random circuits" ~count:25
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let rng = Dl_util.Rng.create (seed + 1) in
      let es = Dl_logic.Event_sim.create c in
      let ok = ref true in
      for _ = 1 to 10 do
        let v = Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng) in
        let r2 = Dl_logic.Sim2.run_single c v in
        let r3 = Dl_logic.Sim3.run c (Array.map Dl_logic.Ternary.of_bool v) in
        let _ = Dl_logic.Event_sim.set_inputs es v in
        Array.iteri
          (fun id b ->
            if Dl_logic.Ternary.to_bool r3.(id) <> Some b then ok := false;
            if Dl_logic.Event_sim.value es id <> b then ok := false)
          r2
      done;
      !ok)

(* --- fault simulation vs oracle -------------------------------------------- *)

let prop_ppsfp_oracle =
  QCheck.Test.make ~name:"PPSFP first detections match the ternary oracle" ~count:12
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let rng = Dl_util.Rng.create (seed * 3) in
      let faults = Dl_fault.Stuck_at.universe c in
      (* sample 20 faults to keep the oracle cheap *)
      let sample = Dl_util.Rng.sample rng faults (min 20 (Array.length faults)) in
      let vectors = vectors_of rng c 40 in
      let r = Dl_fault.Fault_sim.run ~drop_detected:false c ~faults:sample ~vectors in
      Array.for_all
        (fun i ->
          let oracle = ref None in
          Array.iteri
            (fun k v ->
              if !oracle = None && Dl_fault.Fault_sim.detects_fault c sample.(i) v
              then oracle := Some k)
            vectors;
          r.first_detection.(i) = !oracle)
        (Array.init (Array.length sample) Fun.id))

let prop_collapse_classes_equivalent =
  QCheck.Test.make ~name:"equivalence classes detect identically" ~count:12
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let rng = Dl_util.Rng.create (seed * 5) in
      let classes = Dl_fault.Stuck_at.equivalence_classes c (Dl_fault.Stuck_at.universe c) in
      let vectors = vectors_of rng c 10 in
      Array.for_all
        (fun cls ->
          Array.length cls < 2
          || Array.for_all
               (fun v ->
                 let d0 = Dl_fault.Fault_sim.detects_fault c cls.(0) v in
                 Array.for_all
                   (fun f -> Dl_fault.Fault_sim.detects_fault c f v = d0)
                   cls)
               vectors)
        classes)

(* --- PODEM vs exhaustive ----------------------------------------------------- *)

let prop_podem_sound_and_complete =
  QCheck.Test.make ~name:"PODEM verdicts match exhaustive search" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let rng = Dl_util.Rng.create (seed * 7) in
      let faults = Dl_fault.Stuck_at.universe c in
      let sample = Dl_util.Rng.sample rng faults (min 12 (Array.length faults)) in
      let all = exhaustive c in
      let scoap = Dl_atpg.Scoap.compute c in
      Array.for_all
        (fun f ->
          let truly_testable =
            Array.exists (fun v -> Dl_fault.Fault_sim.detects_fault c f v) all
          in
          match Dl_atpg.Podem.generate ~scoap c f with
          | Dl_atpg.Podem.Test v ->
              truly_testable && Dl_fault.Fault_sim.detects_fault c f v
          | Dl_atpg.Podem.Untestable -> not truly_testable
          | Dl_atpg.Podem.Aborted -> true (* inconclusive is acceptable *))
        sample)

(* --- netlist formats ----------------------------------------------------------- *)

let behaviourally_equal c1 c2 seed =
  let rng = Dl_util.Rng.create seed in
  let ok = ref true in
  for _ = 1 to 16 do
    let v = Array.init (Circuit.input_count c1) (fun _ -> Dl_util.Rng.bool rng) in
    if Dl_logic.Sim2.output_bits c1 v <> Dl_logic.Sim2.output_bits c2 v then ok := false
  done;
  !ok

let prop_format_roundtrips =
  QCheck.Test.make ~name:"bench and verilog roundtrips preserve behaviour" ~count:15
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let via_bench = Bench_format.parse_string (Bench_format.to_string c) in
      let via_verilog = Verilog.parse_string (Verilog.to_string c) in
      behaviourally_equal c via_bench (seed + 1)
      && behaviourally_equal c via_verilog (seed + 2))

let prop_decompose_equivalent =
  QCheck.Test.make ~name:"cell decomposition preserves behaviour" ~count:15
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c =
        Generator.random ~seed ~inputs:5 ~outputs:2
          ~profile:[ (Gate.Nand, 4); (Gate.Xor, 6); (Gate.Or, 3) ]
          ()
      in
      let c' = Transform.decompose_for_cells c in
      Transform.is_cell_mappable c' && behaviourally_equal c c' (seed + 3))

(* --- switch level vs gate level -------------------------------------------------- *)

let prop_switch_level_fault_free =
  QCheck.Test.make ~name:"switch-level cells equal gate logic on random circuits"
    ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = Transform.decompose_for_cells (random_circuit seed) in
      let m = Dl_cell.Mapping.flatten c in
      let net = Dl_switch.Network.build m in
      let rng = Dl_util.Rng.create (seed * 11) in
      let ok = ref true in
      Array.iteri
        (fun ii (inst : Dl_cell.Mapping.instance) ->
          let nd = c.Circuit.nodes.(inst.gate_id) in
          let region = Dl_switch.Solver.make net ~instances:[ ii ] ~modifications:[] in
          for _ = 1 to 3 do
            let ins =
              Array.init (Array.length nd.fanin) (fun _ -> Dl_util.Rng.bool rng)
            in
            let ext g =
              let rec scan p =
                if p >= Array.length nd.fanin then Dl_logic.Ternary.VX
                else if m.Dl_cell.Mapping.signal_node.(nd.fanin.(p)) = g then
                  Dl_logic.Ternary.of_bool ins.(p)
                else scan (p + 1)
              in
              scan 0
            in
            let o =
              Dl_switch.Solver.solve region ~external_value:ext
                ~charge:(fun _ -> Dl_logic.Ternary.VX)
            in
            (match List.assoc_opt inst.output_node o.values with
            | Some v ->
                if Dl_logic.Ternary.to_bool v <> Some (Gate.eval nd.kind ins) then
                  ok := false
            | None -> ok := false);
            if o.fight then ok := false
          done)
        m.Dl_cell.Mapping.instances;
      !ok)

(* --- layout integrity -------------------------------------------------------------- *)

let prop_layout_no_shorts =
  QCheck.Test.make ~name:"synthesized layouts have no different-net overlaps" ~count:5
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = Transform.decompose_for_cells (random_circuit seed) in
      let l = Dl_layout.Layout.synthesize (Dl_cell.Mapping.flatten c) in
      let rs = l.Dl_layout.Layout.rects in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          for j = i + 1 to Array.length rs - 1 do
            let b = rs.(j) in
            if a.Dl_layout.Geom.net <> b.Dl_layout.Geom.net && Dl_layout.Geom.overlaps a b
            then ok := false
          done)
        rs;
      !ok)

let prop_extraction_sites_valid =
  QCheck.Test.make ~name:"extracted fault sites reference live structure" ~count:5
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = Transform.decompose_for_cells (random_circuit seed) in
      let m = Dl_cell.Mapping.flatten c in
      let l = Dl_layout.Layout.synthesize m in
      let e = Dl_extract.Ifa.extract l in
      let n_nodes = m.Dl_cell.Mapping.node_count in
      let n_ts = Dl_cell.Mapping.transistor_count m in
      Array.for_all
        (fun (f : Dl_switch.Realistic.t) ->
          f.weight > 0.0
          &&
          match f.kind with
          | Dl_switch.Realistic.Bridge { node_a; node_b } ->
              node_a >= 0 && node_a < n_nodes && node_b >= 0 && node_b < n_nodes
              && node_a <> node_b
          | Dl_switch.Realistic.Transistor_stuck_open ti
          | Dl_switch.Realistic.Transistor_stuck_on ti ->
              ti >= 0 && ti < n_ts
          | Dl_switch.Realistic.Input_open { gate; pin; _ } ->
              gate >= 0
              && gate < Circuit.node_count c
              && pin >= 0
              && pin < Array.length c.Circuit.nodes.(gate).fanin
          | Dl_switch.Realistic.Stem_open { node; _ } ->
              node >= 0 && node < Circuit.node_count c)
        e.Dl_extract.Ifa.faults)

(* --- transition faults vs oracle ------------------------------------------------------ *)

let prop_transition_oracle =
  QCheck.Test.make ~name:"transition run matches the pair oracle" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let rng = Dl_util.Rng.create (seed * 13) in
      let universe = Dl_fault.Transition.universe c in
      let faults = Dl_util.Rng.sample rng universe (min 10 (Array.length universe)) in
      let vectors = vectors_of rng c 25 in
      let r = Dl_fault.Transition.run c ~faults ~vectors in
      Array.for_all
        (fun i ->
          let oracle = ref None in
          for k = 1 to Array.length vectors - 1 do
            if
              !oracle = None
              && Dl_fault.Transition.detects_pair c faults.(i) ~v1:vectors.(k - 1)
                   ~v2:vectors.(k)
            then oracle := Some k
          done;
          r.first_detection.(i) = !oracle)
        (Array.init (Array.length faults) Fun.id))

(* --- compaction safety ------------------------------------------------------------------ *)

let prop_compaction_preserves =
  QCheck.Test.make ~name:"compaction never loses coverage" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let rng = Dl_util.Rng.create (seed * 17) in
      let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
      let vectors = vectors_of rng c 80 in
      let before = Dl_fault.Fault_sim.run c ~faults ~vectors in
      let compacted, _ = Dl_atpg.Compaction.compact c ~faults ~vectors in
      let after = Dl_fault.Fault_sim.run c ~faults ~vectors:compacted in
      Dl_fault.Fault_sim.detected_count before = Dl_fault.Fault_sim.detected_count after)


(* --- extended properties ------------------------------------------------------- *)

let prop_transition_atpg_verified =
  QCheck.Test.make ~name:"transition ATPG pairs are verified detectors" ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let rng = Dl_util.Rng.create (seed * 19) in
      let universe = Dl_fault.Transition.universe c in
      let faults = Dl_util.Rng.sample rng universe (min 8 (Array.length universe)) in
      let r = Dl_atpg.Transition_atpg.run c ~faults in
      (* every emitted pair detects at least one of the target faults *)
      Array.for_all
        (fun (v1, v2) ->
          Array.exists
            (fun f -> Dl_fault.Transition.detects_pair c f ~v1 ~v2)
            faults)
        r.pairs)

let prop_detectability_curve_monotone =
  QCheck.Test.make ~name:"expected coverage is monotone in k" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.0 1.0))
    (fun probs ->
      let d = Dl_fault.Detectability.of_probabilities (Array.of_list probs) in
      let prev = ref (-1.0) in
      List.for_all
        (fun k ->
          let v = Dl_fault.Detectability.expected_coverage d k in
          let ok = v >= !prev -. 1e-12 && v >= 0.0 && v <= 1.0 in
          prev := v;
          ok)
        [ 0; 1; 2; 4; 8; 16; 64; 256 ])

let prop_clustered_between_bounds =
  QCheck.Test.make ~name:"clustered DL bounded by endpoints" ~count:300
    QCheck.(
      make
        Gen.(
          let* y = float_range 0.05 0.99 in
          let* alpha = float_range 0.05 100.0 in
          let* t = float_range 0.0 1.0 in
          return (y, alpha, t)))
    (fun (y, alpha, t) ->
      let dl = Dl_core.Clustered.defect_level ~yield:y ~alpha ~coverage:t in
      dl >= -1e-12 && dl <= (1.0 -. y) +. 1e-9)

let prop_timing_arrival_monotone =
  QCheck.Test.make ~name:"arrival times increase along fanin edges" ~count:15
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let t = Dl_logic.Timing.analyze c in
      Array.for_all
        (fun (nd : Circuit.node) ->
          Array.for_all
            (fun src -> Dl_logic.Timing.arrival t src < Dl_logic.Timing.arrival t nd.id)
            nd.fanin
          || nd.kind = Gate.Input)
        c.Circuit.nodes)

let prop_cop_probabilities_in_range =
  QCheck.Test.make ~name:"COP probabilities and observabilities in [0,1]" ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let cop = Dl_atpg.Cop.compute c in
      Array.for_all
        (fun (nd : Circuit.node) ->
          let p = Dl_atpg.Cop.probability_one cop nd.id in
          let o = Dl_atpg.Cop.observability cop nd.id in
          p >= 0.0 && p <= 1.0 && o >= 0.0 && o <= 1.0)
        c.Circuit.nodes)

let prop_svg_well_formed =
  QCheck.Test.make ~name:"SVG output is structurally sane" ~count:5
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let c = Transform.decompose_for_cells (random_circuit seed) in
      let l = Dl_layout.Layout.synthesize (Dl_cell.Mapping.flatten c) in
      let svg = Dl_layout.Svg.render l in
      let count needle =
        let nh = String.length svg and nn = String.length needle in
        let c = ref 0 in
        for i = 0 to nh - nn do
          if String.sub svg i nn = needle then incr c
        done;
        !c
      in
      count "<g " = count "</g>" && count "<svg" = 1 && count "</svg>" = 1)

let () =
  Alcotest.run "fuzz"
    [
      ( "cross-engine",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simulators_agree;
            prop_ppsfp_oracle;
            prop_collapse_classes_equivalent;
            prop_podem_sound_and_complete;
            prop_format_roundtrips;
            prop_decompose_equivalent;
            prop_switch_level_fault_free;
            prop_layout_no_shorts;
            prop_extraction_sites_valid;
            prop_transition_oracle;
            prop_compaction_preserves;
            prop_transition_atpg_verified;
            prop_detectability_curve_monotone;
            prop_clustered_between_bounds;
            prop_timing_arrival_monotone;
            prop_cop_probabilities_in_range;
            prop_svg_well_formed;
          ] );
    ]
