open Dl_netlist
open Dl_switch
module Mapping = Dl_cell.Mapping
module T3 = Dl_logic.Ternary

let rng = Dl_util.Rng.create 404

let build name =
  let c = Transform.decompose_for_cells (Option.get (Benchmarks.by_name name)) in
  let m = Mapping.flatten c in
  (c, m, Network.build m)

let exhaustive_vectors c =
  let npi = Circuit.input_count c in
  Array.init (1 lsl npi) (fun k -> Array.init npi (fun pi -> k lsr pi land 1 = 1))

let random_vectors c n =
  Array.init n (fun _ ->
      Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))

(* --- Network indexing -------------------------------------------------------- *)

let test_network_adjacency () =
  let _, m, net = build "c17" in
  (* every transistor appears in the channel lists of both terminals *)
  Array.iteri
    (fun ti (tr : Mapping.transistor) ->
      Alcotest.(check bool) "source lists it" true
        (List.mem ti (Network.channel_edges net tr.source));
      Alcotest.(check bool) "drain lists it" true
        (List.mem ti (Network.channel_edges net tr.drain));
      Alcotest.(check bool) "gate lists it" true (List.mem ti (Network.gated_by net tr.gate)))
    m.Mapping.transistors

let test_network_owners () =
  let c, m, net = build "c17" in
  Array.iter
    (fun (inst : Mapping.instance) ->
      Alcotest.(check bool) "output owned" true
        (Network.owner_instance net inst.output_node <> None))
    m.Mapping.instances;
  Array.iter
    (fun pi ->
      Alcotest.(check bool) "PI unowned" true
        (Network.owner_instance net m.Mapping.signal_node.(pi) = None);
      Alcotest.(check bool) "PI flagged" true
        (Network.is_primary_input net m.Mapping.signal_node.(pi)))
    c.Circuit.inputs;
  Alcotest.(check bool) "gnd is rail" true (Network.is_rail net m.Mapping.gnd)

(* --- Solver: fault-free cells agree with gate logic -------------------------- *)

let test_solver_fault_free_cells () =
  let c, m, net = build "c432s_small" in
  (* For each instance, solve its region with no modifications and compare
     the output against Gate.eval on random inputs. *)
  Array.iteri
    (fun ii (inst : Mapping.instance) ->
      let nd = c.Circuit.nodes.(inst.gate_id) in
      let region = Solver.make net ~instances:[ ii ] ~modifications:[] in
      for _ = 1 to 8 do
        let ins = Array.init (Array.length nd.fanin) (fun _ -> Dl_util.Rng.bool rng) in
        let ext g =
          let rec scan p =
            if p >= Array.length nd.fanin then T3.VX
            else if m.Mapping.signal_node.(nd.fanin.(p)) = g then T3.of_bool ins.(p)
            else scan (p + 1)
          in
          scan 0
        in
        let o = Solver.solve region ~external_value:ext ~charge:(fun _ -> T3.VX) in
        Alcotest.(check bool) "no fight in fault-free cell" false o.fight;
        match List.assoc_opt inst.output_node o.values with
        | Some v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s output" (Circuit.name c inst.gate_id))
              true
              (T3.to_bool v = Some (Gate.eval nd.kind ins))
        | None -> Alcotest.fail "output not reported"
      done)
    m.Mapping.instances

(* --- Fault behaviours ---------------------------------------------------------- *)

(* A single INV circuit gives fully transparent behaviour checks. *)
let inv_fixture () =
  let b = Circuit.Builder.create ~title:"inv1" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b "o" Gate.Not [ "a" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let m = Mapping.flatten c in
  (c, m, Network.build m)

let test_stuck_open_two_pattern () =
  let _, m, net = inv_fixture () in
  (* transistor 0 is the NMOS; removing it makes input=1 float the output,
     retaining the previous value: detected only by a 0->1 input sequence. *)
  let nmos_index =
    let rec scan i =
      if (m.Mapping.transistors.(i)).channel = Dl_cell.Cell.Nmos then i else scan (i + 1)
    in
    scan 0
  in
  let fault =
    {
      Realistic.kind = Realistic.Transistor_stuck_open nmos_index;
      weight = 1.0;
      label = "nmos open";
    }
  in
  (* Sequence 1: input constant 1 -> output floats with unknown charge:
     never a definite error. *)
  let r1 = Swift.run net ~faults:[| fault |] ~vectors:[| [| true |]; [| true |] |] in
  Alcotest.(check bool) "constant-1 undetected" true
    (r1.detection.(0).voltage = None);
  (* Sequence 2: 0 then 1: the 0 charges the output to 1; at input 1 the
     output should fall but floats at 1 -> detected on vector 2. *)
  let r2 = Swift.run net ~faults:[| fault |] ~vectors:[| [| false |]; [| true |] |] in
  Alcotest.(check bool) "two-pattern detected" true (r2.detection.(0).voltage = Some 1);
  Alcotest.(check bool) "no static current" true (r2.detection.(0).iddq = None)

let test_stuck_on_fight () =
  let _, m, net = inv_fixture () in
  let nmos_index =
    let rec scan i =
      if (m.Mapping.transistors.(i)).channel = Dl_cell.Cell.Nmos then i else scan (i + 1)
    in
    scan 0
  in
  let fault =
    {
      Realistic.kind = Realistic.Transistor_stuck_on nmos_index;
      weight = 1.0;
      label = "nmos on";
    }
  in
  (* input 0: PMOS pulls up (2.5) against stuck-on NMOS (1.0): output reads 0
     -> wrong value AND static current. *)
  let r = Swift.run net ~faults:[| fault |] ~vectors:[| [| false |] |] in
  Alcotest.(check bool) "voltage detected" true (r.detection.(0).voltage = Some 0);
  Alcotest.(check bool) "iddq detected" true (r.detection.(0).iddq = Some 0)

let test_bridge_wired_behaviour () =
  let c, m, net = build "c17" in
  let sn name = m.Mapping.signal_node.(Circuit.find c name) in
  let fault =
    {
      Realistic.kind = Realistic.Bridge { node_a = sn "n10"; node_b = sn "n19" };
      weight = 1.0;
      label = "n10/n19";
    }
  in
  let vectors = exhaustive_vectors c in
  let r = Swift.run net ~faults:[| fault |] ~vectors in
  Alcotest.(check bool) "bridge voltage-detected" true (r.detection.(0).voltage <> None);
  Alcotest.(check bool) "bridge iddq-detected" true (r.detection.(0).iddq <> None);
  (* IDDQ fires no later than voltage (activation suffices). *)
  (match (r.detection.(0).voltage, r.detection.(0).iddq) with
  | Some v, Some i -> Alcotest.(check bool) "iddq <= voltage" true (i <= v)
  | _ -> ())

let test_bridge_to_rail_acts_stuck () =
  let c, m, net = build "c17" in
  let sn name = m.Mapping.signal_node.(Circuit.find c name) in
  (* n10 shorted to GND behaves as n10 SA0 for detection purposes *)
  let fault =
    {
      Realistic.kind = Realistic.Bridge { node_a = sn "n10"; node_b = m.Mapping.gnd };
      weight = 1.0;
      label = "n10/gnd";
    }
  in
  let vectors = exhaustive_vectors c in
  let r = Swift.run net ~faults:[| fault |] ~vectors in
  let sa =
    { Dl_fault.Stuck_at.site = Dl_fault.Stuck_at.Stem (Circuit.find c "n10");
      polarity = Dl_fault.Stuck_at.Sa0 }
  in
  let sim =
    Dl_fault.Fault_sim.run ~drop_detected:false c ~faults:[| sa |] ~vectors
  in
  Alcotest.(check bool) "same first detection as SA0" true
    (r.detection.(0).voltage = sim.first_detection.(0))

let test_input_open_policies () =
  let c, _, net = build "c17" in
  let n22 = Circuit.find c "n22" in
  let mk policy =
    {
      Realistic.kind = Realistic.Input_open { gate = n22; pin = 0; policy };
      weight = 1.0;
      label = "n22.in0";
    }
  in
  let vectors = exhaustive_vectors c in
  let r =
    Swift.run net
      ~faults:[| mk Realistic.Floats_low; mk Realistic.Floats_high; mk Realistic.Floats_unknown |]
      ~vectors
  in
  Alcotest.(check bool) "low detected" true (r.detection.(0).voltage <> None);
  Alcotest.(check bool) "high detected" true (r.detection.(1).voltage <> None);
  Alcotest.(check bool) "unknown never voltage-detected" true
    (r.detection.(2).voltage = None);
  Alcotest.(check bool) "unknown iddq-detected" true (r.detection.(2).iddq = Some 0)

let test_stem_open_matches_branch_all () =
  (* A stem open on a fanout-free net equals the input-open at its only
     reader. *)
  let c, _, net = build "c17" in
  let n10 = Circuit.find c "n10" in
  let n22 = Circuit.find c "n22" in
  let vectors = exhaustive_vectors c in
  let stem =
    { Realistic.kind = Realistic.Stem_open { node = n10; policy = Realistic.Floats_low };
      weight = 1.0; label = "stem" }
  in
  let branch =
    { Realistic.kind = Realistic.Input_open { gate = n22; pin = 0; policy = Realistic.Floats_low };
      weight = 1.0; label = "branch" }
  in
  let r = Swift.run net ~faults:[| stem; branch |] ~vectors in
  Alcotest.(check bool) "same detection" true
    (r.detection.(0).voltage = r.detection.(1).voltage)

let test_weighted_coverage_composition () =
  let c, m, net = build "c17" in
  let sn name = m.Mapping.signal_node.(Circuit.find c name) in
  let faults =
    [|
      { Realistic.kind = Realistic.Bridge { node_a = sn "n10"; node_b = sn "n19" };
        weight = 3.0; label = "b" };
      { Realistic.kind = Realistic.Stem_open { node = Circuit.find c "n16"; policy = Realistic.Floats_unknown };
        weight = 1.0; label = "o" };
    |]
  in
  let vectors = exhaustive_vectors c in
  let r = Swift.run net ~faults ~vectors in
  let theta = Swift.weighted_coverage r in
  let gamma = Swift.unweighted_coverage r in
  let n = Array.length vectors in
  (* bridge detected, float-X open not: theta = 3/4, gamma = 1/2 *)
  Alcotest.(check (float 1e-12)) "theta" 0.75 (Dl_fault.Coverage.at theta n);
  Alcotest.(check (float 1e-12)) "gamma" 0.5 (Dl_fault.Coverage.at gamma n);
  let iddq = Swift.iddq_weighted_coverage r in
  Alcotest.(check (float 1e-12)) "iddq completes" 1.0 (Dl_fault.Coverage.at iddq n)

let test_good_values_match_sim2 () =
  let c, _, net = build "c432s_small" in
  let vectors = random_vectors c 10 in
  let goods = Swift.good_values net vectors in
  Array.iteri
    (fun k v ->
      let expected = Dl_logic.Sim2.run_single c v in
      Alcotest.(check (array bool)) (Printf.sprintf "vector %d" k) expected goods.(k))
    vectors

let test_drop_modes_agree_on_firsts () =
  let c, m, net = build "c17" in
  let sn name = m.Mapping.signal_node.(Circuit.find c name) in
  let faults =
    [|
      { Realistic.kind = Realistic.Bridge { node_a = sn "n10"; node_b = sn "n23" };
        weight = 1.0; label = "b1" };
      { Realistic.kind = Realistic.Bridge { node_a = sn "n11"; node_b = sn "n22" };
        weight = 1.0; label = "b2" };
    |]
  in
  let vectors = random_vectors c 64 in
  let a = Swift.run ~drop_when:`Never net ~faults ~vectors in
  let b = Swift.run ~drop_when:`Both net ~faults ~vectors in
  Alcotest.(check bool) "voltage firsts equal" true
    (Array.for_all2
       (fun (x : Swift.detection) (y : Swift.detection) -> x.voltage = y.voltage)
       a.detection b.detection)


let test_charge_retention_sequence () =
  (* A stuck-open NAND pull-down transistor: output floats when the stuck
     pattern is applied; the retained value must be the *previous* settled
     value, vector after vector. *)
  let b = Circuit.Builder.create ~title:"nand1" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b "o" Gate.Nand [ "a"; "b" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let m = Mapping.flatten c in
  let net = Network.build m in
  (* find an NMOS of the series stack *)
  let nmos_index =
    let rec scan i =
      if (m.Mapping.transistors.(i)).channel = Dl_cell.Cell.Nmos then i else scan (i + 1)
    in
    scan 0
  in
  let fault =
    { Realistic.kind = Realistic.Transistor_stuck_open nmos_index;
      weight = 1.0; label = "nand nmos open" }
  in
  (* (1,1) would pull down; with the device open the output retains its last
     value.  Sequence: (0,1) -> o=1; (1,1) -> retains 1 (good would be 0):
     detected exactly on the second vector. *)
  let r =
    Swift.run net ~faults:[| fault |]
      ~vectors:[| [| false; true |]; [| true; true |] |]
  in
  Alcotest.(check bool) "detected on capture vector" true
    (r.detection.(0).voltage = Some 1)

let test_feedback_bridge_terminates () =
  (* Bridge a gate output back onto one of its transitive inputs: the
     region/propagation feedback loop must settle (bounded iterations) and
     the run must finish with a sane verdict. *)
  let c, m, net = build "c432s_small" in
  (* find a pair (x, y) with y in the cone of x *)
  let found = ref None in
  (try
     Array.iter
       (fun (nd : Circuit.node) ->
         Array.iter
           (fun succ ->
             Array.iter
               (fun succ2 ->
                 if !found = None && c.Circuit.nodes.(succ2).kind <> Gate.Input then begin
                   found := Some (nd.id, succ2);
                   raise Exit
                 end)
               c.Circuit.fanouts.(succ))
           c.Circuit.fanouts.(nd.id))
       c.Circuit.nodes
   with Exit -> ());
  match !found with
  | None -> Alcotest.fail "no feedback pair found"
  | Some (a, b) ->
      let fault =
        { Realistic.kind =
            Realistic.Bridge
              { node_a = m.Mapping.signal_node.(a); node_b = m.Mapping.signal_node.(b) };
          weight = 1.0; label = "feedback" }
      in
      let vectors = random_vectors c 64 in
      let r = Swift.run net ~faults:[| fault |] ~vectors in
      Alcotest.(check int) "run completes over all vectors" 64 r.vectors_applied

let test_drop_voltage_mode_faster () =
  let c, m, net = build "c17" in
  let sn name = m.Mapping.signal_node.(Circuit.find c name) in
  let faults =
    [| { Realistic.kind = Realistic.Bridge { node_a = sn "n10"; node_b = sn "n19" };
         weight = 1.0; label = "b" } |]
  in
  let vectors = exhaustive_vectors c in
  let fast = Swift.run ~drop_when:`Voltage net ~faults ~vectors in
  let full = Swift.run ~drop_when:`Never net ~faults ~vectors in
  Alcotest.(check bool) "same first detection" true
    (fast.detection.(0).voltage = full.detection.(0).voltage);
  Alcotest.(check bool) "strictly less work" true
    (fast.region_solves < full.region_solves)

let test_signature_consistent_with_first_detection () =
  let c, m, net = build "c17" in
  let sn name = m.Mapping.signal_node.(Circuit.find c name) in
  let fault =
    { Realistic.kind = Realistic.Bridge { node_a = sn "n11"; node_b = sn "n22" };
      weight = 1.0; label = "b" }
  in
  let vectors = exhaustive_vectors c in
  let fails = Swift.signature net ~fault ~vectors in
  let r = Swift.run ~drop_when:`Never net ~faults:[| fault |] ~vectors in
  let first_fail =
    let rec scan i =
      if i >= Array.length fails then None
      else if fails.(i) then Some i
      else scan (i + 1)
    in
    scan 0
  in
  Alcotest.(check bool) "signature first = detection first" true
    (first_fail = r.detection.(0).voltage)

let () =
  Alcotest.run "dl_switch"
    [
      ( "network",
        [
          Alcotest.test_case "adjacency" `Quick test_network_adjacency;
          Alcotest.test_case "owners" `Quick test_network_owners;
        ] );
      ( "solver",
        [ Alcotest.test_case "fault-free cells = gates" `Quick test_solver_fault_free_cells ] );
      ( "faults",
        [
          Alcotest.test_case "stuck-open needs two patterns" `Quick test_stuck_open_two_pattern;
          Alcotest.test_case "stuck-on fights" `Quick test_stuck_on_fight;
          Alcotest.test_case "bridge wired behaviour" `Quick test_bridge_wired_behaviour;
          Alcotest.test_case "rail bridge = stuck-at" `Quick test_bridge_to_rail_acts_stuck;
          Alcotest.test_case "input-open policies" `Quick test_input_open_policies;
          Alcotest.test_case "stem = only-branch open" `Quick test_stem_open_matches_branch_all;
        ] );
      ( "swift",
        [
          Alcotest.test_case "coverage composition" `Quick test_weighted_coverage_composition;
          Alcotest.test_case "good values = sim2" `Quick test_good_values_match_sim2;
          Alcotest.test_case "drop modes agree" `Quick test_drop_modes_agree_on_firsts;
          Alcotest.test_case "charge retention sequence" `Quick test_charge_retention_sequence;
          Alcotest.test_case "feedback bridge terminates" `Quick test_feedback_bridge_terminates;
          Alcotest.test_case "voltage-drop mode faster" `Quick test_drop_voltage_mode_faster;
          Alcotest.test_case "signature consistent" `Quick
            test_signature_consistent_with_first_detection;
        ] );
    ]
