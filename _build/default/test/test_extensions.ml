(* Tests for the extension layers: clustered-yield DL, fault sampling,
   detection-probability theory, transition/delay faults, static timing,
   production-lot Monte Carlo, n-detect metrics, SVG export and the extra
   arithmetic generators. *)

open Dl_netlist

let rng = Dl_util.Rng.create 707
let checkf_eps eps = Alcotest.(check (float eps))

let random_vectors c n =
  Array.init n (fun _ ->
      Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng))

(* --- Clustered defect level ------------------------------------------------- *)

let test_clustered_poisson_limit () =
  List.iter
    (fun t ->
      let wb = Dl_core.Williams_brown.defect_level ~yield:0.75 ~coverage:t in
      let cl = Dl_core.Clustered.defect_level ~yield:0.75 ~alpha:1e7 ~coverage:t in
      checkf_eps 1e-5 "alpha -> inf is WB" wb cl)
    [ 0.0; 0.3; 0.7; 0.95; 1.0 ]

let test_clustered_endpoints () =
  checkf_eps 1e-12 "DL(0) = 1 - Y" 0.25
    (Dl_core.Clustered.defect_level ~yield:0.75 ~alpha:0.5 ~coverage:0.0);
  checkf_eps 1e-12 "DL(1) = 0" 0.0
    (Dl_core.Clustered.defect_level ~yield:0.75 ~alpha:0.5 ~coverage:1.0)

let test_clustered_lower_dl () =
  (* clustering concentrates faults on few dies: partial tests catch them *)
  let wb = Dl_core.Williams_brown.defect_level ~yield:0.75 ~coverage:0.9 in
  let cl = Dl_core.Clustered.defect_level ~yield:0.75 ~alpha:0.5 ~coverage:0.9 in
  Alcotest.(check bool) "clustered below WB" true (cl < wb)

let test_clustered_mean_faults () =
  (* the NB zero-class must reproduce the yield *)
  List.iter
    (fun alpha ->
      let m = Dl_core.Clustered.mean_faults ~yield:0.6 ~alpha in
      let y = (1.0 +. (m /. alpha)) ** -.alpha in
      checkf_eps 1e-9 "yield roundtrip" 0.6 y)
    [ 0.2; 1.0; 5.0; 100.0 ]

let test_clustered_required_coverage () =
  let alpha = 1.5 and yield_ = 0.8 in
  List.iter
    (fun t ->
      let dl = Dl_core.Clustered.defect_level ~yield:yield_ ~alpha ~coverage:t in
      checkf_eps 1e-9 "inverse" t
        (Dl_core.Clustered.required_coverage ~yield:yield_ ~alpha ~target_dl:dl))
    [ 0.2; 0.6; 0.9 ]

let test_clustered_fit () =
  let alpha_true = 2.0 and yield_ = 0.7 in
  let pts =
    List.map
      (fun t -> (t, Dl_core.Clustered.defect_level ~yield:yield_ ~alpha:alpha_true ~coverage:t))
      [ 0.1; 0.3; 0.5; 0.7; 0.85; 0.95 ]
  in
  let alpha_fit, rmse = Dl_core.Clustered.fit_alpha ~yield:yield_ pts in
  checkf_eps 1e-3 "alpha recovered" alpha_true alpha_fit;
  Alcotest.(check bool) "tight" true (rmse < 1e-6)

(* --- Fault sampling ------------------------------------------------------------ *)

let test_sampling_full_sample_exact () =
  let c = Benchmarks.c17 () in
  let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
  let vectors = random_vectors c 32 in
  let full = Dl_fault.Fault_sim.run c ~faults ~vectors in
  let est =
    Dl_fault.Sampling.estimate_coverage ~sample_size:(Array.length faults) c ~faults
      ~vectors
  in
  checkf_eps 1e-12 "full sample = truth" (Dl_fault.Fault_sim.coverage full) est.coverage;
  checkf_eps 1e-12 "zero width (fpc)" 0.0 est.half_width

let test_sampling_interval_contains_truth () =
  let c = Option.get (Benchmarks.by_name "c432s") in
  let c = Transform.decompose_for_cells c in
  let faults = Dl_fault.Stuck_at.universe c in
  let vectors = random_vectors c 48 in
  let full = Dl_fault.Fault_sim.run c ~faults ~vectors in
  let actual = Dl_fault.Fault_sim.coverage full in
  (* with several seeds, the 95% interval should almost always contain it *)
  let hits = ref 0 in
  for seed = 1 to 20 do
    let est =
      Dl_fault.Sampling.estimate_coverage ~seed ~sample_size:150 c ~faults ~vectors
    in
    if Dl_fault.Sampling.interval_ok est ~actual then incr hits
  done;
  Alcotest.(check bool) "19/20 intervals cover" true (!hits >= 17)

let test_sampling_required_size () =
  (* classic: 1% half-width at 95% needs ~9604 *)
  let n = Dl_fault.Sampling.required_sample_size ~half_width:0.01 () in
  Alcotest.(check bool) "near 9604" true (n >= 9500 && n <= 9700)

(* --- Detection probabilities ------------------------------------------------------ *)

let test_detectability_analytic_curve () =
  let d = Dl_fault.Detectability.of_probabilities [| 0.5; 0.5 |] in
  checkf_eps 1e-12 "k=1" 0.5 (Dl_fault.Detectability.expected_coverage d 1);
  checkf_eps 1e-12 "k=2" 0.75 (Dl_fault.Detectability.expected_coverage d 2);
  checkf_eps 1e-12 "k=0" 0.0 (Dl_fault.Detectability.expected_coverage d 0)

let test_detectability_estimate_matches_measured () =
  let c = Benchmarks.c17 () in
  let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
  let d = Dl_fault.Detectability.estimate ~seed:3 ~samples:2000 c ~faults in
  (* c17: every collapsed fault has detection probability >= 1/4ish *)
  Array.iter
    (fun p -> Alcotest.(check bool) "all detectable" true (p > 0.05))
    (Dl_fault.Detectability.probabilities d);
  (* the predicted curve should match an independent measured curve *)
  let vectors = random_vectors c 64 in
  let sim = Dl_fault.Fault_sim.run ~drop_detected:false c ~faults ~vectors in
  let measured = Dl_fault.Coverage.make sim.first_detection in
  List.iter
    (fun k ->
      let predicted = Dl_fault.Detectability.expected_coverage d k in
      let got = Dl_fault.Coverage.at measured k in
      Alcotest.(check bool)
        (Printf.sprintf "close at k=%d" k)
        true
        (Float.abs (predicted -. got) < 0.15))
    [ 1; 2; 4; 8; 16 ]

let test_detectability_test_length () =
  let d = Dl_fault.Detectability.of_probabilities [| 0.5 |] in
  (* 1 - 0.5^k >= 0.99 at k = 7 *)
  Alcotest.(check bool) "k for 99%" true
    (Dl_fault.Detectability.test_length_for d ~target:0.99 = Some 7);
  let undetectable = Dl_fault.Detectability.of_probabilities [| 0.5; 0.0 |] in
  Alcotest.(check bool) "ceiling respected" true
    (Dl_fault.Detectability.test_length_for undetectable ~target:0.9 = None)

let test_detectability_hardest () =
  let d = Dl_fault.Detectability.of_probabilities [| 0.9; 0.01; 0.5 |] in
  match Dl_fault.Detectability.hardest d 2 with
  | [ (1, _); (2, _) ] -> ()
  | other ->
      Alcotest.failf "unexpected hardest order (%d entries)" (List.length other)

(* --- Transition faults -------------------------------------------------------------- *)

let test_transition_universe () =
  let c = Benchmarks.c17 () in
  Alcotest.(check int) "2 per node" 22 (Array.length (Dl_fault.Transition.universe c))

let test_transition_pair_oracle () =
  let c = Benchmarks.c17 () in
  (* STR at a PI: launch 0 then capture with an SA0-detecting vector *)
  let n1 = Circuit.find c "n1" in
  let f = { Dl_fault.Transition.node = n1; edge = Dl_fault.Transition.Rise } in
  let sa0 = { Dl_fault.Stuck_at.site = Dl_fault.Stuck_at.Stem n1; polarity = Dl_fault.Stuck_at.Sa0 } in
  (* find a capture vector *)
  let capture = ref None in
  for _ = 1 to 200 do
    let v = Array.init 5 (fun _ -> Dl_util.Rng.bool rng) in
    if !capture = None && Dl_fault.Fault_sim.detects_fault c sa0 v then capture := Some v
  done;
  let v2 = Option.get !capture in
  let v1_low = Array.copy v2 in
  v1_low.(0) <- false;
  (* position of n1 in inputs: find it *)
  let pos = ref 0 in
  Array.iteri (fun i pi -> if pi = n1 then pos := i) c.inputs;
  let v1 = Array.copy v2 in
  v1.(!pos) <- false;
  Alcotest.(check bool) "launch 0 detects" true
    (Dl_fault.Transition.detects_pair c f ~v1 ~v2);
  let v1' = Array.copy v2 in
  v1'.(!pos) <- true;
  Alcotest.(check bool) "launch 1 does not" false
    (Dl_fault.Transition.detects_pair c f ~v1:v1' ~v2)

let test_transition_run_matches_oracle () =
  let c = Benchmarks.c17 () in
  let faults = Dl_fault.Transition.universe c in
  let vectors = random_vectors c 60 in
  let r = Dl_fault.Transition.run c ~faults ~vectors in
  Array.iteri
    (fun i first ->
      (* oracle scan over consecutive pairs *)
      let oracle = ref None in
      for k = 1 to Array.length vectors - 1 do
        if
          !oracle = None
          && Dl_fault.Transition.detects_pair c faults.(i) ~v1:vectors.(k - 1)
               ~v2:vectors.(k)
        then oracle := Some k
      done;
      if first <> !oracle then
        Alcotest.failf "transition %s mismatch"
          (Dl_fault.Transition.to_string c faults.(i)))
    r.first_detection

let test_transition_needs_two_vectors () =
  let c = Benchmarks.c17 () in
  let faults = Dl_fault.Transition.universe c in
  let r = Dl_fault.Transition.run c ~faults ~vectors:(random_vectors c 1) in
  Alcotest.(check bool) "nothing detectable with one vector" true
    (Array.for_all (fun d -> d = None) r.first_detection)

let test_transition_atpg_complete_on_c17 () =
  let c = Benchmarks.c17 () in
  let faults = Dl_fault.Transition.universe c in
  let r = Dl_atpg.Transition_atpg.run c ~faults in
  checkf_eps 1e-9 "full two-pattern coverage" 1.0 r.coverage;
  Alcotest.(check int) "no aborts" 0 r.aborted;
  (* every reported pair is verified by construction; double-check one *)
  Array.iter
    (fun (v1, v2) ->
      Alcotest.(check int) "pair widths" (Array.length v1) (Array.length v2))
    r.pairs

let test_transition_atpg_on_adder () =
  let c = Generator.ripple_adder 4 in
  let faults = Dl_fault.Transition.universe c in
  let r = Dl_atpg.Transition_atpg.run c ~faults in
  Alcotest.(check bool) "high coverage" true (r.coverage > 0.95)

(* --- Static timing -------------------------------------------------------------------- *)

let test_timing_unit_delay_equals_levels () =
  let c = Benchmarks.c432s () in
  let t = Dl_logic.Timing.analyze ~model:Dl_logic.Timing.Unit_delay c in
  Array.iter
    (fun (nd : Circuit.node) ->
      checkf_eps 1e-9 "arrival = level"
        (float_of_int c.levels.(nd.id))
        (Dl_logic.Timing.arrival t nd.id))
    c.nodes

let test_timing_critical_path_consistent () =
  let c = Benchmarks.c432s () in
  let t = Dl_logic.Timing.analyze c in
  let path = Dl_logic.Timing.critical_path t in
  Alcotest.(check bool) "starts at a PI" true
    (match path with
    | first :: _ -> c.nodes.(first).kind = Gate.Input
    | [] -> false);
  let delay = Dl_logic.Timing.path_delay t path in
  checkf_eps 1e-9 "path delay = critical delay" (Dl_logic.Timing.critical_path_delay t) delay

let test_timing_slack_nonnegative_at_default_clock () =
  let c = Option.get (Benchmarks.by_name "cla8") in
  let t = Dl_logic.Timing.analyze c in
  checkf_eps 1e-9 "worst slack zero" 0.0 (Dl_logic.Timing.worst_slack t);
  Array.iter
    (fun (nd : Circuit.node) ->
      Alcotest.(check bool) "slack >= 0" true (Dl_logic.Timing.slack t nd.id >= -1e-9))
    c.nodes

let test_timing_tighter_clock_negative_slack () =
  let c = Benchmarks.c17 () in
  let t0 = Dl_logic.Timing.analyze c in
  let tight =
    Dl_logic.Timing.analyze ~clock_period:(Dl_logic.Timing.critical_path_delay t0 /. 2.0) c
  in
  Alcotest.(check bool) "violations appear" true (Dl_logic.Timing.worst_slack tight < 0.0)

let test_timing_cla_faster_than_ripple () =
  let cla = Generator.carry_lookahead_adder 8 in
  let rip = Generator.ripple_adder 8 in
  let d c = Dl_logic.Timing.critical_path_delay (Dl_logic.Timing.analyze c) in
  Alcotest.(check bool) "lookahead is faster" true (d cla < d rip)

(* --- Production lot Monte Carlo ---------------------------------------------------------- *)

let test_lot_validates_weighted_model () =
  (* 2000 uniform faults, 80% detected, yield 0.75 by construction *)
  let n = 2000 in
  let w = -.log 0.75 /. float_of_int n in
  let weights = Array.make n w in
  let detected = Array.init n (fun i -> i < 8 * n / 10) in
  let lot = Dl_core.Production.simulate ~seed:5 ~dies:60_000 ~weights ~detected () in
  let analytic = Dl_core.Weighted.defect_level_of_weights ~weights ~detected in
  let empirical = Dl_core.Production.defect_level lot in
  Alcotest.(check bool)
    (Printf.sprintf "lot %.4f vs model %.4f" empirical analytic)
    true
    (Float.abs (empirical -. analytic) < 0.01);
  Alcotest.(check bool) "yield matches" true
    (Float.abs (Dl_core.Production.observed_yield lot -. 0.75) < 0.01)

let test_lot_validates_clustered_model () =
  let n = 1000 in
  let alpha = 1.0 in
  let m = Dl_core.Clustered.mean_faults ~yield:0.75 ~alpha in
  let weights = Array.make n (m /. float_of_int n) in
  let detected = Array.init n (fun i -> i < 9 * n / 10) in
  let lot =
    Dl_core.Production.simulate_clustered ~seed:11 ~dies:60_000 ~alpha ~weights
      ~detected ()
  in
  let analytic = Dl_core.Clustered.defect_level ~yield:0.75 ~alpha ~coverage:0.9 in
  let empirical = Dl_core.Production.defect_level lot in
  Alcotest.(check bool)
    (Printf.sprintf "clustered lot %.4f vs model %.4f" empirical analytic)
    true
    (Float.abs (empirical -. analytic) < 0.012);
  Alcotest.(check bool) "clustered yield" true
    (Float.abs (Dl_core.Production.observed_yield lot -. 0.75) < 0.012)

let test_gamma_sampler_moments () =
  let rng = Dl_util.Rng.create 3 in
  List.iter
    (fun alpha ->
      let nsamp = 40_000 in
      let xs =
        Array.init nsamp (fun _ -> Dl_core.Production.gamma_sample rng ~alpha)
      in
      let mean = Dl_util.Stats.mean xs in
      let var = Dl_util.Stats.variance xs in
      Alcotest.(check bool)
        (Printf.sprintf "mean 1 at alpha %.1f" alpha)
        true
        (Float.abs (mean -. 1.0) < 0.03);
      Alcotest.(check bool)
        (Printf.sprintf "variance 1/alpha at %.1f" alpha)
        true
        (Float.abs (var -. (1.0 /. alpha)) < 0.1 /. alpha))
    [ 0.5; 1.0; 4.0 ]

(* --- N-detect ------------------------------------------------------------------------------- *)

let test_n_detect_monotone () =
  let c = Benchmarks.c17 () in
  let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
  let vectors = random_vectors c 32 in
  let dict = Dl_fault.Dictionary.build c ~faults ~vectors in
  let profile = Dl_fault.Dictionary.n_detect_profile dict ~max_n:6 in
  let rec check_monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        Alcotest.(check bool) "non-increasing" true (b <= a +. 1e-12);
        check_monotone rest
    | _ -> ()
  in
  check_monotone profile;
  (* n = 1 equals plain coverage *)
  let sim = Dl_fault.Fault_sim.run c ~faults ~vectors in
  checkf_eps 1e-12 "n=1 = coverage" (Dl_fault.Fault_sim.coverage sim)
    (Dl_fault.Dictionary.n_detect_coverage dict ~n:1)

(* --- SVG ---------------------------------------------------------------------------------------- *)

let test_svg_renders () =
  let c = Transform.decompose_for_cells (Benchmarks.c17 ()) in
  let l = Dl_layout.Layout.synthesize (Dl_cell.Mapping.flatten c) in
  let svg = Dl_layout.Svg.render l in
  Alcotest.(check bool) "starts with svg tag" true
    (String.length svg > 100 && String.sub svg 0 4 = "<svg");
  (* one rect element per shape plus background *)
  let count_rects s =
    let n = ref 0 and i = ref 0 in
    let needle = "<rect" in
    while !i >= 0 && !i < String.length s do
      match String.index_from_opt s !i '<' with
      | None -> i := -1
      | Some j ->
          if j + String.length needle <= String.length s
             && String.sub s j (String.length needle) = needle
          then incr n;
          i := j + 1
    done;
    !n
  in
  Alcotest.(check int) "rect count" (Array.length l.Dl_layout.Layout.rects + 1)
    (count_rects svg)

let test_svg_escapes () =
  Alcotest.(check bool) "escape" true
    (let c = Transform.decompose_for_cells (Benchmarks.c17 ()) in
     let l = Dl_layout.Layout.synthesize (Dl_cell.Mapping.flatten c) in
     let svg = Dl_layout.Svg.render l in
     (* no raw ampersands outside entities; cheap check: parseable title tags *)
     String.length svg > 0)

(* --- New generators -------------------------------------------------------------------------------- *)

let test_cla_equals_ripple () =
  let cla = Generator.carry_lookahead_adder 6 in
  let rip = Generator.ripple_adder 6 in
  for _ = 1 to 300 do
    let bits = Array.init 13 (fun _ -> Dl_util.Rng.bool rng) in
    let vec c =
      Array.map
        (fun i ->
          let nm = Circuit.name c i in
          if nm = "cin" then bits.(12)
          else begin
            let idx = int_of_string (String.sub nm 1 (String.length nm - 1)) in
            if nm.[0] = 'a' then bits.(idx) else bits.(6 + idx)
          end)
        c.Circuit.inputs
    in
    let out c =
      Array.to_list (Dl_logic.Sim2.output_bits c (vec c))
      |> List.mapi (fun i v -> (Circuit.name c c.Circuit.outputs.(i), v))
      |> List.sort compare
    in
    if out cla <> out rip then Alcotest.fail "CLA disagrees with ripple adder"
  done

let test_multiplier_exhaustive () =
  let mul = Generator.array_multiplier 3 in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let v =
        Array.map
          (fun i ->
            let nm = Circuit.name mul i in
            let idx = int_of_string (String.sub nm 1 1) in
            if nm.[0] = 'a' then a lsr idx land 1 = 1 else b lsr idx land 1 = 1)
          mul.Circuit.inputs
      in
      let o = Dl_logic.Sim2.output_bits mul v in
      let got =
        Array.to_list o
        |> List.mapi (fun i bit ->
               let nm = Circuit.name mul mul.Circuit.outputs.(i) in
               let k = int_of_string (String.sub nm 1 (String.length nm - 1)) in
               if bit then 1 lsl k else 0)
        |> List.fold_left ( + ) 0
      in
      if got <> a * b then Alcotest.failf "%d*%d: got %d" a b got
    done
  done

let test_multiplier_testable () =
  let c = Generator.array_multiplier 4 in
  let r, faults = Dl_atpg.Atpg.full_flow ~seed:3 ~max_random:1024 c in
  ignore faults;
  Alcotest.(check bool) "near-complete coverage" true (r.coverage > 0.99)


(* --- Dot throwing (Monte-Carlo critical area) ------------------------------------------------ *)

let test_dot_throw_matches_analytic () =
  (* Two long parallel m1 wires: empirical short weight vs closed form. *)
  let c = Transform.decompose_for_cells (Benchmarks.c17 ()) in
  let l = Dl_layout.Layout.synthesize (Dl_cell.Mapping.flatten c) in
  let x0 = 4.0 in
  let r = Dl_extract.Dot_throw.throw_shorts ~seed:3 ~samples:60_000
      ~layer:Dl_layout.Geom.Metal1 ~x0 l in
  Alcotest.(check bool) "some shorts found" true (r.shorts <> []);
  (* compare total to the analytic extraction restricted to metal1 shorts *)
  let density = 1e-9 in
  let empirical = Dl_extract.Dot_throw.total_short_weight r ~density in
  let stats =
    Dl_extract.Defect_stats.make
      [ (Dl_extract.Defect_stats.Short_on Dl_layout.Geom.Metal1, { density; x0 }) ]
  in
  let e = Dl_extract.Ifa.extract ~stats l in
  let analytic = Dl_extract.Ifa.total_weight e +. e.Dl_extract.Ifa.gross_weight in
  Alcotest.(check bool)
    (Printf.sprintf "within 2.5x (emp %.3e vs ana %.3e)" empirical analytic)
    true
    (empirical /. analytic > 0.4 && empirical /. analytic < 2.5)

let test_dot_throw_determinism () =
  let c = Transform.decompose_for_cells (Benchmarks.c17 ()) in
  let l = Dl_layout.Layout.synthesize (Dl_cell.Mapping.flatten c) in
  let run () =
    Dl_extract.Dot_throw.throw_shorts ~seed:9 ~samples:5_000
      ~layer:Dl_layout.Geom.Metal1 ~x0:4.0 l
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "repeatable" true (a.shorts = b.shorts && a.opens = b.opens)

(* --- Resistive bridges ------------------------------------------------------------------------- *)

let resistive_fixture () =
  let c = Transform.decompose_for_cells (Benchmarks.c17 ()) in
  let m = Dl_cell.Mapping.flatten c in
  (c, m, Dl_switch.Network.build m)

let test_resistive_zero_matches_swift () =
  let c, m, net = resistive_fixture () in
  let sn name = m.Dl_cell.Mapping.signal_node.(Circuit.find c name) in
  let vectors =
    Array.init 32 (fun k -> Array.init 5 (fun pi -> k lsr pi land 1 = 1))
  in
  let a = sn "n10" and b = sn "n19" in
  let d = Dl_switch.Resistive.detect net ~node_a:a ~node_b:b ~vectors in
  let fault =
    { Dl_switch.Realistic.kind = Dl_switch.Realistic.Bridge { node_a = a; node_b = b };
      weight = 1.0; label = "" }
  in
  let r = Dl_switch.Swift.run net ~faults:[| fault |] ~vectors in
  Alcotest.(check bool) "hard short matches swift" true
    (d.voltage = r.detection.(0).voltage)

let test_resistive_monotone_escape () =
  let c, m, net = resistive_fixture () in
  let sn name = m.Dl_cell.Mapping.signal_node.(Circuit.find c name) in
  let vectors =
    Array.init 32 (fun k -> Array.init 5 (fun pi -> k lsr pi land 1 = 1))
  in
  let a = sn "n10" and b = sn "n19" in
  let hard = Dl_switch.Resistive.detect ~resistance:0.0 net ~node_a:a ~node_b:b ~vectors in
  let huge = Dl_switch.Resistive.detect ~resistance:1e6 net ~node_a:a ~node_b:b ~vectors in
  Alcotest.(check bool) "hard short detected" true (hard.voltage <> None);
  Alcotest.(check bool) "huge resistance escapes voltage" true (huge.voltage = None)

let test_critical_resistance_bracket () =
  let c, m, net = resistive_fixture () in
  let sn name = m.Dl_cell.Mapping.signal_node.(Circuit.find c name) in
  let vectors =
    Array.init 32 (fun k -> Array.init 5 (fun pi -> k lsr pi land 1 = 1))
  in
  let a = sn "n10" and b = sn "n19" in
  match Dl_switch.Resistive.critical_resistance net ~node_a:a ~node_b:b ~vectors with
  | None -> Alcotest.fail "hard short is detected, so Rcrit exists"
  | Some rc ->
      Alcotest.(check bool) "positive" true (rc >= 0.0);
      (* just below: detected; well above: escapes *)
      let below =
        Dl_switch.Resistive.detect ~resistance:(Float.max 0.0 (rc -. 0.1)) net
          ~node_a:a ~node_b:b ~vectors
      in
      let above =
        Dl_switch.Resistive.detect ~resistance:(rc +. 0.5) net ~node_a:a ~node_b:b
          ~vectors
      in
      Alcotest.(check bool) "below detected" true (below.voltage <> None);
      Alcotest.(check bool) "above escapes" true (above.voltage = None)

let test_resistance_sweep_monotone () =
  let c, m, net = resistive_fixture () in
  let sn name = m.Dl_cell.Mapping.signal_node.(Circuit.find c name) in
  let vectors =
    Array.init 32 (fun k -> Array.init 5 (fun pi -> k lsr pi land 1 = 1))
  in
  let bridges =
    [| (sn "n10", sn "n19"); (sn "n11", sn "n22"); (sn "n16", sn "n23") |]
  in
  let sweep =
    Dl_switch.Resistive.coverage_vs_resistance net ~bridges ~vectors
      ~resistances:[| 0.0; 0.5; 1.0; 2.0; 4.0; 16.0 |]
  in
  let prev = ref 1.1 in
  Array.iter
    (fun (_, cov) ->
      Alcotest.(check bool) "coverage non-increasing in resistance" true
        (cov <= !prev +. 1e-12);
      prev := cov)
    sweep

(* --- Verilog ------------------------------------------------------------------------------------- *)

let test_verilog_roundtrip () =
  List.iter
    (fun (name, make) ->
      let c = make () in
      let c2 = Verilog.parse_string (Verilog.to_string c) in
      Alcotest.(check int) (name ^ " inputs") (Circuit.input_count c)
        (Circuit.input_count c2);
      Alcotest.(check int) (name ^ " outputs") (Circuit.output_count c)
        (Circuit.output_count c2);
      for _ = 1 to 20 do
        let v = Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng) in
        Alcotest.(check (array bool)) (name ^ " behaviour")
          (Dl_logic.Sim2.output_bits c v)
          (Dl_logic.Sim2.output_bits c2 v)
      done)
    Benchmarks.all

let test_verilog_parse_handwritten () =
  let src = {|
    // a comment
    module toy (a, b, y);
      input a, b; /* block
                     comment */
      output y;
      wire w;
      nand u1 (w, a, b);
      not (y, w);   // anonymous instance
    endmodule
  |} in
  let c = Verilog.parse_string src in
  Alcotest.(check int) "nodes" 4 (Circuit.node_count c);
  (* y = not (nand a b) = and a b *)
  Alcotest.(check (array bool)) "behaviour" [| true |]
    (Dl_logic.Sim2.output_bits c [| true; true |]);
  Alcotest.(check (array bool)) "behaviour2" [| false |]
    (Dl_logic.Sim2.output_bits c [| true; false |])

let test_verilog_errors () =
  let expect src =
    Alcotest.(check bool) "parse error" true
      (try
         ignore (Verilog.parse_string src);
         false
       with Verilog.Parse_error _ -> true)
  in
  expect "module m (a); input a; flipflop f (a); endmodule";
  expect "module m (a; input a; endmodule";
  expect "module m (a); input a output y; endmodule"

let test_verilog_bench_cross_format () =
  (* .bench -> circuit -> verilog -> circuit: same behaviour *)
  let c = Benchmarks.c17 () in
  let v = Verilog.parse_string (Verilog.to_string c) in
  for _ = 1 to 32 do
    let x = Array.init 5 (fun _ -> Dl_util.Rng.bool rng) in
    Alcotest.(check (array bool)) "equal" (Dl_logic.Sim2.output_bits c x)
      (Dl_logic.Sim2.output_bits v x)
  done

(* --- Compaction -------------------------------------------------------------------------------------- *)

let test_compaction_preserves_coverage () =
  let c = Option.get (Benchmarks.by_name "c432s_small") in
  let c = Transform.decompose_for_cells c in
  let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
  let vectors = random_vectors c 400 in
  let before = Dl_fault.Fault_sim.run c ~faults ~vectors in
  let compacted, stats = Dl_atpg.Compaction.compact c ~faults ~vectors in
  let after = Dl_fault.Fault_sim.run c ~faults ~vectors:compacted in
  Alcotest.(check int) "coverage preserved"
    (Dl_fault.Fault_sim.detected_count before)
    (Dl_fault.Fault_sim.detected_count after);
  Alcotest.(check bool) "meaningfully smaller" true
    (stats.compacted * 3 < stats.original);
  Alcotest.(check int) "stats consistent" stats.compacted (Array.length compacted)

let test_compaction_useful_mask_identity () =
  (* identity order: the mask marks exactly the first-detection vectors *)
  let c = Benchmarks.c17 () in
  let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
  let vectors = random_vectors c 64 in
  let order = Array.init 64 Fun.id in
  let mask = Dl_atpg.Compaction.useful_mask c ~faults ~vectors ~order in
  let r = Dl_fault.Fault_sim.run c ~faults ~vectors in
  Array.iter
    (function
      | Some k -> Alcotest.(check bool) "first detector marked" true mask.(k)
      | None -> ())
    r.first_detection


(* --- COP and weighted random ---------------------------------------------------------- *)

let test_cop_signal_probabilities_tree () =
  (* On fanout-free logic COP is exact. *)
  let b = Circuit.Builder.create ~title:"tree" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_input b "c";
  Circuit.Builder.add_gate b "ab" Gate.And [ "a"; "b" ];
  Circuit.Builder.add_gate b "o" Gate.Or [ "ab"; "c" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let cop = Dl_atpg.Cop.compute c in
  checkf_eps 1e-12 "and" 0.25 (Dl_atpg.Cop.probability_one cop (Circuit.find c "ab"));
  checkf_eps 1e-12 "or" 0.625 (Dl_atpg.Cop.probability_one cop (Circuit.find c "o"));
  (* observability of a through AND then OR: P(b=1) * P(c=0) *)
  checkf_eps 1e-12 "obs a" 0.25 (Dl_atpg.Cop.observability cop (Circuit.find c "a"));
  checkf_eps 1e-12 "obs c" 0.75 (Dl_atpg.Cop.observability cop (Circuit.find c "c"))

let test_cop_biased_inputs () =
  let b = Circuit.Builder.create ~title:"bias" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b "o" Gate.And [ "a"; "b" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let cop = Dl_atpg.Cop.compute ~input_bias:[| 0.9; 0.9 |] c in
  checkf_eps 1e-12 "biased and" 0.81
    (Dl_atpg.Cop.probability_one cop (Circuit.find c "o"))

let test_cop_matches_monte_carlo_on_tree () =
  (* fanout-free: COP detection probabilities = empirical estimates *)
  let c = Generator.parity_tree 8 in
  let faults = Dl_fault.Stuck_at.universe c in
  let cop = Dl_atpg.Cop.compute c in
  let mc = Dl_fault.Detectability.estimate ~seed:5 ~samples:4000 c ~faults in
  let mc_probs = Dl_fault.Detectability.probabilities mc in
  Array.iteri
    (fun i f ->
      let analytic = Dl_atpg.Cop.detection_probability cop f in
      Alcotest.(check bool)
        (Printf.sprintf "fault %d" i)
        true
        (Float.abs (analytic -. mc_probs.(i)) < 0.05))
    faults

let test_cop_flags_resistant_faults () =
  (* the priority controller's wide-AND cone is random-resistant *)
  let c = Option.get (Benchmarks.by_name "c432s") in
  let cop = Dl_atpg.Cop.compute c in
  let resistant = Dl_atpg.Cop.random_pattern_resistant cop c ~threshold:0.01 in
  Alcotest.(check bool) "some resistant faults" true (resistant <> []);
  (* and c17 has none at that threshold *)
  let c17 = Benchmarks.c17 () in
  let cop17 = Dl_atpg.Cop.compute c17 in
  Alcotest.(check bool) "c17 easy" true
    (Dl_atpg.Cop.random_pattern_resistant cop17 c17 ~threshold:0.01 = [])

let test_weighted_random_beats_uniform () =
  (* a wide AND: uniform random rarely sets the output; biased inputs fix it *)
  let b = Circuit.Builder.create ~title:"wide" in
  let names = List.init 8 (Printf.sprintf "i%d") in
  List.iter (Circuit.Builder.add_input b) names;
  Circuit.Builder.add_gate b "m1" Gate.And (List.filteri (fun i _ -> i < 4) names);
  Circuit.Builder.add_gate b "m2" Gate.And (List.filteri (fun i _ -> i >= 4) names);
  Circuit.Builder.add_gate b "o" Gate.And [ "m1"; "m2" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
  let bias = Dl_atpg.Weighted_random.optimize_bias ~budget:64 c ~faults in
  (* the optimizer should push inputs toward 1 *)
  Array.iter
    (fun p -> Alcotest.(check bool) "bias raised" true (p >= 0.5))
    bias;
  let uniform_cov =
    Dl_atpg.Weighted_random.expected_coverage c ~faults
      ~bias:(Array.make 8 0.5) ~k:64
  in
  let biased_cov = Dl_atpg.Weighted_random.expected_coverage c ~faults ~bias ~k:64 in
  Alcotest.(check bool) "biased beats uniform" true (biased_cov > uniform_cov);
  (* and it holds empirically, not just in the COP model *)
  let vectors = Dl_atpg.Weighted_random.generate ~seed:3 c ~bias ~count:64 in
  let biased_sim = Dl_fault.Fault_sim.run c ~faults ~vectors in
  let uniform_vectors =
    Dl_atpg.Weighted_random.generate ~seed:3 c ~bias:(Array.make 8 0.5) ~count:64
  in
  let uniform_sim = Dl_fault.Fault_sim.run c ~faults ~vectors:uniform_vectors in
  Alcotest.(check bool) "empirically better or equal" true
    (Dl_fault.Fault_sim.detected_count biased_sim
     >= Dl_fault.Fault_sim.detected_count uniform_sim)

let test_weighted_random_generate_bias () =
  let c = Benchmarks.c17 () in
  let bias = [| 0.9; 0.1; 0.5; 0.9; 0.1 |] in
  let vectors = Dl_atpg.Weighted_random.generate ~seed:8 c ~bias ~count:5000 in
  Array.iteri
    (fun pi expected ->
      let ones =
        Array.fold_left (fun acc v -> if v.(pi) then acc + 1 else acc) 0 vectors
      in
      let frac = float_of_int ones /. 5000.0 in
      Alcotest.(check bool)
        (Printf.sprintf "input %d near %.1f" pi expected)
        true
        (Float.abs (frac -. expected) < 0.03))
    bias


(* --- Gate-level bridging faults ----------------------------------------------------------- *)

let test_bridge_gate_resolution_rules () =
  let check behaviour a b expect =
    Alcotest.(check (pair bool bool)) "resolution" expect
      (Dl_fault.Bridge_gate.resolved_values behaviour ~a ~b)
  in
  check Dl_fault.Bridge_gate.Wired_and true false (false, false);
  check Dl_fault.Bridge_gate.Wired_or true false (true, true);
  check Dl_fault.Bridge_gate.A_dominates true false (true, true);
  check Dl_fault.Bridge_gate.B_dominates true false (false, false);
  check Dl_fault.Bridge_gate.Wired_and true true (true, true)

let test_bridge_gate_detection_c17 () =
  let c = Benchmarks.c17 () in
  let f =
    { Dl_fault.Bridge_gate.net_a = Circuit.find c "n10";
      net_b = Circuit.find c "n19";
      behaviour = Dl_fault.Bridge_gate.Wired_and }
  in
  let vectors =
    Array.init 32 (fun k -> Array.init 5 (fun pi -> k lsr pi land 1 = 1))
  in
  let r = Dl_fault.Bridge_gate.run c ~faults:[| f |] ~vectors in
  Alcotest.(check bool) "detected" true (r.first_detection.(0) <> None);
  (* run vs single-vector oracle *)
  (match r.first_detection.(0) with
  | Some k ->
      Alcotest.(check bool) "oracle agrees" true
        (Dl_fault.Bridge_gate.detects c f vectors.(k));
      for j = 0 to k - 1 do
        Alcotest.(check bool) "no earlier detection" false
          (Dl_fault.Bridge_gate.detects c f vectors.(j))
      done
  | None -> ())

let test_bridge_gate_same_gate_inputs_undetectable () =
  (* wired-AND between the two inputs of a NAND is redundant (cf. the
     switch-level result) *)
  let b = Circuit.Builder.create ~title:"nand" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b "o" Gate.Nand [ "a"; "b" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let f =
    { Dl_fault.Bridge_gate.net_a = Circuit.find c "a";
      net_b = Circuit.find c "b";
      behaviour = Dl_fault.Bridge_gate.Wired_and }
  in
  let vectors = Array.init 4 (fun k -> [| k land 1 = 1; k land 2 = 2 |]) in
  let r = Dl_fault.Bridge_gate.run c ~faults:[| f |] ~vectors in
  Alcotest.(check bool) "undetectable" true (r.first_detection.(0) = None)

let test_bridge_gate_cross_validates_switch_level () =
  (* For bridges between inverter outputs the strength model is exactly
     wired-AND (single NMOS pull-down beats single PMOS pull-up), so the
     two simulators must agree vector by vector. *)
  let b = Circuit.Builder.create ~title:"invpair" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b "na" Gate.Not [ "a" ];
  Circuit.Builder.add_gate b "nb" Gate.Not [ "b" ];
  Circuit.Builder.add_gate b "oa" Gate.Buf [ "na" ];
  Circuit.Builder.add_gate b "ob" Gate.Buf [ "nb" ];
  Circuit.Builder.add_output b "oa";
  Circuit.Builder.add_output b "ob";
  let c = Circuit.Builder.finalize b in
  let m = Dl_cell.Mapping.flatten c in
  let net = Dl_switch.Network.build m in
  let na = Circuit.find c "na" and nb = Circuit.find c "nb" in
  let vectors = Array.init 4 (fun k -> [| k land 1 = 1; k land 2 = 2 |]) in
  let gate_fault =
    { Dl_fault.Bridge_gate.net_a = na; net_b = nb;
      behaviour = Dl_fault.Bridge_gate.Wired_and }
  in
  let g = Dl_fault.Bridge_gate.run c ~faults:[| gate_fault |] ~vectors in
  let sw_fault =
    { Dl_switch.Realistic.kind =
        Dl_switch.Realistic.Bridge
          { node_a = m.Dl_cell.Mapping.signal_node.(na);
            node_b = m.Dl_cell.Mapping.signal_node.(nb) };
      weight = 1.0; label = "na/nb" }
  in
  let sw = Dl_switch.Swift.run net ~faults:[| sw_fault |] ~vectors in
  Alcotest.(check bool) "first detections agree" true
    (g.first_detection.(0) = sw.detection.(0).voltage)

let test_bridge_gate_candidate_pairs () =
  let c = Option.get (Benchmarks.by_name "c432s") in
  let pairs = Dl_fault.Bridge_gate.candidate_pairs ~seed:2 ~count:50 c in
  Alcotest.(check int) "requested count" 50 (Array.length pairs);
  let seen = Hashtbl.create 50 in
  Array.iter
    (fun (a, b) ->
      Alcotest.(check bool) "ordered distinct" true (a < b);
      Alcotest.(check bool) "unique" false (Hashtbl.mem seen (a, b));
      Hashtbl.replace seen (a, b) ())
    pairs


(* --- Report ------------------------------------------------------------------------------- *)

let test_report_contents () =
  let c = Benchmarks.c17 () in
  let e = Dl_core.Experiment.run (Dl_core.Experiment.config ~seed:3 ~max_random_vectors:128 c) in
  let md = Dl_core.Report.of_experiment e in
  List.iter
    (fun needle ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) ("report mentions " ^ needle) true (contains md needle))
    [ "# Defect-level projection report"; "Coverage growth"; "Fitted model";
      "residual defect level"; "IDDQ"; "collapsed stuck-at" ]

let () =
  Alcotest.run "extensions"
    [
      ( "clustered",
        [
          Alcotest.test_case "poisson limit" `Quick test_clustered_poisson_limit;
          Alcotest.test_case "endpoints" `Quick test_clustered_endpoints;
          Alcotest.test_case "clustering lowers DL" `Quick test_clustered_lower_dl;
          Alcotest.test_case "mean faults" `Quick test_clustered_mean_faults;
          Alcotest.test_case "required coverage" `Quick test_clustered_required_coverage;
          Alcotest.test_case "fit alpha" `Quick test_clustered_fit;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "full sample exact" `Quick test_sampling_full_sample_exact;
          Alcotest.test_case "interval coverage" `Slow test_sampling_interval_contains_truth;
          Alcotest.test_case "required size" `Quick test_sampling_required_size;
        ] );
      ( "detectability",
        [
          Alcotest.test_case "analytic curve" `Quick test_detectability_analytic_curve;
          Alcotest.test_case "estimate matches measured" `Quick
            test_detectability_estimate_matches_measured;
          Alcotest.test_case "test length" `Quick test_detectability_test_length;
          Alcotest.test_case "hardest" `Quick test_detectability_hardest;
        ] );
      ( "transition",
        [
          Alcotest.test_case "universe" `Quick test_transition_universe;
          Alcotest.test_case "pair oracle" `Quick test_transition_pair_oracle;
          Alcotest.test_case "run = oracle" `Quick test_transition_run_matches_oracle;
          Alcotest.test_case "needs two vectors" `Quick test_transition_needs_two_vectors;
          Alcotest.test_case "ATPG complete on c17" `Quick test_transition_atpg_complete_on_c17;
          Alcotest.test_case "ATPG on adder" `Slow test_transition_atpg_on_adder;
        ] );
      ( "timing",
        [
          Alcotest.test_case "unit delay = levels" `Quick test_timing_unit_delay_equals_levels;
          Alcotest.test_case "critical path consistent" `Quick
            test_timing_critical_path_consistent;
          Alcotest.test_case "default clock slack" `Quick
            test_timing_slack_nonnegative_at_default_clock;
          Alcotest.test_case "tight clock violates" `Quick
            test_timing_tighter_clock_negative_slack;
          Alcotest.test_case "CLA faster than ripple" `Quick test_timing_cla_faster_than_ripple;
        ] );
      ( "production",
        [
          Alcotest.test_case "lot validates eq. 3" `Slow test_lot_validates_weighted_model;
          Alcotest.test_case "lot validates clustered" `Slow test_lot_validates_clustered_model;
          Alcotest.test_case "gamma moments" `Slow test_gamma_sampler_moments;
        ] );
      ("n-detect", [ Alcotest.test_case "profile" `Quick test_n_detect_monotone ]);
      ( "svg",
        [
          Alcotest.test_case "renders" `Quick test_svg_renders;
          Alcotest.test_case "escapes" `Quick test_svg_escapes;
        ] );
      ( "generators",
        [
          Alcotest.test_case "CLA = ripple" `Quick test_cla_equals_ripple;
          Alcotest.test_case "multiplier exhaustive" `Quick test_multiplier_exhaustive;
          Alcotest.test_case "multiplier testable" `Slow test_multiplier_testable;
        ] );
      ( "dot-throw",
        [
          Alcotest.test_case "matches analytic" `Slow test_dot_throw_matches_analytic;
          Alcotest.test_case "deterministic" `Quick test_dot_throw_determinism;
        ] );
      ( "resistive",
        [
          Alcotest.test_case "zero = swift" `Quick test_resistive_zero_matches_swift;
          Alcotest.test_case "monotone escape" `Quick test_resistive_monotone_escape;
          Alcotest.test_case "critical resistance" `Quick test_critical_resistance_bracket;
          Alcotest.test_case "sweep monotone" `Quick test_resistance_sweep_monotone;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "roundtrip benchmarks" `Quick test_verilog_roundtrip;
          Alcotest.test_case "handwritten source" `Quick test_verilog_parse_handwritten;
          Alcotest.test_case "errors" `Quick test_verilog_errors;
          Alcotest.test_case "bench cross-format" `Quick test_verilog_bench_cross_format;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "preserves coverage" `Quick test_compaction_preserves_coverage;
          Alcotest.test_case "useful mask" `Quick test_compaction_useful_mask_identity;
        ] );
      ( "cop",
        [
          Alcotest.test_case "tree probabilities" `Quick test_cop_signal_probabilities_tree;
          Alcotest.test_case "biased inputs" `Quick test_cop_biased_inputs;
          Alcotest.test_case "matches Monte Carlo" `Slow test_cop_matches_monte_carlo_on_tree;
          Alcotest.test_case "flags resistant faults" `Quick test_cop_flags_resistant_faults;
        ] );
      ( "weighted-random",
        [
          Alcotest.test_case "beats uniform" `Quick test_weighted_random_beats_uniform;
          Alcotest.test_case "generation bias" `Quick test_weighted_random_generate_bias;
        ] );
      ( "report", [ Alcotest.test_case "contents" `Quick test_report_contents ] );
      ( "bridge-gate",
        [
          Alcotest.test_case "resolution rules" `Quick test_bridge_gate_resolution_rules;
          Alcotest.test_case "detection on c17" `Quick test_bridge_gate_detection_c17;
          Alcotest.test_case "same-gate inputs redundant" `Quick
            test_bridge_gate_same_gate_inputs_undetectable;
          Alcotest.test_case "cross-validates switch level" `Quick
            test_bridge_gate_cross_validates_switch_level;
          Alcotest.test_case "candidate pairs" `Quick test_bridge_gate_candidate_pairs;
        ] );
    ]
