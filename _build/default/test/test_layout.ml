open Dl_netlist
open Dl_layout
module Mapping = Dl_cell.Mapping

let build name =
  let c = Transform.decompose_for_cells (Option.get (Benchmarks.by_name name)) in
  let m = Mapping.flatten c in
  (c, m, Layout.synthesize m)

(* --- Geometry ------------------------------------------------------------------ *)

let test_rect_basics () =
  let r = Geom.make_rect Geom.Metal1 ~x0:0 ~y0:0 ~x1:10 ~y1:2 ~net:5 in
  Alcotest.(check int) "width" 10 (Geom.width r);
  Alcotest.(check int) "height" 2 (Geom.height r);
  Alcotest.(check int) "area" 20 (Geom.area r)

let test_rect_empty_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Geom.make_rect Geom.Poly ~x0:5 ~y0:0 ~x1:5 ~y1:2 ~net:0);
       false
     with Invalid_argument _ -> true)

let test_overlap () =
  let a = Geom.make_rect Geom.Metal1 ~x0:0 ~y0:0 ~x1:4 ~y1:4 ~net:0 in
  let b = Geom.make_rect Geom.Metal1 ~x0:2 ~y0:2 ~x1:6 ~y1:6 ~net:1 in
  let c = Geom.make_rect Geom.Metal2 ~x0:2 ~y0:2 ~x1:6 ~y1:6 ~net:1 in
  let d = Geom.make_rect Geom.Metal1 ~x0:4 ~y0:0 ~x1:8 ~y1:4 ~net:1 in
  Alcotest.(check bool) "overlapping" true (Geom.overlaps a b);
  Alcotest.(check bool) "different layer" false (Geom.overlaps a c);
  Alcotest.(check bool) "touching is not overlap" false (Geom.overlaps a d)

let test_facing_horizontal () =
  let a = Geom.make_rect Geom.Metal1 ~x0:0 ~y0:0 ~x1:2 ~y1:20 ~net:0 in
  let b = Geom.make_rect Geom.Metal1 ~x0:6 ~y0:5 ~x1:8 ~y1:30 ~net:1 in
  match Geom.facing a b with
  | Some { spacing; common_run } ->
      Alcotest.(check int) "spacing" 4 spacing;
      Alcotest.(check int) "common run" 15 common_run
  | None -> Alcotest.fail "should face"

let test_facing_vertical () =
  let a = Geom.make_rect Geom.Metal1 ~x0:0 ~y0:0 ~x1:30 ~y1:2 ~net:0 in
  let b = Geom.make_rect Geom.Metal1 ~x0:10 ~y0:6 ~x1:40 ~y1:8 ~net:1 in
  match Geom.facing a b with
  | Some { spacing; common_run } ->
      Alcotest.(check int) "spacing" 4 spacing;
      Alcotest.(check int) "common run" 20 common_run
  | None -> Alcotest.fail "should face"

let test_facing_diagonal_none () =
  let a = Geom.make_rect Geom.Metal1 ~x0:0 ~y0:0 ~x1:2 ~y1:2 ~net:0 in
  let b = Geom.make_rect Geom.Metal1 ~x0:5 ~y0:5 ~x1:7 ~y1:7 ~net:1 in
  Alcotest.(check bool) "diagonal has no facing run" true (Geom.facing a b = None)

let test_facing_symmetric () =
  let a = Geom.make_rect Geom.Poly ~x0:0 ~y0:0 ~x1:2 ~y1:14 ~net:0 in
  let b = Geom.make_rect Geom.Poly ~x0:8 ~y0:4 ~x1:10 ~y1:20 ~net:1 in
  Alcotest.(check bool) "symmetric" true (Geom.facing a b = Geom.facing b a)

let test_bounding_box () =
  let a = Geom.make_rect Geom.Metal1 ~x0:0 ~y0:1 ~x1:5 ~y1:2 ~net:0 in
  let b = Geom.make_rect Geom.Metal2 ~x0:(-3) ~y0:0 ~x1:2 ~y1:9 ~net:0 in
  Alcotest.(check bool) "bbox" true (Geom.bounding_box [ a; b ] = Some (-3, 0, 5, 9))

(* --- Cell templates --------------------------------------------------------------- *)

let test_templates_have_pins () =
  let c, m, _ = build "c432s_small" in
  ignore c;
  Array.iteri
    (fun ii (inst : Mapping.instance) ->
      let tpl = Cell_template.build m ~instance_index:ii in
      Alcotest.(check int) "one pin per input" (Array.length inst.input_nodes)
        (List.length tpl.input_pins);
      Alcotest.(check bool) "positive width" true (tpl.width > 0);
      Alcotest.(check int) "uniform height" Cell_template.cell_height tpl.height;
      (* pins connect the right nodes *)
      List.iteri
        (fun i (pin : Cell_template.pin) ->
          Alcotest.(check int) "pin node" inst.input_nodes.(i) pin.node)
        tpl.input_pins;
      Alcotest.(check int) "output pin node" inst.output_node tpl.output_pin.node)
    m.Mapping.instances

let test_template_rects_inside_cell () =
  let _, m, _ = build "c17" in
  for ii = 0 to Array.length m.Mapping.instances - 1 do
    let tpl = Cell_template.build m ~instance_index:ii in
    List.iter
      (fun (r : Geom.rect) ->
        Alcotest.(check bool) "inside" true
          (r.x0 >= 0 && r.y0 >= 0 && r.x1 <= tpl.width && r.y1 <= tpl.height))
      tpl.rects
  done

let test_template_no_intra_cell_shorts () =
  (* no same-layer overlap between rects of different nets inside a cell *)
  let _, m, _ = build "c432s_small" in
  for ii = 0 to Array.length m.Mapping.instances - 1 do
    let tpl = Cell_template.build m ~instance_index:ii in
    let rects = Array.of_list tpl.rects in
    Array.iteri
      (fun i a ->
        for j = i + 1 to Array.length rects - 1 do
          let b = rects.(j) in
          if a.Geom.net <> b.Geom.net && Geom.overlaps a b then
            Alcotest.failf "intra-cell short in instance %d (%s)" ii
              (Geom.layer_name a.Geom.layer)
        done)
      rects
  done

let test_template_diffusion_sharing () =
  (* NAND2: the NMOS series stack shares its midpoint island, so ndiff has
     3 islands (gnd, mid, out), not 4. *)
  let b = Circuit.Builder.create ~title:"n2" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b "o" Gate.Nand [ "a"; "b" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let m = Mapping.flatten c in
  let tpl = Cell_template.build m ~instance_index:0 in
  let ndiff =
    List.filter (fun (r : Geom.rect) -> r.layer = Geom.Diffusion_n) tpl.rects
  in
  Alcotest.(check int) "three islands" 3 (List.length ndiff)

(* --- Full layout ------------------------------------------------------------------- *)

let test_layout_no_shorts () =
  List.iter
    (fun name ->
      let _, _, l = build name in
      let rs = l.Layout.rects in
      Array.iteri
        (fun i a ->
          for j = i + 1 to Array.length rs - 1 do
            let b = rs.(j) in
            if a.Geom.net <> b.Geom.net && Geom.overlaps a b then
              Alcotest.failf "%s: %s overlap nets %d/%d" name
                (Geom.layer_name a.Geom.layer) a.Geom.net b.Geom.net
          done)
        rs)
    [ "c17"; "c432s_small" ]

let test_layout_tags_parallel () =
  let _, _, l = build "c432s_small" in
  Alcotest.(check int) "tags parallel to rects" (Array.length l.Layout.rects)
    (Array.length l.Layout.tags)

let test_layout_within_bounds () =
  let _, _, l = build "c432s_small" in
  Array.iter
    (fun (r : Geom.rect) ->
      Alcotest.(check bool) "inside chip" true
        (r.x0 >= 0 && r.y0 >= 0 && r.x1 <= l.Layout.width && r.y1 <= l.Layout.height))
    l.Layout.rects

let test_layout_every_net_has_geometry () =
  let c, m, l = build "c432s_small" in
  (* every circuit signal with a consumer or pad must appear in the layout *)
  Array.iter
    (fun (nd : Circuit.node) ->
      let has_reader =
        Array.length c.Circuit.fanouts.(nd.id) > 0 || Circuit.is_output c nd.id
      in
      if has_reader then begin
        let net = m.Mapping.signal_node.(nd.id) in
        Alcotest.(check bool)
          (Printf.sprintf "net %s has geometry" nd.name)
          true
          (Layout.net_rects l net <> [])
      end)
    c.Circuit.nodes

let test_layout_rows_override () =
  let c = Transform.decompose_for_cells (Benchmarks.c17 ()) in
  let m = Mapping.flatten c in
  let l = Layout.synthesize ~rows:2 m in
  Alcotest.(check int) "rows" 2 l.Layout.rows;
  let placed_rows =
    Array.fold_left
      (fun acc (p : Layout.placement) -> if List.mem p.row acc then acc else p.row :: acc)
      [] l.Layout.placements
  in
  Alcotest.(check int) "both rows used" 2 (List.length placed_rows)

let test_layout_placements_disjoint () =
  let _, _, l = build "c432s_small" in
  Array.iteri
    (fun i (a : Layout.placement) ->
      Array.iteri
        (fun j (b : Layout.placement) ->
          if i < j && a.row = b.row then begin
            let a1 = a.x + a.template.width and b1 = b.x + b.template.width in
            Alcotest.(check bool) "cells disjoint" true (a1 <= b.x || b1 <= a.x)
          end)
        l.Layout.placements)
    l.Layout.placements

let test_layout_deterministic () =
  let mk () =
    let c = Transform.decompose_for_cells (Benchmarks.c432s_small ()) in
    Layout.synthesize (Mapping.flatten c)
  in
  let a = mk () and b = mk () in
  Alcotest.(check int) "same rect count" (Array.length a.Layout.rects)
    (Array.length b.Layout.rects);
  Alcotest.(check bool) "identical geometry" true (a.Layout.rects = b.Layout.rects)

let test_wire_length_positive () =
  let _, _, l = build "c432s_small" in
  Alcotest.(check bool) "m1 wire" true (Layout.wire_length l Geom.Metal1 > 0);
  Alcotest.(check bool) "m2 wire" true (Layout.wire_length l Geom.Metal2 > 0)

let () =
  Alcotest.run "dl_layout"
    [
      ( "geometry",
        [
          Alcotest.test_case "rect basics" `Quick test_rect_basics;
          Alcotest.test_case "empty rejected" `Quick test_rect_empty_rejected;
          Alcotest.test_case "overlap" `Quick test_overlap;
          Alcotest.test_case "facing horizontal" `Quick test_facing_horizontal;
          Alcotest.test_case "facing vertical" `Quick test_facing_vertical;
          Alcotest.test_case "diagonal none" `Quick test_facing_diagonal_none;
          Alcotest.test_case "facing symmetric" `Quick test_facing_symmetric;
          Alcotest.test_case "bounding box" `Quick test_bounding_box;
        ] );
      ( "templates",
        [
          Alcotest.test_case "pins wired" `Quick test_templates_have_pins;
          Alcotest.test_case "rects inside" `Quick test_template_rects_inside_cell;
          Alcotest.test_case "no intra-cell shorts" `Quick test_template_no_intra_cell_shorts;
          Alcotest.test_case "diffusion sharing" `Quick test_template_diffusion_sharing;
        ] );
      ( "layout",
        [
          Alcotest.test_case "no shorts" `Slow test_layout_no_shorts;
          Alcotest.test_case "tags parallel" `Quick test_layout_tags_parallel;
          Alcotest.test_case "within bounds" `Quick test_layout_within_bounds;
          Alcotest.test_case "all nets drawn" `Quick test_layout_every_net_has_geometry;
          Alcotest.test_case "rows override" `Quick test_layout_rows_override;
          Alcotest.test_case "placements disjoint" `Quick test_layout_placements_disjoint;
          Alcotest.test_case "deterministic" `Quick test_layout_deterministic;
          Alcotest.test_case "wire length" `Quick test_wire_length_positive;
        ] );
    ]
