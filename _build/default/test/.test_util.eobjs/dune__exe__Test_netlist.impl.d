test/test_netlist.ml: Alcotest Array Bench_format Benchmarks Circuit Dl_logic Dl_netlist Dl_util Gate Generator Int64 List Printf QCheck QCheck_alcotest String Transform
