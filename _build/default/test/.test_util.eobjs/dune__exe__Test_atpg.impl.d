test/test_atpg.ml: Alcotest Array Atpg Benchmarks Circuit Dl_atpg Dl_fault Dl_netlist Gate List Option Podem Printf Random_gen Scoap
