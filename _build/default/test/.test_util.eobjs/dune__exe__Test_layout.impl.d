test/test_layout.ml: Alcotest Array Benchmarks Cell_template Circuit Dl_cell Dl_layout Dl_netlist Gate Geom Layout List Option Printf Transform
