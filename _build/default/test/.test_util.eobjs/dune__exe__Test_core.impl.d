test/test_core.ml: Agrawal Alcotest Array Dl_core Gen List Projection QCheck QCheck_alcotest Susceptibility Weighted Williams_brown Yield_model
