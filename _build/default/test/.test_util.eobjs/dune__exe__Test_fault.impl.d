test/test_fault.ml: Alcotest Array Benchmarks Circuit Coverage Dictionary Dl_fault Dl_netlist Dl_util Fault_sim Fun List Option QCheck QCheck_alcotest Stuck_at
