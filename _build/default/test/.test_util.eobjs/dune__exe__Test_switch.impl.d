test/test_switch.ml: Alcotest Array Benchmarks Circuit Dl_cell Dl_fault Dl_logic Dl_netlist Dl_switch Dl_util Gate List Network Option Printf Realistic Solver Swift Transform
