test/test_util.ml: Alcotest Array Dl_util Fit Float Fun Gen Hashtbl Histogram List Numerics Prob QCheck QCheck_alcotest Rng Simplex Stats String Table
