test/test_extract.ml: Alcotest Array Benchmarks Circuit Critical_area Defect_stats Dl_cell Dl_extract Dl_layout Dl_netlist Dl_switch Dl_util Float Hashtbl Ifa List Option Printf Transform
