test/test_integration.ml: Alcotest Array Dl_core Dl_extract Dl_fault Dl_netlist Dl_util Experiment Float Lazy Printf Projection
