test/test_logic_sim.ml: Alcotest Array Benchmarks Circuit Dl_logic Dl_netlist Dl_util Event_sim Format Gate Generator Int64 List Sim2 Sim3 Ternary
