test/test_cell.ml: Alcotest Array Benchmarks Cell Char Circuit Dl_cell Dl_logic Dl_netlist Dl_util Gate Hashtbl List Mapping Printf String Transform
