open Dl_netlist
open Dl_atpg
module Stuck_at = Dl_fault.Stuck_at
module Fault_sim = Dl_fault.Fault_sim

(* --- SCOAP -------------------------------------------------------------------- *)

let test_scoap_inputs_cost_one () =
  let c = Benchmarks.c17 () in
  let s = Scoap.compute c in
  Array.iter
    (fun pi ->
      Alcotest.(check int) "cc0 = 1" 1 (Scoap.cc0 s pi);
      Alcotest.(check int) "cc1 = 1" 1 (Scoap.cc1 s pi))
    c.inputs

let test_scoap_nand_costs () =
  (* NAND2 with PI inputs: output 0 needs both 1 (cost 3), output 1 needs
     either 0 (cost 2). *)
  let b = Circuit.Builder.create ~title:"nand" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b "o" Gate.Nand [ "a"; "b" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let s = Scoap.compute c in
  let o = Circuit.find c "o" in
  Alcotest.(check int) "cc0" 3 (Scoap.cc0 s o);
  Alcotest.(check int) "cc1" 2 (Scoap.cc1 s o)

let test_scoap_xor_costs () =
  let b = Circuit.Builder.create ~title:"xor" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b "o" Gate.Xor [ "a"; "b" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let s = Scoap.compute c in
  let o = Circuit.find c "o" in
  Alcotest.(check int) "cc0 = min(1+1, 1+1)+1" 3 (Scoap.cc0 s o);
  Alcotest.(check int) "cc1" 3 (Scoap.cc1 s o)

let test_scoap_observability () =
  let c = Benchmarks.c17 () in
  let s = Scoap.compute c in
  Array.iter
    (fun o -> Alcotest.(check int) "PO observability 0" 0 (Scoap.observability s o))
    c.outputs;
  (* deeper nodes are harder to observe than outputs *)
  Array.iter
    (fun (nd : Circuit.node) ->
      if not (Circuit.is_output c nd.id) then
        Alcotest.(check bool) "internal > 0" true (Scoap.observability s nd.id > 0))
    c.nodes

let test_scoap_depth_monotone () =
  (* controllability grows along an inverter chain *)
  let b = Circuit.Builder.create ~title:"chain" in
  Circuit.Builder.add_input b "a";
  let prev = ref "a" in
  for i = 1 to 5 do
    let nm = Printf.sprintf "n%d" i in
    Circuit.Builder.add_gate b nm Gate.Not [ !prev ];
    prev := nm
  done;
  Circuit.Builder.add_output b !prev;
  let c = Circuit.Builder.finalize b in
  let s = Scoap.compute c in
  for i = 1 to 4 do
    let a = Circuit.find c (Printf.sprintf "n%d" i) in
    let d = Circuit.find c (Printf.sprintf "n%d" (i + 1)) in
    Alcotest.(check bool) "controllability increases" true
      (Scoap.cc0 s d > Scoap.cc0 s a || Scoap.cc1 s d > Scoap.cc1 s a)
  done

let test_hardest_faults () =
  let c = Benchmarks.c432s () in
  let s = Scoap.compute c in
  let top = Scoap.hardest_faults s 5 in
  Alcotest.(check int) "five reported" 5 (List.length top);
  let costs = List.map (fun (_, _, cost) -> cost) top in
  Alcotest.(check bool) "descending" true (costs = List.sort (fun a b -> compare b a) costs)

(* --- PODEM --------------------------------------------------------------------- *)

let all_faults c = Stuck_at.collapse c (Stuck_at.universe c)

let test_podem_c17_complete () =
  let c = Benchmarks.c17 () in
  Array.iter
    (fun f ->
      match Podem.generate c f with
      | Podem.Test v ->
          Alcotest.(check bool)
            (Stuck_at.to_string c f)
            true
            (Fault_sim.detects_fault c f v)
      | Podem.Untestable | Podem.Aborted ->
          Alcotest.failf "c17 fault %s should be testable" (Stuck_at.to_string c f))
    (all_faults c)

let test_podem_benchmarks_verified () =
  List.iter
    (fun name ->
      let c = Option.get (Benchmarks.by_name name) in
      let scoap = Scoap.compute c in
      Array.iter
        (fun f ->
          match Podem.generate ~scoap c f with
          | Podem.Test v ->
              Alcotest.(check bool) "verified" true (Fault_sim.detects_fault c f v)
          | Podem.Untestable | Podem.Aborted -> ())
        (all_faults c))
    [ "add8"; "mux3"; "dec4"; "par16" ]

let test_podem_redundant_fault () =
  (* o = OR(a, AND(a, b)): the AND gate is redundant logic; its SA0 output
     fault cannot be observed (absorption). *)
  let b = Circuit.Builder.create ~title:"red" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b "m" Gate.And [ "a"; "b" ];
  Circuit.Builder.add_gate b "o" Gate.Or [ "a"; "m" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let m = Circuit.find c "m" in
  let f = { Stuck_at.site = Stuck_at.Stem m; polarity = Stuck_at.Sa0 } in
  (match Podem.generate c f with
  | Podem.Untestable -> ()
  | Podem.Test _ -> Alcotest.fail "absorbed fault reported testable"
  | Podem.Aborted -> Alcotest.fail "trivial search aborted");
  (* sanity: its SA1 counterpart is testable (a=0, b=1) *)
  match Podem.generate c { f with polarity = Stuck_at.Sa1 } with
  | Podem.Test v -> Alcotest.(check bool) "sa1 verified" true (Fault_sim.detects_fault c { f with polarity = Stuck_at.Sa1 } v)
  | _ -> Alcotest.fail "sa1 should be testable"

let test_podem_constant_pi_fault () =
  (* fault on an unobservable PI of constant logic: a XOR a is not
     constructible (duplicate inputs are legal in the builder), so use
     masking: o = AND(a, NOT a) = 0; the PI faults are untestable. *)
  let b = Circuit.Builder.create ~title:"const" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b "an" Gate.Not [ "a" ];
  Circuit.Builder.add_gate b "o" Gate.And [ "a"; "an" ];
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  let a = Circuit.find c "a" in
  List.iter
    (fun pol ->
      match Podem.generate c { Stuck_at.site = Stuck_at.Stem a; polarity = pol } with
      | Podem.Untestable -> ()
      | _ -> Alcotest.fail "constant-0 cone fault should be untestable")
    [ Stuck_at.Sa0; Stuck_at.Sa1 ]

(* --- Random phase & full flow ----------------------------------------------------- *)

let test_random_gen_detects () =
  let c = Benchmarks.c17 () in
  let faults = all_faults c in
  let r = Random_gen.run ~seed:3 ~max_vectors:256 c ~faults in
  Alcotest.(check int) "all detected" (Array.length faults) r.detected;
  Alcotest.(check int) "none remaining" 0 (Array.length r.remaining)

let test_random_gen_respects_budget () =
  let c = Benchmarks.c432s () in
  let faults = all_faults c in
  let r = Random_gen.run ~seed:3 ~max_vectors:128 ~stale_limit:1_000_000 c ~faults in
  Alcotest.(check int) "budget" 128 (Array.length r.vectors)

let test_full_flow_complete_coverage () =
  List.iter
    (fun name ->
      let c = Option.get (Benchmarks.by_name name) in
      let r, faults = Atpg.full_flow ~seed:11 ~max_random:512 c in
      (* coverage counts only untestable/aborted as undetected *)
      let expected =
        float_of_int (Array.length faults - r.stats.untestable - r.stats.aborted)
        /. float_of_int (Array.length faults)
      in
      Alcotest.(check (float 1e-9)) (name ^ " coverage") expected r.coverage;
      (* the vector set actually achieves that coverage in simulation *)
      let sim = Fault_sim.run c ~faults ~vectors:r.vectors in
      Alcotest.(check int)
        (name ^ " detected matches")
        (Array.length faults - r.stats.untestable - r.stats.aborted)
        (Fault_sim.detected_count sim))
    [ "c17"; "add8"; "mux3"; "c432s_small" ]

let test_flow_vector_order () =
  (* deterministic vectors come after the random prefix *)
  let c = Option.get (Benchmarks.by_name "c432s_small") in
  let r, _ = Atpg.full_flow ~seed:5 ~max_random:64 c in
  Alcotest.(check int) "total"
    (r.stats.random_vectors + r.stats.deterministic_vectors)
    (Array.length r.vectors)

let () =
  Alcotest.run "dl_atpg"
    [
      ( "scoap",
        [
          Alcotest.test_case "inputs cost 1" `Quick test_scoap_inputs_cost_one;
          Alcotest.test_case "nand costs" `Quick test_scoap_nand_costs;
          Alcotest.test_case "xor costs" `Quick test_scoap_xor_costs;
          Alcotest.test_case "observability" `Quick test_scoap_observability;
          Alcotest.test_case "depth monotone" `Quick test_scoap_depth_monotone;
          Alcotest.test_case "hardest faults" `Quick test_hardest_faults;
        ] );
      ( "podem",
        [
          Alcotest.test_case "c17 complete" `Quick test_podem_c17_complete;
          Alcotest.test_case "benchmarks verified" `Slow test_podem_benchmarks_verified;
          Alcotest.test_case "redundant fault proved" `Quick test_podem_redundant_fault;
          Alcotest.test_case "constant cone untestable" `Quick test_podem_constant_pi_fault;
        ] );
      ( "flow",
        [
          Alcotest.test_case "random phase detects" `Quick test_random_gen_detects;
          Alcotest.test_case "random budget" `Quick test_random_gen_respects_budget;
          Alcotest.test_case "full flow coverage" `Slow test_full_flow_complete_coverage;
          Alcotest.test_case "vector ordering" `Quick test_flow_vector_order;
        ] );
    ]
