open Dl_netlist
open Dl_extract
module Mapping = Dl_cell.Mapping
module Realistic = Dl_switch.Realistic
module Geom = Dl_layout.Geom

let build name =
  let c = Transform.decompose_for_cells (Option.get (Benchmarks.by_name name)) in
  let m = Mapping.flatten c in
  (c, m, Dl_layout.Layout.synthesize m)

(* --- Defect statistics ----------------------------------------------------------- *)

let test_default_bridging_dominant () =
  let s = Defect_stats.default in
  (* the paper's premise: conducting-layer shorts dominate opens *)
  List.iter
    (fun layer ->
      Alcotest.(check bool)
        (Geom.layer_name layer ^ " shorts > opens")
        true
        (Defect_stats.density s (Defect_stats.Short_on layer)
        > Defect_stats.density s (Defect_stats.Open_on layer)))
    [ Geom.Metal1; Geom.Metal2; Geom.Poly ]

let test_scale () =
  let s = Defect_stats.scale Defect_stats.default 2.0 in
  Alcotest.(check (float 1e-18)) "doubled"
    (2.0 *. Defect_stats.density Defect_stats.default (Defect_stats.Short_on Geom.Metal1))
    (Defect_stats.density s (Defect_stats.Short_on Geom.Metal1))

let test_scale_class () =
  let cls = Defect_stats.Short_on Geom.Poly in
  let s = Defect_stats.scale_class Defect_stats.default cls 3.0 in
  Alcotest.(check (float 1e-18)) "class scaled"
    (3.0 *. Defect_stats.density Defect_stats.default cls)
    (Defect_stats.density s cls);
  Alcotest.(check (float 1e-18)) "others untouched"
    (Defect_stats.density Defect_stats.default (Defect_stats.Short_on Geom.Metal1))
    (Defect_stats.density s (Defect_stats.Short_on Geom.Metal1))

let test_size_pdf_normalized () =
  let x0 = 3.0 in
  let integral =
    Dl_util.Numerics.integrate ~steps:20000
      ~f:(fun u ->
        let x = exp u in
        Defect_stats.size_pdf ~x0 x *. x)
      (log x0) (log 1e7)
  in
  Alcotest.(check (float 1e-6)) "integrates to 1" 1.0 integral

let test_unknown_class_zero () =
  let s = Defect_stats.make [] in
  Alcotest.(check (float 0.0)) "zero" 0.0
    (Defect_stats.density s (Defect_stats.Short_on Geom.Metal1))

(* --- Critical areas ------------------------------------------------------------------ *)

let test_short_closed_form () =
  (* s >= x0: A = L x0^2 / s *)
  Alcotest.(check (float 1e-9)) "closed form" (100.0 *. 16.0 /. 8.0)
    (Critical_area.short_parallel ~run:100.0 ~spacing:8.0 ~x0:4.0)

let test_short_touching () =
  (* s < x0: A = L (2 x0 - s) *)
  Alcotest.(check (float 1e-9)) "touching branch" (10.0 *. 7.0)
    (Critical_area.short_parallel ~run:10.0 ~spacing:1.0 ~x0:4.0)

let test_short_matches_numeric () =
  List.iter
    (fun spacing ->
      let closed = Critical_area.short_parallel ~run:50.0 ~spacing ~x0:4.0 in
      let numeric =
        Critical_area.short_parallel_numeric ~x_max:1e8 ~run:50.0 ~spacing ~x0:4.0 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "spacing %.0f" spacing)
        true
        (Float.abs (closed -. numeric) /. closed < 1e-3))
    [ 4.0; 8.0; 16.0; 40.0 ]

let test_short_monotone_decreasing_in_spacing () =
  let prev = ref infinity in
  List.iter
    (fun s ->
      let a = Critical_area.short_parallel ~run:20.0 ~spacing:s ~x0:4.0 in
      Alcotest.(check bool) "decreasing" true (a <= !prev);
      prev := a)
    [ 0.0; 2.0; 4.0; 8.0; 16.0; 32.0 ]

let test_short_linear_in_run () =
  let a1 = Critical_area.short_parallel ~run:10.0 ~spacing:6.0 ~x0:4.0 in
  let a2 = Critical_area.short_parallel ~run:20.0 ~spacing:6.0 ~x0:4.0 in
  Alcotest.(check (float 1e-9)) "linear" (2.0 *. a1) a2

let test_open_wire () =
  Alcotest.(check (float 1e-9)) "open form" (100.0 *. 16.0 /. 4.0)
    (Critical_area.open_wire ~length:100.0 ~width:4.0 ~x0:4.0)

(* --- IFA -------------------------------------------------------------------------------- *)

let test_extract_c17 () =
  let _, _, l = build "c17" in
  let e = Ifa.extract l in
  Alcotest.(check bool) "nonempty" true (Array.length e.Ifa.faults > 0);
  Array.iter
    (fun (f : Realistic.t) ->
      Alcotest.(check bool) "positive weight" true (f.weight > 0.0))
    e.Ifa.faults

let test_extract_bridging_dominates () =
  let _, _, l = build "c432s_small" in
  let e = Ifa.extract l in
  let shorts, opens =
    Array.fold_left
      (fun (s, o) (f : Realistic.t) ->
        if Realistic.is_short f then (s +. f.weight, o) else (s, o +. f.weight))
      (0.0, 0.0) e.Ifa.faults
  in
  Alcotest.(check bool) "shorts dominate" true (shorts > opens)

let test_extract_yield_identity () =
  let _, _, l = build "c17" in
  let e = Ifa.extract l in
  Alcotest.(check (float 1e-12)) "yield = exp(-total)"
    (exp (-.Ifa.total_weight e))
    (Ifa.yield_of e)

let test_extract_weight_dispersion () =
  (* fig 3's point: weights spread over decades *)
  let _, _, l = build "c432s_small" in
  let e = Ifa.extract l in
  let ws = Array.map (fun (f : Realistic.t) -> f.weight) e.Ifa.faults in
  let lo, hi = Dl_util.Stats.min_max ws in
  Alcotest.(check bool) "at least 2 decades" true (hi /. lo > 100.0)

let test_extract_histogram () =
  let _, _, l = build "c432s_small" in
  let e = Ifa.extract l in
  let h = Ifa.weight_histogram e in
  Alcotest.(check int) "all faults binned" (Array.length e.Ifa.faults)
    (Dl_util.Histogram.total h)

let test_extract_fault_sites_valid () =
  let c, m, l = build "c432s_small" in
  let e = Ifa.extract l in
  let n_nodes = m.Mapping.node_count in
  let n_ts = Mapping.transistor_count m in
  Array.iter
    (fun (f : Realistic.t) ->
      match f.kind with
      | Realistic.Bridge { node_a; node_b } ->
          Alcotest.(check bool) "bridge nodes valid" true
            (node_a >= 0 && node_a < n_nodes && node_b >= 0 && node_b < n_nodes
           && node_a <> node_b)
      | Realistic.Transistor_stuck_open ti | Realistic.Transistor_stuck_on ti ->
          Alcotest.(check bool) "transistor valid" true (ti >= 0 && ti < n_ts)
      | Realistic.Input_open { gate; pin; _ } ->
          Alcotest.(check bool) "pin valid" true
            (gate >= 0
            && gate < Circuit.node_count c
            && pin >= 0
            && pin < Array.length c.Circuit.nodes.(gate).fanin)
      | Realistic.Stem_open { node; _ } ->
          Alcotest.(check bool) "stem valid" true
            (node >= 0 && node < Circuit.node_count c))
    e.Ifa.faults

let test_extract_no_duplicate_kinds () =
  let _, _, l = build "c432s_small" in
  let e = Ifa.extract l in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (f : Realistic.t) ->
      Alcotest.(check bool) "unique electrical site" false (Hashtbl.mem seen f.kind);
      Hashtbl.replace seen f.kind ())
    e.Ifa.faults

let test_extract_pruning_conserves_yield () =
  let _, _, l = build "c432s_small" in
  let full = Ifa.extract l in
  let pruned = Ifa.extract ~min_weight_ratio:0.01 l in
  Alcotest.(check bool) "fewer faults" true
    (Array.length pruned.Ifa.faults < Array.length full.Ifa.faults);
  Alcotest.(check (float 1e-12)) "total conserved"
    (Ifa.total_weight full +. full.Ifa.gross_weight)
    (Ifa.total_weight pruned +. pruned.Ifa.gross_weight)

let test_extract_density_scaling_scales_weights () =
  let _, _, l = build "c17" in
  let base = Ifa.extract l in
  let doubled = Ifa.extract ~stats:(Defect_stats.scale Defect_stats.default 2.0) l in
  Alcotest.(check bool) "weights double" true
    (Float.abs ((Ifa.total_weight doubled /. Ifa.total_weight base) -. 2.0) < 1e-9)

(* --- Realistic fault helpers ------------------------------------------------------------ *)

let test_probability_weight_inverses () =
  List.iter
    (fun w ->
      let f = { Realistic.kind = Realistic.Transistor_stuck_on 0; weight = w; label = "" } in
      let p = Realistic.probability f in
      Alcotest.(check (float 1e-12)) "inverse" w (Realistic.weight_of_probability p))
    [ 1e-9; 1e-6; 1e-3; 0.1; 2.0 ]

let test_is_short_classification () =
  let mk kind = { Realistic.kind; weight = 1.0; label = "" } in
  Alcotest.(check bool) "bridge" true
    (Realistic.is_short (mk (Realistic.Bridge { node_a = 0; node_b = 1 })));
  Alcotest.(check bool) "ts-on" true
    (Realistic.is_short (mk (Realistic.Transistor_stuck_on 0)));
  Alcotest.(check bool) "ts-open" true
    (Realistic.is_open (mk (Realistic.Transistor_stuck_open 0)));
  Alcotest.(check bool) "stem open" true
    (Realistic.is_open
       (mk (Realistic.Stem_open { node = 0; policy = Realistic.Floats_low })))

let () =
  Alcotest.run "dl_extract"
    [
      ( "defect-stats",
        [
          Alcotest.test_case "bridging dominant" `Quick test_default_bridging_dominant;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "scale class" `Quick test_scale_class;
          Alcotest.test_case "size pdf normalized" `Quick test_size_pdf_normalized;
          Alcotest.test_case "unknown class zero" `Quick test_unknown_class_zero;
        ] );
      ( "critical-area",
        [
          Alcotest.test_case "short closed form" `Quick test_short_closed_form;
          Alcotest.test_case "touching branch" `Quick test_short_touching;
          Alcotest.test_case "matches numeric" `Quick test_short_matches_numeric;
          Alcotest.test_case "monotone in spacing" `Quick
            test_short_monotone_decreasing_in_spacing;
          Alcotest.test_case "linear in run" `Quick test_short_linear_in_run;
          Alcotest.test_case "open wire" `Quick test_open_wire;
        ] );
      ( "ifa",
        [
          Alcotest.test_case "extract c17" `Quick test_extract_c17;
          Alcotest.test_case "bridging dominates" `Quick test_extract_bridging_dominates;
          Alcotest.test_case "yield identity" `Quick test_extract_yield_identity;
          Alcotest.test_case "weight dispersion" `Quick test_extract_weight_dispersion;
          Alcotest.test_case "histogram complete" `Quick test_extract_histogram;
          Alcotest.test_case "fault sites valid" `Quick test_extract_fault_sites_valid;
          Alcotest.test_case "no duplicate sites" `Quick test_extract_no_duplicate_kinds;
          Alcotest.test_case "pruning conserves yield" `Quick
            test_extract_pruning_conserves_yield;
          Alcotest.test_case "density scaling" `Quick
            test_extract_density_scaling_scales_weights;
        ] );
      ( "realistic",
        [
          Alcotest.test_case "probability inverses" `Quick test_probability_weight_inverses;
          Alcotest.test_case "short/open classes" `Quick test_is_short_classification;
        ] );
    ]
