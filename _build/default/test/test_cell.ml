open Dl_netlist
open Dl_cell

(* --- Cell library -------------------------------------------------------------- *)

let test_cells_validate () =
  List.iter
    (fun (kind, arity) -> Cell.validate (Cell.for_gate kind ~arity))
    Cell.all_kinds

let test_cells_match_gate_functions () =
  List.iter
    (fun (kind, arity) ->
      let cell = Cell.for_gate kind ~arity in
      for code = 0 to (1 lsl arity) - 1 do
        let bits = Array.init arity (fun i -> code lsr i land 1 = 1) in
        let lookup p = bits.(Char.code p.[0] - Char.code 'a') in
        Alcotest.(check bool)
          (Printf.sprintf "%s/%d code %d" (Gate.to_string kind) arity code)
          (Gate.eval kind bits) (Cell.eval cell lookup)
      done)
    Cell.all_kinds

let test_cell_complementary_transistor_counts () =
  List.iter
    (fun (kind, arity) ->
      let cell = Cell.for_gate kind ~arity in
      let n, p =
        List.fold_left
          (fun (n, p) (tr : Cell.transistor) ->
            match tr.channel with Cell.Nmos -> (n + 1, p) | Cell.Pmos -> (n, p + 1))
          (0, 0) cell.Cell.transistors
      in
      Alcotest.(check int) (Gate.to_string kind ^ " complementary") n p)
    Cell.all_kinds

let test_cell_known_sizes () =
  Alcotest.(check int) "INV" 2 (Cell.transistor_count (Cell.for_gate Gate.Not ~arity:1));
  Alcotest.(check int) "NAND2" 4 (Cell.transistor_count (Cell.for_gate Gate.Nand ~arity:2));
  Alcotest.(check int) "NAND4" 8 (Cell.transistor_count (Cell.for_gate Gate.Nand ~arity:4));
  Alcotest.(check int) "AND2" 6 (Cell.transistor_count (Cell.for_gate Gate.And ~arity:2));
  Alcotest.(check int) "XOR2" 12 (Cell.transistor_count (Cell.for_gate Gate.Xor ~arity:2));
  Alcotest.(check int) "BUF" 4 (Cell.transistor_count (Cell.for_gate Gate.Buf ~arity:1))

let test_cell_unsupported () =
  Alcotest.(check bool) "wide xor rejected" true
    (try
       ignore (Cell.for_gate Gate.Xor ~arity:3);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "input rejected" true
    (try
       ignore (Cell.for_gate Gate.Input ~arity:0);
       false
     with Invalid_argument _ -> true)

(* --- Mapping / flattening --------------------------------------------------------- *)

let test_flatten_c17 () =
  let c = Benchmarks.c17 () in
  let m = Mapping.flatten c in
  (* 6 NAND2 cells, 4 transistors each *)
  Alcotest.(check int) "instances" 6 (Array.length m.Mapping.instances);
  Alcotest.(check int) "transistors" 24 (Mapping.transistor_count m);
  Alcotest.(check int) "gnd" 0 m.Mapping.gnd;
  Alcotest.(check int) "vdd" 1 m.Mapping.vdd

let test_flatten_instance_wiring () =
  let c = Benchmarks.c432s_small () in
  let c = Transform.decompose_for_cells c in
  let m = Mapping.flatten c in
  Array.iter
    (fun (inst : Mapping.instance) ->
      let nd = c.Circuit.nodes.(inst.gate_id) in
      (* instance inputs follow the gate's fanin order *)
      Alcotest.(check int) "arity matches" (Array.length nd.fanin)
        (Array.length inst.input_nodes);
      Array.iteri
        (fun pin src ->
          Alcotest.(check int) "pin wired to driver net"
            m.Mapping.signal_node.(src)
            inst.input_nodes.(pin))
        nd.fanin;
      Alcotest.(check int) "output wired" m.Mapping.signal_node.(inst.gate_id)
        inst.output_node)
    m.Mapping.instances

let test_flatten_transistor_terminals_in_range () =
  let c = Benchmarks.c432s () in
  let c = Transform.decompose_for_cells c in
  let m = Mapping.flatten c in
  Array.iter
    (fun (tr : Mapping.transistor) ->
      List.iter
        (fun node ->
          Alcotest.(check bool) "node in range" true (node >= 0 && node < m.Mapping.node_count))
        [ tr.gate; tr.source; tr.drain ];
      Alcotest.(check bool) "gate is not a rail" true (tr.gate > 1))
    m.Mapping.transistors

let test_flatten_unmappable () =
  let b = Circuit.Builder.create ~title:"wide" in
  for i = 0 to 5 do
    Circuit.Builder.add_input b (Printf.sprintf "i%d" i)
  done;
  Circuit.Builder.add_gate b "o" Gate.Nand (List.init 6 (Printf.sprintf "i%d"));
  Circuit.Builder.add_output b "o";
  let c = Circuit.Builder.finalize b in
  Alcotest.(check bool) "raises Unmappable" true
    (try
       ignore (Mapping.flatten c);
       false
     with Mapping.Unmappable _ -> true)

let test_flatten_unique_internal_nodes () =
  let c = Benchmarks.c432s_small () in
  let c = Transform.decompose_for_cells c in
  let m = Mapping.flatten c in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (inst : Mapping.instance) ->
      Array.iter
        (fun node ->
          Alcotest.(check bool) "internal node unique" false (Hashtbl.mem seen node);
          Hashtbl.replace seen node ())
        inst.internal_nodes)
    m.Mapping.instances

(* A full-network switch-style evaluation check through Cell.eval: evaluate
   each instance's cell in topological order and compare against gate-level
   simulation — verifies mapping preserves logic end to end. *)
let test_flatten_behavioural_equivalence () =
  let c0 = Benchmarks.c432s_small () in
  let c = Transform.decompose_for_cells c0 in
  let m = Mapping.flatten c in
  let rng = Dl_util.Rng.create 77 in
  for _ = 1 to 20 do
    let v = Array.init (Circuit.input_count c) (fun _ -> Dl_util.Rng.bool rng) in
    let expected = Dl_logic.Sim2.run_single c v in
    let values = Array.make (Circuit.node_count c) false in
    Array.iteri (fun i pi -> values.(pi) <- v.(i)) c.Circuit.inputs;
    Array.iter
      (fun id ->
        let nd = c.Circuit.nodes.(id) in
        if nd.kind <> Gate.Input then begin
          match Mapping.instance_of_gate m id with
          | None -> Alcotest.fail "missing instance"
          | Some inst ->
              let lookup p =
                let idx = Char.code p.[0] - Char.code 'a' in
                values.(nd.fanin.(idx))
              in
              values.(id) <- Cell.eval inst.cell lookup
        end)
      c.Circuit.topo_order;
    Array.iteri
      (fun id b ->
        if values.(id) <> b then Alcotest.failf "node %s diverges" (Circuit.name c id))
      expected
  done

let () =
  Alcotest.run "dl_cell"
    [
      ( "library",
        [
          Alcotest.test_case "validate all" `Quick test_cells_validate;
          Alcotest.test_case "truth tables" `Quick test_cells_match_gate_functions;
          Alcotest.test_case "complementary" `Quick test_cell_complementary_transistor_counts;
          Alcotest.test_case "known sizes" `Quick test_cell_known_sizes;
          Alcotest.test_case "unsupported rejected" `Quick test_cell_unsupported;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "flatten c17" `Quick test_flatten_c17;
          Alcotest.test_case "instance wiring" `Quick test_flatten_instance_wiring;
          Alcotest.test_case "terminals in range" `Quick test_flatten_transistor_terminals_in_range;
          Alcotest.test_case "unmappable rejected" `Quick test_flatten_unmappable;
          Alcotest.test_case "internal nodes unique" `Quick test_flatten_unique_internal_nodes;
          Alcotest.test_case "behavioural equivalence" `Quick test_flatten_behavioural_equivalence;
        ] );
    ]
