(* Production test planning with the proposed model: how much stuck-at
   coverage does a defect-level target require across the (Y, R, θmax)
   space?  Generalizes the paper's Example 1 and shows where Williams-Brown
   over-tests and where targets are simply unreachable with voltage-only
   testing.

     dune exec examples/coverage_planning.exe
*)

open Dl_core
module Table = Dl_util.Table

let targets_ppm = [ 1000.0; 100.0; 10.0 ]

let cell ~yield ~params target_ppm =
  let target_dl = target_ppm /. 1e6 in
  match Projection.required_coverage ~yield ~params ~target_dl with
  | Some t -> Table.fmt_pct t
  | None -> "unreachable"

let () =
  print_endline "== Required stuck-at coverage per DL target ==\n";
  List.iter
    (fun yield_ ->
      Printf.printf "-- yield Y = %.2f --\n" yield_;
      let t =
        Table.create
          (("model", Table.Left)
          :: List.map (fun p -> (Printf.sprintf "%.0f ppm" p, Table.Right)) targets_ppm)
      in
      Table.add_row t
        ("Williams-Brown"
        :: List.map
             (fun p ->
               Table.fmt_pct
                 (Williams_brown.required_coverage ~yield:yield_ ~target_dl:(p /. 1e6)))
             targets_ppm);
      List.iter
        (fun (r, theta_max) ->
          let params = { Projection.r; theta_max } in
          Table.add_row t
            (Printf.sprintf "eq.11 R=%.1f θmax=%.2f" r theta_max
            :: List.map (cell ~yield:yield_ ~params) targets_ppm))
        [ (1.5, 1.0); (2.1, 1.0); (1.9, 0.96); (1.0, 0.99) ];
      Table.print t;
      print_newline ())
    [ 0.9; 0.75; 0.5 ];

  print_endline "== Reading the table ==";
  print_endline
    "R > 1 (bridging-dominated defects) relaxes the coverage requirement\n\
     substantially versus Williams-Brown; θmax < 1 makes tight targets\n\
     unreachable by voltage-only stuck-at testing no matter the coverage —\n\
     the residual defect level calls for IDDQ or delay test augmentation.\n";

  (* Vector-budget planning: combine eq. 11 with the test-length model. *)
  print_endline "== Vector budget for a 1000 ppm target (Y=0.75, s_T = e^3) ==";
  let s_t = exp 3.0 in
  let t = Table.create
      [ ("model", Table.Left); ("required T", Table.Right); ("random vectors", Table.Right) ]
  in
  let add name t_req =
    match t_req with
    | None -> Table.add_row t [ name; "unreachable"; "-" ]
    | Some tv when tv >= 1.0 ->
        Table.add_row t [ name; Table.fmt_pct tv; "deterministic only" ]
    | Some tv ->
        Table.add_row t
          [ name; Table.fmt_pct tv;
            Printf.sprintf "%.0f" (Susceptibility.test_length ~s:s_t ~target:tv) ]
  in
  add "Williams-Brown"
    (Some (Williams_brown.required_coverage ~yield:0.75 ~target_dl:1e-3));
  add "eq.11 R=1.9 θmax=0.96"
    (Projection.required_coverage ~yield:0.75
       ~params:{ Projection.r = 1.9; theta_max = 0.96 } ~target_dl:1e-3);
  Table.print t
