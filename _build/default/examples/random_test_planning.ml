(* Random-test planning from first principles.

   Eq. 7's susceptibility s_T summarizes a whole circuit in one number.
   Underneath it sit per-fault detection probabilities (the paper's
   refs [18-20]); this example walks the chain:

     COP analytics  ->  per-fault p_i  ->  expected T(k)  ->  fitted s_T
     -> test length for a coverage target -> defect level at that length

   and then shows what weighted-random pattern biasing buys on the
   random-pattern-resistant tail.

     dune exec examples/random_test_planning.exe
*)

module Circuit = Dl_netlist.Circuit
module Detectability = Dl_fault.Detectability
module Table = Dl_util.Table
open Dl_core

let () =
  let c = Dl_netlist.Benchmarks.c432s () in
  let faults = Dl_fault.Stuck_at.collapse c (Dl_fault.Stuck_at.universe c) in
  Printf.printf "circuit %s: %d collapsed stuck-at faults\n\n" c.Circuit.title
    (Array.length faults);

  (* 1. Per-fault detection probabilities: analytic (COP) and empirical. *)
  let cop = Dl_atpg.Cop.compute c in
  let analytic = Dl_atpg.Cop.detectabilities cop faults in
  let empirical = Detectability.estimate ~seed:11 ~samples:1500 c ~faults in
  Printf.printf
    "mean detection probability: COP %.4f, Monte-Carlo %.4f\n"
    (Detectability.mean_detectability analytic)
    (Detectability.mean_detectability empirical);
  print_endline "hardest faults (Monte-Carlo):";
  List.iter
    (fun (i, p) ->
      Printf.printf "  %-18s p = %.5f\n"
        (Dl_fault.Stuck_at.to_string c faults.(i))
        p)
    (Detectability.hardest empirical 5);
  print_newline ();

  (* 2. The induced coverage curve and its eq. 7 summary. *)
  let ks = Dl_fault.Coverage.log_spaced ~max:100_000 ~points:24 in
  let samples =
    Array.map
      (fun k -> (float_of_int k, Detectability.expected_coverage empirical k))
      ks
  in
  let fit = Susceptibility.fit_curve samples in
  Printf.printf
    "fitted eq. 7 parameters from the detection-probability curve:\n\
    \  s_T = %.1f (ln s_T = %.2f), saturation %.4f\n\n"
    fit.s (log fit.s) fit.theta_max;

  (* 3. Test length planning. *)
  let t = Table.create
      [ ("target T", Table.Right); ("k (per-fault model)", Table.Right);
        ("k (eq. 7 fit)", Table.Right) ]
  in
  List.iter
    (fun target ->
      let exact =
        match Detectability.test_length_for empirical ~target with
        | Some k -> string_of_int k
        | None -> "unreachable"
      in
      let via_fit =
        if target >= fit.theta_max then "unreachable"
        else
          Printf.sprintf "%.0f"
            (Susceptibility.test_length ~s:fit.s ~target:(target /. fit.theta_max))
      in
      Table.add_row t [ Table.fmt_pct target; exact; via_fit ])
    [ 0.8; 0.9; 0.95; 0.98 ];
  Table.print t;
  print_newline ();

  (* 4. Defect level as a function of random-test length (ref [15]'s
     question), through eq. 3 with Θ(k) ≈ θmax-scaled coverage. *)
  let t2 = Table.create [ ("k", Table.Right); ("T(k)", Table.Right); ("DL bound (WB)", Table.Right) ] in
  List.iter
    (fun k ->
      let cov = Detectability.expected_coverage empirical k in
      Table.add_row t2
        [ string_of_int k; Table.fmt_pct cov;
          Table.fmt_ppm (Williams_brown.defect_level ~yield:0.75 ~coverage:cov) ])
    [ 10; 100; 1000; 10_000 ];
  Table.print t2;
  print_newline ();

  (* 5. Weighted-random biasing against the resistant tail. *)
  let resistant =
    Array.of_list (Dl_atpg.Cop.random_pattern_resistant cop c ~threshold:0.01)
  in
  Printf.printf "random-pattern-resistant faults (COP p < 1%%): %d\n"
    (Array.length resistant);
  if Array.length resistant > 0 then begin
    let bias = Dl_atpg.Weighted_random.optimize_bias ~budget:2048 c ~faults:resistant in
    let uniform =
      Dl_atpg.Weighted_random.expected_coverage c ~faults:resistant
        ~bias:(Array.make (Circuit.input_count c) 0.5)
        ~k:2048
    in
    let biased =
      Dl_atpg.Weighted_random.expected_coverage c ~faults:resistant ~bias ~k:2048
    in
    Printf.printf
      "expected coverage of the resistant tail after 2048 vectors:\n\
      \  uniform random   %s\n\
      \  weighted random  %s\n"
      (Table.fmt_pct uniform) (Table.fmt_pct biased)
  end
