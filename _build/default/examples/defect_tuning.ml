(* The conclusion's inverse use of the model: "the proposed model can be
   used, together with DL(T) experimental curves, to tune assumed defect
   statistics in a process line."

   We play process engineer: a fab's observed fallout curve (synthesized
   here from a run with *modified* defect statistics, standing in for real
   fallout data) disagrees with the DL(T) projection made from the assumed
   statistics.  Fitting (R, θmax) to both curves exposes the direction of
   the discrepancy, and rescaling the assumed short/open balance recovers
   the observed behaviour.

     dune exec examples/defect_tuning.exe
*)

open Dl_core
module Defect_stats = Dl_extract.Defect_stats
module Geom = Dl_layout.Geom
module Table = Dl_util.Table

let circuit = Dl_netlist.Benchmarks.c432s_small ()

let run stats =
  Experiment.run (Experiment.config ~seed:7 ~max_random_vectors:512 ~stats circuit)

let describe label e =
  let fit = Experiment.fit_params e () in
  let k = Array.length e.Experiment.vectors in
  Printf.printf "%-22s R = %.2f  θmax = %.3f  final DL = %s\n" label fit.params.r
    fit.params.theta_max
    (Table.fmt_ppm (Experiment.defect_level_at e k));
  fit

let () =
  (* The fab's line actually has 4x the assumed metal-open density (say, a
     via-contamination excursion). *)
  let assumed = Defect_stats.default in
  let actual =
    Defect_stats.scale_class
      (Defect_stats.scale_class assumed (Defect_stats.Open_on Geom.Metal1) 4.0)
      (Defect_stats.Open_on Geom.Metal2) 4.0
  in
  print_endline "== Step 1: projection vs 'measured' fallout ==";
  let projected = run assumed in
  let measured = run actual in
  let fit_assumed = describe "assumed statistics:" projected in
  let fit_actual = describe "measured fallout:" measured in

  print_endline "\n== Step 2: diagnose the discrepancy ==";
  if fit_actual.params.r < fit_assumed.params.r then
    print_endline
      "Measured R is lower than projected: yield loss is less bridging-\n\
       dominated than assumed — the open-defect density must be higher\n\
       than the assumed statistics say.";

  print_endline "\n== Step 3: tune the assumed statistics ==";
  let t = Table.create
      [ ("open-density scale", Table.Right); ("R", Table.Right);
        ("θmax", Table.Right); ("|ΔR| vs measured", Table.Right) ]
  in
  let best = ref (1.0, infinity) in
  List.iter
    (fun scale ->
      let stats =
        Defect_stats.scale_class
          (Defect_stats.scale_class assumed (Defect_stats.Open_on Geom.Metal1) scale)
          (Defect_stats.Open_on Geom.Metal2) scale
      in
      let fit = Experiment.fit_params (run stats) () in
      let err = Float.abs (fit.params.r -. fit_actual.params.r) in
      if err < snd !best then best := (scale, err);
      Table.add_row t
        [
          Printf.sprintf "%.1fx" scale;
          Printf.sprintf "%.3f" fit.params.r;
          Printf.sprintf "%.3f" fit.params.theta_max;
          Printf.sprintf "%.3f" err;
        ])
    [ 1.0; 2.0; 4.0; 8.0 ];
  Table.print t;
  Printf.printf
    "\nBest-matching open-density scale: %.1fx (ground truth in this scenario: 4.0x)\n"
    (fst !best)
