(* Quickstart: the four defect-level models on closed-form inputs, including
   the paper's two worked examples.

     dune exec examples/quickstart.exe
*)

open Dl_core
module Table = Dl_util.Table

let yield_ = 0.75

let () =
  print_endline "== Defect-level models at Y = 0.75 ==\n";
  (* Compare the four models across a coverage sweep. *)
  let t = Table.create
      [ ("T", Table.Right); ("Williams-Brown", Table.Right);
        ("Agrawal n=3", Table.Right); ("eq.11 R=1.9 th=.96", Table.Right) ]
  in
  let params = { Projection.r = 1.9; theta_max = 0.96 } in
  List.iter
    (fun cov ->
      Table.add_row t
        [
          Table.fmt_pct cov;
          Table.fmt_ppm (Williams_brown.defect_level ~yield:yield_ ~coverage:cov);
          Table.fmt_ppm (Agrawal.defect_level ~yield:yield_ ~coverage:cov ~n:3.0);
          Table.fmt_ppm (Projection.defect_level ~yield:yield_ ~params ~coverage:cov);
        ])
    [ 0.0; 0.5; 0.8; 0.9; 0.95; 0.99; 0.999; 1.0 ];
  Table.print t;
  print_newline ();

  (* Paper Example 1: required coverage for a 100 ppm target. *)
  print_endline "== Example 1 (paper section 2) ==";
  let target = 1e-4 in
  let t_wb = Williams_brown.required_coverage ~yield:yield_ ~target_dl:target in
  let params1 = { Projection.r = 2.1; theta_max = 1.0 } in
  (match Projection.required_coverage ~yield:yield_ ~params:params1 ~target_dl:target with
  | Some t_new ->
      Printf.printf
        "DL target %s at Y=%.2f, R=2.1, θmax=1:\n\
        \  proposed model needs T = %s   (paper: 97.7%%)\n\
        \  Williams-Brown needs T = %s   (paper: 99.97%%) — much more stringent\n\n"
        (Table.fmt_ppm target) yield_ (Table.fmt_pct t_new) (Table.fmt_pct t_wb)
  | None -> assert false);

  (* Paper Example 2: the residual defect level of an incomplete test. *)
  print_endline "== Example 2 (paper section 2) ==";
  let params2 = { Projection.r = 1.0; theta_max = 0.99 } in
  let dl = Projection.defect_level ~yield:yield_ ~params:params2 ~coverage:1.0 in
  Printf.printf
    "T = 100%%, θmax = 0.99, R = 1: DL = %s\n\
    \  (exact value of eq. 11; the paper prints 2279 ppm — see EXPERIMENTS.md)\n\
    \  Williams-Brown would predict 0 ppm at T = 100%%.\n\n"
    (Table.fmt_ppm dl);

  (* Residual defect level across detection-technique completeness. *)
  print_endline "== Residual defect level 1 - Y^(1-θmax) ==";
  let t2 = Table.create [ ("θmax", Table.Right); ("residual DL", Table.Right) ] in
  List.iter
    (fun tm ->
      Table.add_row t2
        [
          Printf.sprintf "%.3f" tm;
          Table.fmt_ppm (Projection.residual_defect_level ~yield:yield_ ~theta_max:tm);
        ])
    [ 0.90; 0.95; 0.96; 0.99; 0.999; 1.0 ];
  Table.print t2;
  print_newline ();

  (* Test length planning via the susceptibility model (eq. 7). *)
  print_endline "== Random-test length for target stuck-at coverage (s_T = e^3) ==";
  let s = exp 3.0 in
  let t3 = Table.create [ ("target T", Table.Right); ("vectors", Table.Right) ] in
  List.iter
    (fun target ->
      Table.add_row t3
        [
          Table.fmt_pct target;
          Printf.sprintf "%.0f" (Susceptibility.test_length ~s ~target);
        ])
    [ 0.5; 0.9; 0.99; 0.999 ];
  Table.print t3
