examples/diagnosis.mli:
