examples/quickstart.mli:
