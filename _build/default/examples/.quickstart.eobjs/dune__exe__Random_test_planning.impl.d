examples/random_test_planning.ml: Array Dl_atpg Dl_core Dl_fault Dl_netlist Dl_util List Printf Susceptibility Williams_brown
