examples/random_test_planning.mli:
