examples/c432_pipeline.mli:
