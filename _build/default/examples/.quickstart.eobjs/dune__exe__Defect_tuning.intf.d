examples/defect_tuning.mli:
