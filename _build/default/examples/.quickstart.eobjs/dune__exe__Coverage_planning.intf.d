examples/coverage_planning.mli:
