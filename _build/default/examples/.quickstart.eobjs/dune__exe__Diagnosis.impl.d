examples/diagnosis.ml: Array Dl_atpg Dl_cell Dl_extract Dl_fault Dl_layout Dl_netlist Dl_switch Fun List Printf
