examples/coverage_planning.ml: Dl_core Dl_util List Printf Projection Susceptibility Williams_brown
