examples/c432_pipeline.ml: Array Dl_core Dl_extract Dl_fault Dl_layout Dl_netlist Dl_util Experiment Format Printf Projection Sys Weighted Williams_brown
