examples/quickstart.ml: Agrawal Dl_core Dl_util List Printf Projection Susceptibility Williams_brown
