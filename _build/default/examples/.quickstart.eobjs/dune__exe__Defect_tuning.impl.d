examples/defect_tuning.ml: Array Dl_core Dl_extract Dl_layout Dl_netlist Dl_util Experiment Float List Printf
