(* Defect diagnosis with an abstract fault dictionary.

   A recurring question behind the paper: how well does the single
   stuck-at abstraction represent physical defects?  Here we act as a
   failure analyst: inject *realistic* layout-extracted defects at switch
   level, record which test vectors actually fail on the tester, then ask
   the stuck-at fault dictionary which abstract faults are consistent with
   that signature.  Bridges near a net usually implicate that net's
   stuck-at faults (good localization); opens and fights confuse the
   dictionary — the behavioural gap that motivates realistic fault models.

     dune exec examples/diagnosis.exe
*)

module Circuit = Dl_netlist.Circuit
module Dictionary = Dl_fault.Dictionary
module Realistic = Dl_switch.Realistic
module Mapping = Dl_cell.Mapping

let () =
  let c = Dl_netlist.Transform.decompose_for_cells (Dl_netlist.Benchmarks.c432s_small ()) in
  let m = Mapping.flatten c in
  let network = Dl_switch.Network.build m in
  let layout = Dl_layout.Layout.synthesize m in
  let extraction = Dl_extract.Ifa.extract layout in
  (* The production test set. *)
  let atpg, stuck_faults = Dl_atpg.Atpg.full_flow ~seed:7 ~max_random:512 c in
  let vectors = atpg.vectors in
  Printf.printf "test set: %d vectors; dictionary over %d collapsed stuck-at faults\n\n"
    (Array.length vectors) (Array.length stuck_faults);
  let dict = Dictionary.build c ~faults:stuck_faults ~vectors in
  (* Pick a few interesting extracted defects deterministically: the three
     heaviest bridges and the heaviest open. *)
  let by_weight =
    let l = Array.to_list extraction.faults in
    List.sort (fun (a : Realistic.t) b -> compare b.weight a.weight) l
  in
  let bridges =
    List.filteri (fun i _ -> i < 3)
      (List.filter (fun f -> Realistic.is_short f) by_weight)
  in
  let opens =
    List.filteri (fun i _ -> i < 1)
      (List.filter (fun f -> Realistic.is_open f) by_weight)
  in
  let defects = bridges @ opens in
  List.iter
    (fun (defect : Realistic.t) ->
      Printf.printf "== injected defect: %s ==\n" (Realistic.describe defect);
      (* Tester pass/fail signature from the switch-level simulation. *)
      let fails = Dl_switch.Swift.signature network ~fault:defect ~vectors in
      let failing =
        List.filter (fun k -> fails.(k)) (List.init (Array.length vectors) Fun.id)
      in
      let passing =
        List.filter (fun k -> not (List.mem k failing))
          (List.init (Array.length vectors) Fun.id)
      in
      if failing = [] then
        print_endline "  no failing vector: escapes the voltage test entirely\n"
      else begin
        Printf.printf "  %d failing vectors\n" (List.length failing);
        let candidates = Dictionary.candidates dict ~failing ~passing in
        (match candidates with
        | [] ->
            print_endline
              "  no stuck-at fault matches the signature exactly: the defect\n\
            \  behaves un-stuck-at-like (the paper's core observation);\n\
            \  nearest candidates by signature distance:";
            List.iter
              (fun (fi, dist) ->
                Printf.printf "    %-16s (%d disagreements)\n"
                  (Dl_fault.Stuck_at.to_string c stuck_faults.(fi))
                  dist)
              (Dictionary.closest_candidates dict ~failing ~passing ~limit:4)
        | cands ->
            Printf.printf "  exact stuck-at candidates (%d):\n" (List.length cands);
            List.iteri
              (fun i fi ->
                if i < 5 then
                  Printf.printf "    %s\n"
                    (Dl_fault.Stuck_at.to_string c stuck_faults.(fi)))
              cands);
        print_newline ()
      end)
    defects
