(* The paper's experiment end to end, on a reduced vector budget so it runs
   in seconds: synthesize a layout for the c432-scale benchmark, extract
   weighted realistic faults, generate tests, fault-simulate at gate and
   switch level, project the defect level and fit (R, θmax).

     dune exec examples/c432_pipeline.exe [-- circuit [jobs]]

   Pass "c432s" for the full-size run (about a minute); default is the
   3-slice variant.  The optional second argument sets the worker-domain
   count for the gate-level fault simulation (default: one per recommended
   core); the results are identical at any setting.
*)

open Dl_core
module Coverage = Dl_fault.Coverage
module Table = Dl_util.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c432s_small" in
  let circuit =
    match Dl_netlist.Benchmarks.by_name name with
    | Some c -> c
    | None ->
        Printf.eprintf "unknown benchmark %S\n" name;
        exit 1
  in
  Format.printf "circuit: %a@\n" Dl_netlist.Circuit.pp_summary circuit;
  let domains =
    if Array.length Sys.argv > 2 then
      match int_of_string_opt Sys.argv.(2) with
      | Some j when j >= 1 -> j
      | _ ->
          Printf.eprintf "jobs must be a positive integer, not %S\n" Sys.argv.(2);
          exit 1
    else Dl_util.Parallel.default_domains ()
  in
  Printf.printf "fault simulation on %d domain%s\n" domains
    (if domains = 1 then "" else "s");
  let cfg = Experiment.config ~seed:7 ~max_random_vectors:1024 ~domains circuit in
  let e = Experiment.run cfg in

  (* Layout and extraction summary (fig. 3 territory). *)
  Format.printf "@\n%a@\n" Dl_layout.Layout.pp_stats e.extraction.layout;
  Format.printf "%a@\n" Dl_extract.Ifa.pp_summary e.extraction;
  print_endline "fault-weight histogram (log bins):";
  print_string (Dl_util.Histogram.render ~width:40 (Dl_extract.Ifa.weight_histogram ~bins:12 e.extraction));

  (* Coverage curves (fig. 4 territory). *)
  Format.printf "@\n%a@\n@\n" Experiment.pp_summary e;
  let ks = Experiment.sample_ks e ~points:12 in
  let t = Table.create
      [ ("k", Table.Right); ("T(k)", Table.Right); ("Θ(k)", Table.Right);
        ("Γ(k)", Table.Right); ("DL(Θ(k))", Table.Right); ("WB DL(T)", Table.Right) ]
  in
  Array.iter
    (fun (k, tk, th, g) ->
      Table.add_row t
        [
          string_of_int k;
          Table.fmt_pct tk;
          Table.fmt_pct th;
          Table.fmt_pct g;
          Table.fmt_ppm (Experiment.defect_level_at e k);
          Table.fmt_ppm (Williams_brown.defect_level ~yield:e.yield ~coverage:tk);
        ])
    (Experiment.coverage_rows e ~ks);
  Table.print t;

  (* Model fit (fig. 5 territory). *)
  let fit = Experiment.fit_params e () in
  Printf.printf
    "\nfitted eq. 11 parameters: R = %.2f, θmax = %.3f (paper's c432 fit: R = 1.9, θmax = 0.96)\n"
    fit.params.r fit.params.theta_max;
  Printf.printf "residual defect level: %s\n"
    (Table.fmt_ppm
       (Projection.residual_defect_level ~yield:e.yield ~theta_max:fit.params.theta_max));

  (* What IDDQ testing would buy (the paper's closing argument). *)
  let k_final = Array.length e.vectors in
  let theta_v = Coverage.at e.theta_curve k_final in
  let theta_i = Coverage.at e.theta_iddq_curve k_final in
  Printf.printf
    "\nvoltage-only Θ = %s -> DL floor %s\nwith IDDQ    Θ = %s -> DL floor %s\n"
    (Table.fmt_pct theta_v)
    (Table.fmt_ppm (Weighted.defect_level ~yield:e.yield ~theta:theta_v))
    (Table.fmt_pct theta_i)
    (Table.fmt_ppm (Weighted.defect_level ~yield:e.yield ~theta:theta_i))
