open Dl_netlist
module Rng = Dl_util.Rng

type result = {
  vectors : bool array array;
  detected : int;
  remaining : Dl_fault.Stuck_at.t array;
  first_detection : int option array;
}

let run ?rng ?(seed = 7) ?(max_vectors = 4096) ?(stale_limit = 512)
    (c : Circuit.t) ~faults =
  if max_vectors < 0 then invalid_arg "Random_gen.run: negative max_vectors";
  let rng = match rng with Some r -> r | None -> Rng.create seed in
  let npi = Array.length c.inputs in
  let n_faults = Array.length faults in
  let first_detection = Array.make n_faults None in
  let all_vectors = ref [] in
  let applied = ref 0 in
  let last_useful = ref 0 in
  let stop = ref false in
  while (not !stop) && !applied < max_vectors do
    let count = min 64 (max_vectors - !applied) in
    let block =
      Array.init count (fun _ -> Array.init npi (fun _ -> Rng.bool rng))
    in
    (* Simulate only the still-undetected faults against this block. *)
    let live_idx = ref [] in
    for i = n_faults - 1 downto 0 do
      if first_detection.(i) = None then live_idx := i :: !live_idx
    done;
    let live_idx = Array.of_list !live_idx in
    let live_faults = Array.map (fun i -> faults.(i)) live_idx in
    let r = Dl_fault.Fault_sim.run c ~faults:live_faults ~vectors:block in
    Array.iteri
      (fun j d ->
        match d with
        | Some local ->
            let global = !applied + local in
            first_detection.(live_idx.(j)) <- Some global;
            if global + 1 > !last_useful then last_useful := global + 1
        | None -> ())
      r.first_detection;
    all_vectors := block :: !all_vectors;
    applied := !applied + count;
    if !applied - !last_useful >= stale_limit then stop := true;
    if Array.for_all (fun d -> d <> None) first_detection then stop := true
  done;
  let vectors = Array.concat (List.rev !all_vectors) in
  let detected =
    Array.fold_left
      (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
      0 first_detection
  in
  let remaining =
    Array.of_seq
      (Seq.filter_map
         (fun i -> if first_detection.(i) = None then Some faults.(i) else None)
         (Array.to_seq (Array.init n_faults Fun.id)))
  in
  { vectors; detected; remaining; first_detection }
