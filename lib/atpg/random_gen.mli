(** Random-pattern test generation phase.

    The paper's vector sequence starts with random vectors ("more than 80%
    fault coverage is in general achieved with random vectors") before the
    deterministic generator tops up.  This module produces that prefix and
    reports which faults remain. *)

open Dl_netlist

type result = {
  vectors : bool array array;      (** The generated sequence, in order. *)
  detected : int;                  (** Faults detected by the sequence. *)
  remaining : Dl_fault.Stuck_at.t array;  (** Faults still undetected. *)
  first_detection : int option array;     (** Indexed like the input faults. *)
}

val run :
  ?rng:Dl_util.Rng.t ->
  ?seed:int ->
  ?max_vectors:int ->
  ?stale_limit:int ->
  Circuit.t ->
  faults:Dl_fault.Stuck_at.t array ->
  result
(** [run c ~faults] generates uniform random vectors in blocks of 64 until
    either [max_vectors] (default 4096) are applied or [stale_limit]
    (default 512) consecutive vectors detect nothing new.

    [rng] supplies the vector stream directly — pass a
    {!Dl_util.Seeds.stream} (e.g. path ["atpg/random"]) to make this phase
    replayable in isolation from one root seed; when absent the stream is
    [Rng.create seed]. *)
