(** Blocking client for the projection server: one connected stream
    socket ({!Transport} — Unix domain or TCP), one request/response
    exchange at a time.

    Failure modes are distinguished in the error text: connection refused
    ("is the server running?"), a missing socket file, a connect timeout,
    the server closing cleanly at a frame boundary, and the server dying
    {e mid-frame} all read differently.  All of them raise
    {!Protocol.Protocol_error}; [dlproj] maps that onto its one-line
    [die]. *)

type t

val connect :
  ?max_frame:int -> ?connect_timeout_s:float -> ?retries:int ->
  ?backoff_ms:int -> Transport.endpoint -> t
(** Connect to the endpoint.  [connect_timeout_s] bounds TCP connection
    establishment ({!Transport.connect}).  [retries] (default 0) extra
    attempts are made on refused/unreachable/timed-out connects, sleeping
    a jittered exponential backoff starting at [backoff_ms] (default 100,
    doubling, capped at 10 s) between attempts — the jitter keeps a fleet
    of clients from retrying in lockstep.
    @raise Protocol.Protocol_error once every attempt failed, with a
    message naming the failure mode. *)

val endpoint : t -> Transport.endpoint

val close : t -> unit
(** Idempotent. *)

val with_client :
  ?max_frame:int -> ?connect_timeout_s:float -> ?retries:int ->
  ?backoff_ms:int -> Transport.endpoint -> (t -> 'a) -> 'a
(** Connect, run, close (also on exception). *)

val rpc : ?deadline_s:float -> t -> Protocol.request -> Protocol.response
(** One round trip.  [deadline_s] bounds the server's reply {e frame}
    (clock starts at its first byte; see {!Protocol.read_frame}) — it does
    NOT bound how long the server may think before starting to reply.
    @raise Protocol.Protocol_error if the server hangs up (the message
    says whether it was at a frame boundary or mid-frame) or answers with
    an undecodable frame. *)

val ping : t -> bool
(** [true] iff the server answers {!Protocol.Pong}. *)

val submit : t -> Protocol.job_spec -> Protocol.response

val submit_retrying :
  ?attempts:int -> t -> Protocol.job_spec -> Protocol.response
(** {!submit}, but on {!Protocol.Rejected} sleep the server's
    [retry_after_ms] hint (jittered) and resubmit, up to [attempts]
    (default 3) extra times.  The final rejection, if any, is returned to
    the caller like any other response. *)

val run_stage : t -> Protocol.job_spec -> stage:string -> Protocol.response
(** Submit one stage of the spec's experiment ({!Protocol.Serve_stage});
    a successful answer is {!Protocol.Stage_done}. *)

val store_get : t -> string -> bytes option
(** Ask the server's artifact store for a stage key; [None] when absent.
    @raise Protocol.Protocol_error on a non-store reply. *)

val store_put : t -> key:string -> bytes -> bool
(** Offer a codec-enveloped artifact; [false] means the server rejected
    it (no store attached, or envelope validation failed). *)

val get_stats : t -> Protocol.stats
(** @raise Protocol.Protocol_error on a non-[Stats_reply] answer. *)

val shutdown : t -> Protocol.stats
(** Ask the server to drain and exit; returns its final statistics. *)
