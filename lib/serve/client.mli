(** Blocking client for the projection server: one connected Unix-domain
    socket, one request/response exchange at a time.

    Connection-level failures raise [Unix.Unix_error] (socket file
    missing, nothing listening); protocol-level failures — including the
    server closing the connection mid-exchange — raise
    {!Protocol.Protocol_error}.  [dlproj] maps both onto its one-line
    [die]. *)

type t

val connect : ?max_frame:int -> string -> t
(** Connect to the socket at the given path.
    @raise Unix.Unix_error when the path is missing or nothing accepts. *)

val close : t -> unit
(** Idempotent. *)

val with_client : ?max_frame:int -> string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exception). *)

val rpc : t -> Protocol.request -> Protocol.response
(** One round trip.
    @raise Protocol.Protocol_error if the server hangs up or answers with
    an undecodable frame. *)

val ping : t -> bool
(** [true] iff the server answers {!Protocol.Pong}. *)

val submit : t -> Protocol.job_spec -> Protocol.response
val get_stats : t -> Protocol.stats
(** @raise Protocol.Protocol_error on a non-[Stats_reply] answer. *)

val shutdown : t -> Protocol.stats
(** Ask the server to drain and exit; returns its final statistics. *)
