(** The projection daemon: a stream-socket listener ({!Transport} — Unix
    domain or TCP) in front of {!Job_queue} and {!Dl_core.Experiment.run}.

    Thread anatomy: one accept thread; one connection thread per client
    (it decodes frames, admits jobs, blocks in {!Job_queue.await} and
    writes its own responses — fan-out needs no dedicated writer); [workers]
    scheduler threads, each owning one long-lived {!Dl_util.Parallel} pool
    ({!Dl_util.Parallel.t} is not re-entrant, so pools are never shared)
    that {!Dl_core.Experiment.run} reuses across jobs; one supervisor
    thread that turns a stop request (signal flag, [Shutdown] RPC, or
    {!stop}) into the drain sequence.

    Drain-then-exit: stop admitting (submissions now get [Rejected]), let
    the workers finish every queued and running job, wait for each
    connection to write out the response it owes, then close the
    connections, join everything and unlink the socket. *)

type config = {
  listen : Transport.endpoint;
  workers : int;            (** Scheduler threads = concurrent jobs. *)
  queue_capacity : int;     (** Bound on queued (not running) jobs. *)
  cache_capacity : int;     (** Completed-result cache entries. *)
  domains_per_worker : int; (** Size of each worker's domain pool. *)
  cache_dir : string option;  (** Artifact store for the stage graph and
                                  the [Store_get]/[Store_put] peer tier. *)
  max_frame : int;
  read_deadline_s : float option;
      (** Per-frame read deadline on client connections: once a frame's
          first byte arrives, the rest must follow within this bound
          (slow-loris protection).  [None] (default) disables it. *)
  remote : Dl_store.Stage.remote option;
      (** Peer store tier threaded into every job's experiment config —
          how a cluster worker fetches artifacts it misses locally
          ({!Dl_cluster} constructs this). *)
  on_job_start : (string -> unit) option;
      (** Test hook: called with the queue key (["full/<request key>"] or
          ["stage/<stage key>"]) just before a job executes (after
          dispatch, before any stage runs). *)
}

val config :
  ?workers:int -> ?queue_capacity:int -> ?cache_capacity:int ->
  ?domains_per_worker:int -> ?cache_dir:string -> ?max_frame:int ->
  ?read_deadline_s:float -> ?remote:Dl_store.Stage.remote ->
  ?on_job_start:(string -> unit) -> listen:Transport.endpoint -> unit ->
  config
(** Defaults: 1 worker, queue 16, cache 32,
    [Dl_util.Parallel.default_domains ()] domains per worker,
    {!Protocol.default_max_frame}, no read deadline, no peer tier. *)

type t

val start : config -> t
(** Bind and serve.  A stale Unix-socket file (left by a crashed server)
    is removed after probing that nothing answers on it; a {e live} socket
    raises [Failure] instead of stealing the address.
    @raise Unix.Unix_error on bind/listen failures. *)

val bound : t -> Transport.endpoint
(** The endpoint actually listening — binding [Tcp (host, 0)] resolves to
    the kernel-assigned port. *)

val stop : t -> unit
(** Request the graceful drain and block until the server has fully shut
    down.  Idempotent and callable from any thread. *)

val request_stop : t -> unit
(** Async-signal-safe stop request: sets a flag the supervisor acts on.
    This is what the SIGTERM/SIGINT handlers call. *)

val wait : t -> unit
(** Block until the server has shut down (however the stop was
    triggered). *)

val stats : t -> Protocol.stats

val run : ?on_ready:(t -> unit) -> config -> unit
(** [start], install SIGTERM/SIGINT handlers that {!request_stop}, call
    [on_ready] (the CLI's "serving on ..." banner — after the socket is
    live, so a bind failure never claims to serve), then {!wait}. *)
