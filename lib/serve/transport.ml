type endpoint =
  | Unix_socket of string
  | Tcp of string * int

let to_string = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let of_string s =
  if s = "" then invalid_arg "Transport.of_string: empty endpoint";
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
      let host = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt rest with
      | Some port when port >= 0 && port < 65536
                       && not (String.contains host '/') ->
          Tcp (host, port)
      | _ -> Unix_socket s)
  | _ -> Unix_socket s

let is_tcp = function Tcp _ -> true | Unix_socket _ -> false

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host))
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))

let sockaddr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve_host host, port)

let socket_domain = function
  | Unix_socket _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Disable Nagle on TCP links: every exchange is one small request frame
   answered by one response frame, exactly the pattern delayed ACK +
   Nagle turns into 40 ms round trips. *)
let tune_stream ep fd =
  match ep with
  | Tcp _ -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true
      with Unix.Unix_error _ -> ())
  | Unix_socket _ -> ()

let default_connect_timeout_s = 5.0

let connect ?(timeout_s = default_connect_timeout_s) ep =
  let addr = sockaddr ep in
  let fd = Unix.socket ~cloexec:true (socket_domain ep) Unix.SOCK_STREAM 0 in
  (try
     match ep with
     | Unix_socket _ ->
         (* Local connects complete (or refuse) immediately; the timeout
            machinery below is for the TCP path. *)
         Unix.connect fd addr
     | Tcp _ ->
         Unix.set_nonblock fd;
         (match Unix.connect fd addr with
         | () -> ()
         | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
             let _, writable, _ = Unix.select [] [ fd ] [] timeout_s in
             if writable = [] then
               raise
                 (Unix.Unix_error (Unix.ETIMEDOUT, "connect", to_string ep));
             match Unix.getsockopt_error fd with
             | None -> ()
             | Some err ->
                 raise (Unix.Unix_error (err, "connect", to_string ep))));
         Unix.clear_nonblock fd
   with e ->
     close_quietly fd;
     raise e);
  tune_stream ep fd;
  fd

let listen ?(backlog = 64) ep =
  let fd = Unix.socket ~cloexec:true (socket_domain ep) Unix.SOCK_STREAM 0 in
  (try
     (match ep with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_socket _ -> ());
     Unix.bind fd (sockaddr ep);
     Unix.listen fd backlog
   with e ->
     close_quietly fd;
     raise e);
  fd

(* The endpoint actually bound — the only way to learn the port after
   binding [Tcp (host, 0)] (tests and benches bind ephemeral ports so
   parallel runs never collide). *)
let bound_endpoint fd ep =
  match (ep, Unix.getsockname fd) with
  | Unix_socket _, _ -> ep
  | Tcp (host, _), Unix.ADDR_INET (_, port) -> Tcp (host, port)
  | Tcp _, Unix.ADDR_UNIX _ -> ep
