type t = {
  fd : Unix.file_descr;
  max_frame : int;
  endpoint : Transport.endpoint;
  mutable closed : bool;
}

let conn_error fmt = Printf.ksprintf (fun m -> raise (Protocol.Protocol_error m)) fmt

(* Jitter source for retry backoff: seeded per process from the clock and
   pid so a fleet of clients retrying the same dead server does not
   thunder back in lockstep. *)
let jitter_state =
  lazy
    (Random.State.make
       [| Unix.getpid (); int_of_float (Unix.gettimeofday () *. 1e6) |])

let jittered ms =
  let s = Lazy.force jitter_state in
  (* Uniform in [ms/2, ms): full magnitude, desynchronized phase. *)
  (ms / 2) + Random.State.int s (max 1 ((ms + 1) / 2))

let retriable = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT | Unix.EHOSTUNREACH
  | Unix.ENETUNREACH ->
      true
  | _ -> false

(* Turn a final connect failure into a one-line diagnostic that tells the
   user which failure mode they are looking at — "refused" (nothing bound
   to a live address) reads very differently from "timed out" (host not
   answering at all) or "no socket file" (daemon never started here). *)
let connect_failed ep err =
  let at = Transport.to_string ep in
  match err with
  | Unix.ECONNREFUSED ->
      conn_error "connection refused at %s — is the server running?" at
  | Unix.ENOENT ->
      conn_error "no socket at %s — is the server running?" at
  | Unix.ETIMEDOUT -> conn_error "connection to %s timed out" at
  | err ->
      conn_error "cannot connect to %s: %s" at (Unix.error_message err)

let connect ?(max_frame = Protocol.default_max_frame) ?connect_timeout_s
    ?(retries = 0) ?(backoff_ms = 100) endpoint =
  let rec attempt remaining backoff =
    match Transport.connect ?timeout_s:connect_timeout_s endpoint with
    | fd -> { fd; max_frame; endpoint; closed = false }
    | exception Unix.Unix_error (err, _, _) when retriable err ->
        if remaining <= 0 then connect_failed endpoint err
        else begin
          Thread.delay (float_of_int (jittered backoff) /. 1000.0);
          attempt (remaining - 1) (min 10_000 (backoff * 2))
        end
    | exception Unix.Unix_error (err, _, _) -> connect_failed endpoint err
  in
  attempt retries backoff_ms

let endpoint t = t.endpoint

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client ?max_frame ?connect_timeout_s ?retries ?backoff_ms endpoint f =
  let t = connect ?max_frame ?connect_timeout_s ?retries ?backoff_ms endpoint in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let rpc ?deadline_s t request =
  let at = Transport.to_string t.endpoint in
  (* EPIPE here means the server hung up mid-exchange: surface it as a
     protocol error so callers don't confuse it with a broken stdout. *)
  (try Protocol.send Protocol.request_codec t.fd request
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
     conn_error "server at %s closed the connection" at);
  match
    Protocol.recv ~max_frame:t.max_frame ?deadline_s Protocol.response_codec
      t.fd
  with
  | Some response -> response
  | None ->
      (* Clean EOF between frames: the server closed deliberately (drain,
         crash-free exit) without answering — distinct from dying mid-
         frame, which [recv] reports as a truncated-frame error below. *)
      conn_error
        "server at %s closed the connection at a frame boundary before \
         replying" at
  | exception Protocol.Protocol_error msg ->
      conn_error "server at %s hung up mid-frame: %s" at msg
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      conn_error "server at %s reset the connection mid-frame" at

let ping t = match rpc t Protocol.Ping with
  | Protocol.Pong -> true
  | _ -> false

let submit t spec = rpc t (Protocol.Submit spec)

(* Admission-control-aware submission: honor the server's own
   [retry_after_ms] hint (jittered down, so coordinated clients spread
   out) for up to [attempts] rejections, then hand the last rejection to
   the caller. *)
let submit_retrying ?(attempts = 3) t spec =
  let rec go n =
    match submit t spec with
    | Protocol.Rejected { retry_after_ms; _ } as resp ->
        if n <= 0 then resp
        else begin
          Thread.delay (float_of_int (jittered retry_after_ms) /. 1000.0);
          go (n - 1)
        end
    | resp -> resp
  in
  go attempts

let run_stage t spec ~stage = rpc t (Protocol.Serve_stage { spec; stage })

let store_get t key =
  match rpc t (Protocol.Store_get key) with
  | Protocol.Store_found data -> Some (Bytes.of_string data)
  | Protocol.Store_missing -> None
  | Protocol.Server_error m ->
      raise (Protocol.Protocol_error ("server error: " ^ m))
  | _ -> raise (Protocol.Protocol_error "unexpected reply to store-get")

let store_put t ~key data =
  match rpc t (Protocol.Store_put { key; data = Bytes.to_string data }) with
  | Protocol.Store_ack ok -> ok
  | Protocol.Server_error m ->
      raise (Protocol.Protocol_error ("server error: " ^ m))
  | _ -> raise (Protocol.Protocol_error "unexpected reply to store-put")

let expect_stats = function
  | Protocol.Stats_reply s -> s
  | Protocol.Server_error m ->
      raise (Protocol.Protocol_error ("server error: " ^ m))
  | _ -> raise (Protocol.Protocol_error "unexpected reply to stats request")

let get_stats t = expect_stats (rpc t Protocol.Get_stats)
let shutdown t = expect_stats (rpc t Protocol.Shutdown)
