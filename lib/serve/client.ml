type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable closed : bool;
}

let connect ?(max_frame = Protocol.default_max_frame) path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; max_frame; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client ?max_frame path f =
  let t = connect ?max_frame path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let rpc t request =
  (* EPIPE here means the server hung up mid-exchange: surface it as a
     protocol error so callers don't confuse it with a broken stdout. *)
  (try Protocol.send Protocol.request_codec t.fd request
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
     raise (Protocol.Protocol_error "server closed the connection"));
  match Protocol.recv ~max_frame:t.max_frame Protocol.response_codec t.fd with
  | Some response -> response
  | None ->
      raise (Protocol.Protocol_error "server closed the connection")

let ping t = match rpc t Protocol.Ping with
  | Protocol.Pong -> true
  | _ -> false

let submit t spec = rpc t (Protocol.Submit spec)

let expect_stats = function
  | Protocol.Stats_reply s -> s
  | Protocol.Server_error m ->
      raise (Protocol.Protocol_error ("server error: " ^ m))
  | _ -> raise (Protocol.Protocol_error "unexpected reply to stats request")

let get_stats t = expect_stats (rpc t Protocol.Get_stats)
let shutdown t = expect_stats (rpc t Protocol.Shutdown)
