module Parallel = Dl_util.Parallel
module Experiment = Dl_core.Experiment
module Benchmarks = Dl_netlist.Benchmarks
module Bench_format = Dl_netlist.Bench_format

type config = {
  listen : Transport.endpoint;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  domains_per_worker : int;
  cache_dir : string option;
  max_frame : int;
  read_deadline_s : float option;
  remote : Dl_store.Stage.remote option;
  on_job_start : (string -> unit) option;
}

let config ?(workers = 1) ?(queue_capacity = 16) ?(cache_capacity = 32)
    ?(domains_per_worker = Parallel.default_domains ()) ?cache_dir
    ?(max_frame = Protocol.default_max_frame) ?read_deadline_s ?remote
    ?on_job_start ~listen () =
  if workers < 1 then invalid_arg "Server.config: workers < 1";
  { listen; workers; queue_capacity; cache_capacity;
    domains_per_worker; cache_dir; max_frame; read_deadline_s; remote;
    on_job_start }

(* What the scheduler queue carries: whole experiments (the [Submit]
   path) or single stages plus their dependency closure (the cluster
   fan-out path).  The two key spaces are prefixed apart so a
   [Serve_stage "projection"] can never coalesce with a [Submit] whose
   request key is that same projection digest but whose result has a
   different shape. *)
type task =
  | Run_full of Experiment.config
  | Run_stage of Experiment.config * string

type task_result =
  | Full_result of Protocol.result_payload
  | Stage_result of {
      stage : string;
      key : string;
      outcome : Protocol.stage_outcome;
      seconds : float;
    }

let queue_key_full key = "full/" ^ key
let queue_key_stage key = "stage/" ^ key

type conn = {
  fd : Unix.file_descr;
  mutable busy : bool;  (* holds a decoded request whose response is unsent *)
  mutable thread : Thread.t option;
  mutable closed : bool;
}

type state = Serving | Stopping | Stopped

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Transport.endpoint;
  store : Dl_store.Store.t option;
  queue : (task, task_result) Job_queue.t;
  metrics : Metrics.t;
  mutex : Mutex.t;   (* guards conns, state *)
  cond : Condition.t;  (* broadcast on state change *)
  mutable conns : conn list;
  mutable state : state;
  stop_flag : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
  mutable supervisor : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let stopping t = Atomic.get t.stop_flag || locked t (fun () -> t.state <> Serving)

(* --- request handling ---------------------------------------------------- *)

let resolve_circuit = function
  | Protocol.Builtin name -> (
      match Benchmarks.by_name name with
      | Some c -> Ok c
      | None ->
          Error
            (Printf.sprintf "unknown benchmark %S (built-ins: %s)" name
               (String.concat ", " (List.map fst Benchmarks.all))))
  | Protocol.Inline_bench { title; text } -> (
      try Ok (Bench_format.parse_string ~title text) with
      | Bench_format.Parse_error { line; message } ->
          Error (Printf.sprintf "inline bench, line %d: %s" line message)
      | Failure m | Invalid_argument m ->
          Error (Printf.sprintf "inline bench: %s" m))

let config_of_spec t (spec : Protocol.job_spec) circuit =
  Experiment.config ~seed:spec.seed
    ~max_random_vectors:spec.max_random_vectors
    ~target_yield:spec.target_yield ~collapse_faults:spec.collapse_faults
    ~min_weight_ratio:spec.min_weight_ratio ?cache_dir:t.cfg.cache_dir
    ?remote:t.cfg.remote circuit

let retry_after_ms t ~queue_depth =
  let mean = Metrics.mean_service_ms t.metrics in
  let backlog = float_of_int (queue_depth + 1) in
  let workers = float_of_int t.cfg.workers in
  (* Clamp in float space: [int_of_float] on a huge product (slow service
     times x deep backlog) is undefined and can come back negative, which
     a client would read as "retry immediately". *)
  let ms = Float.min 60_000.0 (Float.max 50.0 (mean *. backlog /. workers)) in
  int_of_float ms

let service_ms t0 = (Unix.gettimeofday () -. t0) *. 1000.0

let deliver t ~t0 ~coalesced payload =
  Metrics.incr_completed t.metrics;
  let ms = service_ms t0 in
  Metrics.observe_service_ms t.metrics ms;
  Protocol.Result { payload; coalesced; service_ms = ms }

let handle_submit t (spec : Protocol.job_spec) =
  let t0 = Unix.gettimeofday () in
  match resolve_circuit spec.circuit with
  | Error msg -> Protocol.Server_error msg
  | Ok circuit -> (
      let cfg = config_of_spec t spec circuit in
      let key = Experiment.request_key cfg in
      let deadline =
        Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) spec.deadline_ms
      in
      let already_expired =
        match deadline with Some d -> Unix.gettimeofday () >= d | None -> false
      in
      if already_expired then begin
        Metrics.incr_expired t.metrics;
        Protocol.Expired
      end
      else
        let finish ~coalesced = function
          | Full_result payload -> deliver t ~t0 ~coalesced payload
          | Stage_result _ ->
              Protocol.Server_error "internal: stage result under submit key"
        in
        let await ~coalesced ticket =
          match Job_queue.await t.queue ticket with
          | `Ok r -> finish ~coalesced r
          | `Error msg -> Protocol.Server_error msg
          | `Expired ->
              Metrics.incr_expired t.metrics;
              Protocol.Expired
        in
        match
          Job_queue.submit t.queue ~key:(queue_key_full key) ?deadline
            (Run_full cfg)
        with
        | Job_queue.Rejected { queue_depth } ->
            Metrics.incr_rejected t.metrics;
            Protocol.Rejected
              { retry_after_ms = retry_after_ms t ~queue_depth; queue_depth }
        | Job_queue.Cached r ->
            Metrics.incr_accepted t.metrics;
            Metrics.incr_coalesced t.metrics;
            finish ~coalesced:true r
        | Job_queue.Coalesced ticket ->
            Metrics.incr_accepted t.metrics;
            Metrics.incr_coalesced t.metrics;
            await ~coalesced:true ticket
        | Job_queue.Enqueued ticket ->
            Metrics.incr_accepted t.metrics;
            await ~coalesced:false ticket)

(* --- cluster request handling -------------------------------------------- *)

let handle_serve_stage t (spec : Protocol.job_spec) ~stage =
  let t0 = Unix.gettimeofday () in
  match resolve_circuit spec.circuit with
  | Error msg -> Protocol.Server_error msg
  | Ok circuit -> (
      let cfg = config_of_spec t spec circuit in
      match List.assoc_opt stage (Experiment.stage_keys cfg) with
      | None ->
          Protocol.Server_error
            (Printf.sprintf "unknown stage %S (stages: %s)" stage
               (String.concat ", "
                  (List.map fst (Experiment.stage_keys cfg))))
      | Some stage_key -> (
          let deadline =
            Option.map
              (fun ms -> t0 +. (float_of_int ms /. 1000.0))
              spec.deadline_ms
          in
          let finish = function
            | Stage_result r ->
                Metrics.incr_completed t.metrics;
                Metrics.observe_service_ms t.metrics (service_ms t0);
                Protocol.Stage_done
                  {
                    stage = r.stage;
                    key = r.key;
                    outcome = r.outcome;
                    seconds = r.seconds;
                  }
            | Full_result _ ->
                Protocol.Server_error "internal: full result under stage key"
          in
          let await ticket =
            match Job_queue.await t.queue ticket with
            | `Ok r -> finish r
            | `Error msg -> Protocol.Server_error msg
            | `Expired ->
                Metrics.incr_expired t.metrics;
                Protocol.Expired
          in
          match
            Job_queue.submit t.queue ~key:(queue_key_stage stage_key)
              ?deadline
              (Run_stage (cfg, stage))
          with
          | Job_queue.Rejected { queue_depth } ->
              Metrics.incr_rejected t.metrics;
              Protocol.Rejected
                { retry_after_ms = retry_after_ms t ~queue_depth; queue_depth }
          | Job_queue.Cached r ->
              Metrics.incr_accepted t.metrics;
              Metrics.incr_coalesced t.metrics;
              finish r
          | Job_queue.Coalesced ticket ->
              Metrics.incr_accepted t.metrics;
              Metrics.incr_coalesced t.metrics;
              await ticket
          | Job_queue.Enqueued ticket ->
              Metrics.incr_accepted t.metrics;
              await ticket))

(* Peer store exchange.  [Store_get] never computes — it answers from the
   local artifact store or says so.  [Store_put] validates the offered
   envelope (magic, kind, CRC) before letting it anywhere near disk: a
   corrupt push is acked [false] and discarded, so one bad peer cannot
   poison a store. *)
let handle_store_get t key =
  match t.store with
  | None -> Protocol.Store_missing
  | Some store -> (
      match Dl_store.Store.load store key with
      | None -> Protocol.Store_missing
      | Some data -> Protocol.Store_found (Bytes.to_string data))

let handle_store_put t ~key ~data =
  match t.store with
  | None -> Protocol.Store_ack false
  | Some store -> (
      let bytes = Bytes.of_string data in
      match Dl_store.Codec.inspect ~check_crc:true bytes with
      | Error _ -> Protocol.Store_ack false
      | Ok (kind, version) ->
          Dl_store.Store.put store ~key ~kind ~version bytes;
          Protocol.Store_ack true)

let stats t =
  Metrics.snapshot t.metrics ~queue_depth:(Job_queue.depth t.queue)
    ~in_flight:(Job_queue.running t.queue)

let handle t = function
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Get_stats -> Protocol.Stats_reply (stats t)
  | Protocol.Submit spec -> handle_submit t spec
  | Protocol.Serve_stage { spec; stage } -> handle_serve_stage t spec ~stage
  | Protocol.Store_get key -> handle_store_get t key
  | Protocol.Store_put { key; data } -> handle_store_put t ~key ~data
  | Protocol.Shutdown -> Protocol.Stats_reply (stats t)

(* --- connection threads -------------------------------------------------- *)

let close_conn t conn =
  locked t (fun () ->
      if not conn.closed then begin
        conn.closed <- true;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)

let conn_loop t conn =
  let rec loop () =
    match
      Protocol.recv ~max_frame:t.cfg.max_frame
        ?deadline_s:t.cfg.read_deadline_s Protocol.request_codec conn.fd
    with
    | None -> ()
    | Some req ->
        locked t (fun () -> conn.busy <- true);
        let resp =
          try handle t req
          with exn -> Protocol.Server_error (Printexc.to_string exn)
        in
        Protocol.send Protocol.response_codec conn.fd resp;
        locked t (fun () -> conn.busy <- false);
        if req = Protocol.Shutdown then Atomic.set t.stop_flag true else loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () -> conn.busy <- false);
      close_conn t conn)
    (fun () ->
      try loop () with
      | Protocol.Protocol_error _ | Unix.Unix_error _ | End_of_file -> ())

let accept_loop t =
  let rec loop () =
    if stopping t then ()
    else
      match
        (try `Conn (fst (Unix.accept ~cloexec:true t.listen_fd)) with
        | Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> `Retry
        | Unix.Unix_error _ -> `Stop)
      with
      | `Retry -> loop ()
      | `Stop -> ()
      | `Conn fd ->
          if stopping t then (try Unix.close fd with Unix.Unix_error _ -> ())
          else begin
            let conn = { fd; busy = false; thread = None; closed = false } in
            locked t (fun () -> t.conns <- conn :: t.conns);
            conn.thread <- Some (Thread.create (conn_loop t) conn);
            loop ()
          end
  in
  loop ()

(* --- scheduler workers --------------------------------------------------- *)

let worker_loop t () =
  (* One long-lived pool per worker thread: Parallel.t is not re-entrant,
     so pools are owned, never shared, and reused across jobs. *)
  let pool = Parallel.create ~domains:t.cfg.domains_per_worker () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
  let stage_outcome : Dl_store.Stage.outcome -> Protocol.stage_outcome =
    function
    | Dl_store.Stage.Hit -> Protocol.Stage_hit
    | Dl_store.Stage.Fetched -> Protocol.Stage_fetched
    | Dl_store.Stage.Miss | Dl_store.Stage.Uncached -> Protocol.Stage_computed
  in
  let rec loop () =
    match Job_queue.next t.queue with
    | `Drained -> ()
    | `Job job ->
        Option.iter (fun f -> f (Job_queue.key job)) t.cfg.on_job_start;
        Metrics.incr_executed t.metrics;
        let result =
          try
            match Job_queue.payload job with
            | Run_full cfg ->
                let cfg = { cfg with Experiment.pool = Some pool } in
                let e = Experiment.run cfg in
                Ok
                  (Full_result
                     (Protocol.payload_of_experiment
                        ~key:(Experiment.request_key cfg) e))
            | Run_stage (cfg, stage) -> (
                let cfg = { cfg with Experiment.pool = Some pool } in
                let reports = Experiment.run_stage cfg ~stage in
                match
                  List.find_opt
                    (fun (r : Dl_store.Stage.report) -> r.stage = stage)
                    (List.rev reports)
                with
                | Some r ->
                    Ok
                      (Stage_result
                         {
                           stage;
                           key = r.key;
                           outcome = stage_outcome r.outcome;
                           seconds = r.seconds;
                         })
                | None ->
                    Error
                      (Printf.sprintf "stage %S produced no report" stage))
          with exn ->
            Metrics.incr_failed t.metrics;
            Error (Printexc.to_string exn)
        in
        Job_queue.finish t.queue job result;
        loop ()
  in
  loop ()

(* --- lifecycle ----------------------------------------------------------- *)

(* Remove a leftover socket file, but only when it provably is one (never
   unlink an arbitrary file) and nothing answers on it (never steal a live
   server's address). *)
let prepare_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
          -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if live then
        failwith (path ^ ": a server is already listening on this socket");
      (try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ())
  | _ -> failwith (path ^ ": exists and is not a socket; refusing to remove")

let do_stop t =
  Job_queue.drain t.queue;
  (* Wake the accept thread: shutdown makes a blocked accept(2) return on
     Linux; the throwaway connect covers platforms where it does not. *)
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE
   with Unix.Unix_error _ -> ());
  (try Transport.close_quietly (Transport.connect ~timeout_s:1.0 t.bound)
   with Unix.Unix_error _ -> ());
  Option.iter Thread.join t.accept_thread;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* Workers drain every queued and running job, publishing all results. *)
  List.iter Thread.join t.worker_threads;
  (* Give each connection time to write the response it owes, then close
     under it (shutdown first, so a thread blocked in read wakes). *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_idle () =
    let busy = locked t (fun () -> List.exists (fun c -> c.busy) t.conns) in
    if busy && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.01;
      wait_idle ()
    end
  in
  wait_idle ();
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun c -> Option.iter Thread.join c.thread) conns;
  Job_queue.shutdown t.queue;
  (match t.cfg.listen with
  | Transport.Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Transport.Tcp _ -> ());
  locked t (fun () ->
      t.state <- Stopped;
      Condition.broadcast t.cond)

let supervisor_loop t =
  let rec loop () =
    if Atomic.get t.stop_flag then begin
      locked t (fun () -> t.state <- Stopping);
      do_stop t
    end
    else begin
      Thread.delay 0.05;
      loop ()
    end
  in
  loop ()

let start cfg =
  (match cfg.listen with
  | Transport.Unix_socket path -> prepare_socket path
  | Transport.Tcp _ -> ());
  let listen_fd = Transport.listen cfg.listen in
  let bound = Transport.bound_endpoint listen_fd cfg.listen in
  let store = Option.map Dl_store.Store.open_ cfg.cache_dir in
  let t =
    {
      cfg;
      listen_fd;
      bound;
      store;
      queue =
        Job_queue.create ~cache_capacity:cfg.cache_capacity
          ~capacity:cfg.queue_capacity ();
      metrics = Metrics.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      conns = [];
      state = Serving;
      stop_flag = Atomic.make false;
      accept_thread = None;
      worker_threads = [];
      supervisor = None;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.worker_threads <-
    List.init cfg.workers (fun _ -> Thread.create (worker_loop t) ());
  t.supervisor <- Some (Thread.create supervisor_loop t);
  t

let bound t = t.bound
let request_stop t = Atomic.set t.stop_flag true

let wait t =
  locked t (fun () ->
      while t.state <> Stopped do
        Condition.wait t.cond t.mutex
      done);
  Option.iter Thread.join t.supervisor

let stop t =
  request_stop t;
  wait t

let run ?on_ready cfg =
  let t = start cfg in
  let handler = Sys.Signal_handle (fun _ -> request_stop t) in
  let previous =
    List.map (fun s -> (s, Sys.signal s handler)) [ Sys.sigterm; Sys.sigint ]
  in
  Option.iter (fun f -> f t) on_ready;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (s, old) -> Sys.set_signal s old) previous)
    (fun () -> wait t)
