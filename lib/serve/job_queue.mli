(** Bounded FIFO job queue with request coalescing, per-waiter deadlines
    and a small result cache — the admission-control heart of the server.

    Every job is filed under a caller-supplied {e key} (the server uses
    {!Dl_core.Experiment.request_key}).  Submitting a key that is already
    queued or running attaches the caller as an additional waiter of the
    existing job; submitting a key whose result is still in the bounded
    cache answers immediately.  Either way only one execution ever happens
    per key — the fan-out the acceptance test counts.

    Deadlines are per waiter: a waiter whose absolute deadline passes
    while the job is unfinished gets [`Expired] and detaches.  A {e
    queued} job whose waiters have all detached (or whose latest waiter
    deadline has already passed) is cancelled at dispatch, never run; a
    running job always completes.

    Threads: [submit]/[await] are called from connection threads, [next]/
    [finish] from scheduler workers; all state is guarded by one internal
    lock and one condition, broadcast by a built-in ticker so deadline
    waiters wake without timed waits (OCaml's [Condition] has none). *)

type ('p, 'r) t
(** ['p] is the job payload handed to the worker, ['r] the result. *)

type ('p, 'r) job
type ('p, 'r) ticket

val create : ?cache_capacity:int -> capacity:int -> unit -> ('p, 'r) t
(** [capacity] bounds the number of {e queued} jobs (running jobs are not
    counted); [cache_capacity] (default 32, 0 disables) bounds the
    completed-result cache.  Spawns the ticker thread — call {!shutdown}
    to reclaim it. *)

type ('p, 'r) admission =
  | Enqueued of ('p, 'r) ticket   (** New job; this caller is its first waiter. *)
  | Coalesced of ('p, 'r) ticket  (** Attached to an identical in-flight job. *)
  | Cached of 'r                  (** Answered from the result cache. *)
  | Rejected of { queue_depth : int }
      (** Queue full, or the queue is draining. *)

val submit :
  ('p, 'r) t -> key:string -> ?deadline:float -> 'p -> ('p, 'r) admission
(** [deadline] is absolute ([Unix.gettimeofday] scale). *)

val await :
  ('p, 'r) t -> ('p, 'r) ticket -> [ `Ok of 'r | `Error of string | `Expired ]
(** Block until the ticket's job finishes or the ticket's deadline passes.
    Detaches the waiter in every case; awaiting a ticket twice returns
    [`Error]. *)

val next : ('p, 'r) t -> [ `Job of ('p, 'r) job | `Drained ]
(** Worker side: block for the next runnable job, transparently cancelling
    queued jobs with no live waiters left.  [`Drained] once {!drain} was
    called and the queue is empty — the worker's signal to exit. *)

val payload : ('p, 'r) job -> 'p
val key : ('p, 'r) job -> string

val finish : ('p, 'r) t -> ('p, 'r) job -> ('r, string) result -> unit
(** Publish the result, wake all waiters, and (on [Ok]) insert it into the
    result cache. *)

val drain : ('p, 'r) t -> unit
(** Stop admitting: subsequent {!submit}s are [Rejected]; workers keep
    draining already-queued jobs until {!next} returns [`Drained]. *)

val draining : ('p, 'r) t -> bool

val depth : ('p, 'r) t -> int
(** Queued (not yet dispatched) jobs, including not-yet-skipped cancelled
    ones. *)

val running : ('p, 'r) t -> int

val cancelled : ('p, 'r) t -> int
(** Queued jobs cancelled at dispatch because every waiter had detached or
    expired — they never ran. *)

val shutdown : ('p, 'r) t -> unit
(** Drain (if not already) and join the ticker thread.  Idempotent. *)
