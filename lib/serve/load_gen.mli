(** Open-loop load generator for the projection server.

    The generator first {e plans} a complete traffic schedule — arrival
    instants (Poisson at the target rate), workload class per request
    (weighted mix), job seed (drawn from a small pool of [distinct]
    variants per class, so coalescing and the result cache see repeats),
    and an optional per-request deadline — as a pure function of a
    {!Dl_util.Seeds} root.  Replay then walks the schedule on wall clock,
    {e independently of responses}: a slow server does not throttle the
    arrival process, which is what makes the measured backpressure
    (rejections, expiries, tail latency) meaningful.

    Workload classes are resolved by name against
    {!Dl_netlist.Benchmarks.by_name} first (sent as [Builtin]) and
    {!Dl_netlist.Generator.Family.by_name} second (built locally at
    [gates] gates and shipped as [Inline_bench]).

    The rendered {!trace_to_string} depends only on the plan, so two runs
    with the same config produce byte-identical traces — the replay
    contract [dlproj bench-serve] is tested against. *)

type config = {
  rate : float;          (** Mean arrival rate, requests/second. *)
  duration : float;      (** Schedule horizon, seconds. *)
  mix : (string * int) list;  (** [(class, weight)]; weights positive. *)
  seed : int;            (** Root of every stream the plan draws from. *)
  gates : int;           (** Size of generated family circuits. *)
  distinct : int;        (** Job-seed pool size per class. *)
  deadline_ms : (int * int) option;
      (** Uniform per-request deadline range; [None] = no deadlines. *)
  max_random_vectors : int;  (** Forwarded to each {!Protocol.job_spec}. *)
}

val config :
  ?rate:float -> ?duration:float -> ?mix:(string * int) list -> ?seed:int ->
  ?gates:int -> ?distinct:int -> ?deadline_ms:int * int ->
  ?max_random_vectors:int -> unit -> config
(** Defaults: 20 req/s for 3 s, mix [["c432s_small", 1]], seed 1, 120
    gates, 4 distinct seeds per class, no deadlines, 128 random vectors. *)

val mix_of_string : string -> (string * int) list
(** Parse ["c432s:3,xor-heavy:1"]; a bare name means weight 1.
    @raise Invalid_argument on empty input or a non-positive weight. *)

type planned = {
  index : int;
  at_s : float;          (** Offset from replay start, seconds. *)
  class_name : string;
  job_seed : int;
  deadline : int option; (** Milliseconds, per {!config.deadline_ms}. *)
}

val plan : config -> planned array
(** Deterministic in [config] alone.
    @raise Invalid_argument on a non-positive rate/duration/weight/
    [distinct], an empty mix, or a class name neither a benchmark nor a
    registered family. *)

val trace_to_string : config -> planned array -> string
(** Render the schedule, one [req] line per request plus a header echoing
    the config — byte-identical across runs with equal configs. *)

type outcome =
  | Served of { coalesced : bool; service_ms : float }
      (** [service_ms] is the server-side figure from the response. *)
  | Rejected of { retry_after_ms : int }
  | Expired
  | Failed of string  (** Server error, connection loss, or decode error. *)

type record = {
  planned : planned;
  sent_at_s : float;  (** Actual send offset (>= [planned.at_s]). *)
  rtt_ms : float;     (** Client-observed send-to-answer wall clock. *)
  outcome : outcome;
}

type report = {
  planned_n : int;
  sent : int;
  served : int;
  coalesced : int;
  rejected : int;
  expired : int;
  failed : int;
  elapsed_s : float;
  offered_rate : float;    (** [planned_n / duration]. *)
  achieved_rate : float;   (** Served answers per elapsed second. *)
  rejection_rate : float;  (** [rejected / sent]; 0 when nothing sent. *)
  p50_ms : float;          (** Client RTT percentiles over served
                               requests ({!Dl_util.Latency} underneath). *)
  p99_ms : float;
  p999_ms : float;
  mean_ms : float;
  max_ms : float;
}

val run :
  ?clients:int -> socket:Transport.endpoint -> config -> record array * report
(** Replay the plan against a listening server with [clients] (default 4)
    concurrent connections, request [i] on connection [i mod clients].
    Records are indexed like the plan.  A connection that dies is
    re-established for the next request; unreachable sends are [Failed].
    @raise Unix.Unix_error only if the very first connections fail. *)

val summarize : config -> elapsed_s:float -> record array -> report

val report_to_json : report -> string
(** One stable JSON object (fixed field order, round-trippable floats). *)

val pp_report : Format.formatter -> report -> unit
