type 'r state =
  | Queued
  | Running
  | Done of ('r, string) result
  | Cancelled

type ('p, 'r) job = {
  jkey : string;
  jpayload : 'p;
  mutable state : 'r state;
  mutable waiters : int;
  (* Latest deadline over live waiters; [None] once any waiter has no
     deadline.  Only consulted at dispatch, to cancel a queued job whose
     every waiter deadline already passed even if the waiters have not yet
     woken to detach themselves. *)
  mutable latest_deadline : float option;
}

type ('p, 'r) ticket = {
  tjob : ('p, 'r) job;
  tdeadline : float option;
  mutable spent : bool;
}

type ('p, 'r) t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* broadcast on any state change and by the ticker *)
  capacity : int;
  cache_capacity : int;
  queue : ('p, 'r) job Queue.t;
  inflight : (string, ('p, 'r) job) Hashtbl.t;  (* Queued + Running *)
  cache : (string, 'r) Hashtbl.t;
  cache_order : string Queue.t;  (* insertion order, for bounded eviction *)
  mutable draining : bool;
  mutable running : int;
  mutable cancelled : int;
  mutable ticker_stop : bool;
  mutable ticker : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The ticker exists only to bound how long a deadline waiter can sleep:
   OCaml's Condition has no timed wait, so someone must broadcast
   periodically for waiters to recheck the clock. *)
let tick_interval = 0.02

let ticker_loop t =
  let rec loop () =
    Thread.delay tick_interval;
    let stop =
      locked t (fun () ->
          Condition.broadcast t.cond;
          t.ticker_stop)
    in
    if not stop then loop ()
  in
  loop ()

let create ?(cache_capacity = 32) ~capacity () =
  if capacity < 1 then invalid_arg "Job_queue.create: capacity < 1";
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      capacity;
      cache_capacity;
      queue = Queue.create ();
      inflight = Hashtbl.create 16;
      cache = Hashtbl.create 16;
      cache_order = Queue.create ();
      draining = false;
      running = 0;
      cancelled = 0;
      ticker_stop = false;
      ticker = None;
    }
  in
  t.ticker <- Some (Thread.create ticker_loop t);
  t

type ('p, 'r) admission =
  | Enqueued of ('p, 'r) ticket
  | Coalesced of ('p, 'r) ticket
  | Cached of 'r
  | Rejected of { queue_depth : int }

let attach job deadline =
  job.waiters <- job.waiters + 1;
  (match (job.latest_deadline, deadline) with
  | None, _ -> ()
  | Some _, None -> job.latest_deadline <- None
  | Some d0, Some d -> if d > d0 then job.latest_deadline <- Some d);
  { tjob = job; tdeadline = deadline; spent = false }

let submit t ~key ?deadline payload =
  locked t (fun () ->
      match Hashtbl.find_opt t.inflight key with
      | Some job -> Coalesced (attach job deadline)
      | None -> (
          match Hashtbl.find_opt t.cache key with
          | Some r -> Cached r
          | None ->
              if t.draining || Queue.length t.queue >= t.capacity then
                Rejected { queue_depth = Queue.length t.queue }
              else begin
                let job =
                  {
                    jkey = key;
                    jpayload = payload;
                    state = Queued;
                    waiters = 0;
                    latest_deadline = Some neg_infinity;
                  }
                in
                let ticket = attach job deadline in
                Hashtbl.replace t.inflight key job;
                Queue.add job t.queue;
                Condition.broadcast t.cond;
                Enqueued ticket
              end))

let detach job =
  job.waiters <- max 0 (job.waiters - 1)

let await t ticket =
  locked t (fun () ->
      if ticket.spent then `Error "ticket already awaited"
      else begin
        ticket.spent <- true;
        let job = ticket.tjob in
        let rec wait () =
          match job.state with
          | Done (Ok r) -> detach job; `Ok r
          | Done (Error e) -> detach job; `Error e
          | Cancelled -> detach job; `Expired
          | Queued | Running -> (
              match ticket.tdeadline with
              | Some d when Unix.gettimeofday () >= d -> detach job; `Expired
              | _ ->
                  Condition.wait t.cond t.mutex;
                  wait ())
        in
        wait ()
      end)

let expired_job job now =
  job.waiters = 0
  || match job.latest_deadline with Some d -> now >= d | None -> false

let next t =
  locked t (fun () ->
      let rec loop () =
        match Queue.take_opt t.queue with
        | Some job ->
            if expired_job job (Unix.gettimeofday ()) then begin
              job.state <- Cancelled;
              Hashtbl.remove t.inflight job.jkey;
              t.cancelled <- t.cancelled + 1;
              Condition.broadcast t.cond;
              loop ()
            end
            else begin
              job.state <- Running;
              t.running <- t.running + 1;
              `Job job
            end
        | None ->
            if t.draining then `Drained
            else begin
              Condition.wait t.cond t.mutex;
              loop ()
            end
      in
      loop ())

let payload job = job.jpayload
let key job = job.jkey

let cache_insert t key r =
  if t.cache_capacity > 0 then begin
    if not (Hashtbl.mem t.cache key) then Queue.add key t.cache_order;
    Hashtbl.replace t.cache key r;
    while Hashtbl.length t.cache > t.cache_capacity do
      match Queue.take_opt t.cache_order with
      | Some victim -> Hashtbl.remove t.cache victim
      | None -> Hashtbl.reset t.cache
    done
  end

let finish t job result =
  locked t (fun () ->
      job.state <- Done result;
      Hashtbl.remove t.inflight job.jkey;
      t.running <- t.running - 1;
      (match result with
      | Ok r -> cache_insert t job.jkey r
      | Error _ -> ());
      Condition.broadcast t.cond)

let drain t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.cond)

let draining t = locked t (fun () -> t.draining)
let depth t = locked t (fun () -> Queue.length t.queue)
let running t = locked t (fun () -> t.running)
let cancelled t = locked t (fun () -> t.cancelled)

let shutdown t =
  drain t;
  let ticker =
    locked t (fun () ->
        t.ticker_stop <- true;
        let th = t.ticker in
        t.ticker <- None;
        th)
  in
  Option.iter Thread.join ticker
