(** Connection endpoints for the projection service: the original
    Unix-domain socket, or TCP for the multi-node fleet ({!Dl_cluster}).

    Both transports speak the identical wire protocol ({!Protocol}): the
    4-byte length prefix and the CRC-framed {!Dl_store.Codec} envelopes
    are byte-for-byte the same on either stream; only connection
    establishment differs. *)

type endpoint =
  | Unix_socket of string  (** Filesystem path of the listening socket. *)
  | Tcp of string * int    (** Host (name or dotted quad) and port. *)

val to_string : endpoint -> string
(** [host:port] for TCP, the bare path for a Unix socket. *)

val of_string : string -> endpoint
(** Inverse of {!to_string}: a [host:port] suffix with a numeric port
    parses as {!Tcp}; anything else (including paths containing [/]) is a
    {!Unix_socket} path.  Raises [Invalid_argument] on the empty string. *)

val is_tcp : endpoint -> bool

val sockaddr : endpoint -> Unix.sockaddr
(** Resolves the host for TCP endpoints.
    @raise Unix.Unix_error [EHOSTUNREACH] when the name does not resolve. *)

val connect : ?timeout_s:float -> endpoint -> Unix.file_descr
(** Connected stream socket (TCP_NODELAY set on TCP).  [timeout_s]
    (default 5 s) bounds TCP connection establishment — a dead remote
    host fails with [ETIMEDOUT] instead of hanging for the kernel's
    SYN-retry minutes.  Unix-socket connects are local and immediate.
    @raise Unix.Unix_error on refusal, timeout or unreachable host. *)

val listen : ?backlog:int -> endpoint -> Unix.file_descr
(** Bound + listening socket ([SO_REUSEADDR] on TCP).  Binding
    [Tcp (host, 0)] picks an ephemeral port; recover it with
    {!bound_endpoint}. *)

val bound_endpoint : Unix.file_descr -> endpoint -> endpoint
(** The endpoint actually bound by [listen] (resolves port 0). *)

val close_quietly : Unix.file_descr -> unit
