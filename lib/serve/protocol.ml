module Binary = Dl_util.Binary
module Codec = Dl_store.Codec
module Artifact = Dl_store.Artifact
module Coverage = Dl_fault.Coverage
module Experiment = Dl_core.Experiment

type circuit_spec =
  | Builtin of string
  | Inline_bench of { title : string; text : string }

type job_spec = {
  circuit : circuit_spec;
  seed : int;
  max_random_vectors : int;
  target_yield : float;
  collapse_faults : bool;
  min_weight_ratio : float;
  deadline_ms : int option;
}

let job_spec ?(seed = 7) ?(max_random_vectors = 256) ?(target_yield = 0.75)
    ?(collapse_faults = true) ?(min_weight_ratio = 0.0) ?deadline_ms circuit =
  { circuit; seed; max_random_vectors; target_yield; collapse_faults;
    min_weight_ratio; deadline_ms }

type request =
  | Ping
  | Get_stats
  | Submit of job_spec
  | Serve_stage of { spec : job_spec; stage : string }
  | Store_get of string
  | Store_put of { key : string; data : string }
  | Shutdown

type stage_outcome = Stage_hit | Stage_fetched | Stage_computed

type result_payload = {
  circuit_title : string;
  vectors : int;
  stuck_fault_count : int;
  realistic_fault_count : int;
  t_final : float;
  theta_final : float;
  gamma_final : float;
  theta_iddq_final : float;
  target_yield : float;
  summary : Artifact.summary;
  request_key : string;
  stage_hits : int;
  stage_misses : int;
}

type served = {
  payload : result_payload;
  coalesced : bool;
  service_ms : float;
}

type stats = {
  accepted : int;
  rejected : int;
  coalesced : int;
  executed : int;
  completed : int;
  expired : int;
  failed : int;
  queue_depth : int;
  in_flight : int;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  uptime_s : float;
}

type response =
  | Pong
  | Stats_reply of stats
  | Result of served
  | Rejected of { retry_after_ms : int; queue_depth : int }
  | Expired
  | Server_error of string
  | Stage_done of {
      stage : string;
      key : string;
      outcome : stage_outcome;
      seconds : float;
    }
  | Store_found of string
  | Store_missing
  | Store_ack of bool

(* --- codecs -------------------------------------------------------------- *)

let bad fmt = Printf.ksprintf (fun m -> raise (Binary.Corrupt m)) fmt

let write_circuit_spec buf = function
  | Builtin name ->
      Binary.write_byte buf 0;
      Binary.write_string buf name
  | Inline_bench { title; text } ->
      Binary.write_byte buf 1;
      Binary.write_string buf title;
      Binary.write_string buf text

let read_circuit_spec cur =
  match Binary.read_byte cur with
  | 0 -> Builtin (Binary.read_string cur)
  | 1 ->
      let title = Binary.read_string cur in
      let text = Binary.read_string cur in
      Inline_bench { title; text }
  | t -> bad "unknown circuit-spec tag %d" t

let write_job_spec buf s =
  write_circuit_spec buf s.circuit;
  Binary.write_int buf s.seed;
  Binary.write_varint buf s.max_random_vectors;
  Binary.write_float buf s.target_yield;
  Binary.write_bool buf s.collapse_faults;
  Binary.write_float buf s.min_weight_ratio;
  Binary.write_option Binary.write_varint buf s.deadline_ms

let read_job_spec cur =
  let circuit = read_circuit_spec cur in
  let seed = Binary.read_int cur in
  let max_random_vectors = Binary.read_varint cur in
  let target_yield = Binary.read_float cur in
  let collapse_faults = Binary.read_bool cur in
  let min_weight_ratio = Binary.read_float cur in
  let deadline_ms = Binary.read_option Binary.read_varint cur in
  { circuit; seed; max_random_vectors; target_yield; collapse_faults;
    min_weight_ratio; deadline_ms }

let request_codec : request Codec.t =
  {
    Codec.kind = "serve-req";
    (* v2: cluster traffic — per-stage jobs and peer store exchange. *)
    version = 2;
    encode =
      (fun buf -> function
        | Ping -> Binary.write_byte buf 0
        | Get_stats -> Binary.write_byte buf 1
        | Submit spec ->
            Binary.write_byte buf 2;
            write_job_spec buf spec
        | Shutdown -> Binary.write_byte buf 3
        | Serve_stage { spec; stage } ->
            Binary.write_byte buf 4;
            write_job_spec buf spec;
            Binary.write_string buf stage
        | Store_get key ->
            Binary.write_byte buf 5;
            Binary.write_string buf key
        | Store_put { key; data } ->
            Binary.write_byte buf 6;
            Binary.write_string buf key;
            Binary.write_string buf data);
    decode =
      (fun cur ->
        match Binary.read_byte cur with
        | 0 -> Ping
        | 1 -> Get_stats
        | 2 -> Submit (read_job_spec cur)
        | 3 -> Shutdown
        | 4 ->
            let spec = read_job_spec cur in
            let stage = Binary.read_string cur in
            Serve_stage { spec; stage }
        | 5 -> Store_get (Binary.read_string cur)
        | 6 ->
            let key = Binary.read_string cur in
            let data = Binary.read_string cur in
            Store_put { key; data }
        | t -> bad "unknown request tag %d" t);
  }

let write_summary buf (s : Artifact.summary) = Artifact.summary.Codec.encode buf s
let read_summary cur : Artifact.summary = Artifact.summary.Codec.decode cur

let write_payload buf p =
  Binary.write_string buf p.circuit_title;
  Binary.write_varint buf p.vectors;
  Binary.write_varint buf p.stuck_fault_count;
  Binary.write_varint buf p.realistic_fault_count;
  Binary.write_float buf p.t_final;
  Binary.write_float buf p.theta_final;
  Binary.write_float buf p.gamma_final;
  Binary.write_float buf p.theta_iddq_final;
  Binary.write_float buf p.target_yield;
  write_summary buf p.summary;
  Binary.write_string buf p.request_key;
  Binary.write_varint buf p.stage_hits;
  Binary.write_varint buf p.stage_misses

let read_payload cur =
  let circuit_title = Binary.read_string cur in
  let vectors = Binary.read_varint cur in
  let stuck_fault_count = Binary.read_varint cur in
  let realistic_fault_count = Binary.read_varint cur in
  let t_final = Binary.read_float cur in
  let theta_final = Binary.read_float cur in
  let gamma_final = Binary.read_float cur in
  let theta_iddq_final = Binary.read_float cur in
  let target_yield = Binary.read_float cur in
  let summary = read_summary cur in
  let request_key = Binary.read_string cur in
  let stage_hits = Binary.read_varint cur in
  let stage_misses = Binary.read_varint cur in
  { circuit_title; vectors; stuck_fault_count; realistic_fault_count;
    t_final; theta_final; gamma_final; theta_iddq_final; target_yield;
    summary; request_key; stage_hits; stage_misses }

let write_stats buf s =
  Binary.write_varint buf s.accepted;
  Binary.write_varint buf s.rejected;
  Binary.write_varint buf s.coalesced;
  Binary.write_varint buf s.executed;
  Binary.write_varint buf s.completed;
  Binary.write_varint buf s.expired;
  Binary.write_varint buf s.failed;
  Binary.write_varint buf s.queue_depth;
  Binary.write_varint buf s.in_flight;
  Binary.write_float buf s.p50_ms;
  Binary.write_float buf s.p99_ms;
  Binary.write_float buf s.p999_ms;
  Binary.write_float buf s.uptime_s

let read_stats cur =
  let accepted = Binary.read_varint cur in
  let rejected = Binary.read_varint cur in
  let coalesced = Binary.read_varint cur in
  let executed = Binary.read_varint cur in
  let completed = Binary.read_varint cur in
  let expired = Binary.read_varint cur in
  let failed = Binary.read_varint cur in
  let queue_depth = Binary.read_varint cur in
  let in_flight = Binary.read_varint cur in
  let p50_ms = Binary.read_float cur in
  let p99_ms = Binary.read_float cur in
  let p999_ms = Binary.read_float cur in
  let uptime_s = Binary.read_float cur in
  { accepted; rejected; coalesced; executed; completed; expired; failed;
    queue_depth; in_flight; p50_ms; p99_ms; p999_ms; uptime_s }

let write_stage_outcome buf = function
  | Stage_hit -> Binary.write_byte buf 0
  | Stage_fetched -> Binary.write_byte buf 1
  | Stage_computed -> Binary.write_byte buf 2

let read_stage_outcome cur =
  match Binary.read_byte cur with
  | 0 -> Stage_hit
  | 1 -> Stage_fetched
  | 2 -> Stage_computed
  | t -> bad "unknown stage-outcome tag %d" t

let response_codec : response Codec.t =
  {
    Codec.kind = "serve-resp";
    (* v2: stats grew p999_ms.  v3: cluster replies. *)
    version = 3;
    encode =
      (fun buf -> function
        | Pong -> Binary.write_byte buf 0
        | Stats_reply s ->
            Binary.write_byte buf 1;
            write_stats buf s
        | Result r ->
            Binary.write_byte buf 2;
            write_payload buf r.payload;
            Binary.write_bool buf r.coalesced;
            Binary.write_float buf r.service_ms
        | Rejected { retry_after_ms; queue_depth } ->
            Binary.write_byte buf 3;
            Binary.write_varint buf retry_after_ms;
            Binary.write_varint buf queue_depth
        | Expired -> Binary.write_byte buf 4
        | Server_error msg ->
            Binary.write_byte buf 5;
            Binary.write_string buf msg
        | Stage_done { stage; key; outcome; seconds } ->
            Binary.write_byte buf 6;
            Binary.write_string buf stage;
            Binary.write_string buf key;
            write_stage_outcome buf outcome;
            Binary.write_float buf seconds
        | Store_found data ->
            Binary.write_byte buf 7;
            Binary.write_string buf data
        | Store_missing -> Binary.write_byte buf 8
        | Store_ack ok ->
            Binary.write_byte buf 9;
            Binary.write_bool buf ok);
    decode =
      (fun cur ->
        match Binary.read_byte cur with
        | 0 -> Pong
        | 1 -> Stats_reply (read_stats cur)
        | 2 ->
            let payload = read_payload cur in
            let coalesced = Binary.read_bool cur in
            let service_ms = Binary.read_float cur in
            Result { payload; coalesced; service_ms }
        | 3 ->
            let retry_after_ms = Binary.read_varint cur in
            let queue_depth = Binary.read_varint cur in
            Rejected { retry_after_ms; queue_depth }
        | 4 -> Expired
        | 5 -> Server_error (Binary.read_string cur)
        | 6 ->
            let stage = Binary.read_string cur in
            let key = Binary.read_string cur in
            let outcome = read_stage_outcome cur in
            let seconds = Binary.read_float cur in
            Stage_done { stage; key; outcome; seconds }
        | 7 -> Store_found (Binary.read_string cur)
        | 8 -> Store_missing
        | 9 -> Store_ack (Binary.read_bool cur)
        | t -> bad "unknown response tag %d" t);
  }

(* --- framing ------------------------------------------------------------- *)

let default_max_frame = 16 * 1024 * 1024

exception Protocol_error of string

let proto_error fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

let rec retry_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let really_write fd bytes =
  let len = Bytes.length bytes in
  let pos = ref 0 in
  while !pos < len do
    let n = retry_intr (fun () -> Unix.write fd bytes !pos (len - !pos)) in
    if n = 0 then proto_error "short write on socket";
    pos := !pos + n
  done

let wait_readable fd deadline =
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then proto_error "frame read deadline expired";
    match Unix.select [ fd ] [] [] remaining with
    | [], _, _ -> proto_error "frame read deadline expired"
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* [really_read ?deadline fd buf start len] fills [buf.[start..start+len)];
   returns the byte count actually read, which is short only at EOF.
   [deadline] is an absolute wall-clock instant past which waiting for more
   bytes raises {!Protocol_error} — slow-loris protection for mid-frame
   stalls. *)
let really_read ?deadline fd buf start len =
  let pos = ref start in
  let stop = start + len in
  let eof = ref false in
  while !pos < stop && not !eof do
    (match deadline with Some d -> wait_readable fd d | None -> ());
    let n = retry_intr (fun () -> Unix.read fd buf !pos (stop - !pos)) in
    if n = 0 then eof := true else pos := !pos + n
  done;
  !pos - start

let write_frame fd payload =
  let len = Bytes.length payload in
  let frame = Bytes.create (4 + len) in
  Bytes.set_int32_le frame 0 (Int32.of_int len);
  Bytes.blit payload 0 frame 4 len;
  really_write fd frame

let read_frame ?(max_frame = default_max_frame) ?deadline_s fd =
  let header = Bytes.create 4 in
  (* Wait for the first byte without a deadline: an idle connection is
     not a violation.  The clock starts once a frame has begun — from
     there the peer owes us the whole frame within [deadline_s]. *)
  match really_read fd header 0 1 with
  | 0 -> None (* clean EOF at a frame boundary *)
  | _ ->
      let deadline =
        Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s
      in
      let got = really_read ?deadline fd header 1 3 in
      if got < 3 then
        proto_error "truncated frame header (%d of 4 bytes)" (1 + got);
      let len = Int32.to_int (Bytes.get_int32_le header 0) in
      if len < 0 || len > max_frame then
        proto_error "frame length %d exceeds limit %d" len max_frame;
      let payload = Bytes.create len in
      let got = really_read ?deadline fd payload 0 len in
      if got < len then
        proto_error "truncated frame body (%d of %d bytes)" got len;
      Some payload

let send codec fd value = write_frame fd (Codec.to_bytes codec value)

let recv ?max_frame ?deadline_s codec fd =
  match read_frame ?max_frame ?deadline_s fd with
  | None -> None
  | Some data -> (
      match Codec.of_bytes codec data with
      | Ok v -> Some v
      | Error e -> proto_error "bad frame: %s" (Codec.error_to_string e))

(* --- shared rendering ---------------------------------------------------- *)

let payload_of_experiment ~key (e : Experiment.t) =
  let n = Array.length e.vectors in
  let hits, misses =
    List.fold_left
      (fun (h, m) (r : Dl_store.Stage.report) ->
        match r.outcome with
        | Dl_store.Stage.Hit | Dl_store.Stage.Fetched -> (h + 1, m)
        | Dl_store.Stage.Miss | Dl_store.Stage.Uncached -> (h, m + 1))
      (0, 0) e.stage_reports
  in
  {
    circuit_title = e.mapped_circuit.Dl_netlist.Circuit.title;
    vectors = n;
    stuck_fault_count = Array.length e.stuck_faults;
    realistic_fault_count = Array.length e.extraction.faults;
    t_final = Coverage.at e.t_curve n;
    theta_final = Coverage.at e.theta_curve n;
    gamma_final = Coverage.at e.gamma_curve n;
    theta_iddq_final = Coverage.at e.theta_iddq_curve n;
    target_yield = e.yield;
    summary =
      {
        Artifact.text = e.summary;
        fit_r = e.fit.Dl_core.Projection.params.r;
        fit_theta_max = e.fit.params.theta_max;
        fit_rmse = e.fit.rmse;
        fit_rmse_log10 = (e.fit.rmse_scale = Dl_core.Projection.Log10);
        scale_factor = e.scale_factor;
      };
    request_key = key;
    stage_hits = hits;
    stage_misses = misses;
  }

(* Minimal JSON emission: objects in a fixed field order, floats printed
   round-trippably, strings escaped per RFC 8259 (UTF-8 passes through). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then
    (* %.17g round-trips every double; strip nothing for stability. *)
    Printf.sprintf "%.17g" f
  else "null"

let served_to_json r =
  let p = r.payload in
  let s = p.summary in
  (* NB: every string field goes through [json_escape] inside plain quotes.
     [%S] would escape a second time in OCaml (not JSON) syntax, turning
     bytes >= 0x80 into invalid "\165"-style escapes. *)
  Printf.sprintf
    "{\"circuit\": \"%s\", \"vectors\": %d, \"stuck_faults\": %d, \
     \"realistic_faults\": %d, \"coverage\": {\"t\": %s, \"theta\": %s, \
     \"gamma\": %s, \"theta_iddq\": %s}, \"yield\": %s, \"fit\": {\"r\": %s, \
     \"theta_max\": %s, \"rmse\": %s, \"rmse_scale\": \"%s\"}, \
     \"scale_factor\": %s, \"request_key\": \"%s\", \"cache\": \
     {\"stage_hits\": %d, \"stage_misses\": %d}, \"coalesced\": %b, \
     \"service_ms\": %s, \"summary\": \"%s\"}"
    (json_escape p.circuit_title)
    p.vectors p.stuck_fault_count p.realistic_fault_count
    (json_float p.t_final) (json_float p.theta_final)
    (json_float p.gamma_final) (json_float p.theta_iddq_final)
    (json_float p.target_yield) (json_float s.Artifact.fit_r)
    (json_float s.fit_theta_max) (json_float s.fit_rmse)
    (if s.fit_rmse_log10 then "log10" else "linear")
    (json_float s.scale_factor) (json_escape p.request_key) p.stage_hits
    p.stage_misses r.coalesced (json_float r.service_ms)
    (json_escape s.text)

let pp_served ppf r =
  let p = r.payload in
  Format.fprintf ppf "%s@." p.summary.Artifact.text;
  Format.fprintf ppf
    "fitted eq. 11: R = %.2f, θmax = %.3f (rmse %.4f, %s)@."
    p.summary.fit_r p.summary.fit_theta_max p.summary.fit_rmse
    (if p.summary.fit_rmse_log10 then "log10 of DL" else "linear");
  Format.fprintf ppf
    "served in %.1f ms%s (stage hits %d, misses %d); request key %s@."
    r.service_ms
    (if r.coalesced then " (coalesced)" else "")
    p.stage_hits p.stage_misses
    (String.sub p.request_key 0 (min 12 (String.length p.request_key)))

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>accepted   %6d   (coalesced %d, executed %d)@,\
     rejected   %6d@,\
     completed  %6d   (expired %d, failed %d)@,\
     queue      %6d deep, %d in flight@,\
     latency    p50 %s ms, p99 %s ms, p999 %s ms@,\
     uptime     %.1f s@]"
    s.accepted s.coalesced s.executed s.rejected s.completed s.expired
    s.failed s.queue_depth s.in_flight
    (if Float.is_finite s.p50_ms then Printf.sprintf "%.1f" s.p50_ms else "-")
    (if Float.is_finite s.p99_ms then Printf.sprintf "%.1f" s.p99_ms else "-")
    (if Float.is_finite s.p999_ms then Printf.sprintf "%.1f" s.p999_ms
     else "-")
    s.uptime_s
