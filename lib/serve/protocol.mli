(** Wire protocol of the projection server ({!Server}/{!Client}).

    Every message travels as one {e frame}: a 4-byte little-endian length
    prefix followed by exactly that many bytes of a {!Dl_store.Codec}
    envelope (magic, kind, version byte, varint-framed payload, CRC-32
    trailer).  The envelope reuses the artifact-store framing wholesale, so
    the server rejects truncated, bit-flipped or stale-version frames the
    same way the store rejects corrupt artifacts: loudly, before any
    payload decoder runs.

    Requests carry a circuit (a built-in benchmark name or inline [.bench]
    text) plus the {!Dl_core.Experiment.config} overrides that are part of
    the request key; responses carry the summary/fit artifact already
    defined by {!Dl_store.Artifact.summary}, so a served answer is framed
    exactly like the cached projection-stage artifact it corresponds to. *)

(** {2 Messages} *)

type circuit_spec =
  | Builtin of string  (** A {!Dl_netlist.Benchmarks.by_name} name. *)
  | Inline_bench of { title : string; text : string }
      (** ISCAS-85 [.bench] source shipped with the request; parsed with
          {!Dl_netlist.Bench_format.parse_string} on admission. *)

type job_spec = {
  circuit : circuit_spec;
  seed : int;
  max_random_vectors : int;
  target_yield : float;
  collapse_faults : bool;
  min_weight_ratio : float;
  deadline_ms : int option;
      (** Relative deadline.  A job whose every waiter's deadline expires
          while it is still queued is cancelled, never run; a waiter whose
          deadline passes first receives {!Expired}. *)
}

val job_spec :
  ?seed:int -> ?max_random_vectors:int -> ?target_yield:float ->
  ?collapse_faults:bool -> ?min_weight_ratio:float -> ?deadline_ms:int ->
  circuit_spec -> job_spec
(** Defaults: seed 7, 256 random vectors, yield 0.75, collapsed universe,
    no pruning, no deadline. *)

type request =
  | Ping
  | Get_stats
  | Submit of job_spec
  | Serve_stage of { spec : job_spec; stage : string }
      (** Run one named stage of the spec's experiment (plus its
          dependency closure) instead of the whole pipeline — the unit the
          cluster coordinator fans out across workers.  [stage] is a
          {!Dl_core.Experiment.stage_keys} name; the reply is
          {!Stage_done}. *)
  | Store_get of string
      (** Peer artifact fetch: ask this node's store for the artifact
          filed under the given stage key.  Answered {!Store_found} /
          {!Store_missing}; never triggers computation. *)
  | Store_put of { key : string; data : string }
      (** Peer artifact push: offer a codec-enveloped artifact for the
          given key.  The receiver validates the envelope (magic + CRC)
          before persisting and answers {!Store_ack}. *)
  | Shutdown  (** Graceful drain: queued and running jobs complete, new
                  submissions are rejected, then the server exits.  The
                  reply is a final {!Stats_reply}. *)

(** How a {!Serve_stage} request was satisfied: already in the local
    store, fetched from a peer store, or computed here. *)
type stage_outcome = Stage_hit | Stage_fetched | Stage_computed

(** The projection result: run statistics, final coverages, and the same
    summary/fit artifact the stage graph caches for the projection stage. *)
type result_payload = {
  circuit_title : string;
  vectors : int;
  stuck_fault_count : int;
  realistic_fault_count : int;
  t_final : float;
  theta_final : float;
  gamma_final : float;
  theta_iddq_final : float;
  target_yield : float;
  summary : Dl_store.Artifact.summary;
  request_key : string;  (** {!Dl_core.Experiment.request_key} — also the
                             coalescing key this answer was filed under. *)
  stage_hits : int;
  stage_misses : int;    (** Artifact-store outcomes of the underlying run;
                             both 0 for an answer fanned out without one. *)
}

type served = {
  payload : result_payload;
  coalesced : bool;
      (** The answer was fanned out from another execution — this request
          attached to an identical in-flight job or hit the in-memory
          result cache; no stage ran on its behalf. *)
  service_ms : float;  (** Admission-to-answer wall clock, server side. *)
}

type stats = {
  accepted : int;    (** Submissions admitted (executed, coalesced or
                         answered from the result cache). *)
  rejected : int;    (** Submissions refused by admission control. *)
  coalesced : int;   (** Accepted without a new execution. *)
  executed : int;    (** Jobs actually run through the experiment. *)
  completed : int;   (** Result responses delivered. *)
  expired : int;     (** Deadline expiries (waiters and cancelled jobs). *)
  failed : int;      (** Executions that raised. *)
  queue_depth : int;
  in_flight : int;
  p50_ms : float;    (** Of observed service times; [0.0] before the
                         first completed request (never [nan]). *)
  p99_ms : float;
  p999_ms : float;   (** Resolvable at any sample count thanks to the
                         {!Dl_util.Latency} histogram behind it. *)
  uptime_s : float;
}

type response =
  | Pong
  | Stats_reply of stats
  | Result of served
  | Rejected of { retry_after_ms : int; queue_depth : int }
      (** Admission control: the bounded queue is full (or the server is
          draining).  [retry_after_ms] scales with observed service time
          and backlog. *)
  | Expired  (** The request's deadline passed before an answer existed. *)
  | Server_error of string
      (** Admission or execution failure (unknown benchmark, malformed
          inline netlist, engine exception) — the message is the one-line
          diagnostic. *)
  | Stage_done of {
      stage : string;
      key : string;  (** The stage key the artifact is filed under. *)
      outcome : stage_outcome;
      seconds : float;  (** Wall clock spent serving the stage. *)
    }
  | Store_found of string  (** The codec-enveloped artifact bytes. *)
  | Store_missing
  | Store_ack of bool
      (** [false] when the offered artifact failed envelope validation
          and was discarded. *)

val request_codec : request Dl_store.Codec.t
val response_codec : response Dl_store.Codec.t

(** {2 Framing} *)

val default_max_frame : int
(** 16 MiB — generous for inline netlists, small enough that a corrupt
    length prefix cannot allocate unboundedly. *)

exception Protocol_error of string
(** Raised by the [read_*]/[write_*] functions on framing violations
    (oversized frame, truncated stream mid-frame, undecodable envelope).
    Socket-level failures raise [Unix.Unix_error] as usual. *)

val write_frame : Unix.file_descr -> bytes -> unit

val read_frame :
  ?max_frame:int -> ?deadline_s:float -> Unix.file_descr -> bytes option
(** [None] on clean EOF at a frame boundary.  [deadline_s] bounds how long
    the peer may take to deliver the {e rest} of a frame once its first
    byte has arrived — the wait for that first byte is unbounded, so idle
    connections never expire, but a peer that trickles a frame byte-by-byte
    (slow loris) is cut off with {!Protocol_error}. *)

val send : 'a Dl_store.Codec.t -> Unix.file_descr -> 'a -> unit

val recv :
  ?max_frame:int -> ?deadline_s:float ->
  'a Dl_store.Codec.t -> Unix.file_descr -> 'a option
(** [send]/[recv]: one codec-enveloped value per frame.  [recv] returns
    [None] on clean EOF and raises {!Protocol_error} on a frame that does
    not decode or that misses its [deadline_s]. *)

(** {2 Shared rendering}

    [dlproj pipeline --json], [dlproj submit] and the server all print a
    {!served} through the same functions, so a scripted local run and a
    served answer are textually identical apart from the service fields. *)

val payload_of_experiment :
  key:string -> Dl_core.Experiment.t -> result_payload
(** Distill a finished experiment into the wire payload ([key] is the
    request key the answer is filed under). *)

val json_escape : string -> string
(** RFC 8259 string-body escaping (UTF-8 bytes pass through); the result
    is meant to sit between plain double quotes. *)

val json_float : float -> string
(** Round-trippable ([%.17g]); non-finite values render as [null]. *)

val served_to_json : served -> string
(** One stable JSON object (sorted, fixed field set, round-trippable
    floats); see DESIGN.md §6e for the schema. *)

val pp_served : Format.formatter -> served -> unit
(** Human-readable rendering used by [dlproj submit]. *)

val pp_stats : Format.formatter -> stats -> unit
