module Latency = Dl_util.Latency

type t = {
  mutex : Mutex.t;
  started : float;
  mutable accepted : int;
  mutable rejected : int;
  mutable coalesced : int;
  mutable executed : int;
  mutable completed : int;
  mutable expired : int;
  mutable failed : int;
  hist : Latency.t;  (* service times, ms, process lifetime *)
}

let create () =
  {
    mutex = Mutex.create ();
    started = Unix.gettimeofday ();
    accepted = 0;
    rejected = 0;
    coalesced = 0;
    executed = 0;
    completed = 0;
    expired = 0;
    failed = 0;
    hist = Latency.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr_accepted t = locked t (fun () -> t.accepted <- t.accepted + 1)
let incr_rejected t = locked t (fun () -> t.rejected <- t.rejected + 1)
let incr_coalesced t = locked t (fun () -> t.coalesced <- t.coalesced + 1)
let incr_executed t = locked t (fun () -> t.executed <- t.executed + 1)
let incr_completed t = locked t (fun () -> t.completed <- t.completed + 1)
let incr_expired t = locked t (fun () -> t.expired <- t.expired + 1)
let incr_failed t = locked t (fun () -> t.failed <- t.failed + 1)

let observe_service_ms t ms = locked t (fun () -> Latency.add t.hist ms)

let mean_service_ms t =
  locked t (fun () ->
      if Latency.count t.hist = 0 then 100.0 else Latency.mean_ms t.hist)

let snapshot t ~queue_depth ~in_flight =
  locked t (fun () ->
      {
        Protocol.accepted = t.accepted;
        rejected = t.rejected;
        coalesced = t.coalesced;
        executed = t.executed;
        completed = t.completed;
        expired = t.expired;
        failed = t.failed;
        queue_depth;
        in_flight;
        (* Latency.percentile is 0.0 on an empty window, never NaN, so a
           stats probe before the first completed request stays finite
           (and its JSON rendering stays a number). *)
        p50_ms = Latency.percentile t.hist 0.50;
        p99_ms = Latency.percentile t.hist 0.99;
        p999_ms = Latency.percentile t.hist 0.999;
        uptime_s = Unix.gettimeofday () -. t.started;
      })
