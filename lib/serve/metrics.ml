type t = {
  mutex : Mutex.t;
  started : float;
  mutable accepted : int;
  mutable rejected : int;
  mutable coalesced : int;
  mutable executed : int;
  mutable completed : int;
  mutable expired : int;
  mutable failed : int;
  ring : float array;  (* recent service times, ms *)
  mutable ring_len : int;
  mutable ring_pos : int;
}

let ring_capacity = 512

let create () =
  {
    mutex = Mutex.create ();
    started = Unix.gettimeofday ();
    accepted = 0;
    rejected = 0;
    coalesced = 0;
    executed = 0;
    completed = 0;
    expired = 0;
    failed = 0;
    ring = Array.make ring_capacity 0.0;
    ring_len = 0;
    ring_pos = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr_accepted t = locked t (fun () -> t.accepted <- t.accepted + 1)
let incr_rejected t = locked t (fun () -> t.rejected <- t.rejected + 1)
let incr_coalesced t = locked t (fun () -> t.coalesced <- t.coalesced + 1)
let incr_executed t = locked t (fun () -> t.executed <- t.executed + 1)
let incr_completed t = locked t (fun () -> t.completed <- t.completed + 1)
let incr_expired t = locked t (fun () -> t.expired <- t.expired + 1)
let incr_failed t = locked t (fun () -> t.failed <- t.failed + 1)

let observe_service_ms t ms =
  locked t (fun () ->
      t.ring.(t.ring_pos) <- ms;
      t.ring_pos <- (t.ring_pos + 1) mod ring_capacity;
      if t.ring_len < ring_capacity then t.ring_len <- t.ring_len + 1)

let mean_service_ms t =
  locked t (fun () ->
      if t.ring_len = 0 then 100.0
      else begin
        let sum = ref 0.0 in
        for i = 0 to t.ring_len - 1 do
          sum := !sum +. t.ring.(i)
        done;
        !sum /. float_of_int t.ring_len
      end)

(* Nearest-rank percentile over the retained ring. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let snapshot t ~queue_depth ~in_flight =
  locked t (fun () ->
      let sorted = Array.sub t.ring 0 t.ring_len in
      Array.sort Float.compare sorted;
      {
        Protocol.accepted = t.accepted;
        rejected = t.rejected;
        coalesced = t.coalesced;
        executed = t.executed;
        completed = t.completed;
        expired = t.expired;
        failed = t.failed;
        queue_depth;
        in_flight;
        p50_ms = percentile sorted 0.50;
        p99_ms = percentile sorted 0.99;
        uptime_s = Unix.gettimeofday () -. t.started;
      })
