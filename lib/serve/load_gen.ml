module Rng = Dl_util.Rng
module Seeds = Dl_util.Seeds
module Latency = Dl_util.Latency
module Benchmarks = Dl_netlist.Benchmarks
module Generator = Dl_netlist.Generator
module Bench_format = Dl_netlist.Bench_format

type config = {
  rate : float;
  duration : float;
  mix : (string * int) list;
  seed : int;
  gates : int;
  distinct : int;
  deadline_ms : (int * int) option;
  max_random_vectors : int;
}

let config ?(rate = 20.0) ?(duration = 3.0) ?(mix = [ ("c432s_small", 1) ])
    ?(seed = 1) ?(gates = 120) ?(distinct = 4) ?deadline_ms
    ?(max_random_vectors = 128) () =
  { rate; duration; mix; seed; gates; distinct; deadline_ms;
    max_random_vectors }

let mix_of_string s =
  let entries = String.split_on_char ',' s |> List.map String.trim in
  let parse e =
    if e = "" then invalid_arg "Load_gen.mix_of_string: empty class";
    match String.index_opt e ':' with
    | None -> (e, 1)
    | Some i ->
        let name = String.sub e 0 i in
        let w = String.sub e (i + 1) (String.length e - i - 1) in
        let w =
          match int_of_string_opt w with
          | Some w when w > 0 -> w
          | _ ->
              invalid_arg
                (Printf.sprintf "Load_gen.mix_of_string: bad weight in %S" e)
        in
        (name, w)
  in
  match entries with
  | [] | [ "" ] -> invalid_arg "Load_gen.mix_of_string: empty mix"
  | es -> List.map parse es

type planned = {
  index : int;
  at_s : float;
  class_name : string;
  job_seed : int;
  deadline : int option;
}

(* A class is a benchmark name or a registered family; anything else is a
   config error, reported before any traffic is sent. *)
let check_class name =
  match Benchmarks.by_name name with
  | Some _ -> ()
  | None -> (
      match Generator.Family.by_name name with
      | Some _ -> ()
      | None ->
          invalid_arg
            (Printf.sprintf
               "Load_gen: unknown class %S (benchmarks: %s; families: %s)"
               name
               (String.concat ", " (List.map fst Benchmarks.all))
               (String.concat ", " (Generator.Family.names ()))))

let plan cfg =
  if cfg.rate <= 0.0 || not (Float.is_finite cfg.rate) then
    invalid_arg "Load_gen.plan: rate must be positive";
  if cfg.duration <= 0.0 || not (Float.is_finite cfg.duration) then
    invalid_arg "Load_gen.plan: duration must be positive";
  if cfg.distinct <= 0 then invalid_arg "Load_gen.plan: distinct must be > 0";
  if cfg.mix = [] then invalid_arg "Load_gen.plan: empty mix";
  List.iter
    (fun (name, w) ->
      if w <= 0 then
        invalid_arg (Printf.sprintf "Load_gen.plan: weight %d for %S" w name);
      check_class name)
    cfg.mix;
  (match cfg.deadline_ms with
  | Some (lo, hi) when lo <= 0 || hi < lo ->
      invalid_arg "Load_gen.plan: bad deadline range"
  | _ -> ());
  let seeds = Seeds.scope (Seeds.create cfg.seed) "bench-serve" in
  let arrivals = Seeds.stream seeds "arrivals" in
  let picks = Seeds.stream seeds "mix" in
  let pool = Seeds.stream seeds "pool" in
  let deadlines = Seeds.stream seeds "deadline" in
  let classes = Array.of_list cfg.mix in
  let total_weight = Array.fold_left (fun a (_, w) -> a + w) 0 classes in
  let pick_class () =
    let r = ref (Rng.int picks total_weight) in
    let chosen = ref (fst classes.(0)) in
    (try
       Array.iter
         (fun (name, w) ->
           if !r < w then begin
             chosen := name;
             raise Exit
           end
           else r := !r - w)
         classes
     with Exit -> ());
    !chosen
  in
  let out = ref [] in
  let n = ref 0 in
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    t := !t +. Rng.exponential arrivals cfg.rate;
    if !t >= cfg.duration then continue := false
    else begin
      let class_name = pick_class () in
      let variant = Rng.int pool cfg.distinct in
      let job_seed =
        Seeds.seed seeds (Printf.sprintf "job/%s/%d" class_name variant)
      in
      let deadline =
        match cfg.deadline_ms with
        | None -> None
        | Some (lo, hi) -> Some (Rng.int_in deadlines lo hi)
      in
      out := { index = !n; at_s = !t; class_name; job_seed; deadline } :: !out;
      incr n
    end
  done;
  Array.of_list (List.rev !out)

let mix_to_string mix =
  String.concat ","
    (List.map (fun (name, w) -> Printf.sprintf "%s:%d" name w) mix)

let trace_to_string cfg planned =
  let buf = Buffer.create (128 + (Array.length planned * 48)) in
  Buffer.add_string buf "# dlproj bench-serve trace v1\n";
  Buffer.add_string buf
    (Printf.sprintf
       "# seed %d rate %.6g duration %.6g mix %s distinct %d gates %d\n"
       cfg.seed cfg.rate cfg.duration (mix_to_string cfg.mix) cfg.distinct
       cfg.gates);
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "req %d at %.6f class %s seed %d deadline %s\n"
           p.index p.at_s p.class_name p.job_seed
           (match p.deadline with Some d -> string_of_int d | None -> "-")))
    planned;
  Buffer.contents buf

(* --- replay ---------------------------------------------------------------- *)

type outcome =
  | Served of { coalesced : bool; service_ms : float }
  | Rejected of { retry_after_ms : int }
  | Expired
  | Failed of string

type record = {
  planned : planned;
  sent_at_s : float;
  rtt_ms : float;
  outcome : outcome;
}

(* Family circuits are built once per (class, job_seed) and shipped inline;
   benchmark classes travel as their name.  Memoized so the replay loop
   never pays generation cost on the send path. *)
let spec_table cfg planned =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      let key = (p.class_name, p.job_seed) in
      if not (Hashtbl.mem table key) then
        let spec =
          match Benchmarks.by_name p.class_name with
          | Some _ -> Protocol.Builtin p.class_name
          | None ->
              let c =
                Generator.Family.build_by_name p.class_name ~seed:p.job_seed
                  ~gates:cfg.gates
              in
              Protocol.Inline_bench
                {
                  title = c.Dl_netlist.Circuit.title;
                  text = Bench_format.to_string c;
                }
        in
        Hashtbl.add table key spec)
    planned;
  table

let job_spec_of cfg table (p : planned) =
  Protocol.job_spec
    (Hashtbl.find table (p.class_name, p.job_seed))
    ~seed:p.job_seed ~max_random_vectors:cfg.max_random_vectors
    ?deadline_ms:p.deadline

let outcome_of_response = function
  | Protocol.Result r ->
      Served { coalesced = r.coalesced; service_ms = r.service_ms }
  | Protocol.Rejected { retry_after_ms; _ } -> Rejected { retry_after_ms }
  | Protocol.Expired -> Expired
  | Protocol.Server_error m -> Failed m
  | Protocol.Pong | Protocol.Stats_reply _ | Protocol.Stage_done _
  | Protocol.Store_found _ | Protocol.Store_missing | Protocol.Store_ack _ ->
      Failed "unexpected response kind"

type report = {
  planned_n : int;
  sent : int;
  served : int;
  coalesced : int;
  rejected : int;
  expired : int;
  failed : int;
  elapsed_s : float;
  offered_rate : float;
  achieved_rate : float;
  rejection_rate : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  mean_ms : float;
  max_ms : float;
}

let summarize cfg ~elapsed_s records =
  let hist = Latency.create () in
  let served = ref 0 and coalesced = ref 0 and rejected = ref 0 in
  let expired = ref 0 and failed = ref 0 in
  Array.iter
    (fun r ->
      match r.outcome with
      | Served { coalesced = co; _ } ->
          incr served;
          if co then incr coalesced;
          Latency.add hist r.rtt_ms
      | Rejected _ -> incr rejected
      | Expired -> incr expired
      | Failed _ -> incr failed)
    records;
  let sent = Array.length records in
  {
    planned_n = sent;
    sent;
    served = !served;
    coalesced = !coalesced;
    rejected = !rejected;
    expired = !expired;
    failed = !failed;
    elapsed_s;
    offered_rate = float_of_int sent /. cfg.duration;
    achieved_rate =
      (if elapsed_s > 0.0 then float_of_int !served /. elapsed_s else 0.0);
    rejection_rate =
      (if sent = 0 then 0.0 else float_of_int !rejected /. float_of_int sent);
    p50_ms = Latency.percentile hist 0.50;
    p99_ms = Latency.percentile hist 0.99;
    p999_ms = Latency.percentile hist 0.999;
    mean_ms = Latency.mean_ms hist;
    max_ms = Latency.max_ms hist;
  }

let run ?(clients = 4) ~socket cfg =
  let planned = plan cfg in
  let table = spec_table cfg planned in
  let clients = max 1 (min clients (max 1 (Array.length planned))) in
  let records = Array.make (Array.length planned) None in
  let t0 = Unix.gettimeofday () in
  (* Probe once from the calling thread so an unreachable daemon raises
     here — where the CLI can turn it into a one-line error — instead of
     killing a client thread with an uncaught exception. *)
  Client.close (Client.connect socket);
  let client_loop c () =
    (* One lazy connection per client, re-established after a failure so
       one dropped exchange does not fail the rest of the schedule. *)
    let conn = ref None in
    let ensure () =
      match !conn with
      | Some cl -> cl
      | None ->
          let cl = Client.connect socket in
          conn := Some cl;
          cl
    in
    let drop () =
      (match !conn with Some cl -> (try Client.close cl with _ -> ()) | None -> ());
      conn := None
    in
    let i = ref c in
    while !i < Array.length planned do
      let p = planned.(!i) in
      let now () = Unix.gettimeofday () -. t0 in
      let wait = p.at_s -. now () in
      if wait > 0.0 then Thread.delay wait;
      let sent_at_s = now () in
      let sent = Unix.gettimeofday () in
      let outcome =
        match
          (try Ok (Client.submit (ensure ()) (job_spec_of cfg table p))
           with e -> Error e)
        with
        | Ok resp -> outcome_of_response resp
        | Error e ->
            drop ();
            Failed (Printexc.to_string e)
      in
      let rtt_ms = (Unix.gettimeofday () -. sent) *. 1000.0 in
      records.(!i) <- Some { planned = p; sent_at_s; rtt_ms; outcome };
      i := !i + clients
    done;
    match !conn with Some cl -> Client.close cl | None -> ()
  in
  let threads =
    List.init clients (fun c -> Thread.create (client_loop c) ())
  in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let records =
    Array.map
      (function
        | Some r -> r
        | None -> failwith "Load_gen.run: unfilled record slot")
      records
  in
  (records, summarize cfg ~elapsed_s records)

let report_to_json (r : report) =
  let f = Protocol.json_float in
  Printf.sprintf
    "{\"planned\": %d, \"sent\": %d, \"served\": %d, \"coalesced\": %d, \
     \"rejected\": %d, \"expired\": %d, \"failed\": %d, \"elapsed_s\": %s, \
     \"offered_rate\": %s, \"achieved_rate\": %s, \"rejection_rate\": %s, \
     \"rtt_ms\": {\"p50\": %s, \"p99\": %s, \"p999\": %s, \"mean\": %s, \
     \"max\": %s}}"
    r.planned_n r.sent r.served r.coalesced r.rejected r.expired r.failed
    (f r.elapsed_s) (f r.offered_rate) (f r.achieved_rate)
    (f r.rejection_rate) (f r.p50_ms) (f r.p99_ms) (f r.p999_ms) (f r.mean_ms)
    (f r.max_ms)

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>planned    %6d requests (offered %.1f req/s)@,\
     served     %6d   (coalesced %d)@,\
     rejected   %6d   (%.1f%%)@,\
     expired    %6d@,\
     failed     %6d@,\
     throughput %8.1f served/s over %.2f s@,\
     rtt        p50 %.1f ms, p99 %.1f ms, p999 %.1f ms, mean %.1f ms, max \
     %.1f ms@]"
    r.planned_n r.offered_rate r.served r.coalesced r.rejected
    (100.0 *. r.rejection_rate)
    r.expired r.failed r.achieved_rate r.elapsed_s r.p50_ms r.p99_ms r.p999_ms
    r.mean_ms r.max_ms
