(** Thread-safe server counters and service-time percentiles.

    All mutators may be called concurrently from connection and worker
    threads; {!snapshot} composes a consistent {!Protocol.stats} (counters
    are read under the same lock that writers take).  Service times feed a
    {!Dl_util.Latency} log-bucketed histogram over the process lifetime, so
    p50/p99/p999 have ~2.3% relative error at any request count — the old
    512-sample ring could not resolve p999 at all below 1000 samples. *)

type t

val create : unit -> t

val incr_accepted : t -> unit
val incr_rejected : t -> unit
val incr_coalesced : t -> unit
val incr_executed : t -> unit
val incr_completed : t -> unit
val incr_expired : t -> unit
val incr_failed : t -> unit

val observe_service_ms : t -> float -> unit
(** Record one admission-to-answer service time. *)

val mean_service_ms : t -> float
(** Mean of the observed service times; a conservative default (100 ms)
    before the first observation — the basis of [retry_after_ms]. *)

val snapshot : t -> queue_depth:int -> in_flight:int -> Protocol.stats
(** Percentiles of an empty window are 0.0 (not NaN), so early probes
    serialize as numbers. *)
