(** Thread-safe server counters and service-time percentiles.

    All mutators may be called concurrently from connection and worker
    threads; {!snapshot} composes a consistent {!Protocol.stats} (counters
    are read under the same lock that writers take).  Service times are
    kept in a bounded ring of the most recent observations, so p50/p99 are
    over recent traffic, not the process lifetime. *)

type t

val create : unit -> t

val incr_accepted : t -> unit
val incr_rejected : t -> unit
val incr_coalesced : t -> unit
val incr_executed : t -> unit
val incr_completed : t -> unit
val incr_expired : t -> unit
val incr_failed : t -> unit

val observe_service_ms : t -> float -> unit
(** Record one admission-to-answer service time. *)

val mean_service_ms : t -> float
(** Mean of the retained ring; a conservative default (100 ms) before the
    first observation — the basis of [retry_after_ms]. *)

val snapshot : t -> queue_depth:int -> in_flight:int -> Protocol.stats
