module Binary = Dl_util.Binary

type 'a t = {
  kind : string;
  version : int;
  encode : Buffer.t -> 'a -> unit;
  decode : Binary.cursor -> 'a;
}

type error =
  | Bad_magic
  | Kind_mismatch of { expected : string; found : string }
  | Stale_version of { expected : int; found : int }
  | Checksum_mismatch
  | Malformed of string

let error_to_string = function
  | Bad_magic -> "bad magic (not a dlproj artifact)"
  | Kind_mismatch { expected; found } ->
      Printf.sprintf "artifact kind %S where %S was expected" found expected
  | Stale_version { expected; found } ->
      Printf.sprintf "stale format version %d (current %d)" found expected
  | Checksum_mismatch -> "checksum mismatch (corrupt artifact)"
  | Malformed reason -> Printf.sprintf "malformed payload: %s" reason

let magic = "DLA1"

let to_bytes codec value =
  let payload = Buffer.create 1024 in
  codec.encode payload value;
  let buf = Buffer.create (Buffer.length payload + 32) in
  Buffer.add_string buf magic;
  Binary.write_string buf codec.kind;
  Binary.write_byte buf codec.version;
  Binary.write_varint buf (Buffer.length payload);
  Buffer.add_buffer buf payload;
  let body = Buffer.to_bytes buf in
  let crc = Binary.crc32 body ~pos:0 ~len:(Bytes.length body) in
  let out = Bytes.create (Bytes.length body + 4) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  for i = 0 to 3 do
    Bytes.set out
      (Bytes.length body + i)
      (Char.chr
         (Int32.to_int (Int32.logand (Int32.shift_right_logical crc (8 * i)) 0xFFl)))
  done;
  out

let read_trailer data =
  let n = Bytes.length data in
  let crc = ref 0l in
  for i = 3 downto 0 do
    crc :=
      Int32.logor (Int32.shift_left !crc 8)
        (Int32.of_int (Char.code (Bytes.get data (n - 4 + i))))
  done;
  !crc

(* Shared envelope walk: checks magic (and optionally the CRC), then
   returns a cursor positioned at the kind field. *)
let open_envelope ~check_crc data =
  let n = Bytes.length data in
  if n < String.length magic + 4 then Error Bad_magic
  else if Bytes.sub_string data 0 (String.length magic) <> magic then
    Error Bad_magic
  else if
    check_crc
    && read_trailer data <> Binary.crc32 data ~pos:0 ~len:(n - 4)
  then Error Checksum_mismatch
  else begin
    let cur = Binary.cursor data in
    cur.pos <- String.length magic;
    Ok cur
  end

let header cur =
  let kind = Binary.read_string cur in
  let version = Binary.read_byte cur in
  (kind, version)

let inspect ?(check_crc = true) data =
  match open_envelope ~check_crc data with
  | Error _ as e -> e
  | Ok cur -> ( try Ok (header cur) with Binary.Corrupt m -> Error (Malformed m))

let of_bytes codec data =
  match open_envelope ~check_crc:true data with
  | Error _ as e -> e
  | Ok cur -> (
      try
        let kind, version = header cur in
        if kind <> codec.kind then
          Error (Kind_mismatch { expected = codec.kind; found = kind })
        else if version <> codec.version then
          Error (Stale_version { expected = codec.version; found = version })
        else begin
          let len = Binary.read_varint cur in
          if len <> Binary.remaining cur - 4 then
            Error (Malformed "payload length does not match frame")
          else
            let value = codec.decode cur in
            if Binary.remaining cur <> 4 then
              Error (Malformed "payload decoder left trailing bytes")
            else Ok value
        end
      with
      | Binary.Corrupt m -> Error (Malformed m)
      | Invalid_argument m -> Error (Malformed m)
      | Failure m -> Error (Malformed m)
      | Not_found -> Error (Malformed "unresolved reference in payload"))

let content_key codec value =
  let payload = Buffer.create 1024 in
  codec.encode payload value;
  Digest.to_hex (Digest.string (Buffer.contents payload))

let key_of_string s = Digest.to_hex (Digest.string s)
