(** Versioned, checksummed artifact envelopes.

    Every artifact stored by {!Store} is framed as

    {v magic "DLA1" | kind (varint-framed string) | version (1 byte)
       | payload (varint length + bytes) | CRC-32 trailer (4 bytes, LE) v}

    The CRC covers everything before the trailer, so any on-disk
    corruption — including a truncated write that survived a crash — is
    detected before the payload decoder runs.  The version byte is
    per-kind: bumping a codec's [version] makes every artifact written by
    the previous layout decode to {!Stale_version}, i.e. a cache miss,
    never a misread. *)

type 'a t = {
  kind : string;    (** Short artifact-kind tag, e.g. ["circuit"]. *)
  version : int;    (** Format version, 0..255; bump on layout change. *)
  encode : Buffer.t -> 'a -> unit;
  decode : Dl_util.Binary.cursor -> 'a;
}

type error =
  | Bad_magic
  | Kind_mismatch of { expected : string; found : string }
  | Stale_version of { expected : int; found : int }
  | Checksum_mismatch
  | Malformed of string
      (** The envelope verified but the payload decoder failed — only
          possible across an incompatible change that forgot a version
          bump; surfaced so it is loud in tests. *)

val error_to_string : error -> string

val to_bytes : 'a t -> 'a -> bytes

val of_bytes : 'a t -> bytes -> ('a, error) result
(** Checks magic, CRC, kind and version — in that order — before running
    [decode].  Never raises. *)

val inspect : ?check_crc:bool -> bytes -> (string * int, error) result
(** [(kind, version)] of an envelope without decoding the payload.
    [check_crc] defaults to [true]; pass [false] for a header-only peek
    (used by fast {!Store.stats} scans). *)

val content_key : 'a t -> 'a -> string
(** Content address of a value: hex digest of its encoded payload
    (independent of the envelope, so it is stable across version bumps of
    *other* artifact kinds). *)

val key_of_string : string -> string
(** Hex digest of an arbitrary canonical string (stage-key derivation). *)
