open Dl_netlist
module B = Dl_util.Binary
module Stuck_at = Dl_fault.Stuck_at
module Realistic = Dl_switch.Realistic
module Geom = Dl_layout.Geom
module Defect_stats = Dl_extract.Defect_stats

(* ----------------------------------------------------------- circuit *)

let encode_circuit buf (c : Circuit.t) =
  B.write_string buf c.title;
  B.write_varint buf (Array.length c.nodes);
  Array.iter
    (fun (n : Circuit.node) ->
      B.write_string buf n.name;
      B.write_byte buf (Gate.opcode n.kind);
      B.write_array (fun b id -> B.write_varint b id) buf n.fanin)
    c.nodes;
  B.write_array (fun b id -> B.write_varint b id) buf c.outputs

let decode_circuit cur =
  let title = B.read_string cur in
  let n = B.read_varint cur in
  let decls =
    Array.init n (fun _ ->
        let name = B.read_string cur in
        let kind = Gate.kind_of_opcode (B.read_byte cur) in
        let fanin = B.read_array B.read_varint cur in
        (name, kind, fanin))
  in
  let outputs = B.read_array B.read_varint cur in
  let name_of id =
    if id < 0 || id >= n then raise (B.Corrupt "node id out of range");
    let name, _, _ = decls.(id) in
    name
  in
  (* Re-declaring in stored (= original id) order reproduces the exact
     node ids: Builder.finalize assigns ids in declaration order and
     derives inputs/levels/topo deterministically. *)
  let b = Circuit.Builder.create ~title in
  try
    Array.iter
      (fun (name, kind, fanin) ->
        if kind = Gate.Input then Circuit.Builder.add_input b name
        else
          Circuit.Builder.add_gate b name kind
            (Array.to_list (Array.map name_of fanin)))
      decls;
    Array.iter (fun id -> Circuit.Builder.add_output b (name_of id)) outputs;
    Circuit.Builder.finalize b
  with Circuit.Malformed m -> raise (B.Corrupt ("malformed circuit: " ^ m))

let circuit : Circuit.t Codec.t =
  { kind = "circuit"; version = 1; encode = encode_circuit; decode = decode_circuit }

(* ---------------------------------------------------------- patterns *)

let encode_patterns buf (vs : bool array array) =
  B.write_array B.write_bools_packed buf vs

let decode_patterns cur = B.read_array B.read_bools_packed cur

let patterns : bool array array Codec.t =
  { kind = "patterns"; version = 1; encode = encode_patterns; decode = decode_patterns }

(* ------------------------------------------------------ stuck faults *)

let encode_stuck buf (f : Stuck_at.t) =
  (match f.site with
  | Stuck_at.Stem id ->
      B.write_byte buf 0;
      B.write_varint buf id
  | Stuck_at.Branch { gate; pin } ->
      B.write_byte buf 1;
      B.write_varint buf gate;
      B.write_varint buf pin);
  B.write_bool buf (Stuck_at.polarity_bool f.polarity)

let decode_stuck cur : Stuck_at.t =
  let site =
    match B.read_byte cur with
    | 0 -> Stuck_at.Stem (B.read_varint cur)
    | 1 ->
        let gate = B.read_varint cur in
        let pin = B.read_varint cur in
        Stuck_at.Branch { gate; pin }
    | t -> raise (B.Corrupt (Printf.sprintf "bad fault-site tag %d" t))
  in
  let polarity = if B.read_bool cur then Stuck_at.Sa1 else Stuck_at.Sa0 in
  { site; polarity }

let stuck_faults : Stuck_at.t array Codec.t =
  {
    kind = "stuck-faults";
    version = 1;
    encode = (fun buf a -> B.write_array encode_stuck buf a);
    decode = B.read_array decode_stuck;
  }

(* -------------------------------------------------------------- atpg *)

type atpg = {
  vectors : bool array array;
  stats : Dl_atpg.Atpg.stats;
  coverage : float;
  untestable_faults : Stuck_at.t array;
  aborted_faults : Stuck_at.t array;
}

let atpg : atpg Codec.t =
  let encode buf a =
    encode_patterns buf a.vectors;
    let s = a.stats in
    B.write_varint buf s.total_faults;
    B.write_varint buf s.random_detected;
    B.write_varint buf s.deterministic_detected;
    B.write_varint buf s.untestable;
    B.write_varint buf s.aborted;
    B.write_varint buf s.random_vectors;
    B.write_varint buf s.deterministic_vectors;
    B.write_float buf a.coverage;
    B.write_array encode_stuck buf a.untestable_faults;
    B.write_array encode_stuck buf a.aborted_faults
  in
  let decode cur =
    let vectors = decode_patterns cur in
    let total_faults = B.read_varint cur in
    let random_detected = B.read_varint cur in
    let deterministic_detected = B.read_varint cur in
    let untestable = B.read_varint cur in
    let aborted = B.read_varint cur in
    let random_vectors = B.read_varint cur in
    let deterministic_vectors = B.read_varint cur in
    let coverage = B.read_float cur in
    let untestable_faults = B.read_array decode_stuck cur in
    let aborted_faults = B.read_array decode_stuck cur in
    {
      vectors;
      stats =
        {
          total_faults;
          random_detected;
          deterministic_detected;
          untestable;
          aborted;
          random_vectors;
          deterministic_vectors;
        };
      coverage;
      untestable_faults;
      aborted_faults;
    }
  in
  { kind = "atpg"; version = 1; encode; decode }

(* -------------------------------------------------------- detections *)

type detections = {
  first_detection : int option array;
  vectors_applied : int;
  gate_evaluations : int;
  sim_stats : Dl_fault.Fault_sim.Stats.t;
}

let detections : detections Codec.t =
  let encode buf d =
    B.write_array (B.write_option (fun b v -> B.write_varint b v)) buf d.first_detection;
    B.write_varint buf d.vectors_applied;
    B.write_varint buf d.gate_evaluations;
    let s = d.sim_stats in
    B.write_varint buf s.Dl_fault.Fault_sim.Stats.gate_evaluations;
    B.write_varint buf s.events;
    B.write_varint buf s.faults_inferred;
    B.write_varint buf s.faults_simulated;
    B.write_varint buf s.stem_simulations;
    B.write_varint buf s.faults_dropped
  in
  let decode cur =
    let first_detection = B.read_array (B.read_option B.read_varint) cur in
    let vectors_applied = B.read_varint cur in
    let gate_evaluations = B.read_varint cur in
    let sg = B.read_varint cur in
    let events = B.read_varint cur in
    let faults_inferred = B.read_varint cur in
    let faults_simulated = B.read_varint cur in
    let stem_simulations = B.read_varint cur in
    let faults_dropped = B.read_varint cur in
    {
      first_detection;
      vectors_applied;
      gate_evaluations;
      sim_stats =
        {
          Dl_fault.Fault_sim.Stats.gate_evaluations = sg;
          events;
          faults_inferred;
          faults_simulated;
          stem_simulations;
          faults_dropped;
        };
    }
  in
  { kind = "detections"; version = 2; encode; decode }

(* --------------------------------------------------------------- ifa *)

let layer_code = function
  | Geom.Diffusion_n -> 0
  | Geom.Diffusion_p -> 1
  | Geom.Poly -> 2
  | Geom.Metal1 -> 3
  | Geom.Metal2 -> 4
  | Geom.Contact -> 5
  | Geom.Via -> 6

let layer_of_code = function
  | 0 -> Geom.Diffusion_n
  | 1 -> Geom.Diffusion_p
  | 2 -> Geom.Poly
  | 3 -> Geom.Metal1
  | 4 -> Geom.Metal2
  | 5 -> Geom.Contact
  | 6 -> Geom.Via
  | c -> raise (B.Corrupt (Printf.sprintf "bad layer code %d" c))

let policy_code = function
  | Realistic.Floats_low -> 0
  | Realistic.Floats_high -> 1
  | Realistic.Floats_unknown -> 2

let policy_of_code = function
  | 0 -> Realistic.Floats_low
  | 1 -> Realistic.Floats_high
  | 2 -> Realistic.Floats_unknown
  | c -> raise (B.Corrupt (Printf.sprintf "bad float-policy code %d" c))

let encode_realistic buf (f : Realistic.t) =
  (match f.kind with
  | Realistic.Bridge { node_a; node_b } ->
      B.write_byte buf 0;
      B.write_varint buf node_a;
      B.write_varint buf node_b
  | Realistic.Transistor_stuck_open t ->
      B.write_byte buf 1;
      B.write_varint buf t
  | Realistic.Transistor_stuck_on t ->
      B.write_byte buf 2;
      B.write_varint buf t
  | Realistic.Input_open { gate; pin; policy } ->
      B.write_byte buf 3;
      B.write_varint buf gate;
      B.write_varint buf pin;
      B.write_byte buf (policy_code policy)
  | Realistic.Stem_open { node; policy } ->
      B.write_byte buf 4;
      B.write_varint buf node;
      B.write_byte buf (policy_code policy));
  B.write_float buf f.weight;
  B.write_string buf f.label

let decode_realistic cur : Realistic.t =
  let kind =
    match B.read_byte cur with
    | 0 ->
        let node_a = B.read_varint cur in
        let node_b = B.read_varint cur in
        Realistic.Bridge { node_a; node_b }
    | 1 -> Realistic.Transistor_stuck_open (B.read_varint cur)
    | 2 -> Realistic.Transistor_stuck_on (B.read_varint cur)
    | 3 ->
        let gate = B.read_varint cur in
        let pin = B.read_varint cur in
        let policy = policy_of_code (B.read_byte cur) in
        Realistic.Input_open { gate; pin; policy }
    | 4 ->
        let node = B.read_varint cur in
        let policy = policy_of_code (B.read_byte cur) in
        Realistic.Stem_open { node; policy }
    | t -> raise (B.Corrupt (Printf.sprintf "bad realistic-fault tag %d" t))
  in
  let weight = B.read_float cur in
  let label = B.read_string cur in
  { kind; weight; label }

let encode_defect_class buf = function
  | Defect_stats.Short_on layer ->
      B.write_byte buf 0;
      B.write_byte buf (layer_code layer)
  | Defect_stats.Open_on layer ->
      B.write_byte buf 1;
      B.write_byte buf (layer_code layer)
  | Defect_stats.Oxide_pinhole -> B.write_byte buf 2
  | Defect_stats.Contact_open -> B.write_byte buf 3

let decode_defect_class cur =
  match B.read_byte cur with
  | 0 -> Defect_stats.Short_on (layer_of_code (B.read_byte cur))
  | 1 -> Defect_stats.Open_on (layer_of_code (B.read_byte cur))
  | 2 -> Defect_stats.Oxide_pinhole
  | 3 -> Defect_stats.Contact_open
  | t -> raise (B.Corrupt (Printf.sprintf "bad defect-class tag %d" t))

type ifa = {
  faults : Realistic.t array;
  gross_weight : float;
  summaries : Dl_extract.Ifa.class_summary list;
}

let ifa : ifa Codec.t =
  let encode buf x =
    B.write_array encode_realistic buf x.faults;
    B.write_float buf x.gross_weight;
    B.write_list
      (fun b (s : Dl_extract.Ifa.class_summary) ->
        encode_defect_class b s.cls;
        B.write_varint b s.count;
        B.write_float b s.total_weight)
      buf x.summaries
  in
  let decode cur =
    let faults = B.read_array decode_realistic cur in
    let gross_weight = B.read_float cur in
    let summaries =
      B.read_list
        (fun c ->
          let cls = decode_defect_class c in
          let count = B.read_varint c in
          let total_weight = B.read_float c in
          { Dl_extract.Ifa.cls; count; total_weight })
        cur
    in
    { faults; gross_weight; summaries }
  in
  { kind = "ifa"; version = 1; encode; decode }

(* ------------------------------------------------------------- swift *)

type swift = {
  detection : Dl_switch.Swift.detection array;
  vectors_applied : int;
  region_solves : int;
}

let swift : swift Codec.t =
  let encode buf x =
    B.write_array
      (fun b (d : Dl_switch.Swift.detection) ->
        B.write_option (fun b v -> B.write_varint b v) b d.voltage;
        B.write_option (fun b v -> B.write_varint b v) b d.iddq)
      buf x.detection;
    B.write_varint buf x.vectors_applied;
    B.write_varint buf x.region_solves
  in
  let decode cur =
    let detection =
      B.read_array
        (fun c ->
          let voltage = B.read_option B.read_varint c in
          let iddq = B.read_option B.read_varint c in
          { Dl_switch.Swift.voltage; iddq })
        cur
    in
    let vectors_applied = B.read_varint cur in
    let region_solves = B.read_varint cur in
    { detection; vectors_applied; region_solves }
  in
  { kind = "swift"; version = 1; encode; decode }

(* ----------------------------------------------------------- summary *)

type summary = {
  text : string;
  fit_r : float;
  fit_theta_max : float;
  fit_rmse : float;
  fit_rmse_log10 : bool;
  scale_factor : float;
}

let summary : summary Codec.t =
  let encode buf s =
    B.write_string buf s.text;
    B.write_float buf s.fit_r;
    B.write_float buf s.fit_theta_max;
    B.write_float buf s.fit_rmse;
    B.write_bool buf s.fit_rmse_log10;
    B.write_float buf s.scale_factor
  in
  let decode cur =
    let text = B.read_string cur in
    let fit_r = B.read_float cur in
    let fit_theta_max = B.read_float cur in
    let fit_rmse = B.read_float cur in
    let fit_rmse_log10 = B.read_bool cur in
    let scale_factor = B.read_float cur in
    { text; fit_r; fit_theta_max; fit_rmse; fit_rmse_log10; scale_factor }
  in
  { kind = "summary"; version = 1; encode; decode }

(* ---------------------------------------------------------- wafer-mc *)

type wafer_mc_band = {
  k : int;
  coverage : float;
  dl_point : float;
  dl_q05 : float;
  dl_q50 : float;
  dl_q95 : float;
  passed : int;
  defective_passed : int;
  wafer_dls : float array;
}

type wafer_mc = {
  mc_dies : int;
  mc_dies_per_wafer : int;
  mc_wafers_per_lot : int;
  mc_wafers : int;
  mc_lots : int;
  mc_alpha_wafer : float;
  mc_alpha_lot : float;
  mc_defective : int;
  mc_bands : wafer_mc_band array;
}

let wafer_mc : wafer_mc Codec.t =
  let encode_band buf (b : wafer_mc_band) =
    B.write_varint buf b.k;
    B.write_float buf b.coverage;
    B.write_float buf b.dl_point;
    B.write_float buf b.dl_q05;
    B.write_float buf b.dl_q50;
    B.write_float buf b.dl_q95;
    B.write_varint buf b.passed;
    B.write_varint buf b.defective_passed;
    B.write_array (fun b v -> B.write_float b v) buf b.wafer_dls
  in
  let decode_band cur : wafer_mc_band =
    let k = B.read_varint cur in
    let coverage = B.read_float cur in
    let dl_point = B.read_float cur in
    let dl_q05 = B.read_float cur in
    let dl_q50 = B.read_float cur in
    let dl_q95 = B.read_float cur in
    let passed = B.read_varint cur in
    let defective_passed = B.read_varint cur in
    let wafer_dls = B.read_array B.read_float cur in
    { k; coverage; dl_point; dl_q05; dl_q50; dl_q95; passed;
      defective_passed; wafer_dls }
  in
  let encode buf x =
    B.write_varint buf x.mc_dies;
    B.write_varint buf x.mc_dies_per_wafer;
    B.write_varint buf x.mc_wafers_per_lot;
    B.write_varint buf x.mc_wafers;
    B.write_varint buf x.mc_lots;
    B.write_float buf x.mc_alpha_wafer;
    B.write_float buf x.mc_alpha_lot;
    B.write_varint buf x.mc_defective;
    B.write_array encode_band buf x.mc_bands
  in
  let decode cur =
    let mc_dies = B.read_varint cur in
    let mc_dies_per_wafer = B.read_varint cur in
    let mc_wafers_per_lot = B.read_varint cur in
    let mc_wafers = B.read_varint cur in
    let mc_lots = B.read_varint cur in
    let mc_alpha_wafer = B.read_float cur in
    let mc_alpha_lot = B.read_float cur in
    let mc_defective = B.read_varint cur in
    let mc_bands = B.read_array decode_band cur in
    { mc_dies; mc_dies_per_wafer; mc_wafers_per_lot; mc_wafers; mc_lots;
      mc_alpha_wafer; mc_alpha_lot; mc_defective; mc_bands }
  in
  { kind = "wafer-mc"; version = 1; encode; decode }

(* ------------------------------------------------------ bootstrap-fit *)

type bootstrap_fit = {
  fit_points : int;
  point_r : float;
  point_theta_max : float;
  point_rmse : float;
  point_rmse_log10 : bool;
  alpha_point : float;
  r_samples : float array;
  theta_max_samples : float array;
  alpha_samples : float array;
}

let bootstrap_fit : bootstrap_fit Codec.t =
  let encode buf x =
    B.write_varint buf x.fit_points;
    B.write_float buf x.point_r;
    B.write_float buf x.point_theta_max;
    B.write_float buf x.point_rmse;
    B.write_bool buf x.point_rmse_log10;
    B.write_float buf x.alpha_point;
    B.write_array (fun b v -> B.write_float b v) buf x.r_samples;
    B.write_array (fun b v -> B.write_float b v) buf x.theta_max_samples;
    B.write_array (fun b v -> B.write_float b v) buf x.alpha_samples
  in
  let decode cur =
    let fit_points = B.read_varint cur in
    let point_r = B.read_float cur in
    let point_theta_max = B.read_float cur in
    let point_rmse = B.read_float cur in
    let point_rmse_log10 = B.read_bool cur in
    let alpha_point = B.read_float cur in
    let r_samples = B.read_array B.read_float cur in
    let theta_max_samples = B.read_array B.read_float cur in
    let alpha_samples = B.read_array B.read_float cur in
    if
      Array.length theta_max_samples <> Array.length r_samples
      || Array.length alpha_samples <> Array.length r_samples
    then raise (B.Corrupt "bootstrap-fit sample arrays differ in length");
    { fit_points; point_r; point_theta_max; point_rmse; point_rmse_log10;
      alpha_point; r_samples; theta_max_samples; alpha_samples }
  in
  { kind = "bootstrap-fit"; version = 1; encode; decode }

(* -------------------------------------------------------- ndet *)

type ndet_profile = {
  nd_drop_after : int;
  nd_counts : int array;
  nd_detections : int array;
  nd_vectors_applied : int;
  nd_gate_evaluations : int;
  nd_sim_stats : Dl_fault.Fault_sim.Stats.t;
}

let write_sim_stats buf (s : Dl_fault.Fault_sim.Stats.t) =
  B.write_varint buf s.gate_evaluations;
  B.write_varint buf s.events;
  B.write_varint buf s.faults_inferred;
  B.write_varint buf s.faults_simulated;
  B.write_varint buf s.stem_simulations;
  B.write_varint buf s.faults_dropped

let read_sim_stats cur : Dl_fault.Fault_sim.Stats.t =
  let gate_evaluations = B.read_varint cur in
  let events = B.read_varint cur in
  let faults_inferred = B.read_varint cur in
  let faults_simulated = B.read_varint cur in
  let stem_simulations = B.read_varint cur in
  let faults_dropped = B.read_varint cur in
  { gate_evaluations; events; faults_inferred; faults_simulated;
    stem_simulations; faults_dropped }

let ndet_profile : ndet_profile Codec.t =
  let encode buf (p : ndet_profile) =
    B.write_varint buf p.nd_drop_after;
    B.write_array (fun b k -> B.write_varint b k) buf p.nd_counts;
    (* detection slots are >= -1: shift by one to stay in varint range *)
    B.write_array (fun b v -> B.write_varint b (v + 1)) buf p.nd_detections;
    B.write_varint buf p.nd_vectors_applied;
    B.write_varint buf p.nd_gate_evaluations;
    write_sim_stats buf p.nd_sim_stats
  in
  let decode cur : ndet_profile =
    let nd_drop_after = B.read_varint cur in
    let nd_counts = B.read_array B.read_varint cur in
    let nd_detections = B.read_array (fun c -> B.read_varint c - 1) cur in
    let nd_vectors_applied = B.read_varint cur in
    let nd_gate_evaluations = B.read_varint cur in
    let nd_sim_stats = read_sim_stats cur in
    if Array.length nd_detections <> Array.length nd_counts * nd_drop_after
    then raise (B.Corrupt "ndet-profile detections length mismatch");
    { nd_drop_after; nd_counts; nd_detections; nd_vectors_applied;
      nd_gate_evaluations; nd_sim_stats }
  in
  { kind = "ndet-profile"; version = 1; encode; decode }

type ndet_atpg = {
  na_vectors : bool array array;
  na_counts : int array;
  na_stats : Dl_ndet.Atpg_n.stats;
  na_untestable_faults : Stuck_at.t array;
  na_aborted_faults : Stuck_at.t array;
}

let ndet_atpg : ndet_atpg Codec.t =
  let encode buf (a : ndet_atpg) =
    encode_patterns buf a.na_vectors;
    B.write_array (fun b k -> B.write_varint b k) buf a.na_counts;
    let s = a.na_stats in
    B.write_varint buf s.Dl_ndet.Atpg_n.n;
    B.write_varint buf s.total_faults;
    B.write_varint buf s.untestable;
    B.write_varint buf s.aborted;
    B.write_varint buf s.under_quota;
    B.write_varint buf s.random_vectors;
    B.write_varint buf s.topup_vectors;
    B.write_varint buf s.final_vectors;
    B.write_array encode_stuck buf a.na_untestable_faults;
    B.write_array encode_stuck buf a.na_aborted_faults
  in
  let decode cur : ndet_atpg =
    let na_vectors = decode_patterns cur in
    let na_counts = B.read_array B.read_varint cur in
    let n = B.read_varint cur in
    let total_faults = B.read_varint cur in
    let untestable = B.read_varint cur in
    let aborted = B.read_varint cur in
    let under_quota = B.read_varint cur in
    let random_vectors = B.read_varint cur in
    let topup_vectors = B.read_varint cur in
    let final_vectors = B.read_varint cur in
    let na_untestable_faults = B.read_array decode_stuck cur in
    let na_aborted_faults = B.read_array decode_stuck cur in
    {
      na_vectors;
      na_counts;
      na_stats =
        {
          n;
          total_faults;
          untestable;
          aborted;
          under_quota;
          random_vectors;
          topup_vectors;
          final_vectors;
        };
      na_untestable_faults;
      na_aborted_faults;
    }
  in
  { kind = "ndet-atpg"; version = 1; encode; decode }

let current_versions =
  [
    (circuit.kind, circuit.version);
    (patterns.kind, patterns.version);
    (stuck_faults.kind, stuck_faults.version);
    (atpg.kind, atpg.version);
    (detections.kind, detections.version);
    (ifa.kind, ifa.version);
    (swift.kind, swift.version);
    (summary.kind, summary.version);
    (wafer_mc.kind, wafer_mc.version);
    (bootstrap_fit.kind, bootstrap_fit.version);
    (ndet_profile.kind, ndet_profile.version);
    (ndet_atpg.kind, ndet_atpg.version);
  ]

let defect_stats_fingerprint na_stats =
  let buf = Buffer.create 256 in
  List.iter
    (fun cls ->
      Buffer.add_string buf (Defect_stats.class_name cls);
      Buffer.add_char buf '=';
      Buffer.add_string buf (Printf.sprintf "%h" (Defect_stats.density na_stats cls));
      Buffer.add_char buf '/';
      Buffer.add_string buf (Printf.sprintf "%h" (Defect_stats.x0 na_stats cls));
      Buffer.add_char buf '\n')
    (Defect_stats.classes na_stats);
  Codec.key_of_string (Buffer.contents buf)
