type outcome = Hit | Fetched | Miss | Uncached

type report = { stage : string; key : string; outcome : outcome; seconds : float }

type remote = {
  fetch : string -> bytes option;
  publish : string -> bytes -> unit;
}

type t = {
  store : Store.t option;
  remote : remote option;
  mutable rev_reports : report list;
}

let create ?store ?remote () = { store; remote; rev_reports = [] }
let store t = t.store

let key ~stage ~codec ~config ~inputs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "dlproj-stage/1\n";
  Buffer.add_string buf stage;
  Buffer.add_char buf '\n';
  Buffer.add_string buf codec.Codec.kind;
  Buffer.add_char buf '/';
  Buffer.add_string buf (string_of_int codec.Codec.version);
  Buffer.add_char buf '\n';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    config;
  List.iter
    (fun input ->
      Buffer.add_string buf input;
      Buffer.add_char buf '\n')
    inputs;
  Codec.key_of_string (Buffer.contents buf)

let record t ~stage ~key ~outcome ~seconds =
  t.rev_reports <- { stage; key; outcome; seconds } :: t.rev_reports

(* Peer fetch-through: a remote answer only counts if it decodes as the
   expected artifact — a peer serving garbage (or a different codec
   version) degrades to a local compute, never an error.  A good answer
   is persisted locally so the next run is a plain hit. *)
let try_fetch t ~key ~codec =
  match t.remote with
  | None -> None
  | Some remote -> (
      match (try remote.fetch key with _ -> None) with
      | None -> None
      | Some data -> (
          match Codec.of_bytes codec data with
          | Error _ -> None
          | Ok value ->
              (match t.store with
              | None -> ()
              | Some store ->
                  Store.put store ~key ~kind:codec.Codec.kind
                    ~version:codec.Codec.version data);
              Some value))

let try_publish t ~key data =
  match t.remote with
  | None -> ()
  | Some remote -> ( try remote.publish key data with _ -> ())

let run t ~stage ~codec ?(config = []) ~inputs f =
  let key = key ~stage ~codec ~config ~inputs in
  let t0 = Unix.gettimeofday () in
  let finish outcome value =
    record t ~stage ~key ~outcome ~seconds:(Unix.gettimeofday () -. t0);
    (value, key)
  in
  let compute_and_store outcome =
    match try_fetch t ~key ~codec with
    | Some value -> finish Fetched value
    | None ->
        let value = f () in
        let data = Codec.to_bytes codec value in
        (match t.store with
        | None -> ()
        | Some store ->
            Store.put store ~key ~kind:codec.Codec.kind
              ~version:codec.Codec.version data);
        try_publish t ~key data;
        finish outcome value
  in
  match t.store with
  | None -> compute_and_store Uncached
  | Some store -> (
      match Store.load store key with
      | None -> compute_and_store Miss
      | Some data -> (
          match Codec.of_bytes codec data with
          | Ok value -> finish Hit value
          | Error _ ->
              (* Corrupt or stale on disk: recompute and overwrite. *)
              Store.remove store key;
              compute_and_store Miss))

let reports t = List.rev t.rev_reports

let cached r = r.outcome = Hit || r.outcome = Fetched

let hits t = List.length (List.filter cached (reports t))

let misses t =
  List.length (List.filter (fun r -> not (cached r)) (reports t))

let pp_reports ppf reports =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %-5s %8.3fs  %s@,"
        r.stage
        (match r.outcome with
        | Hit -> "hit"
        | Fetched -> "fetch"
        | Miss -> "miss"
        | Uncached -> "-")
        r.seconds
        (String.sub r.key 0 (min 12 (String.length r.key))))
    reports;
  Format.fprintf ppf "@]"
